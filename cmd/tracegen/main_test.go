package main

import (
	"os"
	"path/filepath"
	"testing"

	"webcache/internal/obs"
)

// TestMetricsDocTracegen holds the tracegen.* namespace in METRICS.md
// against what one generation run registers, both directions.
func TestMetricsDocTracegen(t *testing.T) {
	md, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	reg, err := run([]string{
		"-o", filepath.Join(dir, "t.bin"),
		"-requests", "2000", "-objects", "200", "-clients", "20",
		"-manifest", filepath.Join(dir, "m.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, m := range reg.Snapshot() {
		names = append(names, m.Name)
	}
	if len(names) == 0 {
		t.Fatal("tracegen run registered nothing")
	}
	if err := obs.CheckMetricsDoc(md, names, "tracegen"); err != nil {
		t.Fatal(err)
	}
}

// TestGenerateConvertAnalyzeRoundTrip drives the three modes through
// the refactored run(): generate a binary trace, convert it to text,
// analyze the result, and check the manifest validates.
func TestGenerateConvertAnalyzeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "t.bin")
	txt := filepath.Join(dir, "t.txt")
	manifest := filepath.Join(dir, "m.json")

	if _, err := run([]string{"-o", bin, "-requests", "500", "-objects", "50", "-clients", "8", "-manifest", manifest}); err != nil {
		t.Fatal(err)
	}
	m, err := obs.ReadManifestFile(manifest)
	if err != nil {
		t.Fatalf("manifest failed validation: %v", err)
	}
	if m.Tool != "tracegen" || m.Metrics["tracegen.requests"] != 500 {
		t.Fatalf("manifest tool=%q requests=%v", m.Tool, m.Metrics["tracegen.requests"])
	}
	if _, err := run([]string{"-convert", bin, "-o", txt, "-format", "text"}); err != nil {
		t.Fatal(err)
	}
	if _, err := run([]string{"-analyze", txt}); err != nil {
		t.Fatal(err)
	}
	if _, err := run([]string{}); err == nil {
		t.Fatal("mode-less invocation accepted")
	}
}
