// Command tracegen generates, converts, and analyzes request traces
// for the webcache simulator.
//
// Usage:
//
//	tracegen -o trace.bin -requests 1000000 -objects 10000      # ProWGen
//	tracegen -o ucb.bin -ucb -scale 0.1                          # UCB-like
//	tracegen -o dec.bin -preset dec-isp -requests 500000         # trace family
//	tracegen -squid access.log -o corp.bin                       # Squid ingestion
//	tracegen -analyze trace.bin -v                               # stats + locality
//	tracegen -convert trace.bin -o trace.txt -format text        # convert
//
// Observability: -manifest writes a run-manifest JSON document (with
// the generated trace's content fingerprint), and -cpuprofile /
// -memprofile capture pprof profiles (see METRICS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"webcache"
	"webcache/internal/obs"
)

func main() {
	if _, err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// errUsage asks main for a usage dump + non-zero exit.
var errUsage = fmt.Errorf("no mode selected (need -o, -analyze, -convert, or -squid)")

// run executes one tracegen invocation and returns the registry it
// populated (nil without -manifest), so tests — the METRICS.md
// doc-drift check in particular — can hold the registered names
// against the documented tracegen.* namespace.
func run(args []string) (*obs.Registry, error) {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		out       = fs.String("o", "", "output file (required for generation)")
		format    = fs.String("format", "", "output format: binary or text (default by extension: .txt = text)")
		requests  = fs.Int("requests", 1_000_000, "number of requests")
		objects   = fs.Int("objects", 10_000, "number of distinct objects")
		clients   = fs.Int("clients", 200, "client population")
		oneTimers = fs.Float64("one-timers", 0.5, "fraction of one-time-referenced objects")
		alpha     = fs.Float64("alpha", 0.7, "Zipf popularity exponent")
		stack     = fs.Float64("stack", 0.2, "LRU stack fraction (temporal locality)")
		sizes     = fs.Bool("sizes", false, "variable object sizes (lognormal+Pareto)")
		seed      = fs.Int64("seed", 1, "random seed")
		ucb       = fs.Bool("ucb", false, "generate the UCB-like trace instead of ProWGen")
		preset    = fs.String("preset", "", "generate from a workload preset family (webcachesim -presets lists them)")
		scale     = fs.Float64("scale", 1.0, "UCB scale (1.0 = 9.2M requests)")
		analyze   = fs.String("analyze", "", "analyze an existing trace file")
		convert   = fs.String("convert", "", "convert an existing trace file to -o")
		squid     = fs.String("squid", "", "ingest a Squid access.log into -o")
		unitSizes = fs.Bool("unit-sizes", false, "with -squid: force unit object sizes")
		verbose   = fs.Bool("v", false, "with -analyze: temporal-locality and popularity profiles")

		manifest   = fs.String("manifest", "", "write a run-manifest JSON document to this file")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			return nil, err
		}
		defer stop()
	}
	var man *obs.Manifest
	reg := (*obs.Registry)(nil)
	if *manifest != "" {
		reg = obs.NewRegistry("tracegen")
		man = obs.NewManifest("tracegen")
		for k, v := range map[string]any{
			"requests": *requests, "objects": *objects, "clients": *clients,
			"one-timers": *oneTimers, "alpha": *alpha, "stack": *stack,
			"sizes": *sizes, "seed": *seed, "ucb": *ucb, "preset": *preset,
			"scale": *scale, "o": *out,
		} {
			man.SetConfig(k, v)
		}
	}
	// finish seals the manifest (and heap profile) after the produced
	// or analyzed trace is known.
	finish := func(tr *webcache.Trace) error {
		if tr != nil && reg.Enabled() {
			reg.Counter("tracegen.requests").Add(int64(tr.Len()))
			reg.Counter("tracegen.objects").Add(int64(tr.NumObjects))
			reg.Counter("tracegen.clients").Add(int64(tr.NumClients))
		}
		if *memprofile != "" {
			if err := obs.WriteHeapProfile(*memprofile); err != nil {
				return err
			}
		}
		if man != nil {
			if tr != nil {
				man.Trace = map[string]any{
					"fingerprint": webcache.TraceFingerprint(tr),
					"requests":    tr.Len(),
				}
			}
			man.Finish(reg)
			if err := man.WriteFile(*manifest); err != nil {
				return err
			}
		}
		return nil
	}

	switch {
	case *squid != "":
		if *out == "" {
			return reg, fmt.Errorf("-squid requires -o")
		}
		f, err := os.Open(*squid)
		if err != nil {
			return reg, err
		}
		res, err := webcache.ReadSquidLog(f, webcache.SquidOptions{UnitSize: *unitSizes})
		f.Close()
		if err != nil {
			return reg, err
		}
		if err := writeTrace(*out, *format, res.Trace); err != nil {
			return reg, err
		}
		fmt.Printf("ingested %d/%d log lines (%d skipped): %s\n",
			res.Trace.Len(), res.Lines, res.Skipped, webcache.AnalyzeTrace(res.Trace))
		return reg, finish(res.Trace)

	case *analyze != "":
		tr, err := readTrace(*analyze)
		if err != nil {
			return reg, err
		}
		st := webcache.AnalyzeTrace(tr)
		fmt.Printf("%s\n", st)
		fmt.Printf("clients=%d objects=%d requests=%d\n", tr.NumClients, tr.NumObjects, tr.Len())
		if *verbose {
			lp := webcache.AnalyzeLocality(tr)
			fmt.Printf("\ntemporal locality (LRU reuse distances):\n")
			fmt.Printf("  cold misses %d, re-references %d\n", lp.ColdMisses, lp.Rereferences)
			fmt.Printf("  distance mean=%.0f median=%d p90=%d p99=%d\n",
				lp.MeanDistance, lp.MedianDistance, lp.Percentile(90), lp.Percentile(99))
			fmt.Printf("  predicted LRU hit ratio: ")
			for _, capacity := range []int{16, 64, 256, 1024, 4096} {
				fmt.Printf("C=%d:%.1f%% ", capacity, 100*lp.LRUHitRatio(capacity))
			}
			fmt.Println()
			fmt.Printf("\npopularity head (rank: references):\n  ")
			for i, f := range webcache.PopularityCurve(tr, 10) {
				fmt.Printf("%d:%d ", i+1, f)
			}
			fmt.Println()
		}
		return reg, finish(tr)

	case *convert != "":
		if *out == "" {
			return reg, fmt.Errorf("-convert requires -o")
		}
		tr, err := readTrace(*convert)
		if err != nil {
			return reg, err
		}
		if err := writeTrace(*out, *format, tr); err != nil {
			return reg, err
		}
		fmt.Printf("wrote %d requests to %s\n", tr.Len(), *out)
		return reg, finish(tr)

	case *out != "":
		var tr *webcache.Trace
		var err error
		if *preset != "" {
			tr, err = webcache.GeneratePresetWorkload(*preset, *requests, *seed)
		} else if *ucb {
			tr, err = webcache.GenerateUCBWorkload(webcache.UCBConfig{Scale: *scale, Seed: *seed})
		} else {
			tr, err = webcache.GenerateWorkload(webcache.WorkloadConfig{
				NumRequests:   *requests,
				NumObjects:    *objects,
				NumClients:    *clients,
				OneTimerFrac:  *oneTimers,
				Alpha:         *alpha,
				StackFrac:     *stack,
				VariableSizes: *sizes,
				Seed:          *seed,
			})
		}
		if err != nil {
			return reg, err
		}
		if err := writeTrace(*out, *format, tr); err != nil {
			return reg, err
		}
		st := webcache.AnalyzeTrace(tr)
		fmt.Printf("wrote %s: %s\n", *out, st)
		return reg, finish(tr)

	default:
		fs.Usage()
		return reg, errUsage
	}
}

func isText(path, format string) bool {
	if format != "" {
		return strings.EqualFold(format, "text")
	}
	ext := filepath.Ext(path)
	return ext == ".txt" || ext == ".trace"
}

func readTrace(path string) (*webcache.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if isText(path, "") {
		return webcache.ReadTraceText(f)
	}
	tr, err := webcache.ReadTraceBinary(f)
	if err != nil {
		// Fall back to text for unlabeled files.
		if _, serr := f.Seek(0, 0); serr == nil {
			if t2, terr := webcache.ReadTraceText(f); terr == nil {
				return t2, nil
			}
		}
		return nil, err
	}
	return tr, nil
}

func writeTrace(path, format string, tr *webcache.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if isText(path, format) {
		return webcache.WriteTraceText(f, tr)
	}
	return webcache.WriteTraceBinary(f, tr)
}
