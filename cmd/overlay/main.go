// Command overlay inspects the Pastry overlay that underlies the P2P
// client cache: it builds a ring, measures routing hop distributions,
// and exercises failure handling — the substrate behind the paper's
// "⌈log_2^b N⌉ hops" claim (§4.1).
//
// Usage:
//
//	overlay -nodes 1024 -routes 10000          # hop statistics
//	overlay -nodes 256 -fail 0.3 -routes 5000  # with 30% crashed nodes
//	overlay -nodes 256 -fail 0.3 -stabilize    # ... plus a repair round
//	overlay -nodes 64 -b 2 -verify             # verify routing vs ground truth
//	overlay -nodes 512 -diagnose               # table/leaf-set health report
//	overlay -nodes 512 -proximity              # proximity-aware tables (stretch)
//
// -l sets the leaf-set size and -seed the RNG seed.  Observability:
// -progress paints a live routing progress line, -metrics dumps the
// metric registry, -manifest writes a run-manifest JSON document, and
// -cpuprofile/-memprofile capture pprof profiles (see METRICS.md).
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"webcache/internal/obs"
	"webcache/internal/pastry"
)

func main() {
	if _, err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "overlay:", err)
		os.Exit(1)
	}
}

// run executes one overlay inspection and returns the registry it
// populated (nil unless -metrics/-manifest asked for one), so tests —
// the METRICS.md doc-drift check in particular — can hold the
// registered names against the documented overlay.* namespace.
func run(args []string) (*obs.Registry, error) {
	fs := flag.NewFlagSet("overlay", flag.ContinueOnError)
	var (
		nodes      = fs.Int("nodes", 1024, "overlay size (the paper's client cluster size)")
		b          = fs.Int("b", 4, "Pastry digit width in bits (1, 2, 4, 8)")
		leafs      = fs.Int("l", 16, "leaf set size")
		routes     = fs.Int("routes", 10_000, "number of random routes to measure")
		fail       = fs.Float64("fail", 0, "fraction of nodes to crash before routing")
		seed       = fs.Int64("seed", 1, "random seed")
		verify     = fs.Bool("verify", false, "check every route against the ground-truth owner")
		stabilize  = fs.Bool("stabilize", false, "run a maintenance round after failures")
		diagnose   = fs.Bool("diagnose", false, "print overlay health diagnostics")
		proximity  = fs.Bool("proximity", false, "proximity-aware routing tables (report stretch)")
		progress   = fs.Bool("progress", false, "print live routing progress with ETA to stderr")
		metrics    = fs.Bool("metrics", false, "dump the run's metric registry to stderr on exit")
		manifest   = fs.String("manifest", "", "write a run-manifest JSON document to this file")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	var reg *obs.Registry
	var man *obs.Manifest
	if *metrics || *manifest != "" {
		reg = obs.NewRegistry("overlay")
		man = obs.NewManifest("overlay")
		for k, v := range map[string]any{
			"nodes": *nodes, "b": *b, "l": *leafs, "routes": *routes,
			"fail": *fail, "seed": *seed, "stabilize": *stabilize,
			"proximity": *proximity,
		} {
			man.SetConfig(k, v)
		}
	}
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			return reg, err
		}
		defer stop()
	}

	ov, err := pastry.New(pastry.Config{B: *b, LeafSetSize: *leafs, Seed: *seed, ProximityAware: *proximity})
	if err != nil {
		return reg, err
	}
	buildStop := reg.Timer("overlay.build").Start()
	ids, err := ov.JoinN(*nodes, "overlay-cli")
	buildStop()
	if err != nil {
		return reg, err
	}
	fmt.Printf("built overlay: %d nodes, b=%d (%d-ary digits), leaf set %d\n",
		ov.Len(), *b, 1<<*b, *leafs)

	if *fail >= 1 {
		// A fraction of 1+ would crash the whole ring and the kill loop
		// below could never finish; at least one node must survive.
		return reg, fmt.Errorf("-fail %v: must be a fraction in [0, 1)", *fail)
	}
	if *fail > 0 {
		rng := rand.New(rand.NewSource(*seed + 1))
		toKill := int(*fail * float64(len(ids)))
		killed := 0
		for killed < toKill {
			if ov.Fail(ids[rng.Intn(len(ids))]) {
				killed++
			}
		}
		reg.Counter("overlay.failed_nodes").Add(int64(killed))
		fmt.Printf("crashed %d nodes abruptly; %d remain\n", killed, ov.Len())
		if *stabilize {
			repairs := ov.Stabilize()
			reg.Counter("overlay.stabilize_repairs").Add(int64(repairs))
			fmt.Printf("stabilization round repaired %d state entries\n", repairs)
		}
	}

	var pp *obs.ProgressPrinter
	if *progress {
		pp = obs.NewProgressPrinter(os.Stderr, "routing", *routes)
	}
	routeStop := reg.Timer("overlay.routing").Start()
	hist := map[int]int{}
	mismatches := 0
	for i := 0; i < *routes; i++ {
		key := pastry.HashString(fmt.Sprintf("key-%d", i))
		dest, hops, err := ov.Route(key)
		if err != nil {
			return reg, err
		}
		hist[hops]++
		if *verify {
			if want, ok := ov.Owner(key); ok && want != dest {
				mismatches++
			}
		}
		if pp != nil {
			pp.Step(1)
		}
	}
	routeStop()
	if pp != nil {
		pp.Finish()
	}

	st := ov.Stats()
	if reg.Enabled() {
		reg.Counter("overlay.nodes").Add(int64(ov.Len()))
		reg.Counter("overlay.routes").Add(int64(st.Routes))
		reg.Gauge("overlay.mean_hops").Set(st.MeanHops)
		reg.Gauge("overlay.max_hops").SetMax(float64(st.MaxHops))
		reg.Counter("overlay.repairs").Add(int64(st.Repairs))
		reg.Counter("overlay.route_mismatches").Add(int64(mismatches))
		if *proximity {
			reg.Gauge("overlay.mean_stretch").Set(st.MeanStretch)
		}
	}
	bound := math.Ceil(math.Log(float64(ov.Len())) / math.Log(float64(int(1)<<*b)))
	fmt.Printf("\nroutes: %d   mean hops: %.2f   max: %d   log_%d(N) bound: %.0f\n",
		st.Routes, st.MeanHops, st.MaxHops, 1<<*b, bound)
	if *proximity {
		fmt.Printf("mean route stretch over the network plane: %.2f\n", st.MeanStretch)
	}
	if *diagnose {
		d := ov.Diagnose()
		fmt.Printf("\ndiagnostics: nodes=%d tableFill(mean=%.1f min=%d max=%d) leafFill=%.1f completeLeafSets=%d violations=%d\n",
			d.Nodes, d.MeanTableFill, d.MinTableFill, d.MaxTableFill, d.MeanLeafFill, d.CompleteLeafSets, d.Violations)
	}
	if st.Repairs > 0 {
		fmt.Printf("lazy repairs while routing: %d\n", st.Repairs)
	}
	fmt.Println("\nhop histogram:")
	maxHop := 0
	for h := range hist {
		if h > maxHop {
			maxHop = h
		}
	}
	for h := 0; h <= maxHop; h++ {
		n := hist[h]
		bar := ""
		for j := 0; j < 60*n / *routes; j++ {
			bar += "#"
		}
		fmt.Printf("  %2d hops  %6d  %s\n", h, n, bar)
	}

	if *memprofile != "" {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			return reg, err
		}
	}
	if *metrics {
		fmt.Fprint(os.Stderr, reg.String())
	}
	if *manifest != "" {
		man.Finish(reg)
		if err := man.WriteFile(*manifest); err != nil {
			return reg, err
		}
	}

	if *verify {
		if mismatches == 0 {
			fmt.Println("\nverification: every route reached the ground-truth owner")
		} else {
			return reg, fmt.Errorf("verification: %d/%d routes missed the owner", mismatches, *routes)
		}
	}
	return reg, nil
}
