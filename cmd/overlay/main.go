// Command overlay inspects the Pastry overlay that underlies the P2P
// client cache: it builds a ring, measures routing hop distributions,
// and exercises failure handling — the substrate behind the paper's
// "⌈log_2^b N⌉ hops" claim (§4.1).
//
// Usage:
//
//	overlay -nodes 1024 -routes 10000          # hop statistics
//	overlay -nodes 256 -fail 0.3 -routes 5000  # with 30% crashed nodes
//	overlay -nodes 64 -b 2 -verify             # verify routing vs ground truth
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"webcache/internal/pastry"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 1024, "overlay size (the paper's client cluster size)")
		b         = flag.Int("b", 4, "Pastry digit width in bits (1, 2, 4, 8)")
		leafs     = flag.Int("l", 16, "leaf set size")
		routes    = flag.Int("routes", 10_000, "number of random routes to measure")
		fail      = flag.Float64("fail", 0, "fraction of nodes to crash before routing")
		seed      = flag.Int64("seed", 1, "random seed")
		verify    = flag.Bool("verify", false, "check every route against the ground-truth owner")
		stabilize = flag.Bool("stabilize", false, "run a maintenance round after failures")
		diagnose  = flag.Bool("diagnose", false, "print overlay health diagnostics")
		proximity = flag.Bool("proximity", false, "proximity-aware routing tables (report stretch)")
	)
	flag.Parse()

	ov, err := pastry.New(pastry.Config{B: *b, LeafSetSize: *leafs, Seed: *seed, ProximityAware: *proximity})
	if err != nil {
		fatal(err)
	}
	ids, err := ov.JoinN(*nodes, "overlay-cli")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("built overlay: %d nodes, b=%d (%d-ary digits), leaf set %d\n",
		ov.Len(), *b, 1<<*b, *leafs)

	if *fail > 0 {
		rng := rand.New(rand.NewSource(*seed + 1))
		toKill := int(*fail * float64(len(ids)))
		killed := 0
		for killed < toKill {
			if ov.Fail(ids[rng.Intn(len(ids))]) {
				killed++
			}
		}
		fmt.Printf("crashed %d nodes abruptly; %d remain\n", killed, ov.Len())
		if *stabilize {
			repairs := ov.Stabilize()
			fmt.Printf("stabilization round repaired %d state entries\n", repairs)
		}
	}

	hist := map[int]int{}
	mismatches := 0
	for i := 0; i < *routes; i++ {
		key := pastry.HashString(fmt.Sprintf("key-%d", i))
		dest, hops, err := ov.Route(key)
		if err != nil {
			fatal(err)
		}
		hist[hops]++
		if *verify {
			if want, ok := ov.Owner(key); ok && want != dest {
				mismatches++
			}
		}
	}

	st := ov.Stats()
	bound := math.Ceil(math.Log(float64(ov.Len())) / math.Log(float64(int(1)<<*b)))
	fmt.Printf("\nroutes: %d   mean hops: %.2f   max: %d   log_%d(N) bound: %.0f\n",
		st.Routes, st.MeanHops, st.MaxHops, 1<<*b, bound)
	if *proximity {
		fmt.Printf("mean route stretch over the network plane: %.2f\n", st.MeanStretch)
	}
	if *diagnose {
		d := ov.Diagnose()
		fmt.Printf("\ndiagnostics: nodes=%d tableFill(mean=%.1f min=%d max=%d) leafFill=%.1f completeLeafSets=%d violations=%d\n",
			d.Nodes, d.MeanTableFill, d.MinTableFill, d.MaxTableFill, d.MeanLeafFill, d.CompleteLeafSets, d.Violations)
	}
	if st.Repairs > 0 {
		fmt.Printf("lazy repairs while routing: %d\n", st.Repairs)
	}
	fmt.Println("\nhop histogram:")
	maxHop := 0
	for h := range hist {
		if h > maxHop {
			maxHop = h
		}
	}
	for h := 0; h <= maxHop; h++ {
		n := hist[h]
		bar := ""
		for j := 0; j < 60*n / *routes; j++ {
			bar += "#"
		}
		fmt.Printf("  %2d hops  %6d  %s\n", h, n, bar)
	}
	if *verify {
		if mismatches == 0 {
			fmt.Println("\nverification: every route reached the ground-truth owner")
		} else {
			fmt.Printf("\nverification: %d/%d routes missed the owner\n", mismatches, *routes)
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "overlay:", err)
	os.Exit(1)
}
