package main

import (
	"os"
	"testing"

	"webcache/internal/obs"
)

// TestMetricsDocOverlay holds the overlay.* namespace in METRICS.md
// against what one CLI run registers, both directions.  The flag set
// is chosen so every conditional registration fires: failures for
// overlay.failed_nodes, a stabilization round for
// overlay.stabilize_repairs, proximity tables for
// overlay.mean_stretch.
func TestMetricsDocOverlay(t *testing.T) {
	md, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := run([]string{
		"-nodes", "48", "-routes", "200", "-b", "2",
		"-fail", "0.2", "-stabilize", "-proximity", "-metrics",
	})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, m := range reg.Snapshot() {
		names = append(names, m.Name)
	}
	if len(names) == 0 {
		t.Fatal("overlay run registered nothing")
	}
	if err := obs.CheckMetricsDoc(md, names, "overlay"); err != nil {
		t.Fatal(err)
	}
}

// TestRunManifest checks the refactored run() still writes a valid
// manifest and fails verification errors through the error return.
func TestRunManifest(t *testing.T) {
	path := t.TempDir() + "/overlay.json"
	reg, err := run([]string{"-nodes", "32", "-routes", "100", "-verify", "-manifest", path})
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Enabled() {
		t.Fatal("-manifest did not enable the registry")
	}
	m, err := obs.ReadManifestFile(path)
	if err != nil {
		t.Fatalf("manifest failed validation: %v", err)
	}
	if m.Tool != "overlay" {
		t.Fatalf("tool = %q", m.Tool)
	}
	if m.Metrics["overlay.nodes"] != 32 {
		t.Fatalf("overlay.nodes = %v", m.Metrics["overlay.nodes"])
	}
}
