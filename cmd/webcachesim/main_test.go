package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webcache/internal/obs"
)

// TestRunManifestGolden drives a small -run end to end through the
// observability session and checks the emitted manifest is
// schema-valid, echoes the config, fingerprints the trace, and
// carries the full metric set.
func TestRunManifestGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	of := obsFlags{manifest: path}
	sess, err := of.start("webcachesim")
	if err != nil {
		t.Fatal(err)
	}
	sess.setConfig("run", "hier-gd")
	sess.setConfig("frac", 0.3)

	src := traceSource{scale: 0.02, seed: 1}
	if err := runScheme("hier-gd", src, 0.3, sess, nil); err != nil {
		t.Fatal(err)
	}
	if err := sess.close(); err != nil {
		t.Fatal(err)
	}

	m, err := obs.ReadManifestFile(path)
	if err != nil {
		t.Fatalf("manifest failed validation: %v", err)
	}
	if m.Tool != "webcachesim" {
		t.Fatalf("tool = %q", m.Tool)
	}
	if m.Config["run"] != "hier-gd" {
		t.Fatalf("config echo missing: %v", m.Config)
	}
	if len(m.Metrics) < 10 {
		t.Fatalf("manifest has %d metrics, want >= 10: %v", len(m.Metrics), m.Metrics)
	}
	// One NC baseline plus the scheme under test.
	if m.Metrics["sim.runs"] != 2 {
		t.Fatalf("sim.runs = %g, want 2", m.Metrics["sim.runs"])
	}
	fp, _ := m.Trace["fingerprint"].(string)
	if !strings.HasPrefix(fp, "fnv1a:") {
		t.Fatalf("trace fingerprint = %q", fp)
	}
	if m.WallSeconds <= 0 {
		t.Fatalf("wall_seconds = %g", m.WallSeconds)
	}
	if gain, ok := m.Notes["latency_gain"].(float64); !ok || gain <= 0 {
		t.Fatalf("latency_gain note = %v", m.Notes["latency_gain"])
	}
}

// TestRunTraceExport drives -run with span tracing on: the sampled sim
// run must emit valid Chrome trace-event JSON and JSONL, publish the
// trace.* totals into the manifest, and record a decomposition note
// whose span-derived tiers match the analytic model.
func TestRunTraceExport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.json")
	jsonl := filepath.Join(dir, "trace.jsonl")
	manifest := filepath.Join(dir, "run.json")
	of := obsFlags{manifest: manifest, traceOut: out, traceJSONL: jsonl, traceSample: 50}
	sess, err := of.start("webcachesim")
	if err != nil {
		t.Fatal(err)
	}
	if err := runScheme("hier-gd", traceSource{scale: 0.02, seed: 1}, 0.3, sess, nil); err != nil {
		t.Fatal(err)
	}
	if err := sess.close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("chrome export invalid: %v", err)
	}
	jl, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(jl)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("jsonl export empty")
	}

	m, err := obs.ReadManifestFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics["trace.sampled"] != float64(len(lines)) {
		t.Fatalf("trace.sampled = %v for %d exported traces", m.Metrics["trace.sampled"], len(lines))
	}
	dec, ok := m.Notes["decomposition"].(map[string]any)
	if !ok {
		t.Fatalf("decomposition note = %T", m.Notes["decomposition"])
	}
	if within, _ := dec["within"].(bool); !within {
		t.Fatalf("span-derived decomposition disagrees with the analytic model: %v", dec)
	}
}

// TestCPUProfileFlag checks that -cpuprofile produces a pprof-format
// file (gzip-framed protobuf) even for a short run.
func TestCPUProfileFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.out")
	of := obsFlags{cpuprofile: path}
	sess, err := of.start("webcachesim")
	if err != nil {
		t.Fatal(err)
	}
	if err := runScheme("sc", traceSource{scale: 0.02, seed: 1}, 0.3, sess, nil); err != nil {
		t.Fatal(err)
	}
	if err := sess.close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatalf("profile is not gzip-framed pprof data (%d bytes)", len(b))
	}
}
