// Command webcachesim regenerates the paper's evaluation figures
// (Zhu & Hu, ICPP 2003) as latency-gain tables.
//
// Usage:
//
//	webcachesim -fig 2a                  # one figure
//	webcachesim -fig all -scale 0.2      # every figure at 20% workload scale
//	webcachesim -fig 2a -markdown        # markdown tables for EXPERIMENTS.md
//	webcachesim -fig 5a -replicates 5    # multi-seed with 95% CIs
//	webcachesim -fig 2a -plot plots/     # gnuplot .dat/.gp export
//	webcachesim -fig 2a -json            # figures as JSON
//	webcachesim -run hier-gd -frac 0.2   # a single scheme run with details
//	webcachesim -compare -frac 0.2       # every scheme (and Squirrel) side by side
//	webcachesim -compare -preset dec-isp # ... on a preset trace family
//	webcachesim -compare -trace corp.bin # ... on an external trace file
//	webcachesim -presets                 # list the workload families
//
// Observability (see METRICS.md for every metric and the manifest
// schema):
//
//	webcachesim -fig 2a -progress            # live per-job progress with ETA
//	webcachesim -fig 2a -metrics             # dump the metric registry to stderr
//	webcachesim -fig 2a -manifest run.json   # write a run-manifest JSON document
//	webcachesim -fig 2a -cpuprofile cpu.out  # CPU profile for go tool pprof
//	webcachesim -fig 2a -memprofile mem.out  # heap profile on exit
//
// Correctness:
//
//	webcachesim -compare -check              # run with cross-layer invariant checking
//	webcachesim -run hier-gd -check          # ... on a single scheme
//
// Reproducibility flags: -seed picks the workload/simulation seed,
// -workers bounds sweep parallelism (0 = NumCPU), -ucb swaps in the
// UCB-like trace for -run/-compare, and -v prints per-figure timing.
//
// Scale 1.0 replays the paper's full one-million-request workloads;
// smaller scales preserve the shapes at a fraction of the cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"webcache"
	"webcache/internal/obs"
)

func main() {
	var (
		fig        = flag.String("fig", "", "figure to regenerate: 2a 2b 3 4 5a 5b 5c 5d, or 'all'")
		runOne     = flag.String("run", "", "run a single scheme (nc, sc, fc, nc-ec, sc-ec, fc-ec, hier-gd) and print details")
		scale      = flag.Float64("scale", 0.2, "workload scale (1.0 = the paper's 1M requests)")
		frac       = flag.Float64("frac", 0.5, "proxy cache size fraction for -run")
		seed       = flag.Int64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "sweep parallelism (0 = NumCPU)")
		markdown   = flag.Bool("markdown", false, "emit markdown tables")
		jsonOut    = flag.Bool("json", false, "emit figures as JSON")
		plotDir    = flag.String("plot", "", "also export gnuplot .dat/.gp files into this directory")
		replicates = flag.Int("replicates", 1, "seeds per figure; >1 adds 95% confidence intervals")
		ucb        = flag.Bool("ucb", false, "use the UCB-like trace for -run/-compare")
		traceFile  = flag.String("trace", "", "replay an external trace file for -run/-compare (binary or text)")
		preset     = flag.String("preset", "", "use a workload preset family for -run/-compare (see -presets)")
		listPre    = flag.Bool("presets", false, "list workload preset families and exit")
		compare    = flag.Bool("compare", false, "run every scheme (plus the Squirrel baseline) at -frac and tabulate")
		check      = flag.Bool("check", false, "run with cross-layer invariant checking (shadow oracles on every cache, directory, ring, and cluster; see DESIGN.md); exits non-zero on violations")
		verbose    = flag.Bool("v", false, "print timing")
	)
	var of obsFlags
	of.register()
	flag.Parse()

	if *listPre {
		for _, p := range webcache.WorkloadPresets() {
			fmt.Printf("%-16s %s\n", p.Name, p.Description)
		}
		return
	}
	if !*compare && *runOne == "" && *fig == "" {
		flag.Usage()
		os.Exit(2)
	}

	sess, err := of.start("webcachesim")
	if err != nil {
		fatal(err)
	}
	for k, v := range map[string]any{
		"fig": *fig, "run": *runOne, "compare": *compare,
		"scale": *scale, "frac": *frac, "seed": *seed,
		"workers": *workers, "replicates": *replicates,
		"ucb": *ucb, "trace": *traceFile, "preset": *preset,
	} {
		sess.setConfig(k, v)
	}

	var chk *webcache.Checker
	if *check {
		chk = webcache.NewChecker(sess.reg)
	}

	src := traceSource{scale: *scale, seed: *seed, ucb: *ucb, file: *traceFile, preset: *preset}
	switch {
	case *compare:
		err = compareSchemes(src, *frac, sess, chk)
	case *runOne != "":
		err = runScheme(*runOne, src, *frac, sess, chk)
	default:
		// Timing goes through the obs timer API; when no registry was
		// requested a private one backs the -v output.
		treg := sess.reg
		if treg == nil {
			treg = obs.NewRegistry("webcachesim-timing")
		}
		ids := []string{*fig}
		if *fig == "all" {
			ids = webcache.FigureIDs()
		}
		sess.setNote("figures", ids)
		for _, id := range ids {
			if err = runFigure(id, sess, treg, *verbose, figureParams{
				scale: *scale, seed: *seed, workers: *workers,
				replicates: *replicates, markdown: *markdown,
				jsonOut: *jsonOut, plotDir: *plotDir, check: chk,
			}); err != nil {
				break
			}
		}
	}
	if err == nil && chk != nil {
		fmt.Printf("\ninvariants: %d checks, %d violations\n", chk.Checks(), chk.ViolationCount())
		err = chk.Err()
	}
	if cerr := sess.close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
}

// figureParams carries the rendering options for one figure run.
type figureParams struct {
	scale      float64
	seed       int64
	workers    int
	replicates int
	markdown   bool
	jsonOut    bool
	plotDir    string
	check      *webcache.Checker
}

// runFigure regenerates and renders one figure, timing it under
// "figure.<id>" in treg and reporting sweep progress when enabled.
func runFigure(id string, sess *obsSession, treg *obs.Registry, verbose bool, p figureParams) error {
	timer := treg.Timer("figure." + id)
	stop := timer.Start()
	opts := webcache.FigureOptions{Scale: p.scale, Seed: p.seed, Workers: p.workers, Obs: sess.reg, Check: p.check}
	progress, finishProgress := sess.progressFunc("fig " + id)
	opts.Progress = progress

	var f *webcache.Figure
	var err error
	if p.replicates > 1 {
		f, err = webcache.RunFigureReplicated(id, opts, p.replicates)
	} else {
		f, err = webcache.RunFigure(id, opts)
	}
	finishProgress()
	stop()
	if err != nil {
		return err
	}
	switch {
	case p.jsonOut:
		if err := webcache.WriteFigureJSON(os.Stdout, f); err != nil {
			return err
		}
	case p.markdown:
		fmt.Printf("### Figure %s — %s\n\n", f.ID, f.Title)
		fmt.Println(webcache.FormatMarkdown(f))
	default:
		fmt.Println(webcache.FormatTable(f))
	}
	if p.plotDir != "" {
		if err := webcache.ExportGnuplot(p.plotDir, f); err != nil {
			return err
		}
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "figure %s took %v\n", id, timer.Total().Round(time.Millisecond))
	}
	return nil
}

func runScheme(name string, src traceSource, frac float64, sess *obsSession, chk *webcache.Checker) error {
	scheme, err := webcache.ParseScheme(name)
	if err != nil {
		return err
	}
	tr, err := src.load()
	if err != nil {
		return err
	}
	sess.setTrace(tr)
	st := webcache.AnalyzeTrace(tr)
	fmt.Printf("workload: %s\n", st)

	nc, err := webcache.Run(tr, webcache.Config{Scheme: webcache.NC, ProxyCacheFrac: frac, Seed: src.seed, Obs: sess.reg, Check: chk})
	if err != nil {
		return err
	}
	res, err := webcache.Run(tr, webcache.Config{Scheme: scheme, ProxyCacheFrac: frac, Seed: src.seed, Obs: sess.reg, Check: chk, Tracer: sess.tracer})
	if err != nil {
		return err
	}
	sess.setNote("latency_gain", webcache.Gain(res.AvgLatency, nc.AvgLatency))
	fmt.Printf("\n%s at %.0f%% proxy cache:\n", scheme, frac*100)
	fmt.Printf("  avg latency      %.4f (NC: %.4f)\n", res.AvgLatency, nc.AvgLatency)
	fmt.Printf("  latency gain     %.1f%%\n", 100*webcache.Gain(res.AvgLatency, nc.AvgLatency))
	for _, src := range []webcache.Source{webcache.SrcLocalProxy, webcache.SrcP2P, webcache.SrcRemoteProxy, webcache.SrcServer} {
		fmt.Printf("  %-16s %.1f%%\n", src.String(), 100*res.HitRatio(src))
	}
	if scheme == webcache.HierGD {
		fmt.Printf("  p2p stores=%d diversions=%d lookups=%d hits=%d pushes=%d messages=%d piggyback-saves=%d\n",
			res.P2P.Stores, res.P2P.Diversions, res.P2P.Lookups, res.P2P.LookupHits,
			res.P2P.Pushes, res.P2P.Messages, res.P2P.PiggybackSave)
		fmt.Printf("  directory: falsePositives=%d memory=%dB\n",
			res.DirectoryFalsePositives, res.DirectoryMemoryBytes)
	}
	fmt.Printf("  infinite cache sizes: %v, proxy caps: %v\n",
		res.InfiniteCacheSizes, res.ProxyCapacities)
	if sess.tracer != nil {
		// Fold the sampled span traces into a per-tier latency
		// decomposition and cross-check each tier's span-derived mean
		// against the analytic netmodel latency (METRICS.md "Span
		// tracing"); the known scheme deviations are documented on
		// CheckDecomposition.
		rep := webcache.CheckDecomposition(webcache.DefaultNetwork(), sess.tracer.Decompose(), 1e-9)
		fmt.Printf("\nlatency decomposition (%d sampled traces, span-derived vs analytic):\n%s",
			sess.tracer.Len(), rep.Table())
		sess.setNote("decomposition", rep)
	}
	return nil
}

// traceSource selects the -run/-compare workload: an external file, a
// preset family, the UCB-like trace, or the scaled paper default.
type traceSource struct {
	scale  float64
	seed   int64
	ucb    bool
	file   string
	preset string
}

func (src traceSource) load() (*webcache.Trace, error) {
	switch {
	case src.file != "":
		f, err := os.Open(src.file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if tr, err := webcache.ReadTraceBinary(f); err == nil {
			return tr, nil
		}
		if _, err := f.Seek(0, 0); err != nil {
			return nil, err
		}
		return webcache.ReadTraceText(f)
	case src.preset != "":
		return webcache.GeneratePresetWorkload(src.preset, int(1_000_000*src.scale), src.seed)
	case src.ucb:
		return webcache.GenerateUCBWorkload(webcache.UCBConfig{Scale: src.scale / 9.2, Seed: src.seed})
	default:
		cfg := webcache.DefaultWorkload()
		cfg.NumRequests = int(float64(cfg.NumRequests) * src.scale)
		cfg.NumObjects = int(float64(cfg.NumObjects) * src.scale)
		cfg.Seed = src.seed
		return webcache.GenerateWorkload(cfg)
	}
}

func compareSchemes(src traceSource, frac float64, sess *obsSession, chk *webcache.Checker) error {
	tr, err := src.load()
	if err != nil {
		return err
	}
	sess.setTrace(tr)
	fmt.Printf("workload: %s\nproxy cache: %.0f%% of infinite\n\n", webcache.AnalyzeTrace(tr), frac*100)
	nc, err := webcache.Run(tr, webcache.Config{Scheme: webcache.NC, ProxyCacheFrac: frac, Seed: src.seed, Obs: sess.reg, Check: chk})
	if err != nil {
		return err
	}
	fmt.Printf("%-9s %9s %7s %7s %6s %8s %8s %10s\n",
		"scheme", "latency", "gain%", "proxy%", "p2p%", "remote%", "server%", "srv-bytes%")
	schemes := append(webcache.AllSchemes(), webcache.Squirrel)
	for _, s := range schemes {
		res, err := webcache.Run(tr, webcache.Config{Scheme: s, ProxyCacheFrac: frac, Seed: src.seed, Obs: sess.reg, Check: chk})
		if err != nil {
			return err
		}
		fmt.Printf("%-9s %9.4f %7.1f %7.1f %6.1f %8.1f %8.1f %10.1f\n",
			s, res.AvgLatency,
			100*webcache.Gain(res.AvgLatency, nc.AvgLatency),
			100*res.HitRatio(webcache.SrcLocalProxy),
			100*res.HitRatio(webcache.SrcP2P),
			100*res.HitRatio(webcache.SrcRemoteProxy),
			100*res.HitRatio(webcache.SrcServer),
			100*res.ServerByteRatio())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "webcachesim:", err)
	if strings.Contains(err.Error(), "unknown figure") {
		fmt.Fprintln(os.Stderr, "known figures:", strings.Join(webcache.FigureIDs(), " "))
	}
	os.Exit(1)
}
