package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"webcache"
	"webcache/internal/obs"
)

// obsFlags is the observability flag surface shared by the simulator
// commands (README "Observability"): live progress, a metrics dump, a
// run manifest, and pprof profile capture.
type obsFlags struct {
	progress    bool
	metrics     bool
	manifest    string
	cpuprofile  string
	memprofile  string
	traceOut    string
	traceJSONL  string
	traceSample int
}

// register declares the flags on the default flag set.
func (o *obsFlags) register() {
	flag.BoolVar(&o.progress, "progress", false, "print live per-job sweep progress with ETA to stderr")
	flag.BoolVar(&o.metrics, "metrics", false, "dump the run's metric registry to stderr on exit")
	flag.StringVar(&o.manifest, "manifest", "", "write a run-manifest JSON document to this file (schema in METRICS.md)")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	flag.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&o.traceOut, "trace-out", "", "write sampled request span traces as Chrome trace-event JSON to this file (-run only)")
	flag.StringVar(&o.traceJSONL, "trace-jsonl", "", "write sampled request span traces as JSONL to this file (-run only)")
	flag.IntVar(&o.traceSample, "trace-sample", 100, "head-sample 1 in N requests for span tracing")
}

// obsSession is one command invocation's observability state: the
// metric registry (nil unless -metrics or -manifest asked for one, so
// instrumentation stays off by default), the manifest under
// construction, and the CPU profiler stop hook.
type obsSession struct {
	flags    obsFlags
	reg      *obs.Registry
	manifest *obs.Manifest
	tracer   *obs.Tracer
	stopCPU  func()
}

// start opens the session: allocates the registry, manifest, and span
// tracer when requested and begins CPU profiling.
func (o *obsFlags) start(tool string) (*obsSession, error) {
	s := &obsSession{flags: *o}
	if o.metrics || o.manifest != "" {
		s.reg = obs.NewRegistry(tool)
		s.manifest = obs.NewManifest(tool)
	}
	if o.traceOut != "" || o.traceJSONL != "" {
		// Virtual clock: simulated requests are traced in the sim's
		// normalized latency units with sim time as the span clock.
		s.tracer = obs.NewTracer(obs.TracerOptions{
			Origin:      "sim",
			SampleEvery: o.traceSample,
			Clock:       obs.ClockVirtual,
		})
	}
	if o.cpuprofile != "" {
		stop, err := obs.StartCPUProfile(o.cpuprofile)
		if err != nil {
			return nil, err
		}
		s.stopCPU = stop
	}
	return s, nil
}

// setConfig echoes a resolved option into the manifest (no-op when no
// manifest was requested).
func (s *obsSession) setConfig(key string, value any) {
	if s.manifest != nil {
		s.manifest.SetConfig(key, value)
	}
}

// setNote attaches a tool-specific extra to the manifest.
func (s *obsSession) setNote(key string, value any) {
	if s.manifest != nil {
		s.manifest.SetNote(key, value)
	}
}

// setTrace records the replayed workload's identity — counts plus a
// content fingerprint — so two manifests are comparable only when they
// replayed the same trace.
func (s *obsSession) setTrace(tr *webcache.Trace) {
	if s.manifest == nil {
		return
	}
	st := webcache.AnalyzeTrace(tr)
	s.manifest.Trace = map[string]any{
		"fingerprint":      webcache.TraceFingerprint(tr),
		"requests":         st.Requests,
		"distinct_objects": st.DistinctObjs,
		"distinct_clients": st.DistinctClients,
		"zipf_alpha":       st.ZipfAlpha,
	}
}

// progressFunc returns a core.Options-shaped progress callback that
// paints a live line (with ETA) for the labelled sweep, or nil when
// -progress is off.  The printer is created on the first callback,
// when the job total is known.
func (s *obsSession) progressFunc(label string) (cb func(done, total int), finish func()) {
	if !s.flags.progress {
		return nil, func() {}
	}
	var once sync.Once
	var pp *obs.ProgressPrinter
	cb = func(done, total int) {
		once.Do(func() { pp = obs.NewProgressPrinter(os.Stderr, label, total) })
		pp.Step(1)
	}
	finish = func() {
		if pp != nil {
			pp.Finish()
		}
	}
	return cb, finish
}

// close finishes the session: stops profiling, writes the heap
// profile, flushes the trace exports, dumps metrics, and emits the
// manifest.  Call exactly once, after all work has completed (the
// tracer's totals fold into the registry here, and PublishMetrics
// accumulates — a second call would double-count).
func (s *obsSession) close() error {
	if s.stopCPU != nil {
		s.stopCPU()
	}
	if s.flags.memprofile != "" {
		if err := obs.WriteHeapProfile(s.flags.memprofile); err != nil {
			return err
		}
	}
	if s.tracer != nil {
		s.tracer.PublishMetrics(s.reg)
		if s.flags.traceOut != "" {
			if err := s.tracer.WriteChromeFile(s.flags.traceOut); err != nil {
				return fmt.Errorf("trace export: %w", err)
			}
			fmt.Fprintf(os.Stderr, "trace: %d records -> %s\n", s.tracer.Len(), s.flags.traceOut)
		}
		if s.flags.traceJSONL != "" {
			if err := s.tracer.WriteJSONLFile(s.flags.traceJSONL); err != nil {
				return fmt.Errorf("trace export: %w", err)
			}
			fmt.Fprintf(os.Stderr, "trace: %d records -> %s\n", s.tracer.Len(), s.flags.traceJSONL)
		}
	}
	if s.flags.metrics && s.reg != nil {
		fmt.Fprint(os.Stderr, s.reg.String())
	}
	if s.flags.manifest != "" {
		s.manifest.Finish(s.reg)
		if err := s.manifest.WriteFile(s.flags.manifest); err != nil {
			return fmt.Errorf("writing manifest: %w", err)
		}
	}
	return nil
}
