package main

import (
	"os"
	"testing"

	"webcache/internal/obs"
)

// TestMetricsDocFigureNamespace holds the figure.* namespace in
// METRICS.md against what one CLI figure run registers: the
// `figure.<id>` timer family, and nothing else.
func TestMetricsDocFigureNamespace(t *testing.T) {
	md, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	of := obsFlags{}
	sess, err := of.start("webcachesim")
	if err != nil {
		t.Fatal(err)
	}
	treg := obs.NewRegistry("doc-smoke")
	if err := runFigure("5a", sess, treg, false, figureParams{scale: 0.02, seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sess.close(); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, m := range treg.Snapshot() {
		names = append(names, m.Name)
	}
	if len(names) == 0 {
		t.Fatal("figure run registered nothing")
	}
	if err := obs.CheckMetricsDoc(md, names, "figure"); err != nil {
		t.Fatal(err)
	}
}
