// Command benchdiff compares two run-manifest JSON documents (the
// -manifest output of webcachesim and hiergdd bench) metric by metric:
// what changed, by how much, and what exists on one side only.
//
// Usage:
//
//	benchdiff a.json b.json            # refuse mismatched workloads
//	benchdiff -force a.json b.json     # diff across different traces
//	benchdiff -json a.json b.json      # machine-readable diff
//
// Two manifests are comparable only when their schema version and
// workload fingerprint agree; -force overrides the fingerprint check
// (never the schema check).  `make bench-diff` demonstrates the loop:
// two identical benches, then this diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"webcache/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	force := fs.Bool("force", false, "diff even when the workload fingerprints differ")
	jsonOut := fs.Bool("json", false, "emit the diff as JSON instead of a table")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: benchdiff [-force] [-json] a.json b.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("need exactly two manifest files, got %d", fs.NArg())
	}
	a, err := obs.ReadManifestFile(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	b, err := obs.ReadManifestFile(fs.Arg(1))
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(1), err)
	}
	d, err := obs.DiffManifests(a, b, *force)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(d)
	}
	fmt.Print(d.String())
	return nil
}
