package main

import (
	"path/filepath"
	"strings"
	"testing"

	"webcache/internal/obs"
)

// writeManifest builds a minimal valid manifest file.
func writeManifest(t *testing.T, path, fp string, metrics map[string]float64) {
	t.Helper()
	m := obs.NewManifest("benchdiff-test")
	m.Trace = map[string]any{"fingerprint": fp}
	reg := obs.NewRegistry("benchdiff-test")
	for name, v := range metrics {
		reg.Gauge(name).Set(v)
	}
	m.Finish(reg)
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestDiffMatchingFingerprints(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	writeManifest(t, a, "fnv1a:1", map[string]float64{"x": 1, "same": 5})
	writeManifest(t, b, "fnv1a:1", map[string]float64{"x": 2, "same": 5})
	if err := run([]string{a, b}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffRefusesMismatchedWorkloads(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	writeManifest(t, a, "fnv1a:1", map[string]float64{"x": 1})
	writeManifest(t, b, "fnv1a:2", map[string]float64{"x": 2})
	err := run([]string{a, b})
	if err == nil || !strings.Contains(err.Error(), "fingerprints differ") {
		t.Fatalf("mismatched workloads accepted: %v", err)
	}
	if err := run([]string{"-force", a, b}); err != nil {
		t.Fatalf("-force did not override: %v", err)
	}
}

func TestDiffArgValidation(t *testing.T) {
	if err := run([]string{"only-one.json"}); err == nil {
		t.Fatal("single argument accepted")
	}
	if err := run([]string{"/nonexistent/a.json", "/nonexistent/b.json"}); err == nil {
		t.Fatal("unreadable manifests accepted")
	}
}
