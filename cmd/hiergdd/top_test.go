package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"webcache/internal/httpcache"
	"webcache/internal/loadgen"
	"webcache/internal/obs/cluster"
	"webcache/internal/obs/slo"
)

// The dashboard must render live cluster state from real fleet
// members: a two-member loopback fleet with per-member registries and
// SLO trackers is driven over HTTP, scraped twice through the same
// aggregator `hiergdd top` uses, and the rendered frame must carry
// both members as up, the cluster hit line, and the SLO class row.
func TestTopDashboardFromLiveFleet(t *testing.T) {
	topo, err := loadgen.StartLoopback(loadgen.TopologyConfig{
		Proxies:            2,
		CachesPerProxy:     1,
		ProxyCapacityBytes: []uint64{8192},
		CacheCapacityBytes: []uint64{8192},
		ObjectBytes:        64,
		MetricsPerDaemon:   true,
		SLOClasses: []slo.Class{
			{Name: "interactive", Latency: time.Second, Availability: 0.99, Window: time.Minute},
		},
		Fleet:            true,
		FleetReplication: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		topo.Close(ctx)
	}()

	fetch := func(p int, path string) {
		t.Helper()
		u := fmt.Sprintf("%s/fetch?url=%s", topo.ProxyURLs[p], url.QueryEscape(topo.OriginURL+path))
		req, _ := http.NewRequest("GET", u, nil)
		req.Header.Set(httpcache.SLOHeader, "interactive")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	members := []cluster.Member{
		{Name: "alpha", URL: topo.ProxyURLs[0]},
		{Name: "beta", URL: topo.ProxyURLs[1]},
	}
	agg := cluster.New(members, cluster.Options{})

	for i := 0; i < 6; i++ {
		fetch(i%2, fmt.Sprintf("/warm-%d", i%3))
	}
	prev := agg.ScrapeOnce(context.Background())
	for i := 0; i < 8; i++ {
		fetch(i%2, fmt.Sprintf("/warm-%d", i%3))
	}
	cur := agg.ScrapeOnce(context.Background())

	frame := renderDashboard(prev, cur)
	for _, want := range []string{
		"2/2 members up",
		"alpha", "beta",
		"cluster:",
		"hit ratio",
		"interactive",
		"burn.fast",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("dashboard frame missing %q:\n%s", want, frame)
		}
	}
	// Both members took traffic, so both rows render as up with a
	// non-zero request count, and the second frame's throughput column
	// is populated from the delta against the first.
	for _, m := range cur.Members {
		if !m.Up || m.Requests == 0 {
			t.Fatalf("member %s not up with traffic in the scrape: %+v", m.Name, m)
		}
	}
	if cur.Requests <= prev.Requests {
		t.Fatalf("cluster requests did not advance between frames: %v -> %v",
			prev.Requests, cur.Requests)
	}
}
