package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"webcache/internal/core"
	"webcache/internal/obs"
	"webcache/internal/prowgen"
	"webcache/internal/sim"
	"webcache/internal/trace"
)

// The simulator hot-path benchmark (`hiergdd bench -sim`): the
// 7-scheme compare replay driven through both the pre-refactor
// pipeline shape and the refactored one, on the same workload.
//
//   - decode stage: the binary trace decoded by the kept pre-refactor
//     per-record decoder (legacyReadBinary below) vs the batched
//     BatchReader (internal/trace);
//   - replay stage: every sim.AllSchemes() replay run strictly
//     sequentially (the shape webcachesim -compare had before the
//     refactor) vs dealt across the work-stealing sweep scheduler
//     (internal/core.RunJobs).
//
// Like store-bench's single-mutex store.NewBaseline, the pre-refactor
// baseline lives in this harness permanently, so the speedup the
// refactor is sold on stays measurable run-to-run.  Both stages also
// cross-check bit-identical results: the steal schedule and the batch
// size must be invisible in the output.
//
// The speedup gate scales with the machine: parallelism cannot beat a
// serial loop by 2x on one core, so the effective gate is
// min(-sim-min-speedup, 0.8 x usable workers) — on multi-core CI the
// full gate applies, on a one-core box it degrades to "the scheduler
// must not cost more than its overhead margin".  The manifest records
// cores, both throughputs, and the gate actually applied.
type simBenchConfig struct {
	requests     int
	objects      int
	clients      int
	frac         float64
	workers      int // 0 = GOMAXPROCS
	seed         int64
	minSpeedup   float64
	manifestPath string
}

// simBenchCell is one pipeline measurement.
type simBenchCell struct {
	Pipeline      string  `json:"pipeline"`
	Workers       int     `json:"workers"`
	Requests      int     `json:"requests"` // replayed, all schemes
	Seconds       float64 `json:"seconds"`
	ReqPerSec     float64 `json:"req_per_sec"`
	ReqPerSecCore float64 `json:"req_per_sec_core"`
}

// legacyReadBinary is the pre-refactor binary trace decoder, kept
// verbatim as the decode-stage baseline: one binary.ReadUvarint —
// an interface-typed byte-at-a-time read — per field, per record.
// trace.ReadBinary replaced it with slice-based batch decoding; this
// copy exists only so the bench can measure that replacement.
func legacyReadBinary(r io.Reader) (*trace.Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != "WCTR" {
		return nil, trace.ErrBadMagic
	}
	get := func() (uint64, error) { return binary.ReadUvarint(br) }
	ver, err := get()
	if err != nil {
		return nil, err
	}
	if ver != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	n, err := get()
	if err != nil {
		return nil, err
	}
	nc, err := get()
	if err != nil {
		return nil, err
	}
	no, err := get()
	if err != nil {
		return nil, err
	}
	pre := n
	if pre > 1<<16 {
		pre = 1 << 16
	}
	t := &trace.Trace{
		Requests:   make([]trace.Request, 0, pre),
		NumClients: int(nc),
		NumObjects: int(no),
	}
	var prev uint32
	for i := uint64(0); i < n; i++ {
		dt, err := get()
		if err != nil {
			return nil, fmt.Errorf("trace: request %d: %w", i, err)
		}
		var tm uint32
		if dt&1 == 1 {
			tm = uint32(dt >> 1)
		} else {
			tm = prev + uint32(dt>>1)
		}
		prev = tm
		cl, err := get()
		if err != nil {
			return nil, err
		}
		ob, err := get()
		if err != nil {
			return nil, err
		}
		sz, err := get()
		if err != nil {
			return nil, err
		}
		t.Requests = append(t.Requests, trace.Request{
			Time: tm, Client: trace.ClientID(cl), Object: trace.ObjectID(ob), Size: uint32(sz),
		})
	}
	return t, nil
}

// resultsDigest hashes the JSON-marshalled Results in scheme order —
// the bit-identity witness between the serial and scheduled replays.
func resultsDigest(results []*sim.Result) (string, error) {
	h := sha256.New()
	for _, res := range results {
		blob, err := json.Marshal(res)
		if err != nil {
			return "", err
		}
		h.Write(blob)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func runSimBench(cfg simBenchConfig) error {
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	schemes := sim.AllSchemes()
	fmt.Printf("hiergdd bench -sim: %d requests x %d schemes at frac %.2f, %d workers\n",
		cfg.requests, len(schemes), cfg.frac, workers)

	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests:  cfg.requests,
		NumObjects:   cfg.objects,
		NumClients:   cfg.clients,
		OneTimerFrac: prowgen.DefaultOneTimerFrac,
		Alpha:        0.7,
		StackFrac:    0.2,
		Seed:         cfg.seed,
	})
	if err != nil {
		return err
	}

	// Decode stage: the same encoded bytes through both decoders, best
	// of three (the box may be noisy); both must reproduce the trace.
	var blob bytes.Buffer
	if err := trace.WriteBinary(&blob, tr); err != nil {
		return err
	}
	timeDecode := func(decode func(io.Reader) (*trace.Trace, error)) (time.Duration, error) {
		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			start := time.Now()
			got, err := decode(bytes.NewReader(blob.Bytes()))
			if err != nil {
				return 0, err
			}
			if len(got.Requests) != len(tr.Requests) || got.Requests[0] != tr.Requests[0] {
				return 0, fmt.Errorf("decoder corrupted the trace")
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best, nil
	}
	legacyDec, err := timeDecode(legacyReadBinary)
	if err != nil {
		return err
	}
	batchDec, err := timeDecode(trace.ReadBinary)
	if err != nil {
		return err
	}
	decSpeedup := float64(legacyDec) / float64(batchDec)
	recsPerSec := func(d time.Duration) float64 { return float64(tr.Len()) / d.Seconds() }
	fmt.Printf("\n  decode: legacy %12.0f records/sec, batched %12.0f records/sec (%.2fx)\n",
		recsPerSec(legacyDec), recsPerSec(batchDec), decSpeedup)

	// Replay stage.  One warmup pass per scheme keeps first-touch costs
	// (page faults, map growth) out of both timed pipelines.
	runScheme := func(s sim.Scheme) (*sim.Result, error) {
		return sim.Run(tr, sim.Config{
			Scheme:            s,
			ProxyCacheFrac:    cfg.frac,
			ClientsPerCluster: 16,
			Seed:              cfg.seed,
		})
	}
	for _, s := range schemes {
		if _, err := runScheme(s); err != nil {
			return err
		}
	}

	// Both pipelines are timed best-of-three: the pipelines differ by
	// tens of milliseconds and scheduler noise on a shared box is
	// larger than that, so a single sample would gate on the weather.
	totalReqs := tr.Len() * len(schemes)
	serialResults := make([]*sim.Result, len(schemes))
	serialSecs := 1e18
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for i, s := range schemes {
			if serialResults[i], err = runScheme(s); err != nil {
				return err
			}
		}
		if secs := time.Since(start).Seconds(); secs < serialSecs {
			serialSecs = secs
		}
	}

	parallelResults := make([]*sim.Result, len(schemes))
	errs := make([]error, len(schemes))
	parallelSecs := 1e18
	var steals int64
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		st := core.RunJobs(workers, len(schemes), func(j int) {
			parallelResults[j], errs[j] = runScheme(schemes[j])
		})
		if secs := time.Since(start).Seconds(); secs < parallelSecs {
			parallelSecs = secs
			steals = st
		}
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}

	// Bit-identity: the steal schedule must be invisible in the output.
	serialDig, err := resultsDigest(serialResults)
	if err != nil {
		return err
	}
	parallelDig, err := resultsDigest(parallelResults)
	if err != nil {
		return err
	}
	if serialDig != parallelDig {
		return fmt.Errorf("sim bench: scheduled replay diverged from serial (digest %s != %s)",
			parallelDig, serialDig)
	}

	usable := workers
	if usable > len(schemes) {
		usable = len(schemes)
	}
	cells := []simBenchCell{
		{
			Pipeline: "serial", Workers: 1, Requests: totalReqs, Seconds: serialSecs,
			ReqPerSec:     float64(totalReqs) / serialSecs,
			ReqPerSecCore: float64(totalReqs) / serialSecs,
		},
		{
			Pipeline: "scheduled", Workers: usable, Requests: totalReqs, Seconds: parallelSecs,
			ReqPerSec:     float64(totalReqs) / parallelSecs,
			ReqPerSecCore: float64(totalReqs) / (parallelSecs * float64(usable)),
		},
	}
	fmt.Printf("\n  %-10s %8s %12s %14s %16s\n", "pipeline", "workers", "seconds", "req/sec", "req/sec/core")
	for _, c := range cells {
		fmt.Printf("  %-10s %8d %12.3f %14.0f %16.0f\n", c.Pipeline, c.Workers, c.Seconds, c.ReqPerSec, c.ReqPerSecCore)
	}

	speedup := serialSecs / parallelSecs
	gate := cfg.minSpeedup
	if cap := 0.8 * float64(usable); gate > cap {
		gate = cap
	}
	fmt.Printf("\n  scheduled vs serial: %.2fx (gate %.2fx at %d usable workers, %d steals)\n",
		speedup, gate, usable, steals)
	fmt.Printf("  results digest: %s (serial == scheduled)\n", serialDig)

	if cfg.manifestPath != "" {
		reg := obs.NewRegistry("hiergdd-sim-bench")
		man := obs.NewManifest("hiergdd-sim-bench")
		for _, c := range cells {
			pre := fmt.Sprintf("bench.sim.%s.", c.Pipeline)
			reg.Gauge(pre + "seconds").Set(c.Seconds)
			reg.Gauge(pre + "req_per_sec").Set(c.ReqPerSec)
			reg.Gauge(pre + "req_per_sec_core").Set(c.ReqPerSecCore)
		}
		reg.Gauge("bench.sim.speedup").Set(speedup)
		reg.Gauge("bench.sim.workers").Set(float64(usable))
		reg.Gauge("bench.sim.steals").Set(float64(steals))
		reg.Gauge("bench.sim.decode.legacy_records_per_sec").Set(recsPerSec(legacyDec))
		reg.Gauge("bench.sim.decode.batched_records_per_sec").Set(recsPerSec(batchDec))
		reg.Gauge("bench.sim.decode.speedup").Set(decSpeedup)
		man.SetConfig("requests", cfg.requests)
		man.SetConfig("objects", cfg.objects)
		man.SetConfig("clients", cfg.clients)
		man.SetConfig("frac", cfg.frac)
		man.SetConfig("workers", usable)
		man.SetConfig("seed", cfg.seed)
		man.SetConfig("min_speedup", cfg.minSpeedup)
		man.SetConfig("effective_gate", gate)
		man.Trace = map[string]any{
			"fingerprint":      trace.Fingerprint(tr),
			"requests":         tr.Len(),
			"distinct_clients": traceClients(tr),
		}
		man.SetNote("sim_bench", cells)
		man.SetNote("speedup", speedup)
		man.SetNote("results_digest", serialDig)
		man.Finish(reg)
		if err := man.WriteFile(cfg.manifestPath); err != nil {
			return fmt.Errorf("writing manifest: %w", err)
		}
		if _, err := obs.ReadManifestFile(cfg.manifestPath); err != nil {
			return fmt.Errorf("manifest self-check: %w", err)
		}
		fmt.Printf("  manifest: %s\n", cfg.manifestPath)
	}

	if cfg.minSpeedup > 0 && speedup < gate {
		return fmt.Errorf("sim bench below the gate: %.2fx < %.2fx (scheduled @%d workers vs pre-refactor serial)",
			speedup, gate, usable)
	}
	if decSpeedup < 1 {
		return fmt.Errorf("sim bench: batched decode slower than the pre-refactor decoder (%.2fx)", decSpeedup)
	}
	return nil
}
