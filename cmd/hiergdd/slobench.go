package main

import (
	"context"
	"fmt"
	"math"
	"time"

	"webcache/internal/chaos"
	"webcache/internal/httpcache"
	"webcache/internal/loadgen"
	"webcache/internal/obs"
	"webcache/internal/obs/cluster"
	"webcache/internal/obs/slo"
	"webcache/internal/prowgen"
	"webcache/internal/sim"
	"webcache/internal/trace"
)

// sloBenchConfig sizes the SLO-plane smoke run (bench -slo).
type sloBenchConfig struct {
	requests    int
	objects     int
	clients     int
	proxies     int
	caches      int
	objectBytes int
	rate        float64
	seed        int64
	timeout     time.Duration
	scenario    string // chaos scenario injected into both cells
	classSpecs  string // -slo-classes flag syntax; first class is the gated one
	maxHitDelta float64
	burnGate    bool
	manifest    string
}

// sloCell is one (defenses off|on) cell's outcome.
type sloCell struct {
	DefensesOn  bool               `json:"defenses_on"`
	LoadgenHit  float64            `json:"loadgen_hit_ratio"`
	ClusterHit  float64            `json:"cluster_hit_ratio"`
	HitDelta    float64            `json:"hit_delta"`
	Requests    int                `json:"requests"`
	Errors      int                `json:"errors"`
	MembersUp   int                `json:"members_up"`
	SLO         []cluster.ClassRollup `json:"slo"`
	LoadgenNote map[string]any     `json:"loadgen"`

	snap *cluster.Snapshot
}

// rollup returns the named class's fleet-wide rollup.
func (c *sloCell) rollup(name string) *cluster.ClassRollup {
	for i := range c.SLO {
		if c.SLO[i].Name == name {
			return &c.SLO[i]
		}
	}
	return nil
}

// runSLOBench is the fleet-wide SLO plane end to end: a loopback
// multi-member topology with per-member registries and SLO trackers,
// driven with class-tagged requests under a chaos scenario, defenses
// off and on; the cluster aggregator scrapes every member and the
// gates check that (a) the defenses cut the gated class's fast-window
// burn rate, and (b) the aggregator's cluster hit ratio agrees with
// the load generator's own accounting to within -slo-max-hit-delta.
func runSLOBench(cfg sloBenchConfig) error {
	classes, err := slo.ParseClasses(cfg.classSpecs)
	if err != nil {
		return err
	}
	if len(classes) < 2 {
		return fmt.Errorf("slo bench: need at least two classes, got %q", cfg.classSpecs)
	}
	scn, err := chaos.Lookup(cfg.scenario)
	if err != nil {
		return err
	}
	fmt.Printf("slo bench: %d proxies x %d caches, classes %q, scenario %s\n",
		cfg.proxies, cfg.caches, cfg.classSpecs, scn.Name)

	reg := obs.NewRegistry("hiergdd-slo")
	var cells []*sloCell
	for _, on := range []bool{false, true} {
		cell, err := runSLOCell(cfg, classes, scn, on)
		if err != nil {
			return fmt.Errorf("slo bench defenses=%v: %w", on, err)
		}
		gated := cell.rollup(classes[0].Name)
		if gated == nil {
			return fmt.Errorf("slo bench defenses=%v: aggregator lost class %q: %+v",
				on, classes[0].Name, cell.SLO)
		}
		fmt.Printf("  defenses=%-5v hit live %.3f cluster %.3f (delta %+.4f)  %s burn.fast %.2f burn.slow %.2f  members up %d/%d\n",
			on, cell.LoadgenHit, cell.ClusterHit, cell.HitDelta,
			gated.Name, gated.FastBurn, gated.SlowBurn, cell.MembersUp, cfg.proxies)
		if cfg.maxHitDelta > 0 && math.Abs(cell.HitDelta) > cfg.maxHitDelta {
			return fmt.Errorf("slo bench defenses=%v: aggregator hit ratio %.4f vs loadgen %.4f — |delta| %.4f > %.4f gate",
				on, cell.ClusterHit, cell.LoadgenHit, math.Abs(cell.HitDelta), cfg.maxHitDelta)
		}
		cells = append(cells, cell)
	}

	off, on := cells[0], cells[1]
	burnOff := off.rollup(classes[0].Name).FastBurn
	burnOn := on.rollup(classes[0].Name).FastBurn
	if cfg.burnGate {
		if burnOn >= burnOff {
			return fmt.Errorf("slo bench: defenses did not cut the %s fast burn (off %.2f, on %.2f)",
				classes[0].Name, burnOff, burnOn)
		}
		fmt.Printf("slo bench: defenses cut %s fast burn %.2f -> %.2f\n",
			classes[0].Name, burnOff, burnOn)
	}

	if cfg.manifest != "" {
		man := obs.NewManifest("hiergdd-slo")
		if tr, err := prowgen.Generate(prowgen.Config{
			NumRequests: cfg.requests,
			NumObjects:  cfg.objects,
			NumClients:  cfg.clients,
			Seed:        cfg.seed,
		}); err == nil {
			man.Trace = map[string]any{
				"fingerprint": trace.Fingerprint(tr),
				"requests":    tr.Len(),
			}
		}
		man.SetConfig("requests", cfg.requests)
		man.SetConfig("objects", cfg.objects)
		man.SetConfig("clients", cfg.clients)
		man.SetConfig("proxies", cfg.proxies)
		man.SetConfig("caches_per_proxy", cfg.caches)
		man.SetConfig("object_bytes", cfg.objectBytes)
		man.SetConfig("rate", cfg.rate)
		man.SetConfig("seed", cfg.seed)
		man.SetConfig("scenario", scn.Name)
		man.SetConfig("classes", cfg.classSpecs)
		man.SetConfig("max_hit_delta", cfg.maxHitDelta)
		man.SetNote("defenses_off", off)
		man.SetNote("defenses_on", on)
		// The defenses-on cell's merged cluster view (cluster.* gauges,
		// per-member sums) is the manifest's metric snapshot, so benchdiff
		// tracks the aggregator's numbers run over run.
		for k, v := range on.snap.Values {
			reg.Gauge(k).Set(v)
		}
		reg.Gauge("slo.bench.burn_fast_off").Set(burnOff)
		reg.Gauge("slo.bench.burn_fast_on").Set(burnOn)
		man.Finish(reg)
		if err := man.WriteFile(cfg.manifest); err != nil {
			return fmt.Errorf("writing manifest: %w", err)
		}
		if _, err := obs.ReadManifestFile(cfg.manifest); err != nil {
			return fmt.Errorf("manifest self-check: %w", err)
		}
		fmt.Printf("manifest: %s\n", cfg.manifest)
	}
	return nil
}

// runSLOCell stands up one class-tagged loopback run: per-member
// registries and SLO trackers, the scenario's fault injectors, the
// drive, then a real aggregator scrape over the members' /metrics and
// /fleet/heartbeat endpoints.
func runSLOCell(cfg sloBenchConfig, classes []slo.Class, scn chaos.Scenario, on bool) (*sloCell, error) {
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests: cfg.requests,
		NumObjects:  cfg.objects,
		NumClients:  cfg.clients,
		Seed:        cfg.seed,
	})
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{
		Scheme:            sim.HierGD,
		NumProxies:        cfg.proxies,
		ClientsPerCluster: (cfg.clients + cfg.proxies - 1) / cfg.proxies,
		P2PClientCaches:   cfg.caches,
		ProxyCacheFrac:    0.05,
		ClientCacheFrac:   0.005,
		Seed:              cfg.seed,
	}
	proxyCap, clientCap := simCfg.CapacityPlan(tr)
	toBytes := func(units []uint64) []uint64 {
		out := make([]uint64, len(units))
		for i, u := range units {
			out[i] = u * uint64(cfg.objectBytes)
		}
		return out
	}

	inj := chaos.NewInjector(scn, cfg.caches, obs.NewRegistry("slo-inject"))
	var defenses *httpcache.Defenses
	if on {
		defenses = chaos.Hardened()
	}
	topo, err := loadgen.StartLoopback(loadgen.TopologyConfig{
		Proxies:            cfg.proxies,
		CachesPerProxy:     cfg.caches,
		ProxyCapacityBytes: toBytes(proxyCap),
		CacheCapacityBytes: toBytes(clientCap),
		ObjectBytes:        cfg.objectBytes,
		Defenses:           defenses,
		WrapProxy:          inj.WrapProxy,
		WrapCache:          inj.WrapCache,
		MetricsPerDaemon:   true,
		SLOClasses:         classes,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		topo.Close(ctx)
	}()

	sched, err := loadgen.BuildSchedule(tr, topo.ProxyURLs, topo.OriginURL, simCfg.ProxyFor)
	if err != nil {
		return nil, err
	}
	arrival, err := loadgen.NewPoisson(cfg.rate, cfg.seed)
	if err != nil {
		return nil, err
	}
	// Warmup 0: the gate compares the aggregator's counters (which see
	// every request the daemons served) against the driver's aggregate,
	// so both sides must account the same population.
	tgt := loadgen.NewHTTPTarget(cfg.timeout)
	res, err := loadgen.Run(context.Background(), sched, tgt, loadgen.Options{
		Mode:    loadgen.OpenLoop,
		Arrival: arrival,
		Warmup:  0,
		Obs:     obs.NewRegistry("slo-drive"),
		ClassFor: func(r loadgen.ScheduledRequest) string {
			if int(r.Client)%3 == 0 {
				return classes[1].Name
			}
			return classes[0].Name
		},
	})
	tgt.CloseIdleConnections()
	if err != nil {
		return nil, err
	}

	// The real aggregation path: scrape each member's live /metrics and
	// /fleet/heartbeat over HTTP, exactly as `hiergdd top` and the
	// daemon-side /cluster endpoints do.
	members := make([]cluster.Member, len(topo.ProxyURLs))
	for i, u := range topo.ProxyURLs {
		members[i] = cluster.Member{Name: fmt.Sprintf("member-%d", i), URL: u}
	}
	agg := cluster.New(members, cluster.Options{})
	snap := agg.ScrapeOnce(context.Background())

	cell := &sloCell{
		DefensesOn:  on,
		LoadgenHit:  res.AggregateHitRatio(),
		ClusterHit:  snap.HitRatio,
		Requests:    res.Measured,
		Errors:      res.Errors,
		SLO:         snap.SLO,
		LoadgenNote: res.SummaryNote(),
		snap:        snap,
	}
	cell.HitDelta = cell.ClusterHit - cell.LoadgenHit
	for _, m := range snap.Members {
		if m.Up {
			cell.MembersUp++
		}
	}
	if cell.MembersUp != cfg.proxies {
		return nil, fmt.Errorf("aggregator saw %d/%d members up: %+v",
			cell.MembersUp, cfg.proxies, snap.Members)
	}
	return cell, nil
}
