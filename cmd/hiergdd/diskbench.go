package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"webcache/internal/invariant"
	"webcache/internal/obs"
	"webcache/internal/store/disk"
	"webcache/internal/trace"
)

// The disk-tier benchmark (`hiergdd bench -disk`): three timed phases
// against one store directory.  Populate writes the object set
// through the write-behind queue and Syncs (batched-fsync write
// throughput); mixed drives a closed-loop read/write blend at the
// serving surface; recovery closes the store and reopens it, timing
// the journal replay that rebuilds the index — the number a restarted
// daemon's time-to-serving depends on.  The reopen runs with the
// invariant checker attached, so the benchmark doubles as a
// crash-consistency check on a log that just absorbed concurrent
// rewrites.
type diskBenchConfig struct {
	dir          string // "" = fresh temp dir, removed afterwards
	capacity     uint64
	objects      int
	objectBytes  int
	ops          int
	readFrac     float64
	workers      int
	seed         int64
	minRecovery  float64 // objects/sec gate (0 = report only)
	minMixed     float64 // ops/sec gate (0 = report only)
	manifestPath string
}

// diskBenchResult is the manifest note with every phase's numbers.
type diskBenchResult struct {
	PopulateSeconds   float64 `json:"populate_seconds"`
	PopulateOpsPerSec float64 `json:"populate_ops_per_sec"`
	PopulateBytes     int64   `json:"populate_bytes"`
	MixedSeconds      float64 `json:"mixed_seconds"`
	MixedOpsPerSec    float64 `json:"mixed_ops_per_sec"`
	MixedReads        int64   `json:"mixed_reads"`
	MixedWrites       int64   `json:"mixed_writes"`
	MixedMisses       int64   `json:"mixed_misses"`
	RecoverySeconds   float64 `json:"recovery_seconds"`
	RecoveredObjects  int     `json:"recovered_objects"`
	RecoveryPerSec    float64 `json:"recovery_objects_per_sec"`
}

// diskBody builds key's deterministic body: sizes vary a little by
// key so rewrites relocate records instead of degenerating into the
// same-size refresh path.
func diskBody(key uint64, base int) []byte {
	b := make([]byte, base+int(key%64))
	seed := key
	for i := range b {
		b[i] = byte(splitmix64(&seed))
	}
	return b
}

func runDiskBench(cfg diskBenchConfig) error {
	dir := cfg.dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "hiergdd-disk-bench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	fmt.Printf("hiergdd bench -disk: %d x ~%dB objects, %d mixed ops (%.0f%% reads) over %d workers, dir %s\n",
		cfg.objects, cfg.objectBytes, cfg.ops, cfg.readFrac*100, cfg.workers, dir)

	d, err := disk.Open(disk.Config{Dir: dir, CapacityBytes: cfg.capacity})
	if err != nil {
		return err
	}

	// Phase 1: populate through the write-behind queue, then Sync so
	// the clock covers every fsync the batch worker owed.
	var res diskBenchResult
	start := time.Now()
	for k := uint64(1); k <= uint64(cfg.objects); k++ {
		body := diskBody(k, cfg.objectBytes)
		res.PopulateBytes += int64(len(body))
		if !d.Put(trace.ObjectID(k), disk.Object{HexKey: fmt.Sprintf("%032x", k), Body: body, Cost: 1}) {
			d.Close()
			return fmt.Errorf("disk bench: populate put %d rejected", k)
		}
	}
	if !d.Sync() {
		d.Close()
		return fmt.Errorf("disk bench: populate sync failed")
	}
	res.PopulateSeconds = time.Since(start).Seconds()
	res.PopulateOpsPerSec = float64(cfg.objects) / res.PopulateSeconds

	// Phase 2: closed-loop mixed read/write at the serving surface.
	var reads, writes, misses atomic.Int64
	start = time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		ops := cfg.ops / cfg.workers
		if w < cfg.ops%cfg.workers {
			ops++
		}
		wg.Add(1)
		go func(w, ops int) {
			defer wg.Done()
			rng := uint64(cfg.seed)*0x9E3779B97F4A7C15 + uint64(w)
			for i := 0; i < ops; i++ {
				r := splitmix64(&rng)
				key := r%uint64(cfg.objects) + 1
				if float64((r>>32)&0xFFFF)/65536 < cfg.readFrac {
					reads.Add(1)
					if _, ok := d.Get(trace.ObjectID(key)); !ok {
						misses.Add(1)
					}
				} else {
					writes.Add(1)
					d.Put(trace.ObjectID(key), disk.Object{
						HexKey: fmt.Sprintf("%032x", key), Body: diskBody(key+r, cfg.objectBytes), Cost: 1,
					})
				}
			}
		}(w, ops)
	}
	wg.Wait()
	if !d.Sync() {
		d.Close()
		return fmt.Errorf("disk bench: mixed sync failed")
	}
	res.MixedSeconds = time.Since(start).Seconds()
	res.MixedOpsPerSec = float64(cfg.ops) / res.MixedSeconds
	res.MixedReads = reads.Load()
	res.MixedWrites = writes.Load()
	res.MixedMisses = misses.Load()
	if err := d.Close(); err != nil {
		return fmt.Errorf("disk bench: close before recovery: %w", err)
	}

	// Phase 3: recovery replay, with the agreement check attached.
	reg := obs.NewRegistry("hiergdd-disk-bench")
	check := invariant.New(nil)
	start = time.Now()
	d2, err := disk.Open(disk.Config{Dir: dir, CapacityBytes: cfg.capacity, Metrics: reg, Check: check})
	res.RecoverySeconds = time.Since(start).Seconds()
	if err != nil {
		return fmt.Errorf("disk bench: recovery open: %w", err)
	}
	defer d2.Close()
	if err := check.Err(); err != nil {
		return fmt.Errorf("disk bench: post-recovery invariants: %w", err)
	}
	res.RecoveredObjects = d2.Recovered()
	if res.RecoveredObjects != cfg.objects {
		return fmt.Errorf("disk bench: recovered %d objects, want %d", res.RecoveredObjects, cfg.objects)
	}
	res.RecoveryPerSec = float64(res.RecoveredObjects) / res.RecoverySeconds

	fmt.Printf("\n  %-9s %12s %12s %14s\n", "phase", "seconds", "ops/sec", "detail")
	fmt.Printf("  %-9s %12.3f %12.0f %14s\n", "populate", res.PopulateSeconds, res.PopulateOpsPerSec,
		fmt.Sprintf("%d bytes", res.PopulateBytes))
	fmt.Printf("  %-9s %12.3f %12.0f %14s\n", "mixed", res.MixedSeconds, res.MixedOpsPerSec,
		fmt.Sprintf("%d rd / %d wr", res.MixedReads, res.MixedWrites))
	fmt.Printf("  %-9s %12.3f %12.0f %14s\n", "recovery", res.RecoverySeconds, res.RecoveryPerSec,
		fmt.Sprintf("%d objects", res.RecoveredObjects))

	if cfg.manifestPath != "" {
		man := obs.NewManifest("hiergdd-disk-bench")
		reg.Gauge("bench.disk.populate.seconds").Set(res.PopulateSeconds)
		reg.Gauge("bench.disk.populate.ops_per_sec").Set(res.PopulateOpsPerSec)
		reg.Gauge("bench.disk.mixed.seconds").Set(res.MixedSeconds)
		reg.Gauge("bench.disk.mixed.ops_per_sec").Set(res.MixedOpsPerSec)
		reg.Gauge("bench.disk.recovery.seconds").Set(res.RecoverySeconds)
		reg.Gauge("bench.disk.recovery.objects").Set(float64(res.RecoveredObjects))
		reg.Gauge("bench.disk.recovery.objects_per_sec").Set(res.RecoveryPerSec)
		man.SetConfig("disk_capacity", cfg.capacity)
		man.SetConfig("objects", cfg.objects)
		man.SetConfig("object_bytes", cfg.objectBytes)
		man.SetConfig("disk_ops", cfg.ops)
		man.SetConfig("disk_read_frac", cfg.readFrac)
		man.SetConfig("disk_workers", cfg.workers)
		man.SetConfig("seed", cfg.seed)
		// Synthetic, config-determined workload: the fingerprint hashes
		// the generator parameters so benchdiff refuses to compare cells
		// from different workloads.
		man.Trace = map[string]any{
			"fingerprint": fmt.Sprintf("disk-bench:objects=%d,bytes=%d,ops=%d,read=%.2f,seed=%d",
				cfg.objects, cfg.objectBytes, cfg.ops, cfg.readFrac, cfg.seed),
			"requests": cfg.objects + cfg.ops,
		}
		man.SetNote("disk_bench", res)
		man.Finish(reg)
		if err := man.WriteFile(cfg.manifestPath); err != nil {
			return fmt.Errorf("writing manifest: %w", err)
		}
		if _, err := obs.ReadManifestFile(cfg.manifestPath); err != nil {
			return fmt.Errorf("manifest self-check: %w", err)
		}
		fmt.Printf("  manifest: %s\n", cfg.manifestPath)
	}

	if cfg.minMixed > 0 && res.MixedOpsPerSec < cfg.minMixed {
		return fmt.Errorf("disk bench below the mixed gate: %.0f ops/sec < %.0f",
			res.MixedOpsPerSec, cfg.minMixed)
	}
	if cfg.minRecovery > 0 && res.RecoveryPerSec < cfg.minRecovery {
		return fmt.Errorf("disk bench below the recovery gate: %.0f objects/sec < %.0f",
			res.RecoveryPerSec, cfg.minRecovery)
	}
	return nil
}
