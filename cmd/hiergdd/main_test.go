package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"webcache/internal/httpcache"
	"webcache/internal/obs"
	"webcache/internal/store/disk"
)

// serveDaemon must serve requests, then drain and return nil when the
// process receives SIGTERM (the daemons' graceful-shutdown path).
func TestServeDaemonGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- serveDaemon(ln, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("ok"))
		}), 2*time.Second, nil, nil)
	}()

	url := fmt.Sprintf("http://%s/", ln.Addr())
	var resp *http.Response
	for i := 0; ; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp.Body.Close()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveDaemon returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveDaemon did not return within 5s of SIGTERM")
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// The readiness flip must precede the listener close: after SIGTERM,
// /readyz answers 503 "draining" over the still-open listener (the
// drainGrace window routers use to stop sending work), and only then
// does the listener stop accepting.
func TestServeDaemonReadyzFlipsBeforeClose(t *testing.T) {
	oldGrace := drainGrace
	drainGrace = 600 * time.Millisecond
	defer func() { drainGrace = oldGrace }()

	cc := httpcache.NewClientCache(1 << 20)
	cc.MarkReady()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- serveDaemon(ln, cc.Handler(), 2*time.Second, cc.MarkDraining, nil) }()

	base := fmt.Sprintf("http://%s", ln.Addr())
	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b := make([]byte, 64)
		n, _ := resp.Body.Read(b)
		return resp.StatusCode, strings.TrimSpace(string(b[:n]))
	}
	for i := 0; ; i++ {
		if resp, err := http.Get(base + "/readyz"); err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if i > 100 {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Inside the grace window the listener must still accept, with
	// /readyz flipped to 503 "draining" and /healthz still healthy; a
	// connection error here means the listener closed before the flip.
	deadline := time.Now().Add(drainGrace)
	for {
		code, body := get("/readyz")
		if code == http.StatusServiceUnavailable && body == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never flipped during the grace window (last %d %q)", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d while draining, want 200", code)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveDaemon returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveDaemon did not return after the drain")
	}
	if _, err := http.Get(base + "/readyz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// Graceful shutdown with work in flight: a slow request issued before
// SIGTERM must complete within the -drain window, and the shutdown
// flush must then export the trace files (valid Chrome trace-event
// JSON + JSONL) and fold the tracer totals into the /metrics registry
// — the daemons' trace/metrics flush path end to end.
func TestServeDaemonDrainFlushesExports(t *testing.T) {
	dir := t.TempDir()
	traceOut := filepath.Join(dir, "trace.json")
	traceJSONL := filepath.Join(dir, "trace.jsonl")
	sample := 1
	d := &daemonObs{traceOut: &traceOut, traceJSONL: &traceJSONL, sample: &sample}
	tracer, reg, flush := d.build("proxy")
	if tracer == nil {
		t.Fatal("tracer not built despite -trace")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := tracer.StartTrace("request", 0)
		sp := st.StartSpan("work", "Tl")
		time.Sleep(250 * time.Millisecond) // still running when SIGTERM lands
		sp.End()
		st.FinishWall("proxy")
		w.Write([]byte("slow-ok"))
	})
	done := make(chan error, 1)
	go func() { done <- serveDaemon(ln, handler, 2*time.Second, nil, flush) }()

	url := fmt.Sprintf("http://%s/", ln.Addr())
	for i := 0; ; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			conn.Close()
			break
		}
		if i > 50 {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Put a slow request in flight, then signal mid-request.
	body := make(chan string, 1)
	fetchErr := make(chan error, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			fetchErr <- err
			return
		}
		defer resp.Body.Close()
		b := make([]byte, 64)
		n, _ := resp.Body.Read(b)
		body <- string(b[:n])
	}()
	time.Sleep(60 * time.Millisecond) // request is inside the handler's sleep
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case b := <-body:
		if b != "slow-ok" {
			t.Fatalf("in-flight request body %q, want %q", b, "slow-ok")
		}
	case err := <-fetchErr:
		t.Fatalf("in-flight request failed during drain: %v", err)
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight request did not complete within the drain window")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveDaemon returned %v, want nil", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("serveDaemon did not return after drain")
	}

	// Flush ran after the drain: exports on disk and totals published.
	data, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatalf("chrome export not written: %v", err)
	}
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("chrome export invalid: %v", err)
	}
	jl, err := os.ReadFile(traceJSONL)
	if err != nil {
		t.Fatalf("jsonl export not written: %v", err)
	}
	if len(jl) == 0 {
		t.Fatal("jsonl export empty despite a traced request")
	}
	if got := reg.Values()["trace.sampled"]; got < 1 {
		t.Fatalf("trace.sampled = %v after flush, want >= 1", got)
	}
}

// Graceful shutdown must not lose acknowledged stores: every POST
// /store a disk-tier daemon answered 200 before SIGTERM must be in
// the journal when the process exits — the drain closes the listener,
// then the flush drains the write-behind queue.  A fresh store over
// the same directory must recover every acknowledged key.
func TestServeDaemonDrainFlushesDiskQueue(t *testing.T) {
	dir := t.TempDir()
	cc, err := httpcache.NewClientCacheOpts(httpcache.Options{
		CapacityBytes: 1 << 20,
		DiskDir:       dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- serveDaemon(ln, cc.Handler(), 2*time.Second, nil, func() {
			if err := cc.Close(); err != nil {
				t.Errorf("disk close during flush: %v", err)
			}
		})
	}()

	// Acknowledged stores: each 200 means the memory tier took the
	// object and the disk tier queued it — not that it is fsynced yet.
	const stores = 200
	acked := make([]string, 0, stores)
	for i := 0; ; i++ {
		hex := fmt.Sprintf("%032x", 0xd15c0000+len(acked))
		resp, err := http.Post(
			fmt.Sprintf("http://%s/store?key=%s&cost=1", ln.Addr(), hex),
			"application/octet-stream", strings.NewReader(strings.Repeat("d", 256)))
		if err != nil {
			if len(acked) == 0 && i < 50 {
				time.Sleep(10 * time.Millisecond) // server still coming up
				continue
			}
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("store %d: %s", len(acked), resp.Status)
		}
		acked = append(acked, hex)
		if len(acked) == stores {
			break
		}
	}

	// SIGTERM with the queue presumably non-empty; the daemon must
	// journal everything before serveDaemon returns.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveDaemon returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveDaemon did not return within 5s of SIGTERM")
	}

	// Recover the directory cold: every acknowledged key must be there.
	d, err := disk.Open(disk.Config{Dir: dir, CapacityBytes: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	recovered := make(map[string]bool, d.Recovered())
	for _, hex := range d.RecoveredHexKeys() {
		recovered[hex] = true
	}
	for _, hex := range acked {
		if !recovered[hex] {
			t.Fatalf("acknowledged store %s lost across SIGTERM (recovered %d of %d)",
				hex, len(recovered), len(acked))
		}
	}
}

// bindBase must report the kernel-assigned port for ":0" listens, not
// the requested one.
func TestBindBasePortZero(t *testing.T) {
	ln, base, err := bindBase("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	want := "http://" + ln.Addr().String()
	if base != want {
		t.Fatalf("base %q, want %q", base, want)
	}
}

// The bench role end to end: tiny generated workload, loopback
// topology, calibration within a loose tolerance, and a manifest that
// round-trips through the validating reader.
func TestBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live bench in -short mode")
	}
	dir := t.TempDir()
	manifest := filepath.Join(dir, "BENCH_live.json")
	traceOut := filepath.Join(dir, "bench_trace.json")
	traceJSONL := filepath.Join(dir, "bench_trace.jsonl")
	err := runBench([]string{
		"-requests", "1500", "-objects", "150", "-clients", "20",
		"-proxies", "2", "-caches", "2",
		"-mode", "closed", "-workers", "8",
		"-object-bytes", "128", "-warmup", "150",
		"-tolerance", "0.25", "-manifest", manifest,
		"-trace-out", traceOut, "-trace-jsonl", traceJSONL, "-trace-sample", "25",
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := obs.ReadManifestFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "hiergdd-bench" {
		t.Fatalf("manifest tool %q", m.Tool)
	}
	if m.Metrics["loadgen.issued"] == 0 {
		t.Fatalf("manifest carries no loadgen counters: %v", m.Metrics)
	}
	if _, ok := m.Notes["calibration"]; !ok {
		t.Fatal("manifest missing calibration note")
	}
	// Live tracing acceptance: the bench's merged export is valid Chrome
	// trace-event JSON with the expected sampled-root population (1500
	// requests / sample 25 = 60 roots) plus joined daemon hops, and the
	// tracer totals landed in the manifest's metrics snapshot.
	data, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("bench chrome export invalid: %v", err)
	}
	jl, err := os.ReadFile(traceJSONL)
	if err != nil {
		t.Fatal(err)
	}
	roots, joins := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(string(jl)), "\n") {
		var st obs.SpanTrace
		if err := json.Unmarshal([]byte(line), &st); err != nil {
			t.Fatalf("jsonl line %q: %v", line, err)
		}
		if st.Root {
			roots++
		} else {
			joins++
		}
	}
	if roots != 60 {
		t.Fatalf("export holds %d sampled roots, want 60 (1500 / 25)", roots)
	}
	if joins < roots {
		t.Fatalf("export holds %d daemon hop records for %d roots", joins, roots)
	}
	if m.Metrics["trace.sampled"] < 60 {
		t.Fatalf("manifest trace.sampled = %v, want >= 60", m.Metrics["trace.sampled"])
	}
}
