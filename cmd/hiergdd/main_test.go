package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"webcache/internal/obs"
)

// serveDaemon must serve requests, then drain and return nil when the
// process receives SIGTERM (the daemons' graceful-shutdown path).
func TestServeDaemonGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- serveDaemon(ln, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("ok"))
		}), 2*time.Second)
	}()

	url := fmt.Sprintf("http://%s/", ln.Addr())
	var resp *http.Response
	for i := 0; ; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp.Body.Close()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveDaemon returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveDaemon did not return within 5s of SIGTERM")
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// bindBase must report the kernel-assigned port for ":0" listens, not
// the requested one.
func TestBindBasePortZero(t *testing.T) {
	ln, base, err := bindBase("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	want := "http://" + ln.Addr().String()
	if base != want {
		t.Fatalf("base %q, want %q", base, want)
	}
}

// The bench role end to end: tiny generated workload, loopback
// topology, calibration within a loose tolerance, and a manifest that
// round-trips through the validating reader.
func TestBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live bench in -short mode")
	}
	manifest := filepath.Join(t.TempDir(), "BENCH_live.json")
	err := runBench([]string{
		"-requests", "1500", "-objects", "150", "-clients", "20",
		"-proxies", "2", "-caches", "2",
		"-mode", "closed", "-workers", "8",
		"-object-bytes", "128", "-warmup", "150",
		"-tolerance", "0.25", "-manifest", manifest,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := obs.ReadManifestFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "hiergdd-bench" {
		t.Fatalf("manifest tool %q", m.Tool)
	}
	if m.Metrics["loadgen.issued"] == 0 {
		t.Fatalf("manifest carries no loadgen counters: %v", m.Metrics)
	}
	if _, ok := m.Notes["calibration"]; !ok {
		t.Fatal("manifest missing calibration note")
	}
}
