package main

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"webcache/internal/httpcache"
	"webcache/internal/loadgen"
	"webcache/internal/obs"
	"webcache/internal/prowgen"
	"webcache/internal/trace"
)

// fleetBenchConfig sizes the fleet scale sweep (bench -fleet).
type fleetBenchConfig struct {
	requests     int
	objects      int
	clients      int
	objectBytes  int
	sizes        []int   // fleet sizes swept, e.g. 1,2,4,8
	replication  int     // hot-object copy count k
	totalFrac    float64 // TOTAL proxy capacity as a fraction of distinct objects
	serviceTime  time.Duration
	concurrency  int // per-member service slots
	workers      int // closed-loop drivers
	warmup       int
	seed         int64
	timeout      time.Duration
	minSpeedup   float64 // gate: rate(max size) / rate(1) floor
	maxHitDelta  float64 // gate: |hit(n) - hit(1)| ceiling
	manifestPath string
}

// fleetRow is one sweep point's record in BENCH_fleet.json.
type fleetRow struct {
	Members      int                  `json:"members"`
	PerMemberCap uint64               `json:"per_member_capacity_units"`
	AchievedRate float64              `json:"achieved_rate"`
	HitRatio     float64              `json:"hit_ratio"`
	P999Ms       float64              `json:"p999_ms"`
	Errors       int                  `json:"errors"`
	Fleet        httpcache.FleetStats `json:"fleet"`
}

// runFleetBench sweeps fleet sizes over the SAME workload and the SAME
// total cache budget (split evenly across members), driving each
// topology closed-loop through a per-member service gate — a
// concurrency semaphore plus a fixed service time per client-facing
// /fetch, the stand-in for a member's CPU.  A single member therefore
// tops out near concurrency/serviceTime req/s, and the sweep measures
// how much of the n-fold capacity the consistent-hash fleet actually
// converts into throughput.  Gates: throughput strictly increasing in
// fleet size, the largest size at least -fleet-min-speedup times the
// single member, and every size's hit ratio within -fleet-max-hit-delta
// of the single member's (partitioning must not cost hits: n small
// caches behind the ring ~= one big cache).
func runFleetBench(cfg fleetBenchConfig) error {
	if len(cfg.sizes) == 0 {
		return fmt.Errorf("fleet bench: empty size sweep")
	}
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests: cfg.requests,
		NumObjects:  cfg.objects,
		NumClients:  cfg.clients,
		Seed:        cfg.seed,
	})
	if err != nil {
		return err
	}
	distinct := distinctObjects(tr)
	totalUnits := uint64(math.Round(cfg.totalFrac * float64(distinct)))
	if totalUnits < 1 {
		totalUnits = 1
	}
	fmt.Printf("hiergdd fleet bench: %d requests / %d objects, total proxy budget %d units, service %v x %d slots/member\n",
		tr.Len(), distinct, totalUnits, cfg.serviceTime, cfg.concurrency)

	var man *obs.Manifest
	if cfg.manifestPath != "" {
		man = obs.NewManifest("hiergdd-fleet")
	}

	var rows []fleetRow
	for _, n := range cfg.sizes {
		row, err := runFleetSize(cfg, tr, n, totalUnits)
		if err != nil {
			return fmt.Errorf("fleet size %d: %w", n, err)
		}
		fmt.Printf("  n=%d: %7.0f req/s  hit %.3f  p999 %6.1fms  errors %d  routed %d (hits %d) replicas %d\n",
			n, row.AchievedRate, row.HitRatio, row.P999Ms, row.Errors,
			row.Fleet.Routed, row.Fleet.RoutedHits, row.Fleet.ReplicasOut)
		rows = append(rows, row)
	}

	// Gates.
	base := rows[0]
	for i, row := range rows {
		if row.Errors > 0 {
			return fmt.Errorf("fleet bench: %d request errors at size %d", row.Errors, row.Members)
		}
		if i > 0 && row.AchievedRate <= rows[i-1].AchievedRate {
			return fmt.Errorf("fleet bench: throughput not increasing: %.0f req/s at %d members vs %.0f at %d",
				row.AchievedRate, row.Members, rows[i-1].AchievedRate, rows[i-1].Members)
		}
		if d := math.Abs(row.HitRatio - base.HitRatio); cfg.maxHitDelta > 0 && d > cfg.maxHitDelta {
			return fmt.Errorf("fleet bench: hit ratio at %d members drifted %.3f from single-member %.3f (gate %.3f)",
				row.Members, d, base.HitRatio, cfg.maxHitDelta)
		}
	}
	last := rows[len(rows)-1]
	speedup := last.AchievedRate / base.AchievedRate
	if cfg.minSpeedup > 0 && speedup < cfg.minSpeedup {
		return fmt.Errorf("fleet bench: %d members only %.2fx the single member (%.0f vs %.0f req/s), gate requires >= %.2fx",
			last.Members, speedup, last.AchievedRate, base.AchievedRate, cfg.minSpeedup)
	}
	fmt.Printf("fleet bench: %d members %.2fx single-member throughput, hit drift <= %.3f — gates clear\n",
		last.Members, speedup, maxHitDrift(rows))

	if man != nil {
		man.Trace = map[string]any{
			"fingerprint": trace.Fingerprint(tr),
			"requests":    tr.Len(),
		}
		man.SetConfig("requests", cfg.requests)
		man.SetConfig("objects", cfg.objects)
		man.SetConfig("clients", cfg.clients)
		man.SetConfig("object_bytes", cfg.objectBytes)
		man.SetConfig("sizes", cfg.sizes)
		man.SetConfig("replication", cfg.replication)
		man.SetConfig("total_capacity_units", totalUnits)
		man.SetConfig("service_time", cfg.serviceTime.String())
		man.SetConfig("concurrency", cfg.concurrency)
		man.SetConfig("workers", cfg.workers)
		man.SetConfig("warmup", cfg.warmup)
		man.SetConfig("seed", cfg.seed)
		man.SetConfig("min_speedup", cfg.minSpeedup)
		man.SetConfig("max_hit_delta", cfg.maxHitDelta)
		man.SetNote("sweep", rows)
		man.SetNote("speedup", speedup)
		// Per-size gauges make the sweep benchdiff-able: CI's fleet
		// manifest diff loop compares these run to run, so throughput
		// or hit-ratio drift at any size shows up as a numbered delta,
		// not just a changed opaque note blob.
		reg := obs.NewRegistry("hiergdd-fleet")
		for _, row := range rows {
			pfx := fmt.Sprintf("bench.fleet.n%d.", row.Members)
			reg.Gauge(pfx + "req_per_sec").Set(row.AchievedRate)
			reg.Gauge(pfx + "hit_ratio").Set(row.HitRatio)
			reg.Gauge(pfx + "p999_ms").Set(row.P999Ms)
			reg.Gauge(pfx + "routed").Set(float64(row.Fleet.Routed))
			reg.Gauge(pfx + "routed_hits").Set(float64(row.Fleet.RoutedHits))
			reg.Gauge(pfx + "replicas_out").Set(float64(row.Fleet.ReplicasOut))
		}
		reg.Gauge("bench.fleet.speedup").Set(speedup)
		man.Finish(reg)
		if err := man.WriteFile(cfg.manifestPath); err != nil {
			return fmt.Errorf("writing manifest: %w", err)
		}
		if _, err := obs.ReadManifestFile(cfg.manifestPath); err != nil {
			return fmt.Errorf("manifest self-check: %w", err)
		}
		fmt.Printf("manifest: %s\n", cfg.manifestPath)
	}
	return nil
}

// runFleetSize stands one n-member fleet up and drives the whole trace
// closed-loop through the ring-aware schedule.
func runFleetSize(cfg fleetBenchConfig, tr *trace.Trace, n int, totalUnits uint64) (fleetRow, error) {
	var row fleetRow
	perMember := totalUnits / uint64(n)
	if perMember < 1 {
		perMember = 1
	}
	row.Members = n
	row.PerMemberCap = perMember

	// The service gate: cfg.concurrency slots per member, each
	// client-facing /fetch holding one for cfg.serviceTime.  Fleet hops
	// (FleetHopHeader set) pay the service time WITHOUT taking a slot —
	// a hop is served inline by a member that may itself be saturated,
	// and letting it queue on the same semaphore its caller holds a
	// slot of would deadlock the pair under full load.
	gates := make([]chan struct{}, n)
	for p := range gates {
		gates[p] = make(chan struct{}, cfg.concurrency)
	}
	wrap := func(p int, h http.Handler) http.Handler {
		gate := gates[p]
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/fetch" {
				if r.Header.Get(httpcache.FleetHopHeader) == "" {
					gate <- struct{}{}
					time.Sleep(cfg.serviceTime)
					<-gate
				} else {
					time.Sleep(cfg.serviceTime)
				}
			}
			h.ServeHTTP(w, r)
		})
	}

	defenses := httpcache.Defenses{
		PeerTimeout:         500 * time.Millisecond,
		AdaptivePeerTimeout: true,
		Hedge:               true,
		BreakerFailures:     3,
		BreakerCooldown:     500 * time.Millisecond,
	}
	topo, err := loadgen.StartLoopback(loadgen.TopologyConfig{
		Proxies:            n,
		CachesPerProxy:     0,
		ProxyCapacityBytes: []uint64{perMember * uint64(cfg.objectBytes)},
		CacheCapacityBytes: []uint64{1},
		ObjectBytes:        cfg.objectBytes,
		Defenses:           &defenses,
		WrapProxy:          wrap,
		Fleet:              true,
		FleetReplication:   cfg.replication,
	})
	if err != nil {
		return row, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		topo.Close(ctx)
	}()

	sched, err := loadgen.BuildScheduleFleet(tr, topo.ProxyURLs, topo.OriginURL,
		topo.Proxies[0].FleetRing(), cfg.replication)
	if err != nil {
		return row, err
	}
	tgt := loadgen.NewHTTPTarget(cfg.timeout)
	res, err := loadgen.Run(context.Background(), sched, tgt, loadgen.Options{
		Mode:    loadgen.ClosedLoop,
		Workers: cfg.workers,
		Warmup:  cfg.warmup,
		Obs:     obs.NewRegistry(fmt.Sprintf("fleet-n%d", n)),
	})
	tgt.CloseIdleConnections()
	if err != nil {
		return row, err
	}
	row.AchievedRate = res.AchievedRate
	row.HitRatio = res.AggregateHitRatio()
	row.P999Ms = float64(res.Overall.Quantile(0.999)) / float64(time.Millisecond)
	row.Errors = res.Errors
	for p := range topo.Proxies {
		st, err := topo.ProxyStats(p)
		if err != nil {
			return row, err
		}
		row.Fleet.Add(st.Fleet)
	}
	return row, nil
}

// maxHitDrift is the largest |hit(n) - hit(first)| across the sweep.
func maxHitDrift(rows []fleetRow) float64 {
	var max float64
	for _, r := range rows {
		if d := math.Abs(r.HitRatio - rows[0].HitRatio); d > max {
			max = d
		}
	}
	return max
}

// distinctObjects counts the trace's distinct object ids.
func distinctObjects(tr *trace.Trace) int {
	seen := make(map[trace.ObjectID]bool)
	for _, r := range tr.Requests {
		seen[r.Object] = true
	}
	return len(seen)
}

// parseSizesList parses "1,2,4,8" into an ascending size sweep.
func parseSizesList(list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("fleet bench: bad size %q", s)
		}
		if len(out) > 0 && n <= out[len(out)-1] {
			return nil, fmt.Errorf("fleet bench: sizes must ascend, got %q", list)
		}
		out = append(out, n)
	}
	return out, nil
}
