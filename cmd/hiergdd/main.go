// Command hiergdd runs the HTTP deployment of the paper's system: a
// caching proxy that destages evictions into client-cache daemons,
// with lookup directories, diversion, and the cross-proxy push
// mechanism (package internal/httpcache).
//
// Roles:
//
//	hiergdd proxy -listen :8080 -capacity 67108864 -peers http://other:8080
//	hiergdd cache -listen :9001 -capacity 16777216 -proxy http://localhost:8080
//	hiergdd demo                     # whole topology in-process on localhost
//	hiergdd bench -trace t.bin -rate 500 -duration 10s   # live load + calibration
//	hiergdd bench -store             # store microbench: sharded vs single-mutex
//	hiergdd bench -disk              # disk tier: write-behind, mixed load, recovery
//	hiergdd bench -chaos             # adversarial scenarios, defenses off vs on
//	hiergdd bench -fleet             # fleet scale sweep: 1 -> 8 members, same budget
//	hiergdd bench -slo               # SLO gate: burn-rate cut + aggregator agreement
//	hiergdd top -members a=http://h1:8080,b=http://h2:8080   # live cluster dashboard
//
// A proxy started with -fleet-members joins a consistent-hash fleet
// instead of the -peers mesh: each key has one owner member (plus
// -fleet-replication hot copies), a miss routes to the owner before
// origin, -fleet-join announces a newcomer (the keys whose ownership
// moved migrate to it), -fleet-heartbeat probes the roster and demotes
// dead members, and a graceful shutdown leaves the fleet first so the
// departing member's objects migrate to their new owners.
//
// Both daemons take -policy (any internal/cache registry name) and
// -shards (lock stripes of the internal/store data plane, 0 = auto);
// the proxy additionally takes -sweep to probe registered client
// caches periodically and deregister dead ones.
//
// Both daemons take -disk-dir to layer a persistent disk tier
// (internal/store/disk) under the memory cache: acknowledged stores
// ride a write-behind log, reads fall back to it on memory misses,
// and a restart recovers the journal and serves the survivors
// (-disk-cap bounds it; 0 = 16x -capacity).  A restarting cache
// daemon re-registers its recovered objects with the proxy, so the
// lookup directory re-learns what the cluster still holds.
//
// Both daemons accept -pprof addr to expose net/http/pprof on a side
// listener (e.g. -pprof localhost:6060, then `go tool pprof
// http://localhost:6060/debug/pprof/profile`), and shut down gracefully
// on SIGINT/SIGTERM: the listener closes, in-flight requests get -drain
// to finish, then the process exits.
//
// Observability: both daemons serve Prometheus text exposition on
// GET /metrics, and -trace FILE / -trace-jsonl FILE enable per-request
// span tracing (head-sampling 1 in -trace-sample untagged requests;
// requests carrying the X-Webcache-Trace header always join), with the
// exports flushed during graceful shutdown after the drain completes.
//
// The SLO plane: both daemons serve /healthz (liveness) and /readyz
// (readiness — 503 until recovery/registration/fleet wiring finish,
// and 503 again the moment a drain begins, before the listener
// closes), and -events FILE appends structured JSONL state-transition
// events (readiness, breakers, fleet membership, recovery, SLO burn
// crossings).  The proxy's -slo-classes declares per-class objectives
// ("interactive:100ms:0.99:1m,..."); requests tagged X-SLO-Class are
// accounted per class and slo.* burn-rate gauges appear on /metrics.
// -cluster-members "name=url,..." makes a proxy scrape and merge every
// member's /metrics into a cluster.* view on /cluster/metrics and
// /cluster/snapshot; `hiergdd top` renders the same aggregation as a
// live terminal dashboard.
//
// The demo starts an origin, two cooperating proxies with three client
// caches each, drives a request script through them, and prints which
// tier served every request — the paper's architecture observable
// with curl.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"webcache/internal/httpcache"
	"webcache/internal/obs"
	"webcache/internal/obs/cluster"
	"webcache/internal/obs/slo"
)

// startPprof exposes net/http/pprof on addr ("" disables).  Serve
// errors surface asynchronously so a taken port doesn't kill the
// daemon silently.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	errc := obs.ServePprof(addr)
	go func() {
		if err := <-errc; err != nil {
			fmt.Fprintln(os.Stderr, "hiergdd: pprof listener:", err)
		}
	}()
	fmt.Printf("hiergdd: pprof on http://%s/debug/pprof/\n", addr)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "proxy":
		err = runProxy(os.Args[2:])
	case "cache":
		err = runCache(os.Args[2:])
	case "demo":
		err = runDemo(os.Args[2:])
	case "bench":
		err = runBench(os.Args[2:])
	case "top":
		err = runTop(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiergdd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hiergdd proxy|cache|demo|bench|top [flags]")
	os.Exit(2)
}

// drainGrace is how long a draining daemon keeps its listener open
// after flipping /readyz to 503: http.Server.Shutdown closes the
// listener immediately, so the readiness flip must land first and
// load balancers need a beat to observe it and stop routing.  A
// variable so the shutdown tests can stretch the window.
var drainGrace = 200 * time.Millisecond

// serveDaemon serves h on ln until SIGINT/SIGTERM, then drains
// in-flight requests through http.Server.Shutdown for up to drain
// before closing hard.  markDraining (nil ok) runs when the signal
// lands, before the listener closes — the daemon's /readyz flips to
// 503 "draining" and stays reachable for drainGrace so routers stop
// sending work.  flush (nil ok) runs after the drain attempt —
// in-flight requests have finished recording by then — so trace and
// metrics exports capture every request the daemon served.  It
// returns nil on a clean signal-driven exit.
func serveDaemon(ln net.Listener, h http.Handler, drain time.Duration, markDraining, flush func()) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Println("hiergdd: signal received, draining...")
	if markDraining != nil {
		markDraining()
		time.Sleep(drainGrace)
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		if flush != nil {
			flush()
		}
		return fmt.Errorf("drain deadline exceeded: %w", err)
	}
	if flush != nil {
		flush()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// daemonObs bundles the observability flags shared by the proxy and
// cache roles: a per-request span tracer (Chrome trace-event and/or
// JSONL export, written at shutdown) and the obs registry backing the
// daemon's /metrics Prometheus endpoint.
type daemonObs struct {
	traceOut   *string
	traceJSONL *string
	sample     *int
}

func addObsFlags(fs *flag.FlagSet) *daemonObs {
	return &daemonObs{
		traceOut:   fs.String("trace", "", "write sampled request traces as Chrome trace-event JSON to this file at shutdown"),
		traceJSONL: fs.String("trace-jsonl", "", "write sampled request traces as JSONL to this file at shutdown"),
		sample:     fs.Int("trace-sample", 100, "head-sample 1 in N untagged requests (tagged requests always join)"),
	}
}

// build returns the tracer (nil when no export was requested — the
// nil tracer is the zero-cost disabled path), the /metrics registry,
// and the shutdown flush that writes the exports and folds the
// tracer's totals into the registry exactly once.
func (d *daemonObs) build(role string) (*obs.Tracer, *obs.Registry, func()) {
	reg := obs.NewRegistry("hiergdd-" + role)
	var tracer *obs.Tracer
	if *d.traceOut != "" || *d.traceJSONL != "" {
		tracer = obs.NewTracer(obs.TracerOptions{
			Origin:      role,
			SampleEvery: *d.sample,
			Clock:       obs.ClockWall,
		})
	}
	flush := func() {
		if tracer == nil {
			return
		}
		tracer.PublishMetrics(reg)
		if *d.traceOut != "" {
			if err := tracer.WriteChromeFile(*d.traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "hiergdd: trace export:", err)
			} else {
				fmt.Printf("hiergdd: wrote %d traces to %s\n", tracer.Len(), *d.traceOut)
			}
		}
		if *d.traceJSONL != "" {
			if err := tracer.WriteJSONLFile(*d.traceJSONL); err != nil {
				fmt.Fprintln(os.Stderr, "hiergdd: trace export:", err)
			} else {
				fmt.Printf("hiergdd: wrote %d traces to %s\n", tracer.Len(), *d.traceJSONL)
			}
		}
	}
	return tracer, reg, flush
}

// bindBase listens on addr and derives the externally reachable base
// URL from the bound address — with ":0" the kernel-assigned port, not
// the requested one, which is what scripts that parse the startup line
// need.
func bindBase(addr string) (net.Listener, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	bound := ln.Addr().(*net.TCPAddr)
	host := bound.IP.String()
	if bound.IP.IsUnspecified() {
		host = "localhost"
	}
	return ln, fmt.Sprintf("http://%s:%d", host, bound.Port), nil
}

// normalizeBaseURLs canonicalizes a comma-split roster so operator
// shorthand ("host:port", stray spaces, trailing slashes) produces the
// exact base-URL strings the ring keys members by — otherwise a
// scheme-less roster entry and the derived self URL would coexist as
// two distinct ring members.
func normalizeBaseURLs(in []string) []string {
	out := in[:0]
	for _, m := range in {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		if !strings.Contains(m, "://") {
			m = "http://" + m
		}
		out = append(out, strings.TrimRight(m, "/"))
	}
	return out
}

func runProxy(args []string) error {
	fs := flag.NewFlagSet("proxy", flag.ExitOnError)
	listen := fs.String("listen", ":8080", "listen address")
	capacity := fs.Uint64("capacity", 64<<20, "proxy cache capacity in bytes")
	policy := fs.String("policy", "", "replacement policy (empty = greedy-dual; see internal/cache registry)")
	shards := fs.Int("shards", 0, "store shard count (0 = auto-size from GOMAXPROCS)")
	sweep := fs.Duration("sweep", 0, "probe registered client caches this often and deregister dead ones (0 = passive detection only)")
	self := fs.String("self", "", "externally reachable base URL (default derived from the bound address)")
	peers := fs.String("peers", "", "comma-separated cooperating proxy base URLs")
	fleetMembers := fs.String("fleet-members", "", "comma-separated fleet member base URLs: enables consistent-hash fleet routing instead of the -peers mesh (self is added automatically)")
	fleetReplication := fs.Int("fleet-replication", 1, "hot-object copy count k across the fleet")
	fleetHotAfter := fs.Int("fleet-hot-after", 0, "per-key access count that triggers replication (0 = default)")
	fleetJoin := fs.Bool("fleet-join", false, "announce this member to the roster on startup (POST /fleet/join), triggering rebalance toward it")
	fleetHeartbeat := fs.Duration("fleet-heartbeat", 0, "probe fleet members this often, demoting dead ones from the ring (0 = off)")
	diskDir := fs.String("disk-dir", "", "enable the persistent disk tier under this directory (recovered on boot)")
	diskCap := fs.Uint64("disk-cap", 0, "disk-tier capacity in bytes (0 = 16x -capacity)")
	sloClasses := fs.String("slo-classes", "", `SLO classes as "name:latency:availability[:window]", comma-separated (e.g. "interactive:50ms:0.99:1m,batch:500ms:0.9"): requests tagged X-SLO-Class are accounted per class and slo.* burn-rate gauges appear on /metrics`)
	eventsPath := fs.String("events", "", "append structured JSONL state-transition events (readiness, breaker, fleet membership, SLO burn crossings) to this file")
	clusterMembers := fs.String("cluster-members", "", `fleet members to aggregate as "name=url,..." — mounts /cluster/metrics and /cluster/snapshot on this daemon, scraping every member's /metrics + /fleet/heartbeat`)
	clusterScrape := fs.Duration("cluster-scrape", 2*time.Second, "cluster aggregator scrape interval")
	pprofAddr := fs.String("pprof", "", "expose net/http/pprof on this address")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline")
	dobs := addObsFlags(fs)
	fs.Parse(args)
	startPprof(*pprofAddr)

	ln, base, err := bindBase(*listen)
	if err != nil {
		return err
	}
	if *self != "" {
		base = *self
	}
	// The registry is built before the proxy so the disk tier's
	// recovery instruments (store.disk.replay.*) record boot progress.
	tracer, reg, flush := dobs.build("proxy")
	events, closeEvents, err := openEventLog(*eventsPath, "proxy@"+base)
	if err != nil {
		ln.Close()
		return err
	}
	defer closeEvents()
	p, err := httpcache.NewProxyOpts(httpcache.Options{
		CapacityBytes:     *capacity,
		Policy:            *policy,
		Shards:            *shards,
		DiskDir:           *diskDir,
		DiskCapacityBytes: *diskCap,
		DiskMetrics:       reg,
	})
	if err != nil {
		ln.Close()
		return err
	}
	p.SetSelf(base)
	if *peers != "" {
		p.SetPeers(strings.Split(*peers, ","))
	}
	p.SetTracer(tracer)
	p.SetMetrics(reg)
	p.SetEvents(events)
	if *sloClasses != "" {
		classes, err := slo.ParseClasses(*sloClasses)
		if err != nil {
			ln.Close()
			return err
		}
		tr := slo.NewTracker(reg, classes, slo.DefaultThresholds)
		tr.SetEvents(events)
		p.SetSLO(tr)
		fmt.Printf("hiergdd proxy: tracking %d SLO classes\n", len(classes))
	}
	if *sweep > 0 {
		stop := p.StartSweeper(*sweep)
		defer stop()
	}
	fleetOn := *fleetMembers != ""
	if fleetOn {
		p.EnableFleet(httpcache.FleetOptions{
			Self:         base,
			Members:      normalizeBaseURLs(strings.Split(*fleetMembers, ",")),
			Replication:  *fleetReplication,
			HotThreshold: *fleetHotAfter,
		})
		if *fleetJoin {
			fmt.Printf("hiergdd proxy: fleet join announced to %d members\n", p.JoinFleet())
		}
		if *fleetHeartbeat > 0 {
			stop := p.StartFleetHeartbeat(*fleetHeartbeat)
			defer stop()
		}
		fmt.Printf("hiergdd proxy: fleet member among %d (replication k=%d)\n",
			p.FleetRing().Size(), *fleetReplication)
	}
	fmt.Printf("hiergdd proxy: listening on %s (self=%s, %d-byte cache, %s policy, %d shards)\n",
		ln.Addr(), base, *capacity, p.Store().PolicyName(), p.Store().NumShards())
	if *diskDir != "" {
		fmt.Printf("hiergdd proxy: disk tier %s (%d-byte budget) recovered %d objects\n",
			*diskDir, p.Disk().Capacity(), p.Disk().Recovered())
		events.Emit("recovery.done", map[string]string{
			"objects": fmt.Sprint(p.Disk().Recovered())})
	}

	// Handler stack: the aggregator's /cluster/* routes (when
	// configured) in front of the proxy's own surface.
	handler := http.Handler(p.Handler())
	if *clusterMembers != "" {
		members, err := cluster.ParseMembers(*clusterMembers)
		if err != nil {
			ln.Close()
			return err
		}
		agg := cluster.New(members, cluster.Options{Events: events})
		aggCtx, aggStop := context.WithCancel(context.Background())
		defer aggStop()
		go agg.Start(aggCtx, *clusterScrape)
		mux := http.NewServeMux()
		mux.Handle("/cluster/", agg.Handler())
		mux.Handle("/", handler)
		handler = mux
		fmt.Printf("hiergdd proxy: aggregating %d members on /cluster/metrics (every %s)\n",
			len(members), *clusterScrape)
	}

	// Construction, recovery, registration, and fleet wiring are done:
	// flip /readyz to 200 before the daemon takes traffic.
	p.MarkReady()

	// The disk drain runs after the HTTP drain, so every insert an
	// in-flight request acknowledged is journaled before exit.  A fleet
	// member leaves first: the departure is announced and the keys it
	// owned migrate to their new owners while the peers still accept.
	return serveDaemon(ln, handler, *drain, p.MarkDraining, func() {
		if fleetOn {
			fmt.Printf("hiergdd proxy: fleet leave migrated %d objects\n", p.LeaveFleet())
		}
		flush()
		if err := p.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hiergdd: disk close:", err)
		}
	})
}

// openEventLog opens path for appending and returns the daemon's
// structured event log; an empty path returns a nil (disabled) log.
func openEventLog(path, source string) (*obs.EventLog, func(), error) {
	if path == "" {
		return nil, func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return obs.NewEventLog(source, f), func() { f.Close() }, nil
}

func runCache(args []string) error {
	fs := flag.NewFlagSet("cache", flag.ExitOnError)
	listen := fs.String("listen", ":9001", "listen address")
	capacity := fs.Uint64("capacity", 16<<20, "cooperative cache capacity in bytes")
	policy := fs.String("policy", "", "replacement policy (empty = greedy-dual; see internal/cache registry)")
	shards := fs.Int("shards", 0, "store shard count (0 = auto-size from GOMAXPROCS)")
	proxy := fs.String("proxy", "http://localhost:8080", "local proxy base URL")
	diskDir := fs.String("disk-dir", "", "enable the persistent disk tier under this directory (recovered on boot)")
	diskCap := fs.Uint64("disk-cap", 0, "disk-tier capacity in bytes (0 = 16x -capacity)")
	eventsPath := fs.String("events", "", "append structured JSONL state-transition events (readiness, recovery) to this file")
	pprofAddr := fs.String("pprof", "", "expose net/http/pprof on this address")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline")
	dobs := addObsFlags(fs)
	fs.Parse(args)
	startPprof(*pprofAddr)

	tracer, reg, flush := dobs.build("cache")
	cc, err := httpcache.NewClientCacheOpts(httpcache.Options{
		CapacityBytes:     *capacity,
		Policy:            *policy,
		Shards:            *shards,
		DiskDir:           *diskDir,
		DiskCapacityBytes: *diskCap,
		DiskMetrics:       reg,
	})
	if err != nil {
		return err
	}
	cc.SetTracer(tracer)
	cc.SetMetrics(reg)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	events, closeEvents, err := openEventLog(*eventsPath, "cache@"+addr)
	if err != nil {
		ln.Close()
		return err
	}
	defer closeEvents()
	cc.SetEvents(events)
	// A daemon restarting over its disk directory re-registers the
	// recovered objects in the /register body, so the proxy's lookup
	// directory re-learns what this partition still holds.
	regBody, contentType := io.Reader(nil), "text/plain"
	if rec := cc.RecoveredHexKeys(); len(rec) > 0 {
		b, merr := json.Marshal(map[string][]string{"recovered": rec})
		if merr == nil {
			regBody, contentType = strings.NewReader(string(b)), "application/json"
			fmt.Printf("hiergdd cache: disk tier %s recovered %d objects\n", *diskDir, len(rec))
		}
	}
	if resp, err := http.Post(fmt.Sprintf("%s/register?addr=%s", *proxy, addr), contentType, regBody); err != nil {
		ln.Close()
		return fmt.Errorf("registering with proxy: %w", err)
	} else {
		resp.Body.Close()
	}
	fmt.Printf("hiergdd cache: %s registered with %s (%d-byte partition)\n", addr, *proxy, *capacity)
	// Recovery and proxy registration are done: flip /readyz to 200.
	cc.MarkReady()
	return serveDaemon(ln, cc.Handler(), *drain, cc.MarkDraining, func() {
		flush()
		if err := cc.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hiergdd: disk close:", err)
		}
	})
}

func runDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	proxyCap := fs.Uint64("proxy-capacity", 40, "tiny proxy cache (bytes) so destaging is visible")
	cacheCap := fs.Uint64("cache-capacity", 4096, "client cache capacity (bytes)")
	fs.Parse(args)

	// Origin.
	originLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go http.Serve(originLn, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "origin-content:%s", r.URL.Path)
	}))
	origin := "http://" + originLn.Addr().String()

	// Two proxies.
	var proxyURLs []string
	var proxies []*httpcache.Proxy
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		p := httpcache.NewProxy(*proxyCap)
		u := "http://" + ln.Addr().String()
		p.SetSelf(u)
		go http.Serve(ln, p.Handler())
		proxies = append(proxies, p)
		proxyURLs = append(proxyURLs, u)
	}
	proxies[0].SetPeers([]string{proxyURLs[1]})
	proxies[1].SetPeers([]string{proxyURLs[0]})

	// Three client caches per proxy.
	for i := range proxies {
		for c := 0; c < 3; c++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			cc := httpcache.NewClientCache(*cacheCap)
			go http.Serve(ln, cc.Handler())
			resp, err := http.Post(fmt.Sprintf("%s/register?addr=%s", proxyURLs[i], ln.Addr().String()), "text/plain", nil)
			if err != nil {
				return err
			}
			resp.Body.Close()
		}
	}
	fmt.Printf("topology: origin %s, proxies %v, 3 client caches each\n\n", origin, proxyURLs)

	fetch := func(proxy int, path string) (string, error) {
		u := fmt.Sprintf("%s/fetch?url=%s", proxyURLs[proxy], url.QueryEscape(origin+path))
		resp, err := http.Get(u)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.Header.Get(httpcache.ServedByHeader), nil
	}

	script := []struct {
		proxy int
		path  string
		note  string
	}{
		{0, "/a", "cold miss"},
		{0, "/a", "proxy cache hit"},
		{0, "/b", "cold miss (evicts /a into the client caches)"},
		{0, "/c", "cold miss (more destaging)"},
		{0, "/a", "client-cache hit via the lookup directory"},
		{1, "/c", "cooperating proxy serves it (push if destaged)"},
		{1, "/c", "now cached at proxy B"},
	}
	for _, stp := range script {
		tier, err := fetch(stp.proxy, stp.path)
		if err != nil {
			return err
		}
		fmt.Printf("  proxy%d GET %-3s -> %-13s (%s)\n", stp.proxy, stp.path, tier, stp.note)
	}

	for i, u := range proxyURLs {
		resp, err := http.Get(u + "/stats")
		if err != nil {
			return err
		}
		var st httpcache.ProxyStats
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		fmt.Printf("\nproxy%d stats: %+v\n", i, st)
	}
	fmt.Println("\nEverything above travelled over real localhost TCP connections.")
	return nil
}
