package main

import (
	"fmt"
	"strings"
	"time"

	"webcache/internal/chaos"
	"webcache/internal/invariant"
	"webcache/internal/obs"
	"webcache/internal/obs/slo"
	"webcache/internal/prowgen"
	"webcache/internal/trace"
)

// chaosSLOClass scores every live chaos run against one bench-scale
// SLO, so each scenario row shows the defenses' error-budget effect
// (the burn-rate delta) alongside the raw tail cut.
var chaosSLOClass = slo.Class{
	Name:         "chaos",
	Latency:      100 * time.Millisecond,
	Availability: 0.99,
	Window:       30 * time.Second,
}

// chaosBenchConfig sizes the chaos suite run (bench -chaos).
type chaosBenchConfig struct {
	scenarios    string // comma-separated names, empty = whole suite
	requests     int
	objects      int
	clients      int
	proxies      int
	caches       int
	objectBytes  int
	rate         float64
	warmup       int
	seed         int64
	minP999Cut   float64 // slow-peer gate: p999(off)/p999(on) floor
	manifestPath string
}

// runChaosBench runs every requested scenario four ways — live and
// simulated, defenses off and on — with the conservation accountant
// attached to each run, and gates on two things: zero accountant
// violations anywhere, and (for slow-peer) the hedged+deadline
// defenses cutting the live p999 by at least -chaos-min-p999-cut.
func runChaosBench(cfg chaosBenchConfig) error {
	scns, err := chaosScenarios(cfg.scenarios)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry("hiergdd-chaos")
	var man *obs.Manifest
	if cfg.manifestPath != "" {
		man = obs.NewManifest("hiergdd-chaos")
	}

	var rows []chaos.Row
	for _, scn := range scns {
		fmt.Printf("chaos: scenario %-12s %s\n", scn.Name, scn.Description)
		row := chaos.Row{Scenario: scn.Name, Description: scn.Description}

		// Each of the four runs gets its own checker so a violation is
		// attributable to one (scenario, side, defenses) cell.
		for _, on := range []bool{false, true} {
			chk := invariant.New(reg)
			rep, err := chaos.RunLive(chaos.LiveConfig{
				Scenario:       scn,
				Requests:       cfg.requests,
				Objects:        cfg.objects,
				Clients:        cfg.clients,
				ObjectBytes:    cfg.objectBytes,
				Rate:           cfg.rate,
				Warmup:         cfg.warmup,
				Seed:           cfg.seed,
				Proxies:        cfg.proxies,
				CachesPerProxy: cfg.caches,
				DefensesOn:     on,
				SLOClass:       chaosSLOClass,
				Check:          chk,
				Registry:       reg,
			})
			if err != nil {
				return fmt.Errorf("chaos %s live defenses=%v: %w", scn.Name, on, err)
			}
			if on {
				row.LiveOn = rep
			} else {
				row.LiveOff = rep
			}
		}
		for _, on := range []bool{false, true} {
			chk := invariant.New(reg)
			rep, err := chaos.RunSim(chaos.SimConfig{
				Scenario:       scn,
				Requests:       cfg.requests,
				Objects:        cfg.objects,
				Clients:        cfg.clients,
				Proxies:        cfg.proxies,
				CachesPerProxy: cfg.caches,
				Warmup:         cfg.warmup,
				Seed:           cfg.seed,
				DefensesOn:     on,
				Check:          chk,
			})
			if err != nil {
				return fmt.Errorf("chaos %s sim defenses=%v: %w", scn.Name, on, err)
			}
			if on {
				row.SimOn = rep
			} else {
				row.SimOff = rep
			}
		}

		fmt.Printf("  live: hit %.3f -> %.3f  p999 %7.1fms -> %7.1fms (cut %.2fx)  errors %d -> %d\n",
			row.LiveOff.HitRatio, row.LiveOn.HitRatio,
			row.LiveOff.P999Ms, row.LiveOn.P999Ms, row.P999Cut(),
			row.LiveOff.Errors, row.LiveOn.Errors)
		fmt.Printf("  slo:  %s fast burn %.2f -> %.2f (delta %+.2f)\n",
			chaosSLOClass.Name, row.LiveOff.FastBurn, row.LiveOn.FastBurn, row.BurnDelta())
		fmt.Printf("  sim:  hit %.3f -> %.3f  mean %6.3f -> %6.3f  p999 %6.1f -> %6.1f (model units as ms)\n",
			row.SimOff.HitRatio, row.SimOn.HitRatio,
			row.SimOff.MeanMs, row.SimOn.MeanMs, row.SimOff.P999Ms, row.SimOn.P999Ms)
		fmt.Printf("  defense activity (on): hedged %d (won %d), breaker-skipped %d, digests %d/%d failed, swept %d, timeouts %d\n",
			row.LiveOn.Defense.HedgedRequests, row.LiveOn.Defense.HedgedWins,
			row.LiveOn.Defense.BreakerSkipped,
			row.LiveOn.Defense.DigestFailures, row.LiveOn.Defense.DigestChecks,
			row.LiveOn.Defense.ContribSwept, row.LiveOn.Defense.PeerTimeouts)
		if v := row.Violations(); v > 0 {
			return fmt.Errorf("chaos %s: %d conservation violations — an attack or a defense broke the accountant",
				scn.Name, v)
		}
		rows = append(rows, row)
	}

	// The headline gate: under slow peers, the hedged requests and
	// per-hop deadlines must actually cut the live tail.
	for _, row := range rows {
		if row.Scenario != "slow-peer" || cfg.minP999Cut <= 0 {
			continue
		}
		if cut := row.P999Cut(); cut < cfg.minP999Cut {
			return fmt.Errorf("chaos slow-peer: defenses cut p999 only %.2fx (off %.1fms / on %.1fms), gate requires >= %.2fx",
				cut, row.LiveOff.P999Ms, row.LiveOn.P999Ms, cfg.minP999Cut)
		}
		fmt.Printf("chaos: slow-peer p999 cut %.2fx >= %.2fx gate\n", row.P999Cut(), cfg.minP999Cut)
	}

	if man != nil {
		// The same workload every run replays (each RunLive/RunSim
		// regenerates it from these parameters), fingerprinted so
		// benchdiff refuses to compare manifests of different traces.
		if tr, err := prowgen.Generate(prowgen.Config{
			NumRequests: cfg.requests,
			NumObjects:  cfg.objects,
			NumClients:  cfg.clients,
			Seed:        cfg.seed,
		}); err == nil {
			man.Trace = map[string]any{
				"fingerprint": trace.Fingerprint(tr),
				"requests":    tr.Len(),
			}
		}
		man.SetConfig("requests", cfg.requests)
		man.SetConfig("objects", cfg.objects)
		man.SetConfig("clients", cfg.clients)
		man.SetConfig("proxies", cfg.proxies)
		man.SetConfig("caches_per_proxy", cfg.caches)
		man.SetConfig("object_bytes", cfg.objectBytes)
		man.SetConfig("rate", cfg.rate)
		man.SetConfig("warmup", cfg.warmup)
		man.SetConfig("seed", cfg.seed)
		man.SetConfig("min_p999_cut", cfg.minP999Cut)
		man.SetNote("scenarios", rows)
		man.Finish(reg)
		if err := man.WriteFile(cfg.manifestPath); err != nil {
			return fmt.Errorf("writing manifest: %w", err)
		}
		if _, err := obs.ReadManifestFile(cfg.manifestPath); err != nil {
			return fmt.Errorf("manifest self-check: %w", err)
		}
		fmt.Printf("manifest: %s\n", cfg.manifestPath)
	}
	return nil
}

// chaosScenarios resolves the -chaos-scenarios list (empty = suite).
func chaosScenarios(list string) ([]chaos.Scenario, error) {
	if strings.TrimSpace(list) == "" {
		return chaos.Scenarios(), nil
	}
	var out []chaos.Scenario
	for _, name := range strings.Split(list, ",") {
		scn, err := chaos.Lookup(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, scn)
	}
	return out, nil
}
