package main

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webcache/internal/obs"
	"webcache/internal/store"
	"webcache/internal/trace"
)

// The store microbenchmark (`hiergdd bench -store`): a closed-loop
// GetOrLoad workload driven straight at the data plane, comparing the
// sharded coalescing store against the single-mutex uncoalesced
// Baseline the daemons used to share.  The loader sleeps for
// -store-load-delay, modelling what a real miss costs (an origin
// fetch over the network) — that is the latency concurrent workers
// overlap and coalescing dedups, so the numbers measure the store's
// concurrency design rather than map speed.
type storeBenchConfig struct {
	capacity     uint64
	shards       int
	policy       string
	objects      int
	objectBytes  int
	ops          int
	loadDelay    time.Duration
	workersList  []int
	seed         int64
	minSpeedup   float64
	manifestPath string
}

// storeBenchCell is one engine x worker-count measurement.
type storeBenchCell struct {
	Engine    string  `json:"engine"`
	Workers   int     `json:"workers"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Hits      int64   `json:"hits"`
	Loads     int64   `json:"loads"`
	Coalesced int64   `json:"coalesced"`
}

// parseWorkersList parses "1,4,16".
func parseWorkersList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -store-workers element %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// splitmix64 is the per-worker deterministic key stream.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4B9B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// runStoreCell drives one closed-loop cell: workers goroutines split
// cfg.ops GetOrLoad calls over a fresh engine.  A warmup of ops/5
// untimed operations brings the cache to steady state first.
func runStoreCell(eng store.Interface, engine string, workers int, cfg storeBenchConfig) storeBenchCell {
	var hits, loads, coalesced atomic.Int64
	run := func(ops int, worker int, count bool) {
		rng := uint64(cfg.seed)*0x9E3779B97F4A7C15 + uint64(worker)
		for i := 0; i < ops; i++ {
			key := trace.ObjectID(splitmix64(&rng) % uint64(cfg.objects))
			view, err := eng.GetOrLoad(key, func() (store.Object, string, error) {
				if cfg.loadDelay > 0 {
					time.Sleep(cfg.loadDelay)
				}
				body := make([]byte, cfg.objectBytes)
				return store.Object{HexKey: fmt.Sprintf("%032x", uint64(key)), Body: body, Cost: 1}, "origin", nil
			})
			if !count || err != nil {
				continue
			}
			switch view.Outcome {
			case store.OutcomeHit:
				hits.Add(1)
			case store.OutcomeLoaded:
				loads.Add(1)
			default:
				coalesced.Add(1)
			}
		}
	}
	drive := func(total int, count bool) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			ops := total / workers
			if w < total%workers {
				ops++
			}
			wg.Add(1)
			go func(w, ops int) {
				defer wg.Done()
				run(ops, w, count)
			}(w, ops)
		}
		wg.Wait()
	}
	drive(cfg.ops/5, false) // warmup, untimed
	start := time.Now()
	drive(cfg.ops, true)
	elapsed := time.Since(start).Seconds()
	return storeBenchCell{
		Engine:    engine,
		Workers:   workers,
		Ops:       cfg.ops,
		Seconds:   elapsed,
		OpsPerSec: float64(cfg.ops) / elapsed,
		Hits:      hits.Load(),
		Loads:     loads.Load(),
		Coalesced: coalesced.Load(),
	}
}

// runStoreBench runs the full grid — both engines at every worker
// count — prints the table, writes the manifest, and enforces the
// minimum sharded-vs-baseline speedup when one is configured.
func runStoreBench(cfg storeBenchConfig) error {
	fmt.Printf("hiergdd bench -store: %d ops over %d x %dB objects, %d-byte budget, load delay %s\n",
		cfg.ops, cfg.objects, cfg.objectBytes, cfg.capacity, cfg.loadDelay)

	newEngine := func(engine string) (store.Interface, error) {
		if engine == "baseline" {
			return store.NewBaseline(cfg.capacity, cfg.policy)
		}
		s, err := store.New(store.Config{
			CapacityBytes: cfg.capacity,
			Shards:        cfg.shards,
			Policy:        cfg.policy,
			Label:         "store-bench",
		})
		if err != nil {
			return nil, err
		}
		return s, nil
	}

	var cells []storeBenchCell
	for _, engine := range []string{"baseline", "sharded"} {
		for _, w := range cfg.workersList {
			eng, err := newEngine(engine)
			if err != nil {
				return err
			}
			cells = append(cells, runStoreCell(eng, engine, w, cfg))
		}
	}

	fmt.Printf("\n  %-9s %8s %12s %12s %9s %9s %10s\n",
		"engine", "workers", "ops/sec", "seconds", "hits", "loads", "coalesced")
	byCell := map[string]storeBenchCell{}
	for _, c := range cells {
		byCell[fmt.Sprintf("%s.w%d", c.Engine, c.Workers)] = c
		fmt.Printf("  %-9s %8d %12.0f %12.3f %9d %9d %10d\n",
			c.Engine, c.Workers, c.OpsPerSec, c.Seconds, c.Hits, c.Loads, c.Coalesced)
	}

	// The gate the refactor is sold on: the sharded store at the widest
	// worker count against the old design driven by one worker.
	maxW := cfg.workersList[len(cfg.workersList)-1]
	base := byCell["baseline.w1"]
	wide := byCell[fmt.Sprintf("sharded.w%d", maxW)]
	speedup := 0.0
	if base.OpsPerSec > 0 {
		speedup = wide.OpsPerSec / base.OpsPerSec
	}
	fmt.Printf("\n  sharded @%d workers vs single-mutex @1: %.2fx\n", maxW, speedup)

	if cfg.manifestPath != "" {
		reg := obs.NewRegistry("hiergdd-store-bench")
		man := obs.NewManifest("hiergdd-store-bench")
		for _, c := range cells {
			pre := fmt.Sprintf("bench.store.%s.w%d.", c.Engine, c.Workers)
			reg.Gauge(pre + "ops_per_sec").Set(c.OpsPerSec)
			reg.Gauge(pre + "seconds").Set(c.Seconds)
			reg.Gauge(pre + "loads").Set(float64(c.Loads))
			reg.Gauge(pre + "coalesced").Set(float64(c.Coalesced))
		}
		reg.Gauge("bench.store.speedup").Set(speedup)
		man.SetConfig("store_capacity", cfg.capacity)
		man.SetConfig("store_shards", cfg.shards)
		man.SetConfig("store_policy", cfg.policy)
		man.SetConfig("objects", cfg.objects)
		man.SetConfig("object_bytes", cfg.objectBytes)
		man.SetConfig("store_ops", cfg.ops)
		man.SetConfig("store_load_delay", cfg.loadDelay.String())
		man.SetConfig("store_workers", cfg.workersList)
		man.SetConfig("seed", cfg.seed)
		// The workload is fully synthetic and config-determined; the
		// fingerprint hashes the generator parameters so benchdiff
		// refuses to compare cells from different workloads.
		man.Trace = map[string]any{
			"fingerprint": fmt.Sprintf("store-bench:ops=%d,objects=%d,bytes=%d,delay=%s,seed=%d",
				cfg.ops, cfg.objects, cfg.objectBytes, cfg.loadDelay, cfg.seed),
			"requests": cfg.ops * len(cfg.workersList) * 2,
		}
		man.SetNote("store_bench", cells)
		man.SetNote("speedup", speedup)
		man.Finish(reg)
		if err := man.WriteFile(cfg.manifestPath); err != nil {
			return fmt.Errorf("writing manifest: %w", err)
		}
		if _, err := obs.ReadManifestFile(cfg.manifestPath); err != nil {
			return fmt.Errorf("manifest self-check: %w", err)
		}
		fmt.Printf("  manifest: %s\n", cfg.manifestPath)
	}

	if cfg.minSpeedup > 0 && speedup < cfg.minSpeedup {
		return fmt.Errorf("store bench below the gate: %.2fx < %.2fx (sharded @%d workers vs baseline @1)",
			speedup, cfg.minSpeedup, maxW)
	}
	return nil
}
