package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"webcache/internal/obs/cluster"
)

// runTop is the live terminal dashboard: it scrapes every fleet
// member's /metrics and /fleet/heartbeat directly (no daemon-side
// aggregator needed) and redraws the cluster view each interval —
// cluster hit ratio, per-member throughput and load, per-class SLO
// burn rates, and breaker states.
//
//	hiergdd top -members a=http://h1:8080,b=http://h2:8080 -interval 2s
//
// -once renders a single frame without clearing the screen, for
// scripts and transcripts.
func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	members := fs.String("members", "", `fleet members to watch as "name=url,..." (name optional)`)
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "render one frame and exit without clearing the screen")
	fs.Parse(args)
	if *members == "" {
		return fmt.Errorf("top: -members required")
	}
	ms, err := cluster.ParseMembers(*members)
	if err != nil {
		return err
	}
	agg := cluster.New(ms, cluster.Options{})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var prev *cluster.Snapshot
	for {
		cur := agg.ScrapeOnce(ctx)
		frame := renderDashboard(prev, cur)
		if *once {
			fmt.Print(frame)
			return nil
		}
		// Home the cursor and clear below: a flicker-free full redraw.
		fmt.Print("\x1b[H\x1b[J" + frame)
		prev = cur
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-time.After(*interval):
		}
	}
}

// renderDashboard renders one dashboard frame from the current
// cluster snapshot; prev (nil on the first frame) supplies the
// baseline for per-member throughput deltas.  Pure text in, text out
// — the unit tests feed it snapshots from real loopback fleets.
func renderDashboard(prev, cur *cluster.Snapshot) string {
	var b strings.Builder
	up := 0
	for _, m := range cur.Members {
		if m.Up {
			up++
		}
	}
	fmt.Fprintf(&b, "hiergdd top — %d/%d members up — %s\n",
		up, len(cur.Members), cur.At.Format("15:04:05"))
	fmt.Fprintf(&b, "cluster: %.0f requests, hit ratio %5.1f%%, %.0f origin fetches\n\n",
		cur.Requests, 100*cur.HitRatio, cur.OriginFetches)

	// Per-member rows, with request throughput measured between frames.
	elapsed := 0.0
	prevReq := map[string]float64{}
	if prev != nil {
		elapsed = cur.At.Sub(prev.At).Seconds()
		for _, m := range prev.Members {
			prevReq[m.Name] = m.Requests
		}
	}
	fmt.Fprintf(&b, "%-12s %-6s %10s %8s %7s %9s %9s %8s\n",
		"member", "state", "requests", "req/s", "hit", "load", "objects", "brk.open")
	for _, m := range cur.Members {
		state := "up"
		switch {
		case !m.Up && m.Stale:
			state = "stale"
		case !m.Up:
			state = "down"
		}
		rate := "-"
		if prev != nil && m.Up && elapsed > 0 {
			if r, ok := prevReq[m.Name]; ok {
				rate = fmt.Sprintf("%.0f", (m.Requests-r)/elapsed)
			}
		}
		fmt.Fprintf(&b, "%-12s %-6s %10.0f %8s %6.1f%% %9.0f %9.0f %8.0f\n",
			m.Name, state, m.Requests, rate, 100*m.HitRatio, m.Load, m.Objects, m.BreakerOpens)
		if m.Err != "" {
			fmt.Fprintf(&b, "%-12s   last error: %s\n", "", m.Err)
		}
	}

	// Per-class SLO burn rates (max across members; paging if any pages).
	if len(cur.SLO) > 0 {
		fmt.Fprintf(&b, "\n%-14s %10s %8s %10s %10s %7s\n",
			"slo class", "good", "bad", "burn.fast", "burn.slow", "paging")
		for _, c := range cur.SLO {
			paging := "-"
			if c.Paging {
				paging = "PAGE"
			}
			fmt.Fprintf(&b, "%-14s %10.0f %8.0f %10.2f %10.2f %7s\n",
				c.Name, c.Good, c.Bad, c.FastBurn, c.SlowBurn, paging)
		}
	}
	return b.String()
}
