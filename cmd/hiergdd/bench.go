package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"webcache/internal/loadgen"
	"webcache/internal/obs"
	"webcache/internal/prowgen"
	"webcache/internal/sim"
	"webcache/internal/trace"
)

// runBench is the live-benchmark role: stand up a loopback
// proxy/client-cache topology sized from the simulator's capacity
// plan, replay a trace over real HTTP (open- or closed-loop), report
// per-tier hit ratios and latency quantiles, and calibrate the run
// against a simulator replay of the same request prefix with
// identical capacities (EXPERIMENTS.md "Live benchmarking &
// calibration").
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	// Workload: an existing trace file, or a generated ProWGen one.
	tracePath := fs.String("trace", "", "trace file to replay (binary or text; empty = generate with ProWGen)")
	requests := fs.Int("requests", 20000, "generated trace length (ignored with -trace)")
	objects := fs.Int("objects", 2000, "generated distinct objects (ignored with -trace)")
	clients := fs.Int("clients", 200, "generated client population (ignored with -trace)")
	seed := fs.Int64("seed", 1, "workload and arrival-process seed")
	// Topology.
	proxies := fs.Int("proxies", 2, "cooperating proxies")
	caches := fs.Int("caches", 3, "client-cache daemons per proxy")
	proxyFrac := fs.Float64("proxy-frac", 0.05, "proxy cache size as a fraction of the infinite cache size")
	clientFrac := fs.Float64("client-frac", 0.005, "per-client cache size as a fraction of the infinite cache size")
	objectBytes := fs.Int("object-bytes", 1024, "origin body size per object (1 trace cache unit)")
	// Driving discipline.
	mode := fs.String("mode", "open", `driving discipline: "open" or "closed"`)
	arrivalKind := fs.String("arrival", "poisson", `open-loop arrival process: "poisson" or "bursty"`)
	rate := fs.Float64("rate", 500, "open-loop arrival rate in req/s (bursty: peak rate)")
	onPeriod := fs.Duration("on", 2*time.Second, "bursty mean ON window")
	offPeriod := fs.Duration("off", 6*time.Second, "bursty mean OFF window")
	maxInflight := fs.Int("max-inflight", 512, "open-loop in-flight bound")
	workers := fs.Int("workers", 8, "closed-loop concurrency")
	think := fs.Duration("think", 0, "closed-loop per-worker think time")
	duration := fs.Duration("duration", 0, "stop issuing after this long (0 = whole trace)")
	warmup := fs.Int("warmup", -1, "requests discarded from accounting (-1 = trace length / 10)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	// Reporting.  (-trace is the input workload; -trace-out and friends
	// are the span-tracing exports.)
	tolerance := fs.Float64("tolerance", 0, "fail if |live - sim| aggregate hit ratio exceeds this (0 = report only)")
	manifestPath := fs.String("manifest", "", "write a run-manifest JSON document to this file")
	traceOut := fs.String("trace-out", "", "write sampled request traces (driver roots + daemon hops) as Chrome trace-event JSON to this file")
	traceJSONL := fs.String("trace-jsonl", "", "write sampled request traces as JSONL to this file")
	traceSample := fs.Int("trace-sample", 100, "head-sample 1 in N driven requests")
	drain := fs.Duration("drain", 5*time.Second, "topology shutdown drain deadline")
	pprofAddr := fs.String("pprof", "", "expose net/http/pprof on this address")
	// Store microbenchmark mode (-store): drive the data plane directly
	// instead of standing up the HTTP topology.
	storeMode := fs.Bool("store", false, "run the store microbenchmark: closed-loop GetOrLoad on the sharded store vs the single-mutex baseline")
	storeCapacity := fs.Uint64("store-capacity", 1<<20, "store byte budget (store mode)")
	storeShards := fs.Int("store-shards", 0, "store shard count, 0 = auto (store mode)")
	storePolicy := fs.String("store-policy", "", "store replacement policy, empty = default (store mode)")
	storeOps := fs.Int("store-ops", 4000, "timed operations per engine/worker cell (store mode)")
	storeDelay := fs.Duration("store-load-delay", time.Millisecond, "simulated origin latency a cache miss's loader pays (store mode)")
	storeWorkers := fs.String("store-workers", "1,4,16", "comma-separated closed-loop worker counts (store mode)")
	storeMinSpeedup := fs.Float64("store-min-speedup", 0, "fail unless sharded@max-workers ops/sec >= this multiple of baseline@1 (0 = report only)")
	// Disk-tier benchmark mode (-disk): populate / mixed / recovery
	// against internal/store/disk instead of the HTTP topology.
	diskMode := fs.Bool("disk", false, "run the disk-tier benchmark: write-behind throughput, mixed read/write, and recovery replay rate")
	diskDir := fs.String("disk-dir", "", "disk bench directory (empty = fresh temp dir, removed afterwards)")
	diskCapacity := fs.Uint64("disk-capacity", 1<<30, "disk-tier byte budget (disk mode)")
	diskOps := fs.Int("disk-ops", 20000, "timed mixed-phase operations (disk mode)")
	diskReadFrac := fs.Float64("disk-read-frac", 0.9, "fraction of mixed-phase operations that are reads (disk mode)")
	diskWorkers := fs.Int("disk-workers", 8, "mixed-phase concurrency (disk mode)")
	diskMinRecovery := fs.Float64("disk-min-recovery", 0, "fail unless recovery replays at least this many objects/sec (0 = report only)")
	diskMinMixed := fs.Float64("disk-min-mixed", 0, "fail unless the mixed phase sustains at least this many ops/sec (0 = report only)")
	// Chaos suite mode (-chaos): run the adversarial scenarios live and
	// simulated, defenses off and on, gated on conservation and the
	// slow-peer tail cut (internal/chaos).
	chaosMode := fs.Bool("chaos", false, "run the chaos scenario suite: fault injection live + simulated, defenses off and on")
	chaosScenariosFlag := fs.String("chaos-scenarios", "", "comma-separated scenario names (empty = whole suite; chaos mode)")
	chaosMinP999Cut := fs.Float64("chaos-min-p999-cut", 0, "fail unless slow-peer defenses cut live p999 by this factor (0 = report only; chaos mode)")
	// SLO-plane smoke mode (-slo): class-tagged load against a
	// multi-member loopback topology under a chaos scenario, defenses
	// off and on, gated on the defenses cutting the gated class's
	// fast-window burn rate and on the cluster aggregator's hit ratio
	// agreeing with the load generator's.
	sloMode := fs.Bool("slo", false, "run the SLO-plane smoke: class-tagged load, per-member SLO trackers, cluster aggregation, defenses off vs on")
	sloClassSpecs := fs.String("slo-classes", "interactive:100ms:0.99:30s,batch:1s:0.9:30s", `SLO classes as "name:latency:availability[:window]", comma-separated; the first class is the burn-rate gate (slo mode)`)
	sloScenario := fs.String("slo-scenario", "slow-peer", "chaos scenario injected into both cells (slo mode)")
	sloMaxHitDelta := fs.Float64("slo-max-hit-delta", 0.01, "fail if |aggregator - loadgen| hit ratio exceeds this (0 = report only; slo mode)")
	sloBurnGate := fs.Bool("slo-burn-gate", true, "fail unless defenses-on cuts the gated class's fast-window burn rate (slo mode)")
	// Fleet scale sweep mode (-fleet): the same workload and total cache
	// budget driven closed-loop against consistent-hash fleets of
	// increasing size, each member behind a concurrency+service-time
	// gate (internal/fleet via httpcache.EnableFleet).
	fleetMode := fs.Bool("fleet", false, "run the fleet scale sweep: same workload and total budget across increasing fleet sizes")
	fleetSizes := fs.String("fleet-sizes", "1,2,4,8", "comma-separated ascending fleet sizes (fleet mode)")
	fleetReplication := fs.Int("fleet-replication", 1, "hot-object copy count k (fleet mode)")
	fleetTotalFrac := fs.Float64("fleet-total-frac", 0.2, "TOTAL proxy budget as a fraction of distinct objects, split across members (fleet mode)")
	fleetService := fs.Duration("fleet-service", time.Millisecond, "modeled per-request service time at each member (fleet mode)")
	fleetConcurrency := fs.Int("fleet-concurrency", 2, "service slots per member (fleet mode)")
	fleetMinSpeedup := fs.Float64("fleet-min-speedup", 0, "fail unless the largest fleet sustains this multiple of the single member's throughput (0 = report only; fleet mode)")
	fleetMaxHitDelta := fs.Float64("fleet-max-hit-delta", 0, "fail if any size's hit ratio drifts more than this from the single member's (0 = report only; fleet mode)")
	// Simulator hot-path benchmark mode (-sim): the 7-scheme compare
	// replay through the pre-refactor pipeline shape (per-record decode,
	// serial scheme loop) vs the refactored one (batched decode,
	// work-stealing sweep scheduler), cross-checked bit-identical.
	simMode := fs.Bool("sim", false, "run the simulator hot-path benchmark: batched decode and the steal-scheduled 7-scheme replay vs the pre-refactor serial pipeline")
	simFrac := fs.Float64("sim-frac", 0.3, "proxy cache size as a fraction of distinct objects (sim mode)")
	simWorkers := fs.Int("sim-workers", 0, "sweep scheduler workers, 0 = GOMAXPROCS (sim mode)")
	simMinSpeedup := fs.Float64("sim-min-speedup", 0, "fail unless scheduled/serial speedup >= min(this, 0.8 x usable workers) (0 = report only; sim mode)")
	fs.Parse(args)
	startPprof(*pprofAddr)

	if *simMode {
		return runSimBench(simBenchConfig{
			requests:     *requests,
			objects:      *objects,
			clients:      *clients,
			frac:         *simFrac,
			workers:      *simWorkers,
			seed:         *seed,
			minSpeedup:   *simMinSpeedup,
			manifestPath: *manifestPath,
		})
	}

	if *sloMode {
		return runSLOBench(sloBenchConfig{
			requests:    *requests,
			objects:     *objects,
			clients:     *clients,
			proxies:     *proxies,
			caches:      *caches,
			objectBytes: *objectBytes,
			rate:        *rate,
			seed:        *seed,
			timeout:     *timeout,
			scenario:    *sloScenario,
			classSpecs:  *sloClassSpecs,
			maxHitDelta: *sloMaxHitDelta,
			burnGate:    *sloBurnGate,
			manifest:    *manifestPath,
		})
	}

	if *fleetMode {
		sizes, err := parseSizesList(*fleetSizes)
		if err != nil {
			return err
		}
		w := *warmup
		if w < 0 {
			w = *requests / 10
		}
		return runFleetBench(fleetBenchConfig{
			requests:     *requests,
			objects:      *objects,
			clients:      *clients,
			objectBytes:  *objectBytes,
			sizes:        sizes,
			replication:  *fleetReplication,
			totalFrac:    *fleetTotalFrac,
			serviceTime:  *fleetService,
			concurrency:  *fleetConcurrency,
			workers:      *workers,
			warmup:       w,
			seed:         *seed,
			timeout:      *timeout,
			minSpeedup:   *fleetMinSpeedup,
			maxHitDelta:  *fleetMaxHitDelta,
			manifestPath: *manifestPath,
		})
	}

	if *chaosMode {
		w := *warmup
		if w < 0 {
			w = *requests / 10
		}
		return runChaosBench(chaosBenchConfig{
			scenarios:    *chaosScenariosFlag,
			requests:     *requests,
			objects:      *objects,
			clients:      *clients,
			proxies:      *proxies,
			caches:       *caches,
			objectBytes:  *objectBytes,
			rate:         *rate,
			warmup:       w,
			seed:         *seed,
			minP999Cut:   *chaosMinP999Cut,
			manifestPath: *manifestPath,
		})
	}

	if *diskMode {
		return runDiskBench(diskBenchConfig{
			dir:          *diskDir,
			capacity:     *diskCapacity,
			objects:      *objects,
			objectBytes:  *objectBytes,
			ops:          *diskOps,
			readFrac:     *diskReadFrac,
			workers:      *diskWorkers,
			seed:         *seed,
			minRecovery:  *diskMinRecovery,
			minMixed:     *diskMinMixed,
			manifestPath: *manifestPath,
		})
	}

	if *storeMode {
		wl, err := parseWorkersList(*storeWorkers)
		if err != nil {
			return err
		}
		return runStoreBench(storeBenchConfig{
			capacity:     *storeCapacity,
			shards:       *storeShards,
			policy:       *storePolicy,
			objects:      *objects,
			objectBytes:  *objectBytes,
			ops:          *storeOps,
			loadDelay:    *storeDelay,
			workersList:  wl,
			seed:         *seed,
			minSpeedup:   *storeMinSpeedup,
			manifestPath: *manifestPath,
		})
	}

	tr, err := benchTrace(*tracePath, *requests, *objects, *clients, *seed)
	if err != nil {
		return err
	}
	if *warmup < 0 {
		*warmup = tr.Len() / 10
	}

	simCfg := sim.Config{
		Scheme:            sim.HierGD,
		NumProxies:        *proxies,
		ClientsPerCluster: (traceClients(tr) + *proxies - 1) / *proxies,
		P2PClientCaches:   *caches,
		Directory:         sim.DirExact,
		ProxyCacheFrac:    *proxyFrac,
		ClientCacheFrac:   *clientFrac,
		WarmupRequests:    *warmup,
		Seed:              *seed,
	}
	proxyCap, clientCap := simCfg.CapacityPlan(tr)
	toBytes := func(units []uint64) []uint64 {
		out := make([]uint64, len(units))
		for i, u := range units {
			out[i] = u * uint64(*objectBytes)
		}
		return out
	}

	var man *obs.Manifest
	var reg *obs.Registry
	if *manifestPath != "" {
		reg = obs.NewRegistry("hiergdd-bench")
		man = obs.NewManifest("hiergdd-bench")
	}
	// Span tracing: the driver head-samples roots and stamps the trace
	// id on the wire; the daemons share one join-only collector, so
	// every daemon record is a hop of a driver-sampled request and the
	// merged export shows each request's full decision path.
	var driverTracer, daemonTracer *obs.Tracer
	if *traceOut != "" || *traceJSONL != "" {
		driverTracer = obs.NewTracer(obs.TracerOptions{
			Origin: "loadgen", SampleEvery: *traceSample, Clock: obs.ClockWall,
		})
		daemonTracer = obs.NewTracer(obs.TracerOptions{
			Origin: "daemon", SampleEvery: obs.SampleNever, Clock: obs.ClockWall,
		})
	}

	topo, err := loadgen.StartLoopback(loadgen.TopologyConfig{
		Proxies:            *proxies,
		CachesPerProxy:     *caches,
		ProxyCapacityBytes: toBytes(proxyCap),
		CacheCapacityBytes: toBytes(clientCap),
		ObjectBytes:        *objectBytes,
		Tracer:             daemonTracer,
		Metrics:            reg,
	})
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		topo.Close(ctx)
	}()
	fmt.Printf("hiergdd bench: %d proxies x %d client caches on loopback, origin %s\n",
		*proxies, *caches, topo.OriginURL)
	fmt.Printf("  capacities (units x %dB objects): proxy %v, per-client %v\n",
		*objectBytes, proxyCap, clientCap)

	sched, err := loadgen.BuildSchedule(tr, topo.ProxyURLs, topo.OriginURL, simCfg.ProxyFor)
	if err != nil {
		return err
	}

	opts := loadgen.Options{
		MaxInflight: *maxInflight,
		Workers:     *workers,
		Think:       *think,
		Duration:    *duration,
		Warmup:      *warmup,
		Obs:         reg,
		Tracer:      driverTracer,
	}
	switch *mode {
	case "open":
		opts.Mode = loadgen.OpenLoop
		switch *arrivalKind {
		case "poisson":
			opts.Arrival, err = loadgen.NewPoisson(*rate, *seed)
		case "bursty":
			opts.Arrival, err = loadgen.NewBursty(*rate, *onPeriod, *offPeriod, *seed)
		default:
			err = fmt.Errorf("unknown arrival process %q", *arrivalKind)
		}
		if err != nil {
			return err
		}
	case "closed":
		opts.Mode = loadgen.ClosedLoop
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	tgt := loadgen.NewHTTPTarget(*timeout)
	res, err := loadgen.Run(context.Background(), sched, tgt, opts)
	tgt.CloseIdleConnections() // pre-dialed pool conns would stall the drain
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(res.Table())

	// Replay exactly what was issued through the simulator with the
	// live topology's capacities pinned.
	simCfg.ProxyCapacityOverride = proxyCap
	simCfg.ClientCapacityOverride = clientCap
	rep, err := loadgen.Calibrate(tr, res, simCfg, *tolerance)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(rep.Table())

	if driverTracer != nil {
		// Driver-observed per-tier latency decomposition.  Report-only:
		// live tiers are wall-clock RTTs, not analytic netmodel units, so
		// no tolerance check applies here (the asserted cross-check
		// against netmodel lives in the simulator's trace path).
		if d := driverTracer.Decompose(); len(d.Tiers) > 0 {
			fmt.Println()
			fmt.Println("live latency decomposition (seconds, driver-observed):")
			fmt.Print(d.Table())
		}
		merged := append(driverTracer.Snapshots(), daemonTracer.Snapshots()...)
		if *traceOut != "" {
			if err := writeTraces(*traceOut, func(w io.Writer) error {
				return obs.WriteChromeTraces(w, merged)
			}); err != nil {
				return fmt.Errorf("trace export: %w", err)
			}
			fmt.Printf("\ntrace: %d records (%d sampled roots) -> %s\n",
				len(merged), driverTracer.Len(), *traceOut)
		}
		if *traceJSONL != "" {
			if err := writeTraces(*traceJSONL, func(w io.Writer) error {
				return obs.WriteJSONLTraces(w, merged)
			}); err != nil {
				return fmt.Errorf("trace export: %w", err)
			}
			fmt.Printf("trace: %d records -> %s\n", len(merged), *traceJSONL)
		}
		if reg != nil {
			// Once, at end of run — PublishMetrics accumulates counters.
			driverTracer.PublishMetrics(reg)
			daemonTracer.PublishMetrics(reg)
		}
	}

	if man != nil {
		man.SetConfig("mode", *mode)
		man.SetConfig("arrival", *arrivalKind)
		man.SetConfig("rate", *rate)
		man.SetConfig("proxies", *proxies)
		man.SetConfig("caches_per_proxy", *caches)
		man.SetConfig("object_bytes", *objectBytes)
		man.SetConfig("proxy_capacity_units", proxyCap)
		man.SetConfig("client_capacity_units", clientCap)
		man.SetConfig("warmup", *warmup)
		man.SetConfig("tolerance", *tolerance)
		man.SetConfig("seed", *seed)
		man.Trace = map[string]any{
			"fingerprint":      trace.Fingerprint(tr),
			"requests":         tr.Len(),
			"distinct_clients": traceClients(tr),
		}
		man.SetNote("live", res.SummaryNote())
		man.SetNote("calibration", rep)
		man.Finish(reg)
		if err := man.WriteFile(*manifestPath); err != nil {
			return fmt.Errorf("writing manifest: %w", err)
		}
		// Self-check: the file on disk must round-trip through the
		// validating reader, so downstream tooling can rely on it.
		if _, err := obs.ReadManifestFile(*manifestPath); err != nil {
			return fmt.Errorf("manifest self-check: %w", err)
		}
		fmt.Printf("\nmanifest: %s\n", *manifestPath)
	}

	if *tolerance > 0 && !rep.WithinTolerance {
		return fmt.Errorf("calibration outside tolerance: |%.3f| > %.3f aggregate hit-ratio delta",
			math.Abs(rep.AggregateDelta), *tolerance)
	}
	return nil
}

// writeTraces creates path and streams one export into it.
func writeTraces(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchTrace loads the trace at path, or generates a ProWGen workload.
func benchTrace(path string, requests, objects, clients int, seed int64) (*trace.Trace, error) {
	if path == "" {
		return prowgen.Generate(prowgen.Config{
			NumRequests: requests,
			NumObjects:  objects,
			NumClients:  clients,
			Seed:        seed,
		})
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := readBinaryBatched(f)
	if err != nil {
		if _, serr := f.Seek(0, 0); serr == nil {
			if ttr, terr := trace.ReadText(f); terr == nil {
				return ttr, nil
			}
		}
		return nil, fmt.Errorf("reading trace %s: %w", path, err)
	}
	return tr, nil
}

// readBinaryBatched loads a binary trace through the batched decoder:
// the header's declared count sizes one clamped allocation and
// ReadBatch fills it directly, so multi-million-request replay traces
// load without the per-record decode overhead or append re-copies.
func readBinaryBatched(f *os.File) (*trace.Trace, error) {
	br, err := trace.NewBatchReader(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, err
	}
	// Clamp the pre-allocation like trace.ReadBinary: the declared
	// count is untrusted until the stream delivers it.
	pre := br.Len()
	if pre > 1<<20 {
		pre = 1 << 20
	}
	tr := &trace.Trace{
		Requests:   make([]trace.Request, 0, pre),
		NumClients: br.NumClients(),
		NumObjects: br.NumObjects(),
	}
	for br.Remaining() > 0 {
		if cap(tr.Requests) == len(tr.Requests) {
			tr.Requests = append(tr.Requests, trace.Request{})[:len(tr.Requests)]
		}
		n, err := br.ReadBatch(tr.Requests[len(tr.Requests):cap(tr.Requests)])
		tr.Requests = tr.Requests[:len(tr.Requests)+n]
		if err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// traceClients is the client population (max id + 1, ids are dense).
func traceClients(tr *trace.Trace) int {
	var max trace.ClientID
	for _, r := range tr.Requests {
		if r.Client > max {
			max = r.Client
		}
	}
	return int(max) + 1
}
