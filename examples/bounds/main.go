// Bounds study: how much headroom do the paper's policies leave?
//
// Two upper bounds frame every result in the paper:
//
//   - per-cache, the clairvoyant Belady/MIN policy bounds any online
//     replacement (LFU, LRU, greedy-dual, GDSF);
//   - cluster-wide, the FC/FC-EC cost-benefit placement with perfect
//     frequency knowledge bounds any coordination.
//
// This example measures both on one workload: first single-cache miss
// counts against MIN, then scheme latency against the FC-EC envelope —
// including the implementable trailing-window FC that shows *why*
// perfect knowledge matters.
package main

import (
	"fmt"
	"log"

	"webcache"
	"webcache/internal/cache"
	"webcache/internal/prowgen"
	"webcache/internal/trace"
)

func main() {
	cfg := prowgen.Config{
		NumRequests: 150_000,
		NumObjects:  2_000,
		NumClients:  200,
		Seed:        21,
	}
	tr, err := prowgen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:", webcache.AnalyzeTrace(tr))

	// Part 1: single-cache policies against clairvoyant MIN.
	seq := make([]trace.ObjectID, tr.Len())
	for i, r := range tr.Requests {
		seq[i] = r.Object
	}
	const capacity = 200 // 10% of the object universe
	opt := cache.ReplaySingleCache(cache.NewBelady(capacity, seq), seq)
	fmt.Printf("\nsingle cache of %d objects, %d requests — misses vs clairvoyant MIN (%d):\n",
		capacity, len(seq), opt)
	policies := []struct {
		name string
		p    cache.Policy
	}{
		{"lru", cache.NewLRU(capacity)},
		{"lfu-perfect", cache.NewPerfectLFU(capacity)},
		{"greedy-dual", cache.NewGreedyDual(capacity)},
		{"gdsf", cache.NewGDSF(capacity)},
	}
	for _, pl := range policies {
		misses := cache.ReplaySingleCache(pl.p, seq)
		fmt.Printf("  %-12s %7d misses  (%.2fx optimal)\n", pl.name, misses, float64(misses)/float64(opt))
	}

	// Part 2: cooperative schemes against the FC-EC envelope.
	fmt.Println("\ncooperative schemes at 20% proxy caches — gain vs NC:")
	nc, err := webcache.Run(tr, webcache.Config{Scheme: webcache.NC, ProxyCacheFrac: 0.2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	rows := []struct {
		name string
		cfg  webcache.Config
	}{
		{"SC", webcache.Config{Scheme: webcache.SC, ProxyCacheFrac: 0.2, Seed: 1}},
		{"Hier-GD", webcache.Config{Scheme: webcache.HierGD, ProxyCacheFrac: 0.2, Seed: 1}},
		{"FC (trailing window)", webcache.Config{Scheme: webcache.FC, ProxyCacheFrac: 0.2, FCTrailing: true, Seed: 1}},
		{"FC (perfect knowledge)", webcache.Config{Scheme: webcache.FC, ProxyCacheFrac: 0.2, Seed: 1}},
		{"FC-EC (upper bound)", webcache.Config{Scheme: webcache.FCEC, ProxyCacheFrac: 0.2, Seed: 1}},
	}
	for _, row := range rows {
		res, err := webcache.Run(tr, row.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s %6.1f%%\n", row.name, 100*webcache.Gain(res.AvgLatency, nc.AvgLatency))
	}
	fmt.Println("\nThe trailing-window FC — the implementable form of coordinated")
	fmt.Println("placement — collapses under temporal drift; the gap up to the")
	fmt.Println("perfect-knowledge FC is what the paper's assumption is worth.")
}
