// Squid-log walkthrough: the adoption path for an operator with real
// proxy logs.  The example synthesizes a plausible Squid access.log in
// memory (two office subnets browsing a shared document universe),
// ingests it with the Squid parser, and asks: how much would
// federating the desktops' browser caches (Hier-GD) buy this
// deployment compared to what the proxies do today?
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"webcache"
)

// synthesizeLog fabricates a Squid native-format access log with a
// Zipf-ish URL popularity and per-subnet client addresses.
func synthesizeLog(lines int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	ts := 1_066_000_000.0
	hosts := []string{"intranet.corp", "docs.corp", "www.supplier.example", "cdn.example"}
	for i := 0; i < lines; i++ {
		ts += rng.ExpFloat64() * 0.4
		subnet := rng.Intn(2)
		client := fmt.Sprintf("10.%d.0.%d", subnet, 1+rng.Intn(100))
		// Popularity: object ranks drawn with a heavy head.
		rank := int(float64(2000) * rng.Float64() * rng.Float64() * rng.Float64())
		host := hosts[rank%len(hosts)]
		size := 512 + rng.Intn(64*1024)
		status := "TCP_MISS/200"
		if rng.Float64() < 0.05 {
			status = "TCP_MISS/404" // noise the parser must drop
		}
		fmt.Fprintf(&b, "%.3f %d %s %s %d GET http://%s/doc%d - DIRECT/- text/html\n",
			ts, rng.Intn(900), client, status, size, host, rank)
	}
	return b.String()
}

func main() {
	raw := synthesizeLog(120_000, 7)
	res, err := webcache.ReadSquidLog(strings.NewReader(raw), webcache.SquidOptions{UnitSize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d requests (%d log lines, %d skipped)\n",
		res.Trace.Len(), res.Lines, res.Skipped)
	fmt.Println("workload:", webcache.AnalyzeTrace(res.Trace))
	fmt.Printf("distinct clients: %d, distinct URLs: %d\n\n", len(res.Clients), len(res.Objects))

	// Replay the operator's options at a modest proxy cache size.
	const frac = 0.25
	nc, err := webcache.Run(res.Trace, webcache.Config{Scheme: webcache.NC, ProxyCacheFrac: frac, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %10s %8s\n", "deployment option", "latency", "gain%")
	for _, opt := range []struct {
		name   string
		scheme webcache.Scheme
	}{
		{"status quo (independent proxies)", webcache.NC},
		{"proxy cooperation (SC)", webcache.SC},
		{"+ federated browser caches", webcache.HierGD},
	} {
		r, err := webcache.Run(res.Trace, webcache.Config{Scheme: opt.scheme, ProxyCacheFrac: frac, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %10.4f %8.1f\n", opt.name, r.AvgLatency,
			100*webcache.Gain(r.AvgLatency, nc.AvgLatency))
	}

	fmt.Println("\nThe same pipeline works on a real access.log:")
	fmt.Println("  go run ./cmd/tracegen -squid /var/log/squid/access.log -o corp.bin")
	fmt.Println("  go run ./cmd/webcachesim -run hier-gd ...   # against corp.bin")
}
