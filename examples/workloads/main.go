// Workload-sensitivity study: how the benefit of exploiting client
// caches depends on workload shape — the intuition behind the paper's
// Figures 3 and 4, condensed into one runnable table.
//
// Sweeps the Zipf popularity exponent (alpha), the temporal-locality
// stack size, and the one-timer fraction, reporting SC-EC and Hier-GD
// gains at a small proxy cache.
package main

import (
	"fmt"
	"log"

	"webcache"
)

func gainFor(tr *webcache.Trace, s webcache.Scheme, frac float64) float64 {
	nc, err := webcache.Run(tr, webcache.Config{Scheme: webcache.NC, ProxyCacheFrac: frac, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := webcache.Run(tr, webcache.Config{Scheme: s, ProxyCacheFrac: frac, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	return webcache.Gain(res.AvgLatency, nc.AvgLatency)
}

func makeTrace(alpha, stack, oneTimers float64) *webcache.Trace {
	tr, err := webcache.GenerateWorkload(webcache.WorkloadConfig{
		NumRequests:  120_000,
		NumObjects:   1_500,
		NumClients:   200,
		OneTimerFrac: oneTimers,
		Alpha:        alpha,
		StackFrac:    stack,
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func main() {
	const frac = 0.5 // mid-range cache size, where the paper's sensitivity directions are clearest

	fmt.Println("== Popularity skew (Figure 3's knob): smaller alpha = bigger working set ==")
	fmt.Printf("%-12s %10s %10s\n", "alpha", "SC-EC", "Hier-GD")
	for _, alpha := range []float64{0.5, 0.7, 1.0} {
		tr := makeTrace(alpha, 0.2, 0.5)
		fmt.Printf("%-12.1f %9.1f%% %9.1f%%\n", alpha,
			100*gainFor(tr, webcache.SCEC, frac),
			100*gainFor(tr, webcache.HierGD, frac))
	}
	fmt.Println("Cooperation is most effective when the working set is large (small alpha):")
	fmt.Println("for the hottest objects only the first access can benefit from a peer.")

	fmt.Println("\n== Temporal locality (Figure 4's knob): LRU stack size ==")
	fmt.Printf("%-12s %10s %10s\n", "stack", "SC-EC", "Hier-GD")
	for _, stack := range []float64{0.05, 0.20, 0.60} {
		tr := makeTrace(0.7, stack, 0.5)
		fmt.Printf("%-12s %9.1f%% %9.1f%%\n", fmt.Sprintf("%.0f%%", stack*100),
			100*gainFor(tr, webcache.SCEC, frac),
			100*gainFor(tr, webcache.HierGD, frac))
	}
	fmt.Println("Stronger temporal locality helps the NC baseline too, so the *relative*")
	fmt.Println("gain of cooperation shrinks as the stack grows.")

	fmt.Println("\n== One-time referencing: objects no cache can help with ==")
	fmt.Printf("%-12s %10s %10s\n", "one-timers", "SC-EC", "Hier-GD")
	for _, ot := range []float64{0.3, 0.5, 0.7} {
		tr := makeTrace(0.7, 0.2, ot)
		fmt.Printf("%-12s %9.1f%% %9.1f%%\n", fmt.Sprintf("%.0f%%", ot*100),
			100*gainFor(tr, webcache.SCEC, frac),
			100*gainFor(tr, webcache.HierGD, frac))
	}
	fmt.Println("One-timers dilute every cache equally; the UCB-like trace's high")
	fmt.Println("one-timer fraction is why Figure 2(b)'s gains sit below Figure 2(a)'s.")
}
