// Quickstart: generate the paper's default synthetic workload (scaled
// down), run every caching scheme at one cache size, and print the
// latency-gain table — a minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"webcache"
)

func main() {
	// The paper's workload (§5.1) at 10% scale: 100k requests over
	// 1,000 distinct objects, 50% one-timers, Zipf alpha 0.7.
	cfg := webcache.DefaultWorkload()
	cfg.NumRequests /= 10
	cfg.NumObjects /= 10
	cfg.Seed = 42
	tr, err := webcache.GenerateWorkload(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:", webcache.AnalyzeTrace(tr))

	// Baseline: NC (no cooperation, LFU proxies).
	const frac = 0.2 // proxy caches sized at 20% of the infinite cache size
	nc, err := webcache.Run(tr, webcache.Config{Scheme: webcache.NC, ProxyCacheFrac: frac, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNC baseline: avg latency %.4f (proxy hits %.1f%%)\n\n",
		nc.AvgLatency, 100*nc.HitRatio(webcache.SrcLocalProxy))

	fmt.Printf("%-8s %10s %8s %8s %8s %8s %8s\n",
		"scheme", "latency", "gain%", "proxy%", "p2p%", "remote%", "server%")
	for _, s := range webcache.AllSchemes() {
		res, err := webcache.Run(tr, webcache.Config{Scheme: s, ProxyCacheFrac: frac, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %10.4f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			s, res.AvgLatency,
			100*webcache.Gain(res.AvgLatency, nc.AvgLatency),
			100*res.HitRatio(webcache.SrcLocalProxy),
			100*res.HitRatio(webcache.SrcP2P),
			100*res.HitRatio(webcache.SrcRemoteProxy),
			100*res.HitRatio(webcache.SrcServer))
	}
	fmt.Println("\nExploiting client caches (the -EC schemes and Hier-GD) turns")
	fmt.Println("server fetches into LAN fetches: compare the p2p% and server% columns.")
}
