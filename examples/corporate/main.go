// Corporate-network scenario: the paper's motivating deployment — a
// proxy cluster serving two corporate networks whose desktop browser
// caches are federated into P2P client caches with Hier-GD.
//
// This example exercises the deployment-facing machinery end to end:
//
//   - the Bloom-filter lookup directory versus the Exact-Directory
//     (memory versus wasted-lookup trade-off, §4.2);
//   - piggybacked destaging versus dedicated connections (§4.4);
//   - desktop churn: machines crash mid-day and replacements join,
//     with the overlay re-homing objects.
package main

import (
	"fmt"
	"log"

	"webcache"
)

func main() {
	// A mid-size corporation: two sites, 100 desktops each, browsing
	// a 2,000-object working universe.
	tr, err := webcache.GenerateWorkload(webcache.WorkloadConfig{
		NumRequests:  200_000,
		NumObjects:   2_000,
		NumClients:   200,
		OneTimerFrac: 0.5,
		Alpha:        0.7,
		StackFrac:    0.2,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("corporate workload:", webcache.AnalyzeTrace(tr))
	const frac = 0.15 // modest proxy caches: the regime where client caches matter

	nc, err := webcache.Run(tr, webcache.Config{Scheme: webcache.NC, ProxyCacheFrac: frac, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	type variant struct {
		name string
		cfg  webcache.Config
	}
	variants := []variant{
		{"exact directory, piggyback", webcache.Config{
			Scheme: webcache.HierGD, ProxyCacheFrac: frac, Seed: 1}},
		{"bloom directory, piggyback", webcache.Config{
			Scheme: webcache.HierGD, ProxyCacheFrac: frac, Seed: 1,
			Directory: webcache.DirBloom, BloomFPRate: 0.01}},
		{"exact directory, no piggyback", webcache.Config{
			Scheme: webcache.HierGD, ProxyCacheFrac: frac, Seed: 1,
			DisablePiggyback: true}},
		{"bloom + desktop churn (fail & replace)", webcache.Config{
			Scheme: webcache.HierGD, ProxyCacheFrac: frac, Seed: 1,
			Directory: webcache.DirBloom, BloomFPRate: 0.01,
			FailEvery: 10_000, ReplaceFailed: true}},
		{"exact + hot-object replication", webcache.Config{
			Scheme: webcache.HierGD, ProxyCacheFrac: frac, Seed: 1,
			ReplicateHotAfter: 100}},
	}

	fmt.Printf("\n%-40s %8s %7s %10s %10s %8s %8s %8s\n",
		"variant", "gain%", "p2p%", "messages", "dir-mem", "dirFP", "failed", "maxload")
	for _, v := range variants {
		res, err := webcache.Run(tr, v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s %8.1f %7.1f %10d %9dB %8d %8d %8d\n",
			v.name,
			100*webcache.Gain(res.AvgLatency, nc.AvgLatency),
			100*res.HitRatio(webcache.SrcP2P),
			res.P2P.Messages,
			res.DirectoryMemoryBytes,
			res.DirectoryFalsePositives,
			res.FailedClients,
			res.P2PMaxNodeServes)
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  - the Bloom directory costs a fraction of the exact directory's memory")
	fmt.Println("    and a handful of wasted LAN lookups (dirFP);")
	fmt.Println("  - disabling piggybacking leaves hit behaviour identical but spends an")
	fmt.Println("    extra proxy->client connection per destaged object (messages);")
	fmt.Println("  - desktop churn loses cached objects, yet replacements re-join the")
	fmt.Println("    overlay and the latency gain degrades only mildly;")
	fmt.Println("  - hot-object replication spreads lookup load across desktops without")
	fmt.Println("    costing hit ratio (compare max per-desktop serves below).")
}
