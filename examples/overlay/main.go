// Overlay walkthrough: the Pastry substrate behind the P2P client
// cache, demonstrated standalone — joins, prefix routing, the paper's
// hop bound, object pass-down with diversion, and crash recovery.
package main

import (
	"fmt"
	"log"
	"math"

	"webcache/internal/cache"
	"webcache/internal/p2p"
	"webcache/internal/pastry"
	"webcache/internal/trace"
)

func main() {
	// 1. Build the overlay the paper sizes its example around: 1024
	//    client caches, b=4, so routing should take ~log16(1024) ≈ 2.5
	//    hops ("3 < log16(N=1024) + 1 < 4", §4.1).
	ov, err := pastry.New(pastry.Config{B: 4, LeafSetSize: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ov.JoinN(1024, "corp-desktop"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		if _, _, err := ov.Route(pastry.HashUint64(uint64(i))); err != nil {
			log.Fatal(err)
		}
	}
	st := ov.Stats()
	bound := math.Log(float64(st.NumNodes)) / math.Log(16)
	fmt.Printf("1024-node overlay: mean %.2f hops, max %d (log16(N)=%.2f)\n",
		st.MeanHops, st.MaxHops, bound)

	// 2. The same machinery as a P2P client cache: pass objects down,
	//    watch diversion keep absorbing after destinations fill up.
	cl, err := p2p.NewCluster(p2p.Config{NumClients: 64, PerClientCapacity: 4, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	stored := 0
	for obj := trace.ObjectID(0); obj < 200; obj++ {
		r, err := cl.StoreEvicted(cache.Entry{Obj: obj, Size: 1, Cost: 1}, int(obj)%64, true)
		if err != nil {
			log.Fatal(err)
		}
		if r.StoredOK {
			stored++
		}
	}
	cs := cl.Stats()
	fmt.Printf("\npass-down of 200 objects into 64 caches x 4 slots:\n")
	fmt.Printf("  stored=%d diversions=%d replacements=%d evictions=%d mean-hops=%.2f\n",
		stored, cs.Diversions, cs.Replacements, cs.Evictions,
		float64(cs.RouteHops)/float64(cs.Stores))

	// 3. Crash a quarter of the desktops; lookups keep resolving for
	//    the survivors' objects.
	lost := 0
	for i := 0; i < 16; i++ {
		objs, err := cl.FailClient(i)
		if err != nil {
			log.Fatal(err)
		}
		lost += len(objs)
	}
	found, missed := 0, 0
	for obj := trace.ObjectID(0); obj < 200; obj++ {
		lr, err := cl.Lookup(obj, 20)
		if err != nil {
			log.Fatal(err)
		}
		if lr.Found {
			found++
		} else {
			missed++
		}
	}
	fmt.Printf("\nafter crashing 16/64 desktops (lost %d objects):\n", lost)
	fmt.Printf("  lookups: %d found, %d missed — every surviving object stays routable\n",
		found, missed)

	// 4. Replacements join and take over their key ranges.
	for i := 0; i < 8; i++ {
		if _, err := cl.JoinClient(); err != nil {
			log.Fatal(err)
		}
	}
	cs = cl.Stats()
	fmt.Printf("\n8 replacement desktops joined: %d objects re-homed to new owners\n", cs.Handoffs)
	fmt.Printf("live caches: %d, aggregate population: %d objects\n",
		cl.LiveClients(), cl.TotalCached())
}
