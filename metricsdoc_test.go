// Doc-drift gate for the library-level metric namespaces: one smoke
// run per subsystem, then METRICS.md is held against the names the
// registry actually saw — both directions (an undocumented
// registration, or a documented name nothing registers, both fail).
// Each tool's own test suite covers its namespace the same way
// (loadgen, httpcache, overlay, tracegen, figure).
package webcache_test

import (
	"os"
	"testing"

	"webcache"
	"webcache/internal/cache"
	"webcache/internal/invariant"
	"webcache/internal/obs"
)

// misreportingPolicy wraps a real policy but lies about Used(), so the
// invariant checker provably fires and registers the
// check.violations.* counters the doc documents.
type misreportingPolicy struct{ cache.Policy }

func (l misreportingPolicy) Used() uint64 { return l.Policy.Used() + 1 }

func TestMetricsDocLibraryNamespaces(t *testing.T) {
	md, err := os.ReadFile("METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	reg := webcache.NewMetricsRegistry("doc-smoke")
	chk := webcache.NewChecker(reg)

	// core.sweep.* and most of sim.*: one checked figure point drives
	// the worker pool, the NC baseline, and full Result publication.
	if _, err := webcache.RunFigure("5a", webcache.FigureOptions{
		Scale: 0.02,
		Fracs: []float64{0.5},
		Seed:  1,
		Obs:   reg,
		Check: chk,
	}); err != nil {
		t.Fatal(err)
	}

	// trace.*: a span-traced simulator run, folded in once at the end
	// exactly like webcachesim -run -trace-out does.
	tracer := webcache.NewSpanTracer(webcache.SpanTracerOptions{Origin: "doc-smoke", SampleEvery: 25})
	tr, err := webcache.GenerateWorkload(webcache.WorkloadConfig{
		NumRequests: 30_000, NumObjects: 1_000, NumClients: 200, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := webcache.Run(tr, webcache.Config{
		Scheme: webcache.HierGD, ProxyCacheFrac: 0.3, Seed: 1, Obs: reg, Tracer: tracer,
	}); err != nil {
		t.Fatal(err)
	}
	tracer.PublishMetrics(reg)

	// check.violations and check.violations.<layer> only register when
	// an invariant actually fails; prove the wiring with a policy whose
	// accounting is broken on purpose.
	p := invariant.WrapPolicy(misreportingPolicy{cache.NewLRU(64)}, chk, "doc-smoke")
	p.Add(cache.Entry{Obj: 1, Size: 4, Cost: 1})
	if chk.ViolationCount() == 0 {
		t.Fatal("deliberately broken policy triggered no violation")
	}

	var names []string
	for _, m := range reg.Snapshot() {
		names = append(names, m.Name)
	}
	// sim.fleet.* is owned by the fleet engine's own smoke test
	// (internal/sim TestMetricsDocSimFleet), so carve it out here.
	if err := obs.CheckMetricsDoc(md, names, "sim", "-sim.fleet", "core.sweep", "check", "trace"); err != nil {
		t.Fatal(err)
	}
}
