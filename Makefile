# Build/test entry points.  `make check` is the observability-layer
# gate: vet everything and race-test the packages with concurrent
# metric traffic.

GO ?= go

.PHONY: all build test check race bench vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The instrumentation gate: full vet plus race-enabled tests of the
# metric registry and the simulator that feeds it.
check: vet
	$(GO) test -race ./internal/obs ./internal/sim

race:
	$(GO) test -race ./...

# One iteration of every figure bench; set WEBCACHE_BENCH_SCALE and/or
# WEBCACHE_BENCH_MANIFEST=bench.json to scale up or record a manifest.
bench:
	$(GO) test -bench=Fig -benchtime=1x .
