# Build/test entry points.  `make check` is the observability-layer
# gate: vet everything and race-test the packages with concurrent
# metric traffic.

GO ?= go

.PHONY: all build test check race bench vet fuzz-smoke bench-smoke bench-diff store-bench disk-bench chaos-smoke chaos-bench fleet-bench slo-smoke trace-alloc sim-bench sim-alloc

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The instrumentation gate: full vet plus race-enabled tests of the
# metric registry, the invariant oracles, the simulator that feeds
# them (the ./internal/sim run includes the checked end-to-end
# replays), and the concurrent data plane (sharded store + the HTTP
# daemons built on it).
check: vet
	$(GO) test -race ./internal/obs ./internal/invariant ./internal/sim \
		./internal/core ./internal/store ./internal/store/disk ./internal/httpcache

# Ten seconds of each fuzz target (beyond replaying the checked-in
# seed corpora, which plain `make test` already does).  FUZZTIME=1m
# for a longer soak.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzCounting -fuzztime=$(FUZZTIME) ./internal/bloom
	$(GO) test -run='^$$' -fuzz=FuzzCheckedPolicy -fuzztime=$(FUZZTIME) ./internal/invariant
	$(GO) test -run='^$$' -fuzz=FuzzRingChurn -fuzztime=$(FUZZTIME) ./internal/invariant
	$(GO) test -run='^$$' -fuzz=FuzzTextCodec -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzBinaryCodec -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzRecord -fuzztime=$(FUZZTIME) ./internal/store/disk
	$(GO) test -run='^$$' -fuzz=FuzzJournalReplay -fuzztime=$(FUZZTIME) ./internal/store/disk
	$(GO) test -run='^$$' -fuzz=FuzzFleetRingChurn -fuzztime=$(FUZZTIME) ./internal/fleet

race:
	$(GO) test -race ./...

# ~10s live loopback bench: 2 proxies x 3 client caches over real
# sockets driven open-loop from a small ProWGen trace, then the same
# prefix replayed through the simulator with identical capacities.
# Exits non-zero if live and simulated aggregate hit ratios drift more
# than 20pp apart (a loose bound — smoke traces are small) or if the
# BENCH_live.json manifest fails to round-trip the validating reader.
bench-smoke:
	$(GO) run ./cmd/hiergdd bench -requests 4000 -objects 400 -clients 40 \
		-proxies 2 -caches 3 -mode open -arrival poisson -rate 600 \
		-duration 10s -object-bytes 512 -warmup 400 -tolerance 0.2 \
		-manifest BENCH_live.json

# The manifest-diff loop: run the same small bench twice (same seed,
# so the workload fingerprints match), then diff the two manifests
# with cmd/benchdiff — run-to-run metric drift, mechanically.
bench-diff:
	$(GO) run ./cmd/hiergdd bench -requests 1500 -objects 150 -clients 20 \
		-proxies 2 -caches 2 -mode closed -workers 8 -object-bytes 128 \
		-warmup 150 -manifest BENCH_a.json
	$(GO) run ./cmd/hiergdd bench -requests 1500 -objects 150 -clients 20 \
		-proxies 2 -caches 2 -mode closed -workers 8 -object-bytes 128 \
		-warmup 150 -manifest BENCH_b.json
	$(GO) run ./cmd/benchdiff BENCH_a.json BENCH_b.json

# ~5s store microbenchmark: closed-loop GetOrLoad on the sharded
# coalescing store vs the single-mutex uncoalesced baseline, with a
# 1ms loader delay standing in for the origin round trip.  Fails
# unless the sharded store at 16 workers beats the baseline at 1
# worker by at least 2x; writes the BENCH_store.json manifest
# (diffable run-to-run with cmd/benchdiff, like bench-diff).
store-bench:
	$(GO) run ./cmd/hiergdd bench -store -store-ops 4000 -store-load-delay 1ms \
		-objects 512 -object-bytes 4096 -store-capacity 1048576 \
		-store-workers 1,4,16 -store-min-speedup 2 -manifest BENCH_store.json

# ~2s disk-tier benchmark: populate the append-only log through the
# write-behind queue, sustain a closed-loop 90/10 read/write mix, then
# close and reopen the store timing the journal replay — the recovery
# rate a restarted daemon's time-to-serving depends on.  The reopen
# runs with the invariant checker attached (crash-consistency gate).
# Fails below 20k replayed objects/sec or 10k mixed ops/sec; writes
# the BENCH_disk.json manifest (diffable run-to-run via cmd/benchdiff).
disk-bench:
	$(GO) run ./cmd/hiergdd bench -disk -objects 2000 -object-bytes 1024 \
		-disk-ops 20000 -disk-workers 8 -disk-read-frac 0.9 \
		-disk-min-recovery 20000 -disk-min-mixed 10000 -manifest BENCH_disk.json

# ~10s chaos smoke: the two headline adversarial scenarios (slow-peer
# tail amplification, mass flash-churn) run live and simulated, with
# the httpcache defenses off and on, the conservation accountant
# attached to every run.  Fails if any run breaks conservation or if
# the per-hop deadlines + hedged requests cut the live slow-peer p999
# by less than 1.3x; writes the BENCH_chaos.json manifest (diffable
# run-to-run via cmd/benchdiff).
chaos-smoke:
	$(GO) run ./cmd/hiergdd bench -chaos -chaos-scenarios slow-peer,flash-churn,churn-during-flash-crowd \
		-requests 1500 -objects 200 -clients 40 -proxies 2 -caches 3 \
		-object-bytes 512 -rate 750 -chaos-min-p999-cut 1.3 \
		-manifest BENCH_chaos.json

# ~30s full chaos suite: every scenario (baseline, slow-peer,
# flash-churn, byzantine, poison, fleet-partition), same gates as
# chaos-smoke.
chaos-bench:
	$(GO) run ./cmd/hiergdd bench -chaos \
		-requests 1500 -objects 200 -clients 40 -proxies 2 -caches 3 \
		-object-bytes 512 -rate 750 -chaos-min-p999-cut 1.3 \
		-manifest BENCH_chaos.json

# ~15s SLO-plane smoke: class-tagged load (interactive 100ms @ 99%,
# batch 1s @ 90%) against a 2-proxy loopback topology with per-member
# registries and SLO trackers, under the slow-peer chaos scenario,
# defenses off and on.  After each cell the cluster aggregator scrapes
# every member's /metrics over HTTP and merges them.  Fails unless the
# defenses cut the interactive class's fast-window burn rate and the
# aggregator's cluster hit ratio agrees with the load generator's to
# within 1pp; writes the BENCH_slo.json manifest (diffable run-to-run
# via cmd/benchdiff).
slo-smoke:
	$(GO) run ./cmd/hiergdd bench -slo -requests 3000 -objects 300 -clients 40 \
		-proxies 2 -caches 3 -object-bytes 512 -rate 400 \
		-slo-classes "interactive:100ms:0.99:30s,batch:1s:0.9:30s" \
		-slo-scenario slow-peer -slo-max-hit-delta 0.01 \
		-manifest BENCH_slo.json

# ~10s fleet scale sweep: the same ProWGen workload and the same TOTAL
# proxy budget (split evenly) driven closed-loop against 1, 2, 4, and 8
# consistent-hash fleet members, each behind a 2-slot x 1ms service
# gate standing in for member CPU.  Fails unless throughput strictly
# increases with fleet size, 8 members sustain >= 3x the single
# member's rate, and every size's hit ratio stays within 2pp of the
# single member's (partitioning must not cost hits); writes the
# BENCH_fleet.json manifest (diffable run-to-run via cmd/benchdiff).
fleet-bench:
	$(GO) run ./cmd/hiergdd bench -fleet -requests 8000 -objects 800 \
		-clients 80 -object-bytes 512 -workers 64 -warmup 800 \
		-fleet-sizes 1,2,4,8 -fleet-min-speedup 3 -fleet-max-hit-delta 0.02 \
		-manifest BENCH_fleet.json

# The disabled-tracer cost gate: the nil tracer must stay zero-alloc
# on the request path (also asserted by TestDisabledTracerZeroAlloc;
# CI runs this with -benchmem so regressions show up as numbers).
trace-alloc:
	$(GO) test -run='^$$' -bench=BenchmarkDisabledTracer -benchmem ./internal/obs

# ~5s simulator hot-path benchmark: the pin-test workload (60k
# requests, 3k objects) decoded and replayed through both pipeline
# shapes — the pre-refactor per-record decoder and serial 7-scheme
# loop kept in the harness as the recorded baseline, vs the batched
# decoder and the work-stealing sweep scheduler.  Results must be
# bit-identical; the speedup gate is min(2, 0.8 x usable workers), so
# multi-core CI enforces the full 2x while a one-core box only
# checks scheduler overhead.  Writes the BENCH_sim.json manifest
# (diffable run-to-run via cmd/benchdiff).
sim-bench:
	$(GO) run ./cmd/hiergdd bench -sim -requests 60000 -objects 3000 \
		-clients 200 -sim-min-speedup 2 -manifest BENCH_sim.json

# The hot-path zero-alloc gates: steady-state simulator serves (LFU
# family + fleet engine) and the live proxy/client-cache memory-hit
# paths must not touch the heap.  Run without -race on purpose —
# race instrumentation allocates on paths the production build does
# not, so these files are !race-tagged and invisible to `make check`.
sim-alloc:
	$(GO) test -run='ZeroAlloc|AllocsPerRun|HitPathAllocs' ./internal/sim ./internal/httpcache

# One iteration of every figure bench; set WEBCACHE_BENCH_SCALE and/or
# WEBCACHE_BENCH_MANIFEST=bench.json to scale up or record a manifest.
bench:
	$(GO) test -bench=Fig -benchtime=1x .
