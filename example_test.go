package webcache_test

import (
	"fmt"
	"log"

	"webcache"
)

// Example reproduces the library's core measurement: the latency gain
// of Hier-GD over uncooperative proxies on the paper's default
// workload shape.
func Example() {
	tr, err := webcache.GenerateWorkload(webcache.WorkloadConfig{
		NumRequests: 100_000,
		NumObjects:  1_000,
		NumClients:  200,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	nc, err := webcache.Run(tr, webcache.Config{Scheme: webcache.NC, ProxyCacheFrac: 0.2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	hg, err := webcache.Run(tr, webcache.Config{Scheme: webcache.HierGD, ProxyCacheFrac: 0.2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hier-GD beats NC: %v\n", hg.AvgLatency < nc.AvgLatency)
	fmt.Printf("some requests served by client caches: %v\n", hg.Sources[webcache.SrcP2P] > 0)
	// Output:
	// Hier-GD beats NC: true
	// some requests served by client caches: true
}

// ExampleParseScheme shows scheme-name resolution as used by CLIs.
func ExampleParseScheme() {
	s, err := webcache.ParseScheme("sc-ec")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s, s.Cooperative(), s.UsesClientCaches())
	// Output: SC-EC true true
}

// ExampleGain shows the paper's latency-gain metric.
func ExampleGain() {
	fmt.Printf("%.2f\n", webcache.Gain(0.25, 1.0))
	// Output: 0.75
}

// ExampleRunFigure regenerates one point of a paper figure.
func ExampleRunFigure() {
	fig, err := webcache.RunFigure("5a", webcache.FigureOptions{
		Scale: 0.02,
		Fracs: []float64{0.5},
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig.ID, len(fig.Series))
	// Output: 5a 3
}
