// Bench-manifest hook: with WEBCACHE_BENCH_MANIFEST=path set, every
// custom metric the benchmarks report is mirrored into an obs registry
// and written as a run-manifest JSON document when the test binary
// exits, e.g.
//
//	WEBCACHE_BENCH_MANIFEST=bench.json go test -bench=Fig2a -benchtime=1x
//
// so benchmark results share the schema (METRICS.md) that webcachesim
// -manifest uses, and runs can be diffed mechanically.
package webcache_test

import (
	"fmt"
	"os"
	"testing"

	"webcache/internal/obs"
)

var (
	benchManifestPath = os.Getenv("WEBCACHE_BENCH_MANIFEST")
	benchReg          *obs.Registry
	benchManifest     *obs.Manifest
)

func init() {
	if benchManifestPath != "" {
		benchReg = obs.NewRegistry("bench")
		benchManifest = obs.NewManifest("go-test-bench")
	}
}

// reportMetric forwards to b.ReportMetric and mirrors the value into
// the bench registry as "bench.<benchmark>.<unit>" (a no-op without
// WEBCACHE_BENCH_MANIFEST, since the nil registry discards writes).
func reportMetric(b *testing.B, value float64, unit string) {
	b.ReportMetric(value, unit)
	benchReg.Gauge("bench." + b.Name() + "." + unit).Set(value)
}

func TestMain(m *testing.M) {
	code := m.Run()
	if benchManifest != nil {
		benchManifest.SetConfig("scale", benchScale())
		benchManifest.Finish(benchReg)
		if err := benchManifest.WriteFile(benchManifestPath); err != nil {
			fmt.Fprintln(os.Stderr, "bench manifest:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}
