// Package webcache is a from-scratch reproduction of "Exploiting
// Client Caches: An Approach to Building Large Web Caches" (Zhu & Hu,
// ICPP 2003): a trace-driven simulator for cooperative proxy caching
// that federates client browser caches into a large peer-to-peer cache
// over a Pastry overlay.
//
// The package is a facade over the implementation packages:
//
//	internal/pastry     the Pastry structured overlay
//	internal/p2p        the P2P client cache (diversion, push, piggyback,
//	                    hot-object replication)
//	internal/directory  Exact and Bloom lookup directories
//	internal/cache      LRU / LFU / greedy-dual / GDSF / Belady /
//	                    cost-benefit placement
//	internal/prowgen    the ProWGen synthetic workload generator + presets
//	internal/trace      trace model, codecs, statistics, Squid ingestion
//	internal/netmodel   the Ts/Tc/Tl/Tp2p latency model
//	internal/sim        the seven caching schemes + Squirrel baseline
//	internal/core       experiment sweeps for every paper figure
//	internal/stats      replication statistics (means, CIs)
//	internal/httpcache  the real HTTP deployment (see cmd/hiergdd)
//
// # Quick start
//
//	tr, _ := webcache.GenerateWorkload(webcache.WorkloadConfig{
//		NumRequests: 200_000, NumObjects: 5_000, Seed: 1,
//	})
//	nc, _ := webcache.Run(tr, webcache.Config{Scheme: webcache.NC, ProxyCacheFrac: 0.2})
//	hg, _ := webcache.Run(tr, webcache.Config{Scheme: webcache.HierGD, ProxyCacheFrac: 0.2})
//	fmt.Printf("Hier-GD latency gain: %.1f%%\n", 100*webcache.Gain(hg.AvgLatency, nc.AvgLatency))
//
// To regenerate a paper figure:
//
//	fig, _ := webcache.RunFigure("2a", webcache.FigureOptions{Scale: 0.2})
//	fmt.Print(webcache.FormatTable(fig))
package webcache

import (
	"io"
	"net/http"

	"webcache/internal/cache"
	"webcache/internal/core"
	"webcache/internal/invariant"
	"webcache/internal/loadgen"
	"webcache/internal/netmodel"
	"webcache/internal/obs"
	"webcache/internal/prowgen"
	"webcache/internal/sim"
	"webcache/internal/store"
	"webcache/internal/trace"
)

// Core simulation types.
type (
	// Scheme is a caching scheme (NC .. HierGD).
	Scheme = sim.Scheme
	// Config parameterizes one simulation run.
	Config = sim.Config
	// Result is the outcome of one run.
	Result = sim.Result
	// DirectoryKind selects Hier-GD's lookup directory.
	DirectoryKind = sim.DirectoryKind
)

// Workload types.
type (
	// Trace is a replayable request trace.
	Trace = trace.Trace
	// Request is one trace record.
	Request = trace.Request
	// ObjectID identifies a Web object.
	ObjectID = trace.ObjectID
	// ClientID identifies a client machine.
	ClientID = trace.ClientID
	// TraceStats summarizes a trace.
	TraceStats = trace.Stats
	// WorkloadConfig parameterizes the ProWGen generator.
	WorkloadConfig = prowgen.Config
	// UCBConfig parameterizes the UCB-like trace reconstruction.
	UCBConfig = prowgen.UCBConfig
	// SquidOptions controls Squid access-log ingestion.
	SquidOptions = trace.SquidOptions
	// SquidResult reports what a Squid ingestion produced.
	SquidResult = trace.SquidResult
)

// Network and experiment types.
type (
	// NetworkModel holds resolved Ts/Tc/Tl/Tp2p latencies.
	NetworkModel = netmodel.Model
	// NetworkParams selects a model through the paper's ratios.
	NetworkParams = netmodel.Params
	// Source is a serving tier (local proxy, P2P, remote, server).
	Source = netmodel.Source
	// Figure is a regenerated paper figure.
	Figure = core.Figure
	// FigureSeries is one curve of a figure.
	FigureSeries = core.Series
	// FigurePoint is one sample of a curve.
	FigurePoint = core.Point
	// FigureOptions scales and seeds a figure run.
	FigureOptions = core.Options
)

// The seven caching schemes (paper §2–3) plus the Squirrel
// related-work baseline (§6).
const (
	NC       = sim.NC
	SC       = sim.SC
	FC       = sim.FC
	NCEC     = sim.NCEC
	SCEC     = sim.SCEC
	FCEC     = sim.FCEC
	HierGD   = sim.HierGD
	Squirrel = sim.Squirrel
)

// Lookup directory kinds (paper §4.2).
const (
	DirExact = sim.DirExact
	DirBloom = sim.DirBloom
)

// Serving tiers.
const (
	SrcLocalProxy  = netmodel.SrcLocalProxy
	SrcP2P         = netmodel.SrcP2P
	SrcRemoteProxy = netmodel.SrcRemoteProxy
	SrcServer      = netmodel.SrcServer
)

// Run replays a trace under a scheme configuration.
func Run(tr *Trace, cfg Config) (*Result, error) { return sim.Run(tr, cfg) }

// AllSchemes lists every scheme in presentation order.
func AllSchemes() []Scheme { return sim.AllSchemes() }

// ParseScheme resolves a scheme name ("hier-gd", "SCEC", ...).
func ParseScheme(name string) (Scheme, error) { return sim.ParseScheme(name) }

// GenerateWorkload produces a ProWGen synthetic trace (paper §5.1).
func GenerateWorkload(cfg WorkloadConfig) (*Trace, error) { return prowgen.Generate(cfg) }

// DefaultWorkload returns the paper's default workload configuration
// (one million requests, 10,000 objects, 50% one-timers, alpha 0.7).
func DefaultWorkload() WorkloadConfig { return prowgen.Default() }

// GenerateUCBWorkload reconstructs the UCB Home-IP trace workload.
func GenerateUCBWorkload(cfg UCBConfig) (*Trace, error) { return prowgen.GenerateUCB(cfg) }

// WorkloadPreset describes a published proxy-trace family.
type WorkloadPreset = prowgen.Preset

// WorkloadPresets lists the built-in trace families (paper default,
// UCB Home-IP, DEC, campus, backbone).
func WorkloadPresets() []WorkloadPreset { return prowgen.Presets() }

// GeneratePresetWorkload generates a trace from a named family at the
// given request count.
func GeneratePresetWorkload(name string, numRequests int, seed int64) (*Trace, error) {
	_, cfg, err := prowgen.GeneratePreset(name, numRequests, seed)
	if err != nil {
		return nil, err
	}
	return prowgen.Generate(cfg)
}

// AnalyzeTrace computes first-order trace statistics.
func AnalyzeTrace(tr *Trace) TraceStats { return trace.Analyze(tr) }

// LocalityProfile is a trace's LRU reuse-distance distribution.
type LocalityProfile = trace.LocalityProfile

// AnalyzeLocality computes the reuse-distance profile (Mattson stack
// analysis), which predicts LRU hit ratios at every cache size.
func AnalyzeLocality(tr *Trace) *LocalityProfile { return trace.AnalyzeLocality(tr) }

// PopularityCurve returns per-rank reference counts (rank 0 = most
// popular), truncated to maxRanks (0 = all).
func PopularityCurve(tr *Trace, maxRanks int) []int { return trace.PopularityCurve(tr, maxRanks) }

// ReadTraceText / WriteTraceText exchange traces in the line format.
func ReadTraceText(r io.Reader) (*Trace, error)   { return trace.ReadText(r) }
func WriteTraceText(w io.Writer, tr *Trace) error { return trace.WriteText(w, tr) }

// ReadSquidLog ingests a Squid native-format access.log into a trace,
// interning clients and URLs to dense ids.
func ReadSquidLog(r io.Reader, opts SquidOptions) (*SquidResult, error) {
	return trace.ReadSquid(r, opts)
}

// ReadTraceBinary / WriteTraceBinary exchange traces in the compact
// binary format.
func ReadTraceBinary(r io.Reader) (*Trace, error)   { return trace.ReadBinary(r) }
func WriteTraceBinary(w io.Writer, tr *Trace) error { return trace.WriteBinary(w, tr) }

// NewNetworkModel resolves latency ratios into a model; DefaultNetwork
// is the paper's default (Ts/Tc=10, Ts/Tl=20, Tp2p/Tl=1.4).
func NewNetworkModel(p NetworkParams) (NetworkModel, error) { return netmodel.New(p) }

// DefaultNetwork returns the paper's default latency model.
func DefaultNetwork() NetworkModel { return netmodel.Default() }

// Gain computes the paper's latency-gain metric 1 - Lx/Lnc.
func Gain(lx, lnc float64) float64 { return netmodel.Gain(lx, lnc) }

// RunFigure regenerates a paper figure ("2a".."5d").
func RunFigure(id string, opts FigureOptions) (*Figure, error) { return core.RunFigure(id, opts) }

// RunFigureReplicated regenerates a figure across several seeds and
// reports mean gains with 95% confidence intervals.
func RunFigureReplicated(id string, opts FigureOptions, replicates int) (*Figure, error) {
	return core.RunFigureReplicated(id, opts, replicates)
}

// WriteFigureJSON / ReadFigureJSON exchange figures as JSON.
func WriteFigureJSON(w io.Writer, f *Figure) error { return core.WriteJSON(w, f) }
func ReadFigureJSON(r io.Reader) (*Figure, error)  { return core.ReadJSON(r) }

// WriteFigureDAT writes gnuplot-ready columns; ExportGnuplot writes a
// .dat plus a .gp script that renders the figure.
func WriteFigureDAT(w io.Writer, f *Figure) error { return core.WriteDAT(w, f) }
func ExportGnuplot(dir string, f *Figure) error   { return core.ExportGnuplot(dir, f) }

// FigureIDs lists the reproducible figures.
func FigureIDs() []string { return core.FigureIDs() }

// FormatTable renders a figure as an aligned text table; FormatMarkdown
// as a markdown table.
func FormatTable(f *Figure) string    { return core.FormatTable(f) }
func FormatMarkdown(f *Figure) string { return core.FormatMarkdown(f) }

// SweepSchemes runs a custom latency-gain sweep of the given schemes
// over the given cache fractions against any trace; the NC baseline is
// computed automatically.
func SweepSchemes(tr *Trace, base Config, schemes []Scheme, fracs []float64, workers int) (*Figure, error) {
	return core.SweepSchemes(tr, base, schemes, fracs, workers)
}

// BasePolicy selects the replacement policy of the LFU-family schemes
// (the paper fixes LFU; the alternatives ablate that choice).
type BasePolicy = sim.BasePolicy

// Baseline replacement policies for NC/SC/NC-EC/SC-EC.
const (
	BasePerfectLFU = sim.BasePerfectLFU
	BaseLFUInCache = sim.BaseLFUInCache
	BaseLRU        = sim.BaseLRU
	BaseGreedyDual = sim.BaseGreedyDual
)

// Observability types (see METRICS.md for the metric glossary and the
// run-manifest schema).
type (
	// MetricsRegistry is a run-scoped set of named counters, gauges,
	// and timers; attach one via Config.Obs or FigureOptions.Obs.  A
	// nil registry disables instrumentation at zero cost.
	MetricsRegistry = obs.Registry
	// Metric is one named observation in a registry snapshot.
	Metric = obs.Metric
	// RunManifest is one run's machine-readable record (config echo,
	// workload fingerprint, wall/CPU time, metrics).
	RunManifest = obs.Manifest
	// SweepProgress tracks job completion with an ETA estimate.
	SweepProgress = obs.Progress
)

// ManifestSchema is the run-manifest JSON schema version.
const ManifestSchema = obs.ManifestSchema

// NewMetricsRegistry creates an enabled metric registry scoped to the
// named run.
func NewMetricsRegistry(name string) *MetricsRegistry { return obs.NewRegistry(name) }

// Span-tracing types (METRICS.md "Span tracing"): per-request traces
// with one child span per hop of the decision path, tagged with the
// netmodel component the hop is charged under.
type (
	// SpanTracer samples and collects request traces; attach one via
	// Config.Tracer.  A nil tracer disables tracing at zero cost.
	SpanTracer = obs.Tracer
	// SpanTracerOptions configures NewSpanTracer (origin, head-sampling
	// rate, retention limit, virtual vs wall clock).
	SpanTracerOptions = obs.TracerOptions
	// RequestTrace is one sampled request's span trace.
	RequestTrace = obs.SpanTrace
	// LatencyDecomposition is span traces folded into a per-tier
	// latency-decomposition table.
	LatencyDecomposition = obs.Decomposition
	// DecompositionReport cross-checks a decomposition against the
	// analytic netmodel latency per tier.
	DecompositionReport = sim.DecompReport
	// ManifestDiff compares two run manifests metric by metric.
	ManifestDiff = obs.ManifestDiff
)

// NewSpanTracer creates an enabled request tracer.
func NewSpanTracer(opts SpanTracerOptions) *SpanTracer { return obs.NewTracer(opts) }

// ValidateChromeTrace checks that data is well-formed Chrome
// trace-event JSON (the tracer's Perfetto-loadable export format).
func ValidateChromeTrace(data []byte) error { return obs.ValidateChromeTrace(data) }

// CheckDecomposition compares each tier's span-derived mean served
// latency against the analytic model's prediction for that tier.
func CheckDecomposition(m NetworkModel, d *LatencyDecomposition, tol float64) *DecompositionReport {
	return sim.CheckDecomposition(m, d, tol)
}

// WritePrometheus renders a registry in Prometheus/OpenMetrics text
// exposition format; PrometheusHandler serves it over HTTP (the
// hiergdd daemons' /metrics endpoint).
func WritePrometheus(w io.Writer, reg *MetricsRegistry) error { return obs.WritePrometheus(w, reg) }
func PrometheusHandler(reg *MetricsRegistry) http.Handler     { return obs.PrometheusHandler(reg) }

// DiffManifests compares two run manifests (same schema, and same
// workload fingerprint unless force) metric by metric — the engine
// behind `make bench-diff` and cmd/benchdiff.
func DiffManifests(a, b *RunManifest, force bool) (*ManifestDiff, error) {
	return obs.DiffManifests(a, b, force)
}

// Invariant-checking types (see DESIGN.md for the oracle catalog).
type (
	// Checker collects cross-layer invariant checks and violations;
	// attach one via Config.Check or FigureOptions.Check.  A nil
	// Checker disables checking at zero cost.
	Checker = invariant.Checker
	// InvariantViolation is one observed invariant breach.
	InvariantViolation = invariant.Violation
)

// NewChecker creates an enabled invariant checker.  reg may be nil;
// when set, check.* counters are published into it.
func NewChecker(reg *MetricsRegistry) *Checker { return invariant.New(reg) }

// NewRunManifest starts a manifest for the named tool, stamping the
// start time, command line, build version, and host environment.
func NewRunManifest(tool string) *RunManifest { return obs.NewManifest(tool) }

// ReadRunManifest parses and validates a manifest document.
func ReadRunManifest(r io.Reader) (*RunManifest, error) { return obs.ReadManifest(r) }

// TraceFingerprint hashes a trace's full content into a short stable
// string for manifest comparison.
func TraceFingerprint(tr *Trace) string { return trace.Fingerprint(tr) }

// MergeTraces interleaves traces by timestamp with ids remapped into
// disjoint ranges (two organizations' logs into one cluster workload).
func MergeTraces(traces ...*Trace) (*Trace, error) { return trace.Merge(traces...) }

// ConcatTraces appends traces end to end in time over one shared id
// universe (phased workloads).
func ConcatTraces(traces ...*Trace) (*Trace, error) { return trace.Concat(traces...) }

// TimeSliceTrace cuts the sub-trace with Time in [from, to), rebased.
func TimeSliceTrace(tr *Trace, from, to uint32) (*Trace, error) {
	return trace.TimeSlice(tr, from, to)
}

// CompactTrace renumbers clients and objects densely after filtering.
func CompactTrace(tr *Trace) *Trace { return trace.Compact(tr) }

// Live load-generation types (internal/loadgen, `hiergdd bench`): the
// subsystem that replays a trace over real HTTP against the deployed
// topology and calibrates the measurements against the simulator.
type (
	// LoadResult is one live driving run's measurements: issue counts,
	// per-tier attribution, and latency histograms.
	LoadResult = loadgen.Result
	// LatencyHistogram is the fixed-bucket log-scale histogram behind
	// the bench's quantile reports (≤ ~4.4% relative error).
	LatencyHistogram = loadgen.Histogram
	// LatencySummary is a histogram flattened to count/mean/quantiles.
	LatencySummary = loadgen.QuantileSummary
	// CalibrationReport is the live-vs-simulated hit-ratio comparison.
	CalibrationReport = loadgen.CalibrationReport
	// TierComparison is one serving tier's live-vs-sim pair.
	TierComparison = loadgen.TierComparison
)

// Calibrate replays the prefix of tr that the live run issued through
// the simulator under cfg (carrying the capacity overrides the live
// topology was sized from) and compares hit ratios per serving tier.
func Calibrate(tr *Trace, live *LoadResult, cfg Config, tolerance float64) (*CalibrationReport, error) {
	return loadgen.Calibrate(tr, live, cfg, tolerance)
}

// Concurrent-store types (internal/store): the live daemons' data
// plane — a sharded, lock-striped object store composing one
// replacement policy per shard, with singleflight miss coalescing
// (`hiergdd bench -store` measures it against the old single-mutex
// design).
type (
	// ObjectStore is the sharded concurrent store.
	ObjectStore = store.Store
	// StoreConfig sizes and parameterizes an ObjectStore.
	StoreConfig = store.Config
	// StoredObject is one cached body with its wire key and cost.
	StoredObject = store.Object
	// StoreLoader fetches an object on a coalesced miss.
	StoreLoader = store.Loader
	// StoreLoadView is one GetOrLoad outcome (hit, loaded, coalesced).
	StoreLoadView = store.LoadView
)

// ErrEmptyObject is returned by ObjectStore.Put for zero-length
// bodies, which are never cached.
var ErrEmptyObject = store.ErrEmptyObject

// NewObjectStore builds a sharded concurrent store.
func NewObjectStore(cfg StoreConfig) (*ObjectStore, error) { return store.New(cfg) }

// CachePolicies lists the replacement-policy names the internal/cache
// factory registry accepts (StoreConfig.Policy, hiergdd -policy).
func CachePolicies() []string { return cache.PolicyNames() }
