package httpcache

// Fleet wiring: the proxy side of internal/fleet.  A fleet-enabled
// proxy owns a consistent-hash partition of the object namespace; a
// request for a key it does not hold routes to the key's owner (or a
// replica) before falling back to origin, hot keys it owns are
// replicated k-way onto the least-loaded successor members, and a
// membership change migrates exactly the keys whose ownership moved
// (fleet.MigrationSet).  The inter-proxy hop carries the full PR 7
// defense kit: the (optionally adaptive) per-hop deadline, the
// per-member circuit breaker, and a hedged second fetch.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webcache/internal/fleet"
	"webcache/internal/invariant"
	"webcache/internal/obs"
	"webcache/internal/p2p"
	"webcache/internal/pastry"
	"webcache/internal/store"
	"webcache/internal/trace"
)

// FleetHopHeader marks a /fetch request as an inter-proxy fleet hop.
// A member receiving it serves locally or goes to origin — it never
// re-routes, so a stale ring cannot loop a request around the fleet.
const FleetHopHeader = "X-Fleet-Hop"

// FleetOptions configures a proxy's fleet membership.
type FleetOptions struct {
	// Self is this proxy's base URL as the other members address it;
	// it must appear in Members.
	Self string
	// Members is the static bootstrap membership (base URLs).  Join
	// and leave events adjust the live ring from here.
	Members []string
	// Replication is k: the owner plus k−1 successor members replicate
	// a hot object.  1 (or 0, the default) partitions without
	// replication.
	Replication int
	// HotThreshold is the per-key load estimate at which the owner
	// replicates the key (default 16 touches).
	HotThreshold int
	// VirtualNodes per member (default fleet.DefaultVirtualNodes).
	VirtualNodes int
}

func (o *FleetOptions) fillDefaults() {
	if o.Replication <= 0 {
		o.Replication = 1
	}
	if o.HotThreshold <= 0 {
		o.HotThreshold = 16
	}
}

// fleetState is the per-proxy fleet runtime.
type fleetState struct {
	opts  FleetOptions
	ring  *fleet.Ring
	loads *fleet.LoadTracker
	peers *fleet.MemberLoads

	// replicating dedupes concurrent replicate-outs per key;
	// replicated marks keys whose replicas have landed.
	replicating sync.Map
	replicated  sync.Map

	// hbFails counts consecutive heartbeat failures per member
	// (guarded by hbMu; only the heartbeat loop writes it).
	hbMu    sync.Mutex
	hbFails map[string]int

	// acct is the replica-aware conservation ledger over the
	// /fleet/store receipt stream (lenient: live receipts do not see
	// this proxy's own origin inserts).  Guarded by the proxy's acctMu.
	acct *invariant.ClusterAccountant

	routed, routedHits, routedOrigin, routeFailed, routeSkipped,
	hopServes, replicasOut, replicasIn, migratedOut, migratedIn,
	joins, leaves, heartbeatFails atomic.Int64
}

// FleetStats is the fleet slice of ProxyStats.
type FleetStats struct {
	Enabled bool `json:"enabled"`
	Members int  `json:"members"`
	// Routed counts misses forwarded to another fleet member;
	// RoutedHits the forwards served from that member's cache,
	// RoutedOrigin the forwards the owner filled from origin.
	Routed       int `json:"routed"`
	RoutedHits   int `json:"routed_hits"`
	RoutedOrigin int `json:"routed_origin"`
	RouteFailed  int `json:"route_failed"`
	// RouteSkipped counts members skipped by an open breaker.
	RouteSkipped int `json:"route_skipped"`
	// HopServes counts /fetch requests that arrived as fleet hops.
	HopServes   int `json:"hop_serves"`
	ReplicasOut int `json:"replicas_out"`
	ReplicasIn  int `json:"replicas_in"`
	MigratedOut int `json:"migrated_out"`
	MigratedIn  int `json:"migrated_in"`
	Joins       int `json:"joins"`
	Leaves      int `json:"leaves"`
	// HeartbeatFails counts members dropped from the ring after
	// consecutive heartbeat failures.
	HeartbeatFails int `json:"heartbeat_fails"`
	// HotKeys is the load tracker's current table size.
	HotKeys int `json:"hot_keys"`
}

// Add accumulates another member's snapshot — topology-wide report
// aggregation.  Enabled ORs; Members keeps the max (each member
// reports its own ring size, not a summable count).
func (s *FleetStats) Add(o FleetStats) {
	s.Enabled = s.Enabled || o.Enabled
	if o.Members > s.Members {
		s.Members = o.Members
	}
	s.Routed += o.Routed
	s.RoutedHits += o.RoutedHits
	s.RoutedOrigin += o.RoutedOrigin
	s.RouteFailed += o.RouteFailed
	s.RouteSkipped += o.RouteSkipped
	s.HopServes += o.HopServes
	s.ReplicasOut += o.ReplicasOut
	s.ReplicasIn += o.ReplicasIn
	s.MigratedOut += o.MigratedOut
	s.MigratedIn += o.MigratedIn
	s.Joins += o.Joins
	s.Leaves += o.Leaves
	s.HeartbeatFails += o.HeartbeatFails
	s.HotKeys += o.HotKeys
}

// EnableFleet turns this proxy into a fleet member.  Call before Serve
// starts (it is not safe to toggle under traffic); EnableAccounting
// may be called before or after.
func (p *Proxy) EnableFleet(opts FleetOptions) {
	opts.fillDefaults()
	f := &fleetState{
		opts:    opts,
		ring:    fleet.NewRingOf(opts.VirtualNodes, opts.Members),
		loads:   fleet.NewLoadTracker(0),
		peers:   fleet.NewMemberLoads(),
		hbFails: make(map[string]int),
	}
	f.ring.Add(opts.Self)
	p.fleet = f
	p.acctMu.Lock()
	if p.chk != nil {
		f.acct = invariant.NewClusterAccountant(p.chk, "fleet-live")
		f.acct.Lenient()
	}
	p.acctMu.Unlock()
}

// FleetRing exposes the live membership ring (tests, telemetry).
func (p *Proxy) FleetRing() *fleet.Ring {
	if p.fleet == nil {
		return nil
	}
	return p.fleet.ring
}

// fleetHandlers registers the membership endpoints.  They exist on
// every proxy and answer 503 until EnableFleet, so a member can probe
// a not-yet-fleet-enabled peer without a 404/handler ambiguity.
func (p *Proxy) fleetHandlers(mux *http.ServeMux) {
	mux.HandleFunc("POST /fleet/join", p.handleFleetJoin)
	mux.HandleFunc("POST /fleet/leave", p.handleFleetLeave)
	mux.HandleFunc("GET /fleet/heartbeat", p.handleFleetHeartbeat)
	mux.HandleFunc("GET /fleet/members", p.handleFleetMembers)
	mux.HandleFunc("POST /fleet/store", p.handleFleetStore)
}

func (p *Proxy) fleetOr503(w http.ResponseWriter) *fleetState {
	f := p.fleet
	if f == nil {
		http.Error(w, "fleet not enabled", http.StatusServiceUnavailable)
		return nil
	}
	return f
}

// fleetTouch records owner-side load for a key and kicks off k-way
// replication when it crosses the hot threshold.  Called on every
// /fetch for keys this member owns — hits included, since hotness is
// about read load, not misses.
func (p *Proxy) fleetTouch(id pastry.ID, folded trace.ObjectID) {
	f := p.fleet
	owner, ok := f.ring.OwnerOf(folded)
	if !ok || owner != f.opts.Self {
		return
	}
	n := f.loads.Touch(folded)
	if f.opts.Replication < 2 || n < uint32(f.opts.HotThreshold) || n%uint32(f.opts.HotThreshold) != 0 {
		return
	}
	if _, done := f.replicated.Load(folded); done {
		return
	}
	if _, busy := f.replicating.LoadOrStore(folded, struct{}{}); busy {
		return
	}
	go func() {
		defer f.replicating.Delete(folded)
		p.replicateOut(id, folded)
	}()
}

// replicateOut copies a hot object this member owns onto the k−1
// successor replicas, least-loaded first.  Failures are dropped — the
// key stays un-replicated and the next threshold crossing retries.
func (p *Proxy) replicateOut(id pastry.ID, folded trace.ObjectID) {
	f := p.fleet
	obj, ok := p.tier.Get(folded)
	if !ok {
		return // not resident yet (first touches raced the origin fill)
	}
	cands := f.ring.ReplicasOf(folded, f.opts.Replication)
	var targets []string
	for _, m := range cands {
		if m != f.opts.Self {
			targets = append(targets, m)
		}
	}
	placed := 0
	for _, m := range f.peers.Order(targets) {
		if !p.peerAllowed(m) {
			continue
		}
		if p.fleetStore(m, obj, "replica") {
			f.replicasOut.Add(1)
			placed++
		}
	}
	if placed == len(targets) && placed > 0 {
		f.replicated.Store(folded, struct{}{})
	}
}

// fleetStore pushes one object to another member's proxy tier (the
// proxy-to-proxy analogue of the client-cache /store path, same
// StoreReceipt contract).  reason is "replica" or "rebalance".
func (p *Proxy) fleetStore(member string, obj store.Object, reason string) bool {
	u := fmt.Sprintf("%s/fleet/store?key=%s&cost=%g&reason=%s", member, obj.HexKey, obj.Cost, reason)
	ctx, cancel := context.WithTimeout(context.Background(), p.defenses.PushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", u, bytesReader(obj.Body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.client.Do(req)
	if err != nil {
		p.peerFailed(member)
		return false
	}
	defer resp.Body.Close()
	p.peerOK(member)
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var rec StoreReceipt
	return json.NewDecoder(resp.Body).Decode(&rec) == nil && rec.Stored
}

// handleFleetStore accepts a replica or rebalanced object into this
// member's tier and answers with the StoreReceipt the sender's
// conservation ledger needs.
func (p *Proxy) handleFleetStore(w http.ResponseWriter, r *http.Request) {
	f := p.fleetOr503(w)
	if f == nil {
		return
	}
	id, hex, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cost, _ := strconv.ParseFloat(r.URL.Query().Get("cost"), 64)
	if cost <= 0 {
		cost = 1
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	folded := fold(id)
	evicted, stored, err := p.tier.Put(folded, store.Object{HexKey: hex, Body: body, Cost: cost})
	if err != nil && err != store.ErrEmptyObject {
		http.Error(w, err.Error(), http.StatusInsufficientStorage)
		return
	}
	rec := StoreReceipt{Stored: stored}
	for _, ev := range evicted {
		rec.Evicted = append(rec.Evicted, ev.HexKey)
	}
	reason := r.URL.Query().Get("reason")
	if reason == "replica" {
		f.replicasIn.Add(1)
	} else {
		f.migratedIn.Add(1)
	}
	p.recordFleetReceipt(folded, &rec, reason)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rec)
}

// recordFleetReceipt feeds one /fleet/store receipt into the
// replica-aware conservation ledger: replicas add copies, rebalanced
// objects add (or refresh) primaries, and both displace what the
// receipt says they displaced.
func (p *Proxy) recordFleetReceipt(folded trace.ObjectID, rec *StoreReceipt, reason string) {
	f := p.fleet
	if f == nil || f.acct == nil {
		return
	}
	var evicted []trace.ObjectID
	for _, ev := range rec.Evicted {
		evicted = append(evicted, fold(keyFromHex(ev)))
	}
	p.acctMu.Lock()
	defer p.acctMu.Unlock()
	if reason == "replica" {
		if rec.Stored {
			f.acct.RecordReplica(folded, evicted)
		}
		return
	}
	r := p2p.Receipt{Stored: folded, StoredOK: rec.Stored, Evicted: evicted}
	f.acct.RecordStore(r)
}

// fleetRoute forwards a local miss to the key's owner or a replica.
// It returns the body and the serving tier to report: the member's
// cache hit counts as TierRemoteProxy; an origin fill at the owner is
// reported as TierOrigin so the aggregate hit ratio stays honest.
func (p *Proxy) fleetRoute(r *http.Request, objURL string, folded trace.ObjectID, st *obs.SpanTrace) ([]byte, string, bool) {
	f := p.fleet
	if f == nil {
		return nil, "", false
	}
	if r.Header.Get(FleetHopHeader) != "" {
		// Terminal member of a hop (already counted at arrival): serve
		// locally or origin-fill; never re-route (a stale ring must not
		// loop requests).
		return nil, "", false
	}
	cands := f.ring.ReplicasOf(folded, f.opts.Replication)
	var remote []string
	for _, m := range cands {
		if m == f.opts.Self {
			// We are a designated holder that just missed: origin-fill
			// locally (and let fleetTouch replicate when hot).
			return nil, "", false
		}
		remote = append(remote, m)
	}
	if len(remote) == 0 {
		return nil, "", false
	}
	var allowed []string
	for _, m := range f.peers.Order(remote) {
		if p.peerAllowed(m) {
			allowed = append(allowed, m)
		} else {
			p.stats.breakerSkipped.Add(1)
			f.routeSkipped.Add(1)
		}
	}
	if len(allowed) == 0 {
		f.routeFailed.Add(1)
		return nil, "", false
	}
	span := st.StartSpan("fleet.route", "Tc")
	body, tier, ok := p.hedgedFleetFetch(r.Context(), allowed, objURL, st.TraceID())
	if !ok {
		span.EndWasted()
		f.routeFailed.Add(1)
		return nil, "", false
	}
	span.End()
	f.routed.Add(1)
	if tier == TierOrigin {
		f.routedOrigin.Add(1)
	} else {
		f.routedHits.Add(1)
		tier = TierRemoteProxy
	}
	return body, tier, true
}

// fleetFetch is one leg of the inter-proxy hop: a /fetch against one
// member with the hop header, bounded by the (adaptive) per-hop
// deadline.  Transport failures and bad statuses feed the member's
// breaker; the returned tier is what the member reported serving from.
func (p *Proxy) fleetFetch(ctx context.Context, member, objURL, traceID string) ([]byte, string, error) {
	ctx, cancel := context.WithTimeout(ctx, p.peerTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET",
		fmt.Sprintf("%s/fetch?url=%s", member, url.QueryEscape(objURL)), nil)
	if err != nil {
		return nil, "", err
	}
	req.Header.Set(FleetHopHeader, "1")
	if traceID != "" {
		req.Header.Set(TraceHeader, traceID)
	}
	release := p.fleet.peers.Acquire(member)
	defer release()
	resp, err := p.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			p.stats.peerTimeouts.Add(1)
		}
		p.peerFailed(member)
		return nil, "", err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || resp.StatusCode != http.StatusOK {
		p.peerFailed(member)
		return nil, "", fmt.Errorf("fleet member status %d", resp.StatusCode)
	}
	p.peerOK(member)
	return body, resp.Header.Get(ServedByHeader), nil
}

// hedgedFleetFetch runs the hop against the first candidate, racing
// the second after the hedge delay when hedging is on — the same
// tail-at-scale pattern hedgedLanFetch applies to client caches.
func (p *Proxy) hedgedFleetFetch(ctx context.Context, cands []string, objURL, traceID string) ([]byte, string, bool) {
	if !p.defenses.Hedge || len(cands) < 2 {
		for _, m := range cands {
			if body, tier, err := p.fleetFetch(ctx, m, objURL, traceID); err == nil {
				return body, tier, true
			}
		}
		return nil, "", false
	}
	type leg struct {
		body []byte
		tier string
		err  error
	}
	results := make(chan leg, 2)
	launch := func(m string) {
		go func() {
			body, tier, err := p.fleetFetch(ctx, m, objURL, traceID)
			results <- leg{body, tier, err}
		}()
	}
	launch(cands[0])
	timer := time.NewTimer(p.hedgeDelay())
	defer timer.Stop()
	hedged := false
	pending := 1
	for {
		select {
		case r := <-results:
			pending--
			if r.err == nil {
				if hedged {
					p.stats.hedgedWins.Add(1)
				}
				return r.body, r.tier, true
			}
			if pending == 0 {
				return nil, "", false
			}
			if !hedged {
				// Primary failed before the hedge fired: promote the
				// second candidate immediately.
				hedged = true
				pending++
				launch(cands[1])
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				pending++
				p.stats.hedged.Add(1)
				launch(cands[1])
			}
		}
	}
}

// handleFleetJoin admits a member and rebalances: exactly the resident
// keys whose ownership moved off this member migrate to their new
// owners (fleet.MigrationSet); the local copies stay until eviction,
// so there is no loss window between the ack and the migration.
func (p *Proxy) handleFleetJoin(w http.ResponseWriter, r *http.Request) {
	f := p.fleetOr503(w)
	if f == nil {
		return
	}
	addr := r.URL.Query().Get("addr")
	if addr == "" {
		http.Error(w, "missing addr", http.StatusBadRequest)
		return
	}
	before := f.ring.Clone()
	if !f.ring.Add(addr) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]int{"migrated": 0})
		return
	}
	f.joins.Add(1)
	migrated := p.rebalance(before, f.ring)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{"migrated": migrated})
}

// handleFleetLeave retires a member from this member's ring.  Keys the
// departed member owned re-home to its successors automatically; its
// *own* drain is LeaveFleet on the departing proxy.
func (p *Proxy) handleFleetLeave(w http.ResponseWriter, r *http.Request) {
	f := p.fleetOr503(w)
	if f == nil {
		return
	}
	addr := r.URL.Query().Get("addr")
	if addr == "" {
		http.Error(w, "missing addr", http.StatusBadRequest)
		return
	}
	if f.ring.Remove(addr) {
		f.leaves.Add(1)
	}
	w.WriteHeader(http.StatusNoContent)
}

// rebalance streams every resident key whose owner changed between the
// two rings to its new owner, synchronously (callers that need
// background migration wrap it in a goroutine; the join handler runs
// it inline so a test — or an operator's curl — observes completion).
func (p *Proxy) rebalance(before, after *fleet.Ring) int {
	f := p.fleet
	items := p.store.Items()
	keys := make([]trace.ObjectID, len(items))
	byKey := make(map[trace.ObjectID]store.Object, len(items))
	for i, it := range items {
		keys[i] = it.Key
		byKey[it.Key] = it.Object
	}
	moved := 0
	for _, key := range fleet.MigrationSet(before, after, f.opts.Self, keys) {
		owner, ok := after.OwnerOf(key)
		if !ok {
			continue
		}
		if p.fleetStore(owner, byKey[key], "rebalance") {
			f.migratedOut.Add(1)
			moved++
		}
	}
	return moved
}

// JoinFleet announces this member to every other configured member
// (each runs its own incremental rebalance toward us) — the daemon
// calls it at startup when -fleet-join is set.
func (p *Proxy) JoinFleet() int {
	f := p.fleet
	if f == nil {
		return 0
	}
	notified := 0
	for _, m := range f.ring.Members() {
		if m == f.opts.Self {
			continue
		}
		resp, err := p.client.Post(fmt.Sprintf("%s/fleet/join?addr=%s", m, url.QueryEscape(f.opts.Self)), "text/plain", nil)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			notified++
		}
	}
	p.events.Emit("fleet.join", map[string]string{
		"self": f.opts.Self, "notified": strconv.Itoa(notified)})
	return notified
}

// LeaveFleet drains this member: every key it owns migrates to the
// owner under the ring minus self, then the departure is announced.
// Returns the migrated-key count.  Zero acknowledged-object loss: the
// local copies are kept (reads keep working) and the handler keeps
// answering until the process exits.
func (p *Proxy) LeaveFleet() int {
	f := p.fleet
	if f == nil {
		return 0
	}
	before := f.ring.Clone()
	after := f.ring.Clone()
	after.Remove(f.opts.Self)
	moved := p.rebalance(before, after)
	for _, m := range after.Members() {
		resp, err := p.client.Post(fmt.Sprintf("%s/fleet/leave?addr=%s", m, url.QueryEscape(f.opts.Self)), "text/plain", nil)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	f.ring.Remove(f.opts.Self)
	f.leaves.Add(1)
	p.events.Emit("fleet.leave", map[string]string{
		"self": f.opts.Self, "migrated": strconv.Itoa(moved)})
	return moved
}

// fleetHeartbeat is the GET /fleet/heartbeat payload.
type fleetHeartbeat struct {
	Self    string `json:"self"`
	Load    uint64 `json:"load"`
	Objects int    `json:"objects"`
	Members int    `json:"members"`
}

func (p *Proxy) handleFleetHeartbeat(w http.ResponseWriter, _ *http.Request) {
	f := p.fleetOr503(w)
	if f == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(fleetHeartbeat{
		Self:    f.opts.Self,
		Load:    f.loads.Total(),
		Objects: p.store.Len(),
		Members: f.ring.Size(),
	})
}

func (p *Proxy) handleFleetMembers(w http.ResponseWriter, _ *http.Request) {
	f := p.fleetOr503(w)
	if f == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(f.ring.Members())
}

// heartbeatDropAfter is the consecutive-failure count at which the
// heartbeat loop drops a member from the local ring (it keeps probing
// the static membership, so a recovered member is re-admitted).
const heartbeatDropAfter = 3

// HeartbeatOnce probes every configured member, refreshing the load
// view and adjusting the ring: heartbeatDropAfter consecutive failures
// evict a member; a later success re-admits it.  Exposed so tests (and
// the bench driver) can drive membership convergence deterministically.
func (p *Proxy) HeartbeatOnce() {
	f := p.fleet
	if f == nil {
		return
	}
	for _, m := range f.opts.Members {
		if m == f.opts.Self {
			continue
		}
		var hb fleetHeartbeat
		ok := func() bool {
			resp, err := p.probeClient.Get(m + "/fleet/heartbeat")
			if err != nil {
				return false
			}
			defer resp.Body.Close()
			return resp.StatusCode == http.StatusOK &&
				json.NewDecoder(resp.Body).Decode(&hb) == nil
		}()
		f.hbMu.Lock()
		if ok {
			f.hbFails[m] = 0
			f.peers.Report(m, hb.Load)
			if f.ring.Add(m) { // no-op when already present
				p.events.Emit("fleet.member.readmit", map[string]string{"peer": m})
			}
		} else {
			f.hbFails[m]++
			if f.hbFails[m] == heartbeatDropAfter && f.ring.Remove(m) {
				f.heartbeatFails.Add(1)
				p.events.Emit("fleet.member.drop", map[string]string{"peer": m})
			}
		}
		f.hbMu.Unlock()
	}
}

// StartFleetHeartbeat runs HeartbeatOnce every interval until the
// returned stop func is called.
func (p *Proxy) StartFleetHeartbeat(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				p.HeartbeatOnce()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// snapshotFleet fills the fleet slice of ProxyStats.
func (p *Proxy) snapshotFleet() FleetStats {
	f := p.fleet
	if f == nil {
		return FleetStats{}
	}
	return FleetStats{
		Enabled:        true,
		Members:        f.ring.Size(),
		Routed:         int(f.routed.Load()),
		RoutedHits:     int(f.routedHits.Load()),
		RoutedOrigin:   int(f.routedOrigin.Load()),
		RouteFailed:    int(f.routeFailed.Load()),
		RouteSkipped:   int(f.routeSkipped.Load()),
		HopServes:      int(f.hopServes.Load()),
		ReplicasOut:    int(f.replicasOut.Load()),
		ReplicasIn:     int(f.replicasIn.Load()),
		MigratedOut:    int(f.migratedOut.Load()),
		MigratedIn:     int(f.migratedIn.Load()),
		Joins:          int(f.joins.Load()),
		Leaves:         int(f.leaves.Load()),
		HeartbeatFails: int(f.heartbeatFails.Load()),
		HotKeys:        f.loads.Len(),
	}
}
