package httpcache

import (
	"fmt"
	"net/http/httptest"
	"net/url"
	"os"
	"testing"
	"time"

	"webcache/internal/invariant"
	"webcache/internal/obs"
)

// fleetRig deploys n fleet-enabled proxies (no client caches) over
// httptest servers with a shared origin.
type fleetRig struct {
	origin  *testOrigin
	proxies []*Proxy
	servers []*httptest.Server
	urls    []string
}

func newFleetRig(t *testing.T, n, replication, hotThreshold int, chk *invariant.Checker) *fleetRig {
	t.Helper()
	rig := &fleetRig{origin: newTestOrigin()}
	t.Cleanup(rig.origin.srv.Close)
	for i := 0; i < n; i++ {
		px := NewProxy(1 << 20)
		srv := httptest.NewServer(px.Handler())
		t.Cleanup(srv.Close)
		rig.proxies = append(rig.proxies, px)
		rig.servers = append(rig.servers, srv)
		rig.urls = append(rig.urls, srv.URL)
	}
	for i, px := range rig.proxies {
		px.SetSelf(rig.urls[i])
		px.SetDefenses(Defenses{})
		if chk != nil {
			px.EnableAccounting(chk)
		}
		px.EnableFleet(FleetOptions{
			Self:         rig.urls[i],
			Members:      rig.urls,
			Replication:  replication,
			HotThreshold: hotThreshold,
		})
	}
	return rig
}

// fetchVia GETs objURL through the given front proxy.
func (rig *fleetRig) fetchVia(t *testing.T, front int, objURL string) (int, string) {
	t.Helper()
	return get(t, fmt.Sprintf("%s/fetch?url=%s", rig.urls[front], url.QueryEscape(objURL)))
}

// ownerIndex resolves which rig member owns objURL per member 0's ring.
func (rig *fleetRig) ownerIndex(t *testing.T, objURL string) int {
	t.Helper()
	owner, ok := rig.proxies[0].FleetRing().OwnerOf(fold(keyOf(objURL)))
	if !ok {
		t.Fatal("no fleet owner")
	}
	for i, u := range rig.urls {
		if u == owner {
			return i
		}
	}
	t.Fatalf("owner %q is not a rig member", owner)
	return -1
}

// otherIndex returns a member index not in the exclude set.
func otherIndex(n int, exclude ...int) int {
	for i := 0; i < n; i++ {
		out := true
		for _, e := range exclude {
			if i == e {
				out = false
			}
		}
		if out {
			return i
		}
	}
	return -1
}

// TestFleetRouting pins the inter-proxy hop: a miss at a non-owner
// routes to the key's owner instead of origin; the first fetch is an
// owner-side origin fill (reported TierOrigin, honest hit accounting),
// the second a remote cache hit — one origin fetch total, and the
// object resides only in the owner's partition.
func TestFleetRouting(t *testing.T) {
	rig := newFleetRig(t, 3, 1, 0, nil)
	objURL := rig.origin.srv.URL + "/fleet-routed"
	owner := rig.ownerIndex(t, objURL)
	front := otherIndex(3, owner)
	folded := fold(keyOf(objURL))

	status, tier := rig.fetchVia(t, front, objURL)
	if status != 200 || tier != TierOrigin {
		t.Fatalf("first fetch: status %d tier %q, want 200 %q", status, tier, TierOrigin)
	}
	status, tier = rig.fetchVia(t, front, objURL)
	if status != 200 || tier != TierRemoteProxy {
		t.Fatalf("second fetch: status %d tier %q, want 200 %q", status, tier, TierRemoteProxy)
	}
	if hits := rig.origin.hits.Load(); hits != 1 {
		t.Fatalf("origin hits = %d, want 1 (the owner's fill)", hits)
	}
	if !rig.proxies[owner].store.Contains(folded) {
		t.Fatal("owner does not hold the key")
	}
	if rig.proxies[front].store.Contains(folded) {
		t.Fatal("front cached a key it does not own — partitioning is leaking")
	}
	fs := rig.proxies[front].snapshotStats().Fleet
	if fs.Routed != 2 || fs.RoutedOrigin != 1 || fs.RoutedHits != 1 {
		t.Fatalf("front fleet stats = %+v, want routed 2 / origin 1 / hits 1", fs)
	}
	if hop := rig.proxies[owner].snapshotStats().Fleet.HopServes; hop != 2 {
		t.Fatalf("owner hop serves = %d, want 2", hop)
	}
}

// TestFleetReplicationAndAccounting pins k-way hot-object replication
// with the replica-aware conservation ledger attached: hammering a key
// at its owner crosses the hot threshold, the owner places a copy on
// the ring successor, reads from a third member fan out to one of the
// two holders, and every member's accountant reconciles clean (the
// live k >= 2 acceptance gate).
func TestFleetReplicationAndAccounting(t *testing.T) {
	chk := invariant.New(nil)
	rig := newFleetRig(t, 3, 2, 4, chk)
	objURL := rig.origin.srv.URL + "/fleet-hot"
	owner := rig.ownerIndex(t, objURL)
	folded := fold(keyOf(objURL))

	reps := rig.proxies[0].FleetRing().ReplicasOf(folded, 2)
	if len(reps) != 2 {
		t.Fatalf("replica set %v, want 2 members", reps)
	}
	var replica int
	for i, u := range rig.urls {
		if u == reps[1] {
			replica = i
		}
	}

	// Drive the key hot at its owner; replication is async, so poll.
	for i := 0; i < 12; i++ {
		if status, _ := rig.fetchVia(t, owner, objURL); status != 200 {
			t.Fatalf("fetch %d failed", i)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for !rig.proxies[replica].store.Contains(folded) {
		if time.Now().After(deadline) {
			t.Fatal("hot object never replicated to the ring successor")
		}
		time.Sleep(10 * time.Millisecond)
		rig.fetchVia(t, owner, objURL)
	}
	if out := rig.proxies[owner].snapshotStats().Fleet.ReplicasOut; out == 0 {
		t.Fatal("owner recorded no replicas out")
	}
	if in := rig.proxies[replica].snapshotStats().Fleet.ReplicasIn; in == 0 {
		t.Fatal("replica recorded no replicas in")
	}

	// A third member's read fans out to owner or replica — never origin.
	third := otherIndex(3, owner, replica)
	before := rig.origin.hits.Load()
	if status, tier := rig.fetchVia(t, third, objURL); status != 200 || tier != TierRemoteProxy {
		t.Fatalf("fan-out read: status %d tier %q, want 200 %q", status, tier, TierRemoteProxy)
	}
	if rig.origin.hits.Load() != before {
		t.Fatal("fan-out read hit origin despite two resident copies")
	}

	for _, px := range rig.proxies {
		px.ReconcileAccounting()
	}
	if v := chk.ViolationCount(); v != 0 {
		t.Fatalf("conservation violations with replication k=2: %d\n%v", v, chk.Violations())
	}
	if chk.Checks() == 0 {
		t.Fatal("accountant ran no checks")
	}
}

// TestFleetJoinLeaveRebalance is the live no-loss rebalance test: a
// joining member receives exactly the keys whose ownership moved to
// it, nothing already acknowledged is lost (refetching every key costs
// zero extra origin hits), and the member's drain on leave re-homes
// its partition the same way.
func TestFleetJoinLeaveRebalance(t *testing.T) {
	// Members 0 and 1 bootstrap the fleet; member 2 joins later.
	rig := &fleetRig{origin: newTestOrigin()}
	t.Cleanup(rig.origin.srv.Close)
	for i := 0; i < 3; i++ {
		px := NewProxy(1 << 20)
		srv := httptest.NewServer(px.Handler())
		t.Cleanup(srv.Close)
		rig.proxies = append(rig.proxies, px)
		rig.servers = append(rig.servers, srv)
		rig.urls = append(rig.urls, srv.URL)
	}
	for i, px := range rig.proxies {
		px.SetSelf(rig.urls[i])
		members := rig.urls[:2]
		if i == 2 {
			members = rig.urls // the joiner knows the full roster
		}
		px.EnableFleet(FleetOptions{Self: rig.urls[i], Members: members})
	}

	const objects = 60
	var objURLs []string
	for i := 0; i < objects; i++ {
		u := fmt.Sprintf("%s/join-obj-%d", rig.origin.srv.URL, i)
		objURLs = append(objURLs, u)
		if status, _ := rig.fetchVia(t, 0, u); status != 200 {
			t.Fatalf("warm fetch %d failed", i)
		}
	}
	warmHits := rig.origin.hits.Load()
	if warmHits != objects {
		t.Fatalf("warmup cost %d origin hits, want %d", warmHits, objects)
	}

	if notified := rig.proxies[2].JoinFleet(); notified != 2 {
		t.Fatalf("join notified %d members, want 2", notified)
	}

	// Exactly the keys whose ownership moved to the joiner migrated.
	joinedRing := rig.proxies[0].FleetRing()
	for _, u := range objURLs {
		folded := fold(keyOf(u))
		owner, _ := joinedRing.OwnerOf(folded)
		if owner == rig.urls[2] && !rig.proxies[2].store.Contains(folded) {
			t.Fatalf("key of %s moved to the joiner but was not migrated (lost)", u)
		}
	}
	for _, it := range rig.proxies[2].store.Items() {
		if owner, _ := joinedRing.OwnerOf(it.Key); owner != rig.urls[2] {
			t.Fatalf("joiner holds key %x it does not own — needless migration", it.Key)
		}
	}
	if migrated := rig.proxies[2].snapshotStats().Fleet.MigratedIn; migrated == 0 {
		t.Fatal("join migrated nothing; with 60 keys over 3 members some ownership must move")
	}

	// Zero acknowledged-object loss: refetching the whole working set
	// through any front costs no extra origin hits.
	for _, u := range objURLs {
		if status, _ := rig.fetchVia(t, 0, u); status != 200 {
			t.Fatalf("post-join fetch of %s failed", u)
		}
	}
	if hits := rig.origin.hits.Load(); hits != warmHits {
		t.Fatalf("post-join refetch cost %d extra origin hits, want 0", hits-warmHits)
	}

	// The joiner drains on leave: its partition re-homes, and the
	// working set survives another full refetch without origin.
	if moved := rig.proxies[2].LeaveFleet(); moved == 0 {
		t.Fatal("leave migrated nothing")
	}
	if rig.proxies[0].FleetRing().Has(rig.urls[2]) {
		t.Fatal("member 0 still lists the departed member")
	}
	for _, u := range objURLs {
		if status, _ := rig.fetchVia(t, 1, u); status != 200 {
			t.Fatalf("post-leave fetch of %s failed", u)
		}
	}
	if hits := rig.origin.hits.Load(); hits != warmHits {
		t.Fatalf("post-leave refetch cost %d extra origin hits, want 0", hits-warmHits)
	}
}

// TestFleetHeartbeatDropsDeadMember pins the membership layer's
// failure detector: a member that stops answering heartbeats is
// dropped from the ring after heartbeatDropAfter consecutive failures.
func TestFleetHeartbeatDropsDeadMember(t *testing.T) {
	rig := newFleetRig(t, 2, 1, 0, nil)
	dead := "http://127.0.0.1:1" // nothing listens there
	px := rig.proxies[0]
	px.fleet.opts.Members = append(px.fleet.opts.Members, dead)
	px.fleet.ring.Add(dead)

	for i := 0; i < heartbeatDropAfter; i++ {
		px.HeartbeatOnce()
	}
	if px.FleetRing().Has(dead) {
		t.Fatal("dead member still on the ring after failed heartbeats")
	}
	if px.snapshotStats().Fleet.HeartbeatFails != 1 {
		t.Fatal("heartbeat failure not counted")
	}
	// The live member stayed, and its load report landed.
	if !px.FleetRing().Has(rig.urls[1]) {
		t.Fatal("live member was dropped")
	}
}

// TestMetricsDocFleet holds the fleet.* namespace in METRICS.md
// against what a fleet-enabled proxy's /metrics registers, both ways.
func TestMetricsDocFleet(t *testing.T) {
	md, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("doc-smoke-fleet")
	rig := newFleetRig(t, 2, 2, 4, nil)
	rig.proxies[0].SetMetrics(reg)
	resp, err := rig.servers[0].Client().Get(rig.urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var names []string
	for _, m := range reg.Snapshot() {
		names = append(names, m.Name)
	}
	if err := obs.CheckMetricsDoc(md, names, "fleet"); err != nil {
		t.Fatal(err)
	}
}
