package httpcache

import (
	"context"
	"sync/atomic"
	"time"

	"webcache/internal/invariant"
	"webcache/internal/p2p"
	"webcache/internal/pastry"
	"webcache/internal/trace"
)

// Defenses bundles the proxy's request-path protections against the
// failure and attack modes the paper's federation has no answer to
// (it trusts client caches completely and assumes peers answer
// promptly — see DESIGN.md §11):
//
//   - per-call deadlines: every lanFetch / peerLookup carries the
//     requester's context bounded by PeerTimeout, so one slow peer
//     cannot stall the whole fetch chain;
//   - hedged LAN fetches: after a p99-derived delay, a second request
//     races a ring neighbour against a slow owner (tail-latency
//     hedging a la "The Tail at Scale");
//   - receipt-verification sampling: every VerifyEvery-th client-cache
//     serve is digest-checked against the body the proxy passed down,
//     catching byzantine daemons that serve corrupted objects;
//   - contribution accounting: per-client serve/timeout/digest-failure
//     counters feed the liveness sweeper, which evicts clients whose
//     strikes outweigh their contribution;
//   - a per-peer circuit breaker: BreakerFailures consecutive
//     transport failures open the breaker and the proxy degrades to
//     origin until BreakerCooldown permits a half-open probe.
//
// The zero value means "deadlines only, everything else off"; defaults
// are filled by SetDefenses (and by NewProxyOpts for proxies that
// never call it).
type Defenses struct {
	// PeerTimeout is the per-call deadline on lanFetch, peerLookup and
	// the fleet hop (default 2s).  It layers under the shared client
	// timeout: the context is derived from the inbound request, so a
	// disconnected requester also cancels the downstream call.
	PeerTimeout time.Duration
	// AdaptivePeerTimeout auto-tunes the per-call deadline from the
	// observed LAN p99 the same way the hedge delay is derived: once
	// enough successful LAN fetches have been measured, the effective
	// deadline becomes 4x their p99, clamped to [minPeerTimeout,
	// PeerTimeout].  The configured PeerTimeout stays the ceiling (and
	// the fallback until the histogram warms up), so a cold or
	// recovering proxy never times peers out on a guess.
	AdaptivePeerTimeout bool
	// Hedge enables the hedged second LAN fetch to a ring neighbour.
	Hedge bool
	// HedgeDelay is how long the primary LAN fetch runs before the
	// hedge fires; 0 derives it from the observed p99 of successful
	// LAN fetches (clamped to [minHedgeDelay, PeerTimeout/2]).
	HedgeDelay time.Duration
	// VerifyEvery digest-checks every Nth client-cache serve against
	// the body digest recorded at pass-down (0 = off).  A mismatch is
	// treated as a miss and strikes the serving client.
	VerifyEvery int
	// BreakerFailures is the consecutive transport-failure count that
	// opens a cooperating proxy's circuit breaker (0 = off);
	// BreakerCooldown is how long an open breaker rejects before
	// allowing a half-open probe (default 5s).
	BreakerFailures int
	BreakerCooldown time.Duration
	// SweepStrikes is the strike budget (timeouts + 4x digest
	// failures) past which the sweeper deregisters a client cache
	// regardless of liveness (default 8).
	SweepStrikes int64
	// PushTimeout bounds the peer-lookup wait for a client-cache push
	// (default 3s, the old hardcoded value).
	PushTimeout time.Duration
}

// Hedge-delay clamp: never hedge sooner than this (a hedge below the
// LAN RTT floor just doubles traffic), never later than half the
// per-call deadline (or it cannot win before the primary times out).
const minHedgeDelay = 2 * time.Millisecond

// Adaptive-deadline clamp: never tighten the per-call deadline below
// this floor, and never trust the histogram before it has this many
// successful fetches (a handful of lucky early samples would otherwise
// set an absurdly tight deadline).
const (
	minPeerTimeout         = 10 * time.Millisecond
	adaptiveTimeoutSamples = 32
)

func (d *Defenses) fillDefaults() {
	if d.PeerTimeout <= 0 {
		d.PeerTimeout = 2 * time.Second
	}
	if d.BreakerCooldown <= 0 {
		d.BreakerCooldown = 5 * time.Second
	}
	if d.SweepStrikes <= 0 {
		d.SweepStrikes = 8
	}
	if d.PushTimeout <= 0 {
		d.PushTimeout = 3 * time.Second
	}
}

// SetDefenses configures the proxy's request-path protections.  Zero
// fields take their defaults.  Not safe to call after Serve starts.
func (p *Proxy) SetDefenses(d Defenses) {
	d.fillDefaults()
	p.defenses = d
}

// peerTimeout resolves the effective per-call deadline: the configured
// PeerTimeout, tightened to 4x the observed LAN p99 once
// AdaptivePeerTimeout is on and the latency histogram has warmed up
// (ROADMAP item 4: derive PeerTimeout the way the hedge delay already
// is).  Clamped to [minPeerTimeout, PeerTimeout].
func (p *Proxy) peerTimeout() time.Duration {
	d := p.defenses.PeerTimeout
	if !p.defenses.AdaptivePeerTimeout || p.lanLat.Count() < adaptiveTimeoutSamples {
		return d
	}
	t := 4 * p.lanLat.Quantile(0.99)
	if t < minPeerTimeout {
		t = minPeerTimeout
	}
	if t > d {
		t = d
	}
	return t
}

// hedgeDelay resolves the hedge trigger: the configured delay, or the
// p99 of observed successful LAN fetches, clamped.
func (p *Proxy) hedgeDelay() time.Duration {
	if d := p.defenses.HedgeDelay; d > 0 {
		return d
	}
	d := p.lanLat.Quantile(0.99)
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if max := p.peerTimeout() / 2; d > max {
		d = max
	}
	return d
}

// hedgedLanFetch fetches from the owner, racing a ring neighbour
// after the hedge delay when hedging is enabled.  The first success
// wins; a losing leg's goroutine delivers into a buffered channel and
// exits (no leak).
func (p *Proxy) hedgedLanFetch(ctx context.Context, addr string, id pastry.ID, traceID string) ([]byte, bool) {
	if !p.defenses.Hedge {
		return p.lanFetch(ctx, addr, id, traceID)
	}
	alts := p.ringNeighbours(addr)
	if len(alts) == 0 {
		return p.lanFetch(ctx, addr, id, traceID)
	}
	type leg struct {
		body []byte
		addr string
		ok   bool
	}
	results := make(chan leg, 2)
	launch := func(a string) {
		go func() {
			body, ok := p.lanFetch(ctx, a, id, traceID)
			results <- leg{body, a, ok}
		}()
	}
	launch(addr)
	timer := time.NewTimer(p.hedgeDelay())
	defer timer.Stop()
	hedged := false
	pending := 1
	for {
		select {
		case r := <-results:
			pending--
			if r.ok {
				if hedged && r.addr != addr {
					p.stats.hedgedWins.Add(1)
				}
				return r.body, true
			}
			if pending == 0 || !hedged {
				// Both legs missed, or the primary missed before the
				// hedge fired — the caller's diversion probes take over.
				return nil, false
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				pending++
				p.stats.hedged.Add(1)
				launch(alts[0])
			}
		}
	}
}

// bodyDigest is the FNV-1a 64-bit hash of an object body — cheap
// enough to compute at pass-down time and on sampled serves.
func bodyDigest(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// recordDigest remembers the digest of a body passed down to the
// client caches (only when verification sampling is on — the map
// tracks the directory's resident set, so dropDigest mirrors every
// dir.Remove site).
func (p *Proxy) recordDigest(folded trace.ObjectID, body []byte) {
	if p.defenses.VerifyEvery > 0 {
		p.digests.Store(folded, bodyDigest(body))
	}
}

func (p *Proxy) dropDigest(folded trace.ObjectID) {
	if p.defenses.VerifyEvery > 0 {
		p.digests.Delete(folded)
	}
}

// verifyBody samples client-cache serves and digest-checks them
// against the body recorded at pass-down.  It reports false on a
// mismatch — a byzantine (or bit-flipping) client cache; the caller
// treats the serve as a miss.
func (p *Proxy) verifyBody(folded trace.ObjectID, body []byte) bool {
	n := p.defenses.VerifyEvery
	if n <= 0 {
		return true
	}
	if int(p.verifySeq.Add(1))%n != 0 {
		return true
	}
	want, ok := p.digests.Load(folded)
	if !ok {
		return true // nothing recorded for this object (pre-defense store)
	}
	p.stats.digestChecks.Add(1)
	if want.(uint64) != bodyDigest(body) {
		p.stats.digestFailures.Add(1)
		return false
	}
	return true
}

// contribution is one client cache's serve-vs-strike ledger; the
// sweeper evicts clients whose strikes exhaust the budget.
type contribution struct {
	serves      atomic.Int64
	timeouts    atomic.Int64
	digestFails atomic.Int64
}

func (c *contribution) strikes() int64 {
	return c.timeouts.Load() + 4*c.digestFails.Load()
}

func (p *Proxy) contribFor(addr string) *contribution {
	if c, ok := p.contrib.Load(addr); ok {
		return c.(*contribution)
	}
	c, _ := p.contrib.LoadOrStore(addr, &contribution{})
	return c.(*contribution)
}

// contribCondemned reports whether addr's strike ledger warrants
// eviction: the strike budget is spent and the client has not earned
// it back with serves.
func (p *Proxy) contribCondemned(addr string) bool {
	v, ok := p.contrib.Load(addr)
	if !ok {
		return false
	}
	c := v.(*contribution)
	s := c.strikes()
	return s >= p.defenses.SweepStrikes && s > c.serves.Load()/4
}

// breaker is a per-peer circuit breaker: consecutive transport
// failures open it; after the cooldown one half-open probe is
// admitted, and a success closes it again.
type breaker struct {
	failures atomic.Int64
	openedAt atomic.Int64 // unixnano; 0 = closed
}

func (p *Proxy) breakerFor(peer string) *breaker {
	if b, ok := p.breakers.Load(peer); ok {
		return b.(*breaker)
	}
	b, _ := p.breakers.LoadOrStore(peer, &breaker{})
	return b.(*breaker)
}

// peerAllowed reports whether the breaker admits a call to peer.
func (p *Proxy) peerAllowed(peer string) bool {
	if p.defenses.BreakerFailures <= 0 {
		return true
	}
	b := p.breakerFor(peer)
	opened := b.openedAt.Load()
	if opened == 0 {
		return true
	}
	now := time.Now().UnixNano()
	if now-opened < int64(p.defenses.BreakerCooldown) {
		return false
	}
	// Half-open: exactly one prober wins the CAS and carries the probe;
	// everyone else keeps degrading until it reports back.
	return b.openedAt.CompareAndSwap(opened, now)
}

// peerFailed records a transport failure against peer, opening the
// breaker at the threshold.
func (p *Proxy) peerFailed(peer string) {
	if p.defenses.BreakerFailures <= 0 {
		return
	}
	b := p.breakerFor(peer)
	if int(b.failures.Add(1)) >= p.defenses.BreakerFailures {
		if b.openedAt.CompareAndSwap(0, time.Now().UnixNano()) {
			p.stats.breakerOpens.Add(1)
			p.events.Emit("breaker.open", map[string]string{"peer": peer})
		}
	}
}

// peerOK records a successful round trip (a miss answer counts —
// the peer is healthy), closing the breaker.
func (p *Proxy) peerOK(peer string) {
	if p.defenses.BreakerFailures <= 0 {
		return
	}
	b := p.breakerFor(peer)
	b.failures.Store(0)
	if b.openedAt.Swap(0) != 0 {
		p.events.Emit("breaker.close", map[string]string{"peer": peer})
	}
}

// EnableAccounting threads a live conservation oracle through the
// proxy's pass-down receipt stream (invariant.ClusterAccountant, in
// lenient mode — live receipts do not cover crash losses or races the
// way the simulator's do, so only the ledger identity and the
// receipt-shape assertions apply).  Call before Serve starts;
// ReconcileAccounting asserts the ledger at any quiescent point.
func (p *Proxy) EnableAccounting(chk *invariant.Checker) {
	p.acctMu.Lock()
	defer p.acctMu.Unlock()
	p.chk = chk
	p.acct = invariant.NewClusterAccountant(chk, "live")
	p.acct.Lenient()
	if p.fleet != nil && p.fleet.acct == nil {
		p.fleet.acct = invariant.NewClusterAccountant(chk, "fleet-live")
		p.fleet.acct.Lenient()
	}
}

// ReconcileAccounting checks the conservation ledgers — the pass-down
// ledger and, on a fleet member, the replica-aware fleet ledger
// (no-op without EnableAccounting).
func (p *Proxy) ReconcileAccounting() {
	p.acctMu.Lock()
	defer p.acctMu.Unlock()
	p.acct.Reconcile(nil)
	if p.fleet != nil {
		p.fleet.acct.Reconcile(nil)
	}
}

// recordReceipt feeds one pass-down store receipt into the live
// accountant.
func (p *Proxy) recordReceipt(hexKey string, rec *StoreReceipt, diverted bool) {
	if p.acct == nil {
		return
	}
	r := p2p.Receipt{
		Stored:   fold(keyFromHex(hexKey)),
		StoredOK: rec.Stored,
		Diverted: diverted,
	}
	for _, ev := range rec.Evicted {
		r.Evicted = append(r.Evicted, fold(keyFromHex(ev)))
	}
	p.acctMu.Lock()
	p.acct.RecordStore(r)
	p.acctMu.Unlock()
}

// DefenseStats is the defense-counter slice of ProxyStats, kept as a
// named struct so chaos reports can aggregate it without pulling the
// whole stats payload apart.
type DefenseStats struct {
	HedgedRequests int `json:"hedged_requests"`
	HedgedWins     int `json:"hedged_wins"`
	BreakerSkipped int `json:"breaker_skipped"`
	BreakerOpens   int `json:"breaker_opens"`
	DigestChecks   int `json:"digest_checks"`
	DigestFailures int `json:"digest_failures"`
	ContribSwept   int `json:"contrib_swept"`
	PeerTimeouts   int `json:"peer_timeouts"`
}

// Add accumulates another proxy's defense counters (chaos reports).
func (d *DefenseStats) Add(o DefenseStats) {
	d.HedgedRequests += o.HedgedRequests
	d.HedgedWins += o.HedgedWins
	d.BreakerSkipped += o.BreakerSkipped
	d.BreakerOpens += o.BreakerOpens
	d.DigestChecks += o.DigestChecks
	d.DigestFailures += o.DigestFailures
	d.ContribSwept += o.ContribSwept
	d.PeerTimeouts += o.PeerTimeouts
}
