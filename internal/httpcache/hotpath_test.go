package httpcache

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"testing"
)

// TestQueryParamMatchesURLValues holds the zero-alloc query scanner to
// the stdlib's answer on every shape the wire protocol produces.
func TestQueryParamMatchesURLValues(t *testing.T) {
	cases := []struct{ raw, key string }{
		{"url=http://origin/page", "url"},
		{"url=http://origin/page?a=1&b=2", "url"}, // nested '?' stays in the value
		{"key=0123456789abcdef0123456789abcdef&cost=2.5", "cost"},
		{"key=0123456789abcdef0123456789abcdef&cost=2.5&ifFree=1", "ifFree"},
		{"url=http%3A%2F%2Forigin%2Fa%20page", "url"}, // escaped fallback
		{"a=1&url=plus+means+space", "url"},
		{"a=1&b=2", "missing"},
		{"urlx=decoy&url=real", "url"},
		{"url=", "url"},
		{"", "url"},
	}
	for _, c := range cases {
		want := ""
		if vs, err := url.ParseQuery(c.raw); err == nil {
			want = vs.Get(c.key)
		}
		if got := queryParam(c.raw, c.key); got != want {
			t.Errorf("queryParam(%q, %q) = %q, want %q", c.raw, c.key, got, want)
		}
	}
}

// TestReceiptFastPathBytes pins the pre-serialized receipt to what
// json.Encoder emits for the same value, so the fast path is
// indistinguishable on the wire from the encoding path it bypasses.
func TestReceiptFastPathBytes(t *testing.T) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(StoreReceipt{Stored: true}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), receiptStoredClean) {
		t.Fatalf("receiptStoredClean = %q, json.Encoder emits %q", receiptStoredClean, buf.Bytes())
	}
}

// TestServedByFallback covers the allocating fallback for tier labels
// outside the precomputed set (a fleet hop relaying a peer's tag).
func TestServedByFallback(t *testing.T) {
	rec := httptest.NewRecorder()
	serve(rec, []byte("body"), "some-novel-tier")
	if got := rec.Header().Get(ServedByHeader); got != "some-novel-tier" {
		t.Fatalf("ServedBy = %q, want some-novel-tier", got)
	}
	rec = httptest.NewRecorder()
	serve(rec, []byte("body"), TierProxy)
	if got := rec.Header().Get(ServedByHeader); got != TierProxy {
		t.Fatalf("ServedBy = %q, want %q", got, TierProxy)
	}
}
