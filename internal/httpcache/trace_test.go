package httpcache

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"webcache/internal/obs"
)

// attachObs wires a tracer and registry into every daemon of a
// deployment, returning the proxy tracers and cache tracers.
func attachObs(d *deployment) (proxyT []*obs.Tracer, cacheT [][]*obs.Tracer) {
	for p, px := range d.proxies {
		t := obs.NewTracer(obs.TracerOptions{Origin: fmt.Sprintf("proxy%d", p), Clock: obs.ClockWall})
		px.SetTracer(t)
		px.SetMetrics(obs.NewRegistry(fmt.Sprintf("proxy%d", p)))
		proxyT = append(proxyT, t)
		var row []*obs.Tracer
		for c, cc := range d.caches[p] {
			ct := obs.NewTracer(obs.TracerOptions{Origin: fmt.Sprintf("cache%d-%d", p, c), Clock: obs.ClockWall})
			cc.SetTracer(ct)
			cc.SetMetrics(obs.NewRegistry(fmt.Sprintf("cache%d-%d", p, c)))
			row = append(row, ct)
		}
		cacheT = append(cacheT, row)
	}
	return proxyT, cacheT
}

// tracedFetch issues /fetch with an explicit trace id, as the load
// generator does, and returns the serving tier.
func tracedFetch(t *testing.T, d *deployment, p int, path, traceID string) string {
	t.Helper()
	u := fmt.Sprintf("%s/fetch?url=%s", d.proxyS[p].URL, url.QueryEscape(d.origin.srv.URL+path))
	req, err := http.NewRequest("GET", u, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch %s: status %d", path, resp.StatusCode)
	}
	return resp.Header.Get(ServedByHeader)
}

// A propagated trace id must join the traces recorded at every hop of
// a cross-proxy fetch: the requesting proxy, the peer proxy, and the
// peer's client cache on the push path.
func TestTraceIDPropagatesAcrossHops(t *testing.T) {
	d := deploy(t, 2, 2, 1<<20, 1<<20)
	proxyT, cacheT := attachObs(d)

	// Warm proxy 1, then evict nothing: fetch via proxy 0 must go
	// remote (peer-lookup into proxy 1's cache).
	if tier := tracedFetch(t, d, 1, "/x", "t-warm"); tier != TierOrigin {
		t.Fatalf("warm fetch tier %q, want origin", tier)
	}
	if tier := tracedFetch(t, d, 0, "/x", "t-remote"); tier != TierRemoteProxy {
		t.Fatalf("cross fetch tier %q, want remote-proxy", tier)
	}

	find := func(tr *obs.Tracer, id string) bool {
		for _, st := range tr.Snapshots() {
			if st.ID == id {
				return true
			}
		}
		return false
	}
	if !find(proxyT[0], "t-remote") {
		t.Fatal("requesting proxy did not record the propagated trace")
	}
	if !find(proxyT[1], "t-remote") {
		t.Fatal("peer proxy did not join the propagated trace")
	}
	// The warm fetch missed everywhere, so proxy 1 peer-looked-up
	// proxy 0 with the id propagated: proxy 0 holds "t-warm" as a
	// *joined* (non-root) peer-lookup trace, never as a root.
	for _, st := range proxyT[0].Snapshots() {
		if st.ID == "t-warm" {
			if st.Root || st.Name != "peer-lookup" {
				t.Fatalf("proxy 0's t-warm trace: root=%v name=%q, want joined peer-lookup", st.Root, st.Name)
			}
		}
	}
	if !find(proxyT[0], "t-warm") {
		t.Fatal("peer-lookup did not propagate the warm trace id")
	}
	_ = cacheT
}

// The push path must carry the trace id down into the client cache:
// requester proxy → peer proxy → peer's client cache → accept-push.
func TestTraceIDReachesClientCacheOnPush(t *testing.T) {
	d := deploy(t, 2, 3, 52, 1<<20)
	proxyT, cacheT := attachObs(d)

	// Overflow proxy 0's tiny cache so objects destage into its client
	// caches (the TestPushAcrossProxies layout); then fetch the evicted
	// ones via proxy 1 → peer-lookup → push from proxy 0's clients.
	// The requester observes remote-proxy either way; the peer's
	// PushesIn counter tells us which fetch actually went via push.
	for i := 0; i < 12; i++ {
		tracedFetch(t, d, 0, fmt.Sprintf("/p%02d", i), fmt.Sprintf("t-fill%d", i))
	}
	var pushed string
	for i := 0; i < 12 && pushed == ""; i++ {
		before := d.proxyStats(0).PushesIn
		id := fmt.Sprintf("t-push%d", i)
		tracedFetch(t, d, 1, fmt.Sprintf("/p%02d", i), id)
		if d.proxyStats(0).PushesIn > before {
			pushed = id
		}
	}
	if pushed == "" {
		t.Fatal("push mechanism never used")
	}
	joined := false
	for _, row := range cacheT {
		for _, ct := range row {
			for _, st := range ct.Snapshots() {
				if st.ID == pushed {
					joined = true
				}
			}
		}
	}
	if !joined {
		t.Fatalf("no client cache joined trace %s", pushed)
	}
	if len(proxyT[1].Snapshots()) == 0 {
		t.Fatal("peer proxy recorded no traces")
	}
}

// /metrics on both daemons must serve parseable Prometheus text with
// the httpcache namespaces populated.
func TestMetricsEndpointsParse(t *testing.T) {
	d := deploy(t, 1, 1, 1<<20, 1<<20)
	attachObs(d)
	d.fetch(0, "/m1")
	d.fetch(0, "/m1")

	get := func(u string) string {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	ptext := get(d.proxyS[0].URL + "/metrics")
	if n, err := obs.ParsePrometheusText(strings.NewReader(ptext)); err != nil || n == 0 {
		t.Fatalf("proxy /metrics: %d samples, err %v:\n%s", n, err, ptext)
	}
	for _, want := range []string{"webcache_httpcache_proxy_requests", "webcache_httpcache_proxy_proxy_hits"} {
		if !strings.Contains(ptext, want) {
			t.Fatalf("proxy /metrics missing %s:\n%s", want, ptext)
		}
	}

	ctext := get(d.cacheS[0][0].URL + "/metrics")
	if n, err := obs.ParsePrometheusText(strings.NewReader(ctext)); err != nil || n == 0 {
		t.Fatalf("cache /metrics: %d samples, err %v:\n%s", n, err, ctext)
	}
	if !strings.Contains(ctext, "webcache_httpcache_cache_objects") {
		t.Fatalf("cache /metrics missing objects gauge:\n%s", ctext)
	}

	// Without a registry the endpoint still serves a valid (empty)
	// exposition.
	bare := httptest.NewServer(NewProxy(1 << 20).Handler())
	defer bare.Close()
	if n, err := obs.ParsePrometheusText(strings.NewReader(get(bare.URL + "/metrics"))); err != nil || n != 0 {
		t.Fatalf("bare /metrics: %d samples, err %v", n, err)
	}
}
