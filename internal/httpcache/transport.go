package httpcache

import (
	"net/http"
	"time"
)

// NewTransport returns the tuned *http.Transport every component of
// the live system shares the shape of: the proxy's outbound client
// (origin fetches, LAN fetches, peer lookups, pass-downs), the
// client-cache daemon's push client, and the load generator's driver
// (internal/loadgen).
//
// The stock http.DefaultTransport keeps only 2 idle connections per
// host (MaxIdleConnsPerHost), so under load every hot peer or origin
// serializes on two pooled connections and the rest of the traffic
// pays a fresh TCP handshake per request.  A proxy's outbound fan-in
// concentrates on a handful of hosts — its client caches, its peers,
// the origins — which is exactly the topology that default starves.
func NewTransport() *http.Transport {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 0 // no global cap; the per-host limit governs
	tr.MaxIdleConnsPerHost = 256
	tr.IdleConnTimeout = 90 * time.Second
	return tr
}

// newHTTPClient builds a client on a fresh tuned transport.
func newHTTPClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout, Transport: NewTransport()}
}

// CloseIdleConnections drops the proxy's pooled outbound connections.
// Shutdown paths call this before draining servers: a connection the
// transport dialed but never used sits in StateNew on the server side,
// and http.Server.Shutdown only reaps those after a hard-coded 5s
// grace — every graceful drain would stall that long otherwise.
func (p *Proxy) CloseIdleConnections() { p.client.CloseIdleConnections() }

// CloseIdleConnections drops the daemon's pooled outbound connections
// (push deliveries to proxies); see Proxy.CloseIdleConnections.
func (c *ClientCache) CloseIdleConnections() { c.client.CloseIdleConnections() }
