package httpcache

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeDaemon is a scriptable stand-in for a client-cache daemon: it
// serves a fixed body on /object, optionally stalling first, and
// accepts /push without ever delivering (the byzantine push pattern).
type fakeDaemon struct {
	srv   *httptest.Server
	addr  string
	delay atomic.Int64 // nanoseconds of stall before answering /object
	body  []byte
}

func newFakeDaemon(t *testing.T, body []byte) *fakeDaemon {
	t.Helper()
	d := &fakeDaemon{body: body}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /object", func(w http.ResponseWriter, r *http.Request) {
		if s := time.Duration(d.delay.Load()); s > 0 {
			select {
			case <-time.After(s):
			case <-r.Context().Done():
				return
			}
		}
		w.Write(d.body)
	})
	mux.HandleFunc("POST /push", func(w http.ResponseWriter, r *http.Request) {
		// Accept the push (204) but never deliver the object to
		// /accept-push: the handler's push wait must time out on its
		// own, not hang on this daemon's goodwill.
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	})
	d.srv = httptest.NewServer(mux)
	t.Cleanup(d.srv.Close)
	d.addr = strings.TrimPrefix(d.srv.URL, "http://")
	return d
}

// defenseProxy wires a served proxy whose ring holds the given fake
// daemons, with the object's directory entry pre-planted.
func defenseProxy(t *testing.T, d Defenses, daemons ...*fakeDaemon) (*Proxy, *httptest.Server) {
	t.Helper()
	px := NewProxy(1 << 20)
	px.SetDefenses(d)
	srv := httptest.NewServer(px.Handler())
	t.Cleanup(srv.Close)
	px.SetSelf(srv.URL)
	for _, fd := range daemons {
		px.ring.add(fd.addr)
	}
	return px, srv
}

func plantDir(px *Proxy, objURL string) {
	px.mu.Lock()
	px.dir.Add(fold(keyOf(objURL)))
	px.mu.Unlock()
}

// TestSlowPeerDeadline is the slow-peer regression test: a client
// cache that stalls far past the per-call deadline must cost at most
// PeerTimeout before the request degrades to origin — not the shared
// 10s client timeout the pre-defense code paid.
func TestSlowPeerDeadline(t *testing.T) {
	origin := newTestOrigin()
	t.Cleanup(origin.srv.Close)
	daemon := newFakeDaemon(t, []byte("stale"))
	daemon.delay.Store(int64(500 * time.Millisecond))

	px, srv := defenseProxy(t, Defenses{PeerTimeout: 50 * time.Millisecond}, daemon)
	objURL := origin.srv.URL + "/slow"
	plantDir(px, objURL)

	start := time.Now()
	status, tier := get(t, fmt.Sprintf("%s/fetch?url=%s", srv.URL, url.QueryEscape(objURL)))
	elapsed := time.Since(start)
	if status != http.StatusOK || tier != TierOrigin {
		t.Fatalf("slow-peer fetch: status %d tier %q, want 200 %q", status, tier, TierOrigin)
	}
	// Budget: one bounded LAN probe (~50ms) plus the origin round trip,
	// with slack for CI.  The old behaviour was the full 500ms stall.
	if elapsed > 300*time.Millisecond {
		t.Fatalf("slow-peer fetch took %v, deadline is not bounding the LAN hop", elapsed)
	}
	st := px.snapshotStats()
	if st.Defense.PeerTimeouts == 0 {
		t.Fatal("no peer timeout recorded")
	}
	// A timeout is a strike, not a death: the daemon stays in the ring
	// (only connection-level failures evict) and its ledger carries the
	// strike for the sweeper to judge.
	found := false
	for _, a := range px.ring.addresses() {
		if a == daemon.addr {
			found = true
		}
	}
	if !found {
		t.Fatal("timed-out daemon was evicted from the ring; timeouts must only strike")
	}
	if c := px.contribFor(daemon.addr); c.timeouts.Load() == 0 {
		t.Fatal("timeout did not land on the contribution ledger")
	}
}

// TestHedgedFetchWins pins the hedge's win path: with the ring owner
// stalling and a neighbour holding a (diverted) copy, the hedged
// second request must serve the object fast from the neighbour and
// count a hedged win — the response still attributed to the
// client-cache tier.
func TestHedgedFetchWins(t *testing.T) {
	origin := newTestOrigin()
	t.Cleanup(origin.srv.Close)
	objURL := origin.srv.URL + "/hedged"
	body := []byte("content-of:/hedged")
	a := newFakeDaemon(t, body)
	b := newFakeDaemon(t, body)

	px, srv := defenseProxy(t, Defenses{
		Hedge:       true,
		HedgeDelay:  5 * time.Millisecond,
		PeerTimeout: 2 * time.Second,
	}, a, b)
	plantDir(px, objURL)

	owner, ok := px.ring.owner(keyOf(objURL))
	if !ok {
		t.Fatal("no ring owner")
	}
	slow := a
	if owner == b.addr {
		slow = b
	}
	slow.delay.Store(int64(300 * time.Millisecond))

	start := time.Now()
	status, tier := get(t, fmt.Sprintf("%s/fetch?url=%s", srv.URL, url.QueryEscape(objURL)))
	elapsed := time.Since(start)
	if status != http.StatusOK || tier != TierClientCache {
		t.Fatalf("hedged fetch: status %d tier %q, want 200 %q", status, tier, TierClientCache)
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("hedged fetch took %v; the hedge should win well before the owner's 300ms stall", elapsed)
	}
	st := px.snapshotStats()
	if st.Defense.HedgedRequests != 1 {
		t.Fatalf("hedged requests = %d, want 1", st.Defense.HedgedRequests)
	}
	if st.Defense.HedgedWins != 1 {
		t.Fatalf("hedged wins = %d, want 1", st.Defense.HedgedWins)
	}
}

// TestRegisterBodyCap pins the /register size cap: an attacker
// streaming an unbounded recovered-key list gets 413 before the proxy
// buffers it; plain registrations (no body, junk body) still succeed.
func TestRegisterBodyCap(t *testing.T) {
	_, srv := defenseProxy(t, Defenses{})

	huge := `{"recovered":["` + strings.Repeat("a", registerBodyMax+1024) + `"]}`
	resp, err := http.Post(srv.URL+"/register?addr=10.0.0.1:999", "application/json",
		strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize register: status %d, want 413", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/register?addr=10.0.0.2:999", "text/plain",
		strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain register: status %d, want 200", resp.StatusCode)
	}
}

// TestPushTimeoutNoGoroutineLeak pins the push wait's cleanup: a
// daemon that accepts a push (204) but never delivers must cost one
// bounded 504, a late /accept-push must get 410 Gone (the waiter is
// unregistered), and repeated occurrences must not accrete goroutines.
func TestPushTimeoutNoGoroutineLeak(t *testing.T) {
	daemon := newFakeDaemon(t, nil) // /push accepts, never delivers
	px, srv := defenseProxy(t, Defenses{PushTimeout: 100 * time.Millisecond}, daemon)
	objURL := "http://origin.test/pushed"
	plantDir(px, objURL)
	key := keyOf(objURL).String()

	before := runtime.NumGoroutine()
	const rounds = 20
	for i := 0; i < rounds; i++ {
		// Each round re-plants the directory entry (the 504 path
		// repairs it away as stale).
		plantDir(px, objURL)
		resp, err := http.Get(srv.URL + "/peer-lookup?key=" + key)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("round %d: status %d, want 504", i, resp.StatusCode)
		}
	}

	// The first round's waiter was pushID 1; it is long unregistered.
	resp, err := http.Post(srv.URL+"/accept-push?id=1", "application/octet-stream",
		strings.NewReader("too late"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("late accept-push: status %d, want 410", resp.StatusCode)
	}

	// Server keep-alive goroutines settle asynchronously; poll.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d (was %d before %d timed-out pushes): push waits are leaking",
				runtime.NumGoroutine(), before, rounds)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestBreakerDegradesToOrigin pins the per-peer circuit breaker and
// the breaker-open serving path's X-Served-By attribution: a peer
// failing at the transport level is consulted BreakerFailures times,
// then skipped — every request still answered 200 from origin.
func TestBreakerDegradesToOrigin(t *testing.T) {
	origin := newTestOrigin()
	t.Cleanup(origin.srv.Close)
	badPeer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "broken peer", http.StatusInternalServerError)
	}))
	t.Cleanup(badPeer.Close)

	px, srv := defenseProxy(t, Defenses{
		BreakerFailures: 2,
		BreakerCooldown: time.Minute, // stays open for the whole test
	})
	px.SetPeers([]string{badPeer.URL})

	// Distinct cold objects so every request walks the peer step.
	for i := 0; i < 6; i++ {
		u := fmt.Sprintf("%s/fetch?url=%s", srv.URL,
			url.QueryEscape(fmt.Sprintf("%s/breaker%d", origin.srv.URL, i)))
		status, tier := get(t, u)
		if status != http.StatusOK || tier != TierOrigin {
			t.Fatalf("request %d: status %d tier %q, want 200 %q (degrade to origin, never 5xx)",
				i, status, tier, TierOrigin)
		}
	}
	st := px.snapshotStats()
	if st.Defense.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d, want 1", st.Defense.BreakerOpens)
	}
	// 6 requests, 2 admitted before the breaker opened: 4 skips.
	if st.Defense.BreakerSkipped != 4 {
		t.Fatalf("breaker skipped = %d, want 4", st.Defense.BreakerSkipped)
	}
}

// TestContributionSweep pins the strike ledger end-to-end: a daemon
// whose timeouts exhaust the strike budget is deregistered by the next
// sweep even though it still answers probes.
func TestContributionSweep(t *testing.T) {
	origin := newTestOrigin()
	t.Cleanup(origin.srv.Close)
	daemon := newFakeDaemon(t, []byte("x"))
	daemon.delay.Store(int64(200 * time.Millisecond))

	px, srv := defenseProxy(t, Defenses{
		PeerTimeout:  20 * time.Millisecond,
		SweepStrikes: 3,
	}, daemon)

	for i := 0; i < 3; i++ {
		objURL := fmt.Sprintf("%s/strike%d", origin.srv.URL, i)
		plantDir(px, objURL)
		if status, _ := get(t, fmt.Sprintf("%s/fetch?url=%s", srv.URL, url.QueryEscape(objURL))); status != http.StatusOK {
			t.Fatalf("fetch %d: status %d", i, status)
		}
	}
	if c := px.contribFor(daemon.addr); c.strikes() < 3 {
		t.Fatalf("strikes = %d, want >= 3", c.strikes())
	}
	removed := px.SweepClientCaches()
	if len(removed) != 1 || removed[0] != daemon.addr {
		t.Fatalf("sweep removed %v, want [%s]", removed, daemon.addr)
	}
	if st := px.snapshotStats(); st.Defense.ContribSwept != 1 {
		t.Fatalf("contrib swept = %d, want 1", st.Defense.ContribSwept)
	}
}

// TestAdaptivePeerTimeout exercises the PeerTimeout auto-tuner: the
// configured deadline holds until the LAN latency histogram warms up,
// then the effective deadline tracks 4x the observed p99, clamped to
// [minPeerTimeout, configured PeerTimeout].
func TestAdaptivePeerTimeout(t *testing.T) {
	configured := 2 * time.Second
	px := NewProxy(1 << 20)
	px.SetDefenses(Defenses{PeerTimeout: configured, AdaptivePeerTimeout: true})

	// Cold histogram: fall back to the configured ceiling.
	if got := px.peerTimeout(); got != configured {
		t.Fatalf("cold peerTimeout = %v, want configured %v", got, configured)
	}

	// Warm up with sub-millisecond hops: 4x p99 would undercut the
	// floor, so the tuner clamps up to minPeerTimeout.
	for i := 0; i < 2*adaptiveTimeoutSamples; i++ {
		px.lanLat.Observe(200 * time.Microsecond)
	}
	if got := px.peerTimeout(); got != minPeerTimeout {
		t.Fatalf("fast-LAN peerTimeout = %v, want floor %v", got, minPeerTimeout)
	}

	// A realistic LAN p99 lands between the clamps: 4x p99.
	px2 := NewProxy(1 << 20)
	px2.SetDefenses(Defenses{PeerTimeout: configured, AdaptivePeerTimeout: true})
	for i := 0; i < 2*adaptiveTimeoutSamples; i++ {
		px2.lanLat.Observe(20 * time.Millisecond)
	}
	got := px2.peerTimeout()
	if got <= minPeerTimeout || got >= configured {
		t.Fatalf("mid-range peerTimeout = %v, want strictly inside (%v, %v)", got, minPeerTimeout, configured)
	}
	if want := 4 * px2.lanLat.Quantile(0.99); got != want {
		t.Fatalf("mid-range peerTimeout = %v, want 4x p99 = %v", got, want)
	}

	// Pathological observations clamp down to the configured ceiling.
	px3 := NewProxy(1 << 20)
	px3.SetDefenses(Defenses{PeerTimeout: configured, AdaptivePeerTimeout: true})
	for i := 0; i < 2*adaptiveTimeoutSamples; i++ {
		px3.lanLat.Observe(10 * time.Second)
	}
	if got := px3.peerTimeout(); got != configured {
		t.Fatalf("slow-LAN peerTimeout = %v, want ceiling %v", got, configured)
	}

	// With the flag off the histogram is ignored entirely.
	px4 := NewProxy(1 << 20)
	px4.SetDefenses(Defenses{PeerTimeout: configured})
	for i := 0; i < 2*adaptiveTimeoutSamples; i++ {
		px4.lanLat.Observe(200 * time.Microsecond)
	}
	if got := px4.peerTimeout(); got != configured {
		t.Fatalf("flag-off peerTimeout = %v, want configured %v", got, configured)
	}
}
