//go:build !race

package httpcache

// Zero-alloc gate on the live proxy's memory-hit path: once an object
// sits in the sharded memory store, serving it must not touch the
// heap.  The pieces that make this hold are queryParam (no url.Values
// per request), pastry.HashString (no []byte copy of the URL), the
// preallocated servedBy header slices, and the store's lock-striped
// Get (see hotpath.go and DESIGN.md §14).
//
// Excluded under the race detector (make check), whose instrumentation
// allocates on paths the production build does not.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"webcache/internal/store"
)

// discardWriter is a reusable ResponseWriter: a preallocated header
// map and a body sink, so the gate measures the handler, not the
// recorder.
type discardWriter struct{ h http.Header }

func (w *discardWriter) Header() http.Header         { return w.h }
func (w *discardWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *discardWriter) WriteHeader(int)             {}

func TestFetchHitPathAllocs(t *testing.T) {
	p := NewProxy(1 << 20)
	const url = "http://origin.example.com/objects/alloc-gate-object-0001"
	id := keyOf(url)
	body := bytes.Repeat([]byte("x"), 4096)
	if _, _, err := p.store.Put(fold(id), store.Object{HexKey: id.String(), Body: body, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/fetch?url="+url, nil)
	w := &discardWriter{h: make(http.Header, 4)}
	p.handleFetch(w, req)
	if got := w.h.Get(ServedByHeader); got != TierProxy {
		t.Fatalf("warmup request served by %q, want %q (gate must measure the memory-hit path)", got, TierProxy)
	}
	allocs := testing.AllocsPerRun(2000, func() { p.handleFetch(w, req) })
	if allocs != 0 {
		t.Errorf("proxy memory-hit path allocates %.1f objects/request, want 0", allocs)
	}
}

// TestObjectHitPathAllocs holds the client-cache daemon's /object hit
// path to the same bar — it is the LAN-fetch server side of every P2P
// hit.
func TestObjectHitPathAllocs(t *testing.T) {
	c := NewClientCache(1 << 20)
	const url = "http://origin.example.com/objects/alloc-gate-object-0002"
	id := keyOf(url)
	body := bytes.Repeat([]byte("y"), 4096)
	if _, _, err := c.store.Put(fold(id), store.Object{HexKey: id.String(), Body: body, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/object?key="+id.String(), nil)
	w := &discardWriter{h: make(http.Header, 4)}
	c.handleObject(w, req)
	if got := w.h.Get(ServedByHeader); got != TierClientCache {
		t.Fatalf("warmup request served by %q, want %q", got, TierClientCache)
	}
	allocs := testing.AllocsPerRun(2000, func() { c.handleObject(w, req) })
	if allocs != 0 {
		t.Errorf("client-cache hit path allocates %.1f objects/request, want 0", allocs)
	}
}
