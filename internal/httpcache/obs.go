package httpcache

import (
	"net/http"

	"webcache/internal/obs"
)

// TraceHeader carries a span-trace id across hops: the load generator
// stamps it on /fetch, the proxy forwards it on LAN fetches and
// peer-lookups, and the push channel relays it through the client
// cache's POST — so one request's spans join up across every daemon it
// touched (each daemon records its own trace under the shared id; the
// exports are merged offline by id).
const TraceHeader = "X-Webcache-Trace"

// SetTracer attaches a span tracer (wall clock); nil disables tracing
// at zero cost.  Not safe to call after Serve starts.
func (p *Proxy) SetTracer(t *obs.Tracer) { p.tracer = t }

// SetMetrics attaches the registry backing the /metrics endpoint; nil
// leaves /metrics serving an empty (but valid) exposition.  The store
// layer's own instruments (store.*) attach to the same registry.
func (p *Proxy) SetMetrics(reg *obs.Registry) {
	p.metrics = reg
	p.store.SetMetrics(reg)
}

// SetTracer attaches a span tracer (wall clock); nil disables tracing.
func (c *ClientCache) SetTracer(t *obs.Tracer) { c.tracer = t }

// SetMetrics attaches the registry backing the daemon's /metrics.  The
// store layer's own instruments (store.*) attach to the same registry.
func (c *ClientCache) SetMetrics(reg *obs.Registry) {
	c.metrics = reg
	c.store.SetMetrics(reg)
}

// traceStart opens a request's span trace: joining the caller's trace
// when it propagated TraceHeader, else head-sampling a fresh one.
func traceStart(t *obs.Tracer, r *http.Request, name string) *obs.SpanTrace {
	if t == nil {
		return nil
	}
	if id := r.Header.Get(TraceHeader); id != "" {
		return t.StartTraceID(id, name)
	}
	return t.StartTrace(name, 0)
}

// publishStats folds the proxy's counters into its registry as
// httpcache.proxy.* gauges (scrape-time snapshot, like /stats).
func (p *Proxy) publishStats() {
	reg := p.metrics
	if reg == nil {
		return
	}
	st := p.snapshotStats()
	g := func(name string, v int) { reg.Gauge("httpcache.proxy." + name).Set(float64(v)) }
	g("requests", st.Requests)
	g("proxy_hits", st.ProxyHits)
	g("client_hits", st.ClientHits)
	g("remote_hits", st.RemoteHits)
	g("origin_fetches", st.OriginFetch)
	g("coalesced_fetches", st.CoalescedFetches)
	g("pass_downs", st.PassDowns)
	g("diversions", st.Diversions)
	g("diverted_hits", st.DivertedHits)
	g("pushes_in", st.PushesIn)
	g("swept_caches", st.SweptCaches)
	g("disk_hits", st.DiskHits)
	g("directory_entries", st.DirEntries)
	g("client_caches", p.ring.size())
	g("hedged_requests", st.Defense.HedgedRequests)
	g("hedged_wins", st.Defense.HedgedWins)
	g("breaker_skipped", st.Defense.BreakerSkipped)
	g("breaker_opens", st.Defense.BreakerOpens)
	g("digest_checks", st.Defense.DigestChecks)
	g("digest_failures", st.Defense.DigestFailures)
	g("contrib_swept", st.Defense.ContribSwept)
	g("peer_timeouts", st.Defense.PeerTimeouts)
	if st.Fleet.Enabled {
		// Fleet membership gauges live in their own fleet.* namespace
		// (METRICS.md holds it both ways via obs.CheckMetricsDoc).
		fg := func(name string, v int) { reg.Gauge("fleet." + name).Set(float64(v)) }
		fg("members", st.Fleet.Members)
		fg("routed", st.Fleet.Routed)
		fg("routed_hits", st.Fleet.RoutedHits)
		fg("routed_origin", st.Fleet.RoutedOrigin)
		fg("route_failed", st.Fleet.RouteFailed)
		fg("route_skipped", st.Fleet.RouteSkipped)
		fg("hop_serves", st.Fleet.HopServes)
		fg("replicas_out", st.Fleet.ReplicasOut)
		fg("replicas_in", st.Fleet.ReplicasIn)
		fg("migrated_out", st.Fleet.MigratedOut)
		fg("migrated_in", st.Fleet.MigratedIn)
		fg("joins", st.Fleet.Joins)
		fg("leaves", st.Fleet.Leaves)
		fg("heartbeat_fails", st.Fleet.HeartbeatFails)
		fg("hot_keys", st.Fleet.HotKeys)
	}
	p.store.PublishMetrics()
	if p.disk != nil {
		p.disk.PublishMetrics()
	}
	// Refresh the slo.* gauges (and fire burn-rate threshold events) at
	// every scrape, so the cluster aggregator reads current burn rates.
	p.slo.Report()
}

func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p.publishStats()
	obs.PrometheusHandler(p.metrics).ServeHTTP(w, r)
}

// publishStats folds the daemon's counters into its registry as
// httpcache.cache.* gauges.
func (c *ClientCache) publishStats() {
	reg := c.metrics
	if reg == nil {
		return
	}
	st := c.snapshotStats()
	g := func(name string, v int) { reg.Gauge("httpcache.cache." + name).Set(float64(v)) }
	g("objects", st.Objects)
	g("hits", st.Hits)
	g("misses", st.Misses)
	g("stores", st.Stores)
	g("pushes", st.Pushes)
	g("disk_hits", st.DiskHits)
	c.store.PublishMetrics()
	if c.disk != nil {
		c.disk.PublishMetrics()
	}
}

func (c *ClientCache) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.publishStats()
	obs.PrometheusHandler(c.metrics).ServeHTTP(w, r)
}
