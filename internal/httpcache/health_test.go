package httpcache

import (
	"io"
	"net/http"
	"testing"
	"time"

	"webcache/internal/obs"
	"webcache/internal/obs/slo"
)

func probe(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestHealthReadiness walks a daemon through its lifecycle: not ready
// at boot, ready after MarkReady, draining during shutdown — with
// /healthz answering 200 throughout.
func TestHealthReadiness(t *testing.T) {
	d := deploy(t, 1, 1, 1<<20, 1<<20)
	base := d.proxyS[0].URL
	p := d.proxies[0]

	if code, _ := probe(t, base+"/healthz"); code != 200 {
		t.Fatalf("healthz at boot = %d", code)
	}
	if code, body := probe(t, base+"/readyz"); code != 503 || body != "starting\n" {
		t.Fatalf("readyz at boot = %d %q", code, body)
	}
	if p.Ready() {
		t.Fatal("Ready() true before MarkReady")
	}

	events := obs.NewEventLog("proxy-0", nil)
	p.SetEvents(events)
	p.MarkReady()
	if code, _ := probe(t, base+"/readyz"); code != 200 {
		t.Fatalf("readyz after MarkReady = %d", code)
	}
	if !p.Ready() {
		t.Fatal("Ready() false after MarkReady")
	}

	p.MarkNotReady("rebuilding")
	if code, body := probe(t, base+"/readyz"); code != 503 || body != "rebuilding\n" {
		t.Fatalf("readyz after MarkNotReady = %d %q", code, body)
	}
	p.MarkReady()

	p.MarkDraining()
	if code, body := probe(t, base+"/readyz"); code != 503 || body != "draining\n" {
		t.Fatalf("readyz while draining = %d %q", code, body)
	}
	if code, _ := probe(t, base+"/healthz"); code != 200 {
		t.Fatalf("healthz while draining = %d", code)
	}
	if p.Ready() {
		t.Fatal("Ready() true while draining")
	}

	types := map[string]int{}
	for _, ev := range events.Recent(10) {
		types[ev.Type]++
	}
	if types["ready.up"] != 2 || types["ready.down"] != 1 || types["ready.drain"] != 1 {
		t.Fatalf("readiness events = %v", types)
	}

	// The client-cache daemon carries the same surface.
	if code, _ := probe(t, d.cacheS[0][0].URL+"/healthz"); code != 200 {
		t.Fatalf("cache healthz = %d", code)
	}
	d.caches[0][0].MarkReady()
	if code, _ := probe(t, d.cacheS[0][0].URL+"/readyz"); code != 200 {
		t.Fatalf("cache readyz = %d", code)
	}
}

// TestProxySLOAccounting drives tagged fetches through a proxy and
// asserts the per-class ledger: tagged requests land on their class,
// untagged ones fold into the first, and fleet hops are not
// double-counted.
func TestProxySLOAccounting(t *testing.T) {
	d := deploy(t, 1, 1, 1<<20, 1<<20)
	p := d.proxies[0]
	tr := slo.NewTracker(nil, []slo.Class{
		{Name: "interactive", Latency: 5 * time.Second, Availability: 0.99, Window: time.Minute},
		{Name: "batch", Latency: 5 * time.Second, Availability: 0.9, Window: time.Minute},
	}, slo.DefaultThresholds)
	p.SetSLO(tr)

	get := func(path string, hdr map[string]string) {
		t.Helper()
		req, _ := http.NewRequest("GET", d.proxyS[0].URL+"/fetch?url="+d.origin.srv.URL+path, nil)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	get("/a", map[string]string{SLOHeader: "interactive"})
	get("/b", map[string]string{SLOHeader: "interactive"})
	get("/c", map[string]string{SLOHeader: "batch"})
	get("/d", nil)                                     // untagged: folds into first class
	get("/e", map[string]string{FleetHopHeader: "1"})  // hop: already counted upstream
	get("/f", map[string]string{SLOHeader: "unknown"}) // unknown: folds into first class

	reports := tr.Report()
	byName := map[string]slo.ClassReport{}
	for _, r := range reports {
		byName[r.Class.Name] = r
	}
	if got := byName["interactive"].Requests; got != 4 {
		t.Fatalf("interactive requests = %d, want 4 (2 tagged + untagged + unknown)", got)
	}
	if got := byName["batch"].Requests; got != 1 {
		t.Fatalf("batch requests = %d, want 1", got)
	}
	if byName["interactive"].Bad != 0 {
		t.Fatalf("healthy fetches spent budget: %+v", byName["interactive"])
	}
	if byName["interactive"].Latency.Count != 4 {
		t.Fatalf("latency ledger = %+v", byName["interactive"].Latency)
	}
}
