// Package httpcache is a working HTTP deployment of the paper's
// system: a caching forward proxy whose evictions are passed down into
// the browser-cache daemons of its client machines, with a lookup
// directory, store receipts, the push mechanism for cooperating
// proxies, and greedy-dual replacement everywhere — Hier-GD over real
// sockets rather than the simulator's function calls.
//
// The paper argues Hier-GD "is technically practical" (§5.3); this
// package is that argument made executable:
//
//	origin    := httpcache demo origin (any web server works)
//	cacheA1.. := client-cache daemons   (NewClientCache + Serve)
//	proxyA    := NewProxy(...);  client daemons register with it
//	proxyB    := a cooperating proxy in another organization
//
//	GET http://proxyA/fetch?url=http://origin/page
//
// serves from, in order: proxyA's cache, proxyA's client caches (via
// the directory and a direct LAN fetch), proxyB (from its cache or —
// via the push mechanism — its client caches), the origin.
//
// Deployment simplifications relative to the paper, documented here
// once: object placement uses the proxy-side consistent-hash map of
// registered cacheIds instead of client-side Pastry routing (the
// proxy already tracks its cluster, so the DHT buys nothing at one
// organization's scale — the simulator models the full overlay), and
// destaging uses dedicated connections rather than piggybacking
// (HTTP/1.1 has no response-piggyback channel; the simulator
// quantifies what piggybacking saves).
package httpcache

import (
	"sort"
	"sync"

	"webcache/internal/pastry"
)

// ServedByHeader is the response header naming the tier that served an
// object body.  Every object-serving response path sets it — it is the
// attribution signal the live load generator (internal/loadgen) keys
// its per-tier accounting on, so a path that forgets it shows up as an
// "unknown" tier in bench reports (and fails the audit test).
const ServedByHeader = "X-Served-By"

// Tier labels carried in ServedByHeader.  The first four are the §5.1
// serving tiers a /fetch client can observe (Tl, Tp2p, Tc, Ts); the
// peer-* pair appears only on the inter-proxy /peer-lookup channel.
const (
	TierProxy       = "proxy"        // local proxy cache hit
	TierProxyDisk   = "proxy-disk"   // local proxy's persistent disk tier
	TierClientCache = "client-cache" // own P2P client cache, via the directory
	TierRemoteProxy = "remote-proxy" // served through a cooperating proxy
	TierOrigin      = "origin"       // fetched from the origin server
	TierPeerProxy   = "peer-proxy"   // peer-lookup: from this proxy's cache
	TierPeerP2P     = "peer-p2p"     // peer-lookup: pushed up from a client cache
)

// keyOf derives the 128-bit objectId of a URL (§4.1: SHA-1 of the
// URL).
func keyOf(url string) pastry.ID { return pastry.HashString(url) }

// ring is a consistent-hash ring of registered client caches: the
// proxy-side stand-in for DHT routing (see the package comment).
type ring struct {
	mu    sync.RWMutex
	ids   []pastry.ID // sorted
	addrs map[pastry.ID]string
}

func newRing() *ring {
	return &ring{addrs: make(map[pastry.ID]string)}
}

// add registers a cache daemon; its cacheId is the hash of its
// address.  Returns the cacheId.
func (r *ring) add(addr string) pastry.ID {
	id := pastry.HashString(addr)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.addrs[id]; !dup {
		i := sort.Search(len(r.ids), func(i int) bool { return !r.ids[i].Less(id) })
		r.ids = append(r.ids, pastry.ID{})
		copy(r.ids[i+1:], r.ids[i:])
		r.ids[i] = id
		r.addrs[id] = addr
	}
	return id
}

// remove drops a daemon (crash or deregistration).
func (r *ring) remove(addr string) {
	id := pastry.HashString(addr)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.addrs[id]; !ok {
		return
	}
	delete(r.addrs, id)
	i := sort.Search(len(r.ids), func(i int) bool { return !r.ids[i].Less(id) })
	if i < len(r.ids) && r.ids[i] == id {
		r.ids = append(r.ids[:i], r.ids[i+1:]...)
	}
}

// owner returns the address of the cache whose id is numerically
// closest to key (the destination client cache of §4.1).
func (r *ring) owner(key pastry.ID) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.ids) == 0 {
		return "", false
	}
	i := sort.Search(len(r.ids), func(i int) bool { return !r.ids[i].Less(key) })
	best := r.ids[i%len(r.ids)]
	for _, j := range []int{i - 1, i, i + 1} {
		c := r.ids[((j%len(r.ids))+len(r.ids))%len(r.ids)]
		if c.CloserToThan(key, best) {
			best = c
		}
	}
	return r.addrs[best], true
}

// addresses snapshots the registered cache addresses (liveness sweep).
func (r *ring) addresses() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.ids))
	for _, id := range r.ids {
		out = append(out, r.addrs[id])
	}
	return out
}

// size reports the number of registered caches.
func (r *ring) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ids)
}
