package httpcache

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webcache/internal/directory"
	"webcache/internal/invariant"
	"webcache/internal/obs"
	"webcache/internal/obs/slo"
	"webcache/internal/pastry"
	"webcache/internal/store"
	"webcache/internal/store/disk"
)

// bytesReader avoids importing bytes in two files.
func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

// ProxyStats is the proxy's /stats payload: where requests were served
// from, plus pass-down and push activity.
type ProxyStats struct {
	Requests    int `json:"requests"`
	ProxyHits   int `json:"proxy_hits"`
	ClientHits  int `json:"client_hits"`
	RemoteHits  int `json:"remote_hits"`
	OriginFetch int `json:"origin_fetches"`
	// CoalescedFetches counts requests served from another request's
	// in-flight origin fetch (singleflight miss coalescing): a
	// thundering herd of N requests on one URL costs one OriginFetch
	// and N-1 CoalescedFetches.
	CoalescedFetches int `json:"coalesced_fetches"`
	PassDowns        int `json:"pass_downs"`
	Diversions       int `json:"diversions"`
	// DivertedHits counts client-cache hits served through the
	// diversion passthrough: the owner missed but a ring neighbour
	// (where an ifFree store diverted the object) had it.
	DivertedHits int `json:"diverted_hits"`
	PushesIn     int `json:"pushes_in"`
	// SweptCaches counts client-cache daemons the liveness sweep
	// deregistered after a failed probe.
	SweptCaches int `json:"swept_caches"`
	// DiskHits counts requests served from the proxy's persistent disk
	// tier after a memory miss (always 0 without Options.DiskDir).
	DiskHits   int `json:"disk_hits"`
	DirEntries int `json:"directory_entries"`
	ClientPool int `json:"client_caches"`
	// Defense holds the chaos-defense counters (defense.go): hedged
	// LAN fetches, breaker activity, digest verification, contribution
	// sweeps, and per-hop peer timeouts.
	Defense DefenseStats `json:"defense"`
	// Fleet holds the fleet-membership counters (fleet.go); zero value
	// with Enabled=false when the proxy is not a fleet member.
	Fleet FleetStats `json:"fleet"`
}

// proxyCounters is the lock-free backing for ProxyStats: every
// request-path bump is one atomic add, so the stats no longer
// serialize the data plane the way the old mutex-guarded struct did.
type proxyCounters struct {
	requests, proxyHits, clientHits, remoteHits, originFetch,
	coalesced, passDowns, diversions, divertedHits, pushesIn,
	swept, diskHits atomic.Int64
	// Defense counters (defense.go).
	hedged, hedgedWins, breakerSkipped, breakerOpens,
	digestChecks, digestFailures, contribSwept, peerTimeouts atomic.Int64
}

// Proxy is the caching forward proxy of the paper's architecture: a
// sharded cache whose evictions destage into the registered client
// caches, with a lookup directory and inter-proxy cooperation.
type Proxy struct {
	store *store.Store // memory tier
	disk  *disk.Store  // persistent tier; nil without Options.DiskDir
	// tier is the serving surface: store alone, or the Tiered layering
	// when a disk tier is configured.
	tier   store.Interface
	ring   *ring
	client *http.Client
	// probeClient is the liveness sweep's short-deadline client; a
	// probe that cannot connect within its timeout marks the daemon
	// dead.  It shares the tuned transport shape (transport.go).
	probeClient *http.Client

	stats proxyCounters

	mu    sync.Mutex
	dir   directory.Directory
	peers []string // cooperating proxies' base URLs
	self  string   // this proxy's base URL (for push-back addressing)

	pushSeq     atomic.Uint64
	pushWaiters sync.Map // pushID string -> chan []byte

	// Defense state (defense.go): knobs, per-peer breakers, per-client
	// contribution ledgers, sampled body digests, and the LAN-fetch
	// latency histogram the hedge delay derives from.
	defenses  Defenses
	breakers  sync.Map // peer URL -> *breaker
	contrib   sync.Map // cache addr -> *contribution
	digests   sync.Map // trace.ObjectID -> uint64 body digest
	verifySeq atomic.Int64
	lanLat    *obs.Histogram

	// acct is the live conservation oracle over pass-down receipts
	// (EnableAccounting); acctMu serializes it — the accountant itself
	// is not thread-safe.  chk is kept so a later EnableFleet can
	// attach its own replica-aware ledger to the same checker.
	acctMu sync.Mutex
	acct   *invariant.ClusterAccountant
	chk    *invariant.Checker

	// fleet is the fleet-membership runtime (fleet.go); nil unless
	// EnableFleet was called.
	fleet *fleetState

	// tracer and metrics are the observability hooks (obs.go); both nil
	// by default and nil-safe throughout.
	tracer  *obs.Tracer
	metrics *obs.Registry

	// slo is the server-side per-class error-budget tracker (health.go);
	// nil disables the accounting.
	slo *slo.Tracker

	// readiness is the /healthz + /readyz probe surface (health.go); it
	// also holds the structured event log both the breaker and the fleet
	// runtime emit to.
	readiness
}

// NewProxy creates a proxy with the given cache capacity in bytes and
// default options (greedy-dual, auto sharding).
func NewProxy(capacityBytes uint64) *Proxy {
	p, err := NewProxyOpts(Options{CapacityBytes: capacityBytes})
	if err != nil {
		panic(err) // unreachable: default options always construct
	}
	return p
}

// NewProxyOpts creates a proxy with explicit data-plane options; it
// fails only on an unknown policy name or a bad shard count.
func NewProxyOpts(o Options) (*Proxy, error) {
	st, dsk, tier, err := o.newTier("proxy")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		store:       st,
		disk:        dsk,
		tier:        tier,
		ring:        newRing(),
		dir:         directory.NewExact(),
		client:      newHTTPClient(10 * time.Second),
		probeClient: newHTTPClient(2 * time.Second),
		lanLat:      &obs.Histogram{},
	}
	p.defenses.fillDefaults()
	return p, nil
}

// SetSelf tells the proxy its own externally reachable base URL
// (needed to address push-backs); SetPeers configures the cooperating
// proxies.
func (p *Proxy) SetSelf(baseURL string) { p.self = baseURL }

// SetPeers configures the cooperating proxy cluster.
func (p *Proxy) SetPeers(urls []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.peers = append([]string(nil), urls...)
}

// Store exposes the proxy's sharded memory store (tests and
// telemetry).
func (p *Proxy) Store() *store.Store { return p.store }

// Disk exposes the persistent tier (nil without Options.DiskDir).
func (p *Proxy) Disk() *disk.Store { return p.disk }

// Sync blocks until every acknowledged insert is durable on disk
// (trivially true without a disk tier).
func (p *Proxy) Sync() bool {
	if p.disk == nil {
		return true
	}
	return p.disk.Sync()
}

// Close drains the disk tier's write-behind queue and closes its
// files; a proxy without a disk tier needs no teardown.  Call after
// the HTTP listener has drained, so every acknowledged insert is
// journaled before exit.
func (p *Proxy) Close() error {
	if p.disk == nil {
		return nil
	}
	return p.disk.Close()
}

// Handler returns the proxy's HTTP interface:
//
//	GET  /fetch?url=U        the client entry point
//	GET  /peer-lookup?key=K  a cooperating proxy asking for an object
//	POST /accept-push?id=N   a client cache pushing an object up
//	POST /register?addr=A    a client cache joining the cluster
//	GET  /stats              counters
//	GET  /healthz            liveness probe (health.go)
//	GET  /readyz             readiness probe (health.go)
//	/fleet/*                 fleet membership + replication (fleet.go;
//	                         503 until EnableFleet)
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fetch", p.withSLO(p.handleFetch))
	mux.HandleFunc("GET /peer-lookup", p.handlePeerLookup)
	mux.HandleFunc("POST /accept-push", p.handleAcceptPush)
	mux.HandleFunc("POST /register", p.handleRegister)
	mux.HandleFunc("GET /stats", p.handleStats)
	mux.HandleFunc("GET /metrics", p.handleMetrics)
	p.registerHealth(mux)
	p.fleetHandlers(mux)
	return mux
}

// registerBody is the optional JSON payload of POST /register: the
// hex objectIds a restarting daemon's disk tier recovered, so the
// proxy's lookup directory re-learns what the cluster still holds.
type registerBody struct {
	Recovered []string `json:"recovered"`
}

// registerBodyMax caps the /register payload: 1 MiB holds ~30k
// recovered keys, far beyond any real daemon's disk tier.
const registerBodyMax = 1 << 20

func (p *Proxy) handleRegister(w http.ResponseWriter, r *http.Request) {
	addr := queryParam(r.URL.RawQuery, "addr")
	if addr == "" {
		http.Error(w, "missing addr", http.StatusBadRequest)
		return
	}
	// The body is optional and best-effort: a plain registration (no
	// body, or a non-JSON one) registers with an empty recovered set.
	// It is still size-capped — a byzantine client streaming an
	// unbounded recovered list is rejected with 413 instead of being
	// buffered into proxy memory.
	var body registerBody
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, registerBodyMax)).Decode(&body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "registration body too large", http.StatusRequestEntityTooLarge)
			return
		}
		// Non-JSON or empty body: plain registration.
	}
	id := p.ring.add(addr)
	if len(body.Recovered) > 0 {
		// Directory entries route through ring.owner, which may name a
		// neighbour of the daemon that actually holds the object — the
		// diversion passthrough in handleFetch probes neighbours on an
		// owner miss, so recovered objects stay reachable either way.
		p.mu.Lock()
		for _, hex := range body.Recovered {
			p.dir.Add(fold(keyFromHex(hex)))
		}
		p.mu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"cacheId": id.String()})
}

func (p *Proxy) handleFetch(w http.ResponseWriter, r *http.Request) {
	url := queryParam(r.URL.RawQuery, "url")
	if url == "" {
		http.Error(w, "missing url", http.StatusBadRequest)
		return
	}
	p.stats.requests.Add(1)
	id := keyOf(url)
	folded := fold(id)
	st := traceStart(p.tracer, r, "fetch")
	if p.fleet != nil {
		// Owner-side load accounting: hot keys this member owns
		// replicate onto their ring successors (fleet.go).
		p.fleetTouch(id, folded)
		if r.Header.Get(FleetHopHeader) != "" {
			// Counted at arrival, whatever tier ends up serving it —
			// a hop the owner answers from cache is still a hop served.
			p.fleet.hopServes.Add(1)
		}
	}

	// 1. Proxy cache: memory, then the persistent disk tier (which
	// promotes the hit back into a free memory slot).
	probe := st.StartSpan("proxy.cache", "Tl")
	if obj, ok := p.store.Get(folded); ok {
		probe.End()
		p.stats.proxyHits.Add(1)
		serve(w, obj.Body, TierProxy)
		st.FinishWall(TierProxy)
		return
	}
	probe.End()
	if p.disk != nil {
		dsp := st.StartSpan("proxy.disk", "Tl")
		if obj, ok := p.tier.Get(folded); ok {
			dsp.End()
			p.stats.diskHits.Add(1)
			serve(w, obj.Body, TierProxyDisk)
			st.FinishWall(TierProxyDisk)
			return
		}
		dsp.EndWasted()
	}

	// 2. Own P2P client cache, per the lookup directory (§4.2).  Every
	// LAN hop is bounded by the per-call deadline and derives from the
	// requester's context, so a disconnected client cancels the chain.
	p.mu.Lock()
	inDir := p.dir.MayContain(folded)
	p.mu.Unlock()
	if inDir {
		if addr, ok := p.ring.owner(id); ok {
			lan := st.StartSpan("client.fetch", "Tp2p")
			if body, ok := p.hedgedLanFetch(r.Context(), addr, id, st.TraceID()); ok {
				if p.verifyBody(folded, body) {
					lan.End()
					p.stats.clientHits.Add(1)
					serve(w, body, TierClientCache)
					st.FinishWall(TierClientCache)
					return
				}
				// Digest mismatch: a byzantine serve.  Strike the
				// owner's ledger, treat as a miss, and let the
				// diversion probes / origin take over.
				p.contribFor(addr).digestFails.Add(1)
				lan.EndWasted()
			} else {
				lan.EndWasted()
			}
			// Diversion passthrough: an ifFree store may have landed
			// the object on a ring neighbour instead of its owner
			// (§4.3); probe them before declaring the entry stale.
			for _, alt := range p.ringNeighbours(addr) {
				div := st.StartSpan("client.fetch.divert", "Tp2p")
				if body, ok := p.lanFetch(r.Context(), alt, id, st.TraceID()); ok && p.verifyBody(folded, body) {
					div.End()
					p.stats.clientHits.Add(1)
					p.stats.divertedHits.Add(1)
					serve(w, body, TierClientCache)
					st.FinishWall(TierClientCache)
					return
				}
				div.EndWasted()
			}
		}
		// Stale entry (crashed daemon or raced eviction): repair.
		p.mu.Lock()
		p.dir.Remove(folded)
		p.mu.Unlock()
		p.dropDigest(folded)
	}

	// 2b. Fleet routing: when this proxy is a fleet member and the key
	// belongs to another member's partition, forward there (owner or
	// replica, least-loaded first) behind the per-hop deadline,
	// breaker, and hedge.  A hop that reports an origin fill is served
	// as TierOrigin so hit accounting stays honest; the body is NOT
	// inserted locally — ownership is the whole point of partitioning.
	if p.fleet != nil {
		if body, tier, ok := p.fleetRoute(r, url, folded, st); ok {
			serve(w, body, tier)
			st.FinishWall(tier)
			return
		}
	}

	// 3. Cooperating proxies, each behind its error-rate breaker: a
	// peer that keeps failing at the transport level is skipped (the
	// request degrades toward origin) until its cooldown expires.
	p.mu.Lock()
	peers := p.peers
	p.mu.Unlock()
	for _, peer := range peers {
		if !p.peerAllowed(peer) {
			p.stats.breakerSkipped.Add(1)
			continue
		}
		look := st.StartSpan("peer.lookup", "Tc")
		body, ok, err := p.peerLookup(r.Context(), peer, id, st.TraceID())
		if err != nil {
			p.peerFailed(peer)
		} else {
			p.peerOK(peer)
		}
		if ok {
			look.End()
			p.stats.remoteHits.Add(1)
			p.insertAndDestage(url, body, remoteCost)
			serve(w, body, TierRemoteProxy)
			st.FinishWall(TierRemoteProxy)
			return
		}
		look.EndWasted()
	}

	// 4. Origin, through the coalescer: concurrent misses on one URL
	// share a single origin fetch (the winner inserts and destages;
	// every waiter serves the winner's body).
	org := st.StartSpan("origin.fetch", "Ts")
	view, err := p.tier.GetOrLoad(folded, func() (store.Object, string, error) {
		body, ferr := p.originFetch(url)
		if ferr != nil {
			return store.Object{}, "", ferr
		}
		p.stats.originFetch.Add(1)
		return store.Object{HexKey: id.String(), Body: body, Cost: originCost}, TierOrigin, nil
	})
	if err != nil {
		org.EndWasted()
		st.FinishWall("error")
		http.Error(w, "origin fetch: "+err.Error(), http.StatusBadGateway)
		return
	}
	org.End()
	switch view.Outcome {
	case store.OutcomeHit:
		// Another request's insert landed between step 1 and here: a
		// proxy cache hit after all.
		p.stats.proxyHits.Add(1)
		serve(w, view.Object.Body, TierProxy)
		st.FinishWall(TierProxy)
	case store.OutcomeCoalesced:
		p.stats.coalesced.Add(1)
		serve(w, view.Object.Body, view.Tag)
		st.FinishWall(view.Tag)
	default: // store.OutcomeLoaded: the flight winner destages.
		for _, ev := range view.Evicted {
			p.passDown(ev)
		}
		// The tier reports where the flight's load actually came from:
		// TierOrigin from the loader, or TierProxyDisk when the tiered
		// store satisfied the flight from its log (a disk-resident key
		// that raced past the step-1 probe).
		if view.Tag == TierProxyDisk {
			p.stats.diskHits.Add(1)
		}
		serve(w, view.Object.Body, view.Tag)
		st.FinishWall(view.Tag)
	}
}

// originFetch GETs the object body from its origin server.
func (p *Proxy) originFetch(url string) ([]byte, error) {
	resp, err := p.client.Get(url)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("origin status %d", resp.StatusCode)
	}
	return body, nil
}

// peerLookup asks one cooperating proxy for an object, forwarding the
// request's trace id so the peer's spans join the same trace.  The
// call is bounded by the per-hop deadline layered on the caller's
// context.  The error return discriminates peer *health* from a plain
// miss: a 404 is (nil, false, nil) — the peer answered, it just does
// not have the object — while transport failures and unexpected
// statuses return an error that feeds the peer's circuit breaker.
func (p *Proxy) peerLookup(ctx context.Context, peer string, id pastry.ID, traceID string) ([]byte, bool, error) {
	ctx, cancel := context.WithTimeout(ctx, p.peerTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", fmt.Sprintf("%s/peer-lookup?key=%s", peer, id), nil)
	if err != nil {
		return nil, false, err
	}
	if traceID != "" {
		req.Header.Set(TraceHeader, traceID)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			p.stats.peerTimeouts.Add(1)
		}
		return nil, false, err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, false, nil
	}
	if rerr != nil {
		return nil, false, rerr
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("peer status %d", resp.StatusCode)
	}
	return body, true, nil
}

// Greedy-dual costs mirror the latency model: origin fetches are the
// expensive ones, remote-proxy fetches cheap.
const (
	originCost = 1.0
	remoteCost = 0.1
)

// lanFetch pulls an object from one of this proxy's own client caches
// (same intranet — direct connections are allowed here; it is only
// *cross-organization* inbound connections the firewall forbids, which
// is why cooperating proxies use the push path instead).  The call is
// bounded by the per-hop deadline layered on the caller's context.
func (p *Proxy) lanFetch(ctx context.Context, addr string, id pastry.ID, traceID string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(ctx, p.peerTimeout())
	defer cancel()
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, "GET", fmt.Sprintf("http://%s/object?key=%s", addr, id), nil)
	if err != nil {
		return nil, false
	}
	if traceID != "" {
		req.Header.Set(TraceHeader, traceID)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// Deadline, not death: the daemon may just be slow (or the
			// requester hung up).  Strike its contribution ledger but
			// keep it in the ring — the sweeper evicts repeat offenders.
			p.stats.peerTimeouts.Add(1)
			p.contribFor(addr).timeouts.Add(1)
			return nil, false
		}
		// Connection-level failure: the daemon is gone; its keys
		// re-home to the ring neighbours on the next pass-down.
		p.ring.remove(addr)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false
	}
	p.lanLat.Observe(time.Since(start))
	p.contribFor(addr).serves.Add(1)
	return body, true
}

// insertAndDestage caches a fetched object at the proxy and passes any
// evicted objects down into the client caches (§4.3 with the
// diversion probe), updating the directory from the store receipts.
// Empty bodies are served without caching (store.ErrEmptyObject).
func (p *Proxy) insertAndDestage(url string, body []byte, cost float64) {
	id := keyOf(url)
	evicted, _, err := p.tier.Put(fold(id), store.Object{HexKey: id.String(), Body: body, Cost: cost})
	if err != nil {
		return
	}
	for _, ev := range evicted {
		p.passDown(ev)
	}
}

// passDown routes one evicted object to its destination client cache.
func (p *Proxy) passDown(obj store.Object) {
	addr, ok := p.ring.owner(keyFromHex(obj.HexKey))
	if !ok {
		return // no client caches registered: the object is dropped
	}
	// Diversion: probe the destination with ifFree; on 507 try the two
	// ring neighbours (the HTTP stand-in for the leaf set) before
	// forcing a replacement at the destination.
	tryStore := func(target string, ifFree bool) (*StoreReceipt, bool) {
		u := fmt.Sprintf("http://%s/store?key=%s&cost=%g", target, obj.HexKey, obj.Cost)
		if ifFree {
			u += "&ifFree=1"
		}
		resp, err := p.client.Post(u, "application/octet-stream", bytesReader(obj.Body))
		if err != nil {
			p.ring.remove(target) // crashed daemon: drop from the ring
			return nil, false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, false
		}
		var rec StoreReceipt
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			return nil, false
		}
		return &rec, true
	}
	diverted := false
	rec, ok := tryStore(addr, true)
	if !ok {
		for _, alt := range p.ringNeighbours(addr) {
			if rec, ok = tryStore(alt, true); ok {
				p.stats.diversions.Add(1)
				diverted = true
				break
			}
		}
	}
	if !ok {
		// Everyone is full: force the greedy-dual replacement at the
		// destination (Figure 1, line 12).
		if rec, ok = tryStore(addr, false); !ok {
			return
		}
	}
	p.stats.passDowns.Add(1)
	p.recordReceipt(obj.HexKey, rec, diverted)
	p.mu.Lock()
	if rec.Stored {
		p.dir.Add(fold(keyFromHex(obj.HexKey)))
	}
	for _, evHex := range rec.Evicted {
		p.dir.Remove(fold(keyFromHex(evHex)))
	}
	p.mu.Unlock()
	if rec.Stored {
		p.recordDigest(fold(keyFromHex(obj.HexKey)), obj.Body)
	}
	for _, evHex := range rec.Evicted {
		p.dropDigest(fold(keyFromHex(evHex)))
	}
}

// ringNeighbours returns up to two other cache addresses (the
// diversion candidates).
func (p *Proxy) ringNeighbours(exclude string) []string {
	p.ring.mu.RLock()
	defer p.ring.mu.RUnlock()
	var out []string
	for _, id := range p.ring.ids {
		if a := p.ring.addrs[id]; a != exclude {
			out = append(out, a)
			if len(out) == 2 {
				break
			}
		}
	}
	return out
}

// SweepClientCaches probes every registered client-cache daemon once
// (GET /stats on the short-deadline probe client) and deregisters the
// ones that do not answer, so a crashed daemon stops poisoning its
// key range (its keys re-home to the ring neighbours).  It returns
// the deregistered addresses.
func (p *Proxy) SweepClientCaches() []string {
	var removed []string
	for _, addr := range p.ring.addresses() {
		// Contribution condemnation first: a daemon whose strike
		// ledger (timeouts + weighted digest failures) outweighs its
		// serves is evicted even if it still answers probes — a
		// byzantine or tail-amplifying client is worse than a dead one.
		if p.contribCondemned(addr) {
			p.ring.remove(addr)
			p.contrib.Delete(addr)
			p.stats.contribSwept.Add(1)
			removed = append(removed, addr)
			continue
		}
		resp, err := p.probeClient.Get(fmt.Sprintf("http://%s/stats", addr))
		if err != nil {
			p.ring.remove(addr)
			p.stats.swept.Add(1)
			removed = append(removed, addr)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return removed
}

// StartSweeper runs SweepClientCaches every interval until the
// returned stop func is called.  The passive paths (lanFetch and
// pass-down connection failures) already deregister daemons they
// catch dying; the sweep is the active guarantee that a daemon
// crashing while idle is still evicted from the ring.
func (p *Proxy) StartSweeper(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				p.SweepClientCaches()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// handlePeerLookup serves a cooperating proxy: from the local proxy
// cache directly, or from the P2P client cache via the push mechanism
// (§4.5) — the client cache connects *out* to this proxy, which then
// relays the object to the peer; the peer never connects to a client.
func (p *Proxy) handlePeerLookup(w http.ResponseWriter, r *http.Request) {
	id, _, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	folded := fold(id)
	st := traceStart(p.tracer, r, "peer-lookup")
	probe := st.StartSpan("proxy.cache", "Tl")
	// The serving surface includes the disk tier: a peer's request for
	// a disk-resident object is still a local serve (TierPeerProxy).
	if obj, ok := p.tier.Get(folded); ok {
		probe.End()
		serve(w, obj.Body, TierPeerProxy)
		st.FinishWall(TierPeerProxy)
		return
	}
	probe.EndWasted()
	p.mu.Lock()
	inDir := p.dir.MayContain(folded)
	p.mu.Unlock()
	if !inDir {
		st.FinishWall("miss")
		http.NotFound(w, r)
		return
	}
	addr, ok := p.ring.owner(id)
	if !ok {
		st.FinishWall("miss")
		http.NotFound(w, r)
		return
	}
	// Ask the client cache to push the object up to us.  The owner is
	// probed first; on a miss the ring neighbours follow — the push
	// channel's diversion passthrough, since an ifFree store may have
	// diverted the object off its owner (§4.3).  A push is awaited
	// only after a daemon accepts it (204): waiting on a 404 would
	// stall the cooperating proxy for the full push timeout.
	pushID := strconv.FormatUint(p.pushSeq.Add(1), 10)
	ch := make(chan []byte, 1)
	p.pushWaiters.Store(pushID, ch)
	defer p.pushWaiters.Delete(pushID)
	push := st.StartSpan("peer.push", "Tp2p")
	accepted := false
	for _, cand := range append([]string{addr}, p.ringNeighbours(addr)...) {
		pushURL := fmt.Sprintf("http://%s/push?key=%s&to=%s/accept-push?id=%s", cand, id, p.self, pushID)
		req, err := http.NewRequest("POST", pushURL, nil)
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "text/plain")
		if tid := st.TraceID(); tid != "" {
			req.Header.Set(TraceHeader, tid)
		}
		resp, err := p.client.Do(req)
		if err != nil {
			continue
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNoContent {
			accepted = true
			break
		}
	}
	if !accepted {
		push.EndWasted()
		st.FinishWall("miss")
		http.NotFound(w, r)
		return
	}
	timer := time.NewTimer(p.defenses.PushTimeout)
	defer timer.Stop()
	select {
	case body := <-ch:
		push.End()
		p.stats.pushesIn.Add(1)
		serve(w, body, TierPeerP2P)
		st.FinishWall(TierPeerP2P)
	case <-timer.C:
		push.EndWasted()
		st.FinishWall("error")
		http.Error(w, "push timed out", http.StatusGatewayTimeout)
	case <-r.Context().Done():
		// The peer gave up (its per-hop deadline fired, or it
		// disconnected).  Without this arm the handler pins the
		// connection active for the full push timeout after the caller
		// is gone — every graceful drain then stalls behind abandoned
		// push waits.
		push.EndWasted()
		st.FinishWall("error")
	}
}

func (p *Proxy) handleAcceptPush(w http.ResponseWriter, r *http.Request) {
	pushID := queryParam(r.URL.RawQuery, "id")
	chAny, ok := p.pushWaiters.Load(pushID)
	if !ok {
		http.Error(w, "unknown push id", http.StatusGone)
		return
	}
	body, err := readRetainedBody(w, r, 64<<20)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	select {
	case chAny.(chan []byte) <- body:
	default:
	}
	w.WriteHeader(http.StatusNoContent)
}

// snapshotStats reads the lock-free counters into the /stats payload.
func (p *Proxy) snapshotStats() ProxyStats {
	p.mu.Lock()
	dirLen := p.dir.Len()
	p.mu.Unlock()
	return ProxyStats{
		Requests:         int(p.stats.requests.Load()),
		ProxyHits:        int(p.stats.proxyHits.Load()),
		ClientHits:       int(p.stats.clientHits.Load()),
		RemoteHits:       int(p.stats.remoteHits.Load()),
		OriginFetch:      int(p.stats.originFetch.Load()),
		CoalescedFetches: int(p.stats.coalesced.Load()),
		PassDowns:        int(p.stats.passDowns.Load()),
		Diversions:       int(p.stats.diversions.Load()),
		DivertedHits:     int(p.stats.divertedHits.Load()),
		PushesIn:         int(p.stats.pushesIn.Load()),
		SweptCaches:      int(p.stats.swept.Load()),
		DiskHits:         int(p.stats.diskHits.Load()),
		DirEntries:       dirLen,
		Defense: DefenseStats{
			HedgedRequests: int(p.stats.hedged.Load()),
			HedgedWins:     int(p.stats.hedgedWins.Load()),
			BreakerSkipped: int(p.stats.breakerSkipped.Load()),
			BreakerOpens:   int(p.stats.breakerOpens.Load()),
			DigestChecks:   int(p.stats.digestChecks.Load()),
			DigestFailures: int(p.stats.digestFailures.Load()),
			ContribSwept:   int(p.stats.contribSwept.Load()),
			PeerTimeouts:   int(p.stats.peerTimeouts.Load()),
		},
		Fleet: p.snapshotFleet(),
	}
}

func (p *Proxy) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := p.snapshotStats()
	st.ClientPool = p.ring.size()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// keyFromHex parses a 32-hex-digit objectId.
func keyFromHex(hex string) (id [2]uint64) {
	for i := 0; i < 16 && i*2+2 <= len(hex); i++ {
		v, _ := strconv.ParseUint(hex[i*2:i*2+2], 16, 8)
		if i < 8 {
			id[0] = id[0]<<8 | v
		} else {
			id[1] = id[1]<<8 | v
		}
	}
	return id
}
