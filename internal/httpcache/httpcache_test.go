package httpcache

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"

	"webcache/internal/pastry"
)

// testOrigin is a deterministic origin server counting its hits.
type testOrigin struct {
	srv  *httptest.Server
	hits atomic.Int64
}

func newTestOrigin() *testOrigin {
	o := &testOrigin{}
	o.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		o.hits.Add(1)
		fmt.Fprintf(w, "content-of:%s", r.URL.Path)
	}))
	return o
}

// deployment spins up an origin, proxies, and client-cache daemons.
type deployment struct {
	t       *testing.T
	origin  *testOrigin
	proxies []*Proxy
	proxyS  []*httptest.Server
	caches  [][]*ClientCache
	cacheS  [][]*httptest.Server
}

func deploy(t *testing.T, numProxies, cachesPerProxy int, proxyCap, cacheCap uint64) *deployment {
	t.Helper()
	d := &deployment{t: t, origin: newTestOrigin()}
	t.Cleanup(func() { d.origin.srv.Close() })
	for p := 0; p < numProxies; p++ {
		px := NewProxy(proxyCap)
		srv := httptest.NewServer(px.Handler())
		t.Cleanup(srv.Close)
		px.SetSelf(srv.URL)
		d.proxies = append(d.proxies, px)
		d.proxyS = append(d.proxyS, srv)

		var ccs []*ClientCache
		var ccsrv []*httptest.Server
		for c := 0; c < cachesPerProxy; c++ {
			cc := NewClientCache(cacheCap)
			s := httptest.NewServer(cc.Handler())
			t.Cleanup(s.Close)
			addr := strings.TrimPrefix(s.URL, "http://")
			resp, err := http.Post(fmt.Sprintf("%s/register?addr=%s", srv.URL, addr), "text/plain", nil)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			ccs = append(ccs, cc)
			ccsrv = append(ccsrv, s)
		}
		d.caches = append(d.caches, ccs)
		d.cacheS = append(d.cacheS, ccsrv)
	}
	// Wire cooperating proxies (full mesh).
	for p, px := range d.proxies {
		var peers []string
		for q, s := range d.proxyS {
			if q != p {
				peers = append(peers, s.URL)
			}
		}
		px.SetPeers(peers)
	}
	return d
}

// fetch issues a client request through proxy p and returns body+tier.
func (d *deployment) fetch(p int, path string) (string, string) {
	d.t.Helper()
	u := fmt.Sprintf("%s/fetch?url=%s", d.proxyS[p].URL, url.QueryEscape(d.origin.srv.URL+path))
	resp, err := http.Get(u)
	if err != nil {
		d.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		d.t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		d.t.Fatalf("fetch %s: status %d: %s", path, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("X-Served-By")
}

func (d *deployment) proxyStats(p int) ProxyStats {
	d.t.Helper()
	resp, err := http.Get(d.proxyS[p].URL + "/stats")
	if err != nil {
		d.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ProxyStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		d.t.Fatal(err)
	}
	return st
}

func TestProxyCacheHit(t *testing.T) {
	d := deploy(t, 1, 2, 1<<20, 1<<20)
	body, tier := d.fetch(0, "/page1")
	if body != "content-of:/page1" || tier != "origin" {
		t.Fatalf("first fetch: %q via %q", body, tier)
	}
	body, tier = d.fetch(0, "/page1")
	if body != "content-of:/page1" || tier != "proxy" {
		t.Fatalf("second fetch: %q via %q", body, tier)
	}
	if n := d.origin.hits.Load(); n != 1 {
		t.Fatalf("origin hits = %d, want 1", n)
	}
}

// Filling the proxy beyond capacity destages evictions into client
// caches; refetching an evicted object must come from a client cache
// without touching the origin.
func TestPassDownAndClientCacheHit(t *testing.T) {
	// Proxy holds ~3 of the ~17-byte objects; client caches are roomy.
	d := deploy(t, 1, 4, 52, 1<<20)
	const n = 12
	for i := 0; i < n; i++ {
		d.fetch(0, fmt.Sprintf("/obj%02d", i))
	}
	st := d.proxyStats(0)
	if st.PassDowns == 0 {
		t.Fatal("no pass-downs despite proxy overflow")
	}
	if st.DirEntries == 0 {
		t.Fatal("directory empty after pass-downs")
	}
	origin := d.origin.hits.Load()
	served := map[string]int{}
	for i := 0; i < n; i++ {
		_, tier := d.fetch(0, fmt.Sprintf("/obj%02d", i))
		served[tier]++
	}
	if served["client-cache"] == 0 {
		t.Fatalf("no client-cache hits on refetch: %v", served)
	}
	if got := d.origin.hits.Load(); got != origin {
		t.Fatalf("refetch went to origin %d times", got-origin)
	}
	// Bodies are intact coming out of the client caches.
	body, _ := d.fetch(0, "/obj03")
	if body != "content-of:/obj03" {
		t.Fatalf("corrupted body %q", body)
	}
}

// A cooperating proxy serves from its own cache over /peer-lookup.
func TestRemoteProxyHit(t *testing.T) {
	d := deploy(t, 2, 2, 1<<20, 1<<20)
	d.fetch(0, "/shared") // proxy 0 now caches it
	origin := d.origin.hits.Load()
	_, tier := d.fetch(1, "/shared")
	if tier != "remote-proxy" {
		t.Fatalf("tier = %q, want remote-proxy", tier)
	}
	if d.origin.hits.Load() != origin {
		t.Fatal("remote hit still touched the origin")
	}
	// Proxy 1 cached the fetched copy (SC behaviour): now local.
	_, tier = d.fetch(1, "/shared")
	if tier != "proxy" {
		t.Fatalf("tier after remote fetch = %q, want proxy", tier)
	}
}

// The push mechanism: an object living only in proxy 0's *client
// caches* is served to proxy 1 via push, never via an inbound
// connection from proxy 1 to a client.
func TestPushAcrossProxies(t *testing.T) {
	d := deploy(t, 2, 3, 52, 1<<20)
	const n = 12
	for i := 0; i < n; i++ {
		d.fetch(0, fmt.Sprintf("/p%02d", i))
	}
	st := d.proxyStats(0)
	if st.DirEntries == 0 {
		t.Fatal("nothing destaged to client caches")
	}
	// Find an object that is in the directory but not the proxy cache:
	// fetch each from proxy 1 and look for the peer-p2p tier.
	origin := d.origin.hits.Load()
	sawPush := false
	for i := 0; i < n && !sawPush; i++ {
		_, tier := d.fetch(1, fmt.Sprintf("/p%02d", i))
		if tier == "remote-proxy" && d.proxyStats(0).PushesIn > 0 {
			sawPush = true
		}
	}
	if !sawPush {
		t.Fatalf("push mechanism never used (pushes_in=%d)", d.proxyStats(0).PushesIn)
	}
	if d.origin.hits.Load() != origin {
		t.Fatal("push-served objects still hit the origin")
	}
}

// Diversion: a full destination cache refuses the ifFree probe and the
// object lands on a neighbour.  Cache ids derive from OS-assigned
// ports, so the destination distribution varies per run; six caches of
// three slots each under forty destaged objects make at least one
// imbalanced (divertible) store a statistical certainty.
func TestDiversionOverHTTP(t *testing.T) {
	d := deploy(t, 1, 6, 52, 52)
	for i := 0; i < 43; i++ {
		d.fetch(0, fmt.Sprintf("/d%02d", i))
	}
	st := d.proxyStats(0)
	if st.PassDowns == 0 {
		t.Fatal("no pass-downs")
	}
	if st.Diversions == 0 {
		t.Fatal("no diversions despite full destinations")
	}
}

func TestClientCacheDaemonEndpoints(t *testing.T) {
	cc := NewClientCache(1 << 20)
	srv := httptest.NewServer(cc.Handler())
	defer srv.Close()
	key := pastry.HashString("http://x/y").String()

	// Missing object.
	resp, _ := http.Get(fmt.Sprintf("%s/object?key=%s", srv.URL, key))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Store then fetch.
	resp, err := http.Post(fmt.Sprintf("%s/store?key=%s&cost=1", srv.URL, key),
		"application/octet-stream", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	var rec StoreReceipt
	json.NewDecoder(resp.Body).Decode(&rec)
	resp.Body.Close()
	if !rec.Stored {
		t.Fatal("store refused")
	}
	resp, _ = http.Get(fmt.Sprintf("%s/object?key=%s", srv.URL, key))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello" {
		t.Fatalf("body %q", body)
	}

	// Bad keys.
	for _, bad := range []string{"zz", strings.Repeat("g", 32)} {
		resp, _ := http.Get(fmt.Sprintf("%s/object?key=%s", srv.URL, bad))
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad key %q: status %d", bad, resp.StatusCode)
		}
	}

	// Stats.
	resp, _ = http.Get(srv.URL + "/stats")
	var st ClientCacheStats
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Objects != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRing(t *testing.T) {
	r := newRing()
	if _, ok := r.owner(pastry.HashString("k")); ok {
		t.Fatal("owner on empty ring")
	}
	r.add("a:1")
	r.add("b:2")
	r.add("c:3")
	r.add("a:1") // duplicate
	if r.size() != 3 {
		t.Fatalf("size = %d", r.size())
	}
	// Ownership is deterministic and stable.
	key := pastry.HashString("some-url")
	o1, _ := r.owner(key)
	o2, _ := r.owner(key)
	if o1 != o2 {
		t.Fatal("owner unstable")
	}
	r.remove("b:2")
	r.remove("b:2") // idempotent
	if r.size() != 2 {
		t.Fatalf("size after remove = %d", r.size())
	}
	if o, _ := r.owner(key); o == "b:2" {
		t.Fatal("removed node still owns keys")
	}
}

func TestFoldDeterministic(t *testing.T) {
	a := fold(pastry.HashString("u1"))
	b := fold(pastry.HashString("u1"))
	c := fold(pastry.HashString("u2"))
	if a != b || a == c {
		t.Fatal("fold not behaving")
	}
}

func TestKeyFromHexRoundTrip(t *testing.T) {
	id := pastry.HashString("round-trip")
	got := pastry.ID(keyFromHex(id.String()))
	if got != id {
		t.Fatalf("keyFromHex(%s) = %v, want %v", id, got, id)
	}
}
