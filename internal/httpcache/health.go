package httpcache

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"webcache/internal/obs"
	"webcache/internal/obs/slo"
)

// SLOHeader tags a request with its SLO class: the load generator
// stamps it on /fetch, and a proxy configured with an slo.Tracker
// accounts the request against that class's error budget.
const SLOHeader = "X-SLO-Class"

// readiness is the liveness/readiness surface both daemons embed:
//
//	GET /healthz  liveness — 200 whenever the process can serve at all
//	GET /readyz   readiness — 503 until the daemon is constructed,
//	              recovered, and (when applicable) registered/joined;
//	              503 "draining" again once graceful shutdown begins,
//	              so load balancers stop routing before the listener
//	              closes.
//
// The daemon bring-up path owns the transition: disk-tier recovery
// runs synchronously during construction, so MarkReady is called
// after the remaining gates (client-cache registration, fleet
// join/migration) complete.  Transitions are emitted to the event
// log when one is attached via SetEvents.
type readiness struct {
	ready    atomic.Bool
	draining atomic.Bool

	rmu    sync.Mutex
	reason string // why not ready ("" = "starting")

	events *obs.EventLog
}

// SetEvents attaches the daemon's structured event log (events.go in
// obs): readiness flips, breaker transitions, and fleet membership
// changes are emitted to it.  Nil disables emission.
func (h *readiness) SetEvents(l *obs.EventLog) { h.events = l }

// MarkReady flips /readyz to 200.
func (h *readiness) MarkReady() {
	if h.ready.CompareAndSwap(false, true) {
		h.events.Emit("ready.up", nil)
	}
}

// MarkNotReady flips /readyz to 503 with a reason.
func (h *readiness) MarkNotReady(reason string) {
	h.rmu.Lock()
	h.reason = reason
	h.rmu.Unlock()
	if h.ready.CompareAndSwap(true, false) {
		h.events.Emit("ready.down", map[string]string{"reason": reason})
	}
}

// MarkDraining flips /readyz to 503 "draining" for graceful shutdown;
// /healthz stays 200 while in-flight requests finish.
func (h *readiness) MarkDraining() {
	if h.draining.CompareAndSwap(false, true) {
		h.events.Emit("ready.drain", nil)
	}
}

// Ready reports the current readiness (false while draining).
func (h *readiness) Ready() bool { return h.ready.Load() && !h.draining.Load() }

func (h *readiness) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintln(w, "ok")
}

func (h *readiness) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if h.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if !h.ready.Load() {
		h.rmu.Lock()
		reason := h.reason
		h.rmu.Unlock()
		if reason == "" {
			reason = "starting"
		}
		http.Error(w, reason, http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// registerHealth mounts the probe endpoints on a daemon mux.
func (h *readiness) registerHealth(mux *http.ServeMux) {
	mux.HandleFunc("GET /healthz", h.handleHealthz)
	mux.HandleFunc("GET /readyz", h.handleReadyz)
}

// SetSLO attaches the proxy's server-side SLO tracker: every /fetch is
// accounted against the class named by its X-SLO-Class header (the
// tracker folds unknown classes into its first class).  Not safe to
// call after Serve starts.
func (p *Proxy) SetSLO(t *slo.Tracker) { p.slo = t }

// statusWriter captures the response status for SLO accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// withSLO wraps the fetch handler with per-class accounting: wall
// latency and 5xx failures spend the tagged class's error budget.
// Fleet-hopped fetches are already accounted at the first-contact
// member, so they are passed through untouched — the cluster rollup
// sums per-member ledgers and must count each client request once.
func (p *Proxy) withSLO(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if p.slo == nil || r.Header.Get(FleetHopHeader) != "" {
			h(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		p.slo.Observe(r.Header.Get(SLOHeader), time.Since(start), sw.status >= 500)
	}
}
