package httpcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"webcache/internal/fleet"
	"webcache/internal/obs"
	"webcache/internal/pastry"
	"webcache/internal/store"
	"webcache/internal/store/disk"
	"webcache/internal/trace"
)

// fold compresses a 128-bit objectId into the 64-bit key the
// replacement policies use.  A birthday collision would need ~2^32
// distinct URLs in one cache — beyond any browser cache; the full hex
// key is kept alongside the body for exactness on the wire.  The
// formula lives in internal/fleet (fleet.Fold) so the consistent-hash
// ring, the simulator, and the load generator all derive identical
// keys.
func fold(id pastry.ID) trace.ObjectID {
	return fleet.Fold(id)
}

// Options configures a daemon's data plane beyond the capacity: the
// per-shard replacement policy (any cache.New registry name), the
// lock-stripe count of the concurrent store (internal/store), and the
// optional persistent disk tier (internal/store/disk).  The zero
// value means greedy-dual with auto-sized sharding and no disk tier.
type Options struct {
	// CapacityBytes is the memory cache byte budget.
	CapacityBytes uint64
	// Policy names the replacement policy ("" = greedy-dual).
	Policy string
	// Shards is the store's lock-stripe count (0 = auto).
	Shards int
	// DiskDir, when non-empty, enables the persistent disk tier under
	// this directory: writes ride its write-behind log, reads fall back
	// to it on memory misses, and a restart recovers its contents.
	DiskDir string
	// DiskCapacityBytes bounds the disk tier's live bytes
	// (0 = 16 x CapacityBytes — disk is the big tier).
	DiskCapacityBytes uint64
	// DiskMetrics, when non-nil, receives the disk tier's store.disk.*
	// instruments at Open time — before recovery runs, so the replay
	// counters observe boot progress.  (The memory tiers attach later
	// via SetMetrics, which cannot retro-date recovery.)
	DiskMetrics *obs.Registry
}

// newStore builds a daemon's sharded store from its options.
func (o Options) newStore(label string) (*store.Store, error) {
	return store.New(store.Config{
		CapacityBytes: o.CapacityBytes,
		Policy:        o.Policy,
		Shards:        o.Shards,
		Label:         label,
	})
}

// newTier builds a daemon's serving surface: the sharded memory store
// alone, or — with DiskDir set — a store.Tiered layering it over the
// persistent disk tier (opened here, so recovery happens before the
// daemon serves its first request).
func (o Options) newTier(label string) (mem *store.Store, dsk *disk.Store, tier store.Interface, err error) {
	mem, err = o.newStore(label)
	if err != nil {
		return nil, nil, nil, err
	}
	if o.DiskDir == "" {
		return mem, nil, mem, nil
	}
	diskCap := o.DiskCapacityBytes
	if diskCap == 0 {
		diskCap = 16 * o.CapacityBytes
	}
	dsk, err = disk.Open(disk.Config{
		Dir:           o.DiskDir,
		CapacityBytes: diskCap,
		Policy:        o.Policy,
		Metrics:       o.DiskMetrics,
		Label:         label + "-disk",
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return mem, dsk, store.NewTiered(mem, dsk, TierProxyDisk), nil
}

// StoreReceipt is the §4.3 store receipt a client cache returns to its
// proxy: what it kept and what it discarded to make room.
type StoreReceipt struct {
	Stored  bool     `json:"stored"`
	Evicted []string `json:"evicted,omitempty"` // hex objectIds
	// Reason explains a refusal ("empty-object" for zero-length
	// bodies, which are never cached — see store.ErrEmptyObject).
	Reason string `json:"reason,omitempty"`
}

// ClientCacheStats is the daemon's /stats payload.
type ClientCacheStats struct {
	Objects int `json:"objects"`
	Hits    int `json:"hits"`
	Misses  int `json:"misses"`
	Stores  int `json:"stores"`
	Pushes  int `json:"pushes"`
	// DiskHits counts hits served from the persistent disk tier after a
	// memory miss (always 0 without Options.DiskDir).
	DiskHits int `json:"disk_hits"`
}

// clientCounters is the lock-free backing for ClientCacheStats.
type clientCounters struct {
	hits, misses, stores, pushes, diskHits atomic.Int64
}

// ClientCache is a browser-cache daemon: the cooperative partition of
// one client machine's cache, serving its local proxy over HTTP.
type ClientCache struct {
	store *store.Store // memory tier
	disk  *disk.Store  // persistent tier; nil without Options.DiskDir
	// tier is the serving surface: store alone, or the Tiered layering
	// when a disk tier is configured.
	tier   store.Interface
	client *http.Client
	stats  clientCounters

	// tracer and metrics are the observability hooks (obs.go).
	tracer  *obs.Tracer
	metrics *obs.Registry

	// readiness is the /healthz + /readyz probe surface (health.go).
	readiness
}

// NewClientCache creates a daemon with the given cooperative-partition
// capacity in bytes and default options (greedy-dual, auto sharding).
func NewClientCache(capacityBytes uint64) *ClientCache {
	c, err := NewClientCacheOpts(Options{CapacityBytes: capacityBytes})
	if err != nil {
		panic(err) // unreachable: default options always construct
	}
	return c
}

// NewClientCacheOpts creates a daemon with explicit data-plane
// options; it fails only on an unknown policy name or a bad shard
// count.
func NewClientCacheOpts(o Options) (*ClientCache, error) {
	st, dsk, tier, err := o.newTier("client-cache")
	if err != nil {
		return nil, err
	}
	return &ClientCache{
		store:  st,
		disk:   dsk,
		tier:   tier,
		client: newHTTPClient(5 * time.Second),
	}, nil
}

// Handler returns the daemon's HTTP interface:
//
//	GET  /object?key=HEX          serve a cached object (LAN fetch)
//	POST /store?key=HEX&cost=F    pass-down from the proxy; ?ifFree=1
//	                              refuses instead of evicting (the
//	                              diversion probe)
//	POST /push?key=HEX&to=URL     push the object up to the proxy for
//	                              forwarding to a cooperating proxy
//	GET  /stats                   counters
//	GET  /healthz                 liveness probe (health.go)
//	GET  /readyz                  readiness probe (health.go)
func (c *ClientCache) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /object", c.handleObject)
	mux.HandleFunc("POST /store", c.handleStore)
	mux.HandleFunc("POST /push", c.handlePush)
	mux.HandleFunc("GET /stats", c.handleStats)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.registerHealth(mux)
	return mux
}

func parseKey(r *http.Request) (pastry.ID, string, error) {
	hex := queryParam(r.URL.RawQuery, "key")
	if len(hex) != 32 {
		return pastry.ID{}, "", fmt.Errorf("httpcache: bad key %q", hex)
	}
	var raw [16]byte
	for i := 0; i < 32; i += 2 {
		v, err := strconv.ParseUint(hex[i:i+2], 16, 8)
		if err != nil {
			return pastry.ID{}, "", fmt.Errorf("httpcache: bad key %q", hex)
		}
		raw[i/2] = byte(v)
	}
	return pastry.IDFromBytes(raw[:]), hex, nil
}

func (c *ClientCache) handleObject(w http.ResponseWriter, r *http.Request) {
	id, _, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st := traceStart(c.tracer, r, "object")
	sp := st.StartSpan("client.object", "Tp2p")
	obj, ok := c.getTiered(fold(id))
	if !ok {
		sp.EndWasted()
		st.FinishWall("miss")
		c.stats.misses.Add(1)
		http.NotFound(w, r)
		return
	}
	sp.End()
	c.stats.hits.Add(1)
	serve(w, obj.Body, TierClientCache)
	st.FinishWall(TierClientCache)
}

// getTiered reads through the serving surface, attributing disk-tier
// fallbacks to the DiskHits counter.  The wire tier stays
// TierClientCache either way — from the proxy's point of view the
// object was served by this client cache; which medium held it is the
// daemon's own accounting.
func (c *ClientCache) getTiered(key trace.ObjectID) (store.Object, bool) {
	if obj, ok := c.store.Get(key); ok {
		return obj, true
	}
	if c.disk == nil {
		return store.Object{}, false
	}
	obj, ok := c.tier.Get(key)
	if ok {
		c.stats.diskHits.Add(1)
	}
	return obj, ok
}

func (c *ClientCache) handleStore(w http.ResponseWriter, r *http.Request) {
	id, hex, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cost, _ := strconv.ParseFloat(queryParam(r.URL.RawQuery, "cost"), 64)
	if cost <= 0 {
		cost = 1
	}
	body, err := readRetainedBody(w, r, 64<<20)
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	folded := fold(id)
	if queryParam(r.URL.RawQuery, "ifFree") == "1" && !c.store.FreeFor(folded, len(body)) {
		// Diversion probe: this cache would have to evict; refuse so
		// the sender can try a neighbour (§4.3).  FreeFor asks the
		// memory tier — the diversion protocol balances the hot tier,
		// and the disk tier's write-behind absorbs whatever lands.
		http.Error(w, "no free space", http.StatusInsufficientStorage)
		return
	}
	evicted, stored, err := c.tier.Put(folded, store.Object{HexKey: hex, Body: body, Cost: cost})
	c.stats.stores.Add(1)
	if stored && err == nil && len(evicted) == 0 {
		// The common steady-state receipt ("stored, nothing evicted")
		// is pre-serialized: no per-store encoder or receipt struct.
		// The bytes are exactly what json.Encoder emits for it, so
		// receivers cannot tell the paths apart.
		w.Header()["Content-Type"] = contentTypeJSON
		w.Write(receiptStoredClean)
		return
	}
	receipt := StoreReceipt{Stored: stored}
	if errors.Is(err, store.ErrEmptyObject) {
		// Surfaced explicitly rather than coerced: a zero-length body
		// is never cached, and the sender's directory must not list it.
		receipt.Reason = "empty-object"
	}
	for _, ev := range evicted {
		receipt.Evicted = append(receipt.Evicted, ev.HexKey)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(receipt)
}

func (c *ClientCache) handlePush(w http.ResponseWriter, r *http.Request) {
	id, _, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	to := queryParam(r.URL.RawQuery, "to")
	if to == "" {
		http.Error(w, "missing to", http.StatusBadRequest)
		return
	}
	st := traceStart(c.tracer, r, "push")
	sp := st.StartSpan("client.push", "Tp2p")
	obj, ok := c.getTiered(fold(id))
	if !ok {
		sp.EndWasted()
		st.FinishWall("miss")
		http.NotFound(w, r)
		return
	}
	// The push (§4.5): the client cache opens the connection to the
	// proxy — never the other way around across organizations.  The
	// trace id rides along so the accept-push hop stays in the trace.
	req, err := http.NewRequest("POST", to, bytesReader(obj.Body))
	if err != nil {
		sp.EndWasted()
		st.FinishWall("error")
		http.Error(w, "push failed: "+err.Error(), http.StatusBadRequest)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if tid := st.TraceID(); tid != "" {
		req.Header.Set(TraceHeader, tid)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		sp.EndWasted()
		st.FinishWall("error")
		http.Error(w, "push failed: "+err.Error(), http.StatusBadGateway)
		return
	}
	resp.Body.Close()
	sp.End()
	c.stats.pushes.Add(1)
	w.WriteHeader(http.StatusNoContent)
	st.FinishWall(TierPeerP2P)
}

// snapshotStats reads the lock-free counters into the /stats payload.
func (c *ClientCache) snapshotStats() ClientCacheStats {
	return ClientCacheStats{
		Objects:  c.store.Len(),
		Hits:     int(c.stats.hits.Load()),
		Misses:   int(c.stats.misses.Load()),
		Stores:   int(c.stats.stores.Load()),
		Pushes:   int(c.stats.pushes.Load()),
		DiskHits: int(c.stats.diskHits.Load()),
	}
}

func (c *ClientCache) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.snapshotStats())
}

// Objects reports the current cached-object count (tests).
func (c *ClientCache) Objects() int { return c.store.Len() }

// Store exposes the daemon's sharded memory store (tests and
// telemetry).
func (c *ClientCache) Store() *store.Store { return c.store }

// Disk exposes the persistent tier (nil without Options.DiskDir).
func (c *ClientCache) Disk() *disk.Store { return c.disk }

// RecoveredHexKeys lists the hex objectIds the disk tier recovered at
// startup, in journal order — the payload the daemon re-registers
// with its proxy so the lookup directory learns what survived the
// restart.  Nil without a disk tier.
func (c *ClientCache) RecoveredHexKeys() []string {
	if c.disk == nil {
		return nil
	}
	return c.disk.RecoveredHexKeys()
}

// Sync blocks until every acknowledged store is durable on disk
// (trivially true without a disk tier).
func (c *ClientCache) Sync() bool {
	if c.disk == nil {
		return true
	}
	return c.disk.Sync()
}

// Close drains the disk tier's write-behind queue and closes its
// files; a daemon without a disk tier needs no teardown.  Call after
// the HTTP listener has drained, so every acknowledged /store is
// journaled before exit.
func (c *ClientCache) Close() error {
	if c.disk == nil {
		return nil
	}
	return c.disk.Close()
}
