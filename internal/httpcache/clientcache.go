package httpcache

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"strconv"
	"sync"
	"time"

	"webcache/internal/cache"
	"webcache/internal/obs"
	"webcache/internal/pastry"
	"webcache/internal/trace"
)

// fold compresses a 128-bit objectId into the 64-bit key the
// replacement policies use.  A birthday collision would need ~2^32
// distinct URLs in one cache — beyond any browser cache; the full hex
// key is kept alongside the body for exactness on the wire.
func fold(id pastry.ID) trace.ObjectID {
	return trace.ObjectID(id[0] ^ bits.RotateLeft64(id[1], 31))
}

// storedObject is one cached HTTP body.
type storedObject struct {
	hexKey string
	body   []byte
	cost   float64
}

// boundedStore is a mutex-guarded greedy-dual cache of HTTP bodies,
// shared by the client-cache daemon and the proxy.
type boundedStore struct {
	mu     sync.Mutex
	gd     *cache.GreedyDual
	bodies map[trace.ObjectID]storedObject
}

func newBoundedStore(capacityBytes uint64) *boundedStore {
	return &boundedStore{
		gd:     cache.NewGreedyDual(capacityBytes),
		bodies: make(map[trace.ObjectID]storedObject),
	}
}

// get returns the object and refreshes its greedy-dual value.
func (s *boundedStore) get(key trace.ObjectID) (storedObject, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.gd.Access(key) {
		return storedObject{}, false
	}
	return s.bodies[key], true
}

// put stores an object and returns what was evicted to make room
// (nothing when the object is oversized or already present — the
// present case refreshes instead).
func (s *boundedStore) put(key trace.ObjectID, obj storedObject) (evicted []storedObject, stored bool) {
	size := uint32(len(obj.body))
	if size == 0 {
		size = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gd.Access(key) {
		return nil, true
	}
	if uint64(size) > s.gd.Capacity() {
		return nil, false
	}
	for _, ev := range s.gd.Add(cache.Entry{Obj: key, Size: size, Cost: obj.cost}) {
		evicted = append(evicted, s.bodies[ev.Obj])
		delete(s.bodies, ev.Obj)
	}
	s.bodies[key] = obj
	return evicted, true
}

// hasFreeSpace reports whether size bytes fit without eviction.
func (s *boundedStore) hasFreeSpace(size int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sz := uint64(size)
	if sz == 0 {
		sz = 1
	}
	return s.gd.Used()+sz <= s.gd.Capacity()
}

// len reports the cached object count.
func (s *boundedStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gd.Len()
}

// StoreReceipt is the §4.3 store receipt a client cache returns to its
// proxy: what it kept and what it discarded to make room.
type StoreReceipt struct {
	Stored  bool     `json:"stored"`
	Evicted []string `json:"evicted,omitempty"` // hex objectIds
}

// ClientCacheStats is the daemon's /stats payload.
type ClientCacheStats struct {
	Objects int `json:"objects"`
	Hits    int `json:"hits"`
	Misses  int `json:"misses"`
	Stores  int `json:"stores"`
	Pushes  int `json:"pushes"`
}

// ClientCache is a browser-cache daemon: the cooperative partition of
// one client machine's cache, serving its local proxy over HTTP.
type ClientCache struct {
	store  *boundedStore
	client *http.Client

	mu    sync.Mutex
	stats ClientCacheStats

	// tracer and metrics are the observability hooks (obs.go).
	tracer  *obs.Tracer
	metrics *obs.Registry
}

// NewClientCache creates a daemon with the given cooperative-partition
// capacity in bytes.
func NewClientCache(capacityBytes uint64) *ClientCache {
	return &ClientCache{
		store:  newBoundedStore(capacityBytes),
		client: &http.Client{Timeout: 5 * time.Second},
	}
}

// Handler returns the daemon's HTTP interface:
//
//	GET  /object?key=HEX          serve a cached object (LAN fetch)
//	POST /store?key=HEX&cost=F    pass-down from the proxy; ?ifFree=1
//	                              refuses instead of evicting (the
//	                              diversion probe)
//	POST /push?key=HEX&to=URL     push the object up to the proxy for
//	                              forwarding to a cooperating proxy
//	GET  /stats                   counters
func (c *ClientCache) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /object", c.handleObject)
	mux.HandleFunc("POST /store", c.handleStore)
	mux.HandleFunc("POST /push", c.handlePush)
	mux.HandleFunc("GET /stats", c.handleStats)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

func parseKey(r *http.Request) (pastry.ID, string, error) {
	hex := r.URL.Query().Get("key")
	if len(hex) != 32 {
		return pastry.ID{}, "", fmt.Errorf("httpcache: bad key %q", hex)
	}
	var raw [16]byte
	for i := 0; i < 32; i += 2 {
		v, err := strconv.ParseUint(hex[i:i+2], 16, 8)
		if err != nil {
			return pastry.ID{}, "", fmt.Errorf("httpcache: bad key %q", hex)
		}
		raw[i/2] = byte(v)
	}
	return pastry.IDFromBytes(raw[:]), hex, nil
}

func (c *ClientCache) bump(f func(*ClientCacheStats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

func (c *ClientCache) handleObject(w http.ResponseWriter, r *http.Request) {
	id, _, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st := traceStart(c.tracer, r, "object")
	sp := st.StartSpan("client.object", "Tp2p")
	obj, ok := c.store.get(fold(id))
	if !ok {
		sp.EndWasted()
		st.FinishWall("miss")
		c.bump(func(s *ClientCacheStats) { s.Misses++ })
		http.NotFound(w, r)
		return
	}
	sp.End()
	c.bump(func(s *ClientCacheStats) { s.Hits++ })
	serve(w, obj.body, TierClientCache)
	st.FinishWall(TierClientCache)
}

func (c *ClientCache) handleStore(w http.ResponseWriter, r *http.Request) {
	id, hex, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cost, _ := strconv.ParseFloat(r.URL.Query().Get("cost"), 64)
	if cost <= 0 {
		cost = 1
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if r.URL.Query().Get("ifFree") == "1" && !c.store.hasFreeSpace(len(body)) {
		// Diversion probe: this cache would have to evict; refuse so
		// the sender can try a neighbour (§4.3).
		http.Error(w, "no free space", http.StatusInsufficientStorage)
		return
	}
	evicted, stored := c.store.put(fold(id), storedObject{hexKey: hex, body: body, cost: cost})
	c.bump(func(s *ClientCacheStats) { s.Stores++ })
	receipt := StoreReceipt{Stored: stored}
	for _, ev := range evicted {
		receipt.Evicted = append(receipt.Evicted, ev.hexKey)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(receipt)
}

func (c *ClientCache) handlePush(w http.ResponseWriter, r *http.Request) {
	id, _, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	to := r.URL.Query().Get("to")
	if to == "" {
		http.Error(w, "missing to", http.StatusBadRequest)
		return
	}
	st := traceStart(c.tracer, r, "push")
	sp := st.StartSpan("client.push", "Tp2p")
	obj, ok := c.store.get(fold(id))
	if !ok {
		sp.EndWasted()
		st.FinishWall("miss")
		http.NotFound(w, r)
		return
	}
	// The push (§4.5): the client cache opens the connection to the
	// proxy — never the other way around across organizations.  The
	// trace id rides along so the accept-push hop stays in the trace.
	req, err := http.NewRequest("POST", to, bytesReader(obj.body))
	if err != nil {
		sp.EndWasted()
		st.FinishWall("error")
		http.Error(w, "push failed: "+err.Error(), http.StatusBadRequest)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if tid := st.TraceID(); tid != "" {
		req.Header.Set(TraceHeader, tid)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		sp.EndWasted()
		st.FinishWall("error")
		http.Error(w, "push failed: "+err.Error(), http.StatusBadGateway)
		return
	}
	resp.Body.Close()
	sp.End()
	c.bump(func(s *ClientCacheStats) { s.Pushes++ })
	w.WriteHeader(http.StatusNoContent)
	st.FinishWall(TierPeerP2P)
}

func (c *ClientCache) handleStats(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	st := c.stats
	c.mu.Unlock()
	st.Objects = c.store.len()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// Objects reports the current cached-object count (tests).
func (c *ClientCache) Objects() int { return c.store.len() }
