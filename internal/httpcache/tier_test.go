package httpcache

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"webcache/internal/store"
)

// get issues a GET and returns (status, tier header).
func get(t *testing.T, u string) (int, string) {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, resp.Header.Get(ServedByHeader)
}

// TestServedByHeaderPerPath audits every object-serving response path
// in the package: each must stamp ServedByHeader with its tier, since
// the live load generator's per-tier accounting keys on it.
func TestServedByHeaderPerPath(t *testing.T) {
	roomy := deploy(t, 2, 2, 1<<20, 1<<20) // nothing evicts
	tiny := deploy(t, 1, 3, 52, 1<<20)     // proxy holds ~3 objects: destaging

	// Warm the fixtures.  roomy: /warm cached at proxy 0; tiny: twelve
	// objects fetched, so the earliest are long since destaged into the
	// client caches.
	roomy.fetch(0, "/warm")
	for i := 0; i < 12; i++ {
		tiny.fetch(0, fmt.Sprintf("/obj%02d", i))
	}
	peerKey := func(d *deployment, path string) string {
		return keyOf(d.origin.srv.URL + path).String()
	}

	// One client cache holding a known object, for the /object path.
	cc := NewClientCache(1 << 20)
	ccSrv := httptest.NewServer(cc.Handler())
	t.Cleanup(ccSrv.Close)
	storedKey := keyOf("http://origin.test/direct").String()
	resp, err := http.Post(ccSrv.URL+"/store?key="+storedKey+"&cost=1", "application/octet-stream",
		strings.NewReader("direct-body"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	tests := []struct {
		name string
		url  string
		tier string
	}{
		{"fetch origin (cold miss)",
			fmt.Sprintf("%s/fetch?url=%s", roomy.proxyS[0].URL, url.QueryEscape(roomy.origin.srv.URL+"/cold")),
			TierOrigin},
		{"fetch proxy cache hit",
			fmt.Sprintf("%s/fetch?url=%s", roomy.proxyS[0].URL, url.QueryEscape(roomy.origin.srv.URL+"/warm")),
			TierProxy},
		{"fetch cooperating proxy",
			fmt.Sprintf("%s/fetch?url=%s", roomy.proxyS[1].URL, url.QueryEscape(roomy.origin.srv.URL+"/warm")),
			TierRemoteProxy},
		{"fetch destaged object from client cache",
			fmt.Sprintf("%s/fetch?url=%s", tiny.proxyS[0].URL, url.QueryEscape(tiny.origin.srv.URL+"/obj00")),
			TierClientCache},
		{"peer-lookup served from proxy cache",
			fmt.Sprintf("%s/peer-lookup?key=%s", roomy.proxyS[0].URL, peerKey(roomy, "/warm")),
			TierPeerProxy},
		{"peer-lookup push-served from client cache",
			fmt.Sprintf("%s/peer-lookup?key=%s", tiny.proxyS[0].URL, peerKey(tiny, "/obj01")),
			TierPeerP2P},
		{"client-cache /object",
			ccSrv.URL + "/object?key=" + storedKey,
			TierClientCache},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			status, tier := get(t, tc.url)
			if status != http.StatusOK {
				t.Fatalf("status %d", status)
			}
			if tier != tc.tier {
				t.Fatalf("%s = %q, want %q", ServedByHeader, tier, tc.tier)
			}
		})
	}
}

// TestDiversionPassthrough pins the read side of §4.3's diversion: an
// ifFree store that landed on a ring neighbour instead of its full
// owner must still be servable through /fetch (probing the neighbours
// on an owner miss), attributed to the client-cache tier.
func TestDiversionPassthrough(t *testing.T) {
	px := NewProxy(1 << 20)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)
	px.SetSelf(pxSrv.URL)

	// Two client caches, each with room for exactly one 10-byte body.
	var addrs []string
	for i := 0; i < 2; i++ {
		cc := NewClientCache(15)
		srv := httptest.NewServer(cc.Handler())
		t.Cleanup(srv.Close)
		addr := strings.TrimPrefix(srv.URL, "http://")
		px.ring.add(addr)
		addrs = append(addrs, addr)
	}

	const objURL = "http://origin.test/diverted"
	id := keyOf(objURL)
	owner, ok := px.ring.owner(id)
	if !ok {
		t.Fatal("no ring owner")
	}
	// Fill the owner so the ifFree probe refuses and the store diverts.
	fillKey := keyOf("filler").String()
	resp, err := http.Post(fmt.Sprintf("http://%s/store?key=%s&cost=1", owner, fillKey),
		"application/octet-stream", strings.NewReader("0123456789"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	px.passDown(store.Object{HexKey: id.String(), Body: []byte("abcdefghij"), Cost: 1})
	if st := px.snapshotStats(); st.Diversions != 1 {
		t.Fatalf("diversions = %d, want 1 (owner %s of %v)", st.Diversions, owner, addrs)
	}

	status, tier := get(t, fmt.Sprintf("%s/fetch?url=%s", pxSrv.URL, url.QueryEscape(objURL)))
	if status != http.StatusOK || tier != TierClientCache {
		t.Fatalf("diverted fetch: status %d tier %q", status, tier)
	}
	if st := px.snapshotStats(); st.DivertedHits != 1 {
		t.Fatalf("diverted hits = %d, want 1", st.DivertedHits)
	}
}
