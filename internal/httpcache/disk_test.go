package httpcache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// fetchVia GETs objURL through the proxy at proxyURL and returns
// (status, serving tier, body).
func fetchVia(t *testing.T, proxyURL, objURL string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/fetch?url=%s", proxyURL, url.QueryEscape(objURL)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get(ServedByHeader), string(body)
}

// A proxy with a disk tier must serve its cached objects across a
// restart: the first process fetches from the origin and persists; a
// second process on the same directory recovers the log and serves
// the object without touching the origin, attributed TierProxyDisk —
// and the disk hit promotes back into memory, so the next request is
// a plain proxy hit.
func TestProxyDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	origin := newTestOrigin()
	defer origin.srv.Close()
	opts := Options{CapacityBytes: 1 << 20, DiskDir: dir}
	objURL := origin.srv.URL + "/persisted"

	p1, err := NewProxyOpts(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(p1.Handler())
	status, tier, body := fetchVia(t, srv1.URL, objURL)
	if status != http.StatusOK || tier != TierOrigin {
		t.Fatalf("cold fetch: status %d tier %q", status, tier)
	}
	srv1.Close()
	if err := p1.Close(); err != nil {
		t.Fatalf("closing first proxy: %v", err)
	}
	if hits := origin.hits.Load(); hits != 1 {
		t.Fatalf("origin hits = %d after one cold fetch", hits)
	}

	// "Restart": a fresh proxy process over the same directory.
	p2, err := NewProxyOpts(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Disk().Recovered(); got != 1 {
		t.Fatalf("recovered %d objects, want 1", got)
	}
	srv2 := httptest.NewServer(p2.Handler())
	defer srv2.Close()

	status, tier, got := fetchVia(t, srv2.URL, objURL)
	if status != http.StatusOK || tier != TierProxyDisk {
		t.Fatalf("post-restart fetch: status %d tier %q", status, tier)
	}
	if got != body {
		t.Fatalf("post-restart body %q, want %q", got, body)
	}
	if hits := origin.hits.Load(); hits != 1 {
		t.Fatalf("origin refetched after restart (%d hits)", hits)
	}
	if st := p2.snapshotStats(); st.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", st.DiskHits)
	}
	// The hit was promoted into the (roomy) memory tier.
	if _, tier, _ := fetchVia(t, srv2.URL, objURL); tier != TierProxy {
		t.Fatalf("promoted fetch served by %q, want %q", tier, TierProxy)
	}
}

// An object too large for the proxy's memory shards still persists to
// the disk tier, so the next request for it is a disk serve instead
// of a second origin fetch.
func TestOversizedObjectServedFromDisk(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(bytes.Repeat([]byte("x"), 4096))
	}))
	defer origin.Close()

	p, err := NewProxyOpts(Options{
		CapacityBytes:     64, // every shard refuses a 4 KiB body
		DiskDir:           t.TempDir(),
		DiskCapacityBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	objURL := origin.URL + "/big"

	if _, tier, _ := fetchVia(t, srv.URL, objURL); tier != TierOrigin {
		t.Fatalf("cold fetch served by %q, want %q", tier, TierOrigin)
	}
	if !p.Sync() {
		t.Fatal("disk sync failed")
	}
	status, tier, body := fetchVia(t, srv.URL, objURL)
	if status != http.StatusOK || tier != TierProxyDisk {
		t.Fatalf("refetch: status %d tier %q, want disk serve", status, tier)
	}
	if len(body) != 4096 {
		t.Fatalf("refetch body %d bytes, want 4096", len(body))
	}
}

// A client-cache daemon restarting over its disk directory must
// re-register its recovered contents with the proxy: the /register
// body carries the recovered hex keys, the proxy re-seeds its lookup
// directory, and a /fetch for one of those objects is served from the
// restarted daemon — with no origin at all behind the URL.
func TestClientCacheRecoveryReRegisters(t *testing.T) {
	dir := t.TempDir()
	const objURL = "http://origin.invalid/recovered"
	id := keyOf(objURL)

	cc1, err := NewClientCacheOpts(Options{CapacityBytes: 1 << 20, DiskDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(cc1.Handler())
	resp, err := http.Post(srv1.URL+"/store?key="+id.String()+"&cost=1",
		"application/octet-stream", strings.NewReader("recovered-body"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv1.Close()
	if err := cc1.Close(); err != nil {
		t.Fatalf("closing first daemon: %v", err)
	}

	cc2, err := NewClientCacheOpts(Options{CapacityBytes: 1 << 20, DiskDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer cc2.Close()
	rec := cc2.RecoveredHexKeys()
	found := false
	for _, h := range rec {
		if h == id.String() {
			found = true
		}
	}
	if !found {
		t.Fatalf("recovered keys %v do not include %s", rec, id.String())
	}
	srv2 := httptest.NewServer(cc2.Handler())
	defer srv2.Close()

	px := NewProxy(1 << 20)
	pxSrv := httptest.NewServer(px.Handler())
	defer pxSrv.Close()
	px.SetSelf(pxSrv.URL)
	payload, err := json.Marshal(registerBody{Recovered: rec})
	if err != nil {
		t.Fatal(err)
	}
	addr := strings.TrimPrefix(srv2.URL, "http://")
	resp, err = http.Post(fmt.Sprintf("%s/register?addr=%s", pxSrv.URL, addr),
		"application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := px.snapshotStats(); st.DirEntries != len(rec) {
		t.Fatalf("directory holds %d entries after re-registration, want %d", st.DirEntries, len(rec))
	}

	// origin.invalid never resolves: only the re-registered directory
	// entry and the daemon's recovered disk tier can serve this.
	status, tier, body := fetchVia(t, pxSrv.URL, objURL)
	if status != http.StatusOK || tier != TierClientCache {
		t.Fatalf("recovered fetch: status %d tier %q", status, tier)
	}
	if body != "recovered-body" {
		t.Fatalf("recovered body %q", body)
	}
	if st := cc2.snapshotStats(); st.DiskHits != 1 {
		t.Fatalf("daemon disk hits = %d, want 1", st.DiskHits)
	}
}
