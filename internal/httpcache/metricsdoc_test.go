package httpcache

import (
	"net/http/httptest"
	"os"
	"testing"

	"webcache/internal/obs"
)

// TestMetricsDocHTTPCache holds the httpcache.* namespace in
// METRICS.md against what the daemons' /metrics endpoints register,
// in both directions.  publishStats writes the full gauge set on
// every scrape, so one scrape of each daemon exercises every name.
func TestMetricsDocHTTPCache(t *testing.T) {
	md, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatal(err)
	}

	preg := obs.NewRegistry("doc-smoke-proxy")
	px := NewProxy(1 << 20)
	px.SetMetrics(preg)
	creg := obs.NewRegistry("doc-smoke-cache")
	cc := NewClientCache(1 << 20)
	cc.SetMetrics(creg)

	for _, h := range []struct {
		srv *httptest.Server
	}{
		{httptest.NewServer(px.Handler())},
		{httptest.NewServer(cc.Handler())},
	} {
		defer h.srv.Close()
		resp, err := h.srv.Client().Get(h.srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET /metrics: %s", resp.Status)
		}
	}

	var names []string
	for _, m := range preg.Snapshot() {
		names = append(names, m.Name)
	}
	for _, m := range creg.Snapshot() {
		names = append(names, m.Name)
	}
	if err := obs.CheckMetricsDoc(md, names, "httpcache"); err != nil {
		t.Fatal(err)
	}
}
