package httpcache

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// A crashed client-cache daemon must not break the proxy: the stale
// directory entry is repaired, the dead node leaves the ring, and the
// request is served from the origin.
func TestClientCacheCrash(t *testing.T) {
	d := deploy(t, 1, 3, 52, 1<<20)
	const n = 10
	for i := 0; i < n; i++ {
		d.fetch(0, fmt.Sprintf("/x%02d", i))
	}
	if d.proxyStats(0).DirEntries == 0 {
		t.Fatal("nothing destaged before the crash")
	}
	// Crash every daemon.
	for _, s := range d.cacheS[0] {
		s.Close()
	}
	// Every object must still be fetchable (origin fallback).
	for i := 0; i < n; i++ {
		body, _ := d.fetch(0, fmt.Sprintf("/x%02d", i))
		if body != fmt.Sprintf("content-of:/x%02d", i) {
			t.Fatalf("wrong body %q after crash", body)
		}
	}
	st := d.proxyStats(0)
	if st.ClientPool != 0 {
		t.Errorf("dead daemons still in the ring: %d", st.ClientPool)
	}
}

// Concurrent fetch storms must be race-free (run with -race) and
// return correct bodies.
func TestConcurrentFetches(t *testing.T) {
	d := deploy(t, 2, 3, 200, 1<<20)
	var wg sync.WaitGroup
	errs := make(chan string, 256)
	// Raw HTTP inside the goroutines: d.fetch uses t.Fatal, which must
	// not be called off the test goroutine.
	get := func(proxy int, path string) (string, error) {
		u := fmt.Sprintf("%s/fetch?url=%s", d.proxyS[proxy].URL, url.QueryEscape(d.origin.srv.URL+path))
		resp, err := http.Get(u)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				path := fmt.Sprintf("/c%02d", (w*7+i)%20)
				body, err := get(w%2, path)
				if err != nil {
					errs <- err.Error()
					return
				}
				if body != "content-of:"+path {
					errs <- fmt.Sprintf("body %q for %s", body, path)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// The liveness sweep must evict a daemon that crashed while idle —
// one the passive paths (lanFetch / pass-down failures) never touch.
func TestLivenessSweep(t *testing.T) {
	px := NewProxy(1 << 20)
	live := NewClientCache(1 << 20)
	liveSrv := httptest.NewServer(live.Handler())
	t.Cleanup(liveSrv.Close)
	deadSrv := httptest.NewServer(NewClientCache(1 << 20).Handler())
	liveAddr := strings.TrimPrefix(liveSrv.URL, "http://")
	deadAddr := strings.TrimPrefix(deadSrv.URL, "http://")
	px.ring.add(liveAddr)
	px.ring.add(deadAddr)
	deadSrv.Close() // crash while idle: no request ever observes it

	removed := px.SweepClientCaches()
	if len(removed) != 1 || removed[0] != deadAddr {
		t.Fatalf("sweep removed %v, want [%s]", removed, deadAddr)
	}
	if px.ring.size() != 1 {
		t.Fatalf("ring size = %d after sweep, want 1", px.ring.size())
	}
	if got := px.ring.addresses(); len(got) != 1 || got[0] != liveAddr {
		t.Fatalf("survivor = %v, want [%s]", got, liveAddr)
	}
	if st := px.snapshotStats(); st.SweptCaches != 1 {
		t.Fatalf("swept_caches = %d, want 1", st.SweptCaches)
	}
	// A second sweep finds everyone healthy: idempotent.
	if removed := px.SweepClientCaches(); len(removed) != 0 {
		t.Fatalf("second sweep removed %v", removed)
	}
}

// The background sweeper drives the same probe on a ticker and stops
// cleanly (stop is idempotent).
func TestStartSweeper(t *testing.T) {
	px := NewProxy(1 << 20)
	deadSrv := httptest.NewServer(NewClientCache(1 << 20).Handler())
	deadAddr := strings.TrimPrefix(deadSrv.URL, "http://")
	px.ring.add(deadAddr)
	deadSrv.Close()

	stop := px.StartSweeper(5 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for px.ring.size() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweeper never removed the dead daemon")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent
}

// A thundering herd on one cold URL must cost exactly one origin
// fetch: the flight winner fetches, every concurrent miss coalesces
// onto it (or lands a proxy hit if it arrives after the insert).
func TestCoalescedOriginFetch(t *testing.T) {
	gate := make(chan struct{})
	var originHits atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		originHits.Add(1)
		<-gate
		fmt.Fprintf(w, "content-of:%s", r.URL.Path)
	}))
	t.Cleanup(origin.Close)

	px := NewProxy(1 << 20)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)
	px.SetSelf(pxSrv.URL)

	const K = 16
	u := fmt.Sprintf("%s/fetch?url=%s", pxSrv.URL, url.QueryEscape(origin.URL+"/herd"))
	bodies := make(chan string, K)
	errs := make(chan error, K)
	for i := 0; i < K; i++ {
		go func() {
			resp, err := http.Get(u)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			bodies <- string(b)
		}()
	}
	// Hold the gate until every request has entered the proxy and the
	// winner is parked inside the origin handler, then give the
	// followers a beat to reach the coalescer before releasing.
	deadline := time.Now().Add(5 * time.Second)
	for px.stats.requests.Load() != K || originHits.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("herd never formed: requests=%d originHits=%d",
				px.stats.requests.Load(), originHits.Load())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	close(gate)

	for i := 0; i < K; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case b := <-bodies:
			if b != "content-of:/herd" {
				t.Fatalf("body %q", b)
			}
		}
	}
	if n := originHits.Load(); n != 1 {
		t.Fatalf("origin hits = %d, want 1 (herd not coalesced)", n)
	}
	st := px.snapshotStats()
	if st.OriginFetch != 1 {
		t.Fatalf("origin_fetches = %d, want 1", st.OriginFetch)
	}
	if st.CoalescedFetches+st.ProxyHits != K-1 {
		t.Fatalf("coalesced (%d) + proxy hits (%d) = %d, want %d",
			st.CoalescedFetches, st.ProxyHits, st.CoalescedFetches+st.ProxyHits, K-1)
	}
	if st.CoalescedFetches == 0 {
		t.Fatal("no request coalesced onto the in-flight fetch")
	}
}

// A zero-length body is served but never cached, and the store
// receipt says so explicitly instead of silently coercing the size.
func TestEmptyBodyStoreReceipt(t *testing.T) {
	cc := NewClientCache(1 << 20)
	srv := httptest.NewServer(cc.Handler())
	t.Cleanup(srv.Close)
	key := keyOf("http://origin.test/empty").String()
	resp, err := http.Post(fmt.Sprintf("%s/store?key=%s&cost=1", srv.URL, key),
		"application/octet-stream", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rec StoreReceipt
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Stored || rec.Reason != "empty-object" {
		t.Fatalf("receipt = %+v, want refused with reason empty-object", rec)
	}
	if cc.Objects() != 0 {
		t.Fatal("empty object cached")
	}
}
