package httpcache

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"testing"
)

// A crashed client-cache daemon must not break the proxy: the stale
// directory entry is repaired, the dead node leaves the ring, and the
// request is served from the origin.
func TestClientCacheCrash(t *testing.T) {
	d := deploy(t, 1, 3, 52, 1<<20)
	const n = 10
	for i := 0; i < n; i++ {
		d.fetch(0, fmt.Sprintf("/x%02d", i))
	}
	if d.proxyStats(0).DirEntries == 0 {
		t.Fatal("nothing destaged before the crash")
	}
	// Crash every daemon.
	for _, s := range d.cacheS[0] {
		s.Close()
	}
	// Every object must still be fetchable (origin fallback).
	for i := 0; i < n; i++ {
		body, _ := d.fetch(0, fmt.Sprintf("/x%02d", i))
		if body != fmt.Sprintf("content-of:/x%02d", i) {
			t.Fatalf("wrong body %q after crash", body)
		}
	}
	st := d.proxyStats(0)
	if st.ClientPool != 0 {
		t.Errorf("dead daemons still in the ring: %d", st.ClientPool)
	}
}

// Concurrent fetch storms must be race-free (run with -race) and
// return correct bodies.
func TestConcurrentFetches(t *testing.T) {
	d := deploy(t, 2, 3, 200, 1<<20)
	var wg sync.WaitGroup
	errs := make(chan string, 256)
	// Raw HTTP inside the goroutines: d.fetch uses t.Fatal, which must
	// not be called off the test goroutine.
	get := func(proxy int, path string) (string, error) {
		u := fmt.Sprintf("%s/fetch?url=%s", d.proxyS[proxy].URL, url.QueryEscape(d.origin.srv.URL+path))
		resp, err := http.Get(u)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				path := fmt.Sprintf("/c%02d", (w*7+i)%20)
				body, err := get(w%2, path)
				if err != nil {
					errs <- err.Error()
					return
				}
				if body != "content-of:"+path {
					errs <- fmt.Sprintf("body %q for %s", body, path)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
