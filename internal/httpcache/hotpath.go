package httpcache

import (
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
)

// This file holds the request-path allocation helpers: the live data
// plane serves cache hits without allocating (TestFetchHitPathAllocs
// holds it to zero allocs per request), so anything a handler does per
// request either reuses a pooled buffer or touches nothing on the
// heap.  See DESIGN.md §14.

// queryParam returns the named parameter from a raw query string
// without materializing url.Values (which allocates a map and a slice
// per key).  The common case — an unescaped value, which is what the
// loopback drivers and the load generator send — returns a substring
// of rawQuery and allocates nothing; values carrying '%' or '+'
// escapes fall back to url.QueryUnescape.  A malformed escape returns
// "" (url.ParseQuery would have dropped the pair).
func queryParam(rawQuery, key string) string {
	for q := rawQuery; q != ""; {
		var kv string
		if i := strings.IndexByte(q, '&'); i >= 0 {
			kv, q = q[:i], q[i+1:]
		} else {
			kv, q = q, ""
		}
		if len(kv) <= len(key) || kv[len(key)] != '=' || kv[:len(key)] != key {
			continue
		}
		v := kv[len(key)+1:]
		if strings.IndexByte(v, '%') < 0 && strings.IndexByte(v, '+') < 0 {
			return v
		}
		dec, err := url.QueryUnescape(v)
		if err != nil {
			return ""
		}
		return dec
	}
	return ""
}

// servedBy holds one preallocated header value per serving tier, so
// the serve path assigns a shared slice into the response header map
// instead of allocating a fresh []string per response.  The slices
// are never mutated after construction.  ServedByHeader is already in
// canonical MIME form, so direct map assignment matches Header.Set.
var servedBy = map[string][]string{
	TierProxy:       {TierProxy},
	TierProxyDisk:   {TierProxyDisk},
	TierClientCache: {TierClientCache},
	TierRemoteProxy: {TierRemoteProxy},
	TierOrigin:      {TierOrigin},
	TierPeerProxy:   {TierPeerProxy},
	TierPeerP2P:     {TierPeerP2P},
}

// serve writes an object body with its serving-tier header.
func serve(w http.ResponseWriter, body []byte, tier string) {
	if v, ok := servedBy[tier]; ok {
		w.Header()[ServedByHeader] = v
	} else {
		// Unknown tier label (a fleet hop relaying a peer's tag):
		// fall back to the allocating path.
		w.Header().Set(ServedByHeader, tier)
	}
	w.Write(body)
}

// contentTypeJSON and receiptStoredClean back the store-receipt fast
// path: the steady-state receipt ("stored, nothing evicted, no
// refusal") is the overwhelmingly common one, and its serialization
// never changes.  The bytes match json.Encoder's output for
// StoreReceipt{Stored: true} exactly — including the trailing newline
// — which TestReceiptFastPathBytes pins.
var (
	contentTypeJSON    = []string{"application/json"}
	receiptStoredClean = []byte("{\"stored\":true}\n")
)

// bodyBuf is a pooled scratch buffer for reading request bodies whose
// final destination retains the bytes (the store keeps object bodies
// forever, so they cannot live in a pool).  Reading through pooled
// scratch and copying once means each store costs exactly one
// right-sized allocation — the retained body — instead of io.ReadAll's
// log-of-size growth garbage.
type bodyBuf struct{ b []byte }

var bodyBufPool = sync.Pool{New: func() any { return &bodyBuf{b: make([]byte, 0, 64<<10)} }}

// readRetainedBody reads the request body (bounded by limit, with
// MaxBytesReader's 413 semantics) into pooled scratch and returns an
// exact-size copy the caller owns.
func readRetainedBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	bb := bodyBufPool.Get().(*bodyBuf)
	defer bodyBufPool.Put(bb)
	rd := http.MaxBytesReader(w, r.Body, limit)
	bb.b = bb.b[:0]
	for {
		if len(bb.b) == cap(bb.b) {
			bb.b = append(bb.b, 0)[:len(bb.b)]
		}
		n, err := rd.Read(bb.b[len(bb.b):cap(bb.b)])
		bb.b = bb.b[:len(bb.b)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	out := make([]byte, len(bb.b))
	copy(out, bb.b)
	return out, nil
}
