package bloom

import "testing"

// FuzzCounting replays an op script against a deliberately tiny
// nibble-packed counting filter while a shadow multiset tracks which
// keys are live.  The invariant is the one the Bloom directory variant
// rests on (§4.2): a key with more insertions than removals must never
// read as absent.  Removals follow the directory discipline — only
// keys still live in the shadow are removed — because removing a
// never-added key corrupts any counting Bloom filter by design.
//
// The filter is sized at m=64, k=3 with one-byte keys, so scripts of a
// few dozen ops already force index collisions and counter saturation
// (countingMax), exercising the saturate-and-never-decrement rule that
// preserves no-false-negatives in the packed representation.
func FuzzCounting(f *testing.F) {
	// add/remove churn over a handful of keys.
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 1, 2, 2, 1, 2, 0, 1, 1, 3})
	// hammer one key past the 4-bit saturation point, then drain it.
	seed := make([]byte, 0, 80)
	for i := 0; i < 20; i++ {
		seed = append(seed, 0, 7)
	}
	for i := 0; i < 20; i++ {
		seed = append(seed, 1, 7)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, script []byte) {
		c, err := NewCounting(64, 3)
		if err != nil {
			t.Fatal(err)
		}
		live := make(map[uint64]int)
		for i := 0; i+1 < len(script); i += 2 {
			key := uint64(script[i+1])
			switch script[i] % 3 {
			case 0:
				c.Add(key)
				live[key]++
			case 1:
				if live[key] > 0 {
					c.Remove(key)
					live[key]--
				}
			case 2:
				// Pure probe; the check below is the assertion.
			}
			if live[key] > 0 && !c.MayContain(key) {
				t.Fatalf("false negative for key %d after op %d", key, i/2)
			}
		}
		for key, n := range live {
			if n > 0 && !c.MayContain(key) {
				t.Fatalf("false negative for live key %d at end of script", key)
			}
		}
	})
}
