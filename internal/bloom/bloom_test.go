package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFilterNoFalseNegatives(t *testing.T) {
	f := NewForCapacity(1000, 0.01)
	for i := uint64(0); i < 1000; i++ {
		f.Add(i)
	}
	for i := uint64(0); i < 1000; i++ {
		if !f.MayContain(i) {
			t.Fatalf("false negative for %d", i)
		}
	}
}

func TestFilterFalsePositiveRateNearTarget(t *testing.T) {
	const n = 5000
	const target = 0.01
	f := NewForCapacity(n, target)
	for i := uint64(0); i < n; i++ {
		f.Add(i)
	}
	fps := 0
	const probes = 100000
	for i := uint64(n); i < n+probes; i++ {
		if f.MayContain(i) {
			fps++
		}
	}
	rate := float64(fps) / probes
	if rate > 3*target {
		t.Errorf("false positive rate %.4f far above target %.4f", rate, target)
	}
	if est := f.EstimatedFPRate(); est > 2*target {
		t.Errorf("estimated rate %.4f above target", est)
	}
}

func TestFilterReset(t *testing.T) {
	f := NewForCapacity(100, 0.01)
	f.Add(42)
	f.Reset()
	if f.MayContain(42) {
		t.Error("contains after reset")
	}
}

func TestOptimalParams(t *testing.T) {
	m, k := OptimalParams(1000, 0.01)
	// Theory: m ≈ 9.59 n, k ≈ 7.
	if m < 9000 || m > 11000 {
		t.Errorf("m = %d, want ~9586", m)
	}
	if k < 6 || k > 8 {
		t.Errorf("k = %d, want ~7", k)
	}
	// Degenerate inputs clamp instead of failing.
	if m, k := OptimalParams(0, -1); m < 64 || k < 1 {
		t.Errorf("degenerate params m=%d k=%d", m, k)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := New(64, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewCounting(0, 1); err == nil {
		t.Error("counting m=0 accepted")
	}
}

func TestCountingAddRemove(t *testing.T) {
	c := NewCountingForCapacity(100, 0.01)
	c.Add(7)
	if !c.MayContain(7) {
		t.Fatal("missing after add")
	}
	c.Remove(7)
	if c.MayContain(7) {
		t.Error("present after remove")
	}
}

func TestCountingMultipleAdds(t *testing.T) {
	c := NewCountingForCapacity(100, 0.01)
	c.Add(7)
	c.Add(7)
	c.Remove(7)
	if !c.MayContain(7) {
		t.Error("one of two insertions removed the key entirely")
	}
	c.Remove(7)
	if c.MayContain(7) {
		t.Error("present after both removed")
	}
}

func TestCountingSaturation(t *testing.T) {
	c, _ := NewCounting(64, 2)
	// Saturate a key's counters.
	for i := 0; i < 100; i++ {
		c.Add(5)
	}
	// Saturated counters never decrement: the key stays visible no
	// matter how many removals happen (safe, no false negatives for
	// other keys sharing the counter).
	for i := 0; i < 200; i++ {
		c.Remove(5)
	}
	if !c.MayContain(5) {
		t.Error("saturated counter decremented")
	}
}

func TestCountingNoFalseNegativesUnderChurn(t *testing.T) {
	c := NewCountingForCapacity(2000, 0.01)
	rng := rand.New(rand.NewSource(1))
	present := map[uint64]int{}
	for step := 0; step < 20000; step++ {
		k := uint64(rng.Intn(3000))
		if rng.Intn(2) == 0 {
			c.Add(k)
			present[k]++
		} else if present[k] > 0 {
			c.Remove(k)
			present[k]--
		}
	}
	for k, cnt := range present {
		if cnt > 0 && !c.MayContain(k) {
			t.Fatalf("false negative for %d (count %d)", k, cnt)
		}
	}
}

func TestMemoryBytes(t *testing.T) {
	f, _ := New(1024, 4)
	if f.MemoryBytes() != 128 {
		t.Errorf("plain memory = %d, want 128", f.MemoryBytes())
	}
	c, _ := NewCounting(1024, 4)
	if c.MemoryBytes() != 512 {
		t.Errorf("counting memory = %d, want 512 (4-bit packed)", c.MemoryBytes())
	}
	if f.K() != 4 || f.M() != 1024 || c.K() != 4 || c.M() != 1024 {
		t.Error("accessors wrong")
	}
}

// Property: anything added to a plain filter is always reported present.
func TestPropFilterNoFalseNegatives(t *testing.T) {
	f := func(keys []uint64) bool {
		fl := NewForCapacity(len(keys)+1, 0.01)
		for _, k := range keys {
			fl.Add(k)
		}
		for _, k := range keys {
			if !fl.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: counting filter with balanced add/remove histories never
// yields a false negative for keys with net positive count.
func TestPropCountingNoFalseNegatives(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCountingForCapacity(len(ops)+1, 0.05)
		count := map[uint64]int{}
		for _, op := range ops {
			k := uint64(rng.Intn(20))
			if op%2 == 0 {
				c.Add(k)
				count[k]++
			} else if count[k] > 0 {
				c.Remove(k)
				count[k]--
			}
		}
		for k, n := range count {
			if n > 0 && !c.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
