// Package bloom implements plain and counting Bloom filters (Bloom
// 1970; counting variant per Fan et al.'s Summary Cache, the paper's
// reference [7]).  The paper's proxies can use a Bloom filter as the
// lookup directory over their P2P client cache (§4.2), trading memory
// for a false-positive ratio; the counting variant supports the
// deletions that client-cache evictions require.
package bloom

import (
	"fmt"
	"math"
)

// Filter is a plain Bloom filter over 64-bit keys.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
	n    uint64 // insertions (for fill-ratio estimation)
}

// OptimalParams returns the bit count m and hash count k minimizing
// memory for the target false-positive probability with n expected
// elements: m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
func OptimalParams(n int, p float64) (m uint64, k int) {
	if n < 1 {
		n = 1
	}
	if p <= 0 {
		p = 1e-9
	}
	if p >= 1 {
		p = 0.99
	}
	ln2 := math.Ln2
	mf := -float64(n) * math.Log(p) / (ln2 * ln2)
	m = uint64(math.Ceil(mf))
	if m < 64 {
		m = 64
	}
	k = int(math.Round(mf / float64(n) * ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return m, k
}

// New creates a filter with m bits and k hash functions.
func New(m uint64, k int) (*Filter, error) {
	if m == 0 || k < 1 {
		return nil, fmt.Errorf("bloom: invalid parameters m=%d k=%d", m, k)
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k}, nil
}

// NewForCapacity sizes a filter for n elements at false-positive rate p.
func NewForCapacity(n int, p float64) *Filter {
	m, k := OptimalParams(n, p)
	f, err := New(m, k)
	if err != nil {
		panic("bloom: optimal parameters invalid: " + err.Error())
	}
	return f
}

// indexes derives the k bit positions for a key by double hashing
// (Kirsch & Mitzenmacher): h_i = h1 + i*h2 mod m.
func (f *Filter) index(key uint64, i int) uint64 {
	h1 := mix64(key)
	h2 := mix64(key ^ 0x9e3779b97f4a7c15)
	h2 |= 1 // keep the stride odd so indexes cycle through the table
	return (h1 + uint64(i)*h2) % f.m
}

// mix64 is the splitmix64 finalizer — a strong 64-bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Add inserts key.
func (f *Filter) Add(key uint64) {
	for i := 0; i < f.k; i++ {
		idx := f.index(key, i)
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// MayContain reports whether key may have been added (no false
// negatives; false positives at the configured rate).
func (f *Filter) MayContain(key uint64) bool {
	for i := 0; i < f.k; i++ {
		idx := f.index(key, i)
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// EstimatedFPRate estimates the current false-positive probability from
// the number of insertions: (1 - e^{-kn/m})^k.
func (f *Filter) EstimatedFPRate() float64 {
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}

// MemoryBytes is the filter's bit-array footprint.
func (f *Filter) MemoryBytes() uint64 { return uint64(len(f.bits)) * 8 }

// K returns the hash count; M the bit count.
func (f *Filter) K() int    { return f.k }
func (f *Filter) M() uint64 { return f.m }

// Counting is a counting Bloom filter with 4-bit counters, supporting
// Remove.  Counters saturate at 15 and, once saturated, are never
// decremented (the standard safe behaviour that preserves the
// no-false-negative guarantee at the cost of rare stuck counters).
// Counters are packed two per byte, so the directory memory the
// simulator reports (§4.2 comparisons) is the memory actually used.
type Counting struct {
	counters []uint8 // 4-bit counters, two per byte: low nibble = even index
	m        uint64
	k        int
	n        uint64
}

const countingMax = 15

// counter reads the 4-bit counter at idx.
func (c *Counting) counter(idx uint64) uint8 {
	return (c.counters[idx/2] >> (4 * (idx % 2))) & 0xf
}

// setCounter writes the 4-bit counter at idx.
func (c *Counting) setCounter(idx uint64, v uint8) {
	shift := 4 * (idx % 2)
	c.counters[idx/2] = c.counters[idx/2]&^(0xf<<shift) | v<<shift
}

// NewCounting creates a counting filter with m counters and k hashes.
func NewCounting(m uint64, k int) (*Counting, error) {
	if m == 0 || k < 1 {
		return nil, fmt.Errorf("bloom: invalid parameters m=%d k=%d", m, k)
	}
	return &Counting{counters: make([]uint8, (m+1)/2), m: m, k: k}, nil
}

// NewCountingForCapacity sizes a counting filter for n elements at
// false-positive rate p.
func NewCountingForCapacity(n int, p float64) *Counting {
	m, k := OptimalParams(n, p)
	c, err := NewCounting(m, k)
	if err != nil {
		panic("bloom: optimal parameters invalid: " + err.Error())
	}
	return c
}

func (c *Counting) index(key uint64, i int) uint64 {
	h1 := mix64(key)
	h2 := mix64(key^0x9e3779b97f4a7c15) | 1
	return (h1 + uint64(i)*h2) % c.m
}

// Add inserts key.
func (c *Counting) Add(key uint64) {
	for i := 0; i < c.k; i++ {
		idx := c.index(key, i)
		if v := c.counter(idx); v < countingMax {
			c.setCounter(idx, v+1)
		}
	}
	c.n++
}

// Remove deletes one insertion of key.  Removing a key that was never
// added corrupts the filter (as with any counting Bloom filter); the
// directory layer guards against it.
func (c *Counting) Remove(key uint64) {
	for i := 0; i < c.k; i++ {
		idx := c.index(key, i)
		if v := c.counter(idx); v > 0 && v < countingMax {
			c.setCounter(idx, v-1)
		}
	}
	if c.n > 0 {
		c.n--
	}
}

// MayContain reports whether key may be present.
func (c *Counting) MayContain(key uint64) bool {
	for i := 0; i < c.k; i++ {
		if c.counter(c.index(key, i)) == 0 {
			return false
		}
	}
	return true
}

// EstimatedFPRate mirrors Filter.EstimatedFPRate.
func (c *Counting) EstimatedFPRate() float64 {
	return math.Pow(1-math.Exp(-float64(c.k)*float64(c.n)/float64(c.m)), float64(c.k))
}

// MemoryBytes reports the counter-array footprint (4-bit counters
// packed two per byte — exactly what the implementation allocates).
func (c *Counting) MemoryBytes() uint64 { return uint64(len(c.counters)) }

// K returns the hash count; M the counter count.
func (c *Counting) K() int    { return c.k }
func (c *Counting) M() uint64 { return c.m }
