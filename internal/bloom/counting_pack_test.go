package bloom

import "testing"

// The counting filter packs two 4-bit counters per byte; these tests
// pin the nibble arithmetic at byte boundaries and the saturation
// semantics the directory layer depends on.

func TestCountingNibbleBoundaries(t *testing.T) {
	c, err := NewCounting(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the raw counters directly: adjacent nibbles must not bleed
	// into each other through the shared byte.
	for idx := uint64(0); idx < 8; idx++ {
		c.setCounter(idx, uint8(idx+1))
	}
	for idx := uint64(0); idx < 8; idx++ {
		if got := c.counter(idx); got != uint8(idx+1) {
			t.Errorf("counter[%d] = %d, want %d", idx, got, idx+1)
		}
	}
	// Overwriting an even nibble leaves its odd neighbour intact and
	// vice versa.
	c.setCounter(2, 15)
	if got := c.counter(3); got != 4 {
		t.Errorf("counter[3] = %d after writing counter[2], want 4", got)
	}
	c.setCounter(3, 0)
	if got := c.counter(2); got != 15 {
		t.Errorf("counter[2] = %d after clearing counter[3], want 15", got)
	}
}

func TestCountingOddM(t *testing.T) {
	// An odd counter count leaves the final byte half used; the last
	// counter must still work and memory must round up.
	c, err := NewCounting(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.MemoryBytes() != 4 {
		t.Errorf("MemoryBytes() = %d for m=7, want 4", c.MemoryBytes())
	}
	c.setCounter(6, 9)
	if got := c.counter(6); got != 9 {
		t.Errorf("last counter = %d, want 9", got)
	}
}

func TestCountingPackedSaturation(t *testing.T) {
	c, err := NewCounting(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	const key = 42
	for i := 0; i < countingMax+10; i++ {
		c.Add(key)
	}
	idx := c.index(key, 0)
	if got := c.counter(idx); got != countingMax {
		t.Errorf("counter = %d after %d adds, want saturation at %d", got, countingMax+10, countingMax)
	}
	// A saturated counter is never decremented, preserving the
	// no-false-negative guarantee.
	for i := 0; i < countingMax+10; i++ {
		c.Remove(key)
	}
	if got := c.counter(idx); got != countingMax {
		t.Errorf("counter = %d after removes, want stuck at %d", got, countingMax)
	}
	if !c.MayContain(key) {
		t.Error("saturated key reported absent")
	}
}

func TestCountingMemoryMatchesAllocation(t *testing.T) {
	for _, m := range []uint64{1, 2, 7, 1024, 100_001} {
		c, err := NewCounting(m, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := c.MemoryBytes(), uint64(len(c.counters)); got != want {
			t.Errorf("m=%d: MemoryBytes() = %d, allocated %d", m, got, want)
		}
		if got, want := c.MemoryBytes(), (m+1)/2; got != want {
			t.Errorf("m=%d: MemoryBytes() = %d, want packed %d", m, got, want)
		}
	}
}
