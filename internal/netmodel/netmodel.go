// Package netmodel defines the network latency model used by the
// cooperative caching simulator.
//
// The paper (§5.1) models the network with four average latencies:
//
//	Ts    proxy  -> origin Web server
//	Tc    proxy  -> cooperating proxy
//	Tl    client -> local proxy
//	Tp2p  client or proxy -> P2P client cache
//
// Latencies are normalized against Ts; the paper's defaults are
// Ts/Tc = 10, Ts/Tl = 20 and Tp2p/Tl = 1.4.  All simulator latency
// accounting goes through a Model so experiments can sweep the ratios
// (Figures 5(a) and 5(b)).
package netmodel

import (
	"errors"
	"fmt"
)

// Default ratio values from the paper (§5.1).
const (
	DefaultServerProxyRatio  = 10.0 // Ts / Tc
	DefaultServerClientRatio = 20.0 // Ts / Tl
	DefaultP2PClientRatio    = 1.4  // Tp2p / Tl
)

// Model holds the resolved latency parameters for one simulation run.
// The zero value is not useful; construct one with New or Default.
type Model struct {
	Ts   float64 // proxy -> origin server
	Tc   float64 // proxy -> cooperating proxy
	Tl   float64 // client -> local proxy
	Tp2p float64 // client/proxy -> P2P client cache

	// PerHop is the additional LAN latency charged per Pastry routing
	// hop beyond the first when HopAware accounting is enabled.  The
	// paper folds routing hops into the single average Tp2p; PerHop
	// lets ablation benches expose the hop count instead.
	PerHop float64
}

// Params selects a Model through the paper's normalized ratios.
type Params struct {
	Ts                float64 // absolute server latency; 1.0 if zero
	ServerProxyRatio  float64 // Ts/Tc; DefaultServerProxyRatio if zero
	ServerClientRatio float64 // Ts/Tl; DefaultServerClientRatio if zero
	P2PClientRatio    float64 // Tp2p/Tl; DefaultP2PClientRatio if zero
	PerHop            float64 // optional per-Pastry-hop LAN latency
}

// ErrBadRatio reports a non-positive latency ratio.
var ErrBadRatio = errors.New("netmodel: latency ratios must be positive")

// New resolves Params into a Model, applying the paper defaults for
// any zero field.
func New(p Params) (Model, error) {
	if p.Ts == 0 {
		p.Ts = 1.0
	}
	if p.ServerProxyRatio == 0 {
		p.ServerProxyRatio = DefaultServerProxyRatio
	}
	if p.ServerClientRatio == 0 {
		p.ServerClientRatio = DefaultServerClientRatio
	}
	if p.P2PClientRatio == 0 {
		p.P2PClientRatio = DefaultP2PClientRatio
	}
	if p.Ts <= 0 || p.ServerProxyRatio <= 0 || p.ServerClientRatio <= 0 || p.P2PClientRatio <= 0 {
		return Model{}, ErrBadRatio
	}
	tl := p.Ts / p.ServerClientRatio
	return Model{
		Ts:     p.Ts,
		Tc:     p.Ts / p.ServerProxyRatio,
		Tl:     tl,
		Tp2p:   tl * p.P2PClientRatio,
		PerHop: p.PerHop,
	}, nil
}

// Default returns the paper's default model: Ts=1, Ts/Tc=10, Ts/Tl=20,
// Tp2p/Tl=1.4.
func Default() Model {
	m, err := New(Params{})
	if err != nil {
		panic("netmodel: default parameters invalid: " + err.Error())
	}
	return m
}

// Source identifies where a request was ultimately served from.
type Source int

const (
	// SrcLocalProxy: hit in the client's local proxy cache.
	SrcLocalProxy Source = iota
	// SrcP2P: hit in the local proxy's own P2P client cache.
	SrcP2P
	// SrcRemoteProxy: served by a cooperating proxy (from its proxy
	// cache or, via the push mechanism, from its P2P client cache).
	SrcRemoteProxy
	// SrcServer: fetched from the origin Web server.
	SrcServer
	numSources
)

// String implements fmt.Stringer for metric labels.
func (s Source) String() string {
	switch s {
	case SrcLocalProxy:
		return "local-proxy"
	case SrcP2P:
		return "p2p-cache"
	case SrcRemoteProxy:
		return "remote-proxy"
	case SrcServer:
		return "server"
	default:
		return fmt.Sprintf("source(%d)", int(s))
	}
}

// NumSources is the number of distinct Source values, for metric arrays.
const NumSources = int(numSources)

// ParseSource is the inverse of Source.String, for consumers (the
// span-trace decomposition) that carry tiers as labels.
func ParseSource(label string) (Source, bool) {
	for s := SrcLocalProxy; s < Source(numSources); s++ {
		if s.String() == label {
			return s, true
		}
	}
	return 0, false
}

// Component names one of the model's four latency components, used to
// tag trace spans with the leg of the network they are charged under.
type Component string

const (
	CompTs   Component = "Ts"   // proxy -> origin server
	CompTc   Component = "Tc"   // proxy -> cooperating proxy
	CompTl   Component = "Tl"   // client -> local proxy
	CompTp2p Component = "Tp2p" // client/proxy -> P2P client cache
)

// ComponentValue returns the model's latency for one component.
func (m Model) ComponentValue(c Component) float64 {
	switch c {
	case CompTs:
		return m.Ts
	case CompTc:
		return m.Tc
	case CompTl:
		return m.Tl
	case CompTp2p:
		return m.Tp2p
	default:
		return 0
	}
}

// ServeComponent returns the component the serving leg beyond the
// mandatory client->proxy hop is charged under; a local-proxy hit has
// no extra leg, so it maps to CompTl.
func ServeComponent(src Source) Component {
	switch src {
	case SrcLocalProxy:
		return CompTl
	case SrcP2P:
		return CompTp2p
	case SrcRemoteProxy:
		return CompTc
	case SrcServer:
		return CompTs
	default:
		return ""
	}
}

// Latency returns the end-to-end latency observed by the client for a
// request served from src.  Every request first travels client->proxy
// (Tl); the serving tier adds its own cost on a miss.
func (m Model) Latency(src Source) float64 {
	switch src {
	case SrcLocalProxy:
		return m.Tl
	case SrcP2P:
		return m.Tl + m.Tp2p
	case SrcRemoteProxy:
		return m.Tl + m.Tc
	case SrcServer:
		return m.Tl + m.Ts
	default:
		panic("netmodel: unknown source")
	}
}

// LatencyHops is Latency for a P2P fetch that took the given number of
// Pastry routing hops: hops beyond the first each add PerHop.  For
// sources other than SrcP2P it matches Latency.
func (m Model) LatencyHops(src Source, hops int) float64 {
	l := m.Latency(src)
	if src == SrcP2P && hops > 1 {
		l += float64(hops-1) * m.PerHop
	}
	return l
}

// FetchCost returns the cost the *proxy* pays to bring the object in
// from src, which is what the greedy-dual and cost-benefit policies use
// as the object's cost.  The client->proxy leg is excluded since it is
// paid on every request regardless.
func (m Model) FetchCost(src Source) float64 {
	switch src {
	case SrcLocalProxy:
		return 0
	case SrcP2P:
		return m.Tp2p
	case SrcRemoteProxy:
		return m.Tc
	case SrcServer:
		return m.Ts
	default:
		panic("netmodel: unknown source")
	}
}

// Validate reports whether the model satisfies the paper's hard
// ordering assumptions: positive latencies, Tl <= Tp2p (routing through
// the overlay cannot be cheaper than one proxy hop), and the server
// strictly slowest (Ts > Tc, Ts > Tp2p).  Tc vs Tp2p is deliberately
// unconstrained: the paper's default has Tp2p < Tc, but its Figure 5(b)
// sweep (Ts/Tl = 5 with Tp2p/Tl fixed at 1.4) produces Tp2p > Tc, so
// enforcing that ordering would reject the paper's own parameter space.
func (m Model) Validate() error {
	switch {
	case m.Tl <= 0 || m.Tp2p <= 0 || m.Tc <= 0 || m.Ts <= 0:
		return fmt.Errorf("netmodel: latencies must be positive: %+v", m)
	case m.Tp2p < m.Tl:
		return fmt.Errorf("netmodel: Tp2p (%g) < Tl (%g)", m.Tp2p, m.Tl)
	case m.Ts <= m.Tc:
		return fmt.Errorf("netmodel: Ts (%g) <= Tc (%g)", m.Ts, m.Tc)
	case m.Ts <= m.Tp2p:
		return fmt.Errorf("netmodel: Ts (%g) <= Tp2p (%g)", m.Ts, m.Tp2p)
	}
	return nil
}

// Gain computes the paper's latency-gain metric: the relative reduction
// in average access latency of scheme X versus the NC baseline,
// 1 - Lx/Lnc, expressed as a fraction in [0, 1) for improvements.
func Gain(lx, lnc float64) float64 {
	if lnc == 0 {
		return 0
	}
	return 1 - lx/lnc
}
