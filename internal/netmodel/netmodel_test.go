package netmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestDefaultRatios(t *testing.T) {
	m := Default()
	if !almostEq(m.Ts/m.Tc, DefaultServerProxyRatio) {
		t.Errorf("Ts/Tc = %g, want %g", m.Ts/m.Tc, DefaultServerProxyRatio)
	}
	if !almostEq(m.Ts/m.Tl, DefaultServerClientRatio) {
		t.Errorf("Ts/Tl = %g, want %g", m.Ts/m.Tl, DefaultServerClientRatio)
	}
	if !almostEq(m.Tp2p/m.Tl, DefaultP2PClientRatio) {
		t.Errorf("Tp2p/Tl = %g, want %g", m.Tp2p/m.Tl, DefaultP2PClientRatio)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestNewZeroFieldsUseDefaults(t *testing.T) {
	m, err := New(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if m != Default() {
		t.Errorf("New(Params{}) = %+v, want Default() %+v", m, Default())
	}
}

func TestNewCustomRatios(t *testing.T) {
	m, err := New(Params{Ts: 2, ServerProxyRatio: 4, ServerClientRatio: 8, P2PClientRatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Tc, 0.5) || !almostEq(m.Tl, 0.25) || !almostEq(m.Tp2p, 0.5) {
		t.Errorf("unexpected model %+v", m)
	}
}

func TestNewRejectsNegativeRatios(t *testing.T) {
	for _, p := range []Params{
		{ServerProxyRatio: -1},
		{ServerClientRatio: -2},
		{P2PClientRatio: -0.5},
		{Ts: -1},
	} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%+v) succeeded, want error", p)
		}
	}
}

func TestLatencyOrdering(t *testing.T) {
	m := Default()
	lp := m.Latency(SrcLocalProxy)
	p2p := m.Latency(SrcP2P)
	rp := m.Latency(SrcRemoteProxy)
	sv := m.Latency(SrcServer)
	if !(lp < p2p && p2p < rp && rp < sv) {
		t.Errorf("latency ordering violated: %g %g %g %g", lp, p2p, rp, sv)
	}
}

func TestLatencyComposition(t *testing.T) {
	m := Default()
	if got := m.Latency(SrcServer); !almostEq(got, m.Tl+m.Ts) {
		t.Errorf("server latency = %g, want Tl+Ts = %g", got, m.Tl+m.Ts)
	}
	if got := m.Latency(SrcP2P); !almostEq(got, m.Tl+m.Tp2p) {
		t.Errorf("p2p latency = %g, want Tl+Tp2p = %g", got, m.Tl+m.Tp2p)
	}
}

func TestLatencyHops(t *testing.T) {
	m := Default()
	m.PerHop = 0.01
	base := m.Latency(SrcP2P)
	if got := m.LatencyHops(SrcP2P, 1); !almostEq(got, base) {
		t.Errorf("1 hop should add nothing: %g vs %g", got, base)
	}
	if got := m.LatencyHops(SrcP2P, 4); !almostEq(got, base+3*0.01) {
		t.Errorf("4 hops = %g, want %g", got, base+0.03)
	}
	// Non-P2P sources ignore hops.
	if got := m.LatencyHops(SrcServer, 7); !almostEq(got, m.Latency(SrcServer)) {
		t.Errorf("server latency with hops = %g, want %g", got, m.Latency(SrcServer))
	}
}

func TestFetchCostExcludesClientLeg(t *testing.T) {
	m := Default()
	if got := m.FetchCost(SrcLocalProxy); got != 0 {
		t.Errorf("local fetch cost = %g, want 0", got)
	}
	if got := m.FetchCost(SrcServer); !almostEq(got, m.Ts) {
		t.Errorf("server fetch cost = %g, want %g", got, m.Ts)
	}
	if got := m.FetchCost(SrcRemoteProxy); !almostEq(got, m.Tc) {
		t.Errorf("remote fetch cost = %g, want %g", got, m.Tc)
	}
	if got := m.FetchCost(SrcP2P); !almostEq(got, m.Tp2p) {
		t.Errorf("p2p fetch cost = %g, want %g", got, m.Tp2p)
	}
}

func TestSourceStrings(t *testing.T) {
	want := map[Source]string{
		SrcLocalProxy:  "local-proxy",
		SrcP2P:         "p2p-cache",
		SrcRemoteProxy: "remote-proxy",
		SrcServer:      "server",
		Source(99):     "source(99)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", int(s), got, w)
		}
	}
}

func TestGain(t *testing.T) {
	cases := []struct{ lx, lnc, want float64 }{
		{1, 1, 0},
		{0.5, 1, 0.5},
		{0.2, 1, 0.8},
		{2, 1, -1}, // regression shows as negative gain
		{1, 0, 0},  // degenerate baseline
	}
	for _, c := range cases {
		if got := Gain(c.lx, c.lnc); !almostEq(got, c.want) {
			t.Errorf("Gain(%g, %g) = %g, want %g", c.lx, c.lnc, got, c.want)
		}
	}
}

func TestValidateCatchesInversions(t *testing.T) {
	m := Default()
	m.Tc = m.Ts * 2
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted Tc > Ts")
	}
	m = Default()
	m.Tp2p = m.Tl / 2
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted Tp2p < Tl")
	}
	m = Default()
	m.Tp2p = m.Ts * 2
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted Tp2p > Ts")
	}
	// Tc < Tp2p is allowed (the paper's Figure 5(b) space).
	m = Default()
	m.Tc = m.Tp2p / 2
	if err := m.Validate(); err != nil {
		t.Errorf("Validate rejected Tc < Tp2p: %v", err)
	}
	m = Default()
	m.Tl = -1
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted negative Tl")
	}
}

// Property: for any positive ratios, the constructed model keeps the
// source-latency ordering local < p2p < remote < server whenever the
// ratios respect the paper's assumptions (Tc < Ts and Tp2p < Tc).
func TestPropLatencyOrdering(t *testing.T) {
	f := func(a, b, c uint8) bool {
		spr := 2 + float64(a%40)        // Ts/Tc in [2, 42)
		scr := spr + 1 + float64(b%40)  // Ts/Tl > Ts/Tc so Tl < Tc
		p2p := 1 + float64(c%100)/100.0 // Tp2p/Tl in [1, 2)
		m, err := New(Params{ServerProxyRatio: spr, ServerClientRatio: scr, P2PClientRatio: p2p})
		if err != nil {
			return false
		}
		if m.Validate() != nil {
			return false
		}
		// The full ordering only holds on the paper's default domain
		// Tp2p < Tc; judge that on the *constructed* model with a small
		// margin so exact ties (e.g. 1.7/34 vs 1/20, both 0.05) cannot
		// flip under floating-point rounding.
		if m.Tc-m.Tp2p <= 1e-9 {
			return true // outside the ordering's domain (Figure 5(b) space)
		}
		return m.Latency(SrcLocalProxy) < m.Latency(SrcP2P) &&
			m.Latency(SrcP2P) < m.Latency(SrcRemoteProxy) &&
			m.Latency(SrcRemoteProxy) < m.Latency(SrcServer)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Gain is monotone — lower scheme latency never yields a
// lower gain.
func TestPropGainMonotone(t *testing.T) {
	f := func(x, y uint16) bool {
		lnc := 1.0
		a := float64(x%1000) / 1000
		b := float64(y%1000) / 1000
		if a > b {
			a, b = b, a
		}
		return Gain(a, lnc) >= Gain(b, lnc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
