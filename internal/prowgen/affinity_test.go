package prowgen

import (
	"testing"

	"webcache/internal/trace"
)

func affinityTrace(t *testing.T, affinity float64) *trace.Trace {
	t.Helper()
	tr, err := Generate(Config{
		NumRequests:     50_000,
		NumObjects:      2_000,
		NumClients:      200,
		NumClusters:     2,
		ClusterAffinity: affinity,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// crossClusterSharing measures the fraction of multi-accessed objects
// referenced by both halves of the client population.
func crossClusterSharing(tr *trace.Trace) float64 {
	type seen struct{ a, b bool }
	byObj := map[trace.ObjectID]*seen{}
	count := map[trace.ObjectID]int{}
	for _, r := range tr.Requests {
		s := byObj[r.Object]
		if s == nil {
			s = &seen{}
			byObj[r.Object] = s
		}
		if int(r.Client) < 100 {
			s.a = true
		} else {
			s.b = true
		}
		count[r.Object]++
	}
	shared, multi := 0, 0
	for obj, s := range byObj {
		if count[obj] < 2 {
			continue
		}
		multi++
		if s.a && s.b {
			shared++
		}
	}
	if multi == 0 {
		return 0
	}
	return float64(shared) / float64(multi)
}

func TestClusterAffinityControlsSharing(t *testing.T) {
	none := crossClusterSharing(affinityTrace(t, 0))
	strong := crossClusterSharing(affinityTrace(t, 0.95))
	if strong >= none {
		t.Errorf("affinity 0.95 sharing %.2f >= homogeneous %.2f", strong, none)
	}
	if none < 0.5 {
		t.Errorf("homogeneous sharing %.2f implausibly low", none)
	}
	if strong > 0.6 {
		t.Errorf("high-affinity sharing %.2f too high", strong)
	}
}

func TestClusterAffinityValidation(t *testing.T) {
	bad := Config{NumRequests: 10_000, NumObjects: 500, NumClients: 100, ClusterAffinity: 1.5}
	if err := bad.Validate(); err == nil {
		t.Error("affinity 1.5 accepted")
	}
	bad = Config{NumRequests: 10_000, NumObjects: 500, NumClients: 3, NumClusters: 10}
	if err := bad.Validate(); err == nil {
		t.Error("more clusters than clients accepted")
	}
}

func TestClusterAffinityKeepsWorkloadShape(t *testing.T) {
	tr := affinityTrace(t, 0.9)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := trace.Analyze(tr)
	if st.DistinctObjs != 2000 {
		t.Errorf("objects = %d", st.DistinctObjs)
	}
	if st.OneTimerFrac < 0.45 || st.OneTimerFrac > 0.55 {
		t.Errorf("one-timer fraction %.2f drifted", st.OneTimerFrac)
	}
}
