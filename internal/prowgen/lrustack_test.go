package prowgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"webcache/internal/trace"
)

func TestLRUStackPushEvict(t *testing.T) {
	s := newLRUStack(3)
	for i := 0; i < 3; i++ {
		if _, ok := s.pushTop(trace.ObjectID(i)); ok {
			t.Fatalf("push %d evicted early", i)
		}
	}
	ev, ok := s.pushTop(4)
	if !ok || ev != 0 {
		t.Fatalf("pushing 4th object: evicted=%v ok=%v, want 0 true", ev, ok)
	}
	if s.size() != 3 {
		t.Fatalf("size = %d, want 3", s.size())
	}
	if s.contains(0) {
		t.Error("evicted object still present")
	}
}

func TestLRUStackMoveToTopChangesEvictionOrder(t *testing.T) {
	s := newLRUStack(3)
	s.pushTop(1)
	s.pushTop(2)
	s.pushTop(3)
	s.moveToTop(1) // order bottom->top now: 2 3 1
	ev, ok := s.pushTop(4)
	if !ok || ev != 2 {
		t.Fatalf("evicted %v ok=%v, want 2 true", ev, ok)
	}
}

func TestLRUStackPushDuplicateMovesToTop(t *testing.T) {
	s := newLRUStack(3)
	s.pushTop(1)
	s.pushTop(2)
	if _, ok := s.pushTop(1); ok {
		t.Fatal("duplicate push evicted")
	}
	if s.size() != 2 {
		t.Fatalf("size = %d, want 2", s.size())
	}
	s.pushTop(3)
	ev, ok := s.pushTop(4)
	if !ok || ev != 2 {
		t.Fatalf("evicted %v, want 2 (1 was refreshed)", ev)
	}
}

func TestLRUStackRemove(t *testing.T) {
	s := newLRUStack(4)
	for i := 1; i <= 4; i++ {
		s.pushTop(trace.ObjectID(i))
	}
	s.remove(2)
	if s.size() != 3 || s.contains(2) {
		t.Fatalf("remove failed: size=%d contains=%v", s.size(), s.contains(2))
	}
	// Remaining order bottom->top: 1 3 4.
	ev, _ := s.pushTop(5)
	if s.size() != 4 {
		t.Fatalf("size after refill = %d", s.size())
	}
	_ = ev
	ev2, ok := s.pushTop(6)
	if !ok || ev2 != 1 {
		t.Fatalf("evicted %v, want 1", ev2)
	}
}

func TestLRUStackSampleBiasedToTop(t *testing.T) {
	s := newLRUStack(100)
	for i := 0; i < 100; i++ {
		s.pushTop(trace.ObjectID(i))
	}
	rng := rand.New(rand.NewSource(1))
	topHits, bottomHits := 0, 0
	for i := 0; i < 20000; i++ {
		o := s.sample(rng)
		if o >= 90 { // top decile (pushed last)
			topHits++
		}
		if o < 10 { // bottom decile
			bottomHits++
		}
	}
	if topHits <= 3*bottomHits {
		t.Errorf("sampling not top-biased: top=%d bottom=%d", topHits, bottomHits)
	}
}

func TestLRUStackCompaction(t *testing.T) {
	s := newLRUStack(8)
	// Push enough to force many evictions and trigger compaction.
	for i := 0; i < 5000; i++ {
		s.pushTop(trace.ObjectID(i))
	}
	if s.size() != 8 {
		t.Fatalf("size = %d, want 8", s.size())
	}
	// The 8 newest must be present and sampleable.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		o := s.sample(rng)
		if o < 4992 {
			t.Fatalf("sampled stale object %d", o)
		}
	}
	if len(s.items) > 64 {
		t.Errorf("backing array not compacted: len=%d", len(s.items))
	}
}

// Property: after an arbitrary operation sequence, the stack never
// exceeds capacity, pos agrees with items, and contains() matches
// membership.
func TestPropLRUStackInvariants(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newLRUStack(10)
		live := map[trace.ObjectID]bool{}
		next := trace.ObjectID(0)
		for _, op := range ops {
			switch op % 3 {
			case 0: // push new
				ev, ok := s.pushTop(next)
				live[next] = true
				if ok {
					if !live[ev] {
						return false
					}
					delete(live, ev)
				}
				next++
			case 1: // move random live element to top
				if len(live) > 0 {
					o := anyKey(live, rng)
					s.moveToTop(o)
				}
			case 2: // remove random live element
				if len(live) > 0 {
					o := anyKey(live, rng)
					s.remove(o)
					delete(live, o)
				}
			}
			if s.size() != len(live) || s.size() > 10 {
				return false
			}
			for o := range live {
				if !s.contains(o) {
					return false
				}
			}
			// pos map must index items correctly
			for o, i := range s.pos {
				if s.items[i] != o {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func anyKey(m map[trace.ObjectID]bool, rng *rand.Rand) trace.ObjectID {
	// Deterministic selection independent of map iteration order.
	var min trace.ObjectID
	first := true
	n := rng.Intn(len(m))
	_ = n
	for k := range m {
		if first || k < min {
			min = k
			first = false
		}
	}
	return min
}
