package prowgen

import (
	"fmt"
	"sort"
	"strings"
)

// Preset workload families.  Beyond the UCB Home-IP reconstruction the
// paper uses, the proxy-caching literature the paper builds on
// (Breslau et al.; Busari & Williamson) characterizes several trace
// families by the same first-order statistics ProWGen parameterizes.
// These presets encode the published characterizations so experiments
// can sweep across realistic workload shapes, not just the defaults.
//
// Each preset fixes OneTimerFrac, Alpha, StackFrac and the
// requests-per-object density; callers scale NumRequests and the
// generator derives NumObjects.

// Preset describes one trace family.
type Preset struct {
	// Name identifies the family.
	Name string
	// Description cites what the parameters encode.
	Description string
	// Alpha is the Zipf popularity exponent.
	Alpha float64
	// OneTimerFrac is the fraction of one-time-referenced objects.
	OneTimerFrac float64
	// StackFrac is the LRU-stack temporal-locality knob.
	StackFrac float64
	// ReqsPerObject densifies or thins the object universe.
	ReqsPerObject float64
}

// The built-in families.
var presets = []Preset{
	{
		Name: "paper-default",
		Description: "the paper's §5.1 synthetic default: 50% one-timers, " +
			"alpha 0.7, 100 requests per object",
		Alpha: 0.7, OneTimerFrac: 0.5, StackFrac: 0.2, ReqsPerObject: 100,
	},
	{
		Name: "ucb-homeip",
		Description: "UC Berkeley Home-IP dial-in population: alpha ~0.74, " +
			"57% one-timers, weak locality (see GenerateUCB for the " +
			"full reconstruction with diurnal timestamps)",
		Alpha: UCBAlpha, OneTimerFrac: UCBOneTimerFrac, StackFrac: UCBStackFrac,
		ReqsPerObject: UCBReqsPerObject,
	},
	{
		Name: "dec-isp",
		Description: "DEC corporate gateway family: alpha ~0.77 " +
			"(Breslau et al.), ~60% one-timers, moderate locality",
		Alpha: 0.77, OneTimerFrac: 0.60, StackFrac: 0.15, ReqsPerObject: 4.5,
	},
	{
		Name: "edu-campus",
		Description: "university campus proxies (BU/UPisa family): " +
			"stronger sharing, alpha ~0.83, ~45% one-timers, strong " +
			"locality from lab sessions",
		Alpha: 0.83, OneTimerFrac: 0.45, StackFrac: 0.35, ReqsPerObject: 8,
	},
	{
		Name: "backbone-nlanr",
		Description: "NLANR backbone caches: aggregated traffic flattens " +
			"popularity (alpha ~0.64) and raises one-timers (~70%)",
		Alpha: 0.64, OneTimerFrac: 0.70, StackFrac: 0.08, ReqsPerObject: 2.5,
	},
}

// Presets lists the built-in families, sorted by name.
func Presets() []Preset {
	out := append([]Preset(nil), presets...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupPreset finds a family by name (case-insensitive).
func LookupPreset(name string) (Preset, error) {
	for _, p := range presets {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	var names []string
	for _, p := range Presets() {
		names = append(names, p.Name)
	}
	return Preset{}, fmt.Errorf("prowgen: unknown preset %q (have %s)", name, strings.Join(names, ", "))
}

// Config builds a generator configuration for the family at the given
// request count.  Clients defaults to the generator default when 0.
func (p Preset) Config(numRequests int, clients int, seed int64) Config {
	if clients == 0 {
		clients = DefaultNumClients
	}
	objects := int(float64(numRequests) / p.ReqsPerObject)
	if objects < 100 {
		objects = 100
	}
	// Guarantee every object can be introduced (plus one re-reference
	// for the multi-accessed).
	multi := int((1 - p.OneTimerFrac) * float64(objects))
	if min := objects + multi; numRequests < min {
		numRequests = min
	}
	return Config{
		NumRequests:  numRequests,
		NumObjects:   objects,
		NumClients:   clients,
		OneTimerFrac: p.OneTimerFrac,
		Alpha:        p.Alpha,
		StackFrac:    p.StackFrac,
		Seed:         seed,
	}
}

// GeneratePreset is the one-call form: build the family's config and
// generate the trace.
func GeneratePreset(name string, numRequests int, seed int64) (*Preset, Config, error) {
	p, err := LookupPreset(name)
	if err != nil {
		return nil, Config{}, err
	}
	cfg := p.Config(numRequests, 0, seed)
	return &p, cfg, nil
}
