package prowgen

import (
	"math"
	"math/rand"

	"webcache/internal/trace"
)

// lruStack is the finite LRU stack of ProWGen's temporal-locality
// model.  Referenced objects move to the top; new objects push in at
// the top; when the stack exceeds its capacity the bottom (least
// recently referenced) object falls out.
//
// Re-references sample a stack *position* with probability proportional
// to 1/(position+1) from the top, so recently referenced objects are
// re-referenced soonest — that is the temporal locality.  The slice is
// kept dense with the top at the end; because sampled positions cluster
// near the top, the shifts done by moveToTop/remove touch only a few
// elements on average.
type lruStack struct {
	capacity int
	items    []trace.ObjectID // dense in [head, len(items)); top at the end
	head     int
	pos      map[trace.ObjectID]int // absolute index into items
}

func newLRUStack(capacity int) *lruStack {
	return &lruStack{
		capacity: capacity,
		pos:      make(map[trace.ObjectID]int, capacity+1),
	}
}

func (s *lruStack) size() int { return len(s.items) - s.head }

func (s *lruStack) contains(obj trace.ObjectID) bool {
	_, ok := s.pos[obj]
	return ok
}

// pushTop pushes obj onto the top of the stack.  If that overflows the
// capacity, the bottom object is evicted and returned with ok=true.
func (s *lruStack) pushTop(obj trace.ObjectID) (evicted trace.ObjectID, ok bool) {
	if _, dup := s.pos[obj]; dup {
		s.moveToTop(obj)
		return 0, false
	}
	s.items = append(s.items, obj)
	s.pos[obj] = len(s.items) - 1
	if s.size() > s.capacity {
		evicted = s.items[s.head]
		delete(s.pos, evicted)
		s.head++
		ok = true
		s.maybeCompact()
	}
	return evicted, ok
}

// moveToTop moves an in-stack object to the top position.
func (s *lruStack) moveToTop(obj trace.ObjectID) {
	i, ok := s.pos[obj]
	if !ok {
		panic("prowgen: moveToTop of object not in stack")
	}
	last := len(s.items) - 1
	if i == last {
		return
	}
	copy(s.items[i:], s.items[i+1:])
	s.items[last] = obj
	for j := i; j < last; j++ {
		s.pos[s.items[j]] = j
	}
	s.pos[obj] = last
}

// remove deletes an in-stack object (its reference quota is exhausted).
func (s *lruStack) remove(obj trace.ObjectID) {
	i, ok := s.pos[obj]
	if !ok {
		panic("prowgen: remove of object not in stack")
	}
	delete(s.pos, obj)
	last := len(s.items) - 1
	copy(s.items[i:], s.items[i+1:])
	s.items = s.items[:last]
	for j := i; j < last; j++ {
		s.pos[s.items[j]] = j
	}
}

// sample draws an object at a harmonic-weighted position from the top:
// P(position p) ~ 1/(p+1), p=0 at the top.  The inverse-CDF of the
// harmonic distribution over k positions is p = floor(exp(u*ln(k+1)))-1.
func (s *lruStack) sample(rng *rand.Rand) trace.ObjectID {
	k := s.size()
	if k == 0 {
		panic("prowgen: sample from empty stack")
	}
	u := rng.Float64()
	p := int(math.Exp(u*math.Log(float64(k+1)))) - 1
	if p < 0 {
		p = 0
	}
	if p >= k {
		p = k - 1
	}
	return s.items[len(s.items)-1-p]
}

// maybeCompact reclaims the dead prefix left behind by bottom
// evictions once it dominates the backing array.
func (s *lruStack) maybeCompact() {
	if s.head < 2*s.capacity || s.head < len(s.items)/2 {
		return
	}
	n := copy(s.items, s.items[s.head:])
	s.items = s.items[:n]
	s.head = 0
	for j, obj := range s.items {
		s.pos[obj] = j
	}
}
