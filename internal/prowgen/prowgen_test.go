package prowgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"webcache/internal/trace"
)

// smallCfg is a fast configuration used across the tests.
func smallCfg(seed int64) Config {
	return Config{
		NumRequests:  50_000,
		NumObjects:   2_000,
		NumClients:   100,
		OneTimerFrac: 0.5,
		Alpha:        0.7,
		StackFrac:    0.2,
		Seed:         seed,
	}
}

func TestGenerateExactCounts(t *testing.T) {
	cfg := smallCfg(1)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != cfg.NumRequests {
		t.Fatalf("got %d requests, want %d", tr.Len(), cfg.NumRequests)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	s := trace.Analyze(tr)
	if s.DistinctObjs != cfg.NumObjects {
		t.Errorf("distinct objects = %d, want %d", s.DistinctObjs, cfg.NumObjects)
	}
}

func TestGenerateOneTimerFraction(t *testing.T) {
	cfg := smallCfg(2)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Analyze(tr)
	if math.Abs(s.OneTimerFrac-cfg.OneTimerFrac) > 0.01 {
		t.Errorf("one-timer fraction = %g, want ~%g", s.OneTimerFrac, cfg.OneTimerFrac)
	}
	// Every non-one-timer must be referenced at least twice by construction.
	if s.MultiAccessed != s.DistinctObjs-s.OneTimers {
		t.Errorf("multi-accessed %d + one-timers %d != distinct %d", s.MultiAccessed, s.OneTimers, s.DistinctObjs)
	}
}

func TestGenerateZipfAlpha(t *testing.T) {
	for _, alpha := range []float64{0.5, 0.7, 1.0} {
		cfg := smallCfg(3)
		cfg.Alpha = alpha
		cfg.NumRequests = 200_000
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := trace.Analyze(tr)
		if math.Abs(s.ZipfAlpha-alpha) > 0.2 {
			t.Errorf("alpha=%g: measured %g", alpha, s.ZipfAlpha)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(smallCfg(1))
	b, _ := Generate(smallCfg(2))
	same := 0
	for i := range a.Requests {
		if a.Requests[i].Object == b.Requests[i].Object {
			same++
		}
	}
	if same == a.Len() {
		t.Error("different seeds produced identical object streams")
	}
}

// Temporal locality: with a larger LRU stack, re-references should land
// closer (in stack distance) to their previous reference.  We measure
// the median inter-reference gap and expect it to grow as the stack
// shrinks.
func TestStackSizeControlsTemporalLocality(t *testing.T) {
	medGap := func(stackFrac float64) float64 {
		cfg := smallCfg(11)
		cfg.StackFrac = stackFrac
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last := make(map[trace.ObjectID]int)
		var gaps []int
		for i, r := range tr.Requests {
			if p, ok := last[r.Object]; ok {
				gaps = append(gaps, i-p)
			}
			last[r.Object] = i
		}
		if len(gaps) == 0 {
			t.Fatal("no re-references")
		}
		// median
		sum := 0.0
		for _, g := range gaps {
			sum += float64(g)
		}
		return sum / float64(len(gaps))
	}
	small := medGap(0.05)
	large := medGap(0.6)
	if large >= small {
		t.Errorf("mean re-reference gap: stack 5%% -> %.0f, stack 60%% -> %.0f; want smaller gap for larger stack", small, large)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{NumRequests: -1, NumObjects: 10, NumClients: 1, OneTimerFrac: 0.5, Alpha: 0.7, StackFrac: 0.2},
		{NumRequests: 100, NumObjects: 10, NumClients: 1, OneTimerFrac: 1.5, Alpha: 0.7, StackFrac: 0.2},
		{NumRequests: 100, NumObjects: 10, NumClients: 1, OneTimerFrac: 0.5, Alpha: -1, StackFrac: 0.2},
		{NumRequests: 100, NumObjects: 10, NumClients: 1, OneTimerFrac: 0.5, Alpha: 0.7, StackFrac: 0},
		// too few requests to introduce every object twice
		{NumRequests: 12, NumObjects: 10, NumClients: 1, OneTimerFrac: 0.5, Alpha: 0.7, StackFrac: 0.2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGenerateAppliesDefaults(t *testing.T) {
	// A zero config must resolve to the paper defaults; use a reduced
	// request count to keep the test quick but leave the rest zero.
	tr, err := Generate(Config{NumRequests: 30_000, NumObjects: 1500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumClients != DefaultNumClients {
		t.Errorf("NumClients = %d, want default %d", tr.NumClients, DefaultNumClients)
	}
}

func TestZipfFrequencies(t *testing.T) {
	fs := zipfFrequencies(100, 5000, 0.7)
	sum := 0
	for i, f := range fs {
		if f < 2 {
			t.Fatalf("rank %d has frequency %d < 2", i, f)
		}
		if i > 0 && f > fs[i-1] {
			t.Fatalf("frequencies not non-increasing at rank %d: %d > %d", i, f, fs[i-1])
		}
		sum += f
	}
	if sum != 5000 {
		t.Fatalf("frequencies sum to %d, want 5000", sum)
	}
}

// Property: zipfFrequencies always sums exactly to the requested total
// and respects the >=2 floor.
func TestPropZipfFrequencies(t *testing.T) {
	f := func(n8 uint8, extra uint16, a uint8) bool {
		n := int(n8)%200 + 1
		total := 2*n + int(extra)%5000
		alpha := 0.3 + float64(a%15)/10 // 0.3..1.7
		fs := zipfFrequencies(n, total, alpha)
		sum := 0
		for _, v := range fs {
			if v < 2 {
				return false
			}
			sum += v
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSampleSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := SampleSizes(rng, 10000)
	var max uint32
	var sum float64
	for _, v := range s {
		if v < 1 {
			t.Fatal("size below 1 KB")
		}
		if v > max {
			max = v
		}
		sum += float64(v)
	}
	mean := sum / float64(len(s))
	if mean < 2 || mean > 200 {
		t.Errorf("mean size %.1f KB implausible", mean)
	}
	if max <= 100 {
		t.Errorf("no heavy tail: max size %d KB", max)
	}
}

func TestVariableSizesInTrace(t *testing.T) {
	cfg := smallCfg(9)
	cfg.VariableSizes = true
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make(map[trace.ObjectID]uint32)
	diverse := false
	var first uint32
	for i, r := range tr.Requests {
		if prev, ok := sizes[r.Object]; ok && prev != r.Size {
			t.Fatalf("object %d changed size %d -> %d", r.Object, prev, r.Size)
		}
		sizes[r.Object] = r.Size
		if i == 0 {
			first = r.Size
		} else if r.Size != first {
			diverse = true
		}
	}
	if !diverse {
		t.Error("variable sizes requested but all sizes equal")
	}
}

func TestGenerateUCB(t *testing.T) {
	tr, err := GenerateUCB(UCBConfig{Scale: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("UCB trace invalid: %v", err)
	}
	s := trace.Analyze(tr)
	if math.Abs(s.OneTimerFrac-UCBOneTimerFrac) > 0.02 {
		t.Errorf("one-timer fraction %g, want ~%g", s.OneTimerFrac, UCBOneTimerFrac)
	}
	rpo := float64(s.Requests) / float64(s.DistinctObjs)
	if math.Abs(rpo-UCBReqsPerObject) > 0.3 {
		t.Errorf("requests/object = %g, want ~%g", rpo, UCBReqsPerObject)
	}
	// Times must span multiple days.
	span := tr.Requests[len(tr.Requests)-1].Time - tr.Requests[0].Time
	if span < 86400*(UCBDays-1) {
		t.Errorf("trace spans %d seconds, want ~%d days", span, UCBDays)
	}
}

func TestGenerateUCBRejectsBadScale(t *testing.T) {
	if _, err := GenerateUCB(UCBConfig{Scale: 2}); err == nil {
		t.Error("scale 2 accepted")
	}
	if _, err := GenerateUCB(UCBConfig{Scale: -0.5}); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestDiurnalModulation(t *testing.T) {
	tr, err := GenerateUCB(UCBConfig{Scale: 0.01, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Bucket requests by hour of day: the evening peak should carry
	// substantially more traffic than the overnight trough.
	var byHour [24]int
	for _, r := range tr.Requests {
		byHour[(r.Time/3600)%24]++
	}
	min, max := byHour[0], byHour[0]
	for _, c := range byHour {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max < 3*min {
		t.Errorf("diurnal modulation too weak: min %d max %d per hour", min, max)
	}
}
