package prowgen

import (
	"fmt"
	"math"

	"webcache/internal/trace"
)

// The paper's second workload is the UC Berkeley Home-IP HTTP trace
// (ita.ee.lbl.gov): 18 days of dial-in client traffic, 9,244,728
// requests.  The original trace is no longer distributable, so this
// file reconstructs a UCB-like workload with that trace family's
// published first-order statistics (see DESIGN.md §2 for the
// substitution argument):
//
//   - Zipf-like popularity with alpha ≈ 0.74 (Breslau et al. report
//     0.64–0.83 for proxy traces; Home-IP sits mid-range);
//   - a high one-time-referencing fraction (~57% of distinct objects);
//   - roughly 3.5 requests per distinct object;
//   - weaker temporal locality than ProWGen's defaults (dial-in users,
//     long inter-session gaps) — modeled with a small LRU stack;
//   - diurnal request-rate modulation over the 18-day span.
//
// The caching schemes observe only the (client, object) reference
// stream, so matching these statistics reproduces the *shape* the paper
// reports in Figure 2(b): lower absolute gains than the synthetic
// workload, with the same scheme ordering.

// UCB trace family constants.
const (
	UCBRequests      = 9_244_728
	UCBDays          = 18
	UCBAlpha         = 0.74
	UCBOneTimerFrac  = 0.57
	UCBReqsPerObject = 3.5
	UCBStackFrac     = 0.08
	UCBClients       = 5000
)

// UCBConfig scales the reconstruction.  Scale=1 reproduces the full
// 9.2M-request trace; the test suite and default benches use smaller
// scales to stay fast.
type UCBConfig struct {
	// Scale multiplies the request count (0 < Scale <= 1; default 1).
	Scale float64
	// Clients overrides the client population (default scales with
	// the trace so per-client request counts stay realistic).
	Clients int
	// Seed drives the generator.
	Seed int64
}

// GenerateUCB synthesizes the UCB-like trace.
func GenerateUCB(cfg UCBConfig) (*trace.Trace, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if cfg.Scale < 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("prowgen: UCB scale %g outside (0,1]", cfg.Scale)
	}
	reqs := int(float64(UCBRequests) * cfg.Scale)
	objs := int(float64(reqs) / UCBReqsPerObject)
	clients := cfg.Clients
	if clients == 0 {
		clients = int(float64(UCBClients) * math.Sqrt(cfg.Scale))
		if clients < 100 {
			clients = 100
		}
	}
	t, err := Generate(Config{
		NumRequests:  reqs,
		NumObjects:   objs,
		NumClients:   clients,
		OneTimerFrac: UCBOneTimerFrac,
		Alpha:        UCBAlpha,
		StackFrac:    UCBStackFrac,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("prowgen: UCB generation: %w", err)
	}
	applyDiurnalTimes(t, UCBDays)
	return t, nil
}

// applyDiurnalTimes rewrites request timestamps so the request rate
// follows a day/night pattern over the given number of days: a broad
// daytime plateau peaking in the evening (dial-in usage) and a deep
// overnight trough.  The stream order is unchanged, so the reference
// pattern the caches see is untouched — only wall-clock realism is
// added.
func applyDiurnalTimes(t *trace.Trace, days int) {
	const buckets = 24
	// Relative request rate per hour of day (dial-in evening peak).
	var hourWeight [buckets]float64
	for h := 0; h < buckets; h++ {
		// Trough ~4am, peak ~8pm.
		hourWeight[h] = 1.0 + 0.9*math.Sin(2*math.Pi*(float64(h)-10)/24)
	}
	// Cumulative weight over the whole span.
	total := 0.0
	cum := make([]float64, days*buckets+1)
	for i := 0; i < days*buckets; i++ {
		total += hourWeight[i%buckets]
		cum[i+1] = total
	}
	n := len(t.Requests)
	spanSeconds := float64(days * 86400)
	bucketSeconds := spanSeconds / float64(days*buckets)
	// Request i sits at cumulative-rate fraction (i+0.5)/n; invert the
	// piecewise-linear CDF to a timestamp.
	j := 0
	for i := range t.Requests {
		target := total * (float64(i) + 0.5) / float64(n)
		for j+1 < len(cum) && cum[j+1] < target {
			j++
		}
		frac := 0.0
		if w := cum[j+1] - cum[j]; w > 0 {
			frac = (target - cum[j]) / w
		}
		t.Requests[i].Time = uint32((float64(j) + frac) * bucketSeconds)
	}
}
