package prowgen

import (
	"math"
	"testing"

	"webcache/internal/trace"
)

func TestPresetsListed(t *testing.T) {
	ps := Presets()
	if len(ps) < 5 {
		t.Fatalf("only %d presets", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Name >= ps[i].Name {
			t.Fatalf("presets not sorted: %q >= %q", ps[i-1].Name, ps[i].Name)
		}
	}
	for _, p := range ps {
		if p.Description == "" || p.Alpha <= 0 || p.ReqsPerObject <= 0 {
			t.Errorf("preset %q incomplete: %+v", p.Name, p)
		}
	}
}

func TestLookupPreset(t *testing.T) {
	if _, err := LookupPreset("UCB-HOMEIP"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := LookupPreset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestPresetStatisticsRealized(t *testing.T) {
	for _, p := range Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			cfg := p.Config(120_000, 0, 11)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("config invalid: %v", err)
			}
			tr, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			st := trace.Analyze(tr)
			if math.Abs(st.OneTimerFrac-p.OneTimerFrac) > 0.02 {
				t.Errorf("one-timers %.2f, want ~%.2f", st.OneTimerFrac, p.OneTimerFrac)
			}
			rpo := float64(st.Requests) / float64(st.DistinctObjs)
			// Dense presets introduce every object, so the realized
			// density tracks the target closely.
			if math.Abs(rpo-p.ReqsPerObject)/p.ReqsPerObject > 0.15 {
				t.Errorf("reqs/object %.1f, want ~%.1f", rpo, p.ReqsPerObject)
			}
			if math.Abs(st.ZipfAlpha-p.Alpha) > 0.25 {
				t.Errorf("alpha %.2f, want ~%.2f", st.ZipfAlpha, p.Alpha)
			}
		})
	}
}

func TestPresetTinyRequestCountClamped(t *testing.T) {
	p, err := LookupPreset("backbone-nlanr")
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config(50, 0, 1) // absurdly small: floors kick in
	if err := cfg.Validate(); err != nil {
		t.Fatalf("clamped config invalid: %v", err)
	}
	if _, err := Generate(cfg); err != nil {
		t.Fatalf("clamped generate failed: %v", err)
	}
}

func TestGeneratePresetHelper(t *testing.T) {
	p, cfg, err := GeneratePreset("dec-isp", 50_000, 3)
	if err != nil || p.Name != "dec-isp" {
		t.Fatalf("%v %v", p, err)
	}
	if cfg.NumRequests < 50_000 {
		t.Errorf("requests %d", cfg.NumRequests)
	}
	if _, _, err := GeneratePreset("missing", 1000, 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

// Families differ measurably: the backbone preset must show weaker
// locality (larger reuse distances) than the campus preset.
func TestPresetLocalityOrdering(t *testing.T) {
	gen := func(name string) *trace.Trace {
		p, cfg, err := GeneratePreset(name, 60_000, 5)
		_ = p
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	campus := trace.AnalyzeLocality(gen("edu-campus"))
	backbone := trace.AnalyzeLocality(gen("backbone-nlanr"))
	// Normalize by the universe: compare median distance relative to
	// distinct objects.
	cm := float64(campus.MedianDistance) / float64(trace.Analyze(gen("edu-campus")).DistinctObjs)
	bm := float64(backbone.MedianDistance) / float64(trace.Analyze(gen("backbone-nlanr")).DistinctObjs)
	if cm >= bm {
		t.Errorf("campus relative median distance %.3f >= backbone %.3f", cm, bm)
	}
}
