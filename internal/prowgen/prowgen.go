// Package prowgen reimplements the ProWGen Web proxy workload
// generator (Busari & Williamson, INFOCOM 2001) that the paper uses to
// produce its synthetic traces (§5.1).
//
// ProWGen models five workload characteristics; the paper exercises the
// first four (objects are unit-size in its experiments):
//
//  1. one-time referencing — a configurable fraction of objects is
//     referenced exactly once;
//  2. object popularity — multi-accessed objects follow a Zipf-like
//     distribution with exponent alpha;
//  3. number of distinct objects;
//  4. temporal locality — a finite LRU stack model: re-references are
//     drawn preferentially from near the top of a bounded LRU stack, so
//     a larger stack means more references exhibit temporal locality;
//  5. file sizes — lognormal body with a heavy Pareto tail (optional
//     here; the paper fixes Size=1).
//
// All randomness is drawn from the caller's seed, making traces fully
// reproducible.
package prowgen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"webcache/internal/trace"
)

// Config selects a synthetic workload.  Zero fields take the paper's
// defaults (§5.1): one million requests over 10,000 distinct objects,
// 50% one-timers, alpha 0.7.
type Config struct {
	// NumRequests is the total number of references to generate.
	NumRequests int
	// NumObjects is the number of distinct objects referenced.
	NumObjects int
	// NumClients is the client population the references are spread
	// over (uniformly, so client sub-populations are statistically
	// identical as the paper assumes).
	NumClients int
	// OneTimerFrac is the fraction of distinct objects referenced
	// exactly once (paper default 0.5).
	OneTimerFrac float64
	// Alpha is the Zipf popularity exponent (paper default 0.7).
	Alpha float64
	// StackFrac is the LRU stack size as a fraction of the number of
	// multi-accessed objects (the paper sweeps 5%–60%; default 20%).
	StackFrac float64
	// RequestsPerSecond spaces the synthetic timestamps (default 10).
	RequestsPerSecond float64
	// VariableSizes enables the lognormal/Pareto size model instead of
	// the paper's unit-size assumption.
	VariableSizes bool
	// NumClusters and ClusterAffinity break the paper's "statistically
	// identical client populations" assumption: clients are divided
	// into NumClusters equal groups, each object gets a home cluster,
	// and each of an object's references comes from its home cluster
	// with probability ClusterAffinity (uniform otherwise).  Affinity
	// 0 (or NumClusters <= 1) reproduces the paper's homogeneous
	// setting; affinity 1 makes organizational interests disjoint,
	// which starves inter-proxy sharing — the heterogeneity extension
	// explored by BenchmarkClusterAffinity.
	NumClusters     int
	ClusterAffinity float64
	// Seed drives all generator randomness.
	Seed int64
}

// Paper-default workload parameters.
const (
	DefaultNumRequests  = 1_000_000
	DefaultNumObjects   = 10_000
	DefaultNumClients   = 200
	DefaultOneTimerFrac = 0.5
	DefaultAlpha        = 0.7
	DefaultStackFrac    = 0.2
)

// Default returns the paper's default synthetic workload configuration.
func Default() Config {
	return Config{
		NumRequests:  DefaultNumRequests,
		NumObjects:   DefaultNumObjects,
		NumClients:   DefaultNumClients,
		OneTimerFrac: DefaultOneTimerFrac,
		Alpha:        DefaultAlpha,
		StackFrac:    DefaultStackFrac,
	}
}

func (c *Config) fillDefaults() {
	d := Default()
	if c.NumRequests == 0 {
		c.NumRequests = d.NumRequests
	}
	if c.NumObjects == 0 {
		c.NumObjects = d.NumObjects
	}
	if c.NumClients == 0 {
		c.NumClients = d.NumClients
	}
	if c.OneTimerFrac == 0 {
		c.OneTimerFrac = d.OneTimerFrac
	}
	if c.Alpha == 0 {
		c.Alpha = d.Alpha
	}
	if c.StackFrac == 0 {
		c.StackFrac = d.StackFrac
	}
	if c.RequestsPerSecond == 0 {
		c.RequestsPerSecond = 10
	}
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	switch {
	case c.NumRequests <= 0 || c.NumObjects <= 0 || c.NumClients <= 0:
		return fmt.Errorf("prowgen: counts must be positive: %+v", c)
	case c.OneTimerFrac < 0 || c.OneTimerFrac >= 1:
		return fmt.Errorf("prowgen: one-timer fraction %g outside [0,1)", c.OneTimerFrac)
	case c.Alpha <= 0 || c.Alpha > 2:
		return fmt.Errorf("prowgen: alpha %g outside (0,2]", c.Alpha)
	case c.StackFrac <= 0 || c.StackFrac > 1:
		return fmt.Errorf("prowgen: stack fraction %g outside (0,1]", c.StackFrac)
	}
	oneTimers := int(c.OneTimerFrac * float64(c.NumObjects))
	multi := c.NumObjects - oneTimers
	if multi <= 0 {
		return errors.New("prowgen: no multi-accessed objects")
	}
	if need := oneTimers + 2*multi; c.NumRequests < need {
		return fmt.Errorf("prowgen: %d requests cannot cover %d objects (need >= %d)", c.NumRequests, c.NumObjects, need)
	}
	if c.ClusterAffinity < 0 || c.ClusterAffinity > 1 {
		return fmt.Errorf("prowgen: cluster affinity %g outside [0,1]", c.ClusterAffinity)
	}
	if c.NumClusters < 0 || (c.NumClusters > 1 && c.NumClients < c.NumClusters) {
		return fmt.Errorf("prowgen: %d clusters need at least that many clients (%d)", c.NumClusters, c.NumClients)
	}
	return nil
}

// Generate produces a trace for the configuration.
func Generate(cfg Config) (*trace.Trace, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	oneTimers := int(cfg.OneTimerFrac * float64(cfg.NumObjects))
	multi := cfg.NumObjects - oneTimers
	rerefBudget := cfg.NumRequests - cfg.NumObjects // references beyond each object's introduction

	freqs := zipfFrequencies(multi, rerefBudget+multi, cfg.Alpha)

	// Random permutation decouples object id from popularity rank and
	// one-timer status.
	perm := rng.Perm(cfg.NumObjects)
	// intro order: every object appears exactly once, shuffled.
	intro := make([]trace.ObjectID, cfg.NumObjects)
	remaining := make([]int, cfg.NumObjects) // re-references left per object id
	for rank, id := range perm[:multi] {
		intro[id] = trace.ObjectID(id)
		remaining[id] = freqs[rank] - 1
	}
	for _, id := range perm[multi:] {
		intro[id] = trace.ObjectID(id)
		remaining[id] = 0
	}
	rng.Shuffle(len(intro), func(i, j int) { intro[i], intro[j] = intro[j], intro[i] })

	stackCap := int(cfg.StackFrac * float64(multi))
	if stackCap < 1 {
		stackCap = 1
	}
	g := &generator{
		rng:       rng,
		remaining: remaining,
		stack:     newLRUStack(stackCap),
	}

	sizes := unitSizes(cfg.NumObjects)
	if cfg.VariableSizes {
		sizes = SampleSizes(rng, cfg.NumObjects)
	}

	// Client selection: homogeneous (the paper's assumption) or
	// cluster-affine.  Cluster c owns the contiguous client range
	// [c*per, (c+1)*per) so it aligns with the simulator's
	// client->proxy mapping when NumClusters == NumProxies.
	pickClient := func(trace.ObjectID) trace.ClientID {
		return trace.ClientID(rng.Intn(cfg.NumClients))
	}
	if cfg.NumClusters > 1 && cfg.ClusterAffinity > 0 {
		per := cfg.NumClients / cfg.NumClusters
		home := make([]int, cfg.NumObjects)
		for i := range home {
			home[i] = rng.Intn(cfg.NumClusters)
		}
		pickClient = func(obj trace.ObjectID) trace.ClientID {
			if rng.Float64() >= cfg.ClusterAffinity {
				return trace.ClientID(rng.Intn(cfg.NumClients))
			}
			c := home[obj]
			lo := c * per
			hi := lo + per
			if c == cfg.NumClusters-1 {
				hi = cfg.NumClients
			}
			return trace.ClientID(lo + rng.Intn(hi-lo))
		}
	}

	t := &trace.Trace{
		Requests:   make([]trace.Request, 0, cfg.NumRequests),
		NumClients: cfg.NumClients,
		NumObjects: cfg.NumObjects,
	}
	introsLeft := len(intro)
	introPos := 0
	rerefsLeft := rerefBudget
	for i := 0; i < cfg.NumRequests; i++ {
		var obj trace.ObjectID
		// Choose introduction vs re-reference in proportion to the
		// *eligible* pending mass (re-references of already-introduced
		// objects).  Weighting by eligible mass rather than the global
		// re-reference budget keeps freshly introduced objects from
		// having their whole quota burned immediately, which would
		// destroy the popularity/locality structure.  Exactness is
		// preserved: each step consumes one introduction or one
		// re-reference, and introsLeft+rerefsLeft equals the steps
		// remaining.
		eligible := g.stackMass + len(g.pool)
		wantIntro := introsLeft > 0 && (eligible == 0 || rng.Intn(introsLeft+eligible) < introsLeft)
		if wantIntro {
			obj = intro[introPos]
			introPos++
			introsLeft--
			if g.remaining[obj] > 0 {
				g.push(obj)
			}
		} else {
			obj = g.reref()
			rerefsLeft--
		}
		tm := uint32(float64(i) / cfg.RequestsPerSecond)
		t.Requests = append(t.Requests, trace.Request{
			Time:   tm,
			Client: pickClient(obj),
			Object: obj,
			Size:   sizes[obj],
		})
	}
	return t, nil
}

// generator holds the LRU-stack temporal-locality state during a run.
type generator struct {
	rng       *rand.Rand
	remaining []int // re-references left per object
	stack     *lruStack
	stackMass int // sum of remaining[] over objects currently in the stack
	// pool holds individual pending re-references for objects that
	// fell out of the stack: they are replayed without temporal
	// locality, uniformly over the rest of the trace.
	pool []trace.ObjectID
}

// push puts an object on top of the stack, spilling any overflow's
// pending re-references into the random pool.
func (g *generator) push(obj trace.ObjectID) {
	g.stackMass += g.remaining[obj]
	if evicted, ok := g.stack.pushTop(obj); ok {
		g.stackMass -= g.remaining[evicted]
		for j := 0; j < g.remaining[evicted]; j++ {
			g.pool = append(g.pool, evicted)
		}
		g.remaining[evicted] = 0 // accounted for in the pool now
	}
}

// reref emits one re-reference, preferring the LRU stack (temporal
// locality) in proportion to the pending mass it holds.
func (g *generator) reref() trace.ObjectID {
	total := g.stackMass + len(g.pool)
	if total == 0 {
		panic("prowgen: re-reference requested with no pending mass")
	}
	if g.rng.Intn(total) < g.stackMass {
		obj := g.stack.sample(g.rng)
		g.remaining[obj]--
		g.stackMass--
		if g.remaining[obj] == 0 {
			g.stack.remove(obj)
		} else {
			g.stack.moveToTop(obj)
		}
		return obj
	}
	// Uniform draw from the locality-free pool.
	i := g.rng.Intn(len(g.pool))
	obj := g.pool[i]
	g.pool[i] = g.pool[len(g.pool)-1]
	g.pool = g.pool[:len(g.pool)-1]
	return obj
}

// zipfFrequencies returns per-rank reference counts for n multi-accessed
// objects summing exactly to total, each at least 2, skewed as 1/i^alpha.
func zipfFrequencies(n, total int, alpha float64) []int {
	if total < 2*n {
		panic("prowgen: total too small for multi-accessed minimum")
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), alpha)
		sum += w[i]
	}
	freqs := make([]int, n)
	spare := total - 2*n // mass above the per-object minimum of 2
	assigned := 0
	for i := range freqs {
		extra := int(float64(spare) * w[i] / sum)
		freqs[i] = 2 + extra
		assigned += extra
	}
	// Distribute rounding leftover to the most popular ranks.
	for left := spare - assigned; left > 0; left-- {
		freqs[(spare-left)%n]++
	}
	return freqs
}

func unitSizes(n int) []uint32 {
	s := make([]uint32, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// SampleSizes draws object sizes from ProWGen's hybrid model: a
// lognormal body (median ~4 KB) with a Pareto tail (shape 1.2) for the
// largest ~7% of objects.  Sizes are in kilobytes, minimum 1.
func SampleSizes(rng *rand.Rand, n int) []uint32 {
	const (
		logMean   = 1.5 // ln KB; median ~4.5 KB
		logStddev = 1.1
		tailFrac  = 0.07
		paretoK   = 10.0 // tail scale, KB
		paretoA   = 1.2  // tail shape
	)
	s := make([]uint32, n)
	for i := range s {
		var kb float64
		if rng.Float64() < tailFrac {
			kb = paretoK / math.Pow(1-rng.Float64(), 1/paretoA)
			if kb > 1<<20 { // clamp pathological tail draws at 1 GB
				kb = 1 << 20
			}
		} else {
			kb = math.Exp(rng.NormFloat64()*logStddev + logMean)
		}
		if kb < 1 {
			kb = 1
		}
		s[i] = uint32(kb)
	}
	return s
}
