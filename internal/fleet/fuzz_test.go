package fleet

import (
	"fmt"
	"testing"

	"webcache/internal/trace"
)

// FuzzFleetRingChurn drives the ring through a byte-scripted churn
// sequence (each byte: low 5 bits pick a member, top bit picks
// add/remove) and checks the ownership invariants after every step:
// owners and replicas are always current members, replicas are
// distinct with the owner first, and a membership change never moves
// a key between two uninvolved members.
func FuzzFleetRingChurn(f *testing.F) {
	f.Add([]byte{0x80, 0x81, 0x82, 0x01, 0x83})
	f.Add([]byte{0x80, 0x00, 0x80, 0x00})
	f.Add([]byte{0x9f, 0x8a, 0x0a, 0x85, 0x9f, 0x1f})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		// Few vnodes keeps each step cheap under the fuzzer.
		ring := NewRing(16)
		keys := make([]trace.ObjectID, 64)
		for i := range keys {
			keys[i] = trace.ObjectID(uint64(i)*0x9e3779b97f4a7c15 + 1)
		}
		owner := make(map[trace.ObjectID]string)
		for _, op := range script {
			m := fmt.Sprintf("m%02d", op&0x1f)
			var changed string
			if op&0x80 != 0 {
				if ring.Add(m) {
					changed = m
				}
			} else {
				if ring.Remove(m) {
					changed = m
				}
			}
			mem := map[string]bool{}
			for _, name := range ring.Members() {
				mem[name] = true
			}
			if ring.Size() != len(mem) {
				t.Fatalf("Size=%d but %d members listed", ring.Size(), len(mem))
			}
			for _, k := range keys {
				o, ok := ring.OwnerOf(k)
				if !ok {
					if ring.Size() != 0 {
						t.Fatalf("no owner for %x on non-empty ring", k)
					}
					delete(owner, k)
					continue
				}
				if !mem[o] {
					t.Fatalf("owner %q of %x is not a member", o, k)
				}
				reps := ring.ReplicasOf(k, 3)
				if len(reps) == 0 || reps[0] != o {
					t.Fatalf("replicas %v of %x do not lead with owner %q", reps, k, o)
				}
				seen := map[string]bool{}
				for _, r := range reps {
					if !mem[r] || seen[r] {
						t.Fatalf("bad replica set %v for %x", reps, k)
					}
					seen[r] = true
				}
				// Minimal-disruption invariant: a key may change owner
				// only if the changed member is its old or new owner.
				if prev, had := owner[k]; had && changed != "" && prev != o {
					if prev != changed && o != changed {
						t.Fatalf("key %x moved %q->%q on churn of %q", k, prev, o, changed)
					}
				}
				owner[k] = o
			}
		}
	})
}
