package fleet

import (
	"sort"
	"sync"

	"webcache/internal/trace"
)

// LoadTracker estimates per-key request load at one member with a
// bounded counter table.  When the table fills, every counter is
// halved and zeroed entries dropped (the classic TinyLFU-style aging
// trick), so sustained traffic cannot grow it without bound and stale
// hot keys decay instead of pinning replicas forever.
type LoadTracker struct {
	mu    sync.Mutex
	max   int
	count map[trace.ObjectID]uint32
}

// DefaultLoadKeys bounds the tracker table; 4096 hot-key slots cover
// the head of a Zipf popularity curve many times over.
const DefaultLoadKeys = 4096

// NewLoadTracker creates a tracker holding at most max keys
// (0 = DefaultLoadKeys).
func NewLoadTracker(max int) *LoadTracker {
	if max <= 0 {
		max = DefaultLoadKeys
	}
	return &LoadTracker{max: max, count: make(map[trace.ObjectID]uint32)}
}

// Touch records one request for key and returns its updated count.
func (t *LoadTracker) Touch(key trace.ObjectID) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.count[key]; !ok && len(t.count) >= t.max {
		for k, c := range t.count {
			c /= 2
			if c == 0 {
				delete(t.count, k)
			} else {
				t.count[k] = c
			}
		}
	}
	t.count[key]++
	return t.count[key]
}

// Count returns the current estimate for key.
func (t *LoadTracker) Count(key trace.ObjectID) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count[key]
}

// Total returns the sum of all counters — the member's aggregate load
// estimate, reported over heartbeats for load-aware placement.
func (t *LoadTracker) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s uint64
	for _, c := range t.count {
		s += uint64(c)
	}
	return s
}

// Len returns the tracked-key count.
func (t *LoadTracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.count)
}

// MemberLoads holds the last load figure heard from each fleet member
// (via heartbeats live, or direct reads in the simulator) plus a local
// in-flight count, and orders replica candidates least-loaded first.
type MemberLoads struct {
	mu       sync.Mutex
	reported map[string]uint64
	inflight map[string]int64
}

// NewMemberLoads creates an empty load view.
func NewMemberLoads() *MemberLoads {
	return &MemberLoads{
		reported: make(map[string]uint64),
		inflight: make(map[string]int64),
	}
}

// Report records a member's self-reported load.
func (l *MemberLoads) Report(member string, load uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reported[member] = load
}

// Acquire marks one request in flight to member; call the returned
// release when it completes.  In-flight weight breaks ties between
// members whose heartbeat loads are equal or stale.
func (l *MemberLoads) Acquire(member string) (release func()) {
	l.mu.Lock()
	l.inflight[member]++
	l.mu.Unlock()
	return func() {
		l.mu.Lock()
		l.inflight[member]--
		l.mu.Unlock()
	}
}

// loadOf is the comparable load figure: reported load plus a strong
// in-flight penalty (each outstanding request counts like a burst of
// reported work, so fan-out spreads even before heartbeats refresh).
func (l *MemberLoads) loadOf(member string) uint64 {
	load := l.reported[member]
	if f := l.inflight[member]; f > 0 {
		load += uint64(f) * 64
	}
	return load
}

// Load returns the current figure for one member.
func (l *MemberLoads) Load(member string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loadOf(member)
}

// Order sorts candidates least-loaded first (stable: ring order breaks
// ties, keeping selection deterministic when loads are equal).  The
// input slice is not modified.
func (l *MemberLoads) Order(candidates []string) []string {
	out := append([]string(nil), candidates...)
	l.mu.Lock()
	defer l.mu.Unlock()
	sort.SliceStable(out, func(a, b int) bool {
		return l.loadOf(out[a]) < l.loadOf(out[b])
	})
	return out
}
