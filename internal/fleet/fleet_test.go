package fleet

import (
	"fmt"
	"math/rand"
	"testing"

	"webcache/internal/pastry"
	"webcache/internal/trace"
)

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://proxy-%d:8080", i)
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	// Two rings built from the same member list in different orders
	// must agree on every ownership decision — that is what lets each
	// proxy compute the ring locally with no coordination.
	a := NewRingOf(0, members(5))
	b := NewRing(0)
	for i := 4; i >= 0; i-- {
		b.Add(members(5)[i])
	}
	for i := 0; i < 10000; i++ {
		key := trace.ObjectID(rand.Uint64())
		oa, _ := a.OwnerOf(key)
		ob, _ := b.OwnerOf(key)
		if oa != ob {
			t.Fatalf("key %x: owner %q vs %q under insertion-order change", key, oa, ob)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.OwnerOf(1); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if got := r.ReplicasOf(1, 3); got != nil {
		t.Fatalf("empty ring returned replicas %v", got)
	}
	if r.Remove("nobody") {
		t.Fatal("removing a non-member reported a change")
	}
}

func TestRingBalance(t *testing.T) {
	// With 128 vnodes the per-member share of a large key sample
	// should stay within a loose band of the 1/N mean.
	const n, keys = 8, 200000
	r := NewRingOf(0, members(n))
	counts := make(map[string]int)
	for i := 0; i < keys; i++ {
		o, ok := r.OwnerOf(trace.ObjectID(rand.Uint64()))
		if !ok {
			t.Fatal("no owner")
		}
		counts[o]++
	}
	mean := float64(keys) / n
	for m, c := range counts {
		if ratio := float64(c) / mean; ratio < 0.5 || ratio > 1.5 {
			t.Fatalf("member %s owns %.2fx the mean share (%d keys)", m, ratio, c)
		}
	}
}

func TestReplicasDistinctAndOwnerFirst(t *testing.T) {
	r := NewRingOf(0, members(5))
	for i := 0; i < 5000; i++ {
		key := trace.ObjectID(rand.Uint64())
		reps := r.ReplicasOf(key, 3)
		if len(reps) != 3 {
			t.Fatalf("key %x: got %d replicas, want 3", key, len(reps))
		}
		owner, _ := r.OwnerOf(key)
		if reps[0] != owner {
			t.Fatalf("key %x: replicas[0]=%q, owner=%q", key, reps[0], owner)
		}
		seen := map[string]bool{}
		for _, m := range reps {
			if seen[m] {
				t.Fatalf("key %x: duplicate replica %q in %v", key, m, reps)
			}
			seen[m] = true
		}
	}
	// k larger than the fleet clamps to the fleet.
	if got := len(r.ReplicasOf(42, 99)); got != 5 {
		t.Fatalf("oversized k returned %d replicas, want 5", got)
	}
}

func TestRemoveOnlyMovesRemovedMembersKeys(t *testing.T) {
	// The consistent-hash contract: dropping one member reassigns only
	// the keys that member owned; everything else keeps its owner.
	r := NewRingOf(0, members(6))
	victim := members(6)[3]
	keys := make([]trace.ObjectID, 20000)
	before := make([]string, len(keys))
	for i := range keys {
		keys[i] = trace.ObjectID(rand.Uint64())
		before[i], _ = r.OwnerOf(keys[i])
	}
	r.Remove(victim)
	for i, key := range keys {
		after, _ := r.OwnerOf(key)
		if before[i] != victim && after != before[i] {
			t.Fatalf("key %x moved %q -> %q though %q was removed", key, before[i], after, victim)
		}
		if before[i] == victim && after == victim {
			t.Fatalf("key %x still owned by removed member", key)
		}
	}
}

func TestFoldMatchesHTTPCacheFolding(t *testing.T) {
	// Pin the folding formula: httpcache delegates to this.
	id := pastry.HashString("http://origin/obj/7")
	want := trace.ObjectID(id[0] ^ (id[1]<<31 | id[1]>>33))
	if got := Fold(id); got != want {
		t.Fatalf("Fold = %x, want %x", got, want)
	}
	if KeyForURL("http://origin/obj/7") != want {
		t.Fatal("KeyForURL disagrees with Fold(HashString)")
	}
}

func TestLoadTrackerDecay(t *testing.T) {
	tr := NewLoadTracker(4)
	for i := 0; i < 10; i++ {
		tr.Touch(1)
	}
	tr.Touch(2)
	tr.Touch(3)
	tr.Touch(4)
	if tr.Len() != 4 {
		t.Fatalf("len=%d, want 4", tr.Len())
	}
	// A fifth distinct key triggers the halving pass: key 1 keeps half
	// its count, the single-touch keys vanish.
	tr.Touch(5)
	if c := tr.Count(1); c != 5 {
		t.Fatalf("hot key count after decay = %d, want 5", c)
	}
	if tr.Count(2) != 0 || tr.Count(3) != 0 {
		t.Fatal("cold keys survived decay")
	}
	if tr.Count(5) != 1 {
		t.Fatal("new key not recorded after decay")
	}
}

func TestMemberLoadsOrder(t *testing.T) {
	l := NewMemberLoads()
	l.Report("a", 300)
	l.Report("b", 100)
	l.Report("c", 200)
	got := l.Order([]string{"a", "b", "c"})
	if got[0] != "b" || got[1] != "c" || got[2] != "a" {
		t.Fatalf("order = %v, want [b c a]", got)
	}
	// In-flight weight outranks a small reported-load edge.
	rel := l.Acquire("b")
	rel2 := l.Acquire("b")
	got = l.Order([]string{"a", "b", "c"})
	if got[0] != "c" {
		t.Fatalf("order with b busy = %v, want c first", got)
	}
	rel()
	rel2()
	if l.Load("b") != 100 {
		t.Fatalf("load after release = %d, want 100", l.Load("b"))
	}
	// Unknown members sort first (zero load) but ties keep ring order.
	got = l.Order([]string{"x", "y"})
	if got[0] != "x" || got[1] != "y" {
		t.Fatalf("tie order = %v, want [x y]", got)
	}
}
