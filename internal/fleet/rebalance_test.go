package fleet

import (
	"fmt"
	"math/rand"
	"testing"

	"webcache/internal/trace"
)

// TestMigrationSetProperty is the rebalance-correctness property test:
// across random join/leave churn, MigrationSet names exactly the keys
// whose ownership left self — no more (wasted copies) and no fewer
// (lost objects once the local copy is later evicted).
func TestMigrationSetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for round := 0; round < 20; round++ {
		n := 2 + rng.Intn(6)
		ring := NewRingOf(0, members(n))
		keys := make([]trace.ObjectID, 3000)
		for i := range keys {
			keys[i] = trace.ObjectID(rng.Uint64())
		}
		for step := 0; step < 8; step++ {
			self := members(n)[rng.Intn(n)]
			if !ring.Has(self) {
				continue
			}
			before := ring.Clone()
			// Random membership event: join a fresh member or drop an
			// existing one (never self — a leaving member migrates its
			// whole partition, covered below).
			var event string
			if rng.Intn(2) == 0 {
				m := fmt.Sprintf("http://joiner-%d-%d:8080", round, step)
				ring.Add(m)
				event = "join " + m
			} else {
				cands := ring.Members()
				m := cands[rng.Intn(len(cands))]
				if m == self || ring.Size() == 1 {
					continue
				}
				ring.Remove(m)
				event = "leave " + m
			}

			migrated := map[trace.ObjectID]bool{}
			for _, k := range MigrationSet(before, ring, self, keys) {
				migrated[k] = true
			}
			for _, k := range keys {
				was, _ := before.OwnerOf(k)
				now, _ := ring.OwnerOf(k)
				shouldMove := was == self && now != self
				if shouldMove && !migrated[k] {
					t.Fatalf("%s: key %x moved %q->%q but missing from MigrationSet (lost object)",
						event, k, was, now)
				}
				if !shouldMove && migrated[k] {
					t.Fatalf("%s: key %x (owner %q->%q, self %q) migrated needlessly",
						event, k, was, now, self)
				}
			}
		}
	}
}

// TestMigrationSetLeaveSelf covers the departing member's own drain:
// with self removed from the after ring, every key self owned must be
// in the migration set (zero acknowledged-object loss on leave).
func TestMigrationSetLeaveSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ring := NewRingOf(0, members(4))
	self := members(4)[1]
	keys := make([]trace.ObjectID, 5000)
	owned := 0
	for i := range keys {
		keys[i] = trace.ObjectID(rng.Uint64())
		if o, _ := ring.OwnerOf(keys[i]); o == self {
			owned++
		}
	}
	after := ring.Clone()
	after.Remove(self)
	set := MigrationSet(ring, after, self, keys)
	if len(set) != owned {
		t.Fatalf("leave migrates %d keys, self owned %d — loss window", len(set), owned)
	}
	for _, k := range set {
		if o, _ := after.OwnerOf(k); o == self {
			t.Fatalf("key %x migrated to the departed member", k)
		}
	}
}
