// Package fleet turns a set of cooperating proxies into one
// horizontally scaled cache tier (ROADMAP item 2): a consistent-hash
// ring with virtual nodes partitions the object namespace across the
// members, per-key load estimates drive k-way replication of hot
// objects, and a membership diff answers exactly which keys must
// migrate when a member joins or leaves.
//
// The package is pure data structures — no sockets, no goroutines —
// so the same ring drives three consumers: the live proxy daemons
// (internal/httpcache routes misses to the owner and rebalances on
// join/leave), the simulator's fleet engine (internal/sim), and the
// load generator's by-key request routing (internal/loadgen).  The
// replication blueprint follows PAPERS.md's cluster-based replication
// and QoS-aware replica management architectures: partition first,
// then replicate the hot tail with load-aware placement.
package fleet

import (
	"math/bits"
	"sort"
	"sync"

	"webcache/internal/pastry"
	"webcache/internal/trace"
)

// DefaultVirtualNodes is the per-member virtual-node count.  128
// points per member keeps the largest partition within ~20% of the
// mean at fleet sizes up to a few dozen — enough that splitting a
// fixed capacity N ways does not strand it on one hot member.
const DefaultVirtualNodes = 128

// Fold compresses a 128-bit pastry objectId into the 64-bit key the
// data plane uses everywhere (the same folding internal/httpcache
// applies; defined here so the ring, the proxies, and the load
// generator derive identical keys from one formula).
func Fold(id pastry.ID) trace.ObjectID {
	return trace.ObjectID(id[0] ^ bits.RotateLeft64(id[1], 31))
}

// KeyForURL derives the fleet routing key of an object URL: the
// paper's hash-of-URL objectId (§4.1), folded.
func KeyForURL(url string) trace.ObjectID {
	return Fold(pastry.HashString(url))
}

// point is one virtual node: a position on the 64-bit ring owned by a
// member.
type point struct {
	h      uint64
	member string
}

// Ring is a consistent-hash ring over fleet members (proxy base URLs
// or any other stable member names).  Placement is deterministic in
// the member names alone — every member that builds a ring from the
// same list computes the same ownership, with no seed exchange.
// Methods are safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []point // sorted by h
	member map[string]bool
}

// NewRing creates an empty ring with the given virtual-node count per
// member (0 = DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, member: make(map[string]bool)}
}

// NewRingOf builds a ring over the given members.
func NewRingOf(vnodes int, members []string) *Ring {
	r := NewRing(vnodes)
	for _, m := range members {
		r.Add(m)
	}
	return r
}

// pointHash places virtual node i of a member: FNV-1a over the member
// name and the vnode index (deterministic, seedless).
func pointHash(member string, i int) uint64 {
	h := uint64(14695981039346656037)
	step := func(c byte) {
		h ^= uint64(c)
		h *= 1099511628211
	}
	for j := 0; j < len(member); j++ {
		step(member[j])
	}
	step('#')
	for ; ; i >>= 8 {
		step(byte(i))
		if i < 256 {
			break
		}
	}
	// FNV's upper bits avalanche poorly on short, similar inputs
	// ("proxy-0" vs "proxy-7"), and ring ordering is dominated by the
	// upper bits — finalize with splitmix64 to spread the points.
	return mix64(h)
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// keyPoint maps an (already hashed) object key onto the ring via a
// splitmix64 finalizer, decorrelating it from the vnode point space.
func keyPoint(key trace.ObjectID) uint64 {
	return mix64(uint64(key) + 0x9e3779b97f4a7c15)
}

// Add inserts a member (its vnodes), reporting whether the membership
// changed.
func (r *Ring) Add(member string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if member == "" || r.member[member] {
		return false
	}
	r.member[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{pointHash(member, i), member})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].h < r.points[b].h })
	return true
}

// Remove drops a member, reporting whether the membership changed.
func (r *Ring) Remove(member string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.member[member] {
		return false
	}
	delete(r.member, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Has reports membership.
func (r *Ring) Has(member string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.member[member]
}

// Members returns the member names, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.member))
	for m := range r.member {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size is the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.member)
}

// Clone returns an independent copy of the ring — the "before"
// snapshot a rebalance diff needs.
func (r *Ring) Clone() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Ring{vnodes: r.vnodes, member: make(map[string]bool, len(r.member))}
	for m := range r.member {
		c.member[m] = true
	}
	c.points = append([]point(nil), r.points...)
	return c
}

// OwnerOf returns the member owning key: the first virtual node at or
// clockwise after the key's ring position.  false on an empty ring.
func (r *Ring) OwnerOf(key trace.ObjectID) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	h := keyPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	return r.points[i%len(r.points)].member, true
}

// ReplicasOf returns the key's replica candidate set: the owner
// followed by the next distinct members clockwise, min(k, Size)
// entries.  Index 0 is always the owner, so ReplicasOf(key, 1)[0] ==
// OwnerOf(key).
func (r *Ring) ReplicasOf(key trace.ObjectID, k int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || k <= 0 {
		return nil
	}
	if k > len(r.member) {
		k = len(r.member)
	}
	h := keyPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	out := make([]string, 0, k)
	seen := make(map[string]bool, k)
	for n := 0; n < len(r.points) && len(out) < k; n++ {
		m := r.points[(i+n)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// MigrationSet computes the incremental-rebalance work for one member:
// of the keys the member currently holds, exactly those it owned under
// the before ring whose owner differs under the after ring.  Everything
// else stays put — the consistent-hash guarantee a join/leave rebalance
// is gated on (only ~1/N of the space moves per membership change).
func MigrationSet(before, after *Ring, self string, keys []trace.ObjectID) []trace.ObjectID {
	var out []trace.ObjectID
	for _, key := range keys {
		was, ok := before.OwnerOf(key)
		if !ok || was != self {
			continue
		}
		now, ok := after.OwnerOf(key)
		if ok && now != self {
			out = append(out, key)
		}
	}
	return out
}
