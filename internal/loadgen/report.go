package loadgen

import (
	"fmt"
	"strings"
	"time"
)

// fmtDur renders a latency at report precision.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// Table renders the run as the bench's human-readable report: issue
// counts, per-tier shares, and the latency quantile table.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s-loop: issued %d in %s (%.0f req/s achieved)",
		r.Mode, r.Issued, r.Elapsed.Round(time.Millisecond), r.AchievedRate)
	if r.WarmupDiscarded > 0 {
		fmt.Fprintf(&b, ", warmup discarded %d", r.WarmupDiscarded)
	}
	if r.Throttled > 0 {
		fmt.Fprintf(&b, ", throttled %d", r.Throttled)
	}
	fmt.Fprintf(&b, "\n%-13s %8s %7s  %9s %9s %9s %9s %9s\n",
		"tier", "requests", "share", "p50", "p90", "p99", "p999", "max")
	row := func(name string, count int, share float64, h *Histogram) {
		s := h.Summary()
		fmt.Fprintf(&b, "%-13s %8d %6.1f%%  %9s %9s %9s %9s %9s\n",
			name, count, 100*share,
			fmtDur(s.P50), fmtDur(s.P90), fmtDur(s.P99), fmtDur(s.P999), fmtDur(s.Max))
	}
	for t := Tier(0); t < Tier(numTiers); t++ {
		if r.Tiers[t] == 0 {
			continue
		}
		row(t.String(), r.Tiers[t], r.HitRatio(t), r.PerTier[t])
	}
	row("overall", r.Measured, 1.0, r.Overall)
	if r.PerClass != nil {
		classTable(&b, r.PerClass)
	}
	return b.String()
}

// Summary flattens the run into manifest-note form.
func (r *Result) SummaryNote() map[string]any {
	tiers := map[string]any{}
	for t := Tier(0); t < Tier(numTiers); t++ {
		if r.Tiers[t] == 0 {
			continue
		}
		tiers[t.String()] = map[string]any{
			"requests":  r.Tiers[t],
			"hit_ratio": r.HitRatio(t),
			"latency":   r.PerTier[t].Summary(),
		}
	}
	note := map[string]any{
		"mode":             r.Mode.String(),
		"issued":           r.Issued,
		"measured":         r.Measured,
		"errors":           r.Errors,
		"warmup_discarded": r.WarmupDiscarded,
		"throttled":        r.Throttled,
		"elapsed_seconds":  r.Elapsed.Seconds(),
		"achieved_rate":    r.AchievedRate,
		"aggregate_hit":    r.AggregateHitRatio(),
		"tiers":            tiers,
		"overall_latency":  r.Overall.Summary(),
	}
	if r.PerClass != nil {
		classes := map[string]any{}
		for name, c := range r.PerClass {
			if name == "" {
				name = "untagged"
			}
			classes[name] = map[string]any{
				"requests":  c.Requests,
				"errors":    c.Errors,
				"hit_ratio": c.HitRatio(),
				"latency":   c.Latency.Summary(),
			}
		}
		note["classes"] = classes
	}
	return note
}
