package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"webcache/internal/httpcache"
	"webcache/internal/obs"
)

// TopologyConfig sizes a loopback deployment: an origin, Proxies
// cooperating proxies (full mesh), and CachesPerProxy client-cache
// daemons registered with each.
type TopologyConfig struct {
	Proxies        int
	CachesPerProxy int
	// ProxyCapacityBytes is per-proxy (one element applies to all);
	// CacheCapacityBytes likewise per client-cache daemon.
	ProxyCapacityBytes []uint64
	CacheCapacityBytes []uint64
	// ObjectBytes is the origin's body size for every object: with the
	// simulator's unit-size traces, capacity_units * ObjectBytes byte
	// caches hold exactly capacity_units objects, keeping the live
	// topology unit-for-unit comparable with a sim capacity plan.
	ObjectBytes int
	// Policy and Shards pass through to every daemon's data plane
	// (httpcache.Options): the replacement policy by registry name
	// ("" = greedy-dual) and the store's lock-stripe count (0 = auto).
	Policy string
	Shards int
	// Tracer, when non-nil, is shared by every daemon: each records its
	// hop of a propagated trace id into the one collector (wall clock).
	Tracer *obs.Tracer
	// Metrics, when non-nil, backs every daemon's /metrics endpoint.
	// Shared: a scrape of daemon D refreshes D's gauges synchronously
	// before exposition, so each response reflects the scraped daemon.
	Metrics *obs.Registry
}

// Topology is a running loopback deployment.  Everything listens on
// 127.0.0.1 ephemeral ports; Close shuts the servers down gracefully.
type Topology struct {
	OriginURL string
	ProxyURLs []string
	Proxies   []*httpcache.Proxy

	servers []*http.Server
}

// pick resolves a per-index capacity from a one-or-per-index slice.
func pick(caps []uint64, i int) (uint64, error) {
	switch {
	case len(caps) == 0:
		return 0, fmt.Errorf("loadgen: empty capacity list")
	case i < len(caps):
		return caps[i], nil
	default:
		return caps[len(caps)-1], nil
	}
}

// StartLoopback stands the topology up.  On error, anything already
// started is shut down.
func StartLoopback(cfg TopologyConfig) (*Topology, error) {
	if cfg.Proxies < 1 || cfg.CachesPerProxy < 0 {
		return nil, fmt.Errorf("loadgen: bad topology %d proxies x %d caches", cfg.Proxies, cfg.CachesPerProxy)
	}
	if cfg.ObjectBytes < 1 {
		return nil, fmt.Errorf("loadgen: object size %d bytes", cfg.ObjectBytes)
	}
	t := &Topology{}
	ok := false
	defer func() {
		if !ok {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			t.Close(ctx)
		}
	}()

	// Origin: a deterministic body per object path, padded to
	// ObjectBytes so live cache occupancy matches trace cache units.
	pad := strings.Repeat("x", cfg.ObjectBytes)
	originLn, err := listen()
	if err != nil {
		return nil, err
	}
	t.serve(originLn, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := "origin:" + r.URL.Path + ":" + pad
		w.Write([]byte(body[:cfg.ObjectBytes]))
	}))
	t.OriginURL = "http://" + originLn.Addr().String()

	for p := 0; p < cfg.Proxies; p++ {
		capBytes, err := pick(cfg.ProxyCapacityBytes, p)
		if err != nil {
			return nil, err
		}
		px, err := httpcache.NewProxyOpts(httpcache.Options{
			CapacityBytes: capBytes, Policy: cfg.Policy, Shards: cfg.Shards,
		})
		if err != nil {
			return nil, err
		}
		px.SetTracer(cfg.Tracer)
		px.SetMetrics(cfg.Metrics)
		ln, err := listen()
		if err != nil {
			return nil, err
		}
		t.serve(ln, px.Handler())
		u := "http://" + ln.Addr().String()
		px.SetSelf(u)
		t.Proxies = append(t.Proxies, px)
		t.ProxyURLs = append(t.ProxyURLs, u)

		cacheBytes, err := pick(cfg.CacheCapacityBytes, p)
		if err != nil {
			return nil, err
		}
		for c := 0; c < cfg.CachesPerProxy; c++ {
			cc, err := httpcache.NewClientCacheOpts(httpcache.Options{
				CapacityBytes: cacheBytes, Policy: cfg.Policy, Shards: cfg.Shards,
			})
			if err != nil {
				return nil, err
			}
			cc.SetTracer(cfg.Tracer)
			cc.SetMetrics(cfg.Metrics)
			cln, err := listen()
			if err != nil {
				return nil, err
			}
			t.serve(cln, cc.Handler())
			resp, err := http.Post(fmt.Sprintf("%s/register?addr=%s", u, cln.Addr().String()),
				"text/plain", nil)
			if err != nil {
				return nil, fmt.Errorf("loadgen: registering cache with %s: %w", u, err)
			}
			resp.Body.Close()
		}
	}
	// Cooperating full mesh.
	for p, px := range t.Proxies {
		var peers []string
		for q, u := range t.ProxyURLs {
			if q != p {
				peers = append(peers, u)
			}
		}
		px.SetPeers(peers)
	}
	ok = true
	return t, nil
}

func listen() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// serve runs an http.Server on ln and tracks it for shutdown.
func (t *Topology) serve(ln net.Listener, h http.Handler) {
	srv := &http.Server{Handler: h}
	t.servers = append(t.servers, srv)
	go srv.Serve(ln)
}

// Close drains every server through http.Server.Shutdown under ctx's
// deadline (the graceful path bench runs rely on to stop topologies
// cleanly); servers still busy past the deadline are closed hard.
func (t *Topology) Close(ctx context.Context) error {
	var firstErr error
	for i := len(t.servers) - 1; i >= 0; i-- {
		if err := t.servers[i].Shutdown(ctx); err != nil {
			t.servers[i].Close()
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// ProxyStats fetches proxy p's /stats counters over HTTP.
func (t *Topology) ProxyStats(p int) (httpcache.ProxyStats, error) {
	var st httpcache.ProxyStats
	if p < 0 || p >= len(t.ProxyURLs) {
		return st, fmt.Errorf("loadgen: proxy %d of %d", p, len(t.ProxyURLs))
	}
	resp, err := http.Get(t.ProxyURLs[p] + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}
