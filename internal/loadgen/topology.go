package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"webcache/internal/httpcache"
	"webcache/internal/invariant"
	"webcache/internal/obs"
	"webcache/internal/obs/slo"
)

// TopologyConfig sizes a loopback deployment: an origin, Proxies
// cooperating proxies (full mesh), and CachesPerProxy client-cache
// daemons registered with each.
type TopologyConfig struct {
	Proxies        int
	CachesPerProxy int
	// ProxyCapacityBytes is per-proxy (one element applies to all);
	// CacheCapacityBytes likewise per client-cache daemon.
	ProxyCapacityBytes []uint64
	CacheCapacityBytes []uint64
	// ObjectBytes is the origin's body size for every object: with the
	// simulator's unit-size traces, capacity_units * ObjectBytes byte
	// caches hold exactly capacity_units objects, keeping the live
	// topology unit-for-unit comparable with a sim capacity plan.
	ObjectBytes int
	// Policy and Shards pass through to every daemon's data plane
	// (httpcache.Options): the replacement policy by registry name
	// ("" = greedy-dual) and the store's lock-stripe count (0 = auto).
	Policy string
	Shards int
	// Tracer, when non-nil, is shared by every daemon: each records its
	// hop of a propagated trace id into the one collector (wall clock).
	Tracer *obs.Tracer
	// Metrics, when non-nil, backs every daemon's /metrics endpoint.
	// Shared: a scrape of daemon D refreshes D's gauges synchronously
	// before exposition, so each response reflects the scraped daemon.
	Metrics *obs.Registry
	// MetricsPerDaemon gives every daemon its own registry ("proxy-<i>",
	// "cache-<p>-<c>") instead of the shared Metrics — the honest
	// per-member layout the cluster aggregator scrapes, where each
	// /metrics exposes only that member's counters.  The proxy
	// registries are exposed as Topology.ProxyMetrics.
	MetricsPerDaemon bool
	// SLOClasses, when non-empty, attaches a server-side slo.Tracker
	// with these classes to every proxy (httpcache.Proxy.SetSLO), so
	// each member publishes slo.<class>.* burn-rate gauges.
	SLOClasses []slo.Class
	// Events, when non-nil, receives every daemon's structured JSONL
	// event log (one obs.EventLog per daemon, sources "proxy-<i>" /
	// "cache-<p>-<c>", writes serialized).
	Events io.Writer
	// Defenses, when non-nil, configures every proxy's chaos defenses
	// (per-hop deadlines, hedging, digest sampling, breakers).
	Defenses *httpcache.Defenses
	// Check, when non-nil, attaches a live conservation accountant to
	// every proxy (httpcache.Proxy.EnableAccounting).
	Check *invariant.Checker
	// WrapProxy / WrapCache, when non-nil, wrap each daemon's handler —
	// the chaos fault-injection hook (internal/chaos).  They receive
	// the daemon's topology indices and must return a handler.
	WrapProxy func(proxy int, h http.Handler) http.Handler
	WrapCache func(proxy, cache int, h http.Handler) http.Handler
	// Fleet wires the proxies as a consistent-hash fleet
	// (httpcache.EnableFleet with the full member roster) instead of
	// the cooperating full mesh (SetPeers).  FleetReplication is the
	// hot-object copy count k (0 = 1, partitioning only) and
	// FleetHotAfter the per-key access count that triggers replication
	// (0 = the httpcache default).
	Fleet            bool
	FleetReplication int
	FleetHotAfter    int
}

// Topology is a running loopback deployment.  Everything listens on
// 127.0.0.1 ephemeral ports; Close shuts the servers down gracefully.
type Topology struct {
	OriginURL string
	ProxyURLs []string
	Proxies   []*httpcache.Proxy
	// ProxyMetrics holds each proxy's registry under MetricsPerDaemon
	// (nil otherwise) — index-aligned with Proxies/ProxyURLs.
	ProxyMetrics []*obs.Registry
	// CacheAddrs[p] lists proxy p's client-cache daemon addresses
	// (host:port, registration order) — the chaos layer's churn and
	// poison targets.
	CacheAddrs [][]string

	servers []*http.Server
	caches  []*httpcache.ClientCache
	// cacheServers[addr] maps a client-cache address to its server so
	// FlashDisconnect can kill it; closed remembers what died so Close
	// does not double-close.
	cacheServers map[string]*http.Server
	closedMu     sync.Mutex
	closed       map[*http.Server]bool
}

// pick resolves a per-index capacity from a one-or-per-index slice.
func pick(caps []uint64, i int) (uint64, error) {
	switch {
	case len(caps) == 0:
		return 0, fmt.Errorf("loadgen: empty capacity list")
	case i < len(caps):
		return caps[i], nil
	default:
		return caps[len(caps)-1], nil
	}
}

// StartLoopback stands the topology up.  On error, anything already
// started is shut down.
func StartLoopback(cfg TopologyConfig) (*Topology, error) {
	if cfg.Proxies < 1 || cfg.CachesPerProxy < 0 {
		return nil, fmt.Errorf("loadgen: bad topology %d proxies x %d caches", cfg.Proxies, cfg.CachesPerProxy)
	}
	if cfg.ObjectBytes < 1 {
		return nil, fmt.Errorf("loadgen: object size %d bytes", cfg.ObjectBytes)
	}
	t := &Topology{
		cacheServers: make(map[string]*http.Server),
		closed:       make(map[*http.Server]bool),
	}
	// The daemons' event logs share one writer; serialize their lines.
	var events io.Writer
	if cfg.Events != nil {
		events = &lockedWriter{w: cfg.Events}
	}
	ok := false
	defer func() {
		if !ok {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			t.Close(ctx)
		}
	}()

	// Origin: a deterministic body per object path, padded to
	// ObjectBytes so live cache occupancy matches trace cache units.
	pad := strings.Repeat("x", cfg.ObjectBytes)
	originLn, err := listen()
	if err != nil {
		return nil, err
	}
	t.serve(originLn, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := "origin:" + r.URL.Path + ":" + pad
		w.Write([]byte(body[:cfg.ObjectBytes]))
	}))
	t.OriginURL = "http://" + originLn.Addr().String()

	for p := 0; p < cfg.Proxies; p++ {
		capBytes, err := pick(cfg.ProxyCapacityBytes, p)
		if err != nil {
			return nil, err
		}
		px, err := httpcache.NewProxyOpts(httpcache.Options{
			CapacityBytes: capBytes, Policy: cfg.Policy, Shards: cfg.Shards,
		})
		if err != nil {
			return nil, err
		}
		px.SetTracer(cfg.Tracer)
		pxReg := cfg.Metrics
		if cfg.MetricsPerDaemon {
			pxReg = obs.NewRegistry(fmt.Sprintf("proxy-%d", p))
			t.ProxyMetrics = append(t.ProxyMetrics, pxReg)
		}
		px.SetMetrics(pxReg)
		if len(cfg.SLOClasses) > 0 {
			px.SetSLO(slo.NewTracker(pxReg, cfg.SLOClasses, slo.DefaultThresholds))
		}
		if events != nil {
			px.SetEvents(obs.NewEventLog(fmt.Sprintf("proxy-%d", p), events))
		}
		if cfg.Defenses != nil {
			px.SetDefenses(*cfg.Defenses)
		}
		if cfg.Check != nil {
			px.EnableAccounting(cfg.Check)
		}
		ln, err := listen()
		if err != nil {
			return nil, err
		}
		ph := http.Handler(px.Handler())
		if cfg.WrapProxy != nil {
			ph = cfg.WrapProxy(p, ph)
		}
		t.serve(ln, ph)
		u := "http://" + ln.Addr().String()
		px.SetSelf(u)
		t.Proxies = append(t.Proxies, px)
		t.ProxyURLs = append(t.ProxyURLs, u)

		cacheBytes, err := pick(cfg.CacheCapacityBytes, p)
		if err != nil {
			return nil, err
		}
		var addrs []string
		for c := 0; c < cfg.CachesPerProxy; c++ {
			cc, err := httpcache.NewClientCacheOpts(httpcache.Options{
				CapacityBytes: cacheBytes, Policy: cfg.Policy, Shards: cfg.Shards,
			})
			if err != nil {
				return nil, err
			}
			cc.SetTracer(cfg.Tracer)
			if cfg.MetricsPerDaemon {
				cc.SetMetrics(obs.NewRegistry(fmt.Sprintf("cache-%d-%d", p, c)))
			} else {
				cc.SetMetrics(cfg.Metrics)
			}
			if events != nil {
				cc.SetEvents(obs.NewEventLog(fmt.Sprintf("cache-%d-%d", p, c), events))
			}
			cln, err := listen()
			if err != nil {
				return nil, err
			}
			ch := http.Handler(cc.Handler())
			if cfg.WrapCache != nil {
				ch = cfg.WrapCache(p, c, ch)
			}
			addr := cln.Addr().String()
			t.caches = append(t.caches, cc)
			t.cacheServers[addr] = t.serve(cln, ch)
			resp, err := http.Post(fmt.Sprintf("%s/register?addr=%s", u, addr),
				"text/plain", nil)
			if err != nil {
				return nil, fmt.Errorf("loadgen: registering cache with %s: %w", u, err)
			}
			resp.Body.Close()
			addrs = append(addrs, addr)
		}
		t.CacheAddrs = append(t.CacheAddrs, addrs)
	}
	if cfg.Fleet {
		// Consistent-hash fleet: every proxy gets the full roster (its
		// own URL included — EnableFleet adds Self to the ring either
		// way) instead of the peer mesh.
		for p, px := range t.Proxies {
			px.EnableFleet(httpcache.FleetOptions{
				Self:         t.ProxyURLs[p],
				Members:      t.ProxyURLs,
				Replication:  cfg.FleetReplication,
				HotThreshold: cfg.FleetHotAfter,
			})
		}
	} else {
		// Cooperating full mesh.
		for p, px := range t.Proxies {
			var peers []string
			for q, u := range t.ProxyURLs {
				if q != p {
					peers = append(peers, u)
				}
			}
			px.SetPeers(peers)
		}
	}
	// Everything is registered and wired (fleet rings included): flip
	// the daemons ready, then gate on every /readyz answering 200 — the
	// drivers never race a half-started topology.
	for _, px := range t.Proxies {
		px.MarkReady()
	}
	for _, cc := range t.caches {
		cc.MarkReady()
	}
	var readyURLs []string
	readyURLs = append(readyURLs, t.ProxyURLs...)
	for _, addrs := range t.CacheAddrs {
		for _, addr := range addrs {
			readyURLs = append(readyURLs, "http://"+addr)
		}
	}
	for _, u := range readyURLs {
		if err := waitReady(u, 5*time.Second); err != nil {
			return nil, err
		}
	}
	ok = true
	return t, nil
}

// waitReady polls base's /readyz until it answers 200.
func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: %s/readyz not ready after %s", base, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// lockedWriter serializes the daemons' shared event-log writer.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

func listen() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// serve runs an http.Server on ln and tracks it for shutdown.
func (t *Topology) serve(ln net.Listener, h http.Handler) *http.Server {
	srv := &http.Server{Handler: h}
	t.servers = append(t.servers, srv)
	go srv.Serve(ln)
	return srv
}

// FlashDisconnect hard-closes a fraction of the client-cache daemons —
// the mass-churn chaos scenario (50% of the overlay vanishing at
// once).  The victims are a deterministic shuffle of the flat daemon
// list under seed; the closed servers are remembered so Close skips
// them.  Returns the downed addresses.
func (t *Topology) FlashDisconnect(fraction float64, seed int64) []string {
	var all []string
	for _, addrs := range t.CacheAddrs {
		all = append(all, addrs...)
	}
	sort.Strings(all)
	n := int(float64(len(all))*fraction + 0.5)
	if n <= 0 {
		return nil
	}
	if n > len(all) {
		n = len(all)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	victims := all[:n]
	t.closedMu.Lock()
	defer t.closedMu.Unlock()
	for _, addr := range victims {
		if srv := t.cacheServers[addr]; srv != nil && !t.closed[srv] {
			srv.Close()
			t.closed[srv] = true
		}
	}
	return victims
}

// Close drains every server through http.Server.Shutdown under ctx's
// deadline (the graceful path bench runs rely on to stop topologies
// cleanly); servers still busy past the deadline are closed hard.
// Servers already killed by FlashDisconnect are skipped.
func (t *Topology) Close(ctx context.Context) error {
	// Drop every pooled client-side connection first.  A connection a
	// transport dialed but never sent a request on is StateNew to its
	// server, and Shutdown only reaps StateNew conns after a 5s grace —
	// leaving them open stalls every drain by exactly that long.
	for _, px := range t.Proxies {
		px.CloseIdleConnections()
	}
	for _, cc := range t.caches {
		cc.CloseIdleConnections()
	}
	http.DefaultClient.CloseIdleConnections() // registration + /stats probes
	var firstErr error
	for i := len(t.servers) - 1; i >= 0; i-- {
		t.closedMu.Lock()
		skip := t.closed[t.servers[i]]
		t.closedMu.Unlock()
		if skip {
			continue
		}
		if err := t.servers[i].Shutdown(ctx); err != nil {
			t.servers[i].Close()
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// ProxyStats fetches proxy p's /stats counters over HTTP.
func (t *Topology) ProxyStats(p int) (httpcache.ProxyStats, error) {
	var st httpcache.ProxyStats
	if p < 0 || p >= len(t.ProxyURLs) {
		return st, fmt.Errorf("loadgen: proxy %d of %d", p, len(t.ProxyURLs))
	}
	resp, err := http.Get(t.ProxyURLs[p] + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}
