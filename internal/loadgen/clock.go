package loadgen

import (
	"sync"
	"time"
)

// Clock abstracts time for the driver so pacing is testable without
// real sleeping: the open-loop scheduler sleeps interarrival gaps and
// checks the duration budget exclusively through a Clock.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// realClock is the wall clock.
type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// FakeClock is a deterministic Clock whose Sleep advances virtual time
// instantly.  Tests inject it to verify pacing and duration cut-off
// without wall-clock delays.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the current virtual time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances virtual time by d without blocking.
func (c *FakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
