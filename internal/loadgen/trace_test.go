package loadgen

import (
	"context"
	"strings"
	"testing"
	"time"

	"webcache/internal/obs"
	"webcache/internal/prowgen"
	"webcache/internal/sim"
)

// Driving a live topology with tracing on must produce joined traces:
// the driver records the root (client RTT), every daemon hop joins the
// same id, and the merged export passes the Chrome schema validator.
func TestLiveTracePropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback bench in -short mode")
	}
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests: 600, NumObjects: 80, NumClients: 20, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	simCfg := sim.Config{
		Scheme: sim.HierGD, NumProxies: 2, ClientsPerCluster: 10,
		P2PClientCaches: 2, Directory: sim.DirExact,
		ProxyCacheFrac: 0.10, ClientCacheFrac: 0.02, Seed: 1,
	}
	proxyCap, clientCap := simCfg.CapacityPlan(tr)
	const objectBytes = 64
	toBytes := func(units []uint64) []uint64 {
		out := make([]uint64, len(units))
		for i, u := range units {
			out[i] = u * objectBytes
		}
		return out
	}
	daemonTracer := obs.NewTracer(obs.TracerOptions{Origin: "daemon", Clock: obs.ClockWall})
	reg := obs.NewRegistry("live-trace-test")
	topo, err := StartLoopback(TopologyConfig{
		Proxies:            simCfg.NumProxies,
		CachesPerProxy:     simCfg.P2PClientCaches,
		ProxyCapacityBytes: toBytes(proxyCap),
		CacheCapacityBytes: toBytes(clientCap),
		ObjectBytes:        objectBytes,
		Tracer:             daemonTracer,
		Metrics:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		topo.Close(ctx)
	}()

	sched, err := BuildSchedule(tr, topo.ProxyURLs, topo.OriginURL, simCfg.ProxyFor)
	if err != nil {
		t.Fatal(err)
	}
	driverTracer := obs.NewTracer(obs.TracerOptions{Origin: "loadgen", SampleEvery: 10, Clock: obs.ClockWall})
	res, err := Run(context.Background(), sched, NewHTTPTarget(10*time.Second), Options{
		Mode: ClosedLoop, Workers: 4,
		Obs:    reg,
		Tracer: driverTracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d request errors", res.Errors)
	}

	roots := driverTracer.Snapshots()
	if len(roots) != 60 {
		t.Fatalf("driver sampled %d traces, want 60 (600 / 10)", len(roots))
	}
	rootIDs := map[string]bool{}
	for _, st := range roots {
		if !st.Root || st.Tier == "" || len(st.Spans) == 0 {
			t.Fatalf("malformed root trace %+v", st)
		}
		rootIDs[st.ID] = true
	}
	// Daemon-side: requests without a propagated id head-sample their
	// own root traces (standalone daemons stay observable); requests
	// the driver tagged join the driver's id.  Every sampled request
	// touched at least the front-end proxy, so joins >= roots.
	daemonSnaps := daemonTracer.Snapshots()
	knownIDs := map[string]bool{}
	for id := range rootIDs {
		knownIDs[id] = true
	}
	for _, st := range daemonSnaps {
		if st.Root {
			// A daemon's own head-sampled trace; its id propagates to the
			// daemons *it* calls, so downstream joins may reference it.
			knownIDs[st.ID] = true
		}
	}
	var joins, driverJoins int
	for _, st := range daemonSnaps {
		if st.Root {
			continue
		}
		joins++
		if rootIDs[st.ID] {
			driverJoins++
		}
		if !knownIDs[st.ID] {
			t.Fatalf("daemon trace %q joined an id nobody issued", st.ID)
		}
	}
	if driverJoins < len(roots) {
		t.Fatalf("daemons joined %d driver traces for %d sampled requests (total joins %d)",
			driverJoins, len(roots), joins)
	}

	// The merged Chrome export (driver + daemon spans) must validate.
	var sb strings.Builder
	if err := driverTracer.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace([]byte(sb.String())); err != nil {
		t.Fatalf("driver chrome export: %v", err)
	}
	sb.Reset()
	if err := daemonTracer.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace([]byte(sb.String())); err != nil {
		t.Fatalf("daemon chrome export: %v", err)
	}

	// The per-tier latency histograms are registry-backed and folded
	// into the decomposition table the bench prints.
	if reg.Histogram("loadgen.latency").Count() == 0 {
		t.Fatal("registry latency histogram empty")
	}
	d := driverTracer.Decompose()
	if len(d.Tiers) == 0 {
		t.Fatal("no tiers in live decomposition")
	}
	if !strings.Contains(d.Table(), "proxy") {
		t.Fatalf("decomposition table:\n%s", d.Table())
	}
}
