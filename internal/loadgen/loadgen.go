// Package loadgen is the live load-generation subsystem: it replays a
// trace.Trace over real HTTP against a hiergdd proxy/client-cache
// topology (internal/httpcache) and measures what comes back.
//
// The simulator half of the repo predicts; this package observes.  It
// supports both driving disciplines from the measurement literature:
//
//   - open loop: requests are released on an arrival process's
//     schedule (Poisson or bursty on/off, deterministically seeded)
//     regardless of completions, so queueing delay shows up in the
//     latency histogram instead of throttling the offered load;
//   - closed loop: N workers issue back-to-back requests with optional
//     think time, the classic saturation driver.
//
// Every response is attributed to its serving tier via the
// httpcache.ServedByHeader header, latencies land in per-tier
// log-scale histograms (p50/p90/p99/p999/max after a warmup discard),
// counters stream through the internal/obs registry (loadgen.*
// namespace, METRICS.md), and Calibrate replays the same trace through
// internal/sim with identical capacities to make sim-vs-live drift a
// single measurable table.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"webcache/internal/httpcache"
	"webcache/internal/netmodel"
	"webcache/internal/obs"
	"webcache/internal/obs/slo"
)

// Tier is the serving tier a live response was attributed to.
type Tier int

const (
	// TierProxy: the local proxy's cache (Tl).
	TierProxy Tier = iota
	// TierClientCache: the proxy's own P2P client cache (Tp2p).
	TierClientCache
	// TierRemoteProxy: a cooperating proxy, from its cache or its
	// client caches via the push mechanism (Tc).
	TierRemoteProxy
	// TierOrigin: the origin server (Ts).
	TierOrigin
	// TierUnknown: a 200 response without a recognized tier header — a
	// response path the attribution audit missed.
	TierUnknown
	// TierError: transport error or non-200 status.
	TierError
	numTiers
)

// NumTiers is the number of distinct Tier values.
const NumTiers = int(numTiers)

// String implements fmt.Stringer (metric-friendly labels).
func (t Tier) String() string {
	switch t {
	case TierProxy:
		return "proxy"
	case TierClientCache:
		return "client_cache"
	case TierRemoteProxy:
		return "remote_proxy"
	case TierOrigin:
		return "origin"
	case TierUnknown:
		return "unknown"
	case TierError:
		return "error"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// ParseTier maps an httpcache ServedByHeader value to a Tier.
func ParseTier(h string) Tier {
	switch h {
	case httpcache.TierProxy:
		return TierProxy
	case httpcache.TierProxyDisk:
		// The persistent tier is still the local proxy serving the
		// object (Tl in the latency model) — which medium held it is
		// the proxy's own accounting, not a calibration tier.
		return TierProxy
	case httpcache.TierClientCache:
		return TierClientCache
	case httpcache.TierRemoteProxy:
		return TierRemoteProxy
	case httpcache.TierOrigin:
		return TierOrigin
	default:
		return TierUnknown
	}
}

// Source maps a live tier onto the simulator's serving-tier enum for
// calibration; ok is false for the tiers the model has no counterpart
// of (unknown, error).
func (t Tier) Source() (netmodel.Source, bool) {
	switch t {
	case TierProxy:
		return netmodel.SrcLocalProxy, true
	case TierClientCache:
		return netmodel.SrcP2P, true
	case TierRemoteProxy:
		return netmodel.SrcRemoteProxy, true
	case TierOrigin:
		return netmodel.SrcServer, true
	default:
		return 0, false
	}
}

// Outcome is one request's observed result.
type Outcome struct {
	Tier    Tier
	Latency time.Duration
	Status  int
	Err     error
}

// Target issues one scheduled request and reports its outcome.  The
// driver calls Do from many goroutines.
type Target interface {
	Do(r ScheduledRequest) Outcome
}

// HTTPTarget is the real-socket target: GET the scheduled URL, read
// the body to completion (latency includes the transfer), attribute
// the tier from the response header.
type HTTPTarget struct {
	Client *http.Client
}

// NewHTTPTarget builds a target with the given per-request timeout on
// the daemons' shared tuned transport (httpcache.NewTransport): the
// driver concentrates its whole request stream on a handful of proxy
// hosts, the exact topology the stock per-host idle limit starves.
func NewHTTPTarget(timeout time.Duration) *HTTPTarget {
	return &HTTPTarget{Client: &http.Client{Timeout: timeout, Transport: httpcache.NewTransport()}}
}

// CloseIdleConnections drops the driver's pooled connections.  Bench
// runs call this between Run and Topology.Close: connections the
// transport dialed but never used are StateNew to the daemons, and
// http.Server.Shutdown reaps those only after a 5s grace — an undropped
// driver pool stalls every topology drain by that long.
func (t *HTTPTarget) CloseIdleConnections() { t.Client.CloseIdleConnections() }

// Do implements Target.
func (t *HTTPTarget) Do(r ScheduledRequest) Outcome {
	req, err := http.NewRequest("GET", r.URL, nil)
	if err != nil {
		return Outcome{Tier: TierError, Err: err}
	}
	if r.TraceID != "" {
		req.Header.Set(httpcache.TraceHeader, r.TraceID)
	}
	if r.Class != "" {
		req.Header.Set(httpcache.SLOHeader, r.Class)
	}
	start := time.Now()
	resp, err := t.Client.Do(req)
	if err != nil {
		return Outcome{Tier: TierError, Latency: time.Since(start), Err: err}
	}
	_, cerr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat := time.Since(start)
	if cerr != nil {
		return Outcome{Tier: TierError, Latency: lat, Status: resp.StatusCode, Err: cerr}
	}
	if resp.StatusCode != http.StatusOK {
		return Outcome{Tier: TierError, Latency: lat, Status: resp.StatusCode,
			Err: fmt.Errorf("loadgen: status %d", resp.StatusCode)}
	}
	return Outcome{Tier: ParseTier(resp.Header.Get(httpcache.ServedByHeader)),
		Latency: lat, Status: resp.StatusCode}
}

// Mode selects the driving discipline.
type Mode int

const (
	// OpenLoop releases requests on the Arrival schedule.
	OpenLoop Mode = iota
	// ClosedLoop runs Workers back-to-back issuers with think time.
	ClosedLoop
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ClosedLoop {
		return "closed"
	}
	return "open"
}

// Options parameterizes one driving run.
type Options struct {
	// Mode selects open- or closed-loop driving.
	Mode Mode
	// Arrival is the open-loop release schedule (required for OpenLoop).
	Arrival Arrival
	// MaxInflight bounds open-loop concurrency (default 512).  When the
	// target falls this far behind, releases block — the overload is
	// counted in Result.Throttled rather than exhausting sockets.
	MaxInflight int
	// Workers is the closed-loop concurrency (default 8); Think is the
	// per-worker pause between requests.
	Workers int
	Think   time.Duration
	// Duration stops issuing when the clock budget is spent (0 = run
	// the whole schedule).  In-flight requests are always drained.
	Duration time.Duration
	// Warmup discards the outcomes of the first N scheduled requests
	// from all accounting; the requests are still issued, warming the
	// caches exactly like sim.Config.WarmupRequests.
	Warmup int
	// Clock defaults to the wall clock; tests inject FakeClock.
	Clock Clock
	// Obs, when non-nil, streams driver counters into the registry
	// (the loadgen.* namespace; nil disables at zero cost).
	Obs *obs.Registry
	// Tracer, when non-nil, head-samples span traces: each sampled
	// request carries its trace id to the daemons (ScheduledRequest.
	// TraceID → httpcache.TraceHeader), and the driver records the
	// client-observed round trip as the root trace (wall clock).
	Tracer *obs.Tracer
	// ClassFor, when non-nil, tags each request with an SLO class at
	// issue time (ScheduledRequest.Class → httpcache.SLOHeader): the
	// proxies account it server-side, and the driver keeps its own
	// per-class ledger in Result.PerClass.
	ClassFor func(ScheduledRequest) string
	// SLO, when non-nil, receives every post-warmup outcome — the
	// client-side error-budget view of the same request stream the
	// proxies track server-side.
	SLO *slo.Tracker
}

// Result is one driving run's measurements.
type Result struct {
	Mode Mode
	// Issued counts requests released (warmup included); Measured the
	// post-warmup successful ones; Errors the post-warmup failures;
	// WarmupDiscarded the outcomes dropped by the warmup rule.
	Issued, Measured, Errors, WarmupDiscarded int
	// Throttled counts open-loop releases that blocked on MaxInflight.
	Throttled int
	// Elapsed is first release to last completion; AchievedRate is
	// Issued/Elapsed in requests/second.
	Elapsed      time.Duration
	AchievedRate float64
	// Tiers counts post-warmup outcomes by tier; PerTier holds the
	// matching latency histograms; Overall merges the successful tiers.
	Tiers   [numTiers]int
	PerTier [numTiers]*Histogram
	Overall *Histogram
	// PerClass is the per-SLO-class ledger (nil when Options.ClassFor
	// tagged nothing): requests, errors, hit ratio, and latency
	// quantiles keyed by class name, "" for untagged requests.
	PerClass map[string]*ClassResult
}

// HitRatio is the fraction of measured (post-warmup, successful)
// requests served by tier t.
func (r *Result) HitRatio(t Tier) float64 {
	if r.Measured == 0 {
		return 0
	}
	return float64(r.Tiers[t]) / float64(r.Measured)
}

// AggregateHitRatio is the fraction of measured requests that any
// cache tier absorbed (1 - origin share).
func (r *Result) AggregateHitRatio() float64 {
	if r.Measured == 0 {
		return 0
	}
	return 1 - float64(r.Tiers[TierOrigin])/float64(r.Measured)
}

// recorder accumulates outcomes concurrently.
type recorder struct {
	warmup    int
	issued    atomic.Int64
	discarded atomic.Int64
	errors    atomic.Int64
	measured  atomic.Int64
	tiers     [numTiers]atomic.Int64
	perTier   [numTiers]*Histogram
	overall   *Histogram
	// trackClasses is set when Options.ClassFor is present: every
	// post-warmup outcome lands in the per-class ledger, tagged or not.
	trackClasses bool
	classes      classRecorder
	slo          *slo.Tracker

	reg      *obs.Registry
	reqTimer *obs.Timer
}

func newRecorder(warmup int, reg *obs.Registry) *recorder {
	// The latency distributions ARE registry histograms when a registry
	// is attached — first-class metrics, flattened to .p50/.p90/... in
	// Values() and exported as summaries on /metrics.  Without one they
	// fall back to private histograms so Result keeps working.
	overall := reg.Histogram("loadgen.latency")
	if overall == nil {
		overall = &Histogram{}
	}
	rec := &recorder{warmup: warmup, reg: reg, overall: overall,
		reqTimer: reg.Timer("loadgen.request")}
	for i := range rec.perTier {
		h := reg.Histogram("loadgen.latency.tier." + Tier(i).String())
		if h == nil {
			h = &Histogram{}
		}
		rec.perTier[i] = h
	}
	// Pre-register the full counter/gauge set so every run exports the
	// same metric names regardless of which paths fired — manifests
	// stay diffable run to run and the doc-drift test can hold any
	// smoke run against the METRICS.md glossary.
	reg.Counter("loadgen.issued").Add(0)
	reg.Counter("loadgen.warmup_discarded").Add(0)
	reg.Counter("loadgen.throttled").Add(0)
	for i := 0; i < int(numTiers); i++ {
		reg.Counter("loadgen.serves." + Tier(i).String()).Add(0)
	}
	reg.Gauge("loadgen.inflight.max").SetMax(0)
	return rec
}

func (rec *recorder) record(idx int, class string, o Outcome) {
	rec.issued.Add(1)
	rec.reg.Counter("loadgen.issued").Inc()
	rec.reqTimer.Observe(o.Latency)
	if idx < rec.warmup {
		rec.discarded.Add(1)
		rec.reg.Counter("loadgen.warmup_discarded").Inc()
		return
	}
	if rec.trackClasses {
		rec.classes.record(class, o)
	}
	rec.slo.Observe(class, o.Latency, o.Tier == TierError)
	rec.tiers[o.Tier].Add(1)
	rec.perTier[o.Tier].Observe(o.Latency)
	rec.reg.Counter("loadgen.serves." + o.Tier.String()).Inc()
	if o.Tier == TierError {
		rec.errors.Add(1)
		return
	}
	rec.measured.Add(1)
	rec.overall.Observe(o.Latency)
}

func (rec *recorder) result(mode Mode, elapsed time.Duration, throttled int) *Result {
	res := &Result{
		Mode:            mode,
		Issued:          int(rec.issued.Load()),
		Measured:        int(rec.measured.Load()),
		Errors:          int(rec.errors.Load()),
		WarmupDiscarded: int(rec.discarded.Load()),
		Throttled:       throttled,
		Elapsed:         elapsed,
		Overall:         rec.overall,
	}
	res.PerClass = rec.classes.result()
	for i := range res.Tiers {
		res.Tiers[i] = int(rec.tiers[i].Load())
		res.PerTier[i] = rec.perTier[i]
	}
	if elapsed > 0 {
		res.AchievedRate = float64(res.Issued) / elapsed.Seconds()
	}
	return res
}

// Run drives the schedule against the target under the configured
// discipline and returns the measurements.  Cancelling ctx stops
// issuing; in-flight requests are drained either way.
func Run(ctx context.Context, sched *Schedule, tgt Target, opts Options) (*Result, error) {
	if sched == nil || len(sched.Requests) == 0 {
		return nil, fmt.Errorf("loadgen: empty schedule")
	}
	if tgt == nil {
		return nil, fmt.Errorf("loadgen: nil target")
	}
	if opts.Warmup < 0 {
		return nil, fmt.Errorf("loadgen: negative warmup %d", opts.Warmup)
	}
	clock := opts.Clock
	if clock == nil {
		clock = realClock{}
	}
	rec := newRecorder(opts.Warmup, opts.Obs)
	rec.trackClasses = opts.ClassFor != nil
	rec.slo = opts.SLO
	// issue runs one scheduled request, wrapping it in a span trace
	// when the tracer samples it: the trace id propagates to every
	// daemon hop, and the root trace records the client-observed RTT.
	issue := func(i int) {
		req := sched.Requests[i]
		st := opts.Tracer.StartTrace("request", 0)
		req.TraceID = st.TraceID()
		if opts.ClassFor != nil && req.Class == "" {
			req.Class = opts.ClassFor(req)
		}
		o := tgt.Do(req)
		comp := ""
		if src, ok := o.Tier.Source(); ok {
			comp = string(netmodel.ServeComponent(src))
		}
		st.Span("fetch."+o.Tier.String(), comp, o.Latency.Seconds())
		st.FinishWall(o.Tier.String())
		rec.record(i, req.Class, o)
	}
	start := clock.Now()
	var deadline time.Time
	if opts.Duration > 0 {
		deadline = start.Add(opts.Duration)
	}
	expired := func() bool {
		if ctx.Err() != nil {
			return true
		}
		return !deadline.IsZero() && !clock.Now().Before(deadline)
	}

	var throttled int
	switch opts.Mode {
	case OpenLoop:
		if opts.Arrival == nil {
			return nil, fmt.Errorf("loadgen: open loop needs an Arrival process")
		}
		maxInflight := opts.MaxInflight
		if maxInflight <= 0 {
			maxInflight = 512
		}
		sem := make(chan struct{}, maxInflight)
		inflightMax := rec.reg.Gauge("loadgen.inflight.max")
		var cur atomic.Int64
		var wg sync.WaitGroup
		for i := range sched.Requests {
			if expired() {
				break
			}
			clock.Sleep(opts.Arrival.Next())
			select {
			case sem <- struct{}{}:
			default:
				// The target is maxInflight requests behind schedule:
				// block (and count it) instead of spawning unboundedly.
				throttled++
				rec.reg.Counter("loadgen.throttled").Inc()
				sem <- struct{}{}
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				inflightMax.SetMax(float64(cur.Add(1)))
				issue(i)
				cur.Add(-1)
			}(i)
		}
		wg.Wait()

	case ClosedLoop:
		workers := opts.Workers
		if workers <= 0 {
			workers = 8
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if expired() {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= len(sched.Requests) {
						return
					}
					issue(i)
					if opts.Think > 0 {
						clock.Sleep(opts.Think)
					}
				}
			}()
		}
		wg.Wait()

	default:
		return nil, fmt.Errorf("loadgen: unknown mode %d", opts.Mode)
	}

	res := rec.result(opts.Mode, clock.Now().Sub(start), throttled)
	res.PublishMetrics(opts.Obs)
	return res, nil
}

// PublishMetrics folds the run's summary into the registry.  The
// latency distributions are already first-class registry histograms
// when the run streamed into reg (newRecorder registered them), so
// only a *different* registry needs them merged in — the identity
// guard prevents double counting.  A nil registry is a no-op.
func (r *Result) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	if h := reg.Histogram("loadgen.latency"); h != r.Overall {
		h.Merge(r.Overall)
	}
	for i, ph := range r.PerTier {
		if h := reg.Histogram("loadgen.latency.tier." + Tier(i).String()); h != ph {
			h.Merge(ph)
		}
	}
	reg.Gauge("loadgen.achieved_rate").Set(r.AchievedRate)
}
