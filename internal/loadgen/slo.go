package loadgen

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ClassResult is one SLO class's slice of a run: how many requests the
// class issued, how they fared, and where they were served from.  The
// driver's view is client-side truth — the proxies' slo.* gauges
// measure the same requests server-side, and the two must agree.
type ClassResult struct {
	// Requests counts post-warmup outcomes tagged with this class;
	// Errors the failed subset; Origin the ones the cache hierarchy
	// missed entirely.
	Requests, Errors, Origin int
	// Latency is the class's full latency distribution (errors
	// included — a timeout is the latency the client experienced).
	Latency *Histogram
}

// Measured is the successful request count.
func (c *ClassResult) Measured() int { return c.Requests - c.Errors }

// HitRatio is the fraction of the class's successful requests that any
// cache tier absorbed.
func (c *ClassResult) HitRatio() float64 {
	if m := c.Measured(); m > 0 {
		return 1 - float64(c.Origin)/float64(m)
	}
	return 0
}

// classRecorder accumulates per-class outcomes concurrently.  Classes
// are discovered from the request stream (the tag set is small), so an
// untagged run costs one map lookup of "" per request and nothing else.
type classRecorder struct {
	mu      sync.Mutex
	classes map[string]*ClassResult
}

func (cr *classRecorder) record(class string, o Outcome) {
	cr.mu.Lock()
	c := cr.classes[class]
	if c == nil {
		if cr.classes == nil {
			cr.classes = make(map[string]*ClassResult)
		}
		c = &ClassResult{Latency: &Histogram{}}
		cr.classes[class] = c
	}
	c.Requests++
	switch o.Tier {
	case TierError:
		c.Errors++
	case TierOrigin:
		c.Origin++
	}
	cr.mu.Unlock()
	c.Latency.Observe(o.Latency)
}

// result snapshots the per-class map; nil when no request was tagged.
func (cr *classRecorder) result() map[string]*ClassResult {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	if len(cr.classes) == 0 {
		return nil
	}
	out := make(map[string]*ClassResult, len(cr.classes))
	for name, c := range cr.classes {
		out[name] = c
	}
	return out
}

// classNames returns the tagged class names in stable order, "" last
// (the untagged remainder).
func classNames(m map[string]*ClassResult) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		if name != "" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if _, ok := m[""]; ok {
		names = append(names, "")
	}
	return names
}

// classTable renders the per-class block of Result.Table.
func classTable(b *strings.Builder, m map[string]*ClassResult) {
	fmt.Fprintf(b, "%-13s %8s %7s %7s  %9s %9s %9s\n",
		"class", "requests", "hit", "errors", "p50", "p99", "max")
	for _, name := range classNames(m) {
		c := m[name]
		label := name
		if label == "" {
			label = "(untagged)"
		}
		s := c.Latency.Summary()
		fmt.Fprintf(b, "%-13s %8d %6.1f%% %7d  %9s %9s %9s\n",
			label, c.Requests, 100*c.HitRatio(), c.Errors,
			fmtDur(s.P50), fmtDur(s.P99), fmtDur(s.Max))
	}
}
