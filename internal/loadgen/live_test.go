package loadgen

import (
	"context"
	"math"
	"testing"
	"time"

	"webcache/internal/prowgen"
	"webcache/internal/sim"
)

// End-to-end: generate a small ProWGen trace, stand up a loopback
// topology sized from the simulator's capacity plan, drive the whole
// schedule closed-loop, and calibrate — live and simulated aggregate
// hit ratios must land close together.  This is the subsystem's core
// promise (the live deployment reproduces the model) exercised in one
// test.
func TestLoopbackCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback bench in -short mode")
	}
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests: 2500,
		NumObjects:  250,
		NumClients:  40,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}

	const objectBytes = 64
	simCfg := sim.Config{
		Scheme:            sim.HierGD,
		NumProxies:        2,
		ClientsPerCluster: 20,
		P2PClientCaches:   3,
		Directory:         sim.DirExact,
		ProxyCacheFrac:    0.10,
		ClientCacheFrac:   0.02,
		WarmupRequests:    250,
		Seed:              1,
	}
	proxyCap, clientCap := simCfg.CapacityPlan(tr)
	toBytes := func(units []uint64) []uint64 {
		out := make([]uint64, len(units))
		for i, u := range units {
			out[i] = u * objectBytes
		}
		return out
	}
	topo, err := StartLoopback(TopologyConfig{
		Proxies:            simCfg.NumProxies,
		CachesPerProxy:     simCfg.P2PClientCaches,
		ProxyCapacityBytes: toBytes(proxyCap),
		CacheCapacityBytes: toBytes(clientCap),
		ObjectBytes:        objectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		topo.Close(ctx)
	}()

	sched, err := BuildSchedule(tr, topo.ProxyURLs, topo.OriginURL, simCfg.ProxyFor)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), sched, NewHTTPTarget(10*time.Second), Options{
		Mode:    ClosedLoop,
		Workers: 8,
		Warmup:  simCfg.WarmupRequests,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != tr.Len() {
		t.Fatalf("issued %d of %d", res.Issued, tr.Len())
	}
	if res.Errors > 0 {
		t.Fatalf("%d request errors (of %d measured)", res.Errors, res.Measured)
	}
	if res.Tiers[TierUnknown] > 0 {
		t.Fatalf("%d responses without a recognized %s header", res.Tiers[TierUnknown], "X-Served-By")
	}
	// Something must be getting cached, or the deployment is broken.
	if res.AggregateHitRatio() <= 0 {
		t.Fatal("live aggregate hit ratio is zero")
	}

	// Pin the plan the topology was sized from and replay through the
	// simulator.
	simCfg.ProxyCapacityOverride = proxyCap
	simCfg.ClientCapacityOverride = clientCap
	rep, err := Calibrate(tr, res, simCfg, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s", res.Table(), rep.Table())
	if rep.SimRequests == 0 || rep.LiveRequests == 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if math.Abs(rep.AggregateDelta) > 0.15 {
		t.Fatalf("live %.3f vs sim %.3f aggregate hit ratio: |delta| %.3f > 0.15",
			rep.AggregateLive, rep.AggregateSim, math.Abs(rep.AggregateDelta))
	}
	if !rep.WithinTolerance {
		t.Fatal("report verdict outside tolerance")
	}
}
