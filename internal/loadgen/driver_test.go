package loadgen

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"webcache/internal/obs"
	"webcache/internal/trace"
)

// fakeTarget records calls and answers from a per-index tier function.
type fakeTarget struct {
	calls  atomic.Int64
	tierOf func(i int) Tier
}

func (f *fakeTarget) Do(r ScheduledRequest) Outcome {
	f.calls.Add(1)
	tier := TierProxy
	if f.tierOf != nil {
		tier = f.tierOf(r.Index)
	}
	o := Outcome{Tier: tier, Latency: time.Duration(1+r.Index%10) * time.Millisecond, Status: 200}
	if tier == TierError {
		o.Status = 500
		o.Err = fmt.Errorf("fake failure")
	}
	return o
}

// constantGap is a fixed-interval Arrival for deterministic pacing tests.
type constantGap time.Duration

func (c constantGap) Next() time.Duration { return time.Duration(c) }

func testSchedule(n int) *Schedule {
	s := &Schedule{NumProxies: 1}
	for i := 0; i < n; i++ {
		s.Requests = append(s.Requests, ScheduledRequest{
			Index:  i,
			Client: trace.ClientID(i % 4),
			Object: trace.ObjectID(i),
			URL:    fmt.Sprintf("http://unused/obj/%d", i),
		})
	}
	return s
}

// Open loop on a fake clock: with a 10ms constant gap and a 100ms
// budget, exactly 10 releases fit (virtual time hits the deadline at
// release 10, the pre-release check cuts the 11th).  No wall time
// passes.
func TestOpenLoopDurationCutoffDeterministic(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	tgt := &fakeTarget{}
	res, err := Run(context.Background(), testSchedule(1000), tgt, Options{
		Mode:     OpenLoop,
		Arrival:  constantGap(10 * time.Millisecond),
		Duration: 100 * time.Millisecond,
		Clock:    clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 10 {
		t.Fatalf("issued %d, want 10", res.Issued)
	}
	if got := tgt.calls.Load(); got != 10 {
		t.Fatalf("target saw %d calls, want 10", got)
	}
	if res.Elapsed != 100*time.Millisecond {
		t.Fatalf("elapsed %v, want 100ms of virtual time", res.Elapsed)
	}
	// 10 issued over 100ms virtual = 100 req/s achieved.
	if res.AchievedRate < 99 || res.AchievedRate > 101 {
		t.Fatalf("achieved rate %.1f, want ~100", res.AchievedRate)
	}
}

// Without a duration budget the open loop runs the whole schedule.
func TestOpenLoopFullSchedule(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	tgt := &fakeTarget{}
	res, err := Run(context.Background(), testSchedule(250), tgt, Options{
		Mode:    OpenLoop,
		Arrival: constantGap(time.Millisecond),
		Clock:   clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 250 || res.Errors != 0 || res.Measured != 250 {
		t.Fatalf("issued/measured/errors = %d/%d/%d, want 250/250/0",
			res.Issued, res.Measured, res.Errors)
	}
}

// Closed loop: 4 workers drain 100 requests exactly once each; the
// first 10 outcomes are warmup-discarded from accounting but still
// issued (they warm the caches).
func TestClosedLoopWarmupAccounting(t *testing.T) {
	tgt := &fakeTarget{}
	res, err := Run(context.Background(), testSchedule(100), tgt, Options{
		Mode:    ClosedLoop,
		Workers: 4,
		Warmup:  10,
		Clock:   NewFakeClock(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 100 {
		t.Fatalf("issued %d, want 100", res.Issued)
	}
	if got := tgt.calls.Load(); got != 100 {
		t.Fatalf("target saw %d calls, want 100 (each request exactly once)", got)
	}
	if res.WarmupDiscarded != 10 {
		t.Fatalf("warmup discarded %d, want 10", res.WarmupDiscarded)
	}
	if res.Measured != 90 {
		t.Fatalf("measured %d, want 90", res.Measured)
	}
	if res.Overall.Count() != 90 {
		t.Fatalf("overall histogram holds %d samples, want 90", res.Overall.Count())
	}
}

// Tier accounting: errors are counted but excluded from Measured,
// the Overall histogram, and hit ratios; per-tier counts and the
// aggregate hit ratio follow the fake's tier function.
func TestTierAndErrorAccounting(t *testing.T) {
	tgt := &fakeTarget{tierOf: func(i int) Tier {
		switch i % 4 {
		case 0:
			return TierOrigin
		case 1:
			return TierProxy
		case 2:
			return TierClientCache
		default:
			return TierError
		}
	}}
	reg := obs.NewRegistry("test")
	res, err := Run(context.Background(), testSchedule(200), tgt, Options{
		Mode:    ClosedLoop,
		Workers: 2,
		Clock:   NewFakeClock(time.Unix(0, 0)),
		Obs:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 50 || res.Measured != 150 {
		t.Fatalf("errors/measured = %d/%d, want 50/150", res.Errors, res.Measured)
	}
	if res.Tiers[TierOrigin] != 50 || res.Tiers[TierProxy] != 50 || res.Tiers[TierClientCache] != 50 {
		t.Fatalf("tier counts %v", res.Tiers)
	}
	if res.Overall.Count() != 150 {
		t.Fatalf("overall histogram %d samples, want 150 (errors excluded)", res.Overall.Count())
	}
	want := 1 - float64(res.Tiers[TierOrigin])/float64(res.Measured)
	if got := res.AggregateHitRatio(); got != want {
		t.Fatalf("aggregate hit ratio %.4f, want %.4f", got, want)
	}
	// Counters streamed into the registry during the run.
	vals := map[string]float64{}
	for _, m := range reg.Snapshot() {
		vals[m.Kind+":"+m.Name] = m.Value
	}
	if vals["counter:loadgen.issued"] != 200 {
		t.Fatalf("loadgen.issued = %v", vals["counter:loadgen.issued"])
	}
	if vals["counter:loadgen.serves.origin"] != 50 {
		t.Fatalf("loadgen.serves.origin = %v", vals["counter:loadgen.serves.origin"])
	}
	// The latency distribution is a first-class registry histogram now;
	// Values() flattens it to the quantile keys reports consume.
	if _, ok := vals["histogram:loadgen.latency"]; !ok {
		t.Fatal("loadgen.latency histogram not registered")
	}
	flat := reg.Values()
	if _, ok := flat["loadgen.latency.p99"]; !ok {
		t.Fatal("latency quantiles not in Values()")
	}
	if flat["loadgen.latency.count"] != 150 {
		t.Fatalf("loadgen.latency.count = %v, want 150", flat["loadgen.latency.count"])
	}
}

func TestRunValidation(t *testing.T) {
	tgt := &fakeTarget{}
	if _, err := Run(context.Background(), nil, tgt, Options{}); err == nil {
		t.Fatal("nil schedule accepted")
	}
	if _, err := Run(context.Background(), testSchedule(1), nil, Options{}); err == nil {
		t.Fatal("nil target accepted")
	}
	if _, err := Run(context.Background(), testSchedule(1), tgt, Options{Mode: OpenLoop}); err == nil {
		t.Fatal("open loop without arrival accepted")
	}
	if _, err := Run(context.Background(), testSchedule(1), tgt, Options{Warmup: -1}); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

// A cancelled context stops issuing immediately.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, testSchedule(100), &fakeTarget{}, Options{
		Mode:    OpenLoop,
		Arrival: constantGap(time.Millisecond),
		Clock:   NewFakeClock(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 0 {
		t.Fatalf("issued %d after pre-cancelled context", res.Issued)
	}
}
