package loadgen

import (
	"fmt"
	"net/url"

	"webcache/internal/fleet"
	"webcache/internal/trace"
)

// ScheduledRequest is one trace reference resolved onto the live
// topology: which proxy front-end to hit and the full fetch URL.
type ScheduledRequest struct {
	Index  int
	Client trace.ClientID
	Object trace.ObjectID
	Proxy  int
	URL    string
	// TraceID, when non-empty, rides the request as the
	// httpcache.TraceHeader so every daemon the fetch touches joins the
	// same span trace.  The driver stamps it per sampled request.
	TraceID string
	// Class, when non-empty, rides the request as the
	// httpcache.SLOHeader so the proxy accounts it against that SLO
	// class's error budget; the driver keeps its own per-class ledger
	// (Result.PerClass).  Options.ClassFor stamps it at issue time.
	Class string
}

// Schedule is a trace rendered into issuable requests, in trace order.
type Schedule struct {
	Requests   []ScheduledRequest
	NumProxies int
}

// BuildSchedule resolves every trace request onto the topology:
// objects become origin URLs ("<origin>/obj/<id>"), and each client is
// routed to proxyFor(client) — pass sim.Config.ProxyFor so live
// requests land on the same front-end the simulator's replay would
// use, which is what makes the calibration comparison meaningful.
func BuildSchedule(tr *trace.Trace, proxyURLs []string, originURL string,
	proxyFor func(trace.ClientID) int) (*Schedule, error) {
	if len(proxyURLs) == 0 {
		return nil, fmt.Errorf("loadgen: no proxy URLs")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{
		Requests:   make([]ScheduledRequest, 0, len(tr.Requests)),
		NumProxies: len(proxyURLs),
	}
	for i, r := range tr.Requests {
		p := proxyFor(r.Client)
		if p < 0 || p >= len(proxyURLs) {
			return nil, fmt.Errorf("loadgen: request %d: client %d mapped to proxy %d of %d",
				i, r.Client, p, len(proxyURLs))
		}
		objURL := fmt.Sprintf("%s/obj/%d", originURL, r.Object)
		s.Requests = append(s.Requests, ScheduledRequest{
			Index:  i,
			Client: r.Client,
			Object: r.Object,
			Proxy:  p,
			URL:    fmt.Sprintf("%s/fetch?url=%s", proxyURLs[p], url.QueryEscape(objURL)),
		})
	}
	return s, nil
}

// BuildScheduleFleet resolves a trace onto a fleet topology: each
// request fronts at one of its object's k replica members (spread by
// client id), so reads fan out across the copies the way a
// fleet-aware client-side balancer would.  With k == 1 every request
// for an object lands on its owner — pure partitioning.
func BuildScheduleFleet(tr *trace.Trace, proxyURLs []string, originURL string,
	ring *fleet.Ring, k int) (*Schedule, error) {
	if len(proxyURLs) == 0 {
		return nil, fmt.Errorf("loadgen: no proxy URLs")
	}
	if ring == nil || ring.Size() == 0 {
		return nil, fmt.Errorf("loadgen: empty fleet ring")
	}
	if k < 1 {
		k = 1
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	idx := make(map[string]int, len(proxyURLs))
	for i, u := range proxyURLs {
		idx[u] = i
	}
	s := &Schedule{
		Requests:   make([]ScheduledRequest, 0, len(tr.Requests)),
		NumProxies: len(proxyURLs),
	}
	for i, r := range tr.Requests {
		objURL := fmt.Sprintf("%s/obj/%d", originURL, r.Object)
		cands := ring.ReplicasOf(fleet.KeyForURL(objURL), k)
		if len(cands) == 0 {
			return nil, fmt.Errorf("loadgen: request %d: ring returned no members", i)
		}
		front, ok := idx[cands[int(r.Client)%len(cands)]]
		if !ok {
			return nil, fmt.Errorf("loadgen: request %d: ring member %q is not a proxy URL",
				i, cands[int(r.Client)%len(cands)])
		}
		s.Requests = append(s.Requests, ScheduledRequest{
			Index:  i,
			Client: r.Client,
			Object: r.Object,
			Proxy:  front,
			URL:    fmt.Sprintf("%s/fetch?url=%s", proxyURLs[front], url.QueryEscape(objURL)),
		})
	}
	return s, nil
}
