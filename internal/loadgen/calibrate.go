package loadgen

import (
	"fmt"
	"math"
	"strings"

	"webcache/internal/netmodel"
	"webcache/internal/sim"
	"webcache/internal/trace"
)

// CalibrationSchema versions the calibration-report JSON layout.
const CalibrationSchema = 1

// TierComparison is one serving tier's live-vs-simulated hit ratio.
type TierComparison struct {
	Tier  string  `json:"tier"`
	Live  float64 `json:"live"`
	Sim   float64 `json:"sim"`
	Delta float64 `json:"delta"` // live - sim
}

// CalibrationReport is the side-by-side of a live bench run and a
// simulator replay of the same request prefix with identical
// capacities: the model-vs-deployment drift as a measurable,
// regression-testable quantity.
type CalibrationReport struct {
	Schema       int              `json:"schema"`
	Scheme       string           `json:"scheme"`
	LiveRequests int              `json:"live_requests"` // measured (post-warmup, non-error)
	SimRequests  int              `json:"sim_requests"`
	Warmup       int              `json:"warmup"`
	Tiers        []TierComparison `json:"tiers"`
	// Aggregate hit ratio = 1 - origin share: the headline number the
	// tolerance is judged on.
	AggregateLive  float64 `json:"aggregate_live"`
	AggregateSim   float64 `json:"aggregate_sim"`
	AggregateDelta float64 `json:"aggregate_delta"`
	// MaxAbsDelta is the largest per-tier |delta|.
	MaxAbsDelta float64 `json:"max_abs_delta"`
	// Tolerance (0 = report-only) bounds |AggregateDelta|.
	Tolerance       float64 `json:"tolerance,omitempty"`
	WithinTolerance bool    `json:"within_tolerance"`
}

// liveTiers are the tiers with simulator counterparts, in report order.
var liveTiers = []Tier{TierProxy, TierClientCache, TierRemoteProxy, TierOrigin}

// Calibrate replays the prefix of tr that the live run actually issued
// through the simulator under cfg and compares hit ratios per tier.
// cfg should carry the capacity plan the live topology was sized from
// (Proxy/ClientCapacityOverride) and the same warmup; Calibrate clamps
// the warmup if the live run was cut short.  tolerance bounds the
// aggregate delta (0 disables the verdict — WithinTolerance stays
// true).
func Calibrate(tr *trace.Trace, live *Result, cfg sim.Config, tolerance float64) (*CalibrationReport, error) {
	if live == nil || live.Issued == 0 {
		return nil, fmt.Errorf("loadgen: no live requests to calibrate against")
	}
	if tolerance < 0 {
		return nil, fmt.Errorf("loadgen: negative tolerance %g", tolerance)
	}
	n := live.Issued
	if n > tr.Len() {
		return nil, fmt.Errorf("loadgen: live run issued %d requests but the trace has %d", n, tr.Len())
	}
	sub := tr.Slice(0, n)
	if cfg.WarmupRequests >= n {
		cfg.WarmupRequests = n - 1
	}
	res, err := sim.Run(sub, cfg)
	if err != nil {
		return nil, fmt.Errorf("loadgen: calibration replay: %w", err)
	}

	rep := &CalibrationReport{
		Schema:       CalibrationSchema,
		Scheme:       cfg.Scheme.String(),
		LiveRequests: live.Measured,
		SimRequests:  res.Requests,
		Warmup:       cfg.WarmupRequests,
	}
	for _, t := range liveTiers {
		src, _ := t.Source()
		c := TierComparison{
			Tier: src.String(),
			Live: live.HitRatio(t),
			Sim:  res.HitRatio(src),
		}
		c.Delta = c.Live - c.Sim
		if d := math.Abs(c.Delta); d > rep.MaxAbsDelta {
			rep.MaxAbsDelta = d
		}
		rep.Tiers = append(rep.Tiers, c)
	}
	rep.AggregateLive = live.AggregateHitRatio()
	rep.AggregateSim = 1 - res.HitRatio(netmodel.SrcServer)
	rep.AggregateDelta = rep.AggregateLive - rep.AggregateSim
	rep.Tolerance = tolerance
	rep.WithinTolerance = tolerance == 0 || math.Abs(rep.AggregateDelta) <= tolerance
	return rep, nil
}

// Table renders the report as an aligned text table.
func (r *CalibrationReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "calibration: %s, live n=%d vs sim n=%d (warmup %d)\n",
		r.Scheme, r.LiveRequests, r.SimRequests, r.Warmup)
	fmt.Fprintf(&b, "%-14s %9s %9s %9s\n", "tier", "live", "sim", "delta")
	for _, c := range r.Tiers {
		fmt.Fprintf(&b, "%-14s %8.2f%% %8.2f%% %+8.2fpp\n",
			c.Tier, 100*c.Live, 100*c.Sim, 100*c.Delta)
	}
	fmt.Fprintf(&b, "%-14s %8.2f%% %8.2f%% %+8.2fpp\n",
		"aggregate-hit", 100*r.AggregateLive, 100*r.AggregateSim, 100*r.AggregateDelta)
	if r.Tolerance > 0 {
		verdict := "within"
		if !r.WithinTolerance {
			verdict = "OUTSIDE"
		}
		fmt.Fprintf(&b, "tolerance ±%.1fpp: %s\n", 100*r.Tolerance, verdict)
	}
	return b.String()
}
