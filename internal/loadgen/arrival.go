package loadgen

import (
	"fmt"
	"math/rand"
	"time"
)

// Arrival is an open-loop arrival process: Next returns the gap until
// the next request is released, independent of how the target is
// keeping up (that independence is what makes the loop "open" — the
// driver releases work on schedule and lets queueing delay surface in
// the latency histogram instead of silently throttling the workload).
//
// All processes draw from a caller-seeded source, so a (seed, rate)
// pair always yields the same schedule.
type Arrival interface {
	Next() time.Duration
}

// Poisson releases requests as a Poisson process: exponentially
// distributed interarrival gaps with mean 1/rate.
type Poisson struct {
	rate float64 // requests per second
	rng  *rand.Rand
}

// NewPoisson creates a Poisson arrival process at rate requests/second.
func NewPoisson(rate float64, seed int64) (*Poisson, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("loadgen: poisson rate %g must be positive", rate)
	}
	return &Poisson{rate: rate, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next returns the next exponential interarrival gap.
func (p *Poisson) Next() time.Duration {
	return time.Duration(p.rng.ExpFloat64() / p.rate * float64(time.Second))
}

// Bursty is an interrupted Poisson process (on/off bursts): during ON
// periods requests arrive as a Poisson process at the peak rate;
// during OFF periods the source is silent.  ON and OFF durations are
// themselves exponential with the configured means, so the effective
// average rate is peak * meanOn / (meanOn + meanOff).
type Bursty struct {
	peak            float64
	meanOn, meanOff time.Duration
	rng             *rand.Rand
	remainingOn     time.Duration
}

// NewBursty creates an on/off arrival process: Poisson at peakRate
// during ON windows of mean length meanOn, silent for OFF windows of
// mean length meanOff.
func NewBursty(peakRate float64, meanOn, meanOff time.Duration, seed int64) (*Bursty, error) {
	if peakRate <= 0 {
		return nil, fmt.Errorf("loadgen: bursty peak rate %g must be positive", peakRate)
	}
	if meanOn <= 0 || meanOff < 0 {
		return nil, fmt.Errorf("loadgen: bursty periods on=%v off=%v invalid", meanOn, meanOff)
	}
	b := &Bursty{peak: peakRate, meanOn: meanOn, meanOff: meanOff,
		rng: rand.New(rand.NewSource(seed))}
	b.remainingOn = b.expDur(b.meanOn)
	return b, nil
}

// expDur draws an exponential duration with the given mean.
func (b *Bursty) expDur(mean time.Duration) time.Duration {
	return time.Duration(b.rng.ExpFloat64() * float64(mean))
}

// Next returns the gap to the next arrival.  A Poisson gap at the peak
// rate is drawn; whenever it overruns the current ON window, the
// remainder of the window elapses, an OFF pause is inserted, and the
// residual gap carries into a fresh ON window — so gaps spanning
// silence come out burst-shaped rather than averaged.
func (b *Bursty) Next() time.Duration {
	gap := time.Duration(b.rng.ExpFloat64() / b.peak * float64(time.Second))
	var total time.Duration
	for gap > b.remainingOn {
		gap -= b.remainingOn
		total += b.remainingOn + b.expDur(b.meanOff)
		b.remainingOn = b.expDur(b.meanOn)
	}
	b.remainingOn -= gap
	return total + gap
}
