package loadgen

import (
	"context"
	"os"
	"testing"
	"time"

	"webcache/internal/obs"
)

// TestMetricsDocLoadgen holds the loadgen.* namespace in METRICS.md
// against the names one driver run registers, in both directions: an
// undocumented registration or a documented-but-dead name fails here
// instead of rotting quietly.  newRecorder pre-registers the full set,
// so a small closed-loop run on the fake target exercises every name.
func TestMetricsDocLoadgen(t *testing.T) {
	md, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("doc-smoke")
	if _, err := Run(context.Background(), testSchedule(40), &fakeTarget{}, Options{
		Mode:    ClosedLoop,
		Workers: 2,
		Warmup:  4,
		Clock:   NewFakeClock(time.Unix(0, 0)),
		Obs:     reg,
	}); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, m := range reg.Snapshot() {
		names = append(names, m.Name)
	}
	if err := obs.CheckMetricsDoc(md, names, "loadgen"); err != nil {
		t.Fatal(err)
	}
}
