package loadgen

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// exactQuantile computes the reference quantile from sorted data with
// the same ceil-rank rule the histogram uses.
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// The histogram's quantile error bound: bucket growth 2^(1/8) with
// geometric-midpoint reporting caps the relative error at 2^(1/16)-1
// ≈ 4.4%.  Verify against exact sorted data on several synthetic
// distributions.
func TestHistogramQuantileErrorBounds(t *testing.T) {
	const relBound = 0.045
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() time.Duration{
		"exponential": func() time.Duration {
			return time.Duration(rng.ExpFloat64() * float64(5*time.Millisecond))
		},
		"uniform": func() time.Duration {
			return time.Duration(rng.Int63n(int64(100 * time.Millisecond)))
		},
		"lognormal": func() time.Duration {
			return time.Duration(math.Exp(rng.NormFloat64()*1.5) * float64(time.Millisecond))
		},
		"bimodal": func() time.Duration {
			if rng.Intn(10) == 0 {
				return time.Duration(rng.Int63n(int64(2 * time.Second)))
			}
			return time.Duration(rng.Int63n(int64(time.Millisecond)))
		},
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			h := &Histogram{}
			samples := make([]time.Duration, 20000)
			for i := range samples {
				samples[i] = draw()
				h.Observe(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
				got := h.Quantile(q)
				want := exactQuantile(samples, q)
				if want < time.Microsecond { // below the histogram's 1µs bucket-0 resolution
					// Sub-resolution values share bucket 0; skip.
					continue
				}
				rel := math.Abs(float64(got)-float64(want)) / float64(want)
				if rel > relBound {
					t.Errorf("q=%.3f: got %v want %v (rel err %.3f > %.3f)",
						q, got, want, rel, relBound)
				}
			}
			if h.Max() != samples[len(samples)-1] {
				t.Errorf("max = %v, want %v", h.Max(), samples[len(samples)-1])
			}
		})
	}
}

// A constant distribution must report every quantile exactly: the
// min/max clamp collapses the bucket midpoint onto the single value.
func TestHistogramConstant(t *testing.T) {
	h := &Histogram{}
	const v = 1234567 * time.Nanosecond
	for i := 0; i < 100; i++ {
		h.Observe(v)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != v {
			t.Fatalf("q=%g: got %v, want %v", q, got, v)
		}
	}
	if h.Mean() != v || h.Min() != v || h.Max() != v {
		t.Fatalf("mean/min/max = %v/%v/%v, want %v", h.Mean(), h.Min(), h.Max(), v)
	}
}

func TestHistogramEmptyAndMerge(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	a, b := &Histogram{}, &Histogram{}
	for i := 1; i <= 1000; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 1001; i <= 2000; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count %d", a.Count())
	}
	if a.Max() != 2000*time.Millisecond || a.Min() != time.Millisecond {
		t.Fatalf("merged extremes %v..%v", a.Min(), a.Max())
	}
	got := a.Quantile(0.5)
	want := time.Second
	if rel := math.Abs(float64(got)-float64(want)) / float64(want); rel > 0.045 {
		t.Fatalf("merged median %v, want ~%v", got, want)
	}
}

// Concurrent observers must not lose samples (the recorder shares one
// histogram across all driver goroutines).
func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}
