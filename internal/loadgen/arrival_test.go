package loadgen

import (
	"math"
	"testing"
	"time"
)

// Generators are pure functions of (params, seed): they return gaps and
// never sleep, so none of these tests touch the wall clock.

func TestPoissonDeterministic(t *testing.T) {
	a, _ := NewPoisson(100, 42)
	b, _ := NewPoisson(100, 42)
	for i := 0; i < 1000; i++ {
		if ga, gb := a.Next(), b.Next(); ga != gb {
			t.Fatalf("draw %d: %v != %v for identical seeds", i, ga, gb)
		}
	}
	c, _ := NewPoisson(100, 43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d/1000 identical gaps", same)
	}
}

func TestPoissonMeanRate(t *testing.T) {
	const rate = 250.0
	p, err := NewPoisson(rate, 1)
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += p.Next()
	}
	mean := total.Seconds() / n
	want := 1 / rate
	if rel := math.Abs(mean-want) / want; rel > 0.05 {
		t.Fatalf("mean gap %.6fs, want %.6fs (rel err %.3f)", mean, want, rel)
	}
}

func TestPoissonValidation(t *testing.T) {
	for _, rate := range []float64{0, -5} {
		if _, err := NewPoisson(rate, 1); err == nil {
			t.Fatalf("rate %g accepted", rate)
		}
	}
}

func TestBurstyDeterministic(t *testing.T) {
	a, _ := NewBursty(500, 100*time.Millisecond, 300*time.Millisecond, 9)
	b, _ := NewBursty(500, 100*time.Millisecond, 300*time.Millisecond, 9)
	for i := 0; i < 1000; i++ {
		if ga, gb := a.Next(), b.Next(); ga != gb {
			t.Fatalf("draw %d: %v != %v for identical seeds", i, ga, gb)
		}
	}
}

// The IPP's effective rate is peak * meanOn / (meanOn + meanOff); the
// gap sequence must both average out to that and contain the long
// OFF-window pauses that make it bursty rather than thinned Poisson.
func TestBurstyEffectiveRateAndPauses(t *testing.T) {
	const peak = 1000.0
	meanOn, meanOff := 50*time.Millisecond, 150*time.Millisecond
	g, err := NewBursty(peak, meanOn, meanOff, 4)
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	longPauses := 0
	const n = 50000
	for i := 0; i < n; i++ {
		gap := g.Next()
		total += gap
		// A gap of >=10x the peak-rate mean can only come from an OFF
		// window being crossed.
		if gap >= 10*time.Millisecond {
			longPauses++
		}
	}
	effective := n / total.Seconds()
	duty := meanOn.Seconds() / (meanOn + meanOff).Seconds()
	want := peak * duty
	if rel := math.Abs(effective-want) / want; rel > 0.10 {
		t.Fatalf("effective rate %.1f req/s, want %.1f (rel err %.3f)", effective, want, rel)
	}
	if longPauses == 0 {
		t.Fatal("no OFF-window pauses in 50k gaps; process is not bursty")
	}
}

// meanOff=0 degenerates to plain Poisson at the peak rate.
func TestBurstyZeroOffIsPoisson(t *testing.T) {
	const peak = 400.0
	g, err := NewBursty(peak, 20*time.Millisecond, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += g.Next()
	}
	effective := n / total.Seconds()
	if rel := math.Abs(effective-peak) / peak; rel > 0.05 {
		t.Fatalf("effective rate %.1f, want %.1f", effective, peak)
	}
}

func TestBurstyValidation(t *testing.T) {
	if _, err := NewBursty(0, time.Second, time.Second, 1); err == nil {
		t.Fatal("zero peak accepted")
	}
	if _, err := NewBursty(100, 0, time.Second, 1); err == nil {
		t.Fatal("zero meanOn accepted")
	}
	if _, err := NewBursty(100, time.Second, -time.Second, 1); err == nil {
		t.Fatal("negative meanOff accepted")
	}
}
