package loadgen

import (
	"context"
	"testing"
	"time"
)

// TestFlashDisconnect pins the churn primitive itself: the victim set
// is deterministic under a seed, repeat calls skip already-dead
// daemons instead of double-closing them, and Close survives a
// topology where half the servers are already gone.
func TestFlashDisconnect(t *testing.T) {
	start := func() *Topology {
		topo, err := StartLoopback(TopologyConfig{
			Proxies:            2,
			CachesPerProxy:     3,
			ProxyCapacityBytes: []uint64{1 << 20, 1 << 20},
			CacheCapacityBytes: []uint64{1 << 20, 1 << 20, 1 << 20, 1 << 20, 1 << 20, 1 << 20},
			ObjectBytes:        64,
		})
		if err != nil {
			t.Fatal(err)
		}
		return topo
	}
	topo := start()
	closeTopo := func(tp *Topology) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := tp.Close(ctx); err != nil {
			t.Fatalf("close after churn: %v", err)
		}
	}
	defer closeTopo(topo)

	downed := topo.FlashDisconnect(0.5, 42)
	if len(downed) != 3 {
		t.Fatalf("downed %d daemons, want 3 (half of 2x3)", len(downed))
	}
	// Same seed on the same address set must pick the same victims; the
	// already-closed ones are skipped, not re-closed, so the second call
	// returns the identical list without side effects.
	again := topo.FlashDisconnect(0.5, 42)
	if len(again) != len(downed) {
		t.Fatalf("repeat churn downed %d, want %d", len(again), len(downed))
	}
	for i := range downed {
		if again[i] != downed[i] {
			t.Fatalf("victim set not deterministic: %v vs %v", downed, again)
		}
	}

	// Everything at once: fraction 1 kills the remaining half too, and
	// the deferred Close still has to return cleanly (it must skip every
	// server FlashDisconnect already closed).
	all := topo.FlashDisconnect(1.0, 7)
	if len(all) != 6 {
		t.Fatalf("full churn downed %d daemons, want all 6", len(all))
	}

	// Zero fraction is a no-op.
	topo2 := start()
	defer closeTopo(topo2)
	if v := topo2.FlashDisconnect(0, 1); v != nil {
		t.Fatalf("zero-fraction churn downed %v", v)
	}
}
