package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"webcache/internal/obs"
	"webcache/internal/obs/slo"
	"webcache/internal/prowgen"
	"webcache/internal/trace"
)

// TestClassTaggedRun drives a small loopback run with two SLO classes
// and checks the whole tagging loop: the driver's per-class ledger,
// the client-side slo.Tracker, the per-member registries the proxies
// publish their server-side slo.* gauges to, and the JSONL event
// stream — and that the client- and server-side request counts agree
// exactly.
func TestClassTaggedRun(t *testing.T) {
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests: 600,
		NumObjects:  80,
		NumClients:  12,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	classes := []slo.Class{
		{Name: "interactive", Latency: 5 * time.Second, Availability: 0.99, Window: time.Minute},
		{Name: "batch", Latency: 5 * time.Second, Availability: 0.9, Window: time.Minute},
	}
	var eventBuf bytes.Buffer
	topo, err := StartLoopback(TopologyConfig{
		Proxies:            2,
		CachesPerProxy:     1,
		ProxyCapacityBytes: []uint64{4096},
		CacheCapacityBytes: []uint64{4096},
		ObjectBytes:        64,
		MetricsPerDaemon:   true,
		SLOClasses:         classes,
		Events:             &eventBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		topo.Close(ctx)
	}()
	if len(topo.ProxyMetrics) != 2 {
		t.Fatalf("per-daemon registries = %d", len(topo.ProxyMetrics))
	}

	sched, err := BuildSchedule(tr, topo.ProxyURLs, topo.OriginURL,
		func(c trace.ClientID) int { return int(c) % 2 })
	if err != nil {
		t.Fatal(err)
	}
	clientSLO := slo.NewTracker(nil, classes, slo.DefaultThresholds)
	res, err := Run(context.Background(), sched, NewHTTPTarget(10*time.Second), Options{
		Mode:    ClosedLoop,
		Workers: 4,
		ClassFor: func(r ScheduledRequest) string {
			if r.Client%3 == 0 {
				return "batch"
			}
			return "interactive"
		},
		SLO: clientSLO,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d errors", res.Errors)
	}

	// Driver-side ledger: both classes present, counts covering the run.
	if len(res.PerClass) != 2 {
		t.Fatalf("classes = %v", classNames(res.PerClass))
	}
	total := 0
	for _, c := range res.PerClass {
		total += c.Requests
		if c.Latency.Summary().Count != int64(c.Requests) {
			t.Fatalf("class ledger latency count mismatch: %+v", c)
		}
	}
	if total != res.Measured+res.Errors {
		t.Fatalf("per-class total %d != measured+errors %d", total, res.Measured+res.Errors)
	}
	if hr := res.PerClass["interactive"].HitRatio(); hr <= 0 || hr > 1 {
		t.Fatalf("interactive hit ratio = %v", hr)
	}

	// The client-side tracker saw the same stream.
	reports := clientSLO.Report()
	var clientTotal int64
	for _, r := range reports {
		clientTotal += r.Requests
	}
	if clientTotal != int64(total) {
		t.Fatalf("client slo tracker total %d != %d", clientTotal, total)
	}

	// Server-side: the per-member registries hold the same requests —
	// summed across members, the slo ledgers must equal the driver's.
	// A /metrics scrape refreshes each member's slo.* gauges first
	// (publishStats calls the tracker's Report).
	for _, u := range topo.ProxyURLs {
		resp, err := http.Get(u + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	var serverTotal float64
	for _, reg := range topo.ProxyMetrics {
		vals := reg.Values()
		serverTotal += vals["slo.interactive.good"] + vals["slo.interactive.bad"] +
			vals["slo.batch.good"] + vals["slo.batch.bad"]
	}
	if math.Abs(serverTotal-float64(total)) > 1e-9 {
		t.Fatalf("server-side slo total %v != driver total %d", serverTotal, total)
	}

	// The report surfaces carry the class block.
	if !strings.Contains(res.Table(), "interactive") {
		t.Fatalf("table missing class rows:\n%s", res.Table())
	}
	note := res.SummaryNote()
	if _, ok := note["classes"].(map[string]any)["batch"]; !ok {
		t.Fatalf("manifest note missing classes: %v", note)
	}

	// The topology's event stream recorded the readiness flips as JSONL.
	sawReady := false
	for _, line := range strings.Split(strings.TrimSpace(eventBuf.String()), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event stream line %q: %v", line, err)
		}
		if ev.Type == "ready.up" {
			sawReady = true
		}
	}
	if !sawReady {
		t.Fatalf("no ready.up events in stream:\n%s", eventBuf.String())
	}
}
