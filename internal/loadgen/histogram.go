package loadgen

import "webcache/internal/obs"

// The lock-free log-scale latency histogram started life here and was
// promoted to internal/obs as a first-class registry metric kind
// (Registry.Histogram), so sim and httpcache instrumentation can share
// it and manifests / the /metrics endpoint see its quantiles.  These
// aliases keep the loadgen API (Result.Overall, TierComparison, ...)
// unchanged; histogram_test.go still pins the quantile-error bound
// from this package.
type (
	// Histogram is a fixed-bucket log-scale latency histogram
	// (224 buckets, 1µs lower bound, 2^(1/8) growth).
	Histogram = obs.Histogram
	// QuantileSummary is the fixed quantile set reports carry.
	QuantileSummary = obs.QuantileSummary
)
