package chaos

import (
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"webcache/internal/httpcache"
	"webcache/internal/obs"
)

// Injector turns a Scenario into the loadgen topology's handler
// wrappers (TopologyConfig.WrapProxy / WrapCache).  Fault placement is
// deterministic in the daemon's topology index — no randomness, so a
// scenario stresses the same daemons run after run and the bench gate
// compares like with like:
//
//   - the first k = round(fraction*n) daemons of each proxy are the
//     slow (or byzantine) ones;
//   - byzantine daemons alternate mode by index parity: even indices
//     corrupt served bodies, odd indices fabricate store receipts.
type Injector struct {
	scn            Scenario
	cachesPerProxy int

	// partitioned flips mid-run (StartPartition): from then on the
	// victim member — the highest-indexed fleet proxy — answers 503
	// on every fleet-internal endpoint.
	partitioned atomic.Bool

	slowHolds      *obs.Counter
	corruptBody    *obs.Counter
	fakeReceipts   *obs.Counter
	partitionDrops *obs.Counter
}

// NewInjector builds the fault adapter for one scenario.  The
// chaos.injected.* counters land in reg (nil disables counting, not
// injection).
func NewInjector(scn Scenario, cachesPerProxy int, reg *obs.Registry) *Injector {
	return &Injector{
		scn:            scn,
		cachesPerProxy: cachesPerProxy,
		slowHolds:      reg.Counter("chaos.injected.slow_holds"),
		corruptBody:    reg.Counter("chaos.injected.corrupt_bodies"),
		fakeReceipts:   reg.Counter("chaos.injected.fake_receipts"),
		partitionDrops: reg.Counter("chaos.injected.partition_drops"),
	}
}

// StartPartition cuts the victim fleet member off (no-op unless the
// scenario carries FleetPartition).
func (in *Injector) StartPartition() { in.partitioned.Store(true) }

// fleetInternal reports whether a request is inter-proxy fleet
// traffic: the membership/replication endpoints, peer lookups, and
// fetches that arrived as fleet hops — exactly what a network
// partition between proxies would cut, while the member's own
// clients keep reaching it.
func fleetInternal(r *http.Request) bool {
	return strings.HasPrefix(r.URL.Path, "/fleet/") ||
		r.URL.Path == "/peer-lookup" ||
		r.Header.Get(httpcache.FleetHopHeader) != ""
}

// affected reports whether daemon index i is in the first
// round(fraction*n) of its proxy's n daemons (at least one when the
// fraction is set at all).
func (in *Injector) affected(i int, fraction float64) bool {
	if fraction <= 0 || in.cachesPerProxy <= 0 {
		return false
	}
	k := int(math.Round(fraction * float64(in.cachesPerProxy)))
	if k < 1 {
		k = 1
	}
	return i < k
}

// WrapProxy injects the inter-proxy faults: the slow-peer stall on
// every /peer-lookup this proxy serves, and — on the partition
// victim, once StartPartition fires — a 503 on every fleet-internal
// request.
func (in *Injector) WrapProxy(proxy int, h http.Handler) http.Handler {
	victim := in.scn.FleetPartition && proxy == in.scn.FleetSize-1
	if in.scn.SlowPeerDelay <= 0 && !victim {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if victim && in.partitioned.Load() && fleetInternal(r) {
			in.partitionDrops.Inc()
			http.Error(w, "chaos: partitioned", http.StatusServiceUnavailable)
			return
		}
		if in.scn.SlowPeerDelay > 0 && r.URL.Path == "/peer-lookup" {
			in.slowHolds.Inc()
			time.Sleep(in.scn.SlowPeerDelay)
		}
		h.ServeHTTP(w, r)
	})
}

// WrapCache injects the client-cache faults: tail amplification on the
// serving paths of slow daemons, and the two byzantine behaviours.
func (in *Injector) WrapCache(_, cache int, h http.Handler) http.Handler {
	slow := in.scn.SlowPeerDelay > 0 && in.affected(cache, in.scn.SlowPeerFraction)
	byz := in.affected(cache, in.scn.ByzantineFraction)
	corrupts := byz && cache%2 == 0
	fabricates := byz && cache%2 == 1
	if !slow && !byz {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if slow && (r.URL.Path == "/object" || r.URL.Path == "/push") {
			in.slowHolds.Inc()
			time.Sleep(in.scn.SlowPeerDelay)
		}
		if fabricates && r.URL.Path == "/store" {
			// Claim success without storing a byte: the proxy's
			// directory learns a key this daemon will never serve.
			in.fakeReceipts.Inc()
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"stored":true,"evicted":null,"reason":""}`))
			return
		}
		if corrupts && r.URL.Path == "/object" {
			in.corruptBody.Inc()
			h.ServeHTTP(&corruptingWriter{ResponseWriter: w}, r)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// corruptingWriter flips every byte of a 200 response body — the
// corrupt-server byzantine mode.  Non-200 responses (404 misses, 507
// ifFree rejections) pass through untouched so the daemon's control
// signals stay honest; only the object bytes lie.
type corruptingWriter struct {
	http.ResponseWriter
	status int
}

func (cw *corruptingWriter) WriteHeader(code int) {
	cw.status = code
	cw.ResponseWriter.WriteHeader(code)
}

func (cw *corruptingWriter) Write(b []byte) (int, error) {
	if cw.status != 0 && cw.status != http.StatusOK {
		return cw.ResponseWriter.Write(b)
	}
	flipped := make([]byte, len(b))
	for i, c := range b {
		flipped[i] = c ^ 0xFF
	}
	n, err := cw.ResponseWriter.Write(flipped)
	return n, err
}
