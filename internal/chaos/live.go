package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"webcache/internal/httpcache"
	"webcache/internal/invariant"
	"webcache/internal/loadgen"
	"webcache/internal/obs"
	"webcache/internal/obs/slo"
	"webcache/internal/pastry"
	"webcache/internal/prowgen"
	"webcache/internal/sim"
	"webcache/internal/trace"
)

// LiveConfig sizes one live scenario run: a loopback topology driven
// open-loop (Poisson) through the fault adapter, with the defenses on
// or off.
type LiveConfig struct {
	Scenario Scenario
	// Workload (ProWGen) and drive.
	Requests, Objects, Clients int
	ObjectBytes                int
	Rate                       float64
	Warmup                     int
	Seed                       int64
	// Topology.
	Proxies, CachesPerProxy int
	// DefensesOn runs the hardened proxy (short per-hop deadlines,
	// hedging, digest sampling, breakers); off runs the pre-defense
	// defaults.
	DefensesOn bool
	// SLOClass, when named, attaches a driver-side slo.Tracker to the
	// run: every measured request is scored against the class's latency
	// objective and the report carries the end-of-run burn rates, so
	// the suite can show each defense's error-budget effect.
	SLOClass slo.Class
	// Check, when non-nil, attaches the conservation accountant to
	// every proxy and counts violations into the report.
	Check *invariant.Checker
	// Registry, when non-nil, receives chaos.* and loadgen.* metrics.
	Registry *obs.Registry
	// Timeout is the per-request client timeout (default 10s).
	Timeout time.Duration
}

// LiveReport is one live scenario run's outcome.
type LiveReport struct {
	Scenario   string                 `json:"scenario"`
	DefensesOn bool                   `json:"defenses_on"`
	Requests   int                    `json:"requests"`
	Errors     int                    `json:"errors"`
	HitRatio   float64                `json:"hit_ratio"`
	P999Ms     float64                `json:"p999_ms"`
	// FastBurn / SlowBurn are the end-of-run error-budget burn rates
	// against LiveConfig.SLOClass (zero when no class was configured).
	FastBurn float64                `json:"fast_burn"`
	SlowBurn float64                `json:"slow_burn"`
	Defense  httpcache.DefenseStats `json:"defense"`
	// Fleet aggregates every member's fleet counters (fleet-partition
	// scenario; zero when the topology runs the cooperating mesh).
	Fleet      httpcache.FleetStats `json:"fleet"`
	Churned    int                  `json:"churned_caches"`
	Poisoned   int                  `json:"poisoned_keys"`
	Violations int64                `json:"invariant_violations"`
}

// Hardened is the defenses-on tuning for loopback chaos runs: per-hop
// deadlines far under the injected 250ms stall, hedging from the
// observed p99, a digest check on every second client serve, and a
// fast breaker so degradation to origin happens within the run.  The
// SLO bench reuses it so its defenses-on cell runs the same posture
// the chaos suite gates on.
func Hardened() *httpcache.Defenses {
	return &httpcache.Defenses{
		PeerTimeout:         75 * time.Millisecond,
		AdaptivePeerTimeout: true,
		Hedge:               true,
		VerifyEvery:         2,
		BreakerFailures:     3,
		BreakerCooldown:     500 * time.Millisecond,
		PushTimeout:         time.Second,
	}
}

// RunLive stands the topology up behind the scenario's fault adapter,
// drives the workload, and reports hit ratio, p999, defense activity,
// and accountant violations.
func RunLive(cfg LiveConfig) (*LiveReport, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	// A fleet scenario dictates its own proxy count: the ring IS the
	// topology, so the configured Proxies yields to FleetSize.
	if cfg.Scenario.FleetSize > 1 {
		cfg.Proxies = cfg.Scenario.FleetSize
	}
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests: cfg.Requests,
		NumObjects:  cfg.Objects,
		NumClients:  cfg.Clients,
		Alpha:       cfg.Scenario.FlashAlpha, // 0 = prowgen default
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{
		Scheme:            sim.HierGD,
		NumProxies:        cfg.Proxies,
		ClientsPerCluster: (cfg.Clients + cfg.Proxies - 1) / cfg.Proxies,
		P2PClientCaches:   cfg.CachesPerProxy,
		ProxyCacheFrac:    0.05,
		ClientCacheFrac:   0.005,
		Seed:              cfg.Seed,
	}
	proxyCap, clientCap := simCfg.CapacityPlan(tr)
	toBytes := func(units []uint64) []uint64 {
		out := make([]uint64, len(units))
		for i, u := range units {
			out[i] = u * uint64(cfg.ObjectBytes)
		}
		return out
	}

	inj := NewInjector(cfg.Scenario, cfg.CachesPerProxy, cfg.Registry)
	var defenses *httpcache.Defenses
	if cfg.DefensesOn {
		defenses = Hardened()
	}
	topo, err := loadgen.StartLoopback(loadgen.TopologyConfig{
		Proxies:            cfg.Proxies,
		CachesPerProxy:     cfg.CachesPerProxy,
		ProxyCapacityBytes: toBytes(proxyCap),
		CacheCapacityBytes: toBytes(clientCap),
		ObjectBytes:        cfg.ObjectBytes,
		Defenses:           defenses,
		Check:              cfg.Check,
		WrapProxy:          inj.WrapProxy,
		WrapCache:          inj.WrapCache,
		Fleet:              cfg.Scenario.FleetSize > 1,
		FleetReplication:   cfg.Scenario.FleetReplication,
		FleetHotAfter:      8,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		topo.Close(ctx)
	}()

	rep := &LiveReport{Scenario: cfg.Scenario.Name, DefensesOn: cfg.DefensesOn}

	// Directory poisoning: re-register each proxy's first daemon with a
	// fabricated "recovered" key list covering upcoming objects nobody
	// holds, so real requests pay the wasted LAN probes.
	if cfg.Scenario.PoisonKeys > 0 {
		keys := poisonKeys(tr, topo.OriginURL, cfg.Scenario.PoisonKeys)
		for p, u := range topo.ProxyURLs {
			if len(topo.CacheAddrs[p]) == 0 {
				continue
			}
			blob, _ := json.Marshal(map[string][]string{"recovered": keys})
			resp, err := http.Post(fmt.Sprintf("%s/register?addr=%s", u, topo.CacheAddrs[p][0]),
				"application/json", bytes.NewReader(blob))
			if err != nil {
				return nil, fmt.Errorf("chaos: poisoning %s: %w", u, err)
			}
			resp.Body.Close()
			rep.Poisoned += len(keys)
		}
		cfg.Registry.Counter("chaos.poisoned_keys").Add(int64(rep.Poisoned))
	}

	// Mass churn: flash-disconnect mid-run (half the expected drive
	// time at the configured Poisson rate).
	var churnTimer *time.Timer
	if cfg.Scenario.ChurnFraction > 0 {
		after := time.Duration(float64(cfg.Requests) / cfg.Rate / 2 * float64(time.Second))
		churnTimer = time.AfterFunc(after, func() {
			downed := topo.FlashDisconnect(cfg.Scenario.ChurnFraction, cfg.Seed)
			cfg.Registry.Counter("chaos.churned_caches").Add(int64(len(downed)))
		})
		defer churnTimer.Stop()
	}

	// Mid-run partition: the victim member's fleet-internal endpoints
	// start answering 503 halfway through the drive (same midpoint the
	// churn storm uses), so the healthy members' breakers get live
	// traffic both before and after the cut.
	var partitionTimer *time.Timer
	if cfg.Scenario.FleetPartition {
		after := time.Duration(float64(cfg.Requests) / cfg.Rate / 2 * float64(time.Second))
		partitionTimer = time.AfterFunc(after, inj.StartPartition)
		defer partitionTimer.Stop()
	}

	// Fleet runs front requests at the client's home proxy too — NOT at
	// the object's ring members (that ring-aware balancer is
	// loadgen.BuildScheduleFleet, the fleet bench's front): chaos wants
	// the proxy-miss -> owner hop and its partition fallback exercised,
	// which a holder-fronted schedule would route around entirely.
	sched, err := loadgen.BuildSchedule(tr, topo.ProxyURLs, topo.OriginURL, simCfg.ProxyFor)
	if err != nil {
		return nil, err
	}
	// A flash-crowd scenario surges: ON/OFF windows at the configured
	// rate as the peak, so the churn storm lands under load spikes
	// instead of a smooth Poisson stream.
	var arrival loadgen.Arrival
	if cfg.Scenario.Bursty {
		arrival, err = loadgen.NewBursty(cfg.Rate, 500*time.Millisecond, 250*time.Millisecond, cfg.Seed)
	} else {
		arrival, err = loadgen.NewPoisson(cfg.Rate, cfg.Seed)
	}
	if err != nil {
		return nil, err
	}
	// The drive gets a private registry: loadgen.latency is a registry
	// histogram, so sharing cfg.Registry across the suite's runs would
	// pollute every later run's p999 with every earlier run's tail.
	var sloTracker *slo.Tracker
	if cfg.SLOClass.Name != "" {
		sloTracker = slo.NewTracker(nil, []slo.Class{cfg.SLOClass}, slo.DefaultThresholds)
	}
	tgt := loadgen.NewHTTPTarget(cfg.Timeout)
	res, err := loadgen.Run(context.Background(), sched, tgt, loadgen.Options{
		Mode:    loadgen.OpenLoop,
		Arrival: arrival,
		Warmup:  cfg.Warmup,
		Obs:     obs.NewRegistry("chaos-live"),
		SLO:     sloTracker,
	})
	tgt.CloseIdleConnections() // pre-dialed pool conns would stall the drain
	if err != nil {
		return nil, err
	}

	// One sweep pass so contribution condemnation (and dead-daemon
	// eviction after churn) lands inside the run's report.
	for _, px := range topo.Proxies {
		px.SweepClientCaches()
	}
	if cfg.Scenario.ChurnFraction > 0 {
		var all int
		for _, addrs := range topo.CacheAddrs {
			all += len(addrs)
		}
		rep.Churned = int(float64(all)*cfg.Scenario.ChurnFraction + 0.5)
	}

	rep.Requests = res.Measured
	rep.Errors = res.Errors
	rep.HitRatio = res.AggregateHitRatio()
	rep.P999Ms = float64(res.Overall.Quantile(0.999)) / float64(time.Millisecond)
	if sloTracker != nil {
		if reports := sloTracker.Report(); len(reports) > 0 {
			rep.FastBurn = reports[0].FastBurn
			rep.SlowBurn = reports[0].SlowBurn
		}
	}
	for p := range topo.Proxies {
		st, err := topo.ProxyStats(p)
		if err != nil {
			return nil, err
		}
		rep.Defense.Add(st.Defense)
		rep.Fleet.Add(st.Fleet)
	}
	for _, px := range topo.Proxies {
		px.ReconcileAccounting()
	}
	if cfg.Check != nil {
		rep.Violations = cfg.Check.ViolationCount()
	}
	return rep, nil
}

// poisonKeys derives the directory keys of the first n distinct
// upcoming objects — keys real requests will actually probe.
func poisonKeys(tr *trace.Trace, originURL string, n int) []string {
	seen := make(map[trace.ObjectID]bool)
	var keys []string
	for _, r := range tr.Requests {
		if seen[r.Object] {
			continue
		}
		seen[r.Object] = true
		keys = append(keys, pastry.HashString(fmt.Sprintf("%s/obj/%d", originURL, r.Object)).String())
		if len(keys) >= n {
			break
		}
	}
	return keys
}
