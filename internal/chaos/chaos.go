// Package chaos is the fault-injection layer of the adversarial
// scenario suite (ROADMAP item 4, DESIGN.md §11): a shared scenario
// vocabulary that runs against both the live loopback topology
// (internal/loadgen + internal/httpcache, via handler-wrapping fault
// adapters) and the simulator (internal/sim's chaos knobs), reporting
// hit-ratio degradation and tail latency (p999) per scenario with and
// without the httpcache defenses.  invariant.ClusterAccountant rides
// along as the oracle that no attack — and no defense — breaks cache
// conservation.
package chaos

import (
	"fmt"
	"time"
)

// Scenario names one attack shape in terms both sides understand.
// Zero-valued fields mean that fault is absent from the scenario.
type Scenario struct {
	Name        string
	Description string
	// SlowPeerDelay holds SlowPeerFraction of each proxy's client-cache
	// daemons (and every proxy's /peer-lookup) for this long per
	// request — the slow-peer tail-amplification attack.
	SlowPeerDelay    time.Duration
	SlowPeerFraction float64
	// ChurnFraction flash-disconnects this fraction of the client-cache
	// overlay mid-run — the mass-churn storm.
	ChurnFraction float64
	// FlashAlpha, when > 0, overrides the workload's Zipf exponent on
	// both sides: a flash crowd concentrates demand on a few suddenly
	// hot objects, which a steeper popularity skew models.  Bursty
	// additionally drives the live side with the ON/OFF arrival
	// process instead of Poisson, so the crowd arrives in surges.
	FlashAlpha float64
	Bursty     bool
	// ByzantineFraction turns this fraction of each proxy's daemons
	// byzantine: alternating corrupt-servers (bodies bit-flipped on the
	// way out) and receipt-fabricators (claim "stored" without
	// storing).
	ByzantineFraction float64
	// PoisonKeys plants this many bogus directory entries per proxy
	// before the run (keys of real upcoming objects the cluster does
	// not hold) — the directory-poisoning attack.
	PoisonKeys int
	// FleetSize switches the topology from the cooperating full mesh
	// to a consistent-hash fleet of that many proxies (0 keeps the
	// mesh); FleetReplication is the hot-object copy count k.
	// FleetPartition isolates the highest-indexed member mid-run:
	// its fleet-internal endpoints answer 503 until the end of the
	// run, so hops into it fail and the other members' breakers must
	// trip and route around it.
	FleetSize        int
	FleetReplication int
	FleetPartition   bool
}

// Scenarios is the suite: every entry runs live and simulated, with
// defenses off and on, under make chaos-bench.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "baseline",
			Description: "no faults injected — the control row",
		},
		{
			Name:             "slow-peer",
			Description:      "a third of each proxy's daemons answer 250ms late; peer lookups stall too",
			SlowPeerDelay:    250 * time.Millisecond,
			SlowPeerFraction: 0.34,
		},
		{
			Name:          "flash-churn",
			Description:   "half the client-cache overlay disconnects at once mid-run",
			ChurnFraction: 0.5,
		},
		{
			Name: "churn-during-flash-crowd",
			Description: "half the overlay disconnects at the peak of a flash crowd " +
				"(steep popularity skew, surged arrivals)",
			ChurnFraction: 0.5,
			FlashAlpha:    1.1,
			Bursty:        true,
		},
		{
			Name:              "byzantine",
			Description:       "half the daemons lie: corrupted bodies and fabricated store receipts",
			ByzantineFraction: 0.5,
		},
		{
			Name:        "poison",
			Description: "bogus directory entries planted for objects the cluster does not hold",
			PoisonKeys:  64,
		},
		{
			Name:             "fleet-partition",
			Description:      "one of three fleet members is isolated mid-run; breakers must trip and routing fall back",
			FleetSize:        3,
			FleetReplication: 2,
			FleetPartition:   true,
		},
	}
}

// Lookup resolves a scenario by name.
func Lookup(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("chaos: unknown scenario %q", name)
}
