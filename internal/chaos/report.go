package chaos

// Row is one scenario's BENCH_chaos.json record: the scenario run
// live and simulated, each with defenses off and on, plus the derived
// deltas the gate reads.
type Row struct {
	Scenario    string      `json:"scenario"`
	Description string      `json:"description"`
	LiveOff     *LiveReport `json:"live_off"`
	LiveOn      *LiveReport `json:"live_on"`
	SimOff      *SimReport  `json:"sim_off"`
	SimOn       *SimReport  `json:"sim_on"`
}

// P999Cut is how much the defenses cut the live tail:
// p999(off) / p999(on).  >1 means the defenses helped.
func (r Row) P999Cut() float64 {
	if r.LiveOff == nil || r.LiveOn == nil || r.LiveOn.P999Ms == 0 {
		return 0
	}
	return r.LiveOff.P999Ms / r.LiveOn.P999Ms
}

// BurnDelta is the live fast-window burn-rate change defenses-on
// minus defenses-off (negative = defenses slowed the error-budget
// burn; zero when no SLO class was configured).
func (r Row) BurnDelta() float64 {
	if r.LiveOff == nil || r.LiveOn == nil {
		return 0
	}
	return r.LiveOn.FastBurn - r.LiveOff.FastBurn
}

// HitRatioDelta is the live hit-ratio change defenses-on minus
// defenses-off (positive = defenses recovered hits).
func (r Row) HitRatioDelta() float64 {
	if r.LiveOff == nil || r.LiveOn == nil {
		return 0
	}
	return r.LiveOn.HitRatio - r.LiveOff.HitRatio
}

// Violations sums accountant violations across every run of the row —
// the acceptance gate requires zero.
func (r Row) Violations() int64 {
	var v int64
	if r.LiveOff != nil {
		v += r.LiveOff.Violations
	}
	if r.LiveOn != nil {
		v += r.LiveOn.Violations
	}
	if r.SimOff != nil {
		v += r.SimOff.Violations
	}
	if r.SimOn != nil {
		v += r.SimOn.Violations
	}
	return v
}
