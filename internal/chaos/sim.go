package chaos

import (
	"time"

	"webcache/internal/invariant"
	"webcache/internal/netmodel"
	"webcache/internal/obs"
	"webcache/internal/prowgen"
	"webcache/internal/sim"
)

// SimConfig sizes the simulator-side run of a scenario.  The same
// workload shape as the live side, replayed through the Hier-GD engine
// with the scenario mapped onto the sim chaos knobs.
type SimConfig struct {
	Scenario                   Scenario
	Requests, Objects, Clients int
	Proxies, CachesPerProxy    int
	Warmup                     int
	Seed                       int64
	DefensesOn                 bool
	// Check, when non-nil, threads the full invariant subsystem
	// (shadow policies, directory oracles, conservation ledger)
	// through the run.
	Check *invariant.Checker
}

// SimReport is one simulated scenario run's outcome.  P999Ms is in
// simulator latency units observed as milliseconds (1 unit — the
// model's Ts — is 1ms), so it is comparable across sim rows, not
// against live wall-clock rows.
type SimReport struct {
	Scenario   string  `json:"scenario"`
	DefensesOn bool    `json:"defenses_on"`
	Requests   int     `json:"requests"`
	HitRatio   float64 `json:"hit_ratio"`
	MeanMs     float64 `json:"mean_ms"`
	P999Ms     float64 `json:"p999_ms"`
	// Chaos telemetry echoed from the sim result.
	FlashChurned      int `json:"flash_churned"`
	PoisonInjected    int `json:"poison_injected"`
	PoisonSwept       int `json:"poison_swept"`
	ByzantineServes   int `json:"byzantine_serves"`
	ByzantineDetected int `json:"byzantine_detected"`
	// Fleet telemetry (fleet-partition scenario; zero otherwise).
	FleetRouted       int   `json:"fleet_routed"`
	FleetRouteSkipped int   `json:"fleet_route_skipped"`
	FleetRouteFailed  int   `json:"fleet_route_failed"`
	FleetReplicas     int   `json:"fleet_replicas"`
	Violations        int64 `json:"invariant_violations"`
}

// simKnobs maps a scenario onto sim.Config's chaos fields.  The
// mapping mirrors the live adapter: slow peers become a 10x Tp2p
// stretch (the model's validator pins Tp2p strictly under Ts, so the
// sim-side damage surfaces in the mean, not the p999 — origin misses
// still own the analytic tail), churn becomes a mid-run flash
// failure, byzantine clients corrupt P2P serves (with digest-sampling
// detection as the defense), and poisoning becomes periodic bogus
// directory entries (with the periodic sweep as the defense).
func simKnobs(cfg *sim.Config, scn Scenario, requests int, defensesOn bool) {
	if scn.SlowPeerDelay > 0 {
		cfg.Net = netmodel.Default()
		cfg.Net.Tp2p *= 10
	}
	if scn.ChurnFraction > 0 {
		cfg.FlashChurnAt = requests / 2
		cfg.FlashChurnFraction = scn.ChurnFraction
	}
	if scn.ByzantineFraction > 0 {
		cfg.ByzantineFraction = scn.ByzantineFraction
		if defensesOn {
			cfg.VerifyFraction = 0.95
		}
	}
	if scn.PoisonKeys > 0 {
		cfg.PoisonEvery = 500
		cfg.PoisonBatch = 8
		if defensesOn {
			cfg.DirSweepEvery = 250
		}
	}
	if scn.FleetSize > 1 {
		cfg.FleetSize = scn.FleetSize
		cfg.FleetReplication = scn.FleetReplication
		if scn.FleetPartition {
			// Same midpoint the live adapter's partition timer uses.
			cfg.FleetPartitionAt = requests / 2
		}
	}
}

// RunSim replays the scenario through the simulator and reports the
// same degradation metrics as the live side.
func RunSim(cfg SimConfig) (*SimReport, error) {
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests: cfg.Requests,
		NumObjects:  cfg.Objects,
		NumClients:  cfg.Clients,
		Alpha:       cfg.Scenario.FlashAlpha, // 0 = prowgen default
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	// A fleet scenario dictates its own proxy count, same as the live
	// side: the ring is the topology.
	if cfg.Scenario.FleetSize > 1 {
		cfg.Proxies = cfg.Scenario.FleetSize
	}
	// A private registry carries the per-run latency histogram the
	// p999 is read from (sim.latency is cumulative on shared
	// registries, which would mix scenarios).
	reg := obs.NewRegistry("chaos-sim")
	simCfg := sim.Config{
		Scheme:            sim.HierGD,
		NumProxies:        cfg.Proxies,
		ClientsPerCluster: (cfg.Clients + cfg.Proxies - 1) / cfg.Proxies,
		P2PClientCaches:   cfg.CachesPerProxy,
		ProxyCacheFrac:    0.05,
		ClientCacheFrac:   0.005,
		WarmupRequests:    cfg.Warmup,
		Seed:              cfg.Seed,
		Obs:               reg,
		Check:             cfg.Check,
	}
	simKnobs(&simCfg, cfg.Scenario, cfg.Requests, cfg.DefensesOn)
	res, err := sim.Run(tr, simCfg)
	if err != nil {
		return nil, err
	}
	rep := &SimReport{
		Scenario:          cfg.Scenario.Name,
		DefensesOn:        cfg.DefensesOn,
		Requests:          res.Requests,
		HitRatio:          1 - res.HitRatio(netmodel.SrcServer),
		MeanMs:            res.AvgLatency,
		P999Ms:            float64(reg.Histogram("sim.latency").Quantile(0.999)) / float64(time.Millisecond),
		FlashChurned:      res.FlashChurned,
		PoisonInjected:    res.PoisonInjected,
		PoisonSwept:       res.PoisonSwept,
		ByzantineServes:   res.ByzantineServes,
		ByzantineDetected: res.ByzantineDetected,
		FleetRouted:       res.FleetRouted,
		FleetRouteSkipped: res.FleetRouteSkipped,
		FleetRouteFailed:  res.FleetRouteFailed,
		FleetReplicas:     res.FleetReplicas,
	}
	if cfg.Check != nil {
		rep.Violations = cfg.Check.ViolationCount()
	}
	return rep, nil
}
