package chaos

import (
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"webcache/internal/invariant"
	"webcache/internal/obs"
)

func TestLookup(t *testing.T) {
	for _, s := range Scenarios() {
		got, err := Lookup(s.Name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", s.Name, err)
		}
		if got.Name != s.Name {
			t.Fatalf("Lookup(%q) = %q", s.Name, got.Name)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup of unknown scenario succeeded")
	}
}

// TestInjectorAffected pins the deterministic fault placement: the
// first round(fraction*n) daemons of each proxy, at least one whenever
// the fraction is set at all.
func TestInjectorAffected(t *testing.T) {
	tests := []struct {
		caches   int
		fraction float64
		want     []bool // per daemon index
	}{
		{3, 0.34, []bool{true, false, false}}, // round(1.02) = 1
		{3, 0.5, []bool{true, true, false}},   // round(1.5) = 2
		{4, 0.5, []bool{true, true, false, false}},
		{3, 0.01, []bool{true, false, false}}, // floor is 1, never 0
		{3, 0, []bool{false, false, false}},   // fraction unset: fault absent
	}
	for _, tc := range tests {
		in := NewInjector(Scenario{}, tc.caches, nil)
		for i, want := range tc.want {
			if got := in.affected(i, tc.fraction); got != want {
				t.Errorf("caches=%d fraction=%g affected(%d) = %v, want %v",
					tc.caches, tc.fraction, i, got, want)
			}
		}
	}
}

// TestCorruptingWriter pins the corrupt-server byzantine mode: 200
// object bodies are bit-flipped, while non-200 control responses (404
// misses, 507 ifFree rejections) pass through honest.
func TestCorruptingWriter(t *testing.T) {
	scn := Scenario{ByzantineFraction: 1}
	in := NewInjector(scn, 2, nil)

	// Even cache index: the corrupt-server mode.
	handler := in.WrapCache(0, 0, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("miss") != "" {
			http.Error(w, "no such object", http.StatusNotFound)
			return
		}
		w.Write([]byte{0x00, 0xFF, 0x42})
	}))

	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/object?key=k", nil))
	if got := rec.Body.Bytes(); got[0] != 0xFF || got[1] != 0x00 || got[2] != 0x42^0xFF {
		t.Fatalf("200 body not flipped: % x", got)
	}

	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/object?key=k&miss=1", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("miss status = %d", rec.Code)
	}
	if got := rec.Body.String(); got != "no such object\n" {
		t.Fatalf("404 body was corrupted: %q", got)
	}

	// Odd cache index: the receipt fabricator answers /store itself.
	fab := in.WrapCache(0, 1, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Fatal("fabricating daemon let the store through")
	}))
	rec = httptest.NewRecorder()
	fab.ServeHTTP(rec, httptest.NewRequest("POST", "/store?key=k", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != `{"stored":true,"evicted":null,"reason":""}` {
		t.Fatalf("fabricated receipt: %d %q", rec.Code, rec.Body.String())
	}
}

// TestChurnStormE2E is the mass-churn end-to-end: half the overlay
// flash-disconnects mid-drive with the hardened defenses on, and the
// run must finish with zero request errors (degraded, not failed) and
// a clean conservation ledger.
func TestChurnStormE2E(t *testing.T) {
	scn, err := Lookup("flash-churn")
	if err != nil {
		t.Fatal(err)
	}
	chk := invariant.New(nil)
	rep, err := RunLive(LiveConfig{
		Scenario:       scn,
		Requests:       600,
		Objects:        100,
		Clients:        20,
		ObjectBytes:    256,
		Rate:           600,
		Warmup:         50,
		Seed:           1,
		Proxies:        2,
		CachesPerProxy: 3,
		DefensesOn:     true,
		Check:          chk,
		Registry:       obs.NewRegistry("churn-e2e"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors during flash churn; want graceful degradation", rep.Errors)
	}
	if rep.Violations != 0 {
		t.Fatalf("%d conservation violations during flash churn", rep.Violations)
	}
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Churned != 3 {
		t.Fatalf("churned %d caches, want 3 (half of 2x3)", rep.Churned)
	}
	if rep.HitRatio <= 0 {
		t.Fatal("zero hit ratio: the surviving overlay served nothing")
	}
}

// TestFleetPartitionE2E is the fleet-partition end-to-end: a
// three-member consistent-hash fleet loses one member's fleet-internal
// endpoints mid-drive (503s).  With the hardened defenses on, the run
// must finish with zero request errors (hops into the victim fail over
// to origin, clients fronted at the victim are still served — the
// partition is inter-proxy only), the healthy members' breakers must
// actually trip, and the lenient fleet ledger must stay clean.
func TestFleetPartitionE2E(t *testing.T) {
	scn, err := Lookup("fleet-partition")
	if err != nil {
		t.Fatal(err)
	}
	chk := invariant.New(nil)
	reg := obs.NewRegistry("fleet-partition-e2e")
	rep, err := RunLive(LiveConfig{
		Scenario:       scn,
		Requests:       600,
		Objects:        100,
		Clients:        21,
		ObjectBytes:    256,
		Rate:           600,
		Warmup:         50,
		Seed:           1,
		Proxies:        1, // overridden: the scenario's FleetSize wins
		CachesPerProxy: 2,
		DefensesOn:     true,
		Check:          chk,
		Registry:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors during the partition; want graceful degradation", rep.Errors)
	}
	if rep.Violations != 0 {
		t.Fatalf("%d conservation violations during the partition", rep.Violations)
	}
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.HitRatio <= 0 {
		t.Fatal("zero hit ratio: the fleet served nothing")
	}
	if !rep.Fleet.Enabled || rep.Fleet.Members != scn.FleetSize {
		t.Fatalf("fleet stats not aggregated: %+v", rep.Fleet)
	}
	if rep.Fleet.Routed == 0 {
		t.Fatal("no inter-proxy routing happened; the fleet was mis-wired")
	}
	if drops := reg.Counter("chaos.injected.partition_drops").Value(); drops == 0 {
		t.Fatal("the victim dropped no fleet-internal requests; partition never fired")
	}
	if rep.Fleet.RouteFailed == 0 && rep.Fleet.RouteSkipped == 0 {
		t.Fatalf("no failed or breaker-skipped routes after the cut: %+v", rep.Fleet)
	}
	if rep.Defense.BreakerOpens == 0 {
		t.Fatalf("no breaker opened against the partitioned member: %+v", rep.Defense)
	}
}

// TestChurnDuringFlashCrowdE2E combines the two headline storms: half
// the overlay flash-disconnects at the peak of a flash crowd (Zipf
// 1.1, surged ON/OFF arrivals).  The conservation accountant
// (invariant.ClusterAccountant, attached per proxy via Check) is the
// oracle: a body lost mid-churn that a directory entry still promises,
// or a hot object double-counted when the crowd re-fetches it, is a
// ledger violation.  The hardened proxy must finish with zero request
// errors and a live hit ratio — the crowd's concentration means the
// survivors hold the hot set.
func TestChurnDuringFlashCrowdE2E(t *testing.T) {
	scn, err := Lookup("churn-during-flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	if scn.ChurnFraction == 0 || scn.FlashAlpha == 0 || !scn.Bursty {
		t.Fatalf("scenario lost a knob: %+v", scn)
	}
	chk := invariant.New(nil)
	rep, err := RunLive(LiveConfig{
		Scenario:       scn,
		Requests:       600,
		Objects:        100,
		Clients:        20,
		ObjectBytes:    256,
		Rate:           600,
		Warmup:         50,
		Seed:           1,
		Proxies:        2,
		CachesPerProxy: 3,
		DefensesOn:     true,
		Check:          chk,
		Registry:       obs.NewRegistry("flash-crowd-e2e"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors during churn-in-flash-crowd; want graceful degradation", rep.Errors)
	}
	if rep.Violations != 0 {
		t.Fatalf("%d conservation violations during churn-in-flash-crowd", rep.Violations)
	}
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Churned != 3 {
		t.Fatalf("churned %d caches, want 3 (half of 2x3)", rep.Churned)
	}
	if rep.HitRatio <= 0 {
		t.Fatal("zero hit ratio: the flash crowd's hot set should survive the churn")
	}
}

// TestChurnDuringFlashCrowdSim replays the combined scenario through
// the simulator with the full invariant subsystem attached: the
// steeper skew must not unsettle the flash-churn handling (shadow
// policies, conservation ledger, directory oracle all clean).
func TestChurnDuringFlashCrowdSim(t *testing.T) {
	scn, err := Lookup("churn-during-flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	chk := invariant.New(nil)
	rep, err := RunSim(SimConfig{
		Scenario:       scn,
		Requests:       4000,
		Objects:        400,
		Clients:        60,
		Proxies:        2,
		CachesPerProxy: 3,
		Warmup:         200,
		Seed:           1,
		DefensesOn:     true,
		Check:          chk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("%d conservation violations in the flash-crowd sim", rep.Violations)
	}
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.FlashChurned == 0 {
		t.Fatal("sim churn storm downed nothing")
	}
	if rep.HitRatio <= 0 {
		t.Fatal("zero sim hit ratio")
	}
}

// TestFleetPartitionSim replays the same scenario through the
// simulator's fleet engine: the victim's cut must surface as skipped
// and failed routes while the (lenient) replica ledger stays clean.
func TestFleetPartitionSim(t *testing.T) {
	scn, err := Lookup("fleet-partition")
	if err != nil {
		t.Fatal(err)
	}
	chk := invariant.New(nil)
	rep, err := RunSim(SimConfig{
		Scenario:       scn,
		Requests:       4000,
		Objects:        400,
		Clients:        60,
		Proxies:        1, // overridden: the scenario's FleetSize wins
		CachesPerProxy: 2,
		Warmup:         200,
		Seed:           1,
		DefensesOn:     true,
		Check:          chk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("%d conservation violations in the fleet sim", rep.Violations)
	}
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.FleetRouted == 0 {
		t.Fatal("sim fleet routed nothing")
	}
	if rep.FleetRouteSkipped == 0 {
		t.Fatal("sim partition cut no routes")
	}
	if rep.HitRatio <= 0 {
		t.Fatal("zero sim hit ratio")
	}
}

// TestMetricsDocChaos holds the chaos.* namespace in METRICS.md
// against what the injector and live runner register, in both
// directions.
func TestMetricsDocChaos(t *testing.T) {
	md, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("chaos-doc-smoke")
	NewInjector(Scenario{}, 1, reg)
	// The two counters the live runner owns (poisoning, churn).
	reg.Counter("chaos.poisoned_keys").Add(0)
	reg.Counter("chaos.churned_caches").Add(0)

	var names []string
	for _, m := range reg.Snapshot() {
		names = append(names, m.Name)
	}
	if err := obs.CheckMetricsDoc(md, names, "chaos"); err != nil {
		t.Fatal(err)
	}
}
