// Package store is the live data plane's concurrent object store: a
// sharded, lock-striped cache of HTTP bodies that composes any
// registered replacement policy (internal/cache) per shard and
// coalesces concurrent misses on the same key into one loader call.
//
// The paper's closing claim is that Hier-GD "is technically
// practical" at proxy scale (§5.3); a proxy whose every request
// serializes on one mutex is not.  The store splits the key space
// over N shards by key hash, each shard owning an independent policy
// instance and byte budget (the budgets partition the configured
// capacity exactly), so requests for different shards proceed in
// parallel and cross-shard totals are answered from atomics without
// taking any lock.  GetOrLoad adds singleflight miss coalescing: a
// thundering herd of K concurrent getters of an absent key costs one
// origin fetch, not K.
//
// The simulator keeps its deterministic single-threaded function-call
// path (internal/sim) — this package serves only the live HTTP system
// (internal/httpcache) and its benchmarks.  Observability follows the
// repo-wide contract: a nil *obs.Registry and nil *invariant.Checker
// disable metrics and shadow checking at zero cost.
package store

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"webcache/internal/cache"
	"webcache/internal/invariant"
	"webcache/internal/obs"
	"webcache/internal/trace"
)

// ErrEmptyObject rejects zero-length bodies: a zero-size entry would
// make the greedy-dual H value (cost/size) infinite and pin the
// object forever, so the policies refuse it (cache.checkAddable) and
// the store surfaces the case explicitly instead of silently coercing
// the size to 1 byte the way the old bounded store did.  Callers
// serve the empty body without caching it.
var ErrEmptyObject = errors.New("store: zero-length body is not cacheable")

// Object is one cached HTTP body with the metadata replacement
// decisions and the wire protocol need.
type Object struct {
	// HexKey is the full 128-bit objectId in hex — kept alongside the
	// folded 64-bit policy key for exactness on the wire.
	HexKey string
	Body   []byte
	// Cost is the greedy-dual fetch cost that was paid for the body.
	Cost float64
}

// Interface is the store surface the data plane programs against,
// implemented by the sharded Store and the single-mutex Baseline the
// throughput bench compares it to.
type Interface interface {
	Get(key trace.ObjectID) (Object, bool)
	Put(key trace.ObjectID, obj Object) (evicted []Object, stored bool, err error)
	GetOrLoad(key trace.ObjectID, loader Loader) (LoadView, error)
	FreeFor(key trace.ObjectID, size int) bool
	Len() int
	Used() uint64
	Capacity() uint64
}

// Config sizes a Store.
type Config struct {
	// CapacityBytes is the total byte budget, partitioned exactly over
	// the shards.
	CapacityBytes uint64
	// Shards is the lock-stripe count; 0 auto-sizes to a power of two
	// near GOMAXPROCS, backing off until every shard's budget clears
	// MinShardBudget so tiny caches degenerate to one shard (and
	// behave exactly like the unsharded design).
	Shards int
	// Policy names the per-shard replacement policy in the
	// cache.New registry ("" = cache.DefaultPolicy, greedy-dual).
	Policy string
	// Metrics, when non-nil, receives the store.* namespace (see
	// METRICS.md): the shard-lock wait timer and miss-coalescing
	// counters live, per-shard occupancy on PublishMetrics.
	Metrics *obs.Registry
	// Check, when non-nil, wraps every shard's policy in
	// invariant.CheckedPolicy and enables the cross-shard partition
	// check (CheckInvariants, also run every checkEvery mutations).
	Check *invariant.Checker
	// Label distinguishes multiple stores in violation details and
	// defaults to "store".
	Label string
}

// MinShardBudget is the smallest per-shard byte budget auto-sharding
// will accept; below it, fewer shards are used.  64 KiB keeps typical
// web objects well under the per-shard capacity so sharding never
// rejects an object the unsharded store would have taken, while any
// realistically-sized proxy cache still gets full striping.
const MinShardBudget = 64 << 10

// maxShards bounds the stripe count; past this, stripe selection and
// per-shard metrics cost more than the contention they remove.
const maxShards = 256

// checkEvery is the mutation period of the cross-shard reconciliation
// when a Checker is attached.
const checkEvery = 64

// shard is one lock stripe: an independent policy instance plus the
// body map it accounts for.
type shard struct {
	mu     sync.Mutex
	policy cache.Policy
	bodies map[trace.ObjectID]Object
}

// Store is the sharded concurrent object store.
type Store struct {
	shards []shard
	shift  uint // 64 - log2(len(shards)), for the multiplicative hash

	// Cross-shard totals, updated under the owning shard's lock but
	// read lock-free.  used is signed only so eviction deltas can be
	// applied with one Add; it never goes negative.
	used  atomic.Int64
	count atomic.Int64
	muts  atomic.Int64 // mutation counter driving the periodic check

	capacity uint64
	policy   string
	label    string
	check    *invariant.Checker

	flight flightGroup

	// Metrics (nil when disabled).
	reg       *obs.Registry
	lockWait  *obs.Timer
	loads     *obs.Counter
	coalesced *obs.Counter
}

// New builds a Store.  An explicit Config.Shards is rounded up to a
// power of two; 0 auto-sizes (see Config.Shards).  A zero capacity is
// legal and stores nothing (every object is oversized), matching the
// policies' own contract.
func New(cfg Config) (*Store, error) {
	n := cfg.Shards
	switch {
	case n < 0 || n > maxShards:
		return nil, fmt.Errorf("store: shard count %d outside [0, %d]", n, maxShards)
	case n == 0:
		n = autoShards(cfg.CapacityBytes)
	default:
		n = ceilPow2(n)
	}
	label := cfg.Label
	if label == "" {
		label = "store"
	}
	s := &Store{
		shards:   make([]shard, n),
		shift:    uint(64 - bits.TrailingZeros(uint(n))),
		capacity: cfg.CapacityBytes,
		policy:   cfg.Policy,
		label:    label,
		check:    cfg.Check,
	}
	if s.policy == "" {
		s.policy = cache.DefaultPolicy
	}
	s.flight.calls = make(map[trace.ObjectID]*flightCall)
	// Partition the capacity exactly: every shard gets capacity/n,
	// the first capacity%n shards one extra byte.
	base, extra := cfg.CapacityBytes/uint64(n), cfg.CapacityBytes%uint64(n)
	for i := range s.shards {
		budget := base
		if uint64(i) < extra {
			budget++
		}
		p, err := cache.New(s.policy, budget)
		if err != nil {
			return nil, err
		}
		s.shards[i].policy = invariant.WrapPolicy(p, cfg.Check, fmt.Sprintf("%s.shard%d", label, i))
		s.shards[i].bodies = make(map[trace.ObjectID]Object)
	}
	s.SetMetrics(cfg.Metrics)
	return s, nil
}

// SetMetrics attaches (or detaches, with nil) the registry receiving
// the store.* namespace.  Not safe to call once the store is serving
// traffic — same contract as the daemons' SetMetrics.
func (s *Store) SetMetrics(reg *obs.Registry) {
	s.reg = reg
	if reg == nil {
		s.lockWait, s.loads, s.coalesced = nil, nil, nil
		return
	}
	s.lockWait = reg.Timer("store.lock_wait")
	s.loads = reg.Counter("store.loads")
	s.coalesced = reg.Counter("store.coalesced")
}

// autoShards picks a power-of-two stripe count near GOMAXPROCS,
// backed off until each shard's budget clears MinShardBudget.
func autoShards(capacity uint64) int {
	n := ceilPow2(runtime.GOMAXPROCS(0))
	if n > 64 {
		n = 64
	}
	for n > 1 && capacity/uint64(n) < MinShardBudget {
		n >>= 1
	}
	return n
}

// ceilPow2 rounds n up to the next power of two (min 1).
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// shardFor selects the key's stripe.  Keys are already folded hashes,
// but a multiplicative mix keeps the stripe choice independent of any
// structure in the low bits.
func (s *Store) shardFor(key trace.ObjectID) *shard {
	if len(s.shards) == 1 {
		return &s.shards[0]
	}
	h := uint64(key) * 0x9E3779B97F4A7C15
	return &s.shards[h>>s.shift]
}

// lock acquires the shard's mutex, observing the wait when metrics
// are on.
func (s *Store) lock(sh *shard) {
	if s.lockWait == nil {
		sh.mu.Lock()
		return
	}
	start := time.Now()
	sh.mu.Lock()
	s.lockWait.Observe(time.Since(start))
}

// Get returns the object and refreshes its replacement metadata.
func (s *Store) Get(key trace.ObjectID) (Object, bool) {
	sh := s.shardFor(key)
	s.lock(sh)
	defer sh.mu.Unlock()
	if !sh.policy.Access(key) {
		return Object{}, false
	}
	return sh.bodies[key], true
}

// Put stores an object in its key's shard and returns what was
// evicted to make room.  stored is false when the object exceeds the
// shard's budget (nothing is evicted); an already-present key is
// refreshed instead (stored true, no evictions).  A zero-length body
// returns ErrEmptyObject and is not cached — the caller serves it
// uncached (see the variable's comment).
func (s *Store) Put(key trace.ObjectID, obj Object) (evicted []Object, stored bool, err error) {
	size := len(obj.Body)
	if size == 0 {
		return nil, false, ErrEmptyObject
	}
	sh := s.shardFor(key)
	s.lock(sh)
	if sh.policy.Access(key) {
		sh.mu.Unlock()
		return nil, true, nil
	}
	if uint64(size) > sh.policy.Capacity() {
		sh.mu.Unlock()
		return nil, false, nil
	}
	for _, ev := range sh.policy.Add(cache.Entry{Obj: key, Size: uint32(size), Cost: obj.Cost}) {
		evicted = append(evicted, sh.bodies[ev.Obj])
		delete(sh.bodies, ev.Obj)
		s.used.Add(-int64(ev.Size))
		s.count.Add(-1)
	}
	sh.bodies[key] = obj
	s.used.Add(int64(size))
	s.count.Add(1)
	sh.mu.Unlock()
	s.mutated()
	return evicted, true, nil
}

// Contains reports presence without touching replacement metadata.
func (s *Store) Contains(key trace.ObjectID) bool {
	sh := s.shardFor(key)
	s.lock(sh)
	defer sh.mu.Unlock()
	return sh.policy.Contains(key)
}

// FreeFor reports whether size bytes fit in key's shard without
// eviction — the diversion probe (§4.3).  A zero size trivially fits;
// empty bodies are rejected by Put, not here.
func (s *Store) FreeFor(key trace.ObjectID, size int) bool {
	sh := s.shardFor(key)
	s.lock(sh)
	defer sh.mu.Unlock()
	return sh.policy.Used()+uint64(size) <= sh.policy.Capacity()
}

// Len reports the cached object count across all shards (lock-free).
func (s *Store) Len() int { return int(s.count.Load()) }

// Used reports the total resident bytes across all shards
// (lock-free).
func (s *Store) Used() uint64 { return uint64(s.used.Load()) }

// Capacity is the configured total byte budget.
func (s *Store) Capacity() uint64 { return s.capacity }

// NumShards reports the stripe count.
func (s *Store) NumShards() int { return len(s.shards) }

// PolicyName reports the per-shard replacement policy's registry
// name.
func (s *Store) PolicyName() string { return s.policy }

// mutated drives the periodic cross-shard reconciliation when a
// Checker is attached.
func (s *Store) mutated() {
	if s.check == nil {
		return
	}
	if s.muts.Add(1)%checkEvery == 0 {
		s.CheckInvariants()
	}
}

// lockAll acquires every shard lock in index order (the only
// multi-lock path, so the ordering is a total one and cannot
// deadlock); the returned func releases them.
func (s *Store) lockAll() func() {
	for i := range s.shards {
		s.lock(&s.shards[i])
	}
	return func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}
}

// Snapshot returns a consistent per-shard accounting snapshot (all
// shards locked simultaneously, so in-flight updates quiesce).
func (s *Store) Snapshot() []invariant.ShardSnapshot {
	unlock := s.lockAll()
	defer unlock()
	out := make([]invariant.ShardSnapshot, len(s.shards))
	for i := range s.shards {
		out[i] = invariant.ShardSnapshot{
			Used:     s.shards[i].policy.Used(),
			Capacity: s.shards[i].policy.Capacity(),
			Len:      s.shards[i].policy.Len(),
		}
	}
	return out
}

// Item pairs a resident object with its folded policy key, for
// callers that need to enumerate the store (fleet rebalancing).
type Item struct {
	Key    trace.ObjectID
	Object Object
}

// Items returns every resident object, shard by shard (each shard is
// locked only while it is copied, so the walk does not quiesce the
// whole store).  Bodies are shared, not copied — callers must treat
// them as read-only.
func (s *Store) Items() []Item {
	out := make([]Item, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		s.lock(sh)
		for key, obj := range sh.bodies {
			out = append(out, Item{Key: key, Object: obj})
		}
		sh.mu.Unlock()
	}
	return out
}

// CheckInvariants reconciles the atomic cross-shard totals against a
// locked per-shard snapshot (invariant.CheckShardPartition); a nil
// Checker makes it a no-op.
func (s *Store) CheckInvariants() {
	if s.check == nil {
		return
	}
	unlock := s.lockAll()
	snap := make([]invariant.ShardSnapshot, len(s.shards))
	for i := range s.shards {
		snap[i] = invariant.ShardSnapshot{
			Used:     s.shards[i].policy.Used(),
			Capacity: s.shards[i].policy.Capacity(),
			Len:      s.shards[i].policy.Len(),
		}
	}
	used, count := uint64(s.used.Load()), int(s.count.Load())
	unlock()
	s.check.CheckShardPartition(s.label, snap, used, s.capacity, count)
}

// PublishMetrics folds the store's occupancy into its registry as
// store.* gauges (scrape-time snapshot; the live counters and the
// lock-wait timer accumulate continuously).  No-op without a
// registry.
func (s *Store) PublishMetrics() {
	if s.reg == nil {
		return
	}
	s.reg.Gauge("store.shards").Set(float64(len(s.shards)))
	s.reg.Gauge("store.capacity_bytes").Set(float64(s.capacity))
	s.reg.Gauge("store.used_bytes").Set(float64(s.Used()))
	s.reg.Gauge("store.objects").Set(float64(s.Len()))
	for i, snap := range s.Snapshot() {
		s.reg.Gauge(fmt.Sprintf("store.shard.%d.used_bytes", i)).Set(float64(snap.Used))
		s.reg.Gauge(fmt.Sprintf("store.shard.%d.objects", i)).Set(float64(snap.Len))
	}
}

var _ Interface = (*Store)(nil)
