package store

import (
	"bytes"
	"fmt"
	"testing"

	"webcache/internal/store/disk"
)

// newTiered builds a small memory store over a disk tier in a test
// temp dir.
func newTestTiered(t *testing.T, memCap, diskCap uint64) *Tiered {
	t.Helper()
	mem, err := New(Config{CapacityBytes: memCap, Shards: 1, Label: "tiered-test"})
	if err != nil {
		t.Fatal(err)
	}
	dsk, err := disk.Open(disk.Config{Dir: t.TempDir(), CapacityBytes: diskCap})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTiered(mem, dsk, "disk-tag")
	t.Cleanup(func() { tr.Close() })
	return tr
}

func tieredObj(k uint64, n int) Object {
	body := bytes.Repeat([]byte{byte(k)}, n)
	return Object{HexKey: fmt.Sprintf("%032x", k), Body: body, Cost: 1}
}

// An object evicted from the memory tier stays readable through the
// disk log; promotion only happens when the memory shard has free
// room for it.
func TestTieredReadFallsBackToDisk(t *testing.T) {
	tr := newTestTiered(t, 512, 1<<20)
	if _, stored, err := tr.Put(1, tieredObj(1, 300)); !stored || err != nil {
		t.Fatalf("put 1: stored=%v err=%v", stored, err)
	}
	if _, stored, err := tr.Put(2, tieredObj(2, 300)); !stored || err != nil {
		t.Fatalf("put 2: stored=%v err=%v", stored, err)
	}
	if !tr.Sync() {
		t.Fatal("sync failed")
	}
	// 1 was evicted from the 512-byte memory tier to make room for 2.
	if tr.Store.Contains(1) {
		t.Fatal("memory tier still holds the evicted object")
	}
	obj, ok := tr.Get(1)
	if !ok || !bytes.Equal(obj.Body, tieredObj(1, 300).Body) {
		t.Fatalf("disk fallback: ok=%v", ok)
	}
	// No promotion: 300 resident + 300 promoted would exceed 512.
	if tr.Store.Contains(1) {
		t.Fatal("promotion evicted a resident object")
	}
	if !tr.Contains(1) || !tr.Contains(2) || tr.Contains(3) {
		t.Fatal("Contains disagrees with tier contents")
	}
}

// A disk hit with free memory room is promoted back into the memory
// tier.
func TestTieredPromotion(t *testing.T) {
	tr := newTestTiered(t, 1<<20, 1<<20)
	tr.Put(1, tieredObj(1, 300))
	if !tr.Sync() {
		t.Fatal("sync failed")
	}
	// Drop from memory only (shard 0 is the only shard), leaving the
	// disk copy in place — the state a memory eviction leaves behind.
	sh := &tr.Store.shards[0]
	sh.mu.Lock()
	if ent, ok := sh.policy.Remove(1); ok {
		delete(sh.bodies, 1)
		tr.Store.used.Add(-int64(ent.Size))
		tr.Store.count.Add(-1)
	}
	sh.mu.Unlock()

	if _, ok := tr.Get(1); !ok {
		t.Fatal("disk tier lost the object")
	}
	if !tr.Store.Contains(1) {
		t.Fatal("disk hit was not promoted despite free memory")
	}
}

// An object too large for every memory shard still persists: stored
// is false (memory refused) but err is nil and the disk tier serves
// it afterwards.
func TestTieredOversizedObjectPersists(t *testing.T) {
	tr := newTestTiered(t, 256, 1<<20)
	evicted, stored, err := tr.Put(7, tieredObj(7, 1024))
	if err != nil || stored || len(evicted) != 0 {
		t.Fatalf("oversized put: evicted=%d stored=%v err=%v", len(evicted), stored, err)
	}
	if !tr.Sync() {
		t.Fatal("sync failed")
	}
	obj, ok := tr.Get(7)
	if !ok || len(obj.Body) != 1024 {
		t.Fatalf("oversized object not servable from disk: ok=%v", ok)
	}
}

// GetOrLoad satisfies a flight from the disk tier without running the
// caller's loader, tagged with the tier's disk tag; a genuine miss
// runs the loader and persists the result.
func TestTieredGetOrLoad(t *testing.T) {
	tr := newTestTiered(t, 256, 1<<20)
	tr.Put(7, tieredObj(7, 1024)) // memory refuses, disk keeps
	if !tr.Sync() {
		t.Fatal("sync failed")
	}

	loaderRan := false
	view, err := tr.GetOrLoad(7, func() (Object, string, error) {
		loaderRan = true
		return Object{}, "", fmt.Errorf("should not run")
	})
	if err != nil || loaderRan {
		t.Fatalf("disk-resident flight ran the loader (err=%v)", err)
	}
	if view.Tag != "disk-tag" || len(view.Object.Body) != 1024 {
		t.Fatalf("flight tag %q, body %d bytes", view.Tag, len(view.Object.Body))
	}

	view, err = tr.GetOrLoad(8, func() (Object, string, error) {
		return tieredObj(8, 100), "origin", nil
	})
	if err != nil || view.Tag != "origin" {
		t.Fatalf("miss flight: tag %q err %v", view.Tag, err)
	}
	if !tr.Sync() {
		t.Fatal("sync failed")
	}
	if !tr.Disk().Contains(8) {
		t.Fatal("loaded object was not persisted to disk")
	}
}
