package store

import (
	"sync"

	"webcache/internal/trace"
)

// Singleflight miss coalescing: concurrent getters of an absent key
// block on one loader call and share its result, so a thundering herd
// on a hot URL costs one origin fetch (the coalesced-fetch suppression
// both cooperative-caching surveys treat as table stakes for a real
// proxy).  The implementation is the standard flight-group shape: a
// small map of in-flight calls keyed by object id, each with a done
// channel the waiters park on.

// Loader fetches an absent object.  It is called at most once per
// flight; the Tag is an opaque caller annotation (the serving tier in
// internal/httpcache) propagated to every coalesced waiter.
type Loader func() (obj Object, tag string, err error)

// LoadOutcome says how GetOrLoad satisfied a request.
type LoadOutcome int

const (
	// OutcomeHit: the object was already cached.
	OutcomeHit LoadOutcome = iota
	// OutcomeLoaded: this caller won the flight and ran the loader.
	OutcomeLoaded
	// OutcomeCoalesced: another caller's in-flight load was shared.
	OutcomeCoalesced
)

// String renders the outcome for logs and tests.
func (o LoadOutcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeLoaded:
		return "loaded"
	case OutcomeCoalesced:
		return "coalesced"
	default:
		return "unknown"
	}
}

// LoadView is GetOrLoad's result.
type LoadView struct {
	Object  Object
	Tag     string // loader annotation (zero on OutcomeHit)
	Outcome LoadOutcome
	// Stored and Evicted are set only for the flight winner
	// (OutcomeLoaded): whether the loaded object was inserted, and
	// what was evicted to make room — the winner destages these.
	// Stored is false for empty or shard-oversized bodies, which are
	// served uncached.
	Stored  bool
	Evicted []Object
}

type flightCall struct {
	done chan struct{}
	dups int // waiters that joined (under flightGroup.mu; tests observe it)
	obj  Object
	tag  string
	err  error
}

type flightGroup struct {
	mu    sync.Mutex
	calls map[trace.ObjectID]*flightCall
}

// GetOrLoad returns the cached object, or loads it exactly once per
// concurrent flight: the winner runs loader, inserts the result
// (before releasing the waiters, so a sustained herd cannot start a
// second load), and reports what to destage; every waiter shares the
// winner's body — and the winner's error, which propagates to all of
// them.
func (s *Store) GetOrLoad(key trace.ObjectID, loader Loader) (LoadView, error) {
	if obj, ok := s.Get(key); ok {
		return LoadView{Object: obj, Outcome: OutcomeHit}, nil
	}
	s.flight.mu.Lock()
	if c, ok := s.flight.calls[key]; ok {
		c.dups++
		s.flight.mu.Unlock()
		<-c.done
		if c.err != nil {
			return LoadView{Outcome: OutcomeCoalesced}, c.err
		}
		if s.coalesced != nil {
			s.coalesced.Inc()
		}
		return LoadView{Object: c.obj, Tag: c.tag, Outcome: OutcomeCoalesced}, nil
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight.calls[key] = c
	s.flight.mu.Unlock()

	if s.loads != nil {
		s.loads.Inc()
	}
	view := LoadView{Outcome: OutcomeLoaded}
	c.obj, c.tag, c.err = loader()
	if c.err == nil {
		view.Object, view.Tag = c.obj, c.tag
		evicted, stored, perr := s.Put(key, c.obj)
		if perr == nil {
			// perr != nil is ErrEmptyObject: serve uncached, Stored
			// stays false.
			view.Stored, view.Evicted = stored, evicted
		}
	}
	s.flight.mu.Lock()
	delete(s.flight.calls, key)
	s.flight.mu.Unlock()
	close(c.done)
	return view, c.err
}
