package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"webcache/internal/invariant"
	"webcache/internal/obs"
	"webcache/internal/trace"
)

// TestStoreConcurrentAccess hammers get/put/evict from many
// goroutines across shards under the race detector, with every shard
// wrapped in the invariant oracle and the cross-shard reconciliation
// running periodically; the run must end violation-free with totals
// that reconcile.
func TestStoreConcurrentAccess(t *testing.T) {
	chk := invariant.New(nil)
	s := mustNew(t, Config{CapacityBytes: 8 << 10, Shards: 8, Check: chk, Metrics: obs.NewRegistry("race")})
	const workers = 8
	const opsPerWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				key := trace.ObjectID((w*opsPerWorker + i*7) % 257)
				if _, ok := s.Get(key); !ok {
					s.Put(key, Object{HexKey: fmt.Sprintf("%x", key), Body: body(1 + i%128), Cost: 1})
				}
				if i%97 == 0 {
					s.FreeFor(key, 64)
					s.Len()
					s.Used()
				}
			}
		}(w)
	}
	wg.Wait()
	s.CheckInvariants()
	s.PublishMetrics()
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
	if chk.Checks() == 0 {
		t.Fatal("invariant checker saw no assertions")
	}
	// The atomics must equal the locked ground truth when quiescent.
	var used uint64
	n := 0
	for _, snap := range s.Snapshot() {
		used += snap.Used
		n += snap.Len
	}
	if used != s.Used() || n != s.Len() {
		t.Fatalf("atomic totals (%d, %d) != shard sums (%d, %d)", s.Used(), s.Len(), used, n)
	}
}

// TestStoreCoalescedLoad parks K concurrent misses of one key on a
// single loader call: exactly one load runs, every caller gets the
// body, and the coalesced counter accounts for the K-1 waiters.
func TestStoreCoalescedLoad(t *testing.T) {
	reg := obs.NewRegistry("coalesce")
	s := mustNew(t, Config{CapacityBytes: 1 << 20, Shards: 4, Metrics: reg})
	const K = 32
	var loads atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]LoadView, K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.GetOrLoad(42, func() (Object, string, error) {
				loads.Add(1)
				<-gate // hold the flight open until every goroutine has joined
				return Object{HexKey: "2a", Body: body(100), Cost: 1}, "origin", nil
			})
		}(i)
	}
	// Wait until the winner is inside the loader and all K-1 others
	// are parked on the flight, then release the loader.
	for {
		s.flight.mu.Lock()
		c, inFlight := s.flight.calls[42]
		joined := 0
		if inFlight {
			joined = c.dups
		}
		s.flight.mu.Unlock()
		if joined == K-1 {
			break
		}
	}
	close(gate)
	wg.Wait()

	if got := loads.Load(); got != 1 {
		t.Fatalf("%d loader calls under %d concurrent misses, want 1", got, K)
	}
	winners, coalesced := 0, 0
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if len(results[i].Object.Body) != 100 || results[i].Tag != "origin" {
			t.Fatalf("caller %d got %+v", i, results[i])
		}
		switch results[i].Outcome {
		case OutcomeLoaded:
			winners++
			if !results[i].Stored {
				t.Fatal("winner's load was not stored")
			}
		case OutcomeCoalesced:
			coalesced++
		default:
			t.Fatalf("caller %d outcome %v", i, results[i].Outcome)
		}
	}
	if winners != 1 || coalesced != K-1 {
		t.Fatalf("winners=%d coalesced=%d, want 1 and %d", winners, coalesced, K-1)
	}
	if got := reg.Values()["store.coalesced"]; got != K-1 {
		t.Fatalf("store.coalesced = %v, want %d", got, K-1)
	}
	if got := reg.Values()["store.loads"]; got != 1 {
		t.Fatalf("store.loads = %v, want 1", got)
	}
	// Subsequent gets are plain hits.
	if v, err := s.GetOrLoad(42, func() (Object, string, error) {
		t.Fatal("loader ran on a hit")
		return Object{}, "", nil
	}); err != nil || v.Outcome != OutcomeHit {
		t.Fatalf("post-flight GetOrLoad = (%v, %v)", v.Outcome, err)
	}
}

// TestStoreCoalescedLoadErrorPropagation: the winner's loader error
// reaches every coalesced waiter, and the failed flight leaves no
// residue — the next GetOrLoad runs a fresh loader.
func TestStoreCoalescedLoadErrorPropagation(t *testing.T) {
	s := mustNew(t, Config{CapacityBytes: 1 << 20})
	wantErr := errors.New("origin down")
	var loads atomic.Int64
	gate := make(chan struct{})
	const K = 16
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.GetOrLoad(9, func() (Object, string, error) {
				loads.Add(1)
				<-gate
				return Object{}, "", wantErr
			})
		}(i)
	}
	for {
		s.flight.mu.Lock()
		c, inFlight := s.flight.calls[9]
		joined := 0
		if inFlight {
			joined = c.dups
		}
		s.flight.mu.Unlock()
		if joined == K-1 {
			break
		}
	}
	close(gate)
	wg.Wait()
	if loads.Load() != 1 {
		t.Fatalf("%d loader calls, want 1", loads.Load())
	}
	for i, err := range errs {
		if !errors.Is(err, wantErr) {
			t.Fatalf("caller %d got %v, want the loader error", i, err)
		}
	}
	// The flight is gone; a retry loads afresh and succeeds.
	v, err := s.GetOrLoad(9, func() (Object, string, error) {
		return Object{Body: body(10), Cost: 1}, "origin", nil
	})
	if err != nil || v.Outcome != OutcomeLoaded || !v.Stored {
		t.Fatalf("retry after failed flight = (%+v, %v)", v, err)
	}
}

// TestStoreCoalesceEmptyBody: an empty loaded body is served to every
// waiter but never cached (ErrEmptyObject inside the flight is not an
// error to callers).
func TestStoreCoalesceEmptyBody(t *testing.T) {
	s := mustNew(t, Config{CapacityBytes: 1 << 20})
	v, err := s.GetOrLoad(5, func() (Object, string, error) {
		return Object{HexKey: "05"}, "origin", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Stored || v.Outcome != OutcomeLoaded {
		t.Fatalf("empty body: %+v", v)
	}
	if s.Len() != 0 {
		t.Fatal("empty body was cached")
	}
}

// TestStoreParallelDistinctLoads: misses on distinct keys do not
// serialize on each other's flights.
func TestStoreParallelDistinctLoads(t *testing.T) {
	s := mustNew(t, Config{CapacityBytes: 1 << 20, Shards: 8})
	const K = 64
	var loads atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.GetOrLoad(trace.ObjectID(i), func() (Object, string, error) {
				loads.Add(1)
				return Object{Body: body(32), Cost: 1}, "origin", nil
			})
			if err != nil || v.Outcome != OutcomeLoaded {
				t.Errorf("key %d: (%v, %v)", i, v.Outcome, err)
			}
		}(i)
	}
	wg.Wait()
	if loads.Load() != K {
		t.Fatalf("%d loads for %d distinct keys", loads.Load(), K)
	}
	if s.Len() != K {
		t.Fatalf("Len = %d, want %d", s.Len(), K)
	}
}
