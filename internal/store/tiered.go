package store

import (
	"webcache/internal/trace"

	"webcache/internal/store/disk"
)

// Tiered composes the sharded memory Store with the persistent disk
// tier (internal/store/disk) behind the same Interface: reads check
// memory first and fall back to the disk log (promoting a disk hit
// back into memory when it fits without evicting anything); writes
// land in memory synchronously and ride the disk tier's write-behind
// queue for persistence.  Memory evictions still surface to the
// caller unchanged — the paper's destaging of proxy evictions to
// client caches is orthogonal to persistence, and an evicted object
// usually stays readable from disk.
type Tiered struct {
	*Store
	disk *disk.Store
	// diskTag annotates GetOrLoad results satisfied from the disk tier
	// (the serving-tier string in internal/httpcache).
	diskTag string
}

// NewTiered wraps mem with dsk as its persistent second tier.
// diskTag is the LoadView.Tag reported when a GetOrLoad flight is
// satisfied from disk instead of the caller's loader.
func NewTiered(mem *Store, dsk *disk.Store, diskTag string) *Tiered {
	return &Tiered{Store: mem, disk: dsk, diskTag: diskTag}
}

// Disk exposes the disk tier (metrics publication, recovery results,
// shutdown draining).
func (t *Tiered) Disk() *disk.Store { return t.disk }

// toDisk converts a store object to the disk package's mirror type.
func toDisk(obj Object) disk.Object {
	return disk.Object{HexKey: obj.HexKey, Body: obj.Body, Cost: obj.Cost}
}

// fromDisk converts back.
func fromDisk(obj disk.Object) Object {
	return Object{HexKey: obj.HexKey, Body: obj.Body, Cost: obj.Cost}
}

// Get returns the object from memory, or from the disk log on a
// memory miss.  A disk hit is promoted back into memory only when its
// shard has free room — promotion must not evict hotter resident
// objects on behalf of a colder disk one.
func (t *Tiered) Get(key trace.ObjectID) (Object, bool) {
	if obj, ok := t.Store.Get(key); ok {
		return obj, true
	}
	dobj, ok := t.disk.Get(key)
	if !ok {
		return Object{}, false
	}
	obj := fromDisk(dobj)
	if t.Store.FreeFor(key, len(obj.Body)) {
		t.Store.Put(key, obj)
	}
	return obj, true
}

// Put stores the object in memory (returning the memory tier's
// evictions for destaging, exactly like the unlayered store) and
// enqueues it for disk persistence.  An object too large for its
// memory shard still persists to disk — the disk tier is typically
// orders of magnitude larger — so stored=false no longer means the
// object is unservable.
func (t *Tiered) Put(key trace.ObjectID, obj Object) (evicted []Object, stored bool, err error) {
	evicted, stored, err = t.Store.Put(key, obj)
	if err != nil {
		return evicted, stored, err
	}
	t.disk.Put(key, toDisk(obj))
	return evicted, stored, nil
}

// GetOrLoad serves from memory, then from the disk tier inside the
// singleflight (so a herd on a disk-resident key costs one log read,
// tagged diskTag), and only then runs the caller's loader; a loaded
// object is persisted to disk before the flight's waiters are
// released.
func (t *Tiered) GetOrLoad(key trace.ObjectID, loader Loader) (LoadView, error) {
	return t.Store.GetOrLoad(key, func() (Object, string, error) {
		if dobj, ok := t.disk.Get(key); ok {
			return fromDisk(dobj), t.diskTag, nil
		}
		obj, tag, err := loader()
		if err == nil {
			t.disk.Put(key, toDisk(obj))
		}
		return obj, tag, err
	})
}

// Contains reports whether key is resident in either tier without
// touching replacement metadata.
func (t *Tiered) Contains(key trace.ObjectID) bool {
	return t.Store.Contains(key) || t.disk.Contains(key)
}

// Sync blocks until every accepted Put is durable on disk.
func (t *Tiered) Sync() bool { return t.disk.Sync() }

// Close drains the disk tier's write-behind queue and closes its
// files; the memory tier needs no teardown.
func (t *Tiered) Close() error { return t.disk.Close() }

// PublishMetrics publishes both tiers' occupancy gauges.
func (t *Tiered) PublishMetrics() {
	t.Store.PublishMetrics()
	t.disk.PublishMetrics()
}

// CheckInvariants runs both tiers' checks: the memory store's
// cross-shard reconciliation and the disk tier's memory-index ↔
// disk-log agreement (against the store's attached Checker).
func (t *Tiered) CheckInvariants() {
	t.Store.CheckInvariants()
	if t.Store.check.Enabled() {
		t.disk.CheckInvariants(t.Store.check)
	}
}

var _ Interface = (*Tiered)(nil)
