package store

import (
	"sync"

	"webcache/internal/cache"
	"webcache/internal/trace"
)

// Baseline is the pre-sharding design the throughput bench compares
// the Store against: one mutex in front of one policy instance, and
// no miss coalescing — N concurrent misses on the same key run N
// loader calls, exactly like the bounded store the live daemons used
// to share.  It exists so the sharded store's multicore win is a
// measured number (BENCH_store.json) rather than a claim, and so
// behaviour-parity tests can diff the two implementations.
type Baseline struct {
	mu     sync.Mutex
	policy cache.Policy
	bodies map[trace.ObjectID]Object
}

// NewBaseline builds a single-mutex store with the named policy
// ("" = cache.DefaultPolicy).
func NewBaseline(capacityBytes uint64, policy string) (*Baseline, error) {
	p, err := cache.New(policy, capacityBytes)
	if err != nil {
		return nil, err
	}
	return &Baseline{policy: p, bodies: make(map[trace.ObjectID]Object)}, nil
}

// Get returns the object and refreshes its replacement metadata.
func (b *Baseline) Get(key trace.ObjectID) (Object, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.policy.Access(key) {
		return Object{}, false
	}
	return b.bodies[key], true
}

// Put stores an object under the single lock, mirroring Store.Put's
// contract (including ErrEmptyObject).
func (b *Baseline) Put(key trace.ObjectID, obj Object) (evicted []Object, stored bool, err error) {
	size := len(obj.Body)
	if size == 0 {
		return nil, false, ErrEmptyObject
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.policy.Access(key) {
		return nil, true, nil
	}
	if uint64(size) > b.policy.Capacity() {
		return nil, false, nil
	}
	for _, ev := range b.policy.Add(cache.Entry{Obj: key, Size: uint32(size), Cost: obj.Cost}) {
		evicted = append(evicted, b.bodies[ev.Obj])
		delete(b.bodies, ev.Obj)
	}
	b.bodies[key] = obj
	return evicted, true, nil
}

// GetOrLoad is deliberately uncoalesced: every concurrent miss runs
// its own loader call, the old design's thundering-herd behaviour.
func (b *Baseline) GetOrLoad(key trace.ObjectID, loader Loader) (LoadView, error) {
	if obj, ok := b.Get(key); ok {
		return LoadView{Object: obj, Outcome: OutcomeHit}, nil
	}
	obj, tag, err := loader()
	if err != nil {
		return LoadView{Outcome: OutcomeLoaded}, err
	}
	view := LoadView{Object: obj, Tag: tag, Outcome: OutcomeLoaded}
	if evicted, stored, perr := b.Put(key, obj); perr == nil {
		view.Stored, view.Evicted = stored, evicted
	}
	return view, nil
}

// FreeFor reports whether size bytes fit without eviction.
func (b *Baseline) FreeFor(_ trace.ObjectID, size int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.policy.Used()+uint64(size) <= b.policy.Capacity()
}

// Len reports the cached object count.
func (b *Baseline) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.policy.Len()
}

// Used reports the resident bytes.
func (b *Baseline) Used() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.policy.Used()
}

// Capacity is the configured byte budget.
func (b *Baseline) Capacity() uint64 {
	return b.policy.Capacity()
}

var _ Interface = (*Baseline)(nil)
