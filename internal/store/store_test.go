package store

import (
	"errors"
	"fmt"
	"testing"

	"webcache/internal/invariant"
	"webcache/internal/obs"
	"webcache/internal/trace"
)

func body(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func mustNew(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestStoreBasicPutGet(t *testing.T) {
	s := mustNew(t, Config{CapacityBytes: 1000, Shards: 4})
	if _, ok := s.Get(1); ok {
		t.Fatal("empty store reports a hit")
	}
	evicted, stored, err := s.Put(1, Object{HexKey: "01", Body: body(100), Cost: 1})
	if err != nil || !stored || len(evicted) != 0 {
		t.Fatalf("Put = (%v, %v, %v)", evicted, stored, err)
	}
	obj, ok := s.Get(1)
	if !ok || len(obj.Body) != 100 || obj.HexKey != "01" {
		t.Fatalf("Get = (%+v, %v)", obj, ok)
	}
	if s.Len() != 1 || s.Used() != 100 {
		t.Fatalf("Len/Used = %d/%d, want 1/100", s.Len(), s.Used())
	}
	// Re-putting a present key refreshes instead of duplicating.
	if _, stored, err := s.Put(1, Object{Body: body(100)}); !stored || err != nil {
		t.Fatalf("refresh Put failed")
	}
	if s.Len() != 1 || s.Used() != 100 {
		t.Fatalf("refresh changed accounting: Len/Used = %d/%d", s.Len(), s.Used())
	}
}

func TestStoreEmptyBodyRejectedExplicitly(t *testing.T) {
	s := mustNew(t, Config{CapacityBytes: 1000})
	_, stored, err := s.Put(7, Object{HexKey: "07"})
	if !errors.Is(err, ErrEmptyObject) || stored {
		t.Fatalf("Put(empty) = (stored=%v, err=%v), want ErrEmptyObject", stored, err)
	}
	if s.Len() != 0 || s.Used() != 0 {
		t.Fatal("empty body leaked into accounting")
	}
	// The real body length is preserved in accounting — no size
	// coercion anywhere: a 1-byte object accounts exactly 1 byte.
	s.Put(8, Object{Body: body(1), Cost: 1})
	if s.Used() != 1 {
		t.Fatalf("Used = %d after 1-byte put, want 1", s.Used())
	}
}

func TestStoreShardBudgetEdgeCases(t *testing.T) {
	// 4 shards x 250 bytes: an object that fits the total capacity but
	// not any single shard's budget is rejected (stored=false, no
	// error) — the documented sharding artifact.
	s := mustNew(t, Config{CapacityBytes: 1000, Shards: 4})
	_, stored, err := s.Put(1, Object{Body: body(600), Cost: 1})
	if stored || err != nil {
		t.Fatalf("shard-oversized Put = (stored=%v, err=%v), want (false, nil)", stored, err)
	}
	// At exactly the shard budget it fits.
	if _, stored, _ := s.Put(2, Object{Body: body(250), Cost: 1}); !stored {
		t.Fatal("shard-budget-sized object rejected")
	}
	// Larger than the whole capacity is rejected too.
	if _, stored, _ := s.Put(3, Object{Body: body(1200), Cost: 1}); stored {
		t.Fatal("capacity-oversized object stored")
	}
}

func TestStoreCapacityPartitionExact(t *testing.T) {
	// An odd capacity must still partition exactly (remainder spread
	// one byte at a time), verified via the invariant checker.
	for _, shards := range []int{1, 2, 4, 8, 16} {
		chk := invariant.New(nil)
		s := mustNew(t, Config{CapacityBytes: 1003, Shards: shards, Check: chk})
		s.CheckInvariants()
		if err := chk.Err(); err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		var sum uint64
		for _, snap := range s.Snapshot() {
			sum += snap.Capacity
		}
		if sum != 1003 {
			t.Fatalf("%d shards: budgets sum to %d, want 1003", shards, sum)
		}
	}
}

func TestStoreEvictionAccounting(t *testing.T) {
	chk := invariant.New(nil)
	s := mustNew(t, Config{CapacityBytes: 300, Shards: 1, Check: chk})
	for i := 0; i < 10; i++ {
		if _, stored, err := s.Put(trace.ObjectID(i), Object{HexKey: fmt.Sprintf("%02d", i), Body: body(100), Cost: 1}); !stored || err != nil {
			t.Fatalf("Put %d failed (stored=%v, err=%v)", i, stored, err)
		}
	}
	if s.Len() != 3 || s.Used() != 300 {
		t.Fatalf("Len/Used = %d/%d, want 3/300", s.Len(), s.Used())
	}
	s.CheckInvariants()
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreFreeFor(t *testing.T) {
	s := mustNew(t, Config{CapacityBytes: 200, Shards: 1})
	if !s.FreeFor(1, 200) {
		t.Fatal("empty store reports no space for a capacity-sized object")
	}
	s.Put(1, Object{Body: body(150), Cost: 1})
	if s.FreeFor(2, 100) {
		t.Fatal("FreeFor ignores residency")
	}
	if !s.FreeFor(2, 50) {
		t.Fatal("FreeFor rejects a fitting object")
	}
}

func TestStoreShardSizing(t *testing.T) {
	// A tiny capacity degenerates to one shard, preserving the
	// unsharded design's behaviour exactly.
	if s := mustNew(t, Config{CapacityBytes: 4096}); s.NumShards() != 1 {
		t.Fatalf("tiny store has %d shards, want 1", s.NumShards())
	}
	// Explicit shard counts round up to powers of two.
	if s := mustNew(t, Config{CapacityBytes: 1 << 20, Shards: 3}); s.NumShards() != 4 {
		t.Fatalf("Shards:3 rounds to %d, want 4", s.NumShards())
	}
	if _, err := New(Config{CapacityBytes: 1 << 20, Shards: maxShards + 1}); err == nil {
		t.Fatal("shard count above maxShards accepted")
	}
	// Zero capacity is legal and stores nothing.
	z := mustNew(t, Config{})
	if _, stored, err := z.Put(1, Object{Body: body(1)}); stored || err != nil {
		t.Fatalf("zero-capacity Put = (stored=%v, err=%v), want (false, nil)", stored, err)
	}
}

// TestStoreMatchesBaselineSequentially diffs the sharded store
// (forced to one shard) against the single-mutex Baseline over a
// deterministic op mix: identical stores, hits, and evictions.
func TestStoreMatchesBaselineSequentially(t *testing.T) {
	s := mustNew(t, Config{CapacityBytes: 1000, Shards: 1})
	b, err := NewBaseline(1000, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := trace.ObjectID(i % 37)
		size := 1 + (i*13)%200
		_, okS := s.Get(key)
		_, okB := b.Get(key)
		if okS != okB {
			t.Fatalf("op %d: Get diverged (%v vs %v)", i, okS, okB)
		}
		if !okS {
			evS, stS, errS := s.Put(key, Object{Body: body(size), Cost: 1})
			evB, stB, errB := b.Put(key, Object{Body: body(size), Cost: 1})
			if stS != stB || (errS == nil) != (errB == nil) || len(evS) != len(evB) {
				t.Fatalf("op %d: Put diverged (%v/%v/%v vs %v/%v/%v)", i, len(evS), stS, errS, len(evB), stB, errB)
			}
		}
		if s.Len() != b.Len() || s.Used() != b.Used() {
			t.Fatalf("op %d: accounting diverged (%d/%d vs %d/%d)", i, s.Len(), s.Used(), b.Len(), b.Used())
		}
	}
}

func TestStorePublishMetrics(t *testing.T) {
	reg := obs.NewRegistry("store-test")
	s := mustNew(t, Config{CapacityBytes: 1000, Shards: 2, Metrics: reg})
	s.Put(1, Object{Body: body(10), Cost: 1})
	s.PublishMetrics()
	vals := reg.Values()
	if vals["store.shards"] != 2 {
		t.Fatalf("store.shards = %v, want 2", vals["store.shards"])
	}
	if vals["store.used_bytes"] != 10 {
		t.Fatalf("store.used_bytes = %v, want 10", vals["store.used_bytes"])
	}
	if _, ok := vals["store.shard.0.used_bytes"]; !ok {
		t.Fatal("per-shard occupancy gauges missing")
	}
}
