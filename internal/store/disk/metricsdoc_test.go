package disk

import (
	"os"
	"testing"

	"webcache/internal/obs"
	"webcache/internal/trace"
)

// TestMetricsDocDisk holds the store.disk.* namespace in METRICS.md
// against what the disk tier registers, in both directions.  Open
// creates the live instruments (including the replay counters, before
// recovery), a put/get/sync cycle exercises the write and read paths,
// and PublishMetrics writes the occupancy gauges.
func TestMetricsDocDisk(t *testing.T) {
	md, err := os.ReadFile("../../../METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("doc-smoke-disk")
	d := mustOpen(t, Config{Dir: t.TempDir(), CapacityBytes: 1 << 20, Metrics: reg})
	d.Put(1, testObj(1, 64))
	d.Sync()
	d.Get(trace.ObjectID(1))
	d.PublishMetrics()

	var names []string
	for _, m := range reg.Snapshot() {
		names = append(names, m.Name)
	}
	if err := obs.CheckMetricsDoc(md, names, "store.disk"); err != nil {
		t.Fatal(err)
	}
}
