package disk

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"webcache/internal/invariant"
	"webcache/internal/obs"
	"webcache/internal/trace"
)

// testBody derives a deterministic body from a key, so recovery tests
// can verify content integrity without carrying state across
// processes.
func testBody(key uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(key>>uint((i%8)*8)) ^ byte(i)
	}
	return b
}

func hexKey(key uint64) string { return fmt.Sprintf("%032x", key) }

func testObj(key uint64, n int) Object {
	return Object{HexKey: hexKey(key), Body: testBody(key, n), Cost: 1}
}

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	d, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestRecordRoundTrip(t *testing.T) {
	obj := Object{HexKey: "00ff", Body: []byte("hello world"), Cost: 2.5}
	buf := appendRecord(nil, 42, obj)
	got, key, n, err := decodeRecord(buf)
	if err != nil || key != 42 || n != len(buf) {
		t.Fatalf("decode: key=%d n=%d err=%v", key, n, err)
	}
	if got.HexKey != obj.HexKey || !bytes.Equal(got.Body, obj.Body) || got.Cost != obj.Cost {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Truncation at every prefix is ErrTruncated, never a panic or an
	// over-allocation.
	for i := 0; i < len(buf); i++ {
		if _, _, _, err := decodeRecord(buf[:i]); err == nil {
			t.Fatalf("truncated record at %d decoded", i)
		}
	}
	// A flipped byte is ErrCorrupt.
	bad := append([]byte(nil), buf...)
	bad[recHeaderLen] ^= 0xFF
	if _, _, _, err := decodeRecord(bad); err == nil {
		t.Fatal("corrupt record decoded")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	entries := []journalEntry{
		{op: opPut, key: 7, seg: 1, off: 128, rlen: 64, size: 20, cost: 3, hexKey: hexKey(7)},
		{op: opDelete, key: 9},
	}
	var buf []byte
	for _, e := range entries {
		buf = appendJournalEntry(buf, e)
	}
	var got []journalEntry
	valid, err := replayJournal(bytes.NewReader(buf), func(e journalEntry) { got = append(got, e) })
	if err != nil || valid != int64(len(buf)) {
		t.Fatalf("replay: valid=%d err=%v", valid, err)
	}
	if len(got) != 2 || got[0] != entries[0] || got[1] != entries[1] {
		t.Fatalf("replay mismatch: %+v", got)
	}
	// A torn tail stops the replay cleanly at the valid prefix.
	torn := append(append([]byte(nil), buf...), buf[:jnlHeaderLen+3]...)
	got = nil
	valid, err = replayJournal(bytes.NewReader(torn), func(e journalEntry) { got = append(got, e) })
	if err != nil || valid != int64(len(buf)) || len(got) != 2 {
		t.Fatalf("torn tail: valid=%d n=%d err=%v", valid, len(got), err)
	}
}

func TestPutGetSync(t *testing.T) {
	d := mustOpen(t, Config{Dir: t.TempDir(), CapacityBytes: 1 << 20})
	for k := uint64(1); k <= 50; k++ {
		if !d.Put(trace.ObjectID(k), testObj(k, 100)) {
			t.Fatalf("Put %d rejected", k)
		}
	}
	if !d.Sync() {
		t.Fatal("Sync failed")
	}
	if d.Len() != 50 {
		t.Fatalf("Len = %d, want 50", d.Len())
	}
	for k := uint64(1); k <= 50; k++ {
		obj, ok := d.Get(trace.ObjectID(k))
		if !ok || !bytes.Equal(obj.Body, testBody(k, 100)) || obj.HexKey != hexKey(k) {
			t.Fatalf("Get %d: ok=%v obj=%+v", k, ok, obj)
		}
	}
	if _, ok := d.Get(999); ok {
		t.Fatal("absent key hit")
	}
	// Rejections: empty, oversized, over-long key.
	if d.Put(60, Object{HexKey: "aa"}) {
		t.Fatal("empty body accepted")
	}
	if d.Put(61, Object{HexKey: "aa", Body: make([]byte, 2<<20)}) {
		t.Fatal("over-capacity body accepted")
	}
	if d.Put(62, Object{HexKey: string(make([]byte, MaxHexKey+1)), Body: []byte("x")}) {
		t.Fatal("over-long key accepted")
	}
}

func TestRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Config{Dir: dir, CapacityBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 200; k++ {
		d.Put(trace.ObjectID(k), testObj(k, 64))
	}
	// Rewrite a few at a different size and delete-by-corruption none:
	// the journal's last word must win.
	for k := uint64(1); k <= 10; k++ {
		d.Put(trace.ObjectID(k), testObj(k, 128))
	}
	d.Close()

	check := invariant.New(nil)
	d2 := mustOpen(t, Config{Dir: dir, CapacityBytes: 1 << 20, Check: check})
	if err := check.Err(); err != nil {
		t.Fatalf("post-recovery invariants: %v", err)
	}
	if d2.Recovered() != 200 || d2.Len() != 200 {
		t.Fatalf("recovered %d / len %d, want 200", d2.Recovered(), d2.Len())
	}
	for k := uint64(1); k <= 200; k++ {
		want := 64
		if k <= 10 {
			want = 128
		}
		obj, ok := d2.Get(trace.ObjectID(k))
		if !ok || !bytes.Equal(obj.Body, testBody(k, want)) {
			t.Fatalf("recovered Get %d: ok=%v len=%d want %d", k, ok, len(obj.Body), want)
		}
	}
	hexes := d2.RecoveredHexKeys()
	if len(hexes) != 200 {
		t.Fatalf("RecoveredHexKeys = %d", len(hexes))
	}
	seen := make(map[string]bool, len(hexes))
	for _, h := range hexes {
		seen[h] = true
	}
	for k := uint64(1); k <= 200; k++ {
		if !seen[hexKey(k)] {
			t.Fatalf("hex key %s not recovered", hexKey(k))
		}
	}
}

func TestRecoveryToleratesTornTails(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Config{Dir: dir, CapacityBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 20; k++ {
		d.Put(trace.ObjectID(k), testObj(k, 64))
	}
	d.Close()

	// Simulate a crash mid-journal-append: garbage after the valid
	// prefix.
	jnl := filepath.Join(dir, JournalName)
	f, err := os.OpenFile(jnl, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01})
	f.Close()

	d2 := mustOpen(t, Config{Dir: dir, CapacityBytes: 1 << 20})
	if d2.Len() != 20 {
		t.Fatalf("Len after torn tail = %d, want 20", d2.Len())
	}
	// New writes overwrite the torn bytes; a third open sees both
	// generations.
	d2.Put(100, testObj(100, 32))
	d2.Close()
	d3 := mustOpen(t, Config{Dir: dir, CapacityBytes: 1 << 20})
	if d3.Len() != 21 {
		t.Fatalf("Len after write-over = %d, want 21", d3.Len())
	}
	if obj, ok := d3.Get(100); !ok || !bytes.Equal(obj.Body, testBody(100, 32)) {
		t.Fatal("post-torn-tail write lost")
	}
}

func TestEvictionAndInvariants(t *testing.T) {
	check := invariant.New(nil)
	d := mustOpen(t, Config{Dir: t.TempDir(), CapacityBytes: 4096, Check: check})
	for k := uint64(1); k <= 100; k++ {
		d.Put(trace.ObjectID(k), testObj(k, 100))
	}
	d.Sync()
	if used := d.Used(); used > 4096 {
		t.Fatalf("Used %d exceeds capacity", used)
	}
	if d.Len() >= 100 {
		t.Fatal("no evictions at 100×100B into 4KiB")
	}
	d.CheckInvariants(check)
	if err := check.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestCompaction(t *testing.T) {
	// Small segments so rewrites strand dead bytes across several
	// sealed files.
	d := mustOpen(t, Config{Dir: t.TempDir(), CapacityBytes: 1 << 20, SegmentBytes: 4096,
		Metrics: obs.NewRegistry("compact-test")})
	for round := 0; round < 10; round++ {
		for k := uint64(1); k <= 20; k++ {
			d.Put(trace.ObjectID(k), testObj(k, 100+round)) // size changes force rewrites
		}
		d.Sync()
	}
	d.Compact()
	if d.compactions.Value() == 0 {
		// The worker already compacts per batch; with 10 rewrite rounds
		// over 4KiB segments some sealed segment must have crossed the
		// dead threshold.
		t.Fatal("no compactions ran")
	}
	for k := uint64(1); k <= 20; k++ {
		obj, ok := d.Get(trace.ObjectID(k))
		if !ok || !bytes.Equal(obj.Body, testBody(k, 109)) {
			t.Fatalf("post-compaction Get %d: ok=%v", k, ok)
		}
	}
	// And the compacted state must survive a restart.
	dir := d.dir
	d.Close()
	d2 := mustOpen(t, Config{Dir: dir, CapacityBytes: 1 << 20, SegmentBytes: 4096})
	for k := uint64(1); k <= 20; k++ {
		obj, ok := d2.Get(trace.ObjectID(k))
		if !ok || !bytes.Equal(obj.Body, testBody(k, 109)) {
			t.Fatalf("post-restart Get %d: ok=%v", k, ok)
		}
	}
}

func TestCorruptRecordDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Config{Dir: dir, CapacityBytes: 1 << 20,
		Metrics: obs.NewRegistry("corrupt-test")})
	if err != nil {
		t.Fatal(err)
	}
	d.Put(1, testObj(1, 256))
	d.Sync()

	// Flip a body byte on disk, under the store's feet.
	d.mu.Lock()
	e := d.idx[1]
	f := d.segs[e.seg].f
	d.mu.Unlock()
	if _, err := f.WriteAt([]byte{0xFF}, int64(e.off)+recHeaderLen+40); err != nil {
		t.Fatal(err)
	}

	if _, ok := d.Get(1); ok {
		t.Fatal("corrupt record served")
	}
	if d.Contains(1) {
		t.Fatal("corrupt entry not dropped")
	}
	if d.corrupt.Value() == 0 {
		t.Fatal("corruption not counted")
	}
	d.Close()

	// The drop was journaled: recovery must not resurface the entry
	// (and even if the unsynced delete were lost, Get would re-drop).
	d2 := mustOpen(t, Config{Dir: dir, CapacityBytes: 1 << 20})
	if _, ok := d2.Get(1); ok {
		t.Fatal("corrupt record resurrected and served")
	}
}

func TestJournalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Config{Dir: dir, CapacityBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Many rewrites of few keys: journal entries ≫ live set.
	for round := 0; round < 200; round++ {
		for k := uint64(1); k <= 5; k++ {
			d.Put(trace.ObjectID(k), testObj(k, 50+round%7))
		}
		d.Sync()
	}
	d.Close()
	before, err := os.Stat(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatal(err)
	}

	d2 := mustOpen(t, Config{Dir: dir, CapacityBytes: 1 << 20})
	after, err := os.Stat(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("checkpoint did not shrink journal: %d -> %d", before.Size(), after.Size())
	}
	if d2.Len() != 5 {
		t.Fatalf("Len after checkpoint = %d", d2.Len())
	}
	// The checkpointed journal must itself recover.
	d2.Close()
	d3 := mustOpen(t, Config{Dir: dir, CapacityBytes: 1 << 20})
	if d3.Len() != 5 {
		t.Fatalf("Len after checkpoint recovery = %d", d3.Len())
	}
	for k := uint64(1); k <= 5; k++ {
		if _, ok := d3.Get(trace.ObjectID(k)); !ok {
			t.Fatalf("key %d lost across checkpoint", k)
		}
	}
}

func TestCloseDrainsQueue(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Config{Dir: dir, CapacityBytes: 1 << 20, QueueDepth: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 1000; k++ {
		if !d.Put(trace.ObjectID(k), testObj(k, 64)) {
			t.Fatalf("Put %d rejected", k)
		}
	}
	// No Sync: Close itself must drain the queue.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if d.Sync() {
		t.Fatal("Sync succeeded after Close")
	}

	d2 := mustOpen(t, Config{Dir: dir, CapacityBytes: 1 << 20})
	if d2.Len() != 1000 {
		t.Fatalf("recovered %d of 1000 queued puts", d2.Len())
	}
}

func TestShrunkCapacityEvictsOnRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Config{Dir: dir, CapacityBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 100; k++ {
		d.Put(trace.ObjectID(k), testObj(k, 100))
	}
	d.Close()

	check := invariant.New(nil)
	d2 := mustOpen(t, Config{Dir: dir, CapacityBytes: 2048, Check: check})
	if err := check.Err(); err != nil {
		t.Fatal(err)
	}
	if used := d2.Used(); used > 2048 {
		t.Fatalf("Used %d exceeds shrunk capacity", used)
	}
	if d2.Len() == 0 || d2.Len() >= 100 {
		t.Fatalf("Len = %d after shrink", d2.Len())
	}
}
