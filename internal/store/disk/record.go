// Package disk is the live store's persistent second tier: an
// append-only object log (fixed-layout records with per-record
// CRC-32C checksums, rotated into bounded segments) indexed by an
// append-only journal, written behind a bounded queue with batched
// fsync, and recovered on boot by replaying the journal — so a
// hiergdd restart no longer cold-starts the federation (ROADMAP item
// 1: "persistent state to recover from crashes or restarts").
//
// Durability protocol, in order, per write-behind batch:
//
//  1. append the batch's object records to the active log segment;
//  2. fsync the segment (one batched fsync, not one per record);
//  3. append the batch's index entries to the journal;
//  4. fsync the journal;
//  5. apply the entries to the in-memory index and release Sync
//     waiters.
//
// A journaled entry therefore always points at durable log bytes: a
// crash between 2 and 4 leaves an orphaned log record (dead bytes,
// reclaimed by compaction) but never a journal entry referencing torn
// data.  Recovery replays the journal alone — no body reads — which
// is what makes the `make disk-bench` replay rate a journal-decode
// rate rather than a disk-bandwidth number; record checksums are
// verified lazily on every Get.
//
// Like the rest of the repo, observability is zero-cost when
// disabled: a nil *obs.Registry registers nothing, and the invariant
// hook (CheckInvariants) is driven by the caller.
package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Log record layout (little-endian), one per stored object:
//
//	u32 magic      recMagic
//	u8  hexLen     length of the hex objectId (≤ MaxHexKey)
//	u64 key        folded 64-bit policy key
//	f64 cost       greedy-dual fetch cost
//	u32 bodyLen    object body length (1 ≤ bodyLen ≤ MaxBody)
//	hexLen bytes   hex objectId
//	bodyLen bytes  object body
//	u32 crc        CRC-32C over everything above
const (
	recMagic     = 0x574C4F47 // "WLOG"
	recHeaderLen = 4 + 1 + 8 + 8 + 4
	recTrailLen  = 4
)

// MaxHexKey bounds the stored hex objectId (the wire key is 32 hex
// digits; the bound leaves slack without letting a corrupt length
// field drive allocation).
const MaxHexKey = 64

// MaxBody bounds a record body, matching the daemons'
// http.MaxBytesReader limit on object uploads.  A decoded length
// beyond it is corruption, not a big object.
const MaxBody = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors the codecs distinguish: a truncated tail (clean crash point,
// tolerated by recovery) versus corrupt bytes (checksum or bound
// violation).
var (
	ErrTruncated = errors.New("disk: truncated record")
	ErrCorrupt   = errors.New("disk: corrupt record")
)

// Object is one persisted cache object, mirroring store.Object (the
// store package imports this one, so the type is re-declared here).
type Object struct {
	HexKey string
	Body   []byte
	Cost   float64
}

// recordLen is the full on-disk length of a record with the given
// key/body lengths.
func recordLen(hexLen, bodyLen int) int {
	return recHeaderLen + hexLen + bodyLen + recTrailLen
}

// appendRecord encodes one object record onto buf and returns the
// extended slice.  Callers enforce the MaxHexKey/MaxBody bounds (the
// store's Put path rejects violations before they reach the log).
func appendRecord(buf []byte, key uint64, obj Object) []byte {
	start := len(buf)
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], recMagic)
	hdr[4] = byte(len(obj.HexKey))
	binary.LittleEndian.PutUint64(hdr[5:], key)
	binary.LittleEndian.PutUint64(hdr[13:], math.Float64bits(obj.Cost))
	binary.LittleEndian.PutUint32(hdr[21:], uint32(len(obj.Body)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, obj.HexKey...)
	buf = append(buf, obj.Body...)
	crc := crc32.Checksum(buf[start:], castagnoli)
	var trail [recTrailLen]byte
	binary.LittleEndian.PutUint32(trail[:], crc)
	return append(buf, trail[:]...)
}

// decodeRecord parses one record from the front of b.  It returns the
// decoded object, its folded key, and the record's full length.
// ErrTruncated means b ends before the record does (the only legal
// way for a log to end); ErrCorrupt covers a bad magic, an
// out-of-bounds length field (checked before any allocation — the
// untrusted-length guard the fuzz target exercises), or a checksum
// mismatch.
func decodeRecord(b []byte) (obj Object, key uint64, n int, err error) {
	if len(b) < recHeaderLen {
		return Object{}, 0, 0, ErrTruncated
	}
	if binary.LittleEndian.Uint32(b[0:]) != recMagic {
		return Object{}, 0, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	hexLen := int(b[4])
	key = binary.LittleEndian.Uint64(b[5:])
	cost := math.Float64frombits(binary.LittleEndian.Uint64(b[13:]))
	bodyLen := int(binary.LittleEndian.Uint32(b[21:]))
	if hexLen > MaxHexKey || bodyLen < 1 || bodyLen > MaxBody {
		return Object{}, 0, 0, fmt.Errorf("%w: lengths hex=%d body=%d", ErrCorrupt, hexLen, bodyLen)
	}
	n = recordLen(hexLen, bodyLen)
	if len(b) < n {
		return Object{}, 0, 0, ErrTruncated
	}
	want := binary.LittleEndian.Uint32(b[n-recTrailLen:])
	if crc32.Checksum(b[:n-recTrailLen], castagnoli) != want {
		return Object{}, 0, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	body := make([]byte, bodyLen)
	copy(body, b[recHeaderLen+hexLen:])
	obj = Object{
		HexKey: string(b[recHeaderLen : recHeaderLen+hexLen]),
		Body:   body,
		Cost:   cost,
	}
	return obj, key, n, nil
}
