package disk

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Journal entry layout (little-endian), one per index mutation:
//
//	u32 magic    jnlMagic
//	u8  op       opPut or opDelete
//	u8  hexLen   hex objectId length (opPut; 0 for opDelete)
//	u64 key      folded 64-bit policy key
//	u32 seg      log segment number (opPut)
//	u64 off      record offset within the segment (opPut)
//	u32 rlen     full record length (opPut)
//	u32 size     object body length (opPut)
//	f64 cost     greedy-dual fetch cost (opPut)
//	hexLen bytes hex objectId
//	u32 crc      CRC-32C over everything above
//
// Puts supersede earlier puts of the same key; deletes drop it.  The
// journal carries the hex objectId so recovery is journal-only — the
// rebuilt index can re-register recovered contents with the lookup
// directory without touching a single log body.
const (
	jnlMagic     = 0x4A4E4C31 // "JNL1"
	jnlHeaderLen = 4 + 1 + 1 + 8 + 4 + 8 + 4 + 4 + 8
	jnlTrailLen  = 4
)

const (
	opPut    = 1
	opDelete = 2
)

// JournalName is the index journal's file name within a store
// directory.
const JournalName = "journal.log"

// journalEntry is one decoded index mutation.
type journalEntry struct {
	op     byte
	key    uint64
	seg    uint32
	off    uint64
	rlen   uint32
	size   uint32
	cost   float64
	hexKey string
}

// appendJournalEntry encodes one entry onto buf.
func appendJournalEntry(buf []byte, e journalEntry) []byte {
	start := len(buf)
	var hdr [jnlHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], jnlMagic)
	hdr[4] = e.op
	hdr[5] = byte(len(e.hexKey))
	binary.LittleEndian.PutUint64(hdr[6:], e.key)
	binary.LittleEndian.PutUint32(hdr[14:], e.seg)
	binary.LittleEndian.PutUint64(hdr[18:], e.off)
	binary.LittleEndian.PutUint32(hdr[26:], e.rlen)
	binary.LittleEndian.PutUint32(hdr[30:], e.size)
	binary.LittleEndian.PutUint64(hdr[34:], math.Float64bits(e.cost))
	buf = append(buf, hdr[:]...)
	buf = append(buf, e.hexKey...)
	crc := crc32.Checksum(buf[start:], castagnoli)
	var trail [jnlTrailLen]byte
	binary.LittleEndian.PutUint32(trail[:], crc)
	return append(buf, trail[:]...)
}

// decodeJournalEntry parses one entry from the front of b, returning
// the entry and its encoded length.  Same error contract as
// decodeRecord: ErrTruncated for a clean tail, ErrCorrupt for bad
// bytes; the hexLen bound is checked before any allocation.
func decodeJournalEntry(b []byte) (e journalEntry, n int, err error) {
	if len(b) < jnlHeaderLen {
		return journalEntry{}, 0, ErrTruncated
	}
	if binary.LittleEndian.Uint32(b[0:]) != jnlMagic {
		return journalEntry{}, 0, fmt.Errorf("%w: bad journal magic", ErrCorrupt)
	}
	e.op = b[4]
	hexLen := int(b[5])
	if e.op != opPut && e.op != opDelete {
		return journalEntry{}, 0, fmt.Errorf("%w: journal op %d", ErrCorrupt, e.op)
	}
	if hexLen > MaxHexKey {
		return journalEntry{}, 0, fmt.Errorf("%w: journal hexLen %d", ErrCorrupt, hexLen)
	}
	e.key = binary.LittleEndian.Uint64(b[6:])
	e.seg = binary.LittleEndian.Uint32(b[14:])
	e.off = binary.LittleEndian.Uint64(b[18:])
	e.rlen = binary.LittleEndian.Uint32(b[26:])
	e.size = binary.LittleEndian.Uint32(b[30:])
	e.cost = math.Float64frombits(binary.LittleEndian.Uint64(b[34:]))
	n = jnlHeaderLen + hexLen + jnlTrailLen
	if len(b) < n {
		return journalEntry{}, 0, ErrTruncated
	}
	want := binary.LittleEndian.Uint32(b[n-jnlTrailLen:])
	if crc32.Checksum(b[:n-jnlTrailLen], castagnoli) != want {
		return journalEntry{}, 0, fmt.Errorf("%w: journal checksum", ErrCorrupt)
	}
	e.hexKey = string(b[jnlHeaderLen : jnlHeaderLen+hexLen])
	return e, n, nil
}

// replayJournal streams every decodable entry from r into emit, in
// order.  It returns the byte length of the valid prefix: decoding
// stops without error at a truncated or corrupt tail (a crash can
// tear the final batch; everything before it is intact because
// entries are only ever appended).  Read errors other than EOF are
// returned.
func replayJournal(r io.Reader, emit func(journalEntry)) (valid int64, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	for {
		hdr, err := br.Peek(jnlHeaderLen)
		if err != nil {
			if len(hdr) == 0 || errors.Is(err, io.EOF) {
				return valid, nil
			}
			return valid, err
		}
		hexLen := int(hdr[5])
		if binary.LittleEndian.Uint32(hdr[0:]) != jnlMagic || hexLen > MaxHexKey {
			return valid, nil // corrupt tail: stop at the valid prefix
		}
		n := jnlHeaderLen + hexLen + jnlTrailLen
		full, err := br.Peek(n)
		if err != nil {
			return valid, nil // truncated tail
		}
		e, _, derr := decodeJournalEntry(full)
		if derr != nil {
			return valid, nil
		}
		br.Discard(n)
		valid += int64(n)
		emit(e)
	}
}

// replayJournalFile replays the journal at path (absent = empty).
func replayJournalFile(path string, emit func(journalEntry)) (valid int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	return replayJournal(f, emit)
}
