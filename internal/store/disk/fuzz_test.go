package disk

import (
	"bytes"
	"testing"
)

// FuzzRecord feeds arbitrary bytes to the log-record decoder.  Junk
// must come back as ErrTruncated/ErrCorrupt — never a panic and never
// an allocation driven by an unvalidated length field; any record the
// decoder accepts must re-encode to the identical bytes.
func FuzzRecord(f *testing.F) {
	f.Add(appendRecord(nil, 42, Object{HexKey: "00ff", Body: []byte("hello"), Cost: 1.5}))
	f.Add(appendRecord(nil, 0, Object{Body: []byte{0}}))
	f.Add([]byte("GOLW"))
	f.Add([]byte("WLOG\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		obj, key, n, err := decodeRecord(data)
		if err != nil {
			return
		}
		if n < recHeaderLen+1+recTrailLen || n > len(data) {
			t.Fatalf("accepted record with impossible length %d of %d", n, len(data))
		}
		if len(obj.Body) < 1 || len(obj.Body) > MaxBody || len(obj.HexKey) > MaxHexKey {
			t.Fatalf("accepted record violating bounds: hex=%d body=%d", len(obj.HexKey), len(obj.Body))
		}
		if !bytes.Equal(appendRecord(nil, key, obj), data[:n]) {
			t.Fatal("accepted record does not re-encode identically")
		}
	})
}

// FuzzJournalReplay feeds arbitrary bytes to the journal replayer.  It
// must never panic or error on junk — a corrupt or truncated tail ends
// the replay cleanly — and the valid prefix it reports must re-decode
// entry-for-entry to the same sequence.
func FuzzJournalReplay(f *testing.F) {
	var seed []byte
	seed = appendJournalEntry(seed, journalEntry{op: opPut, key: 7, seg: 1, off: 64, rlen: 32, size: 8, cost: 2, hexKey: "aabb"})
	seed = appendJournalEntry(seed, journalEntry{op: opDelete, key: 7})
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	f.Add([]byte("JNL1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var entries []journalEntry
		valid, err := replayJournal(bytes.NewReader(data), func(e journalEntry) {
			entries = append(entries, e)
		})
		if err != nil {
			t.Fatalf("replay errored on in-memory input: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		// The valid prefix must replay identically on its own — replay
		// is a pure function of the prefix.
		var again []journalEntry
		validAgain, err := replayJournal(bytes.NewReader(data[:valid]), func(e journalEntry) {
			again = append(again, e)
		})
		if err != nil || validAgain != valid || len(again) != len(entries) {
			t.Fatalf("valid prefix does not re-replay: %d/%d entries %d/%d", validAgain, valid, len(again), len(entries))
		}
		for i := range entries {
			if entries[i] != again[i] {
				t.Fatalf("entry %d changed across re-replay", i)
			}
		}
		// And every entry must survive its own re-encoding.
		var enc []byte
		for _, e := range entries {
			if e.op != opPut && e.op != opDelete {
				t.Fatalf("replay emitted invalid op %d", e.op)
			}
			if len(e.hexKey) > MaxHexKey {
				t.Fatalf("replay emitted over-long hex key (%d)", len(e.hexKey))
			}
			enc = appendJournalEntry(enc, e)
		}
		if !bytes.Equal(enc, data[:valid]) {
			t.Fatal("accepted journal prefix does not re-encode identically")
		}
	})
}
