package disk

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"webcache/internal/cache"
	"webcache/internal/invariant"
	"webcache/internal/obs"
	"webcache/internal/trace"
)

// Config sizes a disk Store.
type Config struct {
	// Dir is the store directory (created if absent).  One Store owns
	// a directory exclusively.
	Dir string
	// CapacityBytes bounds the live (indexed) object bytes; the policy
	// evicts past it.  Dead log bytes on top of it are bounded by
	// compaction.
	CapacityBytes uint64
	// Policy names the replacement policy governing disk-tier eviction
	// ("" = cache.DefaultPolicy, the same registry as the memory
	// tier).
	Policy string
	// SegmentBytes rotates the active log segment past this size
	// (0 = 64 MiB).  Sealed segments are the compaction unit.
	SegmentBytes int64
	// QueueDepth bounds the write-behind queue (0 = 1024).  A full
	// queue applies backpressure to Put — enqueueing blocks — rather
	// than dropping, so an acknowledged store is never silently lost.
	QueueDepth int
	// BatchRecords caps how many queued objects one fsync batch
	// absorbs (0 = 256).
	BatchRecords int
	// Metrics, when non-nil, receives the store.disk.* namespace (see
	// METRICS.md).  Instruments are created before recovery runs so
	// the replay counters observe boot progress.
	Metrics *obs.Registry
	// Check, when non-nil, enables CheckInvariants (the memory-index ↔
	// disk-log agreement check), which also runs once after recovery.
	Check *invariant.Checker
	// Label distinguishes multiple stores in violation details
	// (default "disk").
	Label string
}

const (
	defaultSegmentBytes = 64 << 20
	defaultQueueDepth   = 1024
	defaultBatch        = 256
	// compactDeadRatio triggers compaction of a sealed segment once
	// this fraction of its bytes is dead.
	compactDeadRatio = 0.5
	// checkpointSlack rewrites the journal at open once it holds this
	// many times more entries than the live index (plus a floor so
	// tiny stores never bother).
	checkpointSlack = 4
	checkpointFloor = 64
)

// indexEntry locates one live object in the log.
type indexEntry struct {
	seg  uint32
	off  uint64
	rlen uint32 // full record length
	size uint32 // body length
	cost float64
}

// segment is one log file's bookkeeping.  size and dead are guarded by
// Store.mu; the file handle is immutable until the segment is
// compacted away.
type segment struct {
	id   uint32
	f    *os.File
	size int64 // valid extent (journaled bytes; torn tails get overwritten)
	dead int64 // bytes belonging to superseded or deleted records
}

// persistReq is one write-behind queue element: an object to persist,
// or a flush token (done non-nil) releasing a Sync waiter.
type persistReq struct {
	key  trace.ObjectID
	obj  Object
	done chan struct{} // flush token only
}

// Store is the persistent disk tier.
type Store struct {
	dir      string
	capacity uint64
	segTgt   int64
	label    string
	check    *invariant.Checker

	// mu guards the index, the policy, segment bookkeeping, and
	// journal state.  File writes and fsyncs happen outside it (the
	// batchMu holder is the only appender); Get uses ReadAt and needs
	// mu only for the index lookup.
	mu      sync.Mutex
	idx     map[trace.ObjectID]indexEntry
	policy  cache.Policy
	segs    map[uint32]*segment
	active  *segment
	journal *os.File
	jnlSize int64 // valid journal extent (next append offset)

	// batchMu serializes write-behind batches (and compaction) against
	// CheckInvariants, so the checker never observes the window
	// between a journal fsync and the index apply.  It also makes the
	// worker the single log appender.
	batchMu sync.Mutex

	queue     chan persistReq
	enqueueMu sync.RWMutex // guards queue close vs. concurrent sends
	closed    bool
	workerWG  sync.WaitGroup

	// Recovery results (immutable after Open).
	recoveredHex []string

	// Metrics (all nil-safe when disabled).
	reg           *obs.Registry
	writes        *obs.Counter
	writeBytes    *obs.Counter
	deletes       *obs.Counter
	evictions     *obs.Counter
	hits          *obs.Counter
	misses        *obs.Counter
	readBytes     *obs.Counter
	corrupt       *obs.Counter
	fsyncTimer    *obs.Timer
	queueWait     *obs.Timer
	compactions   *obs.Counter
	compactedB    *obs.Counter
	replayObjects *obs.Counter
	replayDropped *obs.Counter
	replayTimer   *obs.Timer
}

// Open creates or recovers a disk store in cfg.Dir: it replays the
// index journal (tolerating a torn tail), validates every surviving
// entry against the segment files on disk, re-seeds the replacement
// policy, and starts the write-behind worker.  The recovered contents
// are reachable immediately via Get and listed by RecoveredHexKeys for
// directory re-registration.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("disk: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	label := cfg.Label
	if label == "" {
		label = "disk"
	}
	segTgt := cfg.SegmentBytes
	if segTgt <= 0 {
		segTgt = defaultSegmentBytes
	}
	queueDepth := cfg.QueueDepth
	if queueDepth <= 0 {
		queueDepth = defaultQueueDepth
	}
	policyName := cfg.Policy
	if policyName == "" {
		policyName = cache.DefaultPolicy
	}
	pol, err := cache.New(policyName, cfg.CapacityBytes)
	if err != nil {
		return nil, err
	}
	d := &Store{
		dir:      cfg.Dir,
		capacity: cfg.CapacityBytes,
		segTgt:   segTgt,
		label:    label,
		check:    cfg.Check,
		idx:      make(map[trace.ObjectID]indexEntry),
		policy:   pol,
		segs:     make(map[uint32]*segment),
		queue:    make(chan persistReq, queueDepth),
	}
	d.setMetrics(cfg.Metrics)
	if err := d.recover(); err != nil {
		d.closeFiles()
		return nil, err
	}
	if cfg.Check.Enabled() {
		d.CheckInvariants(cfg.Check)
	}
	batch := cfg.BatchRecords
	if batch <= 0 {
		batch = defaultBatch
	}
	d.workerWG.Add(1)
	go d.worker(batch)
	return d, nil
}

// setMetrics creates the store.disk.* instruments (no-ops when reg is
// nil).
func (d *Store) setMetrics(reg *obs.Registry) {
	d.reg = reg
	d.writes = reg.Counter("store.disk.writes")
	d.writeBytes = reg.Counter("store.disk.write_bytes")
	d.deletes = reg.Counter("store.disk.deletes")
	d.evictions = reg.Counter("store.disk.evictions")
	d.hits = reg.Counter("store.disk.hits")
	d.misses = reg.Counter("store.disk.misses")
	d.readBytes = reg.Counter("store.disk.read_bytes")
	d.corrupt = reg.Counter("store.disk.corrupt")
	d.fsyncTimer = reg.Timer("store.disk.fsync")
	d.queueWait = reg.Timer("store.disk.queue_wait")
	d.compactions = reg.Counter("store.disk.compactions")
	d.compactedB = reg.Counter("store.disk.compacted_bytes")
	d.replayObjects = reg.Counter("store.disk.replay.objects")
	d.replayDropped = reg.Counter("store.disk.replay.dropped")
	d.replayTimer = reg.Timer("store.disk.replay")
}

// segPath names segment id's file.
func (d *Store) segPath(id uint32) string {
	return filepath.Join(d.dir, fmt.Sprintf("seg-%08d.log", id))
}

// Put enqueues an object for asynchronous persistence (write-behind).
// It blocks only when the bounded queue is full — backpressure, never
// a silent drop — and returns false for objects the tier cannot hold
// (empty, oversized body, over-long key) or after Close.  Durability
// lags the call: use Sync for a barrier, or rely on Close at shutdown.
func (d *Store) Put(key trace.ObjectID, obj Object) bool {
	if len(obj.Body) == 0 || uint64(len(obj.Body)) > d.capacity ||
		len(obj.Body) > MaxBody || len(obj.HexKey) > MaxHexKey {
		return false
	}
	return d.enqueue(persistReq{key: key, obj: obj})
}

// Sync blocks until every Put enqueued before it is durable (log and
// journal fsynced).  It returns false if the store is closed.
func (d *Store) Sync() bool {
	done := make(chan struct{})
	if !d.enqueue(persistReq{done: done}) {
		return false
	}
	<-done
	return true
}

// enqueue sends one request, timing queue backpressure.  It returns
// false once the store is closed.
func (d *Store) enqueue(req persistReq) bool {
	d.enqueueMu.RLock()
	defer d.enqueueMu.RUnlock()
	if d.closed {
		return false
	}
	select {
	case d.queue <- req:
		return true
	default:
	}
	stop := d.queueWait.Start()
	d.queue <- req
	stop()
	return true
}

// Get reads an object from the log, verifying its checksum.  The
// policy's replacement metadata is refreshed on a hit.  A corrupt
// record is self-healing: the entry is dropped (and journaled as a
// delete) and the call reports a miss, so the tier degrades to a cache
// miss instead of serving torn bytes.
func (d *Store) Get(key trace.ObjectID) (Object, bool) {
	// Two attempts: a read can race compaction relocating the record
	// it targets, in which case the entry has moved and a re-lookup
	// succeeds against the new location.
	for attempt := 0; attempt < 2; attempt++ {
		d.mu.Lock()
		e, ok := d.idx[key]
		var f *os.File
		if ok {
			d.policy.Access(key)
			if s := d.segs[e.seg]; s != nil {
				f = s.f
			}
		}
		d.mu.Unlock()
		if !ok {
			d.misses.Inc()
			return Object{}, false
		}
		if f == nil {
			continue // segment compacted between lookup and read
		}
		buf := make([]byte, e.rlen)
		if _, err := f.ReadAt(buf, int64(e.off)); err != nil {
			if d.entryMoved(key, e) {
				continue
			}
			d.dropCorrupt(key, e)
			return Object{}, false
		}
		obj, recKey, _, err := decodeRecord(buf)
		if err != nil || recKey != uint64(key) {
			if d.entryMoved(key, e) {
				continue
			}
			d.dropCorrupt(key, e)
			return Object{}, false
		}
		d.hits.Inc()
		d.readBytes.Add(int64(e.rlen))
		return obj, true
	}
	d.misses.Inc()
	return Object{}, false
}

// Contains reports whether key is indexed (no IO, no metadata touch).
func (d *Store) Contains(key trace.ObjectID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.idx[key]
	return ok
}

// entryMoved reports whether key's index entry no longer matches e
// (relocated or removed since the caller's lookup).
func (d *Store) entryMoved(key trace.ObjectID, e indexEntry) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur, ok := d.idx[key]
	return !ok || cur != e
}

// dropCorrupt removes an entry whose record failed to read or verify.
func (d *Store) dropCorrupt(key trace.ObjectID, e indexEntry) {
	d.mu.Lock()
	if cur, ok := d.idx[key]; ok && cur == e {
		d.corrupt.Inc()
		delete(d.idx, key)
		d.policy.Remove(key)
		if s := d.segs[e.seg]; s != nil {
			s.dead += int64(e.rlen)
		}
		// The delete is journaled unsynced: if it is lost to a crash,
		// recovery resurfaces the entry and the next Get re-drops it.
		d.appendJournalLocked([]journalEntry{{op: opDelete, key: uint64(key)}}, false)
	}
	d.mu.Unlock()
	d.misses.Inc()
}

// Len reports the live object count.
func (d *Store) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.idx)
}

// Used reports the live object bytes (policy-accounted).
func (d *Store) Used() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.policy.Used()
}

// Capacity is the configured live-byte budget.
func (d *Store) Capacity() uint64 { return d.capacity }

// QueueDepth reports the write-behind queue's current occupancy.
func (d *Store) QueueDepth() int { return len(d.queue) }

// Recovered reports how many objects the boot replay re-indexed.
func (d *Store) Recovered() int { return len(d.recoveredHex) }

// RecoveredHexKeys lists the hex objectIds the boot replay recovered,
// for re-registering with a lookup directory.
func (d *Store) RecoveredHexKeys() []string {
	out := make([]string, len(d.recoveredHex))
	copy(out, d.recoveredHex)
	return out
}

// PolicyName reports the disk tier's replacement policy.
func (d *Store) PolicyName() string { return d.policy.Name() }

// worker is the write-behind goroutine: it drains the queue into
// batches and runs the durability protocol (package comment) per
// batch.
func (d *Store) worker(batchMax int) {
	defer d.workerWG.Done()
	for {
		req, ok := <-d.queue
		if !ok {
			return
		}
		batch := make([]persistReq, 0, batchMax)
		var flushes []chan struct{}
		add := func(r persistReq) {
			if r.done != nil {
				flushes = append(flushes, r.done)
			} else {
				batch = append(batch, r)
			}
		}
		add(req)
	fill:
		for len(batch) < batchMax {
			select {
			case r, ok := <-d.queue:
				if !ok {
					break fill
				}
				add(r)
			default:
				break fill
			}
		}
		if len(batch) > 0 {
			d.persistBatch(batch)
			d.Compact()
		}
		for _, ch := range flushes {
			close(ch)
		}
	}
}

// persistBatch runs one durability cycle over the batch.
func (d *Store) persistBatch(batch []persistReq) {
	d.batchMu.Lock()
	defer d.batchMu.Unlock()

	// Plan under mu: collapse duplicate keys within the batch (last
	// write wins — the policy would panic on a double Add) and skip
	// objects already resident at the same size, refreshing their
	// replacement metadata instead of rewriting identical bytes.
	var plan []persistReq
	planned := make(map[trace.ObjectID]int)
	d.mu.Lock()
	for _, r := range batch {
		if i, ok := planned[r.key]; ok {
			plan[i] = r
			continue
		}
		if e, ok := d.idx[r.key]; ok && int(e.size) == len(r.obj.Body) {
			d.policy.Access(r.key)
			continue
		}
		planned[r.key] = len(plan)
		plan = append(plan, r)
	}
	d.mu.Unlock()
	if len(plan) == 0 {
		return
	}

	// Append all records to the active segment and fsync it.  The
	// batchMu holder is the only writer, so seg.size is stable here;
	// WriteAt (not O_APPEND) means a previously torn tail is simply
	// overwritten.
	seg := d.activeSegment()
	if seg == nil {
		d.corrupt.Inc()
		return
	}
	var encoded []byte
	offs := make([]int64, len(plan))
	base := seg.size
	off := base
	for i, r := range plan {
		offs[i] = off
		start := len(encoded)
		encoded = appendRecord(encoded, uint64(r.key), r.obj)
		off += int64(len(encoded) - start)
	}
	if !d.writeAndSync(seg.f, encoded, base) {
		// Nothing was journaled, so the index never references the
		// torn bytes; the tier keeps serving what it has.
		return
	}
	d.writes.Add(int64(len(plan)))
	d.writeBytes.Add(int64(len(encoded)))

	// Apply under mu: retire superseded locations, evict per policy,
	// journal the batch (fsynced), and publish the index entries.
	d.mu.Lock()
	seg.size = off
	var entries []journalEntry
	for i, r := range plan {
		if cur, ok := d.idx[r.key]; ok {
			// Present at a different size: the old location dies now.
			if s := d.segs[cur.seg]; s != nil {
				s.dead += int64(cur.rlen)
			}
			d.policy.Remove(r.key)
		}
		for _, ev := range d.policy.Add(cache.Entry{Obj: r.key, Size: uint32(len(r.obj.Body)), Cost: r.obj.Cost}) {
			if old, ok := d.idx[ev.Obj]; ok {
				delete(d.idx, ev.Obj)
				if s := d.segs[old.seg]; s != nil {
					s.dead += int64(old.rlen)
				}
			}
			d.evictions.Inc()
			entries = append(entries, journalEntry{op: opDelete, key: uint64(ev.Obj)})
		}
		rlen := uint32(recordLen(len(r.obj.HexKey), len(r.obj.Body)))
		if !d.policy.Contains(r.key) {
			// The policy rejected the entry (cannot happen for bodies
			// within capacity, but stay defensive): the record is dead
			// on arrival.
			seg.dead += int64(rlen)
			continue
		}
		e := indexEntry{
			seg: seg.id, off: uint64(offs[i]), rlen: rlen,
			size: uint32(len(r.obj.Body)), cost: r.obj.Cost,
		}
		d.idx[r.key] = e
		entries = append(entries, journalEntry{
			op: opPut, key: uint64(r.key), seg: e.seg, off: e.off,
			rlen: e.rlen, size: e.size, cost: e.cost, hexKey: r.obj.HexKey,
		})
	}
	d.appendJournalLocked(entries, true)
	d.maybeRotateLocked()
	d.mu.Unlock()
}

// writeAndSync writes buf at off and fsyncs, timing the fsync and
// counting a failure as corruption.
func (d *Store) writeAndSync(f *os.File, buf []byte, off int64) bool {
	if _, err := f.WriteAt(buf, off); err != nil {
		d.corrupt.Inc()
		return false
	}
	stop := d.fsyncTimer.Start()
	err := f.Sync()
	stop()
	if err != nil {
		d.corrupt.Inc()
		return false
	}
	return true
}

// activeSegment returns the active segment, creating the first one on
// demand.  Only batchMu holders (or Open, before the worker starts)
// call it; nil means the segment file could not be created.
func (d *Store) activeSegment() *segment {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.active == nil {
		d.openSegmentLocked(d.nextSegIDLocked())
	}
	return d.active
}

// nextSegIDLocked picks the lowest unused segment id.
func (d *Store) nextSegIDLocked() uint32 {
	var next uint32
	for id := range d.segs {
		if id >= next {
			next = id + 1
		}
	}
	return next
}

// openSegmentLocked creates segment id and makes it active.
func (d *Store) openSegmentLocked(id uint32) error {
	f, err := os.OpenFile(d.segPath(id), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	s := &segment{id: id, f: f}
	d.segs[id] = s
	d.active = s
	return nil
}

// maybeRotateLocked seals the active segment once it exceeds the
// target size.  On a rotation failure the old segment simply keeps
// growing — correctness is unaffected.
func (d *Store) maybeRotateLocked() {
	if d.active != nil && d.active.size >= d.segTgt {
		d.openSegmentLocked(d.nextSegIDLocked())
	}
}

// appendJournalLocked encodes entries, appends them to the journal at
// the tracked offset, and (when sync is set) fsyncs it.  Callers hold
// d.mu.
func (d *Store) appendJournalLocked(entries []journalEntry, sync bool) {
	if len(entries) == 0 || d.journal == nil {
		return
	}
	var buf []byte
	deletes := int64(0)
	for _, e := range entries {
		buf = appendJournalEntry(buf, e)
		if e.op == opDelete {
			deletes++
		}
	}
	if _, err := d.journal.WriteAt(buf, d.jnlSize); err != nil {
		d.corrupt.Inc()
		return
	}
	if sync {
		stop := d.fsyncTimer.Start()
		if err := d.journal.Sync(); err != nil {
			d.corrupt.Inc()
		}
		stop()
	}
	d.jnlSize += int64(len(buf))
	d.deletes.Add(deletes)
}

// Close drains the write-behind queue (every accepted Put becomes
// durable), stops the worker, and closes the files.  Safe to call
// more than once; further Puts return false.
func (d *Store) Close() error {
	d.enqueueMu.Lock()
	if d.closed {
		d.enqueueMu.Unlock()
		return nil
	}
	d.closed = true
	close(d.queue)
	d.enqueueMu.Unlock()
	// The worker drains the channel before observing the close, so
	// every accepted Put is persisted before it exits.
	d.workerWG.Wait()
	d.closeFiles()
	return nil
}

// closeFiles closes every open file handle.
func (d *Store) closeFiles() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range d.segs {
		if s.f != nil {
			s.f.Close()
		}
	}
	if d.journal != nil {
		d.journal.Close()
		d.journal = nil
	}
}

// compactRound scans sealed segments for ones past the dead-byte
// threshold and compacts them: live records are re-appended
// to the active segment (new journal entries supersede the old
// locations), then the segment file is deleted.  Crash-safe at every
// point — relocations are journaled before the file is unlinked, and
// recovery drops entries pointing at missing segments.  Callers hold
// batchMu.
func (d *Store) compactRound() {
	for {
		d.mu.Lock()
		var victim *segment
		for _, s := range d.segs {
			if d.active != nil && s.id == d.active.id {
				continue
			}
			if s.size > 0 && float64(s.dead)/float64(s.size) >= compactDeadRatio {
				victim = s
				break
			}
		}
		if victim == nil {
			d.mu.Unlock()
			return
		}
		// Collect the victim's live entries in offset order (re-append
		// preserves bodies bit-for-bit; order only helps readahead).
		type liveRec struct {
			key trace.ObjectID
			e   indexEntry
		}
		var live []liveRec
		for key, e := range d.idx {
			if e.seg == victim.id {
				live = append(live, liveRec{key, e})
			}
		}
		sort.Slice(live, func(i, j int) bool { return live[i].e.off < live[j].e.off })
		f := victim.f
		d.mu.Unlock()

		for _, lr := range live {
			buf := make([]byte, lr.e.rlen)
			if _, err := f.ReadAt(buf, int64(lr.e.off)); err != nil {
				d.dropCorrupt(lr.key, lr.e)
				continue
			}
			obj, recKey, _, err := decodeRecord(buf)
			if err != nil || recKey != uint64(lr.key) {
				d.dropCorrupt(lr.key, lr.e)
				continue
			}
			if !d.relocate(lr.key, lr.e, obj) {
				return // append failure: retry next round
			}
		}

		d.mu.Lock()
		// Everything live has moved (or was dropped as corrupt); an
		// entry still pointing here would mean a relocation raced a
		// concurrent rewrite — verify before unlinking.
		for _, e := range d.idx {
			if e.seg == victim.id {
				d.mu.Unlock()
				return
			}
		}
		delete(d.segs, victim.id)
		reclaimed := victim.size
		d.mu.Unlock()
		f.Close()
		os.Remove(d.segPath(victim.id))
		d.compactions.Inc()
		d.compactedB.Add(reclaimed)
	}
}

// relocate re-appends one live record to the active segment and
// journals the new location (its own mini-batch, fsynced).  Returns
// false on an append failure.  Callers hold batchMu.
func (d *Store) relocate(key trace.ObjectID, old indexEntry, obj Object) bool {
	seg := d.activeSegment()
	if seg == nil {
		d.corrupt.Inc()
		return false
	}
	encoded := appendRecord(nil, uint64(key), obj)
	base := seg.size
	if !d.writeAndSync(seg.f, encoded, base) {
		return false
	}
	d.writes.Inc()
	d.writeBytes.Add(int64(len(encoded)))

	d.mu.Lock()
	defer d.mu.Unlock()
	seg.size = base + int64(len(encoded))
	cur, ok := d.idx[key]
	if !ok || cur != old {
		// The object was dropped mid-relocation; the new copy is dead
		// on arrival.
		seg.dead += int64(len(encoded))
		d.maybeRotateLocked()
		return true
	}
	e := indexEntry{
		seg: seg.id, off: uint64(base), rlen: uint32(len(encoded)),
		size: old.size, cost: old.cost,
	}
	d.idx[key] = e
	d.appendJournalLocked([]journalEntry{{
		op: opPut, key: uint64(key), seg: e.seg, off: e.off,
		rlen: e.rlen, size: e.size, cost: e.cost, hexKey: obj.HexKey,
	}}, true)
	d.maybeRotateLocked()
	return true
}

// Compact runs a compaction scan (the worker triggers it after every
// batch; tests and maintenance paths may force it).
func (d *Store) Compact() {
	d.batchMu.Lock()
	defer d.batchMu.Unlock()
	d.compactRound()
}

// PublishMetrics writes the occupancy gauges (scrape-time snapshot;
// counters and timers accumulate live).  No-op without a registry.
func (d *Store) PublishMetrics() {
	if d.reg == nil {
		return
	}
	d.mu.Lock()
	live := d.policy.Used()
	objects := len(d.idx)
	segments := len(d.segs)
	var logBytes int64
	for _, s := range d.segs {
		logBytes += s.size
	}
	d.mu.Unlock()
	d.reg.Gauge("store.disk.capacity_bytes").Set(float64(d.capacity))
	d.reg.Gauge("store.disk.live_bytes").Set(float64(live))
	d.reg.Gauge("store.disk.log_bytes").Set(float64(logBytes))
	d.reg.Gauge("store.disk.objects").Set(float64(objects))
	d.reg.Gauge("store.disk.segments").Set(float64(segments))
	d.reg.Gauge("store.disk.queue_depth").Set(float64(len(d.queue)))
}
