package disk

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"webcache/internal/cache"
	"webcache/internal/invariant"
	"webcache/internal/trace"
)

// recover rebuilds the store's state from cfg.Dir: it opens every
// segment file, replays the journal's valid prefix, validates each
// surviving entry against the segment extents, re-seeds the
// replacement policy in journal order, and positions the journal
// write offset at the end of the valid prefix (overwriting any torn
// tail).  The active segment after recovery is always a fresh one —
// old segments are never appended to, so their journaled extents stay
// immutable.
func (d *Store) recover() error {
	stop := d.replayTimer.Start()
	defer stop()

	// Open every segment file; its stat size bounds the valid extent
	// (journaled bytes never exceed it, orphaned tails inside it are
	// dead bytes).
	paths, err := filepath.Glob(filepath.Join(d.dir, "seg-*.log"))
	if err != nil {
		return err
	}
	for _, p := range paths {
		var id uint32
		if _, err := fmt.Sscanf(filepath.Base(p), "seg-%d.log", &id); err != nil {
			continue // foreign file; leave it alone
		}
		f, err := os.OpenFile(p, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		d.segs[id] = &segment{id: id, f: f, size: st.Size()}
	}

	// Replay the journal: puts supersede earlier puts of the same key,
	// deletes drop it.  seqs preserves insertion order so the policy
	// is re-seeded oldest-first (evictions at a shrunk capacity then
	// fall on the oldest entries, matching what the policy would have
	// done).
	liveJnl := make(map[uint64]journalEntry)
	seqs := make(map[uint64]int64)
	var seq int64
	jnlPath := filepath.Join(d.dir, JournalName)
	valid, err := replayJournalFile(jnlPath, func(e journalEntry) {
		seq++
		switch e.op {
		case opPut:
			liveJnl[e.key] = e
			seqs[e.key] = seq
		case opDelete:
			delete(liveJnl, e.key)
			delete(seqs, e.key)
		}
	})
	if err != nil {
		return err
	}

	// Validate and seed, in insertion order.
	keys := make([]uint64, 0, len(liveJnl))
	for k := range liveJnl {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return seqs[keys[i]] < seqs[keys[j]] })
	for _, k := range keys {
		e := liveJnl[k]
		s := d.segs[e.seg]
		if s == nil || e.off+uint64(e.rlen) > uint64(s.size) ||
			e.size == 0 || int(e.rlen) < recordLen(len(e.hexKey), int(e.size)) {
			// Compacted-away segment or a superseded extent: the entry
			// lost a race with its own supersession at crash time.
			d.replayDropped.Inc()
			continue
		}
		key := trace.ObjectID(e.key)
		for _, ev := range d.policy.Add(cache.Entry{Obj: key, Size: e.size, Cost: e.cost}) {
			// Capacity shrank between runs: the oldest entries spill.
			if old, ok := d.idx[ev.Obj]; ok {
				delete(d.idx, ev.Obj)
				if sg := d.segs[old.seg]; sg != nil {
					sg.dead += int64(old.rlen)
				}
			}
			d.evictions.Inc()
		}
		if !d.policy.Contains(key) {
			d.replayDropped.Inc()
			continue
		}
		d.idx[key] = indexEntry{seg: e.seg, off: e.off, rlen: e.rlen, size: e.size, cost: e.cost}
		d.replayObjects.Inc()
	}

	// Dead-byte accounting: everything in a segment not referenced by
	// the final index is dead (orphaned records from crashed batches,
	// superseded versions, deleted objects).
	liveBytes := make(map[uint32]int64)
	for _, e := range d.idx {
		liveBytes[e.seg] += int64(e.rlen)
	}
	for id, s := range d.segs {
		s.dead = s.size - liveBytes[id]
	}

	// Record what survived, in insertion order, for directory
	// re-registration.
	for _, k := range keys {
		if _, ok := d.idx[trace.ObjectID(k)]; ok {
			d.recoveredHex = append(d.recoveredHex, liveJnl[k].hexKey)
		}
	}

	// Open the journal for appending at the end of its valid prefix —
	// or checkpoint it first if it has accumulated far more entries
	// than the live set.
	if seq > checkpointSlack*int64(len(d.idx))+checkpointFloor {
		hexOf := make(map[uint64]string, len(liveJnl))
		for k, e := range liveJnl {
			hexOf[k] = e.hexKey
		}
		if err := d.checkpointJournal(jnlPath, hexOf); err != nil {
			return err
		}
	} else {
		f, err := os.OpenFile(jnlPath, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		d.journal = f
		d.jnlSize = valid
		// Journal the replay's drops (invalid extents, capacity
		// evictions) so an immediate re-replay agrees with the index —
		// the crash-consistency invariant CheckInvariants enforces.
		var drops []journalEntry
		for k := range liveJnl {
			if _, ok := d.idx[trace.ObjectID(k)]; !ok {
				drops = append(drops, journalEntry{op: opDelete, key: k})
			}
		}
		d.appendJournalLocked(drops, true)
	}

	// Never append to recovered segments: the next write opens a fresh
	// one.  (active stays nil until the first batch.)
	d.active = nil
	return nil
}

// checkpointJournal rewrites the journal to exactly the live index
// (write journal.new, fsync, rename over the old journal, fsync the
// directory) and leaves it open for appending.
func (d *Store) checkpointJournal(jnlPath string, hexOf map[uint64]string) error {
	var buf []byte
	// Deterministic order keeps checkpoints reproducible in tests.
	keys := make([]uint64, 0, len(d.idx))
	for k := range d.idx {
		keys = append(keys, uint64(k))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		e := d.idx[trace.ObjectID(k)]
		buf = appendJournalEntry(buf, journalEntry{
			op: opPut, key: k, seg: e.seg, off: e.off, rlen: e.rlen,
			size: e.size, cost: e.cost, hexKey: hexOf[k],
		})
	}
	tmp := jnlPath + ".new"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := os.Rename(tmp, jnlPath); err != nil {
		f.Close()
		return err
	}
	if dir, err := os.Open(d.dir); err == nil {
		dir.Sync() // make the rename durable; best-effort
		dir.Close()
	}
	d.journal = f
	d.jnlSize = int64(len(buf))
	return nil
}

// snapshotForCheck captures the in-memory side of the agreement check
// under lock: the index, the segment extents, and the policy
// accounting.  Callers hold batchMu (and not mu).
func (d *Store) snapshotForCheck() (mem []invariant.DiskEntry, segs []invariant.DiskSegment, used, capacity uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	mem = make([]invariant.DiskEntry, 0, len(d.idx))
	for key, e := range d.idx {
		mem = append(mem, invariant.DiskEntry{
			Key: uint64(key), Seg: e.seg, Off: e.off, RLen: e.rlen, Size: e.size,
		})
	}
	segs = make([]invariant.DiskSegment, 0, len(d.segs))
	for _, s := range d.segs {
		segs = append(segs, invariant.DiskSegment{ID: s.id, Size: s.size})
	}
	return mem, segs, d.policy.Used(), d.capacity
}

// CheckInvariants runs the memory-index ↔ disk-log agreement check:
// it re-replays the on-disk journal through an independent reader and
// compares the resulting live set against the in-memory index, the
// segment extents, and the policy accounting.  batchMu excludes
// in-flight batches, so the two views must agree exactly.
func (d *Store) CheckInvariants(c *invariant.Checker) {
	if !c.Enabled() {
		return
	}
	d.batchMu.Lock()
	defer d.batchMu.Unlock()
	mem, segs, used, capacity := d.snapshotForCheck()

	liveJnl := make(map[uint64]journalEntry)
	_, err := replayJournalFile(filepath.Join(d.dir, JournalName), func(e journalEntry) {
		switch e.op {
		case opPut:
			liveJnl[e.key] = e
		case opDelete:
			delete(liveJnl, e.key)
		}
	})
	if err != nil {
		// Unreadable journal with a live index is itself a violation;
		// surface it through the same channel.
		liveJnl = nil
	}
	journal := make([]invariant.DiskEntry, 0, len(liveJnl))
	for k, e := range liveJnl {
		journal = append(journal, invariant.DiskEntry{
			Key: k, Seg: e.seg, Off: e.off, RLen: e.rlen, Size: e.size,
		})
	}
	c.CheckDiskAgreement(d.label, mem, journal, segs, used, capacity)
}
