package disk

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"webcache/internal/invariant"
	"webcache/internal/trace"
)

// The crash test re-executes this test binary as a writer child
// (crashChildEnv carries the store directory), SIGKILLs it mid-write,
// and then recovers the directory in-process.  The child prints each
// key to stdout only after a Sync barrier covering it, so every key
// the parent reads off the pipe was acknowledged as durable before
// the kill — the zero-acknowledged-loss contract.
const crashChildEnv = "DISK_CRASH_CHILD_DIR"

func TestMain(m *testing.M) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		crashChild(dir)
		return // unreachable: crashChild runs until killed
	}
	os.Exit(m.Run())
}

// crashChild writes objects forever, printing "acked <key>" after the
// Sync barrier that made each batch durable.  It never exits on its
// own; the parent SIGKILLs it.
func crashChild(dir string) {
	d, err := Open(Config{Dir: dir, CapacityBytes: 1 << 30, QueueDepth: 64})
	if err != nil {
		fmt.Println("open-error", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	var key uint64
	for {
		batch := make([]uint64, 0, 16)
		for i := 0; i < 16; i++ {
			key++
			if !d.Put(trace.ObjectID(key), testObj(key, 512)) {
				fmt.Println("put-rejected", key)
				os.Exit(1)
			}
			batch = append(batch, key)
		}
		if !d.Sync() {
			os.Exit(1)
		}
		for _, k := range batch {
			fmt.Fprintln(w, "acked", k)
		}
		w.Flush() // the pipe write lands in the parent even if we die next instant
	}
}

// lockedBuffer lets the parent poll the child's output while the
// exec.Cmd copier goroutine is still appending to it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Bytes()
}

func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	var out lockedBuffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Let it write for a while, then kill it mid-flight — no warning,
	// no drain.
	deadline := time.Now().Add(5 * time.Second)
	for out.Len() < 1<<14 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()

	// Every key the child acknowledged before dying must recover.
	var acked []uint64
	sc := bufio.NewScanner(bytes.NewReader(out.Bytes()))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 || fields[0] != "acked" {
			t.Fatalf("child reported: %s", sc.Text())
		}
		k, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		acked = append(acked, k)
	}
	if len(acked) == 0 {
		t.Fatal("child acknowledged nothing before the kill")
	}
	t.Logf("child acknowledged %d objects before SIGKILL", len(acked))

	check := invariant.New(nil)
	d := mustOpen(t, Config{Dir: dir, CapacityBytes: 1 << 30, Check: check})
	if err := check.Err(); err != nil {
		t.Fatalf("post-crash invariants: %v", err)
	}
	for _, k := range acked {
		obj, ok := d.Get(trace.ObjectID(k))
		if !ok {
			t.Fatalf("acknowledged key %d lost in the crash", k)
		}
		if !bytes.Equal(obj.Body, testBody(k, 512)) || obj.HexKey != hexKey(k) {
			t.Fatalf("acknowledged key %d recovered with wrong contents", k)
		}
	}
	// The agreement check must also hold on the recovered, serving
	// store.
	d.CheckInvariants(check)
	if err := check.Err(); err != nil {
		t.Fatalf("post-recovery agreement: %v", err)
	}
}
