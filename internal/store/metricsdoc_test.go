package store

import (
	"os"
	"testing"

	"webcache/internal/obs"
)

// TestMetricsDocStore holds the store.* namespace in METRICS.md
// against what the store registers, in both directions.  SetMetrics
// creates the live instruments, one GetOrLoad exercises the counters,
// and PublishMetrics writes the occupancy gauges.
func TestMetricsDocStore(t *testing.T) {
	md, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("doc-smoke-store")
	s := mustNew(t, Config{CapacityBytes: 1 << 20, Shards: 2, Metrics: reg})
	if _, err := s.GetOrLoad(1, func() (Object, string, error) {
		return Object{HexKey: "01", Body: body(8), Cost: 1}, "origin", nil
	}); err != nil {
		t.Fatal(err)
	}
	s.PublishMetrics()

	var names []string
	for _, m := range reg.Snapshot() {
		names = append(names, m.Name)
	}
	// store.disk.* is owned by the disk package's own doc test.
	if err := obs.CheckMetricsDoc(md, names, "store", "-store.disk"); err != nil {
		t.Fatal(err)
	}
}
