package pastry

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ridRand(rng *rand.Rand) ID { return ID{rng.Uint64(), rng.Uint64()} }

func TestIDFromBytesAndString(t *testing.T) {
	b := make([]byte, 16)
	for i := range b {
		b[i] = byte(i)
	}
	id := IDFromBytes(b)
	if got, want := id.String(), "000102030405060708090a0b0c0d0e0f"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestHashIDDeterministicAndSpread(t *testing.T) {
	a := HashString("http://example.com/a")
	b := HashString("http://example.com/a")
	c := HashString("http://example.com/b")
	if a != b {
		t.Error("same input hashed differently")
	}
	if a == c {
		t.Error("different inputs collided")
	}
	if HashUint64(7) != HashUint64(7) || HashUint64(7) == HashUint64(8) {
		t.Error("HashUint64 inconsistent")
	}
}

func TestCmpAndLess(t *testing.T) {
	a := ID{0, 5}
	b := ID{0, 6}
	c := ID{1, 0}
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("Cmp low word wrong")
	}
	if !b.Less(c) || c.Less(b) {
		t.Error("Less high word wrong")
	}
}

func TestSubWraps(t *testing.T) {
	a := ID{0, 1}
	b := ID{0, 3}
	d := a.sub(b)                          // 1 - 3 mod 2^128
	want := ID{^uint64(0), ^uint64(0) - 1} // -2 mod 2^128
	if d != want {
		t.Errorf("sub = %v, want %v", d, want)
	}
}

func TestDistanceSymmetricAndMin(t *testing.T) {
	a := ID{0, 10}
	b := ID{0, 4}
	if a.Distance(b) != b.Distance(a) {
		t.Error("distance not symmetric")
	}
	if d := a.Distance(b); d != (ID{0, 6}) {
		t.Errorf("distance = %v, want 6", d)
	}
	// Wraparound: near-0 and near-max are close.
	lo := ID{0, 2}
	hi := ID{^uint64(0), ^uint64(0) - 1} // max-1
	if d := lo.Distance(hi); d != (ID{0, 4}) {
		t.Errorf("wraparound distance = %v, want 4", d)
	}
}

func TestCloserToThanTieBreak(t *testing.T) {
	key := ID{0, 10}
	a := ID{0, 8}
	b := ID{0, 12}
	// Equal distance 2: smaller id wins.
	if !a.CloserToThan(key, b) {
		t.Error("tie should go to smaller id")
	}
	if b.CloserToThan(key, a) {
		t.Error("larger id won tie")
	}
}

func TestDigit(t *testing.T) {
	id := IDFromBytes([]byte{0xAB, 0xCD, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x3C})
	// b=4: hex digits.
	if d := id.Digit(0, 4); d != 0xA {
		t.Errorf("digit 0 (b=4) = %x, want a", d)
	}
	if d := id.Digit(1, 4); d != 0xB {
		t.Errorf("digit 1 (b=4) = %x, want b", d)
	}
	if d := id.Digit(3, 4); d != 0xD {
		t.Errorf("digit 3 (b=4) = %x, want d", d)
	}
	if d := id.Digit(31, 4); d != 0xC {
		t.Errorf("digit 31 (b=4) = %x, want c", d)
	}
	// b=2.
	if d := id.Digit(0, 2); d != 0b10 {
		t.Errorf("digit 0 (b=2) = %b, want 10", d)
	}
	// b=1.
	if d := id.Digit(0, 1); d != 1 {
		t.Errorf("digit 0 (b=1) = %d, want 1", d)
	}
	if d := id.Digit(1, 1); d != 0 {
		t.Errorf("digit 1 (b=1) = %d, want 0", d)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a := IDFromBytes([]byte{0xAB, 0xCD, 0xEF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	b4 := IDFromBytes([]byte{0xAB, 0xC0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	if got := a.CommonPrefixLen(b4, 4); got != 3 {
		t.Errorf("prefix len = %d, want 3", got)
	}
	if got := a.CommonPrefixLen(a, 4); got != 32 {
		t.Errorf("self prefix len = %d, want 32", got)
	}
}

func TestValidateB(t *testing.T) {
	for _, b := range []int{1, 2, 4, 8} {
		if err := ValidateB(b); err != nil {
			t.Errorf("b=%d rejected: %v", b, err)
		}
	}
	for _, b := range []int{0, 3, 5, 16, -1} {
		if err := ValidateB(b); err == nil {
			t.Errorf("b=%d accepted", b)
		}
	}
}

// Property: digits reassemble to the id (b=4).
func TestPropDigitsReconstruct(t *testing.T) {
	f := func(hi, lo uint64) bool {
		id := ID{hi, lo}
		var rebuilt ID
		for i := 0; i < 32; i++ {
			d := uint64(id.Digit(i, 4))
			if i < 16 {
				rebuilt[0] |= d << uint(60-4*i)
			} else {
				rebuilt[1] |= d << uint(60-4*(i-16))
			}
		}
		return rebuilt == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Distance satisfies d(a,b) <= 2^127 (it is the minor arc).
func TestPropDistanceMinorArc(t *testing.T) {
	half := ID{1 << 63, 0}
	f := func(a0, a1, b0, b1 uint64) bool {
		d := ID{a0, a1}.Distance(ID{b0, b1})
		return !half.Less(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sub is the inverse of modular addition: (a-b)+b == a via
// distance checks — verify a.sub(b).Cmp + reconstruct.
func TestPropSubAddInverse(t *testing.T) {
	f := func(a0, a1, b0, b1 uint64) bool {
		a := ID{a0, a1}
		b := ID{b0, b1}
		d := a.sub(b)
		// add d back to b
		lo := b[1] + d[1]
		var carry uint64
		if lo < b[1] {
			carry = 1
		}
		sum := ID{b[0] + d[0] + carry, lo}
		return sum == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
