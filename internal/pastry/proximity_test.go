package pastry

import (
	"fmt"
	"testing"
)

func TestCoordDistance(t *testing.T) {
	a := Coord{0, 0}
	b := Coord{3, 4}
	if d := a.DistanceTo(b); d != 5 {
		t.Errorf("distance = %g, want 5", d)
	}
	if d := a.DistanceTo(a); d != 0 {
		t.Errorf("self distance = %g", d)
	}
	if a.DistanceTo(b) != b.DistanceTo(a) {
		t.Error("distance not symmetric")
	}
}

func TestCoordsAssignedAndCleaned(t *testing.T) {
	o, ids := buildOverlay(t, 20, Config{Seed: 1})
	seen := map[Coord]bool{}
	for _, id := range ids {
		c := o.Coord(id)
		if c.X < 0 || c.X > 1 || c.Y < 0 || c.Y > 1 {
			t.Fatalf("coordinate %v outside unit square", c)
		}
		seen[c] = true
	}
	if len(seen) < 19 {
		t.Error("coordinates not distinct")
	}
	o.Fail(ids[0])
	if o.Coord(ids[0]) != (Coord{}) {
		t.Error("failed node's coordinate survives")
	}
	o.Leave(ids[1])
	if o.Coord(ids[1]) != (Coord{}) {
		t.Error("left node's coordinate survives")
	}
}

// measureStretch builds an overlay and returns the mean route stretch.
func measureStretch(t *testing.T, aware bool) (stretch float64, hops float64) {
	t.Helper()
	o, err := New(Config{Seed: 5, ProximityAware: aware})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.JoinN(400, "stretch"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		if _, _, err := o.Route(HashString(fmt.Sprintf("sk%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st := o.Stats()
	return st.MeanStretch, st.MeanHops
}

// The Pastry locality property: proximity-aware tables cut route
// stretch without hurting hop counts or correctness.
func TestProximityAwareRoutingReducesStretch(t *testing.T) {
	obliviousStretch, obliviousHops := measureStretch(t, false)
	awareStretch, awareHops := measureStretch(t, true)
	if awareStretch >= obliviousStretch {
		t.Errorf("proximity-aware stretch %.2f >= oblivious %.2f", awareStretch, obliviousStretch)
	}
	if awareStretch < 1 {
		t.Errorf("stretch %.2f below 1 is impossible on average", awareStretch)
	}
	// Hop counts must stay in the same band (proximity changes which
	// node fills a slot, not how many digits must be resolved).
	if awareHops > obliviousHops*1.2+0.5 {
		t.Errorf("proximity awareness inflated hops: %.2f vs %.2f", awareHops, obliviousHops)
	}
}

func TestProximityAwareRoutingStillCorrect(t *testing.T) {
	o, err := New(Config{Seed: 6, ProximityAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.JoinN(150, "pcorrect"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := HashString(fmt.Sprintf("pk%d", i))
		want, _ := o.Owner(key)
		got, _, err := o.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("key %d: routed to %v, owner %v", i, got, want)
		}
	}
}

func TestRoutingTablePreference(t *testing.T) {
	owner := ID{0, 0}
	rt := NewRoutingTable(owner, 4)
	// Two candidates for the same slot (both differ in digit 0 = 0xF).
	a := ID{0xF0 << 56, 1}
	bnode := ID{0xF0 << 56, 2}
	if !rt.Insert(a) {
		t.Fatal("first insert failed")
	}
	if rt.Insert(bnode) {
		t.Fatal("without preference the incumbent must stay")
	}
	// Prefer the numerically larger id (arbitrary test preference).
	rt.SetPreference(func(cand, inc ID) bool { return inc.Less(cand) })
	if !rt.Insert(bnode) {
		t.Fatal("preferred candidate rejected")
	}
	got, ok := rt.Lookup(ID{0xF0 << 56, 9})
	if !ok || got != bnode {
		t.Fatalf("lookup = %v %v, want %v", got, ok, bnode)
	}
	// Re-inserting the same id is a no-op.
	if rt.Insert(bnode) {
		t.Error("self-replacement reported as insert")
	}
}

func TestStretchUnmeasuredIsZero(t *testing.T) {
	o, _ := New(Config{Seed: 7})
	o.Join(idNum(1))
	if st := o.Stats(); st.MeanStretch != 0 {
		t.Errorf("stretch with no routes = %g", st.MeanStretch)
	}
}
