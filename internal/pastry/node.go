package pastry

// Node is one Pastry overlay participant: its id, routing table, and
// leaf set.  Nodes are passive state holders; the Overlay drives the
// routing and membership protocols against them.
type Node struct {
	id    ID
	table *RoutingTable
	leafs *LeafSet
}

// NewNode creates a node with empty state.
func NewNode(id ID, b, leafSetSize int) *Node {
	return &Node{
		id:    id,
		table: NewRoutingTable(id, b),
		leafs: NewLeafSet(id, leafSetSize),
	}
}

// ID returns the node's identifier.
func (n *Node) ID() ID { return n.id }

// Table exposes the routing table (read-mostly; the overlay mutates it
// during joins and failure repair).
func (n *Node) Table() *RoutingTable { return n.table }

// LeafSet exposes the leaf set.
func (n *Node) LeafSet() *LeafSet { return n.leafs }

// learn records another node in whichever structures it fits.
func (n *Node) learn(x ID) {
	if x == n.id {
		return
	}
	n.table.Insert(x)
	n.leafs.Insert(x)
}

// forget removes a (failed) node from all local state.
func (n *Node) forget(x ID) {
	n.table.Remove(x)
	n.leafs.Remove(x)
}

// NextHop runs one step of the Pastry routing procedure for key and
// returns the next node to forward to, or final=true when this node is
// the destination.
//
// The procedure is the published one:
//  1. if key is within the leaf set's range, deliver to the numerically
//     closest leaf (possibly self);
//  2. otherwise forward to the routing-table entry sharing a longer
//     prefix with key;
//  3. otherwise (rare: empty slot) forward to any known node that is
//     numerically closer to key than this node and shares at least as
//     long a prefix.
func (n *Node) NextHop(key ID) (next ID, final bool) {
	if key == n.id {
		return ID{}, true
	}
	if n.leafs.Covers(key) {
		dest := n.leafs.Closest(key)
		if dest == n.id {
			return ID{}, true
		}
		return dest, false
	}
	if hop, ok := n.table.Lookup(key); ok {
		return hop, false
	}
	// Rare case: union of leaf set and routing table.
	myPrefix := n.id.CommonPrefixLen(key, n.table.b)
	best := n.id
	consider := func(t ID) {
		if t.CommonPrefixLen(key, n.table.b) >= myPrefix && t.CloserToThan(key, best) {
			best = t
		}
	}
	for _, t := range n.leafs.Members() {
		consider(t)
	}
	for _, t := range n.table.Entries() {
		consider(t)
	}
	if best == n.id {
		return ID{}, true // no better node known: deliver here
	}
	return best, false
}
