// Package pastry implements the Pastry structured overlay (Rowstron &
// Druschel, Middleware 2001) that the paper's P2P client cache is built
// on (§4.1): 128-bit circular identifier space, prefix routing with
// 2^b-ary digits, per-node routing tables and leaf sets, node join, and
// failure handling.
//
// The paper relies on three Pastry properties, all of which this
// package provides and its tests verify:
//
//   - DHT functionality: a key is owned by the live node whose id is
//     numerically closest to it (object "pass-down" in Hier-GD);
//   - routing reaches the owner in ceil(log_{2^b} N) hops in the common
//     case (the paper's ~log16(1024) ≈ 3-4 LAN hops argument);
//   - the leaf set gives each node the l numerically closest neighbours
//     (used for object diversion in storage management, §4.3).
package pastry

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"unsafe"
)

// IDBits is the width of the Pastry identifier space.
const IDBits = 128

// ID is a 128-bit Pastry identifier on the circular id space,
// big-endian: ID[0] holds the most significant 64 bits.
type ID [2]uint64

// IDFromBytes builds an ID from the first 16 bytes of b (which must
// have at least 16).
func IDFromBytes(b []byte) ID {
	return ID{binary.BigEndian.Uint64(b[:8]), binary.BigEndian.Uint64(b[8:16])}
}

// HashID derives an ID by SHA-1, truncated to 128 bits — the paper's
// objectId derivation ("the proxy first hashes the URL of this object
// into an objectId using SHA-1", §4.1).
func HashID(data []byte) ID {
	sum := sha1.Sum(data)
	return IDFromBytes(sum[:])
}

// HashString is HashID for strings (URLs, node names).  The string's
// bytes are aliased rather than copied: HashID only reads its input,
// so the conversion is safe, and the live proxy hashes every request
// URL on its hot path — a heap copy per request is exactly the kind
// of allocation the request-path alloc gate forbids.
func HashString(s string) ID {
	if len(s) == 0 {
		return HashID(nil)
	}
	return HashID(unsafe.Slice(unsafe.StringData(s), len(s)))
}

// HashUint64 derives an ID from a numeric key (the simulator's object
// ids) via SHA-1 so ids spread uniformly over the ring.
func HashUint64(v uint64) ID {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return HashID(b[:])
}

// String renders the ID as 32 hex digits.
func (a ID) String() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], a[0])
	binary.BigEndian.PutUint64(b[8:], a[1])
	return hex.EncodeToString(b[:])
}

// Cmp compares a and b as unsigned 128-bit integers: -1, 0, or +1.
func (a ID) Cmp(b ID) int {
	switch {
	case a[0] < b[0]:
		return -1
	case a[0] > b[0]:
		return 1
	case a[1] < b[1]:
		return -1
	case a[1] > b[1]:
		return 1
	default:
		return 0
	}
}

// Less reports a < b in plain unsigned order.
func (a ID) Less(b ID) bool { return a.Cmp(b) < 0 }

// sub returns a-b mod 2^128 (clockwise ring distance from b to a).
func (a ID) sub(b ID) ID {
	lo := a[1] - b[1]
	var borrow uint64
	if a[1] < b[1] {
		borrow = 1
	}
	return ID{a[0] - b[0] - borrow, lo}
}

// Distance returns the circular distance between a and b: the minimum
// of the two arc lengths.
func (a ID) Distance(b ID) ID {
	d1 := a.sub(b)
	d2 := b.sub(a)
	if d1.Less(d2) {
		return d1
	}
	return d2
}

// CloserToThan reports whether a is strictly closer to key than c is,
// with the deterministic tie-break "smaller id wins" so ownership is
// unambiguous on an even ring.
func (a ID) CloserToThan(key, c ID) bool {
	da := a.Distance(key)
	dc := c.Distance(key)
	if cmp := da.Cmp(dc); cmp != 0 {
		return cmp < 0
	}
	return a.Less(c)
}

// Digit returns the i-th digit (0 = most significant) of the id in base
// 2^b.  b must divide 64 evenly into digit boundaries (1, 2, 4, or 8).
func (a ID) Digit(i, b int) int {
	bitOffset := i * b
	word := a[bitOffset/64]
	shift := 64 - b - bitOffset%64
	return int(word>>uint(shift)) & ((1 << b) - 1)
}

// CommonPrefixLen returns the number of leading base-2^b digits a and b
// share.
func (a ID) CommonPrefixLen(other ID, b int) int {
	digits := IDBits / b
	for i := 0; i < digits; i++ {
		if a.Digit(i, b) != other.Digit(i, b) {
			return i
		}
	}
	return digits
}

// ValidateB checks an overlay digit-width parameter.
func ValidateB(b int) error {
	switch b {
	case 1, 2, 4, 8:
		return nil
	default:
		return fmt.Errorf("pastry: b must be 1, 2, 4, or 8 (got %d)", b)
	}
}
