package pastry

// RoutingTable is the prefix-routing table of one Pastry node:
// ceil(128/b) rows of 2^b columns.  The entry at (row r, column c)
// names a node whose id shares the first r digits with the owner and
// whose (r+1)-th digit is c.  The owner's own column in each row is
// conceptually the owner itself and stays empty.
type RoutingTable struct {
	owner ID
	b     int
	rows  [][]ID
	set   [][]bool
	// prefer, when non-nil, decides whether a candidate should
	// displace an incumbent entry (proximity-aware Pastry).
	prefer func(candidate, incumbent ID) bool
}

// SetPreference installs a proximity preference for occupied slots.
func (rt *RoutingTable) SetPreference(prefer func(candidate, incumbent ID) bool) {
	rt.prefer = prefer
}

// NewRoutingTable creates an empty table for owner with digit width b.
func NewRoutingTable(owner ID, b int) *RoutingTable {
	numRows := IDBits / b
	cols := 1 << b
	rt := &RoutingTable{
		owner: owner,
		b:     b,
		rows:  make([][]ID, numRows),
		set:   make([][]bool, numRows),
	}
	for i := range rt.rows {
		rt.rows[i] = make([]ID, cols)
		rt.set[i] = make([]bool, cols)
	}
	return rt
}

// slot computes the (row, col) where x belongs in the owner's table,
// or ok=false if x is the owner itself.
func (rt *RoutingTable) slot(x ID) (row, col int, ok bool) {
	row = rt.owner.CommonPrefixLen(x, rt.b)
	if row >= len(rt.rows) {
		return 0, 0, false // x == owner
	}
	return row, x.Digit(row, rt.b), true
}

// Insert offers x for the table.  An empty slot takes it; an occupied
// slot keeps its incumbent unless a proximity preference (see
// SetPreference) says the candidate is closer, which is how real
// Pastry builds proximity-aware tables.  Reports whether x was stored.
func (rt *RoutingTable) Insert(x ID) bool {
	row, col, ok := rt.slot(x)
	if !ok {
		return false
	}
	if rt.set[row][col] {
		if rt.rows[row][col] == x || rt.prefer == nil || !rt.prefer(x, rt.rows[row][col]) {
			return false
		}
	}
	rt.rows[row][col] = x
	rt.set[row][col] = true
	return true
}

// Replace unconditionally stores x in its slot.
func (rt *RoutingTable) Replace(x ID) {
	if row, col, ok := rt.slot(x); ok {
		rt.rows[row][col] = x
		rt.set[row][col] = true
	}
}

// Lookup returns the entry for routing key from the owner: the node in
// row CommonPrefixLen(owner, key) at key's next digit.
func (rt *RoutingTable) Lookup(key ID) (ID, bool) {
	row := rt.owner.CommonPrefixLen(key, rt.b)
	if row >= len(rt.rows) {
		return ID{}, false // key == owner id
	}
	col := key.Digit(row, rt.b)
	if !rt.set[row][col] {
		return ID{}, false
	}
	return rt.rows[row][col], true
}

// Remove deletes x from the table if present (e.g., a failed node).
func (rt *RoutingTable) Remove(x ID) bool {
	row, col, ok := rt.slot(x)
	if !ok || !rt.set[row][col] || rt.rows[row][col] != x {
		return false
	}
	rt.set[row][col] = false
	rt.rows[row][col] = ID{}
	return true
}

// Row returns the populated entries of row r (for join-time state
// transfer: the i-th node on the join route donates its row i).
func (rt *RoutingTable) Row(r int) []ID {
	if r < 0 || r >= len(rt.rows) {
		return nil
	}
	var out []ID
	for c, ok := range rt.set[r] {
		if ok {
			out = append(out, rt.rows[r][c])
		}
	}
	return out
}

// Entries returns every populated entry.
func (rt *RoutingTable) Entries() []ID {
	var out []ID
	for r := range rt.rows {
		for c, ok := range rt.set[r] {
			if ok {
				out = append(out, rt.rows[r][c])
			}
		}
	}
	return out
}

// Size returns the number of populated entries.
func (rt *RoutingTable) Size() int {
	n := 0
	for _, row := range rt.set {
		for _, ok := range row {
			if ok {
				n++
			}
		}
	}
	return n
}
