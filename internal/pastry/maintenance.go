package pastry

import (
	"fmt"
	"sort"
)

// Background maintenance.  Real Pastry nodes periodically exchange
// leaf sets with their neighbours and probe routing-table entries;
// that is what keeps the ring consistent between the lazy repairs that
// routing performs.  Stabilize runs one such round for every live
// node, and the diagnostics below verify the resulting invariants —
// the properties the DHT guarantee (every key has exactly one owner
// and routing finds it) rests on.

// Stabilize runs one maintenance round: every node purges dead state,
// pulls its neighbours' leaf sets, and re-learns its ring neighbours.
// It returns the number of state repairs performed.  Call it after
// bursts of churn when request traffic (whose lazy repair normally
// does this work) is idle.
func (o *Overlay) Stabilize() int {
	repairs := 0
	for _, id := range o.ids {
		n := o.nodes[id]
		// Purge dead entries from both structures.
		for _, m := range n.leafs.Members() {
			if _, live := o.nodes[m]; !live {
				n.forget(m)
				repairs++
			}
		}
		for _, e := range n.table.Entries() {
			if _, live := o.nodes[e]; !live {
				n.table.Remove(e)
				repairs++
			}
		}
		// Exchange leaf sets with current members.
		before := n.leafs.Len()
		o.repairLeafSet(n)
		if n.leafs.Len() > before {
			repairs += n.leafs.Len() - before
		}
	}
	// Second pass: teach every node its true ring neighbours (the
	// converged fixed point of repeated neighbour exchange).
	half := o.l / 2
	for i, id := range o.ids {
		n := o.nodes[id]
		for d := 1; d <= half; d++ {
			cw := o.ids[(i+d)%len(o.ids)]
			ccw := o.ids[((i-d)%len(o.ids)+len(o.ids))%len(o.ids)]
			if cw != id && !n.leafs.Contains(cw) {
				if n.leafs.Insert(cw) {
					repairs++
				}
			}
			if ccw != id && !n.leafs.Contains(ccw) {
				if n.leafs.Insert(ccw) {
					repairs++
				}
			}
		}
	}
	return repairs
}

// Violation describes one broken overlay invariant.
type Violation struct {
	Node   ID
	Detail string
}

// CheckConsistency verifies the overlay's structural invariants:
//
//  1. every leaf-set entry and routing-table entry points to a live
//     node;
//  2. each node's leaf set holds exactly its l/2 closest live ring
//     neighbours per side (when the overlay is large enough);
//  3. routing-table entries sit in the correct (row, column) for their
//     prefix.
//
// It returns all violations found (empty = consistent).
func (o *Overlay) CheckConsistency() []Violation {
	var out []Violation
	half := o.l / 2
	for i, id := range o.ids {
		n := o.nodes[id]
		for _, m := range n.leafs.Members() {
			if _, live := o.nodes[m]; !live {
				out = append(out, Violation{id, fmt.Sprintf("leaf %v is dead", m)})
			}
		}
		for _, e := range n.table.Entries() {
			if _, live := o.nodes[e]; !live {
				out = append(out, Violation{id, fmt.Sprintf("table entry %v is dead", e)})
				continue
			}
			row := id.CommonPrefixLen(e, o.b)
			if got, ok := n.table.Lookup(e); !ok || got != e {
				out = append(out, Violation{id, fmt.Sprintf("table entry %v not findable in row %d", e, row)})
			}
		}
		// Ring-neighbour completeness.
		for d := 1; d <= half && d < len(o.ids); d++ {
			cw := o.ids[(i+d)%len(o.ids)]
			ccw := o.ids[((i-d)%len(o.ids)+len(o.ids))%len(o.ids)]
			if cw != id && !n.leafs.Contains(cw) {
				out = append(out, Violation{id, fmt.Sprintf("missing clockwise neighbour #%d %v", d, cw)})
			}
			if ccw != id && !n.leafs.Contains(ccw) {
				out = append(out, Violation{id, fmt.Sprintf("missing counter-clockwise neighbour #%d %v", d, ccw)})
			}
		}
	}
	return out
}

// Diagnostics summarizes per-node state health for operators.
type Diagnostics struct {
	Nodes            int
	MeanTableFill    float64 // populated routing-table entries per node
	MinTableFill     int
	MaxTableFill     int
	MeanLeafFill     float64
	CompleteLeafSets int // nodes whose leaf set holds all ring neighbours
	Violations       int
}

// Diagnose computes overlay health diagnostics.
func (o *Overlay) Diagnose() Diagnostics {
	d := Diagnostics{Nodes: len(o.ids)}
	if d.Nodes == 0 {
		return d
	}
	half := o.l / 2
	fills := make([]int, 0, d.Nodes)
	leafSum := 0
	for i, id := range o.ids {
		n := o.nodes[id]
		fills = append(fills, n.table.Size())
		leafSum += n.leafs.Len()
		complete := true
		for dd := 1; dd <= half && dd < len(o.ids); dd++ {
			cw := o.ids[(i+dd)%len(o.ids)]
			ccw := o.ids[((i-dd)%len(o.ids)+len(o.ids))%len(o.ids)]
			if (cw != id && !n.leafs.Contains(cw)) || (ccw != id && !n.leafs.Contains(ccw)) {
				complete = false
				break
			}
		}
		if complete {
			d.CompleteLeafSets++
		}
	}
	sort.Ints(fills)
	d.MinTableFill = fills[0]
	d.MaxTableFill = fills[len(fills)-1]
	sum := 0
	for _, f := range fills {
		sum += f
	}
	d.MeanTableFill = float64(sum) / float64(d.Nodes)
	d.MeanLeafFill = float64(leafSum) / float64(d.Nodes)
	d.Violations = len(o.CheckConsistency())
	return d
}
