package pastry

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Config parameterizes an overlay.
type Config struct {
	// B is the digit width in bits (Pastry's b); default 4, so routing
	// works in hex digits and tables have 16 columns.
	B int
	// LeafSetSize is Pastry's l; default 16.
	LeafSetSize int
	// Seed drives bootstrap selection and any randomized choices so
	// overlay construction is reproducible.
	Seed int64
	// ProximityAware makes routing tables prefer proximally close
	// entries over incumbents, as real Pastry does; routes then have
	// low stretch over the simulated network plane.
	ProximityAware bool
}

// Overlay is a simulated Pastry network: the set of live nodes plus
// the membership protocols (join, leave, fail) and the router.
//
// The simulation delivers messages instantly but routes them through
// each node's real routing state, so hop counts, routing-table content,
// and failure behaviour are faithful to the protocol; only network
// proximity (which real Pastry uses to pick among equally good table
// entries) is unmodeled.
type Overlay struct {
	b              int
	l              int
	nodes          map[ID]*Node
	ids            []ID // sorted ascending: ground truth ring membership
	rng            *rand.Rand
	proximityAware bool
	coords         map[ID]Coord

	// Routing telemetry.
	routes    int
	hopsTotal int
	hopsMax   int
	repairs   int // dead entries discovered and purged while routing
	// Stretch telemetry: cumulative path distance and direct distance
	// over the simulated network plane.
	pathDist   float64
	directDist float64
}

// New creates an empty overlay.
func New(cfg Config) (*Overlay, error) {
	if cfg.B == 0 {
		cfg.B = 4
	}
	if cfg.LeafSetSize == 0 {
		cfg.LeafSetSize = DefaultLeafSetSize
	}
	if err := ValidateB(cfg.B); err != nil {
		return nil, err
	}
	if cfg.LeafSetSize < 2 || cfg.LeafSetSize%2 != 0 {
		return nil, fmt.Errorf("pastry: leaf set size must be even and >= 2 (got %d)", cfg.LeafSetSize)
	}
	return &Overlay{
		b:              cfg.B,
		l:              cfg.LeafSetSize,
		nodes:          make(map[ID]*Node),
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		proximityAware: cfg.ProximityAware,
		coords:         make(map[ID]Coord),
	}, nil
}

// B returns the overlay digit width.
func (o *Overlay) B() int { return o.b }

// LeafSetSize returns the configured leaf-set size l.
func (o *Overlay) LeafSetSize() int { return o.l }

// Len returns the number of live nodes.
func (o *Overlay) Len() int { return len(o.ids) }

// Node returns the live node with the given id.
func (o *Overlay) Node(id ID) (*Node, bool) {
	n, ok := o.nodes[id]
	return n, ok
}

// IDs returns the sorted live node ids (shared slice; do not mutate).
func (o *Overlay) IDs() []ID { return o.ids }

// ErrDuplicateID reports a join with an id already present.
var ErrDuplicateID = errors.New("pastry: node id already in overlay")

// ErrEmptyOverlay reports an operation requiring at least one node.
var ErrEmptyOverlay = errors.New("pastry: overlay has no nodes")

func (o *Overlay) insertID(id ID) {
	i := sort.Search(len(o.ids), func(i int) bool { return !o.ids[i].Less(id) })
	o.ids = append(o.ids, ID{})
	copy(o.ids[i+1:], o.ids[i:])
	o.ids[i] = id
}

func (o *Overlay) removeID(id ID) {
	i := sort.Search(len(o.ids), func(i int) bool { return !o.ids[i].Less(id) })
	if i < len(o.ids) && o.ids[i] == id {
		o.ids = append(o.ids[:i], o.ids[i+1:]...)
	}
}

// Join adds a node with the given id using the Pastry join protocol:
// the join message routes from a bootstrap node to the current owner Z
// of the new id; the new node takes row i of its routing table from the
// i-th node on the route and its leaf set from Z, then announces itself
// to every node it has learned of.
func (o *Overlay) Join(id ID) error {
	if _, dup := o.nodes[id]; dup {
		return ErrDuplicateID
	}
	x := NewNode(id, o.b, o.l)
	o.coords[id] = Coord{X: o.rng.Float64(), Y: o.rng.Float64()}
	if o.proximityAware {
		x.table.SetPreference(o.closerTo(id))
	}
	if len(o.ids) == 0 {
		o.nodes[id] = x
		o.insertID(id)
		return nil
	}
	boot := o.ids[o.rng.Intn(len(o.ids))]
	_, _, path := o.routeFrom(boot, id)
	// Routing-table rows from the nodes along the path: node path[i]
	// shares (at least) i digits of prefix handling, so its row i is a
	// valid row i for x.
	for i, hop := range path {
		n := o.nodes[hop]
		if n == nil {
			continue
		}
		for _, e := range n.table.Row(i) {
			x.learn(e)
		}
		x.learn(hop)
	}
	// Leaf set from Z, the numerically closest existing node.
	z := o.nodes[path[len(path)-1]]
	for _, e := range z.leafs.Members() {
		x.learn(e)
	}
	x.learn(z.id)

	o.nodes[id] = x
	o.insertID(id)

	// Announce: everyone x knows learns x, and x pulls their leaf
	// members too (Pastry's state exchange on join).
	known := append(x.table.Entries(), x.leafs.Members()...)
	for _, t := range known {
		if n := o.nodes[t]; n != nil {
			n.learn(id)
			for _, e := range n.leafs.Members() {
				x.learn(e)
			}
		}
	}
	return nil
}

// JoinN joins count nodes with ids derived from the seed namespace,
// returning their ids.  Convenience for building client clusters.
func (o *Overlay) JoinN(count int, namespace string) ([]ID, error) {
	ids := make([]ID, 0, count)
	for i := 0; len(ids) < count; i++ {
		id := HashString(fmt.Sprintf("%s/%d", namespace, i))
		if err := o.Join(id); err != nil {
			if errors.Is(err, ErrDuplicateID) {
				continue
			}
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Fail abruptly removes a node (crash).  Remaining nodes discover the
// failure lazily while routing; neighbours repair their leaf sets
// immediately, as the Pastry failure protocol does when keep-alives
// stop.
func (o *Overlay) Fail(id ID) bool {
	n, ok := o.nodes[id]
	if !ok {
		return false
	}
	delete(o.nodes, id)
	delete(o.coords, id)
	o.removeID(id)
	// Leaf-set neighbours notice quickly (keep-alive) and repair.
	for _, m := range n.leafs.Members() {
		if peer := o.nodes[m]; peer != nil {
			peer.forget(id)
			o.repairLeafSet(peer)
		}
	}
	return true
}

// Leave gracefully removes a node: it notifies everything in its state.
func (o *Overlay) Leave(id ID) bool {
	n, ok := o.nodes[id]
	if !ok {
		return false
	}
	delete(o.nodes, id)
	delete(o.coords, id)
	o.removeID(id)
	notify := append(n.table.Entries(), n.leafs.Members()...)
	for _, t := range notify {
		if peer := o.nodes[t]; peer != nil {
			peer.forget(id)
			o.repairLeafSet(peer)
		}
	}
	return true
}

// repairLeafSet refills a node's leaf set by pulling the leaf sets of
// its current members (the published repair procedure: ask the live
// node with the largest index on the side of the failed node).
func (o *Overlay) repairLeafSet(n *Node) {
	for _, m := range n.leafs.Members() {
		peer := o.nodes[m]
		if peer == nil {
			n.forget(m)
			continue
		}
		for _, e := range peer.leafs.Members() {
			if _, live := o.nodes[e]; live {
				n.learn(e)
			}
		}
	}
}

// maxRouteHops bounds a single route to catch routing loops: prefix
// routing can take at most one hop per digit plus leaf-set/rare-case
// slack.
func (o *Overlay) maxRouteHops() int { return IDBits/o.b + o.l + 8 }

// RouteFrom routes key from a specific start node.  It returns the
// destination node id, the hop count (0 when start owns the key), and
// the path of node ids visited (including start and destination).
// Dead routing entries encountered on the way are purged (lazy repair)
// and routing continues.
func (o *Overlay) RouteFrom(start ID, key ID) (ID, int, error) {
	dest, hops, path := o.routeFrom(start, key)
	if _, ok := o.nodes[dest]; !ok {
		return ID{}, 0, ErrEmptyOverlay
	}
	o.routes++
	o.hopsTotal += hops
	if hops > o.hopsMax {
		o.hopsMax = hops
	}
	if hops > 0 {
		o.pathDist += o.pathDistance(path)
		o.directDist += o.proximity(start, dest)
	}
	return dest, hops, nil
}

func (o *Overlay) routeFrom(start ID, key ID) (ID, int, []ID) {
	cur, ok := o.nodes[start]
	if !ok {
		return ID{}, 0, nil
	}
	path := []ID{start}
	hops := 0
	for limit := o.maxRouteHops(); limit >= 0; limit-- {
		next, final := cur.NextHop(key)
		if final {
			return cur.id, hops, path
		}
		nextNode, alive := o.nodes[next]
		if !alive {
			// Lazy failure discovery: purge and retry from the same
			// node; its next-best option takes over.
			cur.forget(next)
			o.repairLeafSet(cur)
			o.repairs++
			continue
		}
		cur = nextNode
		hops++
		path = append(path, next)
	}
	// Routing loop safety valve: deliver at the numerically closest
	// node among those visited (should be unreachable; tests assert
	// loops never happen).
	best := path[0]
	for _, p := range path {
		if p.CloserToThan(key, best) {
			best = p
		}
	}
	return best, hops, path
}

// Route routes key from a uniformly random live node, as a client
// contacting the overlay would.
func (o *Overlay) Route(key ID) (ID, int, error) {
	if len(o.ids) == 0 {
		return ID{}, 0, ErrEmptyOverlay
	}
	start := o.ids[o.rng.Intn(len(o.ids))]
	return o.RouteFrom(start, key)
}

// Owner returns the ground-truth owner of key: the live node whose id
// is numerically closest (ties to the smaller id).  Tests compare
// Route's destination to this.
func (o *Overlay) Owner(key ID) (ID, bool) {
	if len(o.ids) == 0 {
		return ID{}, false
	}
	i := sort.Search(len(o.ids), func(i int) bool { return !o.ids[i].Less(key) })
	best := o.ids[i%len(o.ids)]
	// Check the ring neighbours of the insertion point.
	for _, j := range []int{i - 1, i, i + 1} {
		c := o.ids[((j%len(o.ids))+len(o.ids))%len(o.ids)]
		if c.CloserToThan(key, best) {
			best = c
		}
	}
	return best, true
}

// Stats reports cumulative routing telemetry.
type Stats struct {
	Routes    int
	MeanHops  float64
	MaxHops   int
	Repairs   int
	NumNodes  int
	LeafSize  int
	DigitBits int
	// MeanStretch is cumulative path distance over direct distance on
	// the simulated network plane (1.0 = perfect; proximity-aware
	// tables push it toward 1).
	MeanStretch float64
}

// Stats returns a snapshot of routing telemetry.
func (o *Overlay) Stats() Stats {
	s := Stats{
		Routes:    o.routes,
		MaxHops:   o.hopsMax,
		Repairs:   o.repairs,
		NumNodes:  len(o.ids),
		LeafSize:  o.l,
		DigitBits: o.b,
	}
	if o.routes > 0 {
		s.MeanHops = float64(o.hopsTotal) / float64(o.routes)
	}
	if o.directDist > 0 {
		s.MeanStretch = o.pathDist / o.directDist
	}
	return s
}
