package pastry

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestFreshOverlayConsistent(t *testing.T) {
	o, _ := buildOverlay(t, 120, Config{Seed: 1})
	if v := o.CheckConsistency(); len(v) != 0 {
		t.Fatalf("fresh overlay has %d violations; first: %+v", len(v), v[0])
	}
	d := o.Diagnose()
	if d.Nodes != 120 || d.Violations != 0 {
		t.Errorf("diagnostics: %+v", d)
	}
	if d.CompleteLeafSets != 120 {
		t.Errorf("only %d/120 complete leaf sets on a fresh overlay", d.CompleteLeafSets)
	}
	if d.MeanTableFill <= 0 || d.MeanLeafFill <= 0 {
		t.Errorf("empty fills: %+v", d)
	}
}

func TestStabilizeAfterMassFailure(t *testing.T) {
	o, ids := buildOverlay(t, 150, Config{Seed: 2})
	rng := rand.New(rand.NewSource(3))
	killed := 0
	for killed < 50 {
		if o.Fail(ids[rng.Intn(len(ids))]) {
			killed++
		}
	}
	// Failures repair leaf sets of direct neighbours, but distant
	// routing-table entries stay stale until touched.
	repairs := o.Stabilize()
	if repairs == 0 {
		t.Error("stabilize found nothing to repair after 50 crashes")
	}
	if v := o.CheckConsistency(); len(v) != 0 {
		t.Fatalf("%d violations after stabilize; first: %+v", len(v), v[0])
	}
	// Routing is exact again everywhere.
	for i := 0; i < 300; i++ {
		key := HashString(fmt.Sprintf("mk%d", i))
		want, _ := o.Owner(key)
		got, _, err := o.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("post-stabilize route %v != owner %v", got, want)
		}
	}
}

func TestStabilizeIdempotent(t *testing.T) {
	o, _ := buildOverlay(t, 60, Config{Seed: 4})
	o.Stabilize()
	if again := o.Stabilize(); again != 0 {
		t.Errorf("second stabilize repaired %d items on a stable overlay", again)
	}
}

func TestDiagnoseEmptyOverlay(t *testing.T) {
	o, _ := New(Config{})
	d := o.Diagnose()
	if d.Nodes != 0 || d.Violations != 0 {
		t.Errorf("empty diagnostics: %+v", d)
	}
}

func TestCheckConsistencyDetectsDamage(t *testing.T) {
	o, ids := buildOverlay(t, 40, Config{Seed: 5})
	// Surgically break one node: forget a live ring neighbour.
	n := o.nodes[ids[0]]
	members := n.leafs.Members()
	if len(members) == 0 {
		t.Fatal("no leaf members")
	}
	n.leafs.Remove(members[0])
	if v := o.CheckConsistency(); len(v) == 0 {
		t.Fatal("damage not detected")
	}
	o.Stabilize()
	if v := o.CheckConsistency(); len(v) != 0 {
		t.Fatalf("stabilize did not heal: %+v", v[0])
	}
}
