package pastry

import "sort"

// LeafSet holds the l nodes with ids numerically closest to the owning
// node *by ring direction*: the l/2 immediate successors (clockwise,
// wrapping) and the l/2 immediate predecessors (counter-clockwise).
// The paper's storage management balances free space within the leaf
// set via object diversion (§4.3), with the typical Pastry value
// l = 16.
//
// Sides are directional, not minor-arc: when the overlay is small
// relative to l, a far successor wraps most of the ring and would be
// "closer" the other way — but it is still the successor, and real
// Pastry keeps it on the clockwise side.  A node may therefore appear
// on both sides of a small ring; Members dedupes.
type LeafSet struct {
	owner ID
	half  int
	// smaller: predecessors ordered by increasing counter-clockwise
	// arc; larger: successors ordered by increasing clockwise arc.
	smaller []ID
	larger  []ID
}

// DefaultLeafSetSize is Pastry's typical l.
const DefaultLeafSetSize = 16

// NewLeafSet creates an empty leaf set for owner with capacity l
// (rounded up to even).
func NewLeafSet(owner ID, l int) *LeafSet {
	if l < 2 {
		l = 2
	}
	return &LeafSet{owner: owner, half: (l + 1) / 2}
}

// ccwDist is the counter-clockwise arc length from owner to x.
func (ls *LeafSet) ccwDist(x ID) ID { return ls.owner.sub(x) }

// cwDist is the clockwise arc length from owner to x.
func (ls *LeafSet) cwDist(x ID) ID { return x.sub(ls.owner) }

// Insert offers a node id to the leaf set.  It reports whether the id
// was kept on at least one side (displacing a farther node or filling
// a free slot).  The owner itself and duplicates are ignored.
func (ls *LeafSet) Insert(x ID) bool {
	if x == ls.owner {
		return false
	}
	kept := false
	var k bool
	if !containsID(ls.larger, x) {
		ls.larger, k = insertByDist(ls.larger, x, ls.half, ls.cwDist)
		kept = kept || k
	}
	if !containsID(ls.smaller, x) {
		ls.smaller, k = insertByDist(ls.smaller, x, ls.half, ls.ccwDist)
		kept = kept || k
	}
	return kept
}

func containsID(side []ID, x ID) bool {
	for _, v := range side {
		if v == x {
			return true
		}
	}
	return false
}

func insertByDist(side []ID, x ID, half int, dist func(ID) ID) ([]ID, bool) {
	i := sort.Search(len(side), func(i int) bool {
		return dist(x).Less(dist(side[i]))
	})
	if i >= half {
		return side, false
	}
	side = append(side, ID{})
	copy(side[i+1:], side[i:])
	side[i] = x
	if len(side) > half {
		side = side[:half]
	}
	return side, true
}

// Remove deletes x from both sides if present.
func (ls *LeafSet) Remove(x ID) bool {
	removed := false
	for i, v := range ls.smaller {
		if v == x {
			ls.smaller = append(ls.smaller[:i], ls.smaller[i+1:]...)
			removed = true
			break
		}
	}
	for i, v := range ls.larger {
		if v == x {
			ls.larger = append(ls.larger[:i], ls.larger[i+1:]...)
			removed = true
			break
		}
	}
	return removed
}

// Contains reports membership on either side.
func (ls *LeafSet) Contains(x ID) bool {
	return containsID(ls.smaller, x) || containsID(ls.larger, x)
}

// Members returns the deduplicated leaf ids (both sides), owner
// excluded.
func (ls *LeafSet) Members() []ID {
	out := make([]ID, 0, len(ls.smaller)+len(ls.larger))
	out = append(out, ls.larger...)
	for _, v := range ls.smaller {
		if !containsID(out, v) {
			out = append(out, v)
		}
	}
	return out
}

// Len is the current number of distinct leaves.
func (ls *LeafSet) Len() int { return len(ls.Members()) }

// Covers reports whether key falls within the leaf set's id range
// (between the farthest predecessor and the farthest successor), the
// condition under which Pastry routes directly to the numerically
// closest leaf.  With an unfilled side (small overlays) the range is
// considered open on that side.
func (ls *LeafSet) Covers(key ID) bool {
	if len(ls.smaller) < ls.half || len(ls.larger) < ls.half {
		// Leaf set spans the whole (small) overlay.
		return true
	}
	maxCCW := ls.ccwDist(ls.smaller[len(ls.smaller)-1])
	maxCW := ls.cwDist(ls.larger[len(ls.larger)-1])
	dCCW := ls.ccwDist(key)
	dCW := ls.cwDist(key)
	// key is inside the arc [owner-maxCCW, owner+maxCW].
	return !maxCW.Less(dCW) || !maxCCW.Less(dCCW)
}

// Closest returns the leaf (or owner) numerically closest to key.
func (ls *LeafSet) Closest(key ID) ID {
	best := ls.owner
	for _, v := range ls.smaller {
		if v.CloserToThan(key, best) {
			best = v
		}
	}
	for _, v := range ls.larger {
		if v.CloserToThan(key, best) {
			best = v
		}
	}
	return best
}
