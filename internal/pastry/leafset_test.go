package pastry

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func idNum(v uint64) ID { return ID{0, v} }

func TestLeafSetInsertBothSides(t *testing.T) {
	ls := NewLeafSet(idNum(100), 4)
	if !ls.Insert(idNum(90)) || !ls.Insert(idNum(110)) {
		t.Fatal("insert failed")
	}
	if ls.Insert(idNum(110)) {
		t.Error("duplicate insert accepted")
	}
	if ls.Insert(idNum(100)) {
		t.Error("owner insert accepted")
	}
	if ls.Len() != 2 {
		t.Errorf("len = %d, want 2", ls.Len())
	}
}

func TestLeafSetKeepsClosest(t *testing.T) {
	ls := NewLeafSet(idNum(1000), 4) // 2 per side
	for _, v := range []uint64{900, 950, 990, 1010, 1050, 1100} {
		ls.Insert(idNum(v))
	}
	members := ls.Members()
	want := map[ID]bool{idNum(990): true, idNum(950): true, idNum(1010): true, idNum(1050): true}
	if len(members) != 4 {
		t.Fatalf("members = %v", members)
	}
	for _, m := range members {
		if !want[m] {
			t.Errorf("unexpected member %v", m)
		}
	}
}

func TestLeafSetRemove(t *testing.T) {
	ls := NewLeafSet(idNum(100), 4)
	ls.Insert(idNum(90))
	ls.Insert(idNum(110))
	if !ls.Remove(idNum(90)) {
		t.Error("remove existing failed")
	}
	if ls.Remove(idNum(90)) {
		t.Error("double remove succeeded")
	}
	if ls.Contains(idNum(90)) || !ls.Contains(idNum(110)) {
		t.Error("contains wrong after remove")
	}
}

func TestLeafSetClosest(t *testing.T) {
	ls := NewLeafSet(idNum(100), 8)
	for _, v := range []uint64{80, 90, 110, 120} {
		ls.Insert(idNum(v))
	}
	if got := ls.Closest(idNum(91)); got != idNum(90) {
		t.Errorf("closest(91) = %v, want 90", got)
	}
	if got := ls.Closest(idNum(101)); got != idNum(100) {
		t.Errorf("closest(101) = %v, want owner 100", got)
	}
	if got := ls.Closest(idNum(119)); got != idNum(120) {
		t.Errorf("closest(119) = %v, want 120", got)
	}
}

func TestLeafSetCoversUnderfilled(t *testing.T) {
	ls := NewLeafSet(idNum(100), 8)
	ls.Insert(idNum(90))
	// With fewer members than capacity, the leaf set spans the whole
	// (tiny) overlay and must cover everything.
	if !ls.Covers(idNum(5)) || !ls.Covers(ID{^uint64(0), 0}) {
		t.Error("underfilled leaf set should cover all keys")
	}
}

func TestLeafSetCoversRange(t *testing.T) {
	ls := NewLeafSet(idNum(100), 4)
	for _, v := range []uint64{80, 90, 110, 120} {
		ls.Insert(idNum(v))
	}
	for _, v := range []uint64{80, 85, 100, 115, 120} {
		if !ls.Covers(idNum(v)) {
			t.Errorf("should cover %d", v)
		}
	}
	for _, v := range []uint64{5, 70, 200} {
		if ls.Covers(idNum(v)) {
			t.Errorf("should not cover %d", v)
		}
	}
}

func TestLeafSetWraparound(t *testing.T) {
	// Owner near the top of the ring: counter-clockwise side wraps.
	owner := ID{^uint64(0), ^uint64(0) - 5}
	ls := NewLeafSet(owner, 4)
	lo := idNum(3) // clockwise across the wrap
	hi := ID{^uint64(0), ^uint64(0) - 100}
	ls.Insert(lo)
	ls.Insert(hi)
	if !ls.Contains(lo) || !ls.Contains(hi) {
		t.Fatal("wraparound inserts lost")
	}
	if got := ls.Closest(idNum(1)); got != lo {
		t.Errorf("closest across wrap = %v, want %v", got, lo)
	}
}

// Property: after inserting arbitrary ids, the leaf set holds exactly
// the (up to) l/2 closest per side, and Closest agrees with brute
// force over members+owner.
func TestPropLeafSetClosestMatchesBruteForce(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		owner := ridRand(rng)
		ls := NewLeafSet(owner, 8)
		var all []ID
		for i := 0; i < int(n)%50+1; i++ {
			x := ridRand(rng)
			if x == owner {
				continue
			}
			ls.Insert(x)
			all = append(all, x)
		}
		key := ridRand(rng)
		got := ls.Closest(key)
		// Brute force over current members + owner.
		best := owner
		for _, m := range ls.Members() {
			if m.CloserToThan(key, best) {
				best = m
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the retained members are exactly the l/2 nearest ring
// successors plus the l/2 nearest ring predecessors among everything
// offered (directional sides, dedup for small rings).
func TestPropLeafSetRetainsRingNeighbours(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		owner := ridRand(rng)
		const l = 8
		ls := NewLeafSet(owner, l)
		var offered []ID
		seen := map[ID]bool{owner: true}
		for i := 0; i < 60; i++ {
			x := ridRand(rng)
			if seen[x] {
				continue
			}
			seen[x] = true
			ls.Insert(x)
			offered = append(offered, x)
		}
		cw := append([]ID(nil), offered...)
		ccw := append([]ID(nil), offered...)
		sort.Slice(cw, func(i, j int) bool { return cw[i].sub(owner).Less(cw[j].sub(owner)) })
		sort.Slice(ccw, func(i, j int) bool { return owner.sub(ccw[i]).Less(owner.sub(ccw[j])) })
		want := map[ID]bool{}
		for i := 0; i < len(cw) && i < l/2; i++ {
			want[cw[i]] = true
		}
		for i := 0; i < len(ccw) && i < l/2; i++ {
			want[ccw[i]] = true
		}
		members := ls.Members()
		if len(members) != len(want) {
			return false
		}
		for _, m := range members {
			if !want[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
