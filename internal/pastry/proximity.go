package pastry

import "math"

// Proximity-aware routing.  Real Pastry exploits a proximity metric:
// among the many nodes eligible for a routing-table slot it keeps one
// that is close in the underlying network, which gives routes a small
// total distance ("low stretch") even though the id space is random.
// The paper leans on this property for its LAN-hop argument (§4.1):
// client caches in one corporate network are mutually near, so
// overlay hops are cheap.
//
// The simulation models the underlying network as a unit square with
// Euclidean distance.  With Config.ProximityAware set, every routing-
// table insertion prefers the proximally closer candidate; the overlay
// then reports the mean *stretch* of its routes — path distance over
// direct distance — which the tests show drops markedly versus
// proximity-oblivious tables.

// Coord is a node's position in the simulated network plane.
type Coord struct {
	X, Y float64
}

// DistanceTo is the Euclidean distance between two coordinates.
func (c Coord) DistanceTo(o Coord) float64 {
	dx, dy := c.X-o.X, c.Y-o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Coord returns a node's network coordinate (zero if unknown).
func (o *Overlay) Coord(id ID) Coord { return o.coords[id] }

// proximity returns the network distance between two live nodes.
func (o *Overlay) proximity(a, b ID) float64 {
	return o.coords[a].DistanceTo(o.coords[b])
}

// closerTo builds the routing-table preference function for a node:
// candidate x displaces incumbent y when x is proximally closer to the
// owner.  Ties keep the incumbent (stability).
func (o *Overlay) closerTo(owner ID) func(candidate, incumbent ID) bool {
	return func(candidate, incumbent ID) bool {
		return o.proximity(owner, candidate) < o.proximity(owner, incumbent)
	}
}

// pathDistance sums the proximity lengths of a route's hops.
func (o *Overlay) pathDistance(path []ID) float64 {
	total := 0.0
	for i := 1; i < len(path); i++ {
		total += o.proximity(path[i-1], path[i])
	}
	return total
}
