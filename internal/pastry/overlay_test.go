package pastry

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildOverlay(t testing.TB, n int, cfg Config) (*Overlay, []ID) {
	t.Helper()
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := o.JoinN(n, "node")
	if err != nil {
		t.Fatal(err)
	}
	return o, ids
}

func TestRoutingTableBasics(t *testing.T) {
	owner := HashString("owner")
	rt := NewRoutingTable(owner, 4)
	other := HashString("other")
	if !rt.Insert(other) {
		t.Fatal("insert failed")
	}
	if rt.Insert(other) {
		t.Error("duplicate insert filled occupied slot")
	}
	got, ok := rt.Lookup(other)
	if !ok || got != other {
		t.Fatalf("lookup = %v %v", got, ok)
	}
	if rt.Size() != 1 {
		t.Errorf("size = %d", rt.Size())
	}
	if !rt.Remove(other) || rt.Remove(other) {
		t.Error("remove semantics wrong")
	}
	if rt.Insert(owner) {
		t.Error("owner inserted into own table")
	}
}

func TestRoutingTableRow(t *testing.T) {
	owner := ID{0, 0} // all-zero digits
	rt := NewRoutingTable(owner, 4)
	// A node differing in digit 0 goes to row 0.
	x := ID{0xF << 60, 0}
	rt.Insert(x)
	if row := rt.Row(0); len(row) != 1 || row[0] != x {
		t.Fatalf("row 0 = %v", row)
	}
	// A node sharing 1 digit goes to row 1.
	y := ID{0x0F << 56, 0}
	rt.Insert(y)
	if row := rt.Row(1); len(row) != 1 || row[0] != y {
		t.Fatalf("row 1 = %v", row)
	}
	if row := rt.Row(-1); row != nil {
		t.Error("negative row returned entries")
	}
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{B: 3}); err == nil {
		t.Error("b=3 accepted")
	}
	if _, err := New(Config{LeafSetSize: 7}); err == nil {
		t.Error("odd leaf set accepted")
	}
	o, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if o.B() != 4 {
		t.Errorf("default b = %d", o.B())
	}
}

func TestJoinDuplicate(t *testing.T) {
	o, _ := New(Config{Seed: 1})
	id := HashString("x")
	if err := o.Join(id); err != nil {
		t.Fatal(err)
	}
	if err := o.Join(id); err != ErrDuplicateID {
		t.Errorf("duplicate join err = %v", err)
	}
}

func TestRouteSingleNode(t *testing.T) {
	o, ids := buildOverlay(t, 1, Config{Seed: 1})
	dest, hops, err := o.Route(HashString("anykey"))
	if err != nil || dest != ids[0] || hops != 0 {
		t.Fatalf("route = %v %d %v", dest, hops, err)
	}
}

func TestRouteEmptyOverlay(t *testing.T) {
	o, _ := New(Config{})
	if _, _, err := o.Route(HashString("k")); err != ErrEmptyOverlay {
		t.Errorf("err = %v, want ErrEmptyOverlay", err)
	}
}

// Core DHT correctness: every route lands on the ground-truth owner.
func TestRouteReachesOwner(t *testing.T) {
	for _, n := range []int{2, 5, 16, 64, 200} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			o, _ := buildOverlay(t, n, Config{Seed: int64(n)})
			for i := 0; i < 500; i++ {
				key := HashString(fmt.Sprintf("key-%d", i))
				want, _ := o.Owner(key)
				got, _, err := o.Route(key)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("key %d: routed to %v, owner %v", i, got, want)
				}
			}
		})
	}
}

// The paper's hop bound: ceil(log_{2^b} N) hops in the common case.
func TestRouteHopBound(t *testing.T) {
	const n = 256
	o, _ := buildOverlay(t, n, Config{Seed: 7, B: 4})
	logBound := math.Ceil(math.Log(float64(n)) / math.Log(16))
	sumHops, maxHops := 0, 0
	const routes = 2000
	for i := 0; i < routes; i++ {
		_, hops, err := o.Route(HashString(fmt.Sprintf("k%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		sumHops += hops
		if hops > maxHops {
			maxHops = hops
		}
	}
	mean := float64(sumHops) / routes
	if mean > logBound+1 {
		t.Errorf("mean hops %.2f exceeds log bound %g + 1", mean, logBound)
	}
	// Allow leaf-set slack on the max but catch pathological routing.
	if float64(maxHops) > 2*logBound+3 {
		t.Errorf("max hops %d pathological (log bound %g)", maxHops, logBound)
	}
	st := o.Stats()
	if st.Routes != routes || st.MeanHops != mean || st.MaxHops != maxHops {
		t.Errorf("stats mismatch: %+v", st)
	}
}

func TestRouteHopsGrowLogarithmically(t *testing.T) {
	mean := func(n int) float64 {
		o, _ := buildOverlay(t, n, Config{Seed: 11, B: 4})
		sum := 0
		for i := 0; i < 500; i++ {
			_, hops, err := o.Route(HashString(fmt.Sprintf("k%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			sum += hops
		}
		return float64(sum) / 500
	}
	small, large := mean(16), mean(512)
	if large < small {
		t.Errorf("hops should not shrink with size: %g -> %g", small, large)
	}
	if large > 4*small+3 {
		t.Errorf("hops growing too fast: %g -> %g (not logarithmic)", small, large)
	}
}

func TestFailThenRouteStillCorrect(t *testing.T) {
	o, ids := buildOverlay(t, 100, Config{Seed: 3})
	rng := rand.New(rand.NewSource(9))
	// Kill 30 nodes abruptly.
	killed := map[ID]bool{}
	for len(killed) < 30 {
		id := ids[rng.Intn(len(ids))]
		if !killed[id] && o.Fail(id) {
			killed[id] = true
		}
	}
	if o.Len() != 70 {
		t.Fatalf("len = %d, want 70", o.Len())
	}
	for i := 0; i < 500; i++ {
		key := HashString(fmt.Sprintf("fk%d", i))
		want, _ := o.Owner(key)
		got, _, err := o.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("after failures key %d routed to %v, owner %v", i, got, want)
		}
		if killed[got] {
			t.Fatal("routed to a dead node")
		}
	}
}

func TestLeaveGraceful(t *testing.T) {
	o, ids := buildOverlay(t, 50, Config{Seed: 5})
	for i := 0; i < 10; i++ {
		if !o.Leave(ids[i]) {
			t.Fatalf("leave %d failed", i)
		}
	}
	if o.Leave(ids[0]) {
		t.Error("double leave succeeded")
	}
	for i := 0; i < 300; i++ {
		key := HashString(fmt.Sprintf("lk%d", i))
		want, _ := o.Owner(key)
		got, _, err := o.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("after leaves key %d routed to %v, owner %v", i, got, want)
		}
	}
}

func TestChurn(t *testing.T) {
	o, _ := buildOverlay(t, 60, Config{Seed: 13})
	rng := rand.New(rand.NewSource(17))
	joined := 60
	for round := 0; round < 200; round++ {
		switch rng.Intn(3) {
		case 0:
			id := HashString(fmt.Sprintf("churn-%d", round))
			if err := o.Join(id); err == nil {
				joined++
			}
		case 1:
			if o.Len() > 10 {
				ids := o.IDs()
				o.Fail(ids[rng.Intn(len(ids))])
			}
		case 2:
			key := HashString(fmt.Sprintf("ck%d", round))
			want, _ := o.Owner(key)
			got, _, err := o.RouteFrom(o.IDs()[rng.Intn(o.Len())], key)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("round %d: routed to %v, owner %v (n=%d)", round, got, want, o.Len())
			}
		}
	}
}

func TestRouteFromSpecificStart(t *testing.T) {
	o, ids := buildOverlay(t, 40, Config{Seed: 21})
	key := HashString("target")
	want, _ := o.Owner(key)
	for _, start := range ids[:10] {
		got, _, err := o.RouteFrom(start, key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("from %v: got %v want %v", start, got, want)
		}
	}
	if _, _, err := o.RouteFrom(HashString("not-a-node"), key); err == nil {
		t.Error("route from dead start succeeded")
	}
}

func TestOwnerGroundTruth(t *testing.T) {
	o, _ := New(Config{})
	if _, ok := o.Owner(idNum(5)); ok {
		t.Error("owner on empty overlay")
	}
	o.Join(idNum(10))
	o.Join(idNum(20))
	o.Join(idNum(30))
	cases := []struct {
		key  ID
		want ID
	}{
		{idNum(10), idNum(10)},
		{idNum(14), idNum(10)},
		{idNum(15), idNum(10)}, // tie 10 vs 20 -> smaller id
		{idNum(16), idNum(20)},
		{idNum(29), idNum(30)},
		{ID{1 << 60, 0}, idNum(30)}, // beyond all: wrap consideration
	}
	for _, c := range cases {
		got, ok := o.Owner(c.key)
		if !ok || got != c.want {
			t.Errorf("Owner(%v) = %v, want %v", c.key, got, c.want)
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a, _ := buildOverlay(t, 50, Config{Seed: 99})
	b, _ := buildOverlay(t, 50, Config{Seed: 99})
	for i := 0; i < 100; i++ {
		key := HashString(fmt.Sprintf("d%d", i))
		da, ha, _ := a.Route(key)
		db, hb, _ := b.Route(key)
		if da != db || ha != hb {
			t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", da, ha, db, hb)
		}
	}
}

func TestOverlayWithB2(t *testing.T) {
	o, _ := buildOverlay(t, 64, Config{Seed: 2, B: 2})
	for i := 0; i < 200; i++ {
		key := HashString(fmt.Sprintf("b2-%d", i))
		want, _ := o.Owner(key)
		got, _, err := o.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("b=2 key %d: %v vs %v", i, got, want)
		}
	}
}

// Property: in a random overlay, routing from a random start always
// reaches the ground-truth owner.
func TestPropRoutingCorrect(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%80 + 2
		o, err := New(Config{Seed: seed})
		if err != nil {
			return false
		}
		if _, err := o.JoinN(n, fmt.Sprintf("p%d", seed)); err != nil {
			return false
		}
		key := HashUint64(uint64(kRaw) * 2654435761)
		want, _ := o.Owner(key)
		got, _, err := o.Route(key)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
