package pastry

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: any interleaving of joins, graceful leaves, and crashes
// followed by one stabilization round leaves a fully consistent
// overlay whose routes all reach the ground-truth owner.
func TestPropChurnThenStabilizeConsistent(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		o, err := New(Config{Seed: seed})
		if err != nil {
			return false
		}
		if _, err := o.JoinN(20, fmt.Sprintf("churnprop%d", seed)); err != nil {
			return false
		}
		joined := 20
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				id := HashString(fmt.Sprintf("cp-%d-%d", seed, joined))
				if o.Join(id) == nil {
					joined++
				}
			case 2:
				if o.Len() > 4 {
					o.Fail(o.IDs()[rng.Intn(o.Len())])
				}
			case 3:
				if o.Len() > 4 {
					o.Leave(o.IDs()[rng.Intn(o.Len())])
				}
			}
		}
		o.Stabilize()
		if len(o.CheckConsistency()) != 0 {
			return false
		}
		for i := 0; i < 20; i++ {
			key := HashUint64(uint64(seed)*1000 + uint64(i))
			want, _ := o.Owner(key)
			got, _, err := o.Route(key)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
