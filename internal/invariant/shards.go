package invariant

// Cross-shard reconciliation for the sharded store (internal/store):
// the store keeps cross-shard Used()/Len() totals in atomics so the
// hot path never takes more than one shard lock, which means the
// totals can silently drift from the per-shard ground truth if any
// update path forgets its delta.  This check re-derives the totals
// from a locked per-shard snapshot and compares.

// ShardSnapshot is one shard's locked accounting snapshot.
type ShardSnapshot struct {
	Used     uint64
	Capacity uint64
	Len      int
}

// CheckShardPartition verifies a sharded store's accounting against a
// consistent per-shard snapshot:
//
//   - every shard respects its own budget (Used ≤ Capacity);
//   - the shard budgets partition the configured total exactly
//     (Σ Capacity == totalCapacity — no bytes lost to rounding);
//   - the store's atomic totals reconcile with the shard sums
//     (Σ Used == totalUsed, Σ Len == totalLen).
//
// label distinguishes multiple stores in violation details.
func (c *Checker) CheckShardPartition(label string, shards []ShardSnapshot, totalUsed, totalCapacity uint64, totalLen int) {
	if c == nil {
		return
	}
	var sumUsed, sumCap uint64
	sumLen := 0
	for i, s := range shards {
		c.assertf(s.Used <= s.Capacity, "store", "shard-budget",
			"%s: shard %d used %d exceeds its budget %d", label, i, s.Used, s.Capacity)
		sumUsed += s.Used
		sumCap += s.Capacity
		sumLen += s.Len
	}
	c.assertf(sumCap == totalCapacity, "store", "capacity-partition",
		"%s: shard budgets sum to %d, configured capacity %d", label, sumCap, totalCapacity)
	c.assertf(sumUsed == totalUsed, "store", "used-total",
		"%s: shard used sums to %d, atomic total %d", label, sumUsed, totalUsed)
	c.assertf(sumLen == totalLen, "store", "len-total",
		"%s: shard lengths sum to %d, atomic total %d", label, sumLen, totalLen)
}
