package invariant

import (
	"math"

	"webcache/internal/cache"
	"webcache/internal/trace"
)

// deepCheckEvery is the mutation period of the O(n log n) full-state
// reconciliation (Objects() against the shadow map); the O(1)
// accounting assertions run after every operation.
const deepCheckEvery = 64

// inflationPolicy is implemented by greedy-dual-family policies that
// expose their L value; the checker asserts it never decreases.
type inflationPolicy interface{ Inflation() float64 }

// hvaluePolicy is implemented by policies exposing per-object H values
// (GreedyDual); the checker asserts they stay finite.
type hvaluePolicy interface {
	HValue(obj trace.ObjectID) (float64, bool)
}

// CheckedPolicy wraps a cache.Policy with a shadow entry map and
// asserts the cache-accounting invariants after every operation:
//
//   - Used() equals the sum of resident entry sizes and never exceeds
//     Capacity();
//   - Len(), Contains, Access, Peek, and Objects() agree with the
//     shadow (heap / entries-map agreement);
//   - greedy-dual inflation (L) is monotonically non-decreasing and
//     H values stay finite.
//
// It implements cache.Policy and is transparent to callers.
type CheckedPolicy struct {
	inner cache.Policy
	chk   *Checker
	// label distinguishes multiple wrapped caches in violation details.
	label string

	shadow     map[trace.ObjectID]cache.Entry
	shadowUsed uint64
	lastL      float64
	mutations  int
}

// WrapPolicy wraps p with invariant checking.  With a nil Checker it
// returns p unchanged, so the disabled path costs nothing.
func WrapPolicy(p cache.Policy, chk *Checker, label string) cache.Policy {
	if chk == nil {
		return p
	}
	w := &CheckedPolicy{
		inner:  p,
		chk:    chk,
		label:  label,
		shadow: make(map[trace.ObjectID]cache.Entry),
	}
	if ip, ok := p.(inflationPolicy); ok {
		w.lastL = ip.Inflation()
	}
	return w
}

// Unwrap returns the wrapped policy (tests and telemetry).
func (w *CheckedPolicy) Unwrap() cache.Policy { return w.inner }

// Name implements cache.Policy.
func (w *CheckedPolicy) Name() string { return w.inner.Name() }

// accounting runs the O(1) invariants plus, every deepCheckEvery
// mutations, the full shadow reconciliation.
func (w *CheckedPolicy) accounting() {
	used, capacity := w.inner.Used(), w.inner.Capacity()
	w.chk.assertf(used == w.shadowUsed, "cache", "used-sum",
		"%s(%s): Used()=%d but resident entry sizes sum to %d", w.inner.Name(), w.label, used, w.shadowUsed)
	w.chk.assertf(used <= capacity, "cache", "over-capacity",
		"%s(%s): Used()=%d exceeds Capacity()=%d", w.inner.Name(), w.label, used, capacity)
	w.chk.assertf(w.inner.Len() == len(w.shadow), "cache", "len-agree",
		"%s(%s): Len()=%d but shadow holds %d entries", w.inner.Name(), w.label, w.inner.Len(), len(w.shadow))
	if ip, ok := w.inner.(inflationPolicy); ok {
		l := ip.Inflation()
		w.chk.assertf(l >= w.lastL, "cache", "inflation-monotone",
			"%s(%s): inflation fell from %g to %g", w.inner.Name(), w.label, w.lastL, l)
		w.chk.assertf(!math.IsInf(l, 0) && !math.IsNaN(l), "cache", "inflation-finite",
			"%s(%s): inflation is %g", w.inner.Name(), w.label, l)
		w.lastL = l
	}
}

// deepCheck reconciles the full object list against the shadow and,
// when available, every H value.
func (w *CheckedPolicy) deepCheck() {
	objs := w.inner.Objects()
	if !w.chk.assertf(len(objs) == len(w.shadow), "cache", "objects-agree",
		"%s(%s): Objects() lists %d ids, shadow holds %d", w.inner.Name(), w.label, len(objs), len(w.shadow)) {
		return
	}
	hv, hasH := w.inner.(hvaluePolicy)
	for _, obj := range objs {
		if _, ok := w.shadow[obj]; !ok {
			w.chk.violatef("cache", "objects-agree",
				"%s(%s): Objects() lists %d which the shadow never saw", w.inner.Name(), w.label, obj)
			continue
		}
		if hasH {
			h, ok := hv.HValue(obj)
			w.chk.assertf(ok, "cache", "heap-agree",
				"%s(%s): object %d cached but absent from the H heap", w.inner.Name(), w.label, obj)
			w.chk.assertf(!math.IsInf(h, 0) && !math.IsNaN(h), "cache", "h-finite",
				"%s(%s): object %d has non-finite H %g", w.inner.Name(), w.label, obj, h)
		}
	}
}

func (w *CheckedPolicy) afterMutation() {
	w.accounting()
	w.mutations++
	if w.mutations%deepCheckEvery == 0 {
		w.deepCheck()
	}
}

// Access implements cache.Policy.
func (w *CheckedPolicy) Access(obj trace.ObjectID) bool {
	hit := w.inner.Access(obj)
	_, resident := w.shadow[obj]
	w.chk.assertf(hit == resident, "cache", "access-agree",
		"%s(%s): Access(%d)=%v but shadow residency is %v", w.inner.Name(), w.label, obj, hit, resident)
	w.accounting()
	return hit
}

// Add implements cache.Policy.
func (w *CheckedPolicy) Add(e cache.Entry) []cache.Entry {
	evicted := w.inner.Add(e)
	if w.inner.Contains(e.Obj) {
		w.shadow[e.Obj] = e
		w.shadowUsed += uint64(e.Size)
	} else {
		// Rejections are legitimate only for zero-size or oversized
		// entries; anything else means the policy dropped a valid add.
		w.chk.assertf(e.Size == 0 || uint64(e.Size) > w.inner.Capacity(), "cache", "silent-drop",
			"%s(%s): Add(%d) size=%d rejected despite fitting capacity %d",
			w.inner.Name(), w.label, e.Obj, e.Size, w.inner.Capacity())
		w.chk.assertf(len(evicted) == 0, "cache", "reject-evicts",
			"%s(%s): rejected Add(%d) still evicted %d entries", w.inner.Name(), w.label, e.Obj, len(evicted))
	}
	for _, ev := range evicted {
		w.chk.assertf(ev.Obj != e.Obj, "cache", "self-evict",
			"%s(%s): Add(%d) evicted the object being added", w.inner.Name(), w.label, e.Obj)
		if prev, ok := w.shadow[ev.Obj]; w.chk.assertf(ok, "cache", "phantom-evict",
			"%s(%s): evicted %d which the shadow never saw", w.inner.Name(), w.label, ev.Obj) {
			w.chk.assertf(prev.Size == ev.Size, "cache", "evict-size",
				"%s(%s): evicted %d with size %d, stored as %d", w.inner.Name(), w.label, ev.Obj, ev.Size, prev.Size)
			delete(w.shadow, ev.Obj)
			w.shadowUsed -= uint64(prev.Size)
		}
	}
	w.afterMutation()
	return evicted
}

// Remove implements cache.Policy.
func (w *CheckedPolicy) Remove(obj trace.ObjectID) (cache.Entry, bool) {
	e, ok := w.inner.Remove(obj)
	prev, resident := w.shadow[obj]
	w.chk.assertf(ok == resident, "cache", "remove-agree",
		"%s(%s): Remove(%d)=%v but shadow residency is %v", w.inner.Name(), w.label, obj, ok, resident)
	if ok && resident {
		w.chk.assertf(prev.Size == e.Size, "cache", "remove-size",
			"%s(%s): Remove(%d) returned size %d, stored as %d", w.inner.Name(), w.label, obj, e.Size, prev.Size)
		delete(w.shadow, obj)
		w.shadowUsed -= uint64(prev.Size)
	}
	w.afterMutation()
	return e, ok
}

// Contains implements cache.Policy.
func (w *CheckedPolicy) Contains(obj trace.ObjectID) bool {
	got := w.inner.Contains(obj)
	_, resident := w.shadow[obj]
	w.chk.assertf(got == resident, "cache", "contains-agree",
		"%s(%s): Contains(%d)=%v but shadow residency is %v", w.inner.Name(), w.label, obj, got, resident)
	return got
}

// Peek implements cache.Policy.
func (w *CheckedPolicy) Peek(obj trace.ObjectID) (cache.Entry, bool) {
	e, ok := w.inner.Peek(obj)
	prev, resident := w.shadow[obj]
	w.chk.assertf(ok == resident, "cache", "peek-agree",
		"%s(%s): Peek(%d)=%v but shadow residency is %v", w.inner.Name(), w.label, obj, ok, resident)
	if ok && resident {
		w.chk.assertf(prev == e, "cache", "peek-entry",
			"%s(%s): Peek(%d) returned %+v, stored %+v", w.inner.Name(), w.label, obj, e, prev)
	}
	return e, ok
}

// Len implements cache.Policy.
func (w *CheckedPolicy) Len() int { return w.inner.Len() }

// Used implements cache.Policy.
func (w *CheckedPolicy) Used() uint64 { return w.inner.Used() }

// Capacity implements cache.Policy.
func (w *CheckedPolicy) Capacity() uint64 { return w.inner.Capacity() }

// Objects implements cache.Policy.
func (w *CheckedPolicy) Objects() []trace.ObjectID { return w.inner.Objects() }

var _ cache.Policy = (*CheckedPolicy)(nil)
