package invariant

import (
	"strings"
	"testing"

	"webcache/internal/cache"
	"webcache/internal/directory"
	"webcache/internal/obs"
	"webcache/internal/trace"
)

func TestNilCheckerIsDisabled(t *testing.T) {
	var c *Checker
	if c.Enabled() {
		t.Fatal("nil checker reports enabled")
	}
	c.observe(5)
	c.violatef("cache", "x", "boom")
	if !c.assertf(false, "cache", "x", "boom") {
		// assertf still returns the condition so call sites can chain.
	}
	if c.Checks() != 0 || c.ViolationCount() != 0 || c.Violations() != nil || c.Err() != nil {
		t.Fatal("nil checker recorded state")
	}

	p := cache.NewLRU(10)
	if got := WrapPolicy(p, nil, "t"); got != p {
		t.Fatal("WrapPolicy(nil checker) did not return the unwrapped policy")
	}
	d := directory.NewExact()
	if got := WrapDirectory(d, nil, "t"); got != d {
		t.Fatal("WrapDirectory(nil checker) did not return the unwrapped directory")
	}
	if NewClusterAccountant(nil, "t") != nil {
		t.Fatal("NewClusterAccountant(nil checker) != nil")
	}
	var acct *ClusterAccountant
	acct.RecordFailure([]trace.ObjectID{1})
	acct.Reconcile(nil)
	CheckRing(nil, nil, 4)
}

func TestCheckerRecordsViolations(t *testing.T) {
	reg := obs.NewRegistry("test")
	c := New(reg)
	if !c.Enabled() {
		t.Fatal("checker not enabled")
	}
	if !c.assertf(true, "cache", "ok", "fine") {
		t.Fatal("passing assert returned false")
	}
	if c.assertf(false, "cache", "used-sum", "want %d", 7) {
		t.Fatal("failing assert returned true")
	}
	if c.Checks() != 2 {
		t.Fatalf("Checks() = %d, want 2", c.Checks())
	}
	if c.ViolationCount() != 1 {
		t.Fatalf("ViolationCount() = %d, want 1", c.ViolationCount())
	}
	v := c.Violations()[0]
	if v.Layer != "cache" || v.Rule != "used-sum" || v.Detail != "want 7" {
		t.Fatalf("violation = %+v", v)
	}
	if got := v.String(); got != "cache/used-sum: want 7" {
		t.Fatalf("String() = %q", got)
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "cache/used-sum") {
		t.Fatalf("Err() = %v", err)
	}
	if reg.Counter("check.violations").Value() != 1 {
		t.Fatal("check.violations counter not incremented")
	}
	if reg.Counter("check.violations.cache").Value() != 1 {
		t.Fatal("per-layer violation counter not incremented")
	}
}

func TestCheckerCapsRecordedViolations(t *testing.T) {
	c := New(nil)
	for i := 0; i < maxRecordedViolations+10; i++ {
		c.violatef("cache", "x", "violation %d", i)
	}
	if len(c.Violations()) != maxRecordedViolations {
		t.Fatalf("recorded %d violations, want cap %d", len(c.Violations()), maxRecordedViolations)
	}
	if c.ViolationCount() != int64(maxRecordedViolations+10) {
		t.Fatalf("ViolationCount() = %d, want %d", c.ViolationCount(), maxRecordedViolations+10)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "10 more") {
		t.Fatalf("Err() should note dropped violations, got %v", err)
	}
}

// exercisePolicy drives a wrapped policy through a deterministic
// add/access/remove churn.
func exercisePolicy(p cache.Policy) {
	for i := 0; i < 400; i++ {
		obj := trace.ObjectID(i % 37)
		if !p.Access(obj) {
			p.Add(cache.Entry{Obj: obj, Size: uint32(1 + i%9), Cost: 1 + float64(i%5)})
		}
		if i%11 == 0 {
			p.Remove(trace.ObjectID((i + 5) % 37))
		}
		p.Contains(trace.ObjectID(i % 41))
		p.Peek(trace.ObjectID(i % 43))
	}
}

func TestCheckedPolicyCleanOnRealPolicies(t *testing.T) {
	mk := map[string]func() cache.Policy{
		"greedy-dual": func() cache.Policy { return cache.NewGreedyDual(64) },
		"gdsf":        func() cache.Policy { return cache.NewGDSF(64) },
		"lru":         func() cache.Policy { return cache.NewLRU(64) },
		"lfu":         func() cache.Policy { return cache.NewLFU(64) },
	}
	for name, f := range mk {
		t.Run(name, func(t *testing.T) {
			chk := New(nil)
			p := WrapPolicy(f(), chk, "test")
			exercisePolicy(p)
			// Rejections the wrapper must accept as legitimate.
			p.Add(cache.Entry{Obj: 9001, Size: 0, Cost: 1})
			p.Add(cache.Entry{Obj: 9002, Size: 1000, Cost: 1})
			if err := chk.Err(); err != nil {
				t.Fatalf("violations on a correct policy: %v", err)
			}
			if chk.Checks() == 0 {
				t.Fatal("no checks ran")
			}
		})
	}
}

// lyingPolicy wraps a real policy but misreports Used, to prove the
// oracle notices broken accounting.
type lyingPolicy struct{ cache.Policy }

func (l lyingPolicy) Used() uint64 { return l.Policy.Used() + 1 }

func TestCheckedPolicyCatchesBrokenAccounting(t *testing.T) {
	chk := New(nil)
	p := WrapPolicy(lyingPolicy{cache.NewLRU(64)}, chk, "test")
	p.Add(cache.Entry{Obj: 1, Size: 4, Cost: 1})
	if chk.ViolationCount() == 0 {
		t.Fatal("misreported Used() went unnoticed")
	}
	found := false
	for _, v := range chk.Violations() {
		if v.Rule == "used-sum" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a used-sum violation, got %v", chk.Violations())
	}
}

// forgetfulPolicy drops every add on the floor without reporting it.
type forgetfulPolicy struct{ cache.Policy }

func (f forgetfulPolicy) Add(e cache.Entry) []cache.Entry { return nil }

func TestCheckedPolicyCatchesSilentDrop(t *testing.T) {
	chk := New(nil)
	p := WrapPolicy(forgetfulPolicy{cache.NewLRU(64)}, chk, "test")
	p.Add(cache.Entry{Obj: 1, Size: 4, Cost: 1})
	found := false
	for _, v := range chk.Violations() {
		if v.Rule == "silent-drop" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a silent-drop violation, got %v", chk.Violations())
	}
}

func TestCheckedPolicyUnwrap(t *testing.T) {
	inner := cache.NewLRU(8)
	w := WrapPolicy(inner, New(nil), "test").(*CheckedPolicy)
	if w.Unwrap() != inner {
		t.Fatal("Unwrap did not return the inner policy")
	}
	if w.Name() != inner.Name() || w.Capacity() != inner.Capacity() {
		t.Fatal("delegation broken")
	}
}

func TestCheckedDirectoryCleanOnRealDirectories(t *testing.T) {
	for _, mk := range []func() directory.Directory{
		func() directory.Directory { return directory.NewExact() },
		func() directory.Directory { return directory.NewBloom(256, 0.01) },
	} {
		chk := New(nil)
		d := WrapDirectory(mk(), chk, "test")
		for i := 0; i < 100; i++ {
			d.Add(trace.ObjectID(i))
		}
		for i := 0; i < 200; i++ {
			d.MayContain(trace.ObjectID(i))
		}
		for i := 0; i < 50; i++ {
			d.Remove(trace.ObjectID(i))
		}
		for i := 50; i < 100; i++ {
			d.MayContain(trace.ObjectID(i))
		}
		d.Reset()
		if err := chk.Err(); err != nil {
			t.Fatalf("%s: violations on a correct directory: %v", d.Name(), err)
		}
	}
}

// denyingDirectory forgets everything: MayContain always answers false,
// violating the no-false-negative guarantee.
type denyingDirectory struct{ directory.Directory }

func (d denyingDirectory) MayContain(trace.ObjectID) bool { return false }

func TestCheckedDirectoryCatchesFalseNegative(t *testing.T) {
	chk := New(nil)
	d := WrapDirectory(denyingDirectory{directory.NewExact()}, chk, "test")
	d.Add(7)
	found := false
	for _, v := range chk.Violations() {
		if v.Rule == "no-false-negative" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a no-false-negative violation, got %v", chk.Violations())
	}
}

func TestReconcileDirectory(t *testing.T) {
	chk := New(nil)
	d := directory.NewExact()
	d.Add(1)
	d.Add(2)
	resident := map[trace.ObjectID]bool{1: true, 2: true}
	ReconcileDirectory(chk, "test", d,
		func(o trace.ObjectID) bool { return resident[o] }, []trace.ObjectID{1, 2})
	if err := chk.Err(); err != nil {
		t.Fatalf("violations on a consistent directory: %v", err)
	}

	// Stale entry: directory lists 3 which the cluster does not hold.
	d.Add(3)
	ReconcileDirectory(chk, "test", d,
		func(o trace.ObjectID) bool { return resident[o] }, []trace.ObjectID{1, 2})
	if chk.ViolationCount() == 0 {
		t.Fatal("stale directory entry went unnoticed")
	}

	// False negative: cluster holds 4 which the directory denies.
	chk2 := New(nil)
	ReconcileDirectory(chk2, "test", d,
		func(o trace.ObjectID) bool { return true }, []trace.ObjectID{4})
	if chk2.ViolationCount() == 0 {
		t.Fatal("directory false negative went unnoticed")
	}
}
