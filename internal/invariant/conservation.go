package invariant

import (
	"webcache/internal/p2p"
	"webcache/internal/trace"
)

// ClusterAccountant is the P2P conservation oracle.  It watches the
// receipt stream a proxy sees from its client cluster — store receipts,
// eviction notices, lookup displacements, failure loss reports — and
// maintains its own resident-set ledger.  The conservation law it
// enforces is the one the proxy's directory consistency (§4.3) rests
// on:
//
//	stores − evictions − lost-on-failure == resident objects
//
// Reconcile compares the ledger against the cluster's ground truth.
//
// Two events are not covered by receipts and force lenient mode, where
// only the ledger-internal identity is checked: JoinClient handoffs may
// silently drop objects, and hot-object replication adds copies without
// receipts.  Callers flag those via Lenient (the simulator does this
// when ReplaceFailed or ReplicateHotAfter is configured).
type ClusterAccountant struct {
	chk   *Checker
	label string

	resident map[trace.ObjectID]struct{}
	stores   int64
	evicts   int64
	lost     int64

	strict bool
}

// NewClusterAccountant creates an accountant recording into chk.  With
// a nil Checker it returns nil, and every method on a nil accountant is
// a no-op, so call sites stay unconditional.
func NewClusterAccountant(chk *Checker, label string) *ClusterAccountant {
	if chk == nil {
		return nil
	}
	return &ClusterAccountant{
		chk:      chk,
		label:    label,
		resident: make(map[trace.ObjectID]struct{}),
		strict:   true,
	}
}

// Lenient downgrades the oracle to ledger-identity checks only; see the
// type comment for when receipts stop covering every population change.
func (a *ClusterAccountant) Lenient() {
	if a == nil {
		return
	}
	a.strict = false
}

// Strict reports whether ground-truth reconciliation is still on.
func (a *ClusterAccountant) Strict() bool { return a != nil && a.strict }

// remove takes obj off the ledger, asserting (in strict mode) that the
// cluster is not reporting the removal of an object it never stored.
func (a *ClusterAccountant) remove(obj trace.ObjectID, rule, how string) bool {
	_, ok := a.resident[obj]
	if a.strict {
		a.chk.assertf(ok, "p2p", rule,
			"cluster %s: %s object %d which the ledger does not hold", a.label, how, obj)
	}
	delete(a.resident, obj)
	return ok
}

// RecordStore feeds a StoreEvicted receipt into the ledger.
func (a *ClusterAccountant) RecordStore(r p2p.Receipt) {
	if a == nil {
		return
	}
	if !r.StoredOK {
		// A rejected store (object larger than a client cache, or the
		// cluster fully failed) must not displace anything.
		a.chk.assertf(len(r.Evicted) == 0, "p2p", "reject-evicts",
			"cluster %s: rejected store of %d still evicted %d objects", a.label, r.Stored, len(r.Evicted))
		return
	}
	if _, dup := a.resident[r.Stored]; !dup {
		// Refreshes of already-resident objects do not grow the
		// population; only first stores count.
		a.resident[r.Stored] = struct{}{}
		a.stores++
	}
	for _, gone := range r.Evicted {
		a.chk.assertf(gone != r.Stored, "p2p", "self-evict",
			"cluster %s: store receipt for %d evicts the object being stored", a.label, r.Stored)
		if a.remove(gone, "phantom-evict", "evicted") {
			a.evicts++
		}
	}
}

// RecordLookup feeds a Lookup (or PushFetch) outcome for obj into the
// ledger.  In strict mode the hit/miss answer must match the ledger
// exactly: a hit on an unknown object is a ghost, a miss on a resident
// object means the cluster lost it without a receipt.
func (a *ClusterAccountant) RecordLookup(obj trace.ObjectID, lr p2p.LookupResult) {
	if a == nil {
		return
	}
	_, resident := a.resident[obj]
	if a.strict {
		a.chk.assertf(!lr.Found || resident, "p2p", "ghost-hit",
			"cluster %s: lookup found %d which was never stored", a.label, obj)
		a.chk.assertf(lr.Found || !resident, "p2p", "lost-object",
			"cluster %s: lookup missed %d which the ledger holds", a.label, obj)
	}
	for _, gone := range lr.Displaced {
		if a.remove(gone, "phantom-evict", "displaced") {
			a.evicts++
		}
	}
}

// RecordFailure feeds a FailClient loss report into the ledger.  With
// replication the failed node may have held copies of objects still
// resident elsewhere, so phantom checks only run in strict mode.
func (a *ClusterAccountant) RecordFailure(lostObjs []trace.ObjectID) {
	if a == nil {
		return
	}
	for _, obj := range lostObjs {
		if a.remove(obj, "phantom-loss", "lost") {
			a.lost++
		}
	}
}

// Reconcile checks the conservation law and, in strict mode, the ledger
// against the cluster's ground-truth holdings.
func (a *ClusterAccountant) Reconcile(cl *p2p.Cluster) {
	if a == nil {
		return
	}
	a.chk.assertf(a.stores-a.evicts-a.lost == int64(len(a.resident)), "p2p", "conservation",
		"cluster %s: stores %d − evictions %d − lost %d != %d resident objects",
		a.label, a.stores, a.evicts, a.lost, len(a.resident))
	if !a.strict || cl == nil {
		return
	}
	a.chk.assertf(cl.TotalCached() == len(a.resident), "p2p", "population",
		"cluster %s: cluster holds %d objects, ledger holds %d", a.label, cl.TotalCached(), len(a.resident))
	for obj := range a.resident {
		a.chk.assertf(cl.Contains(obj), "p2p", "resident-missing",
			"cluster %s: ledger holds %d but no client cache does", a.label, obj)
	}
}

// Resident returns the ledger's resident objects (test helper).
func (a *ClusterAccountant) Resident() []trace.ObjectID {
	if a == nil {
		return nil
	}
	out := make([]trace.ObjectID, 0, len(a.resident))
	for obj := range a.resident {
		out = append(out, obj)
	}
	return out
}
