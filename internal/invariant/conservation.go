package invariant

import (
	"webcache/internal/p2p"
	"webcache/internal/trace"
)

// ClusterAccountant is the P2P conservation oracle.  It watches the
// receipt stream a proxy sees from its client cluster — store receipts,
// eviction notices, lookup displacements, failure loss reports — and
// maintains its own resident-set ledger.  The conservation law it
// enforces is the one the proxy's directory consistency (§4.3) rests
// on:
//
//	stores − evictions − lost-on-failure == resident objects
//
// Reconcile compares the ledger against the cluster's ground truth.
//
// Two events are not covered by receipts and force lenient mode, where
// only the ledger-internal identity is checked: JoinClient handoffs may
// silently drop objects, and hot-object replication adds copies without
// receipts.  Callers flag those via Lenient (the simulator does this
// when ReplaceFailed or ReplicateHotAfter is configured).
type ClusterAccountant struct {
	chk   *Checker
	label string

	resident map[trace.ObjectID]struct{}
	stores   int64
	evicts   int64
	lost     int64

	// Replica ledger (fleet k-way replication).  copies counts the
	// extra copies of each object beyond the one `resident` tracks;
	// replicas is the running total of replica placements.  With
	// replicas the conservation law generalizes to
	//
	//	stores + replicas − evictions − lost == total copies
	//
	// where total copies = len(resident) + Σ copies.
	copies   map[trace.ObjectID]int64
	replicas int64

	strict bool
}

// NewClusterAccountant creates an accountant recording into chk.  With
// a nil Checker it returns nil, and every method on a nil accountant is
// a no-op, so call sites stay unconditional.
func NewClusterAccountant(chk *Checker, label string) *ClusterAccountant {
	if chk == nil {
		return nil
	}
	return &ClusterAccountant{
		chk:      chk,
		label:    label,
		resident: make(map[trace.ObjectID]struct{}),
		copies:   make(map[trace.ObjectID]int64),
		strict:   true,
	}
}

// Lenient downgrades the oracle to ledger-identity checks only; see the
// type comment for when receipts stop covering every population change.
func (a *ClusterAccountant) Lenient() {
	if a == nil {
		return
	}
	a.strict = false
}

// Strict reports whether ground-truth reconciliation is still on.
func (a *ClusterAccountant) Strict() bool { return a != nil && a.strict }

// remove takes one copy of obj off the ledger — a surplus replica
// copy first, the primary residency last — asserting (in strict mode)
// that the cluster is not reporting the removal of an object it never
// stored.
func (a *ClusterAccountant) remove(obj trace.ObjectID, rule, how string) bool {
	if a.copies[obj] > 0 {
		a.copies[obj]--
		if a.copies[obj] == 0 {
			delete(a.copies, obj)
		}
		return true
	}
	_, ok := a.resident[obj]
	if a.strict {
		a.chk.assertf(ok, "p2p", rule,
			"cluster %s: %s object %d which the ledger does not hold", a.label, how, obj)
	}
	delete(a.resident, obj)
	return ok
}

// RecordStore feeds a StoreEvicted receipt into the ledger.
func (a *ClusterAccountant) RecordStore(r p2p.Receipt) {
	if a == nil {
		return
	}
	if !r.StoredOK {
		// A rejected store (object larger than a client cache, or the
		// cluster fully failed) must not displace anything.
		a.chk.assertf(len(r.Evicted) == 0, "p2p", "reject-evicts",
			"cluster %s: rejected store of %d still evicted %d objects", a.label, r.Stored, len(r.Evicted))
		return
	}
	if _, dup := a.resident[r.Stored]; !dup {
		// Refreshes of already-resident objects do not grow the
		// population; only first stores count.
		a.resident[r.Stored] = struct{}{}
		a.stores++
	}
	for _, gone := range r.Evicted {
		a.chk.assertf(gone != r.Stored, "p2p", "self-evict",
			"cluster %s: store receipt for %d evicts the object being stored", a.label, r.Stored)
		if a.remove(gone, "phantom-evict", "evicted") {
			a.evicts++
		}
	}
}

// RecordReplica feeds a k-way replica placement into the ledger: one
// extra copy of obj now exists somewhere in the fleet, displacing the
// receipted evictions.  In strict mode the object must already be on
// the ledger — a replica of an object never stored is a ghost copy.
func (a *ClusterAccountant) RecordReplica(obj trace.ObjectID, evicted []trace.ObjectID) {
	if a == nil {
		return
	}
	if a.strict {
		_, resident := a.resident[obj]
		a.chk.assertf(resident || a.copies[obj] > 0, "p2p", "ghost-replica",
			"cluster %s: replica of %d which the ledger does not hold", a.label, obj)
	}
	a.copies[obj]++
	a.replicas++
	for _, gone := range evicted {
		if a.remove(gone, "phantom-evict", "replica-evicted") {
			a.evicts++
		}
	}
}

// RecordLookup feeds a Lookup (or PushFetch) outcome for obj into the
// ledger.  In strict mode the hit/miss answer must match the ledger
// exactly: a hit on an unknown object is a ghost, a miss on a resident
// object means the cluster lost it without a receipt.
func (a *ClusterAccountant) RecordLookup(obj trace.ObjectID, lr p2p.LookupResult) {
	if a == nil {
		return
	}
	_, resident := a.resident[obj]
	if a.strict {
		a.chk.assertf(!lr.Found || resident, "p2p", "ghost-hit",
			"cluster %s: lookup found %d which was never stored", a.label, obj)
		a.chk.assertf(lr.Found || !resident, "p2p", "lost-object",
			"cluster %s: lookup missed %d which the ledger holds", a.label, obj)
	}
	for _, gone := range lr.Displaced {
		if a.remove(gone, "phantom-evict", "displaced") {
			a.evicts++
		}
	}
}

// RecordFailure feeds a FailClient loss report into the ledger.  With
// replication the failed node may have held copies of objects still
// resident elsewhere, so phantom checks only run in strict mode.
func (a *ClusterAccountant) RecordFailure(lostObjs []trace.ObjectID) {
	if a == nil {
		return
	}
	for _, obj := range lostObjs {
		if a.remove(obj, "phantom-loss", "lost") {
			a.lost++
		}
	}
}

// Reconcile checks the conservation law and, in strict mode, the ledger
// against the cluster's ground-truth holdings.
func (a *ClusterAccountant) Reconcile(cl *p2p.Cluster) {
	if a == nil {
		return
	}
	a.chk.assertf(a.stores+a.replicas-a.evicts-a.lost == a.totalCopies(), "p2p", "conservation",
		"cluster %s: stores %d + replicas %d − evictions %d − lost %d != %d total copies",
		a.label, a.stores, a.replicas, a.evicts, a.lost, a.totalCopies())
	if !a.strict || cl == nil {
		return
	}
	a.chk.assertf(cl.TotalCached() == len(a.resident), "p2p", "population",
		"cluster %s: cluster holds %d objects, ledger holds %d", a.label, cl.TotalCached(), len(a.resident))
	for obj := range a.resident {
		a.chk.assertf(cl.Contains(obj), "p2p", "resident-missing",
			"cluster %s: ledger holds %d but no client cache does", a.label, obj)
	}
}

// totalCopies is the ledger's copy population: one per resident
// object plus the surplus replica copies.
func (a *ClusterAccountant) totalCopies() int64 {
	n := int64(len(a.resident))
	for _, c := range a.copies {
		n += c
	}
	return n
}

// ReconcileCopies checks the replica ledger against ground truth: a
// map from object to the number of copies actually resident across
// the fleet's caches.  Runs the conservation identity first, then (in
// strict mode) the per-object copy counts both ways.  This is the
// replica-aware analogue of Reconcile's population check — used by
// consumers whose ground truth is a fleet of caches rather than one
// p2p.Cluster.
func (a *ClusterAccountant) ReconcileCopies(ground map[trace.ObjectID]int64) {
	if a == nil {
		return
	}
	a.Reconcile(nil)
	if !a.strict {
		return
	}
	for obj, want := range ground {
		have := a.copies[obj]
		if _, ok := a.resident[obj]; ok {
			have++
		}
		a.chk.assertf(have == want, "p2p", "replica-count",
			"cluster %s: object %d has %d copies resident, ledger says %d", a.label, obj, want, have)
	}
	for obj := range a.resident {
		_, ok := ground[obj]
		a.chk.assertf(ok, "p2p", "resident-missing",
			"cluster %s: ledger holds %d but no cache does", a.label, obj)
	}
	for obj := range a.copies {
		_, ok := ground[obj]
		a.chk.assertf(ok, "p2p", "resident-missing",
			"cluster %s: ledger holds replica copies of %d but no cache does", a.label, obj)
	}
}

// Resident returns the ledger's resident objects (test helper).
func (a *ClusterAccountant) Resident() []trace.ObjectID {
	if a == nil {
		return nil
	}
	out := make([]trace.ObjectID, 0, len(a.resident))
	for obj := range a.resident {
		out = append(out, obj)
	}
	return out
}
