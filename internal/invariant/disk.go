package invariant

// Memory-index ↔ disk-log agreement for the persistent tier
// (internal/store/disk): the disk store serves Gets from an in-memory
// index rebuilt at boot from the journal, so the index, the journal,
// and the policy accounting must never drift.  The store snapshots its
// index under lock and independently replays its journal from disk;
// this check compares the two and validates every surviving entry
// against the segment extents.

// DiskEntry is one indexed object's location, as seen by either the
// in-memory index or an independent journal replay.
type DiskEntry struct {
	Key  uint64
	Seg  uint32
	Off  uint64
	RLen uint32
	Size uint32
}

// DiskSegment is one log segment's identity and valid extent.
type DiskSegment struct {
	ID   uint32
	Size int64
}

// CheckDiskAgreement verifies the persistent tier's crash-consistency
// invariant:
//
//   - the in-memory index and an independent journal replay agree on
//     the exact live set (same keys, same segment/offset/length for
//     each);
//   - every indexed record lies within an existing segment's valid
//     extent (off+rlen ≤ segment size);
//   - the policy's byte accounting reconciles with the index
//     (Σ Size == policyUsed ≤ capacity).
//
// label distinguishes multiple stores in violation details.
func (c *Checker) CheckDiskAgreement(label string, mem, journal []DiskEntry, segs []DiskSegment, policyUsed, capacity uint64) {
	if c == nil {
		return
	}
	segSize := make(map[uint32]int64, len(segs))
	for _, s := range segs {
		segSize[s.ID] = s.Size
	}
	jnl := make(map[uint64]DiskEntry, len(journal))
	for _, e := range journal {
		jnl[e.Key] = e
	}
	c.assertf(len(mem) == len(jnl), "disk", "index-journal-cardinality",
		"%s: index holds %d objects, journal replay %d", label, len(mem), len(jnl))
	var sumSize uint64
	for _, e := range mem {
		sumSize += uint64(e.Size)
		je, ok := jnl[e.Key]
		if !c.assertf(ok, "disk", "index-journal-key",
			"%s: key %016x indexed but absent from journal replay", label, e.Key) {
			continue
		}
		c.assertf(je == e, "disk", "index-journal-location",
			"%s: key %016x index %+v disagrees with journal %+v", label, e.Key, e, je)
		size, ok := segSize[e.Seg]
		if c.assertf(ok, "disk", "segment-exists",
			"%s: key %016x points at missing segment %d", label, e.Key, e.Seg) {
			c.assertf(e.Off+uint64(e.RLen) <= uint64(size), "disk", "segment-extent",
				"%s: key %016x record [%d,%d) exceeds segment %d size %d",
				label, e.Key, e.Off, e.Off+uint64(e.RLen), e.Seg, size)
		}
	}
	c.assertf(sumSize == policyUsed, "disk", "used-sum",
		"%s: indexed sizes sum to %d, policy accounts %d", label, sumSize, policyUsed)
	c.assertf(policyUsed <= capacity, "disk", "capacity",
		"%s: policy used %d exceeds capacity %d", label, policyUsed, capacity)
}
