package invariant

import (
	"fmt"
	"testing"

	"webcache/internal/cache"
	"webcache/internal/pastry"
	"webcache/internal/trace"
)

// FuzzCheckedPolicy replays an op script against every replacement
// policy wrapped in CheckedPolicy and fails on any recorded violation:
// the fuzzer searches for an operation interleaving under which a
// policy's accounting (used-sum, heap/map agreement, inflation
// monotonicity) goes wrong.  Object ids are folded into a small space
// and sizes kept near the capacity so eviction, rejection (Size==0,
// oversized) and re-admission paths all fire.
func FuzzCheckedPolicy(f *testing.F) {
	f.Add([]byte{0, 1, 4, 0, 2, 4, 0, 3, 4, 1, 1, 0, 0, 1, 4, 2, 2, 0, 3, 3, 0})
	f.Add([]byte{0, 5, 0, 0, 5, 9, 0, 6, 8, 0, 7, 8, 1, 6, 0, 0, 8, 8})
	f.Fuzz(func(t *testing.T, script []byte) {
		policies := map[string]func() cache.Policy{
			"lru":         func() cache.Policy { return cache.NewLRU(32) },
			"lfu":         func() cache.Policy { return cache.NewLFU(32) },
			"greedy-dual": func() cache.Policy { return cache.NewGreedyDual(32) },
			"gdsf":        func() cache.Policy { return cache.NewGDSF(32) },
		}
		for name, mk := range policies {
			chk := New(nil)
			p := WrapPolicy(mk(), chk, "fuzz")
			for i := 0; i+2 < len(script); i += 3 {
				op, kb, sb := script[i], script[i+1], script[i+2]
				obj := trace.ObjectID(kb % 48)
				switch op % 4 {
				case 0:
					if !p.Access(obj) {
						p.Add(cache.Entry{
							Obj:  obj,
							Size: uint32(sb % 9), // 0 exercises graceful rejection
							Cost: float64(sb%5) + 0.5,
						})
					}
				case 1:
					p.Remove(obj)
				case 2:
					p.Access(obj)
				case 3:
					p.Peek(obj)
					p.Contains(obj)
					_ = p.Used()
					_ = p.Len()
				}
			}
			if err := chk.Err(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(script) >= 3 && chk.Checks() == 0 {
				t.Fatalf("%s: wrapper ran no checks", name)
			}
		}
	})
}

// FuzzRingChurn replays a join/fail/leave script against a Pastry
// overlay, stabilizes, and requires CheckRing to find a fully
// consistent ring: correct leaf sets, leaf-set symmetry, and
// route-vs-owner agreement.  This searches for churn orderings the
// repair protocols mishandle.
func FuzzRingChurn(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 2, 0, 0, 3, 3, 1, 0, 4, 2, 5})
	f.Add([]byte{2, 0, 2, 1, 2, 2, 2, 3, 0, 9, 0, 8, 3, 0, 3, 1})
	f.Fuzz(func(t *testing.T, script []byte) {
		ov, err := pastry.New(pastry.Config{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ov.JoinN(4, "fuzz-boot"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(script); i += 2 {
			op, pick := script[i], script[i+1]
			switch op % 4 {
			case 0, 1:
				// Bias toward joins so rings grow, but cap the size to
				// keep stabilization cheap under long fuzz inputs.
				if ov.Len() < 128 {
					id := pastry.HashString(fmt.Sprintf("fuzz/%d/%d", i, pick))
					_ = ov.Join(id) // duplicate ids are legal to reject
				}
			case 2:
				if ids := ov.IDs(); len(ids) > 1 {
					ov.Fail(ids[int(pick)%len(ids)])
				}
			case 3:
				if ids := ov.IDs(); len(ids) > 1 {
					ov.Leave(ids[int(pick)%len(ids)])
				}
			}
		}
		ov.Stabilize()
		chk := New(nil)
		CheckRing(chk, ov, 16)
		if err := chk.Err(); err != nil {
			t.Fatal(err)
		}
	})
}
