package invariant

import (
	"testing"

	"webcache/internal/cache"
	"webcache/internal/p2p"
	"webcache/internal/trace"
)

func newTestCluster(t *testing.T, clients int) *p2p.Cluster {
	t.Helper()
	cl, err := p2p.NewCluster(p2p.Config{
		NumClients:        clients,
		PerClientCapacity: 16,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// driveCluster stores objs into cl through the accountant, exactly as
// the Hier-GD engine does with its pass-down receipts.
func driveCluster(t *testing.T, cl *p2p.Cluster, acct *ClusterAccountant, objs int) {
	t.Helper()
	for i := 0; i < objs; i++ {
		e := cache.Entry{Obj: trace.ObjectID(i), Size: uint32(1 + i%5), Cost: 1}
		r, err := cl.StoreEvicted(e, i%cl.NumClients(), true)
		if err != nil {
			t.Fatal(err)
		}
		acct.RecordStore(r)
	}
}

func TestClusterAccountantCleanRun(t *testing.T) {
	chk := New(nil)
	cl := newTestCluster(t, 8)
	acct := NewClusterAccountant(chk, "test")

	driveCluster(t, cl, acct, 200)
	for i := 0; i < 300; i++ {
		obj := trace.ObjectID(i % 250)
		lr, err := cl.Lookup(obj, i%8)
		if err != nil {
			t.Fatal(err)
		}
		acct.RecordLookup(obj, lr)
	}
	acct.Reconcile(cl)
	if err := chk.Err(); err != nil {
		t.Fatalf("violations on a correct cluster: %v", err)
	}
	if chk.Checks() == 0 {
		t.Fatal("no checks ran")
	}
}

func TestClusterAccountantFailureAccounting(t *testing.T) {
	chk := New(nil)
	cl := newTestCluster(t, 8)
	acct := NewClusterAccountant(chk, "test")

	driveCluster(t, cl, acct, 120)
	lost, err := cl.FailClient(3)
	if err != nil {
		t.Fatal(err)
	}
	acct.RecordFailure(lost)
	acct.Reconcile(cl)
	if err := chk.Err(); err != nil {
		t.Fatalf("violations after an accounted failure: %v", err)
	}
}

func TestClusterAccountantCatchesUnreportedLoss(t *testing.T) {
	chk := New(nil)
	cl := newTestCluster(t, 8)
	acct := NewClusterAccountant(chk, "test")

	driveCluster(t, cl, acct, 120)
	// Fail a client but swallow the loss report: the ledger now holds
	// objects the cluster lost, which Reconcile must notice.
	if _, err := cl.FailClient(3); err != nil {
		t.Fatal(err)
	}
	acct.Reconcile(cl)
	if chk.ViolationCount() == 0 {
		t.Fatal("unreported object loss went unnoticed")
	}
	seen := map[string]bool{}
	for _, v := range chk.Violations() {
		seen[v.Rule] = true
	}
	if !seen["population"] && !seen["resident-missing"] {
		t.Fatalf("expected population/resident-missing violations, got %v", chk.Violations())
	}
}

func TestClusterAccountantLenientSkipsGroundTruth(t *testing.T) {
	chk := New(nil)
	cl := newTestCluster(t, 8)
	acct := NewClusterAccountant(chk, "test")
	acct.Lenient()

	driveCluster(t, cl, acct, 120)
	// Unreported loss is tolerated in lenient mode…
	if _, err := cl.FailClient(3); err != nil {
		t.Fatal(err)
	}
	acct.Reconcile(cl)
	if err := chk.Err(); err != nil {
		t.Fatalf("lenient mode still checked ground truth: %v", err)
	}
	// …but the ledger identity is not: corrupt a counter and reconcile.
	acct.stores += 3
	acct.Reconcile(cl)
	if chk.ViolationCount() == 0 {
		t.Fatal("broken conservation identity went unnoticed in lenient mode")
	}
}

func TestClusterAccountantGhostHit(t *testing.T) {
	chk := New(nil)
	cl := newTestCluster(t, 4)
	acct := NewClusterAccountant(chk, "test")

	// Store directly, bypassing the accountant: a later hit is a ghost.
	e := cache.Entry{Obj: 5, Size: 2, Cost: 1}
	if _, err := cl.StoreEvicted(e, 0, true); err != nil {
		t.Fatal(err)
	}
	lr, err := cl.Lookup(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Found {
		t.Fatal("setup: object not found")
	}
	acct.RecordLookup(5, lr)
	seen := false
	for _, v := range chk.Violations() {
		if v.Rule == "ghost-hit" {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("expected a ghost-hit violation, got %v", chk.Violations())
	}
}

func TestClusterAccountantReplicaConservation(t *testing.T) {
	// The replica-aware identity: stores + replicas − evicts − lost ==
	// total copies, with evictions draining surplus copies before the
	// primary residency.
	chk := New(nil)
	acct := NewClusterAccountant(chk, "fleet")
	store := func(obj trace.ObjectID) {
		acct.RecordStore(p2p.Receipt{Stored: obj, StoredOK: true})
	}
	store(1)
	store(2)
	acct.RecordReplica(1, nil)
	acct.RecordReplica(1, nil)
	acct.RecordReplica(2, []trace.ObjectID{1}) // replica of 2 displaces a copy of 1
	acct.ReconcileCopies(map[trace.ObjectID]int64{1: 2, 2: 2})
	if err := chk.Err(); err != nil {
		t.Fatalf("violations on a correct replica run: %v", err)
	}
	// Evicting 1 twice drains its last surplus copy then the primary.
	acct.RecordLookup(1, p2p.LookupResult{Found: true, Displaced: []trace.ObjectID{1}})
	acct.RecordLookup(1, p2p.LookupResult{Found: true, Displaced: []trace.ObjectID{1}})
	acct.ReconcileCopies(map[trace.ObjectID]int64{2: 2})
	if err := chk.Err(); err != nil {
		t.Fatalf("violations after replica drain: %v", err)
	}
}

func TestClusterAccountantReplicaViolations(t *testing.T) {
	// A replica of an object never stored is a ghost copy.
	chk := New(nil)
	acct := NewClusterAccountant(chk, "fleet")
	acct.RecordReplica(99, nil)
	if chk.ViolationCount() == 0 {
		t.Fatal("ghost replica went unnoticed")
	}

	// A ground-truth copy count that disagrees with the ledger trips
	// replica-count.
	chk2 := New(nil)
	acct2 := NewClusterAccountant(chk2, "fleet")
	acct2.RecordStore(p2p.Receipt{Stored: 5, StoredOK: true})
	acct2.RecordReplica(5, nil)
	acct2.ReconcileCopies(map[trace.ObjectID]int64{5: 3})
	if chk2.ViolationCount() == 0 {
		t.Fatal("copy-count mismatch went unnoticed")
	}
}
