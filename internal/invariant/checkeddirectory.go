package invariant

import (
	"webcache/internal/directory"
	"webcache/internal/trace"
)

// CheckedDirectory wraps a lookup directory with a shadow set of every
// object the proxy told it about, and enforces the §4.2 contract:
//
//   - no false negatives, ever: an object recorded via Add (and not
//     Removed) must satisfy MayContain — for the Bloom directory this
//     is the guarantee that makes a directory miss authoritative;
//   - the Exact-Directory is exact: MayContain answers true iff the
//     object is recorded (no false positives either);
//   - Len() tracks the net adds.
//
// It implements directory.Directory and is transparent to callers.
type CheckedDirectory struct {
	inner directory.Directory
	chk   *Checker
	label string

	shadow map[trace.ObjectID]struct{}
	// exact marks directories that promise zero false positives.
	exact bool
}

// WrapDirectory wraps d with invariant checking.  With a nil Checker
// it returns d unchanged.
func WrapDirectory(d directory.Directory, chk *Checker, label string) directory.Directory {
	if chk == nil {
		return d
	}
	_, exact := d.(*directory.Exact)
	return &CheckedDirectory{
		inner:  d,
		chk:    chk,
		label:  label,
		shadow: make(map[trace.ObjectID]struct{}),
		exact:  exact,
	}
}

// Unwrap returns the wrapped directory.
func (w *CheckedDirectory) Unwrap() directory.Directory { return w.inner }

// Name implements directory.Directory.
func (w *CheckedDirectory) Name() string { return w.inner.Name() }

// Add implements directory.Directory.
func (w *CheckedDirectory) Add(obj trace.ObjectID) {
	w.inner.Add(obj)
	w.shadow[obj] = struct{}{}
	w.chk.assertf(w.inner.MayContain(obj), "directory", "no-false-negative",
		"%s(%s): object %d invisible immediately after Add", w.inner.Name(), w.label, obj)
	w.lenAgree()
}

// Remove implements directory.Directory.
func (w *CheckedDirectory) Remove(obj trace.ObjectID) {
	w.inner.Remove(obj)
	delete(w.shadow, obj)
	if w.exact {
		w.chk.assertf(!w.inner.MayContain(obj), "directory", "exact-remove",
			"%s(%s): object %d still visible after Remove", w.inner.Name(), w.label, obj)
	}
	w.lenAgree()
}

// MayContain implements directory.Directory.
func (w *CheckedDirectory) MayContain(obj trace.ObjectID) bool {
	got := w.inner.MayContain(obj)
	_, recorded := w.shadow[obj]
	if recorded {
		w.chk.assertf(got, "directory", "no-false-negative",
			"%s(%s): recorded object %d reported absent", w.inner.Name(), w.label, obj)
	} else if w.exact {
		w.chk.assertf(!got, "directory", "exact-positive",
			"%s(%s): unrecorded object %d reported present", w.inner.Name(), w.label, obj)
	}
	return got
}

// lenAgree asserts Len tracks the net adds.
func (w *CheckedDirectory) lenAgree() {
	w.chk.assertf(w.inner.Len() == len(w.shadow), "directory", "len-agree",
		"%s(%s): Len()=%d but %d objects recorded", w.inner.Name(), w.label, w.inner.Len(), len(w.shadow))
}

// Len implements directory.Directory.
func (w *CheckedDirectory) Len() int { return w.inner.Len() }

// MemoryBytes implements directory.Directory.
func (w *CheckedDirectory) MemoryBytes() uint64 { return w.inner.MemoryBytes() }

// Objects implements directory.Directory.
func (w *CheckedDirectory) Objects() []trace.ObjectID { return w.inner.Objects() }

// Reset implements directory.Directory.
func (w *CheckedDirectory) Reset() {
	w.inner.Reset()
	w.shadow = make(map[trace.ObjectID]struct{})
	w.lenAgree()
}

var _ directory.Directory = (*CheckedDirectory)(nil)

// ReconcileDirectory checks a directory against the ground-truth
// holdings of the cluster it indexes: every directory entry must name
// a resident object (Exact must be exact up to in-flight churn the
// caller already repaired) and every resident object the proxy was
// told about must be visible.  contains reports ground-truth
// residency; resident enumerates it.
func ReconcileDirectory(chk *Checker, label string, dir directory.Directory,
	contains func(trace.ObjectID) bool, resident []trace.ObjectID) {
	if chk == nil {
		return
	}
	for _, obj := range dir.Objects() {
		chk.assertf(contains(obj), "directory", "stale-entry",
			"%s(%s): directory lists %d which the cluster does not hold", dir.Name(), label, obj)
	}
	for _, obj := range resident {
		chk.assertf(dir.MayContain(obj), "directory", "no-false-negative",
			"%s(%s): cluster holds %d but the directory denies it", dir.Name(), label, obj)
	}
}
