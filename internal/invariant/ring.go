package invariant

import (
	"fmt"

	"webcache/internal/pastry"
)

// CheckRing verifies a stable Pastry overlay against its ground truth:
//
//   - structural consistency: every leaf-set and routing-table entry
//     is live, leaf sets hold the l/2 closest ring neighbours per side,
//     table entries sit in the right (row, column) — delegated to the
//     overlay's own CheckConsistency and folded in under "ring";
//   - leaf-set symmetry: when m sits in n's leaf set and m is within
//     l/2 ring positions of n, then n must sit in m's leaf set (the
//     keep-alive relation is mutual);
//   - routing correctness: RouteFrom from sampled start nodes lands on
//     the ground-truth Owner of sampled keys.
//
// Call it only when the ring is stable (after Stabilize, or when no
// churn is in flight): mid-churn lazy repair legitimately leaves holes.
// sampleKeys bounds the routed probes; routing telemetry on the
// overlay is perturbed by them.
func CheckRing(chk *Checker, ov *pastry.Overlay, sampleKeys int) {
	if chk == nil || ov == nil {
		return
	}
	ids := ov.IDs()
	n := len(ids)
	if !chk.assertf(n > 0, "ring", "non-empty", "overlay has no live nodes") {
		return
	}

	// Structural invariants via the overlay's own checker.
	chk.observe(int64(n))
	for _, v := range ov.CheckConsistency() {
		chk.violatef("ring", "consistency", "node %v: %s", v.Node, v.Detail)
	}

	// Leaf-set symmetry.
	index := make(map[pastry.ID]int, n)
	for i, id := range ids {
		index[id] = i
	}
	half := ov.LeafSetSize() / 2
	for i, id := range ids {
		node, ok := ov.Node(id)
		if !chk.assertf(ok, "ring", "node-missing", "id %v listed but Node() denies it", id) {
			continue
		}
		for _, m := range node.LeafSet().Members() {
			j, live := index[m]
			if !chk.assertf(live, "ring", "leaf-live", "node %v leaf %v is not a live node", id, m) {
				continue
			}
			if d := ringDist(i, j, n); d <= half {
				peer, _ := ov.Node(m)
				chk.assertf(peer != nil && peer.LeafSet().Contains(id), "ring", "leaf-symmetry",
					"node %v holds near neighbour %v (distance %d) but not vice versa", id, m, d)
			}
		}
	}

	// Route == Owner on sampled keys from round-robin start nodes.
	for k := 0; k < sampleKeys; k++ {
		key := pastry.HashString(fmt.Sprintf("invariant/ring/%d", k))
		start := ids[k%n]
		dest, _, err := ov.RouteFrom(start, key)
		if !chk.assertf(err == nil, "ring", "route-error", "RouteFrom(%v, %v): %v", start, key, err) {
			continue
		}
		owner, _ := ov.Owner(key)
		chk.assertf(dest == owner, "ring", "route-owner",
			"key %v routed from %v to %v but the ground-truth owner is %v", key, start, dest, owner)
	}
}

// ringDist is the distance in ring positions between sorted indices i
// and j on a ring of n nodes.
func ringDist(i, j, n int) int {
	d := i - j
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}
