package invariant

import (
	"fmt"
	"testing"

	"webcache/internal/pastry"
)

func buildOverlay(t *testing.T, n int) *pastry.Overlay {
	t.Helper()
	ov, err := pastry.New(pastry.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ov.JoinN(n, "invariant-test"); err != nil {
		t.Fatal(err)
	}
	return ov
}

func TestCheckRingCleanOnStableOverlay(t *testing.T) {
	for _, n := range []int{1, 2, 8, 32} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			ov := buildOverlay(t, n)
			ov.Stabilize()
			chk := New(nil)
			CheckRing(chk, ov, 20)
			if err := chk.Err(); err != nil {
				t.Fatalf("violations on a stable %d-node ring: %v", n, err)
			}
			if chk.Checks() == 0 {
				t.Fatal("no checks ran")
			}
		})
	}
}

func TestCheckRingCleanAfterChurnAndStabilize(t *testing.T) {
	ov := buildOverlay(t, 24)
	ids := append([]pastry.ID(nil), ov.IDs()...)
	ov.Fail(ids[3])
	ov.Fail(ids[11])
	ov.Leave(ids[17])
	if _, err := ov.JoinN(2, "invariant-test-late"); err != nil {
		t.Fatal(err)
	}
	ov.Stabilize()
	chk := New(nil)
	CheckRing(chk, ov, 20)
	if err := chk.Err(); err != nil {
		t.Fatalf("violations after churn + Stabilize: %v", err)
	}
}

func TestCheckRingEmptyOverlay(t *testing.T) {
	ov, err := pastry.New(pastry.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	chk := New(nil)
	CheckRing(chk, ov, 4)
	if chk.ViolationCount() != 1 {
		t.Fatalf("empty overlay should record exactly the non-empty violation, got %v", chk.Violations())
	}
}

func TestRingDist(t *testing.T) {
	cases := []struct{ i, j, n, want int }{
		{0, 0, 8, 0},
		{0, 1, 8, 1},
		{0, 7, 8, 1},
		{2, 6, 8, 4},
		{1, 6, 8, 3},
	}
	for _, c := range cases {
		if got := ringDist(c.i, c.j, c.n); got != c.want {
			t.Errorf("ringDist(%d,%d,%d) = %d, want %d", c.i, c.j, c.n, got, c.want)
		}
	}
}
