// Package invariant is the simulator's shadow-oracle and
// invariant-enforcement subsystem.  Every stateful layer of the system
// — replacement policies, lookup directories, the Pastry ring, the P2P
// client clusters — can be wrapped in a checked variant that replays
// each operation against an independent shadow model and reports any
// disagreement as a Violation.
//
// The paper's entire evaluation is latency and memory *accounting*
// (hit ratios, latency gain over NC, directory memory, §4.2), so an
// accounting bug silently falsifies every reproduced figure.  The
// oracles here enforce:
//
//   - cache accounting: Used() == Σ entry sizes ≤ Capacity(), heap and
//     entry-map agreement, greedy-dual inflation monotonicity, finite
//     H values (CheckedPolicy);
//   - directory correctness: Exact-Directory is exact, the Bloom
//     directory has no false negatives — the §4.2 guarantee
//     (CheckedDirectory);
//   - ring correctness: RouteFrom lands on the ground-truth Owner and
//     leaf sets match the sorted ring on a stable overlay (CheckRing);
//   - P2P conservation: stores − evictions − lost-on-failure equals
//     the resident population (ClusterAccountant).
//
// Following the internal/obs pattern, a nil *Checker disables
// everything at zero cost: the Wrap* constructors return the unwrapped
// value and every Checker method is a no-op, so production paths stay
// unconditionally instrumented without a tax.  The simulator wires the
// subsystem behind Config.Check / webcachesim -check.
package invariant

import (
	"fmt"
	"strings"
	"sync"

	"webcache/internal/obs"
)

// Violation is one observed invariant breach.
type Violation struct {
	// Layer names the subsystem ("cache", "directory", "ring", "p2p").
	Layer string
	// Rule names the broken invariant within the layer ("used-sum",
	// "no-false-negative", "route-owner", "conservation", ...).
	Rule string
	// Detail describes the concrete disagreement.
	Detail string
}

// String renders "layer/rule: detail".
func (v Violation) String() string {
	return fmt.Sprintf("%s/%s: %s", v.Layer, v.Rule, v.Detail)
}

// maxRecordedViolations bounds the violation list so a systematically
// broken run cannot exhaust memory; the counters keep exact totals.
const maxRecordedViolations = 64

// Checker aggregates invariant checks and their violations.  A nil
// *Checker ignores everything (the disabled state); construct one with
// New to enable checking.  All methods are safe for concurrent use so
// sweep workers may share one Checker.
type Checker struct {
	mu         sync.Mutex
	checks     int64
	violations []Violation
	dropped    int64 // violations beyond maxRecordedViolations

	// Metrics (nil-safe, following obs): check.checks counts assertions
	// evaluated, check.violations counts failures, per-layer counters
	// live under check.violations.<layer>.
	reg *obs.Registry
}

// New creates an enabled Checker.  reg may be nil; when set, the
// checker publishes check.* counters into it (see METRICS.md).
func New(reg *obs.Registry) *Checker {
	return &Checker{reg: reg}
}

// Enabled reports whether checking is on (c != nil).
func (c *Checker) Enabled() bool { return c != nil }

// observe counts n evaluated assertions.
func (c *Checker) observe(n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.checks += n
	c.mu.Unlock()
	if c.reg != nil {
		c.reg.Counter("check.checks").Add(n)
	}
}

// violatef records a violation.
func (c *Checker) violatef(layer, rule, format string, args ...any) {
	if c == nil {
		return
	}
	v := Violation{Layer: layer, Rule: rule, Detail: fmt.Sprintf(format, args...)}
	c.mu.Lock()
	if len(c.violations) < maxRecordedViolations {
		c.violations = append(c.violations, v)
	} else {
		c.dropped++
	}
	c.mu.Unlock()
	if c.reg != nil {
		c.reg.Counter("check.violations").Inc()
		c.reg.Counter("check.violations." + layer).Inc()
	}
}

// assertf evaluates one assertion: cond must hold or a violation is
// recorded.  It returns cond so callers can chain.
func (c *Checker) assertf(cond bool, layer, rule, format string, args ...any) bool {
	if c == nil {
		return cond
	}
	c.observe(1)
	if !cond {
		c.violatef(layer, rule, format, args...)
	}
	return cond
}

// Checks returns the number of assertions evaluated (0 when disabled).
func (c *Checker) Checks() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checks
}

// ViolationCount returns the total number of violations observed,
// including any beyond the recorded cap.
func (c *Checker) ViolationCount() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(len(c.violations)) + c.dropped
}

// Violations snapshots the recorded violations (at most
// maxRecordedViolations; ViolationCount gives the exact total).
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Err returns nil when every check passed, or an error summarizing the
// violations.
func (c *Checker) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.violations) == 0 {
		return nil
	}
	var b strings.Builder
	total := int64(len(c.violations)) + c.dropped
	fmt.Fprintf(&b, "invariant: %d violation(s) in %d checks:", total, c.checks)
	for _, v := range c.violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if c.dropped > 0 {
		fmt.Fprintf(&b, "\n  ... and %d more", c.dropped)
	}
	return fmt.Errorf("%s", b.String())
}
