// Package p2p implements the paper's P2P client cache (§4): the
// cooperative browser-cache partitions of all client machines in a
// client cluster, organized into one logical cache over a Pastry
// overlay.
//
// It provides the four mechanisms the paper designs:
//
//   - DHT store ("pass-down"): objects evicted by the proxy are routed
//     by SHA-1 objectId to the client cache whose cacheId is
//     numerically closest (§4.1), where the local greedy-dual
//     replacement runs (§3);
//   - object diversion: a full destination cache first tries to divert
//     the object to a leaf-set neighbour with free space, keeping a
//     pointer (§4.3, after PAST);
//   - piggybacking: evicted objects ride the HTTP response to the
//     requesting client, which forwards them by Pastry routing,
//     avoiding a dedicated proxy->client connection (§4.4);
//   - push: because client caches sit behind firewalls, a remote fetch
//     is satisfied by asking the destination cache to push the object
//     up to its local proxy (§4.5).
//
// Store receipts flowing back to the proxy keep the proxy's lookup
// directory (package directory) synchronized.
package p2p

import (
	"errors"
	"fmt"
	"math/rand"

	"webcache/internal/cache"
	"webcache/internal/pastry"
	"webcache/internal/trace"
)

// Config sizes a client cluster.
type Config struct {
	// NumClients is the client cluster size (paper default 100).
	NumClients int
	// PerClientCapacity is each client's cooperative-cache capacity in
	// cache units (paper: 0.1% of the infinite cache size).
	PerClientCapacity uint64
	// B and LeafSetSize configure the Pastry overlay (defaults 4, 16).
	B           int
	LeafSetSize int
	// DisableDiversion turns off leaf-set object diversion (§4.3), so
	// a full destination cache always runs local replacement — the
	// ablation that shows what diversion buys.
	DisableDiversion bool
	// ReplicateHotAfter enables PAST-style hot-object replication: a
	// cache that has served the same object this many times since the
	// last replication copies it to a leaf-set member, and lookups
	// round-robin across the copies.  0 (default) disables it — the
	// paper's design has exactly one copy per object.
	ReplicateHotAfter int
	// Seed drives overlay construction.
	Seed int64
	// WrapCache, when non-nil, wraps every client cache as it is
	// created (initial join and churn joins alike).  The invariant
	// subsystem uses it to put shadow-checked policies under the whole
	// cluster; label identifies the client in violation reports.
	WrapCache func(p cache.Policy, label string) cache.Policy
}

// Stats aggregates the cluster's mechanism-level telemetry.
type Stats struct {
	Stores        int // pass-down store operations
	Diversions    int // stores satisfied by leaf-set diversion
	Replacements  int // stores that forced a client-cache eviction
	Evictions     int // objects discarded from client caches
	Lookups       int // P2P lookups from the proxy
	LookupHits    int
	PointerHits   int // hits served through a diversion pointer
	Pushes        int // push operations for cooperating proxies
	Messages      int // total overlay messages (1 per hop + control)
	PiggybackSave int // proxy->client messages avoided by piggybacking
	RouteHops     int // cumulative Pastry routing hops
	Handoffs      int // objects re-homed when nodes join
	LostOnFailure int // objects lost to client-cache failures
	Replications  int // hot-object replicas created (extension)
}

// clientNode is one client's cooperative cache partition.
type clientNode struct {
	id pastry.ID
	// cache is greedy-dual per the paper (§3), possibly wrapped by
	// Config.WrapCache for invariant checking.
	cache cache.Policy
	// pointerTo maps objects this node owns (by DHT) but diverted to a
	// leaf-set neighbour: object -> holder.
	pointerTo map[trace.ObjectID]pastry.ID
	// heldFor maps objects this node physically stores on behalf of
	// another owner: object -> owner.
	heldFor map[trace.ObjectID]pastry.ID
	// served counts lookups this node answered (hotspot metric).
	served int
	// repl holds hot-object replication state (lazily allocated).
	repl *replicaState
}

func newClientNode(id pastry.ID, capacity uint64, wrap func(cache.Policy, string) cache.Policy) *clientNode {
	var p cache.Policy = cache.NewGreedyDual(capacity)
	if wrap != nil {
		p = wrap(p, fmt.Sprintf("client-%v", id))
	}
	return &clientNode{
		id:        id,
		cache:     p,
		pointerTo: make(map[trace.ObjectID]pastry.ID),
		heldFor:   make(map[trace.ObjectID]pastry.ID),
	}
}

// hasFreeSpace reports whether e fits without eviction.
func (n *clientNode) hasFreeSpace(size uint32) bool {
	return n.cache.Used()+uint64(size) <= n.cache.Capacity()
}

// Cluster is the P2P client cache of one proxy's client cluster.
type Cluster struct {
	cfg     Config
	overlay *pastry.Overlay
	nodes   map[pastry.ID]*clientNode
	// clientIDs[i] is client i's overlay id; dead[i] marks failed
	// clients.
	clientIDs []pastry.ID
	dead      []bool
	live      int
	stats     Stats
	// rng drives the fallback start-node choice in startNode so routing
	// load spreads across live clients instead of piling onto the
	// lowest-index one.
	rng *rand.Rand
}

// ErrNoLiveClients reports an operation on a fully failed cluster.
var ErrNoLiveClients = errors.New("p2p: no live client caches")

// NewCluster builds the overlay and joins every client.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.NumClients <= 0 {
		return nil, fmt.Errorf("p2p: cluster needs clients (got %d)", cfg.NumClients)
	}
	if cfg.PerClientCapacity == 0 {
		return nil, errors.New("p2p: per-client capacity must be positive")
	}
	ov, err := pastry.New(pastry.Config{B: cfg.B, LeafSetSize: cfg.LeafSetSize, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	ids, err := ov.JoinN(cfg.NumClients, fmt.Sprintf("client/%d", cfg.Seed))
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:       cfg,
		overlay:   ov,
		nodes:     make(map[pastry.ID]*clientNode, cfg.NumClients),
		clientIDs: ids,
		dead:      make([]bool, cfg.NumClients),
		live:      cfg.NumClients,
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x70737472)), // "pstr"
	}
	for _, id := range ids {
		c.nodes[id] = newClientNode(id, cfg.PerClientCapacity, cfg.WrapCache)
	}
	return c, nil
}

// ObjectKey maps a simulator object id onto the Pastry id space (the
// paper's SHA-1 objectId).
func ObjectKey(obj trace.ObjectID) pastry.ID { return pastry.HashUint64(uint64(obj)) }

// NumClients returns the configured cluster size.
func (c *Cluster) NumClients() int { return c.cfg.NumClients }

// LiveClients returns the number of live client caches.
func (c *Cluster) LiveClients() int { return c.live }

// Capacity returns the cluster's aggregate cooperative capacity.
func (c *Cluster) Capacity() uint64 {
	return uint64(c.live) * c.cfg.PerClientCapacity
}

// Stats returns a snapshot of the mechanism telemetry.
func (c *Cluster) Stats() Stats { return c.stats }

// Overlay exposes the underlying Pastry overlay (read-only use).
func (c *Cluster) Overlay() *pastry.Overlay { return c.overlay }

// startNode picks the overlay node to route from: the requesting
// client if it is alive, otherwise a seeded-random live client (the
// proxy can ask any of its clients to route on its behalf; always
// picking the lowest-index one would make it a routing hotspot).
func (c *Cluster) startNode(fromClient int) (pastry.ID, error) {
	if fromClient >= 0 && fromClient < len(c.clientIDs) && !c.dead[fromClient] {
		return c.clientIDs[fromClient], nil
	}
	if c.live <= 0 {
		return pastry.ID{}, ErrNoLiveClients
	}
	skip := c.rng.Intn(c.live)
	for i, id := range c.clientIDs {
		if c.dead[i] {
			continue
		}
		if skip == 0 {
			return id, nil
		}
		skip--
	}
	return pastry.ID{}, ErrNoLiveClients
}
