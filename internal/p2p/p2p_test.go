package p2p

import (
	"math/rand"
	"testing"
	"testing/quick"

	"webcache/internal/cache"
	"webcache/internal/trace"
)

func testCluster(t testing.TB, clients int, perCap uint64) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		NumClients:        clients,
		PerClientCapacity: perCap,
		Seed:              42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func entry(obj trace.ObjectID) cache.Entry { return cache.Entry{Obj: obj, Size: 1, Cost: 1.0} }

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{NumClients: 0, PerClientCapacity: 1}); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := NewCluster(Config{NumClients: 5, PerClientCapacity: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	c := testCluster(t, 10, 5)
	if c.NumClients() != 10 || c.LiveClients() != 10 {
		t.Errorf("clients = %d/%d", c.NumClients(), c.LiveClients())
	}
	if c.Capacity() != 50 {
		t.Errorf("capacity = %d, want 50", c.Capacity())
	}
}

func TestStoreThenLookup(t *testing.T) {
	c := testCluster(t, 20, 10)
	r, err := c.StoreEvicted(entry(1), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !r.StoredOK || r.Stored != 1 || len(r.Evicted) != 0 {
		t.Fatalf("receipt = %+v", r)
	}
	lr, err := c.Lookup(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Found || lr.Entry.Obj != 1 {
		t.Fatalf("lookup = %+v", lr)
	}
	lr, err = c.Lookup(999, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Found {
		t.Error("found object never stored")
	}
}

func TestStoreDuplicateRefreshes(t *testing.T) {
	c := testCluster(t, 10, 10)
	c.StoreEvicted(entry(1), 0, true)
	before := c.TotalCached()
	r, err := c.StoreEvicted(entry(1), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !r.StoredOK {
		t.Error("duplicate store rejected")
	}
	if c.TotalCached() != before {
		t.Errorf("duplicate store changed population %d -> %d", before, c.TotalCached())
	}
}

func TestStoreOversizeRejected(t *testing.T) {
	c := testCluster(t, 10, 4)
	r, err := c.StoreEvicted(cache.Entry{Obj: 1, Size: 100, Cost: 1}, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.StoredOK {
		t.Error("oversize object stored")
	}
	if c.Contains(1) {
		t.Error("oversize object present")
	}
}

func TestDiversionUsesLeafSpace(t *testing.T) {
	// Tiny per-client capacity so destination caches fill fast; the
	// cluster as a whole must keep absorbing via diversion.
	c := testCluster(t, 30, 2)
	stored := 0
	for obj := trace.ObjectID(0); obj < 50; obj++ {
		r, err := c.StoreEvicted(entry(obj), int(obj)%30, true)
		if err != nil {
			t.Fatal(err)
		}
		if r.StoredOK {
			stored++
		}
	}
	st := c.Stats()
	if st.Diversions == 0 {
		t.Error("no diversions occurred despite full destinations")
	}
	if stored != 50 {
		t.Errorf("stored %d of 50", stored)
	}
	// Aggregate capacity 60 > 50: nothing should have been evicted.
	if st.Evictions != 0 {
		t.Errorf("evictions = %d with free aggregate space", st.Evictions)
	}
	if c.TotalCached() != 50 {
		t.Errorf("population = %d, want 50", c.TotalCached())
	}
}

func TestLookupThroughPointer(t *testing.T) {
	c := testCluster(t, 30, 2)
	var diverted []trace.ObjectID
	for obj := trace.ObjectID(0); obj < 50; obj++ {
		r, _ := c.StoreEvicted(entry(obj), 0, true)
		if r.Diverted {
			diverted = append(diverted, obj)
		}
	}
	if len(diverted) == 0 {
		t.Fatal("no diverted objects to test")
	}
	hitViaPointer := false
	for _, obj := range diverted {
		lr, err := c.Lookup(obj, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !lr.Found {
			t.Fatalf("diverted object %d not found", obj)
		}
		if lr.ViaPointer {
			hitViaPointer = true
		}
	}
	if !hitViaPointer {
		t.Error("no pointer-mediated hit observed")
	}
	if c.Stats().PointerHits == 0 {
		t.Error("stats missed pointer hits")
	}
}

func TestReplacementEvictsAndReports(t *testing.T) {
	c := testCluster(t, 5, 2) // aggregate capacity 10
	var evicted int
	for obj := trace.ObjectID(0); obj < 40; obj++ {
		r, err := c.StoreEvicted(entry(obj), 0, true)
		if err != nil {
			t.Fatal(err)
		}
		evicted += len(r.Evicted)
	}
	if evicted == 0 {
		t.Fatal("no evictions despite 4x oversubscription")
	}
	if used := c.UsedCapacity(); used > c.Capacity() {
		t.Errorf("used %d > capacity %d", used, c.Capacity())
	}
	if c.Stats().Replacements == 0 {
		t.Error("replacement counter zero")
	}
}

func TestPiggybackAccounting(t *testing.T) {
	c := testCluster(t, 10, 5)
	c.StoreEvicted(entry(1), 0, true)
	withPB := c.Stats()
	if withPB.PiggybackSave != 1 {
		t.Errorf("piggyback save = %d, want 1", withPB.PiggybackSave)
	}
	before := c.Stats().Messages
	r, _ := c.StoreEvicted(entry(2), 0, false)
	after := c.Stats().Messages
	// Non-piggybacked store carries the dedicated-transfer message.
	if after-before != r.Messages {
		t.Errorf("message accounting inconsistent: delta %d vs receipt %d", after-before, r.Messages)
	}
	if r.Messages < 2 {
		t.Errorf("dedicated store should cost >= 2 messages, got %d", r.Messages)
	}
}

func TestPushFetch(t *testing.T) {
	c := testCluster(t, 20, 10)
	c.StoreEvicted(entry(7), 0, true)
	before := c.Stats().Messages
	lr, err := c.PushFetch(7)
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Found {
		t.Fatal("push fetch missed stored object")
	}
	if c.Stats().Pushes != 1 {
		t.Errorf("pushes = %d", c.Stats().Pushes)
	}
	if c.Stats().Messages-before < 3 {
		t.Error("push should cost route + push-up + forward messages")
	}
	// Push for an absent object finds nothing and pushes nothing.
	lr, _ = c.PushFetch(1234)
	if lr.Found || c.Stats().Pushes != 1 {
		t.Error("push fetch of absent object misbehaved")
	}
}

func TestFailClientLosesObjects(t *testing.T) {
	c := testCluster(t, 20, 10)
	for obj := trace.ObjectID(0); obj < 100; obj++ {
		c.StoreEvicted(entry(obj), 0, true)
	}
	popBefore := c.TotalCached()
	var lostTotal int
	for i := 0; i < 5; i++ {
		lost, err := c.FailClient(i)
		if err != nil {
			t.Fatal(err)
		}
		lostTotal += len(lost)
		for _, obj := range lost {
			if c.Contains(obj) {
				t.Errorf("lost object %d still present", obj)
			}
		}
	}
	if c.LiveClients() != 15 {
		t.Errorf("live = %d", c.LiveClients())
	}
	if got := c.TotalCached(); got != popBefore-lostTotal {
		t.Errorf("population %d != %d - %d", got, popBefore, lostTotal)
	}
	// Lookups still work for surviving objects.
	found := 0
	for obj := trace.ObjectID(0); obj < 100; obj++ {
		if lr, err := c.Lookup(obj, 10); err == nil && lr.Found {
			found++
		}
	}
	if found == 0 {
		t.Error("no objects survive 25% failures")
	}
	if _, err := c.FailClient(0); err == nil {
		t.Error("double fail succeeded")
	}
	if _, err := c.FailClient(999); err == nil {
		t.Error("out-of-range fail succeeded")
	}
}

func TestStartNodeFallsBackWhenClientDead(t *testing.T) {
	c := testCluster(t, 5, 10)
	c.StoreEvicted(entry(1), 0, true)
	c.FailClient(2)
	// Lookup from the dead client must still route via another node.
	if _, err := c.Lookup(1, 2); err != nil {
		t.Fatalf("lookup from dead client: %v", err)
	}
}

func TestAllClientsDead(t *testing.T) {
	c := testCluster(t, 3, 5)
	for i := 0; i < 3; i++ {
		c.FailClient(i)
	}
	if _, err := c.Lookup(1, 0); err != ErrNoLiveClients {
		t.Errorf("err = %v, want ErrNoLiveClients", err)
	}
	if _, err := c.StoreEvicted(entry(1), 0, true); err != ErrNoLiveClients {
		t.Errorf("store err = %v, want ErrNoLiveClients", err)
	}
}

func TestJoinClientHandoff(t *testing.T) {
	c := testCluster(t, 10, 50)
	for obj := trace.ObjectID(0); obj < 200; obj++ {
		c.StoreEvicted(entry(obj), 0, true)
	}
	popBefore := c.TotalCached()
	idx, err := c.JoinClient()
	if err != nil {
		t.Fatal(err)
	}
	if c.IsDead(idx) || c.LiveClients() != 11 {
		t.Fatalf("join bookkeeping wrong: dead=%v live=%d", c.IsDead(idx), c.LiveClients())
	}
	if got := c.TotalCached(); got > popBefore || got < popBefore-5 {
		t.Errorf("population changed unexpectedly: %d -> %d", popBefore, got)
	}
	// Every stored object must remain findable after the handoff.
	missing := 0
	for obj := trace.ObjectID(0); obj < 200; obj++ {
		if !c.Contains(obj) {
			continue // evicted during join-overflow; acceptable
		}
		lr, err := c.Lookup(obj, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !lr.Found {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d present objects unroutable after join", missing)
	}
}

func TestLookupRefreshesGreedyDual(t *testing.T) {
	// After heavy lookups of one object, it should survive pressure
	// that evicts untouched peers stored at the same node.
	c := testCluster(t, 4, 3)
	for obj := trace.ObjectID(0); obj < 200; obj++ {
		c.StoreEvicted(entry(obj), 0, true)
		if c.Contains(5) {
			c.Lookup(5, 0) // keep 5 hot
		}
	}
	// Not a strict guarantee (5 may never have been stored or may be
	// unlucky), but with refreshes it should be present far more often
	// than not across seeds; assert the mechanism at least ran.
	if c.Stats().LookupHits == 0 {
		t.Skip("object 5 never stored under this seed")
	}
}

// Property: aggregate used capacity never exceeds aggregate capacity,
// and receipts never report an eviction of an object that is still
// reachable.
func TestPropClusterInvariants(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := NewCluster(Config{NumClients: 8, PerClientCapacity: 3, Seed: seed})
		if err != nil {
			return false
		}
		for _, op := range ops {
			obj := trace.ObjectID(rng.Intn(60))
			switch op % 3 {
			case 0, 1:
				r, err := c.StoreEvicted(entry(obj), rng.Intn(8), op%2 == 0)
				if err != nil {
					return false
				}
				for _, ev := range r.Evicted {
					if ev != obj && c.Contains(ev) {
						return false // reported evicted but still present
					}
				}
			case 2:
				if _, err := c.Lookup(obj, rng.Intn(8)); err != nil {
					return false
				}
			}
			if c.UsedCapacity() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: everything successfully stored (and not subsequently
// evicted or lost) is findable by Lookup.
func TestPropStoredImpliesFindable(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		c, err := NewCluster(Config{NumClients: 12, PerClientCapacity: 100, Seed: seed})
		if err != nil {
			return false
		}
		count := int(n)%100 + 1
		for obj := trace.ObjectID(0); obj < trace.ObjectID(count); obj++ {
			r, err := c.StoreEvicted(entry(obj), int(obj)%12, true)
			if err != nil || !r.StoredOK {
				return false
			}
		}
		for obj := trace.ObjectID(0); obj < trace.ObjectID(count); obj++ {
			lr, err := c.Lookup(obj, 0)
			if err != nil || !lr.Found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
