package p2p

import (
	"testing"

	"webcache/internal/trace"
)

// hotspotCluster stores one object and hammers it with lookups.
func hotspotCluster(t *testing.T, replicateAfter int, lookups int) (*Cluster, LoadStats) {
	t.Helper()
	c, err := NewCluster(Config{
		NumClients:        24,
		PerClientCapacity: 10,
		ReplicateHotAfter: replicateAfter,
		Seed:              8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StoreEvicted(entry(7), 0, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < lookups; i++ {
		lr, err := c.Lookup(7, i%24)
		if err != nil {
			t.Fatal(err)
		}
		if !lr.Found {
			t.Fatal("hot object lost")
		}
	}
	return c, c.LoadBalance()
}

func TestHotReplicationSpreadsLoad(t *testing.T) {
	const lookups = 600
	_, without := hotspotCluster(t, 0, lookups)
	cWith, with := hotspotCluster(t, 50, lookups)
	if without.MaxServes != lookups {
		t.Fatalf("without replication one node should serve all %d, got %d", lookups, without.MaxServes)
	}
	if cWith.Stats().Replications == 0 {
		t.Fatal("no replicas created")
	}
	if with.MaxServes >= without.MaxServes/2 {
		t.Errorf("replication barely helped: max load %d vs %d", with.MaxServes, without.MaxServes)
	}
	if with.TotalServes != lookups {
		t.Errorf("serves lost: %d vs %d", with.TotalServes, lookups)
	}
}

func TestReplicationOffByDefault(t *testing.T) {
	c, _ := hotspotCluster(t, 0, 100)
	if c.Stats().Replications != 0 {
		t.Error("replication active without opt-in")
	}
}

func TestReplicationSurvivesReplicaEviction(t *testing.T) {
	// Tiny caches: replicas get evicted by churning stores; lookups
	// must keep succeeding (stale replica lists are pruned lazily).
	c, err := NewCluster(Config{
		NumClients:        12,
		PerClientCapacity: 2,
		ReplicateHotAfter: 10,
		Seed:              5,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.StoreEvicted(entry(1), 0, true)
	for i := 0; i < 300; i++ {
		if i%3 == 0 {
			c.StoreEvicted(entry(trace.ObjectID(100+i)), i%12, true)
		}
		if c.Contains(1) {
			if _, err := c.Lookup(1, i%12); err != nil {
				t.Fatal(err)
			}
		}
	}
	// No assertion beyond "no panics, lookups consistent": the
	// stale-pruning path is what this exercises.
}

func TestReplicationSurvivesHolderCrash(t *testing.T) {
	c, err := NewCluster(Config{
		NumClients:        16,
		PerClientCapacity: 10,
		ReplicateHotAfter: 5,
		Seed:              6,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.StoreEvicted(entry(3), 0, true)
	for i := 0; i < 40; i++ {
		c.Lookup(3, i%16)
	}
	if c.Stats().Replications == 0 {
		t.Fatal("no replicas before crash")
	}
	// Crash half the cluster; the owner may or may not survive.
	for i := 0; i < 8; i++ {
		c.FailClient(i)
	}
	for i := 8; i < 16; i++ {
		if c.Contains(3) {
			if _, err := c.Lookup(3, i); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestLoadBalanceEmpty(t *testing.T) {
	c := testCluster(t, 3, 4)
	st := c.LoadBalance()
	if st.TotalServes != 0 || st.MaxServes != 0 {
		t.Errorf("fresh cluster load = %+v", st)
	}
}
