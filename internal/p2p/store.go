package p2p

import (
	"webcache/internal/cache"
	"webcache/internal/pastry"
	"webcache/internal/trace"
)

// Receipt reports the outcome of a pass-down store to the proxy, which
// uses it to maintain its lookup directory (§4.3: "A issues a store
// receipt of d1 to the local proxy, ... along with the information
// about the eviction of d2").
type Receipt struct {
	// Stored is the object that was passed down.
	Stored trace.ObjectID
	// StoredOK reports whether the P2P cache kept it (an object larger
	// than a whole client cache is dropped).
	StoredOK bool
	// Diverted reports the object was placed at a leaf-set neighbour.
	Diverted bool
	// Evicted lists objects the client caches discarded to make room;
	// the proxy deletes their directory entries.
	Evicted []trace.ObjectID
	// Hops is the Pastry routing distance the object travelled.
	Hops int
	// Messages is the number of overlay/control messages exchanged.
	Messages int
}

// StoreEvicted implements the Hier-GD pass-down (Figure 1 of the
// paper) with object diversion:
//
//	(1) objectId := SHA-1(d1)
//	(2) route d1 to destination client cache A
//	(3) if A has free space: A stores d1, receipt(add d1)
//	(7) else if a leaf B has free space: B stores, A keeps a pointer,
//	    receipt(add d1)
//	(12) else A runs greedy-dual: stores d1, evicts d2,
//	    receipt(add d1, del d2)
//
// fromClient is the client whose HTTP response carried the object when
// piggybacking is enabled (§4.4): the route then starts at that
// client's node and the dedicated proxy->client connection is saved.
// With piggyback=false the proxy hands the object to an arbitrary
// client over a dedicated connection (one extra message).
func (c *Cluster) StoreEvicted(e cache.Entry, fromClient int, piggyback bool) (Receipt, error) {
	r := Receipt{Stored: e.Obj}
	start, err := c.startNode(fromClient)
	if err != nil {
		return r, err
	}
	if piggyback {
		c.stats.PiggybackSave++
	} else {
		r.Messages++ // dedicated proxy->client transfer
	}
	destID, hops, err := c.overlay.RouteFrom(start, ObjectKey(e.Obj))
	if err != nil {
		return r, err
	}
	r.Hops = hops
	r.Messages += hops
	c.stats.RouteHops += hops
	c.stats.Stores++

	a := c.nodes[destID]
	r.Messages++ // store receipt back to the proxy
	c.stats.Messages += r.Messages

	// Refresh rather than duplicate if the P2P cache already holds it
	// (possible after directory false negatives or churn handoffs).
	if a.cache.Access(e.Obj) {
		r.StoredOK = true
		return r, nil
	}
	if holder, ok := a.pointerTo[e.Obj]; ok {
		if b := c.nodes[holder]; b != nil && b.cache.Access(e.Obj) {
			r.StoredOK = true
			return r, nil
		}
		delete(a.pointerTo, e.Obj) // stale pointer
	}

	if uint64(e.Size) > a.cache.Capacity() {
		// Larger than a whole client cache: cannot be passed down.
		return r, nil
	}

	if a.hasFreeSpace(e.Size) {
		a.cache.Add(e)
		r.StoredOK = true
		return r, nil
	}

	// Object diversion: find a leaf-set neighbour with free space.
	candidates := c.leafCandidates(a)
	if c.cfg.DisableDiversion {
		candidates = nil
	}
	for _, leafID := range candidates {
		b := c.nodes[leafID]
		if b == nil || !b.hasFreeSpace(e.Size) || b.cache.Contains(e.Obj) {
			continue
		}
		if uint64(e.Size) > b.cache.Capacity() {
			continue
		}
		b.cache.Add(e)
		b.heldFor[e.Obj] = a.id
		a.pointerTo[e.Obj] = b.id
		r.StoredOK = true
		r.Diverted = true
		msgs := 2 // A->B store + B->A ack
		r.Messages += msgs
		c.stats.Messages += msgs
		c.stats.Diversions++
		return r, nil
	}

	// No free space anywhere in the leaf set: local greedy-dual
	// replacement at A.
	evicted := a.cache.Add(e)
	r.StoredOK = true
	c.stats.Replacements++
	for _, ev := range evicted {
		c.dropEvicted(a, ev.Obj)
		r.Evicted = append(r.Evicted, ev.Obj)
		c.stats.Evictions++
	}
	return r, nil
}

// leafCandidates lists a's live leaf-set members in the leaf set's
// deterministic order for diversion.
func (c *Cluster) leafCandidates(a *clientNode) []pastry.ID {
	node, ok := c.overlay.Node(a.id)
	if !ok {
		return nil
	}
	return node.LeafSet().Members()
}

// dropEvicted cleans up the bookkeeping when node holder discards obj:
// if it was held on behalf of another owner, the owner's pointer is
// removed (one message).
func (c *Cluster) dropEvicted(holder *clientNode, obj trace.ObjectID) {
	if ownerID, ok := holder.heldFor[obj]; ok {
		delete(holder.heldFor, obj)
		if owner := c.nodes[ownerID]; owner != nil {
			delete(owner.pointerTo, obj)
			c.stats.Messages++ // holder -> owner pointer invalidation
		}
	}
}
