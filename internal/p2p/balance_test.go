package p2p

import (
	"math"
	"testing"

	"webcache/internal/trace"
)

func TestGini(t *testing.T) {
	if g := gini(nil); g != 0 {
		t.Errorf("empty gini = %g", g)
	}
	if g := gini([]float64{0, 0, 0}); g != 0 {
		t.Errorf("all-zero gini = %g", g)
	}
	if g := gini([]float64{5, 5, 5, 5}); math.Abs(g) > 1e-9 {
		t.Errorf("uniform gini = %g, want 0", g)
	}
	// One node holds everything: G -> (n-1)/n.
	if g := gini([]float64{0, 0, 0, 12}); math.Abs(g-0.75) > 1e-9 {
		t.Errorf("concentrated gini = %g, want 0.75", g)
	}
	// More unequal distributions have higher Gini.
	even := gini([]float64{4, 5, 6, 5})
	skew := gini([]float64{1, 1, 1, 17})
	if skew <= even {
		t.Errorf("gini ordering wrong: %g <= %g", skew, even)
	}
}

func TestStorageBalanceEmptyCluster(t *testing.T) {
	c := testCluster(t, 5, 4)
	st := c.StorageBalance()
	if st.Live != 5 || st.MeanUtilization != 0 || st.Gini != 0 || st.FullNodes != 0 {
		t.Errorf("fresh cluster balance = %+v", st)
	}
}

func TestStorageBalanceTracksLoad(t *testing.T) {
	c := testCluster(t, 10, 10)
	for obj := trace.ObjectID(0); obj < 50; obj++ {
		c.StoreEvicted(entry(obj), 0, true)
	}
	st := c.StorageBalance()
	if st.MeanUtilization <= 0 || st.MeanUtilization > 1 {
		t.Errorf("mean utilization %g", st.MeanUtilization)
	}
	if st.MaxUtilization < st.MinUtilization {
		t.Error("max < min")
	}
	if st.Gini < 0 || st.Gini > 1 {
		t.Errorf("gini %g outside [0,1]", st.Gini)
	}
}

// The §4.3 claim: diversion balances storage across the leaf set.
// With diversion on, the load distribution must be measurably more
// even than with it off, under identical pass-down streams.
func TestDiversionImprovesBalance(t *testing.T) {
	load := func(disable bool) BalanceStats {
		c, err := NewCluster(Config{
			NumClients:        32,
			PerClientCapacity: 4,
			DisableDiversion:  disable,
			Seed:              42,
		})
		if err != nil {
			t.Fatal(err)
		}
		for obj := trace.ObjectID(0); obj < 100; obj++ {
			if _, err := c.StoreEvicted(entry(obj), int(obj)%32, true); err != nil {
				t.Fatal(err)
			}
		}
		return c.StorageBalance()
	}
	with := load(false)
	without := load(true)
	if with.Gini >= without.Gini {
		t.Errorf("diversion did not reduce Gini: with=%.3f without=%.3f", with.Gini, without.Gini)
	}
}

func TestDisableDiversionSuppressesMechanism(t *testing.T) {
	c, err := NewCluster(Config{
		NumClients:        16,
		PerClientCapacity: 2,
		DisableDiversion:  true,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for obj := trace.ObjectID(0); obj < 80; obj++ {
		c.StoreEvicted(entry(obj), int(obj)%16, true)
	}
	st := c.Stats()
	if st.Diversions != 0 {
		t.Errorf("diversions = %d with the mechanism disabled", st.Diversions)
	}
	if st.Replacements == 0 {
		t.Error("no replacements despite overload and no diversion")
	}
}
