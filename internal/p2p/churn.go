package p2p

import (
	"fmt"

	"webcache/internal/pastry"
	"webcache/internal/trace"
)

// FailClient crashes client i: its overlay node disappears and every
// object it physically stored is lost.  Objects it had diverted to
// neighbours become unreachable (the pointers died with it) and are
// discarded by their holders.  The returned list names every object
// the P2P cache lost, so the proxy can scrub its lookup directory.
func (c *Cluster) FailClient(i int) ([]trace.ObjectID, error) {
	if i < 0 || i >= len(c.clientIDs) {
		return nil, fmt.Errorf("p2p: client index %d out of range", i)
	}
	if c.dead[i] {
		return nil, fmt.Errorf("p2p: client %d already failed", i)
	}
	id := c.clientIDs[i]
	node := c.nodes[id]
	c.dead[i] = true
	c.live--
	c.overlay.Fail(id)
	delete(c.nodes, id)

	var lost []trace.ObjectID
	// Objects it held on behalf of others: scrub the owners' pointers.
	for obj, ownerID := range node.heldFor {
		if owner := c.nodes[ownerID]; owner != nil {
			delete(owner.pointerTo, obj)
		}
	}
	// Everything in its cache is gone.
	for _, obj := range node.cache.Objects() {
		node.cache.Remove(obj)
		lost = append(lost, obj)
	}
	// Objects it diverted elsewhere are orphaned: the holder discards
	// them (their DHT owner no longer knows where they are).
	for obj, holderID := range node.pointerTo {
		if holder := c.nodes[holderID]; holder != nil {
			if _, ok := holder.cache.Remove(obj); ok {
				delete(holder.heldFor, obj)
				lost = append(lost, obj)
			}
		}
	}
	c.stats.LostOnFailure += len(lost)
	return lost, nil
}

// JoinClient adds a brand-new client cache to the cluster and re-homes
// any objects whose DHT ownership moves to it (the PAST-style handoff
// that keeps lookups routable after membership changes).  It returns
// the new client's index.
func (c *Cluster) JoinClient() (int, error) {
	idx := len(c.clientIDs)
	var id pastry.ID
	for attempt := 0; ; attempt++ {
		id = pastry.HashString(fmt.Sprintf("client/%d/new/%d/%d", c.cfg.Seed, idx, attempt))
		err := c.overlay.Join(id)
		if err == nil {
			break
		}
		if err != pastry.ErrDuplicateID {
			return 0, err
		}
	}
	n := newClientNode(id, c.cfg.PerClientCapacity, c.cfg.WrapCache)
	c.nodes[id] = n
	c.clientIDs = append(c.clientIDs, id)
	c.dead = append(c.dead, false)
	c.live++

	// Handoff: leaf-set neighbours transfer objects the new node now
	// owns.  Diverted placements keep their pointers (the pointer
	// owner re-homes instead).
	node, _ := c.overlay.Node(id)
	for _, leafID := range node.LeafSet().Members() {
		peer := c.nodes[leafID]
		if peer == nil {
			continue
		}
		for _, obj := range peer.cache.Objects() {
			if _, held := peer.heldFor[obj]; held {
				continue // diverted storage stays with its holder
			}
			owner, _ := c.overlay.Owner(ObjectKey(obj))
			if owner != id {
				continue
			}
			e, _ := peer.cache.Remove(obj)
			c.stats.Messages++ // transfer message
			if n.hasFreeSpace(e.Size) {
				n.cache.Add(e)
				c.stats.Handoffs++
			} else {
				// New node full: treat as an eviction.
				c.stats.Evictions++
			}
		}
		// Pointers whose object key now belongs to the new node move
		// with the ownership.
		for obj, holder := range peer.pointerTo {
			owner, _ := c.overlay.Owner(ObjectKey(obj))
			if owner != id {
				continue
			}
			delete(peer.pointerTo, obj)
			n.pointerTo[obj] = holder
			if h := c.nodes[holder]; h != nil {
				h.heldFor[obj] = id
			}
			c.stats.Messages++
			c.stats.Handoffs++
		}
	}
	return idx, nil
}

// IsDead reports whether client i has failed.
func (c *Cluster) IsDead(i int) bool {
	return i < 0 || i >= len(c.dead) || c.dead[i]
}
