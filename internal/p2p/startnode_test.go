package p2p

import (
	"testing"

	"webcache/internal/pastry"
)

// The dead-client fallback in startNode used to return the
// lowest-index live client deterministically, making it a routing
// hotspot for every PushFetch; it now spreads across live clients.
func TestStartNodeFallbackSpread(t *testing.T) {
	c, err := NewCluster(Config{NumClients: 32, PerClientCapacity: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	starts := make(map[pastry.ID]int)
	const trials = 200
	for i := 0; i < trials; i++ {
		id, err := c.startNode(-1) // the PushFetch path: no requesting client
		if err != nil {
			t.Fatal(err)
		}
		starts[id]++
	}
	if len(starts) < 8 {
		t.Errorf("fallback used only %d distinct start nodes over %d trials; want spread", len(starts), trials)
	}
	for id, n := range starts {
		if n > trials/2 {
			t.Errorf("start node %v took %d/%d fallback routes: hotspot", id, n, trials)
		}
	}
}

// The fallback must still skip dead clients and fail cleanly when the
// cluster is fully failed.
func TestStartNodeFallbackSkipsDead(t *testing.T) {
	c, err := NewCluster(Config{NumClients: 4, PerClientCapacity: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.FailClient(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		id, err := c.startNode(-1)
		if err != nil {
			t.Fatal(err)
		}
		if id != c.clientIDs[3] {
			t.Fatalf("fallback picked dead client node %v", id)
		}
	}
	if _, err := c.FailClient(3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.startNode(-1); err != ErrNoLiveClients {
		t.Errorf("fully failed cluster: err = %v, want ErrNoLiveClients", err)
	}
}
