package p2p

import (
	"webcache/internal/cache"
	"webcache/internal/trace"
)

// LookupResult reports a P2P lookup outcome.
type LookupResult struct {
	Found bool
	Entry cache.Entry
	// ViaPointer marks a hit served through a diversion pointer (one
	// extra LAN hop).
	ViaPointer bool
	// Displaced lists objects a hot-object replica pushed out of a
	// neighbour's cache; the proxy scrubs them from its directory.
	Displaced []trace.ObjectID
	// Hops is the Pastry routing distance (plus one for a pointer hop).
	Hops int
	// Messages is the overlay message count for the operation.
	Messages int
}

// Lookup fetches obj from the P2P client cache after the proxy's
// directory said it may be there (§4.2).  The route starts at the
// requesting client's node (the proxy redirects the client).  A hit
// refreshes the client cache's greedy-dual state.
//
// A miss (directory false positive or object lost to churn) is
// reported with Found=false; the proxy then falls back to cooperating
// proxies or the server and repairs its directory.
func (c *Cluster) Lookup(obj trace.ObjectID, fromClient int) (LookupResult, error) {
	var r LookupResult
	start, err := c.startNode(fromClient)
	if err != nil {
		return r, err
	}
	destID, hops, err := c.overlay.RouteFrom(start, ObjectKey(obj))
	if err != nil {
		return r, err
	}
	r.Hops = hops
	r.Messages = hops + 1 // + response back to the client
	c.stats.Lookups++
	c.stats.RouteHops += hops

	a := c.nodes[destID]
	if e, ok := a.cache.Peek(obj); ok {
		a.cache.Access(obj)
		// Hot-object replication (extension): the owner may redirect
		// this serve to one of its replicas to spread load.
		server, extraHops, extraMsgs, displaced := c.maybeServeFromReplica(a, obj)
		server.served++
		r.Hops += extraHops
		r.Messages += extraMsgs
		r.Displaced = displaced
		c.stats.RouteHops += extraHops
		r.Found = true
		r.Entry = e
		c.stats.LookupHits++
		c.stats.Messages += r.Messages
		return r, nil
	}
	if holder, ok := a.pointerTo[obj]; ok {
		if b := c.nodes[holder]; b != nil {
			if e, ok := b.cache.Peek(obj); ok {
				b.cache.Access(obj)
				b.served++
				r.Found = true
				r.Entry = e
				r.ViaPointer = true
				r.Hops++
				r.Messages += 2 // A->B redirect + B response
				c.stats.LookupHits++
				c.stats.PointerHits++
				c.stats.RouteHops++
				c.stats.Messages += r.Messages
				return r, nil
			}
		}
		delete(a.pointerTo, obj) // stale pointer cleanup
	}
	c.stats.Messages += r.Messages
	return r, nil
}

// PushFetch serves a cooperating proxy's request for obj (§4.5): the
// local proxy routes a push request to the destination client cache,
// which opens a connection to the proxy and pushes the object up; the
// proxy forwards it to the cooperating proxy.  Client caches never
// accept incoming connections (firewall constraint), which is why the
// object is pushed rather than pulled.
func (c *Cluster) PushFetch(obj trace.ObjectID) (LookupResult, error) {
	r, err := c.Lookup(obj, -1)
	if err != nil {
		return r, err
	}
	if r.Found {
		// push-up connection to the proxy + forward to the peer proxy
		r.Messages += 2
		c.stats.Messages += 2
		c.stats.Pushes++
	}
	return r, nil
}

// Contains reports ground-truth presence of obj anywhere in the
// cluster (any client cache, owned or diverted).  Used by tests and by
// upper-bound schemes; the proxy's directory is the deployable
// equivalent.
func (c *Cluster) Contains(obj trace.ObjectID) bool {
	for _, n := range c.nodes {
		if n.cache.Contains(obj) {
			return true
		}
	}
	return false
}

// TotalCached returns the number of objects held across all live
// client caches.
func (c *Cluster) TotalCached() int {
	total := 0
	for _, n := range c.nodes {
		total += n.cache.Len()
	}
	return total
}

// UsedCapacity returns the aggregate used size across live caches.
func (c *Cluster) UsedCapacity() uint64 {
	var total uint64
	for _, n := range c.nodes {
		total += n.cache.Used()
	}
	return total
}
