package p2p

import (
	"math"
	"sort"
)

// Storage-balance diagnostics for object diversion (§4.3): "The
// purpose of storage management of a P2P client cache is to balance
// the remaining free storage space among the client caches in a leaf
// set."  These metrics quantify how well that works; the diversion
// ablation shows the Gini coefficient dropping when diversion is on.

// BalanceStats summarizes the distribution of storage utilization
// across live client caches.
type BalanceStats struct {
	Live            int
	MeanUtilization float64 // mean used/capacity
	MinUtilization  float64
	MaxUtilization  float64
	StdDev          float64
	// Gini is the Gini coefficient of per-node used space: 0 = all
	// nodes equally loaded, 1 = one node holds everything.
	Gini float64
	// FullNodes counts caches with no free space.
	FullNodes int
}

// StorageBalance computes the current balance statistics.
func (c *Cluster) StorageBalance() BalanceStats {
	var used []float64
	var utils []float64
	full := 0
	for _, n := range c.nodes {
		u := float64(n.cache.Used())
		capacity := float64(n.cache.Capacity())
		used = append(used, u)
		util := 0.0
		if capacity > 0 {
			util = u / capacity
		}
		utils = append(utils, util)
		if n.cache.Used() >= n.cache.Capacity() {
			full++
		}
	}
	st := BalanceStats{Live: len(used), FullNodes: full}
	if len(used) == 0 {
		return st
	}
	sort.Float64s(utils)
	st.MinUtilization = utils[0]
	st.MaxUtilization = utils[len(utils)-1]
	sum := 0.0
	for _, u := range utils {
		sum += u
	}
	st.MeanUtilization = sum / float64(len(utils))
	varSum := 0.0
	for _, u := range utils {
		d := u - st.MeanUtilization
		varSum += d * d
	}
	st.StdDev = math.Sqrt(varSum / float64(len(utils)))
	st.Gini = gini(used)
	return st
}

// gini computes the Gini coefficient of a non-negative sample.
func gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for _, x := range sorted {
		total += x
	}
	if total == 0 {
		return 0
	}
	// G = (2*sum_i i*x_i) / (n*sum x) - (n+1)/n with 1-based ranks.
	for i, x := range sorted {
		cum += float64(i+1) * x
	}
	return 2*cum/(float64(n)*total) - float64(n+1)/float64(n)
}
