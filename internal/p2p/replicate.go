package p2p

import (
	"sort"

	"webcache/internal/cache"
	"webcache/internal/pastry"
	"webcache/internal/trace"
)

// Hot-object replication (extension).  The paper's DHT placement puts
// each object on exactly one client cache, so a popular object turns
// its destination cache into a hotspot — a desktop asked to serve
// hundreds of LAN fetches.  PAST (the paper's storage-management
// reference) solves this by replicating popular objects across the
// leaf set; this file implements that: once a cache has served the
// same object ReplicateHotAfter times since the last replication, it
// copies the object to a leaf-set member with free space, and
// subsequent lookups round-robin across owner and replicas.
//
// The mechanism is off by default (the paper has no replication);
// BenchmarkHotReplication and the hotspot tests quantify what it buys:
// the maximum per-node serve load drops roughly by the replica count
// while total hit ratio is unchanged.

// replicaState augments a client node with replication bookkeeping.
type replicaState struct {
	// holders[obj] lists the nodes holding replicas of obj (this node
	// is the DHT owner).
	holders map[trace.ObjectID][]pastry.ID
	// serves[obj] counts lookups served for obj since the last
	// replication decision.
	serves map[trace.ObjectID]int
}

func (n *clientNode) replState() *replicaState {
	if n.repl == nil {
		n.repl = &replicaState{
			holders: make(map[trace.ObjectID][]pastry.ID),
			serves:  make(map[trace.ObjectID]int),
		}
	}
	return n.repl
}

// maybeServeFromReplica round-robins a hot object's serves across the
// owner and its live replicas, and creates new replicas when the
// configured threshold is crossed.  It returns extra hops/messages,
// which node actually served, and any objects the replica displaced
// (the proxy must scrub those from its lookup directory).
func (c *Cluster) maybeServeFromReplica(owner *clientNode, obj trace.ObjectID) (served *clientNode, extraHops, extraMsgs int, displaced []trace.ObjectID) {
	served = owner
	if c.cfg.ReplicateHotAfter <= 0 {
		return served, 0, 0, nil
	}
	rs := owner.replState()
	rs.serves[obj]++
	sc := rs.serves[obj]

	// Replicate when the threshold is crossed (again).
	if sc%c.cfg.ReplicateHotAfter == 0 {
		displaced = c.replicateTo(owner, obj)
	}

	// Round-robin across owner + live replicas.
	holders := rs.holders[obj]
	if len(holders) == 0 {
		return served, 0, 0, displaced
	}
	pick := sc % (len(holders) + 1)
	if pick == 0 {
		return served, 0, 0, displaced
	}
	id := holders[pick-1]
	replica := c.nodes[id]
	if replica == nil || !replica.cache.Contains(obj) {
		// Stale (crashed holder or evicted replica): drop lazily.
		rs.holders[obj] = removeID(holders, id)
		return served, 0, 0, displaced
	}
	replica.cache.Access(obj)
	return replica, 1, 1, displaced // owner -> replica redirect
}

// replicateTo copies obj to a leaf-set member that does not already
// hold it.  A member with free space is preferred; otherwise the first
// live member's greedy-dual decides what the replica displaces (the
// displaced objects are returned so the proxy can scrub its
// directory — the owner still holds obj itself, so losing a replica
// later is harmless).
func (c *Cluster) replicateTo(owner *clientNode, obj trace.ObjectID) []trace.ObjectID {
	e, ok := owner.cache.Peek(obj)
	if !ok {
		return nil
	}
	rs := owner.replState()
	existing := map[pastry.ID]bool{owner.id: true}
	for _, h := range rs.holders[obj] {
		existing[h] = true
	}
	candidates := c.leafCandidates(owner)
	var fallback *clientNode
	for _, leafID := range candidates {
		b := c.nodes[leafID]
		if b == nil || existing[leafID] || b.cache.Contains(obj) {
			continue
		}
		if uint64(e.Size) > b.cache.Capacity() {
			continue
		}
		if b.hasFreeSpace(e.Size) {
			c.commitReplica(rs, b, obj, e.Size, e.Cost)
			return nil
		}
		if fallback == nil {
			fallback = b
		}
	}
	if fallback == nil {
		return nil
	}
	var displaced []trace.ObjectID
	ent, _ := owner.cache.Peek(obj)
	for _, ev := range fallback.cache.Add(ent) {
		c.dropEvicted(fallback, ev.Obj)
		displaced = append(displaced, ev.Obj)
		c.stats.Evictions++
	}
	rs.holders[obj] = append(rs.holders[obj], fallback.id)
	c.stats.Replications++
	c.stats.Messages += 2
	return displaced
}

// commitReplica records a replica stored without eviction.
func (c *Cluster) commitReplica(rs *replicaState, b *clientNode, obj trace.ObjectID, size uint32, cost float64) {
	b.cache.Add(cacheEntry(obj, size, cost))
	rs.holders[obj] = append(rs.holders[obj], b.id)
	c.stats.Replications++
	c.stats.Messages += 2 // owner -> holder copy + ack
}

func removeID(ids []pastry.ID, id pastry.ID) []pastry.ID {
	out := ids[:0]
	for _, v := range ids {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// LoadStats summarizes the per-node lookup-serve distribution — the
// hotspot measurement replication exists to improve.
type LoadStats struct {
	TotalServes int
	MaxServes   int
	MeanServes  float64
	// P99Serves is the 99th-percentile per-node serve count.
	P99Serves int
}

// LoadBalance computes the serve-load distribution over live nodes.
func (c *Cluster) LoadBalance() LoadStats {
	var loads []int
	total := 0
	for _, n := range c.nodes {
		loads = append(loads, n.served)
		total += n.served
	}
	st := LoadStats{TotalServes: total}
	if len(loads) == 0 {
		return st
	}
	sort.Ints(loads)
	st.MaxServes = loads[len(loads)-1]
	st.MeanServes = float64(total) / float64(len(loads))
	st.P99Serves = loads[(len(loads)-1)*99/100]
	return st
}

// cacheEntry builds a cache entry (helper for replication).
func cacheEntry(obj trace.ObjectID, size uint32, cost float64) cache.Entry {
	return cache.Entry{Obj: obj, Size: size, Cost: cost}
}
