package core

import (
	"fmt"

	"webcache/internal/netmodel"
	"webcache/internal/prowgen"
	"webcache/internal/sim"
	"webcache/internal/trace"
)

// Fig2a — "Latency Gain vs. Proxy Cache Size" on the synthetic
// workload: all seven schemes against the NC baseline.
func Fig2a(opts Options) (*Figure, error) {
	opts.fill()
	tr, err := paperTrace(opts.Scale, opts.Seed, prowgen.DefaultAlpha, prowgen.DefaultStackFrac, 0)
	if err != nil {
		return nil, err
	}
	return schemesFigure("2a", "Latency gain vs. proxy cache size (synthetic)", tr, opts)
}

// Fig2b — the same sweep on the reconstructed UCB Home-IP trace.
func Fig2b(opts Options) (*Figure, error) {
	opts.fill()
	// The UCB trace is 9.2M requests at scale 1; apply a further
	// factor so figure 2b is comparable in cost to 2a.
	tr, err := prowgen.GenerateUCB(prowgen.UCBConfig{
		Scale: opts.Scale * float64(prowgen.DefaultNumRequests) / float64(prowgen.UCBRequests),
		Seed:  opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return schemesFigure("2b", "Latency gain vs. proxy cache size (UCB-like trace)", tr, opts)
}

func schemesFigure(id, title string, tr *trace.Trace, opts Options) (*Figure, error) {
	schemes := []sim.Scheme{sim.SC, sim.FC, sim.NCEC, sim.SCEC, sim.FCEC, sim.HierGD}
	labels := make([]string, len(schemes))
	var jobs []sweepJob
	for si, s := range schemes {
		labels[si] = s.String()
		for pi, frac := range opts.Fracs {
			jobs = append(jobs, sweepJob{
				series: si, point: pi, tr: tr,
				cfg:   sim.Config{Scheme: s, ProxyCacheFrac: frac, Seed: opts.Seed},
				ncCfg: sim.Config{Scheme: sim.NC, ProxyCacheFrac: frac, Seed: opts.Seed},
			})
		}
	}
	series, err := runSweep(labels, jobs, opts)
	if err != nil {
		return nil, err
	}
	return &Figure{ID: id, Title: title, XLabel: "cache size (% of infinite)", YLabel: "latency gain (%)", Series: series}, nil
}

// Fig3 — "Latency Gain vs. Object Popularity Distribution": the
// FC-EC, FC, Hier-GD and SC-EC panels with α ∈ {0.5, 0.7, 1.0}.
func Fig3(opts Options) (*Figure, error) {
	opts.fill()
	alphas := []float64{0.5, 0.7, 1.0}
	panels := []sim.Scheme{sim.FCEC, sim.FC, sim.HierGD, sim.SCEC}
	var labels []string
	var jobs []sweepJob
	si := 0
	for _, scheme := range panels {
		for _, alpha := range alphas {
			tr, err := paperTrace(opts.Scale, opts.Seed, alpha, prowgen.DefaultStackFrac, 0)
			if err != nil {
				return nil, err
			}
			labels = append(labels, fmt.Sprintf("%s alpha=%.1f", scheme, alpha))
			for pi, frac := range opts.Fracs {
				jobs = append(jobs, sweepJob{
					series: si, point: pi, tr: tr,
					cfg:   sim.Config{Scheme: scheme, ProxyCacheFrac: frac, Seed: opts.Seed},
					ncCfg: sim.Config{Scheme: sim.NC, ProxyCacheFrac: frac, Seed: opts.Seed},
				})
			}
			si++
		}
	}
	series, err := runSweep(labels, jobs, opts)
	if err != nil {
		return nil, err
	}
	return &Figure{ID: "3", Title: "Latency gain vs. object popularity (Zipf alpha)", XLabel: "cache size (% of infinite)", YLabel: "latency gain (%)", Series: series}, nil
}

// Fig4 — "Latency Gain vs. Temporal Locality": the same panels with
// LRU stack size ∈ {5%, 20%, 60%}.
func Fig4(opts Options) (*Figure, error) {
	opts.fill()
	stacks := []float64{0.05, 0.20, 0.60}
	panels := []sim.Scheme{sim.FCEC, sim.FC, sim.HierGD, sim.SCEC}
	var labels []string
	var jobs []sweepJob
	si := 0
	for _, scheme := range panels {
		for _, stack := range stacks {
			tr, err := paperTrace(opts.Scale, opts.Seed, prowgen.DefaultAlpha, stack, 0)
			if err != nil {
				return nil, err
			}
			labels = append(labels, fmt.Sprintf("%s stack=%.0f%%", scheme, stack*100))
			for pi, frac := range opts.Fracs {
				jobs = append(jobs, sweepJob{
					series: si, point: pi, tr: tr,
					cfg:   sim.Config{Scheme: scheme, ProxyCacheFrac: frac, Seed: opts.Seed},
					ncCfg: sim.Config{Scheme: sim.NC, ProxyCacheFrac: frac, Seed: opts.Seed},
				})
			}
			si++
		}
	}
	series, err := runSweep(labels, jobs, opts)
	if err != nil {
		return nil, err
	}
	return &Figure{ID: "4", Title: "Latency gain vs. temporal locality (LRU stack size)", XLabel: "cache size (% of infinite)", YLabel: "latency gain (%)", Series: series}, nil
}

// Fig5a — Hier-GD's sensitivity to the proxy-to-proxy latency:
// Ts/Tc ∈ {2, 5, 10}.  The NC baseline shares each network model.
func Fig5a(opts Options) (*Figure, error) {
	opts.fill()
	tr, err := paperTrace(opts.Scale, opts.Seed, prowgen.DefaultAlpha, prowgen.DefaultStackFrac, 0)
	if err != nil {
		return nil, err
	}
	var labels []string
	var jobs []sweepJob
	for si, ratio := range []float64{2, 5, 10} {
		net, err := netmodel.New(netmodel.Params{ServerProxyRatio: ratio})
		if err != nil {
			return nil, err
		}
		labels = append(labels, fmt.Sprintf("Ts/Tc=%.0f", ratio))
		for pi, frac := range opts.Fracs {
			jobs = append(jobs, sweepJob{
				series: si, point: pi, tr: tr,
				cfg:   sim.Config{Scheme: sim.HierGD, Net: net, ProxyCacheFrac: frac, Seed: opts.Seed},
				ncCfg: sim.Config{Scheme: sim.NC, Net: net, ProxyCacheFrac: frac, Seed: opts.Seed},
			})
		}
	}
	series, err := runSweep(labels, jobs, opts)
	if err != nil {
		return nil, err
	}
	return &Figure{ID: "5a", Title: "Hier-GD latency gain vs. proxy-to-proxy latency (Ts/Tc)", XLabel: "cache size (% of infinite)", YLabel: "latency gain (%)", Series: series}, nil
}

// Fig5b — Hier-GD's sensitivity to the client-to-proxy latency:
// Ts/Tl ∈ {5, 10, 20}.
func Fig5b(opts Options) (*Figure, error) {
	opts.fill()
	tr, err := paperTrace(opts.Scale, opts.Seed, prowgen.DefaultAlpha, prowgen.DefaultStackFrac, 0)
	if err != nil {
		return nil, err
	}
	var labels []string
	var jobs []sweepJob
	for si, ratio := range []float64{5, 10, 20} {
		net, err := netmodel.New(netmodel.Params{ServerClientRatio: ratio})
		if err != nil {
			return nil, err
		}
		labels = append(labels, fmt.Sprintf("Ts/Tl=%.0f", ratio))
		for pi, frac := range opts.Fracs {
			jobs = append(jobs, sweepJob{
				series: si, point: pi, tr: tr,
				cfg:   sim.Config{Scheme: sim.HierGD, Net: net, ProxyCacheFrac: frac, Seed: opts.Seed},
				ncCfg: sim.Config{Scheme: sim.NC, Net: net, ProxyCacheFrac: frac, Seed: opts.Seed},
			})
		}
	}
	series, err := runSweep(labels, jobs, opts)
	if err != nil {
		return nil, err
	}
	return &Figure{ID: "5b", Title: "Hier-GD latency gain vs. client-to-proxy latency (Ts/Tl)", XLabel: "cache size (% of infinite)", YLabel: "latency gain (%)", Series: series}, nil
}

// Fig5c — impact of the client cluster size: Hier-GD with 100..1000
// client caches (against a 1000-client mapping), plus SC and FC
// reference curves.
func Fig5c(opts Options) (*Figure, error) {
	opts.fill()
	const mapping = 1000 // fixed client->proxy mapping for every curve
	// The trace must populate every one of the 2 x 1000 mapped clients.
	tr, err := paperTrace(opts.Scale, opts.Seed, prowgen.DefaultAlpha, prowgen.DefaultStackFrac, 2*mapping)
	if err != nil {
		return nil, err
	}
	base := func(s sim.Scheme, frac float64) sim.Config {
		return sim.Config{Scheme: s, ClientsPerCluster: mapping, ProxyCacheFrac: frac, Seed: opts.Seed}
	}
	var labels []string
	var jobs []sweepJob
	si := 0
	for _, s := range []sim.Scheme{sim.SC, sim.FC} {
		labels = append(labels, s.String())
		for pi, frac := range opts.Fracs {
			jobs = append(jobs, sweepJob{series: si, point: pi, tr: tr,
				cfg: base(s, frac), ncCfg: base(sim.NC, frac)})
		}
		si++
	}
	for _, n := range []int{100, 400, 800, 1000} {
		labels = append(labels, fmt.Sprintf("Hier-GD (%d)", n))
		for pi, frac := range opts.Fracs {
			cfg := base(sim.HierGD, frac)
			cfg.P2PClientCaches = n
			jobs = append(jobs, sweepJob{series: si, point: pi, tr: tr,
				cfg: cfg, ncCfg: base(sim.NC, frac)})
		}
		si++
	}
	series, err := runSweep(labels, jobs, opts)
	if err != nil {
		return nil, err
	}
	return &Figure{ID: "5c", Title: "Hier-GD latency gain vs. client cluster size", XLabel: "cache size (% of infinite)", YLabel: "latency gain (%)", Series: series}, nil
}

// Fig5d — impact of the proxy cluster size: Hier-GD with 2, 5 and 10
// proxies (every pair of proxies at the same Tc, as the paper assumes).
func Fig5d(opts Options) (*Figure, error) {
	opts.fill()
	// 10 proxies x 100 clients: the trace must cover 1000 clients.
	tr, err := paperTrace(opts.Scale, opts.Seed, prowgen.DefaultAlpha, prowgen.DefaultStackFrac, 1000)
	if err != nil {
		return nil, err
	}
	var labels []string
	var jobs []sweepJob
	for si, numProxies := range []int{2, 5, 10} {
		labels = append(labels, fmt.Sprintf("%d proxies", numProxies))
		for pi, frac := range opts.Fracs {
			jobs = append(jobs, sweepJob{
				series: si, point: pi, tr: tr,
				cfg:   sim.Config{Scheme: sim.HierGD, NumProxies: numProxies, ProxyCacheFrac: frac, Seed: opts.Seed},
				ncCfg: sim.Config{Scheme: sim.NC, NumProxies: numProxies, ProxyCacheFrac: frac, Seed: opts.Seed},
			})
		}
	}
	series, err := runSweep(labels, jobs, opts)
	if err != nil {
		return nil, err
	}
	return &Figure{ID: "5d", Title: "Hier-GD latency gain vs. proxy cluster size", XLabel: "cache size (% of infinite)", YLabel: "latency gain (%)", Series: series}, nil
}
