package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Figure export: JSON for programmatic consumers and gnuplot-ready
// .dat/.gp files that redraw the paper's plots.

// WriteJSON encodes the figure as indented JSON.
func WriteJSON(w io.Writer, f *Figure) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadJSON decodes a figure written by WriteJSON.
func ReadJSON(r io.Reader) (*Figure, error) {
	var f Figure
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

// figureHasCI reports whether any point carries a confidence interval
// (replicated runs).
func figureHasCI(f *Figure) bool {
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.GainCI > 0 {
				return true
			}
		}
	}
	return false
}

// WriteDAT writes the figure as a whitespace-separated table: column 1
// is the cache size in percent, then one gain column per series (and a
// CI column when any point carries one), with a header comment.
func WriteDAT(w io.Writer, f *Figure) error {
	hasCI := figureHasCI(f)
	fmt.Fprintf(w, "# Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "# cache%%")
	for _, s := range f.Series {
		fmt.Fprintf(w, "\t%q", s.Label)
		if hasCI {
			fmt.Fprintf(w, "\t%q", s.Label+" ci")
		}
	}
	fmt.Fprintln(w)
	var xs []float64
	for _, s := range f.Series {
		if len(s.Points) > len(xs) {
			xs = xs[:0]
			for _, p := range s.Points {
				xs = append(xs, p.CacheFrac)
			}
		}
	}
	for i, x := range xs {
		fmt.Fprintf(w, "%.0f", x*100)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(w, "\t%.4f", 100*s.Points[i].Gain)
				if hasCI {
					fmt.Fprintf(w, "\t%.4f", 100*s.Points[i].GainCI)
				}
			} else {
				fmt.Fprintf(w, "\tnan")
				if hasCI {
					fmt.Fprintf(w, "\tnan")
				}
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ExportGnuplot writes fig<ID>.dat and fig<ID>.gp into dir; running
// `gnuplot fig<ID>.gp` renders fig<ID>.png in the paper's layout
// (latency gain vs. cache size, one curve per series).
func ExportGnuplot(dir string, f *Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := "fig" + strings.ReplaceAll(f.ID, "/", "_")
	datPath := filepath.Join(dir, base+".dat")
	df, err := os.Create(datPath)
	if err != nil {
		return err
	}
	if err := WriteDAT(df, f); err != nil {
		df.Close()
		return err
	}
	if err := df.Close(); err != nil {
		return err
	}

	var gp strings.Builder
	fmt.Fprintf(&gp, "set terminal pngcairo size 720,540\n")
	fmt.Fprintf(&gp, "set output %q\n", base+".png")
	fmt.Fprintf(&gp, "set title %q\n", fmt.Sprintf("Figure %s: %s", f.ID, f.Title))
	fmt.Fprintf(&gp, "set xlabel %q\nset ylabel %q\n", f.XLabel, f.YLabel)
	fmt.Fprintf(&gp, "set key outside right\nset grid\nset yrange [0:100]\n")
	fmt.Fprintf(&gp, "plot \\\n")
	stride := 1
	style := "linespoints"
	if figureHasCI(f) {
		stride = 2
		style = "yerrorlines"
	}
	for i, s := range f.Series {
		sep := ", \\\n"
		if i == len(f.Series)-1 {
			sep = "\n"
		}
		col := 2 + i*stride
		using := fmt.Sprintf("1:%d", col)
		if stride == 2 {
			using = fmt.Sprintf("1:%d:%d", col, col+1)
		}
		fmt.Fprintf(&gp, "  %q using %s with %s title %q%s",
			base+".dat", using, style, s.Label, sep)
	}
	return os.WriteFile(filepath.Join(dir, base+".gp"), []byte(gp.String()), 0o644)
}
