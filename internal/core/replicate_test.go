package core

import "testing"

func TestRunFigureReplicated(t *testing.T) {
	opts := Options{Scale: 0.03, Fracs: []float64{0.2}, Seed: 1}
	fig, err := RunFigureReplicated("5a", opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.GainCI <= 0 {
				t.Errorf("series %q: zero CI with 3 replicates (gain %.3f)", s.Label, p.Gain)
			}
			if p.GainCI > 0.5 {
				t.Errorf("series %q: CI %.3f implausibly wide", s.Label, p.GainCI)
			}
			if p.Gain <= 0 || p.Gain >= 1 {
				t.Errorf("series %q: mean gain %.3f out of range", s.Label, p.Gain)
			}
		}
	}
}

func TestRunFigureReplicatedSingle(t *testing.T) {
	opts := Options{Scale: 0.03, Fracs: []float64{0.2}, Seed: 1}
	fig, err := RunFigureReplicated("5a", opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.GainCI != 0 {
				t.Errorf("single replicate should have zero CI, got %g", p.GainCI)
			}
		}
	}
	// A single replicate must agree with the plain run.
	plain, err := RunFigure("5a", opts)
	if err != nil {
		t.Fatal(err)
	}
	for si := range fig.Series {
		if fig.Series[si].Points[0].Gain != plain.Series[si].Points[0].Gain {
			t.Errorf("series %q: replicated(1) %.4f != plain %.4f",
				fig.Series[si].Label, fig.Series[si].Points[0].Gain, plain.Series[si].Points[0].Gain)
		}
	}
}

func TestRunFigureReplicatedValidation(t *testing.T) {
	if _, err := RunFigureReplicated("5a", tinyOpts(), 0); err == nil {
		t.Error("0 replicates accepted")
	}
	if _, err := RunFigureReplicated("nope", tinyOpts(), 2); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestAggregateFiguresShapeMismatch(t *testing.T) {
	a := &Figure{ID: "x", Series: []Series{{Label: "A", Points: []Point{{CacheFrac: 0.1, Gain: 0.5}}}}}
	b := &Figure{ID: "x", Series: []Series{{Label: "B", Points: []Point{{CacheFrac: 0.1, Gain: 0.5}}}}}
	if _, err := aggregateFigures([]*Figure{a, b}); err == nil {
		t.Error("label mismatch accepted")
	}
	c := &Figure{ID: "x", Series: []Series{{Label: "A"}}}
	if _, err := aggregateFigures([]*Figure{a, c}); err == nil {
		t.Error("point-count mismatch accepted")
	}
	if _, err := aggregateFigures(nil); err == nil {
		t.Error("empty aggregate accepted")
	}
	got, err := aggregateFigures([]*Figure{a, a})
	if err != nil || got.Series[0].Points[0].Gain != 0.5 {
		t.Errorf("identical aggregate wrong: %+v, %v", got, err)
	}
}
