package core

import (
	"fmt"

	"webcache/internal/sim"
	"webcache/internal/trace"
)

// SweepSchemes runs a custom latency-gain sweep: the given schemes
// over the given proxy-cache fractions against an arbitrary trace
// (generated, ingested from Squid logs, or from a preset family).
// The NC baseline is derived from `base` automatically.  This is the
// building block behind every paper figure, exposed for downstream
// experiments.
func SweepSchemes(tr *trace.Trace, base sim.Config, schemes []sim.Scheme, fracs []float64, workers int) (*Figure, error) {
	if tr == nil || len(schemes) == 0 {
		return nil, fmt.Errorf("core: sweep needs a trace and at least one scheme")
	}
	if len(fracs) == 0 {
		fracs = DefaultFracs()
	}
	opts := Options{Workers: workers}
	opts.fill()
	labels := make([]string, len(schemes))
	var jobs []sweepJob
	for si, s := range schemes {
		labels[si] = s.String()
		for pi, frac := range fracs {
			cfg := base
			cfg.Scheme = s
			cfg.ProxyCacheFrac = frac
			ncCfg := base
			ncCfg.Scheme = sim.NC
			ncCfg.ProxyCacheFrac = frac
			jobs = append(jobs, sweepJob{series: si, point: pi, tr: tr, cfg: cfg, ncCfg: ncCfg})
		}
	}
	series, err := runSweep(labels, jobs, opts)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "sweep",
		Title:  "Latency gain vs. proxy cache size (custom sweep)",
		XLabel: "cache size (% of infinite)",
		YLabel: "latency gain (%)",
		Series: series,
	}, nil
}
