// Package core orchestrates the paper's experiments: it generates the
// workloads, sweeps cache sizes and parameters, computes the
// latency-gain metric, and assembles the series behind every figure in
// the evaluation section (§5.2).
//
// Every figure is identified by its paper label ("2a".."5d"); RunFigure
// regenerates it as a Figure (series of latency-gain-vs-cache-size
// points) that cmd/webcachesim prints and EXPERIMENTS.md records.
// Sweep points are independent simulations and run on a worker pool.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webcache/internal/invariant"
	"webcache/internal/netmodel"
	"webcache/internal/obs"
	"webcache/internal/prowgen"
	"webcache/internal/sim"
	"webcache/internal/trace"
)

// Point is one sweep sample: the proxy cache size (fraction of the
// infinite cache size) and the latency gain over NC at that size.
type Point struct {
	CacheFrac  float64
	Gain       float64 // 1 - L/L_NC
	AvgLatency float64
	NCLatency  float64
	// GainCI is the 95% confidence half-width of Gain across seeds;
	// zero for single-replicate runs (see RunFigureReplicated).
	GainCI float64
}

// Series is one curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a regenerated paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Options scales and seeds a figure run.
type Options struct {
	// Scale multiplies the paper's workload size (1.0 = one million
	// requests over 10,000 objects).  Benches and tests use smaller
	// scales; shapes are stable from ~0.05 up.
	Scale float64
	// Fracs overrides the cache-size sweep (default 10%..100%).
	Fracs []float64
	// Workers bounds sweep parallelism (default NumCPU).
	Workers int
	// Seed drives workload generation and simulation.
	Seed int64
	// Progress, if non-nil, is called after every completed sweep job
	// with the cumulative finished count and the figure's job total —
	// the hook behind webcachesim's -progress live ETA display.
	// Callbacks may arrive concurrently from the worker pool.
	Progress func(done, total int)
	// Obs, if non-nil, receives sweep instrumentation: per-job timing
	// ("core.sweep.job"), job counts, and worker utilization, plus
	// every run's sim.* metrics (the registry is passed down into each
	// simulation).  See METRICS.md.
	Obs *obs.Registry
	// Check, if non-nil, threads the invariant subsystem into every
	// simulation of the sweep (shadow-checked policies, directory and
	// ring oracles, P2P conservation — see DESIGN.md).  The Checker is
	// concurrency-safe, so all sweep workers share it.
	Check *invariant.Checker
}

func (o *Options) fill() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if len(o.Fracs) == 0 {
		o.Fracs = DefaultFracs()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
}

// DefaultFracs is the paper's x-axis: 10%..100% in steps of 10.
func DefaultFracs() []float64 {
	out := make([]float64, 10)
	for i := range out {
		out[i] = float64(i+1) / 10
	}
	return out
}

// paperTrace generates the default synthetic workload at the given
// scale (paper §5.1: 1M requests, 10k objects, 50% one-timers, α=0.7).
// clients == 0 uses the generator default; figures with large
// client->proxy mappings (5c, 5d) pass the population they need.
func paperTrace(scale float64, seed int64, alpha, stackFrac float64, clients int) (*trace.Trace, error) {
	cfg := prowgen.Config{
		NumRequests:  int(float64(prowgen.DefaultNumRequests) * scale),
		NumObjects:   int(float64(prowgen.DefaultNumObjects) * scale),
		NumClients:   clients,
		OneTimerFrac: prowgen.DefaultOneTimerFrac,
		Alpha:        alpha,
		StackFrac:    stackFrac,
		Seed:         seed,
	}
	if cfg.NumClients == 0 {
		cfg.NumClients = prowgen.DefaultNumClients
	}
	if cfg.NumObjects < 200 {
		cfg.NumObjects = 200
	}
	if cfg.NumRequests < 20*cfg.NumObjects {
		cfg.NumRequests = 20 * cfg.NumObjects
	}
	// Every client must appear often enough that each cluster sees a
	// meaningful reference stream.
	if cfg.NumRequests < 30*cfg.NumClients {
		cfg.NumRequests = 30 * cfg.NumClients
	}
	return prowgen.Generate(cfg)
}

// sweepJob is one (series, point) simulation.
type sweepJob struct {
	series, point int
	tr            *trace.Trace
	cfg           sim.Config
	ncCfg         sim.Config
}

// runSweep executes jobs on a worker pool and assembles the points.
// The NC baseline for each distinct baseline configuration is computed
// once and shared.  Each job is timed into opts.Obs ("core.sweep.job",
// with the baseline computation under "core.sweep.baseline") and
// opts.Progress is notified as jobs complete; after the pool drains,
// worker utilization (busy time over workers x wall time) is recorded.
func runSweep(labels []string, jobs []sweepJob, opts Options) ([]Series, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	series := make([]Series, len(labels))
	for i, l := range labels {
		series[i] = Series{Label: l, Points: make([]Point, 0)}
	}
	type slot struct {
		p   Point
		err error
	}
	results := make([][]slot, len(labels))
	counts := make([]int, len(labels))
	for _, j := range jobs {
		if j.point+1 > counts[j.series] {
			counts[j.series] = j.point + 1
		}
	}
	for i := range results {
		results[i] = make([]slot, counts[i])
	}

	// NC baselines keyed by the parts of the config that affect NC.
	type ncKey struct {
		frac    float64
		proxies int
		cpc     int
		net     netmodel.Model
		tr      *trace.Trace
	}
	var baseMu sync.Mutex
	baselines := map[ncKey]float64{}

	baseline := func(j sweepJob) (float64, error) {
		k := ncKey{j.ncCfg.ProxyCacheFrac, j.ncCfg.NumProxies, j.ncCfg.ClientsPerCluster, j.ncCfg.Net, j.tr}
		baseMu.Lock()
		v, ok := baselines[k]
		baseMu.Unlock()
		if ok {
			return v, nil
		}
		defer opts.Obs.Timer("core.sweep.baseline").Start()()
		ncCfg := j.ncCfg
		ncCfg.Obs = opts.Obs
		ncCfg.Check = opts.Check
		res, err := sim.Run(j.tr, ncCfg)
		if err != nil {
			return 0, err
		}
		baseMu.Lock()
		baselines[k] = res.AvgLatency
		baseMu.Unlock()
		return res.AvgLatency, nil
	}

	// One work-stealing pass replaces the old semaphore pool (and its
	// duplicated instrumented/plain loops): jobs are dealt across
	// per-worker queues and idle workers steal from loaded ones, so the
	// pool saturates even when series have very uneven costs.  All
	// instrumentation is nil-safe and costs one no-op call per job —
	// noise against jobs that are whole trace replays.  Results are
	// slot-addressed by (series, point), so the steal schedule cannot
	// affect output order (see scheduler.go).
	jobTimer := opts.Obs.Timer("core.sweep.job")
	var done atomic.Int64
	start := time.Now()
	nworkers := workers
	if nworkers > len(jobs) {
		nworkers = len(jobs)
	}
	if nworkers < 1 {
		nworkers = 1
	}
	sch := newStealScheduler(nworkers, len(jobs))
	sch.run(func(ji int) {
		j := jobs[ji]
		defer jobTimer.Start()()
		if opts.Progress != nil {
			defer func() { opts.Progress(int(done.Add(1)), len(jobs)) }()
		}
		nc, err := baseline(j)
		if err != nil {
			results[j.series][j.point] = slot{err: err}
			return
		}
		cfg := j.cfg
		cfg.Obs = opts.Obs
		cfg.Check = opts.Check
		res, err := sim.Run(j.tr, cfg)
		if err != nil {
			results[j.series][j.point] = slot{err: err}
			return
		}
		results[j.series][j.point] = slot{p: Point{
			CacheFrac:  j.cfg.ProxyCacheFrac,
			Gain:       netmodel.Gain(res.AvgLatency, nc),
			AvgLatency: res.AvgLatency,
			NCLatency:  nc,
		}}
	})

	if opts.Obs.Enabled() {
		opts.Obs.Counter("core.sweep.jobs").Add(int64(len(jobs)))
		opts.Obs.Gauge("core.sweep.workers").Set(float64(nworkers))
		opts.Obs.Counter("core.sweep.steals").Add(sch.steals.Load())
		opts.Obs.Counter("core.sweep.steal_jobs").Add(sch.stolenJobs.Load())
		// Busy time over the pool's total capacity: 1.0 means every
		// worker computed the whole time (jobs may outnumber
		// workers, so utilization is also capped by job
		// granularity).
		if wall := time.Since(start).Seconds(); wall > 0 {
			util := jobTimer.Total().Seconds() / (wall * float64(nworkers))
			opts.Obs.Gauge("core.sweep.worker_utilization").Set(util)
		}
	}

	for si := range results {
		for _, s := range results[si] {
			if s.err != nil {
				return nil, s.err
			}
			series[si].Points = append(series[si].Points, s.p)
		}
		sort.Slice(series[si].Points, func(a, b int) bool {
			return series[si].Points[a].CacheFrac < series[si].Points[b].CacheFrac
		})
	}
	return series, nil
}

// FigureIDs lists the reproducible figures in paper order.
func FigureIDs() []string {
	return []string{"2a", "2b", "3", "4", "5a", "5b", "5c", "5d"}
}

// RunFigure regenerates the figure with the given paper label.
func RunFigure(id string, opts Options) (*Figure, error) {
	opts.fill()
	switch id {
	case "2a":
		return Fig2a(opts)
	case "2b":
		return Fig2b(opts)
	case "3":
		return Fig3(opts)
	case "4":
		return Fig4(opts)
	case "5a":
		return Fig5a(opts)
	case "5b":
		return Fig5b(opts)
	case "5c":
		return Fig5c(opts)
	case "5d":
		return Fig5d(opts)
	default:
		return nil, fmt.Errorf("core: unknown figure %q (have %v)", id, FigureIDs())
	}
}
