package core

import (
	"strings"
	"testing"
)

// tinyOpts keeps figure runs fast: a few percent of the paper's
// workload and a coarse sweep.
func tinyOpts() Options {
	return Options{
		Scale: 0.05,
		Fracs: []float64{0.1, 0.5, 0.9},
		Seed:  1,
	}
}

func TestFigureIDsAllRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are slow")
	}
	for _, id := range FigureIDs() {
		id := id
		t.Run("fig"+id, func(t *testing.T) {
			t.Parallel()
			opts := tinyOpts()
			if id == "3" || id == "4" || id == "5c" {
				opts.Fracs = []float64{0.1, 0.9} // 12+ series: keep it quick
			}
			f, err := RunFigure(id, opts)
			if err != nil {
				t.Fatal(err)
			}
			if f.ID != id || len(f.Series) == 0 {
				t.Fatalf("figure %q malformed: %+v", id, f)
			}
			for _, s := range f.Series {
				if len(s.Points) != len(opts.Fracs) {
					t.Errorf("series %q has %d points, want %d", s.Label, len(s.Points), len(opts.Fracs))
				}
				for _, p := range s.Points {
					if p.NCLatency <= 0 || p.AvgLatency <= 0 {
						t.Errorf("series %q: bad latencies %+v", s.Label, p)
					}
					if p.Gain < -0.2 || p.Gain > 1 {
						t.Errorf("series %q: gain %g out of range", s.Label, p.Gain)
					}
				}
			}
		})
	}
}

func TestRunFigureUnknown(t *testing.T) {
	if _, err := RunFigure("99z", tinyOpts()); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestFig2aShape(t *testing.T) {
	f, err := Fig2a(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape checks at the smallest cache size: EC schemes beat
	// their plain counterparts; FC-EC bounds everything.
	get := func(label string) float64 {
		s, ok := f.SeriesByLabel(label)
		if !ok {
			t.Fatalf("missing series %q", label)
		}
		g, ok := s.GainAt(0.1)
		if !ok {
			t.Fatalf("series %q missing 10%% point", label)
		}
		return g
	}
	sc, scec := get("SC"), get("SC-EC")
	fc, fcec := get("FC"), get("FC-EC")
	hg, ncec := get("Hier-GD"), get("NC-EC")
	if scec <= sc {
		t.Errorf("SC-EC (%.3f) <= SC (%.3f) at 10%%", scec, sc)
	}
	if fcec < fc {
		t.Errorf("FC-EC (%.3f) < FC (%.3f) at 10%%", fcec, fc)
	}
	for name, g := range map[string]float64{"SC": sc, "SC-EC": scec, "FC": fc, "Hier-GD": hg, "NC-EC": ncec} {
		if g > fcec+1e-9 {
			t.Errorf("%s (%.3f) above FC-EC upper bound (%.3f)", name, g, fcec)
		}
		if g <= 0 {
			t.Errorf("%s gain %.3f not positive at 10%%", name, g)
		}
	}
	if hg <= sc {
		t.Errorf("Hier-GD (%.3f) <= SC (%.3f) at 10%%", hg, sc)
	}
}

func TestFormatTable(t *testing.T) {
	f := &Figure{
		ID: "x", Title: "test",
		Series: []Series{
			{Label: "A", Points: []Point{{CacheFrac: 0.1, Gain: 0.5}, {CacheFrac: 0.2, Gain: 0.25}}},
			{Label: "B", Points: []Point{{CacheFrac: 0.1, Gain: 0.75}}},
		},
	}
	out := FormatTable(f)
	for _, want := range []string{"Figure x", "cache%", "A", "B", "50.0", "75.0", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	md := FormatMarkdown(f)
	for _, want := range []string{"| cache% |", "| A |", "|---|", "| 50.0 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestDefaultFracs(t *testing.T) {
	fr := DefaultFracs()
	if len(fr) != 10 || fr[0] != 0.1 || fr[9] != 1.0 {
		t.Errorf("default fracs = %v", fr)
	}
}

func TestSeriesHelpers(t *testing.T) {
	f := &Figure{Series: []Series{{Label: "A", Points: []Point{{CacheFrac: 0.3, Gain: 0.1}}}}}
	if _, ok := f.SeriesByLabel("missing"); ok {
		t.Error("found missing series")
	}
	s, ok := f.SeriesByLabel("A")
	if !ok {
		t.Fatal("missing series A")
	}
	if _, ok := s.GainAt(0.5); ok {
		t.Error("found missing point")
	}
	if g, ok := s.GainAt(0.3); !ok || g != 0.1 {
		t.Errorf("GainAt = %v %v", g, ok)
	}
}

func TestPaperTraceScalesFloors(t *testing.T) {
	tr, err := paperTrace(0.001, 1, 0.7, 0.2, 0) // tiny scale hits the floors
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumObjects < 200 {
		t.Errorf("objects %d below floor", tr.NumObjects)
	}
	if tr.Len() < 20*tr.NumObjects {
		t.Errorf("requests %d below floor", tr.Len())
	}
}
