package core

import (
	"fmt"

	"webcache/internal/stats"
)

// RunFigureReplicated regenerates a figure `replicates` times with
// consecutive seeds (workload and simulation randomness both re-drawn)
// and aggregates each point across replicates: Gain becomes the mean
// and GainCI its 95% Student-t confidence half-width.  This is the
// statistically honest form of every figure: the paper reports single
// simulation runs, and the confidence intervals here quantify how much
// seed noise its curves carry.
func RunFigureReplicated(id string, opts Options, replicates int) (*Figure, error) {
	if replicates < 1 {
		return nil, fmt.Errorf("core: replicates must be >= 1 (got %d)", replicates)
	}
	opts.fill()
	var figs []*Figure
	for r := 0; r < replicates; r++ {
		o := opts
		o.Seed = opts.Seed + int64(r)
		f, err := RunFigure(id, o)
		if err != nil {
			return nil, fmt.Errorf("core: replicate %d: %w", r, err)
		}
		figs = append(figs, f)
	}
	return aggregateFigures(figs)
}

// aggregateFigures folds same-shaped figures into one with mean gains
// and confidence intervals.
func aggregateFigures(figs []*Figure) (*Figure, error) {
	if len(figs) == 0 {
		return nil, fmt.Errorf("core: nothing to aggregate")
	}
	base := figs[0]
	out := &Figure{ID: base.ID, Title: base.Title, XLabel: base.XLabel, YLabel: base.YLabel}
	for si, s := range base.Series {
		agg := Series{Label: s.Label}
		for pi, p := range s.Points {
			gains := make([]float64, 0, len(figs))
			lats := make([]float64, 0, len(figs))
			ncs := make([]float64, 0, len(figs))
			for _, f := range figs {
				if si >= len(f.Series) || pi >= len(f.Series[si].Points) {
					return nil, fmt.Errorf("core: replicate shape mismatch in series %q", s.Label)
				}
				if f.Series[si].Label != s.Label {
					return nil, fmt.Errorf("core: replicate series order mismatch: %q vs %q",
						f.Series[si].Label, s.Label)
				}
				rp := f.Series[si].Points[pi]
				gains = append(gains, rp.Gain)
				lats = append(lats, rp.AvgLatency)
				ncs = append(ncs, rp.NCLatency)
			}
			gSum, err := stats.Summarize(gains)
			if err != nil {
				return nil, err
			}
			lMean, _ := stats.Mean(lats)
			ncMean, _ := stats.Mean(ncs)
			agg.Points = append(agg.Points, Point{
				CacheFrac:  p.CacheFrac,
				Gain:       gSum.Mean,
				GainCI:     gSum.CI95,
				AvgLatency: lMean,
				NCLatency:  ncMean,
			})
		}
		out.Series = append(out.Series, agg)
	}
	return out, nil
}
