package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync/atomic"
	"testing"

	"webcache/internal/prowgen"
	"webcache/internal/sim"
)

// TestSweepSchedulerDeterminism is the property the scheduler's design
// comment promises: any worker count — and therefore any steal
// interleaving — assembles bit-identical ordered results, because
// every job writes into a slot addressed by (series, point), never by
// completion order.  The property is checked on a real sweep (three
// schemes over four fractions, 12 heterogeneous jobs) by digesting the
// marshalled Figure under worker counts from serial to oversubscribed.
func TestSweepSchedulerDeterminism(t *testing.T) {
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests: 6000,
		NumObjects:  600,
		NumClients:  60,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Config{ClientsPerCluster: 16, Seed: 7}
	schemes := []sim.Scheme{sim.SC, sim.FCEC, sim.HierGD}
	fracs := []float64{0.05, 0.1, 0.3, 0.5}

	digest := func(workers int) string {
		t.Helper()
		fig, err := SweepSchemes(tr, base, schemes, fracs, workers)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(fig.Series)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(blob)
		return hex.EncodeToString(sum[:])
	}

	want := digest(1) // serial: the schedule-free reference
	for _, workers := range []int{2, 3, 5, 16} {
		if got := digest(workers); got != want {
			t.Errorf("sweep with %d workers diverged from serial: %s != %s", workers, got, want)
		}
	}
}

// TestRunJobsCoversEveryJobOnce sweeps the (workers, jobs) grid and
// checks the scheduler's contract: every job index executes exactly
// once, for any pool size including oversubscribed and degenerate
// ones.
func TestRunJobsCoversEveryJobOnce(t *testing.T) {
	for _, nworkers := range []int{-1, 0, 1, 2, 3, 7, 64} {
		for _, njobs := range []int{0, 1, 2, 5, 31, 100} {
			ran := make([]atomic.Int32, njobs)
			RunJobs(nworkers, njobs, func(j int) { ran[j].Add(1) })
			for j := range ran {
				if got := ran[j].Load(); got != 1 {
					t.Fatalf("workers=%d jobs=%d: job %d ran %d times, want 1", nworkers, njobs, j, got)
				}
			}
		}
	}
}

// TestStealSchedulerStress hammers the queues under the race detector
// (make check runs this package with -race): many more jobs than
// workers, with job bodies skewed so the early queues drain first and
// the pool must steal.  The assertions are the coverage contract plus
// steal-counter sanity; the real assertion is the detector finding no
// data race in pop/stealFrom/next.
func TestStealSchedulerStress(t *testing.T) {
	const njobs, nworkers = 400, 8
	for round := 0; round < 10; round++ {
		var sum atomic.Int64
		ran := make([]atomic.Int32, njobs)
		s := newStealScheduler(nworkers, njobs)
		s.run(func(j int) {
			// Skewed spin: low-indexed jobs are nearly free, the tail is
			// heavy, so ownership queues go idle at different times.
			spin := (j % 17) * (j % 17) * 40
			for i := 0; i < spin; i++ {
				sum.Add(1)
			}
			ran[j].Add(1)
		})
		for j := range ran {
			if got := ran[j].Load(); got != 1 {
				t.Fatalf("round %d: job %d ran %d times, want 1", round, j, got)
			}
		}
		if s.steals.Load() < 0 || s.stolenJobs.Load() < s.steals.Load() {
			t.Fatalf("round %d: steal counters inconsistent: %d steals, %d stolen jobs",
				round, s.steals.Load(), s.stolenJobs.Load())
		}
	}
}
