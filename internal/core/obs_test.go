package core

import (
	"sync"
	"testing"

	"webcache/internal/obs"
)

// TestSweepProgressAndObs runs one small figure with both observability
// hooks attached: the progress callback must walk monotonically to the
// job total, and the registry must capture sweep timing, worker
// utilization, and the per-run sim.* metrics.
func TestSweepProgressAndObs(t *testing.T) {
	reg := obs.NewRegistry("test-sweep")
	var mu sync.Mutex
	var lastDone, total, calls int
	opts := tinyOpts()
	opts.Obs = reg
	opts.Progress = func(done, tot int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done > lastDone {
			lastDone = done
		}
		total = tot
	}

	fig, err := Fig2a(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) == 0 {
		t.Fatal("empty figure")
	}

	wantJobs := 0
	for _, s := range fig.Series {
		wantJobs += len(s.Points)
	}
	if total != wantJobs {
		t.Fatalf("progress total = %d, want %d jobs", total, wantJobs)
	}
	if lastDone != total {
		t.Fatalf("final progress %d/%d — callback must reach the total", lastDone, total)
	}
	if calls != total {
		t.Fatalf("progress called %d times, want once per job (%d)", calls, total)
	}

	vals := reg.Values()
	if vals["core.sweep.jobs"] != float64(wantJobs) {
		t.Fatalf("core.sweep.jobs = %g, want %d", vals["core.sweep.jobs"], wantJobs)
	}
	if vals["core.sweep.job.count"] != float64(wantJobs) {
		t.Fatalf("core.sweep.job.count = %g, want %d", vals["core.sweep.job.count"], wantJobs)
	}
	if vals["core.sweep.job.seconds"] <= 0 {
		t.Fatal("job timer recorded no time")
	}
	util := vals["core.sweep.worker_utilization"]
	if util <= 0 || util > 1.5 {
		t.Fatalf("worker utilization = %g, want (0, ~1]", util)
	}
	// The sweep's simulations must have published their telemetry:
	// every job plus at least one shared NC baseline per cache size.
	if runs := vals["sim.runs"]; runs <= float64(wantJobs) {
		t.Fatalf("sim.runs = %g, want > %d (jobs + NC baselines)", runs, wantJobs)
	}
	if vals["sim.requests"] <= 0 || vals["sim.serves.server"] <= 0 {
		t.Fatalf("sim metrics missing from sweep registry: %v", vals)
	}
}
