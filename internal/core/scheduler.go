package core

import (
	"sync"
	"sync/atomic"
)

// stealScheduler runs a fixed batch of independent jobs on a
// work-stealing worker pool.  Jobs are dealt round-robin into
// per-worker queues; a worker drains its own queue from the front and,
// when empty, steals the back half of the first non-empty victim
// queue.  Because the job set is fixed (jobs never spawn jobs), a
// worker that scans every queue and finds nothing can exit: no queued
// work remains, and jobs still executing on other workers produce no
// new ones.
//
// Determinism does not depend on the schedule: every job writes its
// result into a slot addressed by the job itself (series, point), so
// any worker count — and any steal interleaving — assembles the same
// ordered output.  That argument lives in DESIGN.md §14 and is
// property-tested by TestSweepSchedulerDeterminism.
type stealScheduler struct {
	queues []jobQueue
	// steals counts successful steal operations (batches moved);
	// stolenJobs counts the jobs those batches carried.
	steals     atomic.Int64
	stolenJobs atomic.Int64
}

type jobQueue struct {
	mu   sync.Mutex
	jobs []int // indices into the caller's job slice
}

// newStealScheduler deals njobs indices round-robin across nworkers
// queues, so heterogeneous job costs start evenly spread.
func newStealScheduler(nworkers, njobs int) *stealScheduler {
	s := &stealScheduler{queues: make([]jobQueue, nworkers)}
	for i := 0; i < njobs; i++ {
		q := &s.queues[i%nworkers]
		q.jobs = append(q.jobs, i)
	}
	return s
}

// pop takes the next job from the front of the worker's own queue.
func (q *jobQueue) pop() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) == 0 {
		return 0, false
	}
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	return j, true
}

// stealFrom moves the back half of the victim's queue out.  The slice
// is copied under the victim's lock so the thief can append to its own
// queue without holding two locks (no lock-order cycle).
func (q *jobQueue) stealFrom() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.jobs)
	if n == 0 {
		return nil
	}
	take := (n + 1) / 2
	stolen := make([]int, take)
	copy(stolen, q.jobs[n-take:])
	q.jobs = q.jobs[:n-take]
	return stolen
}

// next returns the worker's next job: its own queue first, then a
// steal scan over the other queues.  ok=false means the whole batch
// is drained (for this worker) and the worker should exit.
func (s *stealScheduler) next(w int) (int, bool) {
	if j, ok := s.queues[w].pop(); ok {
		return j, true
	}
	n := len(s.queues)
	for off := 1; off < n; off++ {
		stolen := s.queues[(w+off)%n].stealFrom()
		if len(stolen) == 0 {
			continue
		}
		s.steals.Add(1)
		s.stolenJobs.Add(int64(len(stolen)))
		q := &s.queues[w]
		q.mu.Lock()
		q.jobs = append(q.jobs, stolen...)
		q.mu.Unlock()
		if j, ok := q.pop(); ok {
			return j, true
		}
	}
	return 0, false
}

// RunJobs executes exec(0..njobs-1) across the work-stealing pool with
// up to nworkers workers and blocks until every job completes.  It is
// the sweep scheduler behind runSweep, exported for drivers that batch
// independent simulator replays (hiergdd bench -sim).  The returned
// count is the number of successful steal operations (telemetry).
func RunJobs(nworkers, njobs int, exec func(job int)) (steals int64) {
	if nworkers > njobs {
		nworkers = njobs
	}
	if nworkers < 1 {
		nworkers = 1
	}
	s := newStealScheduler(nworkers, njobs)
	s.run(exec)
	return s.steals.Load()
}

// run executes exec(jobIndex) for every dealt job across the pool and
// blocks until all workers drain.
func (s *stealScheduler) run(exec func(jobIndex int)) {
	var wg sync.WaitGroup
	for w := range s.queues {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				j, ok := s.next(w)
				if !ok {
					return
				}
				exec(j)
			}
		}(w)
	}
	wg.Wait()
}
