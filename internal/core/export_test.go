package core

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func exportFixture() *Figure {
	return &Figure{
		ID: "2a", Title: "test figure", XLabel: "cache", YLabel: "gain",
		Series: []Series{
			{Label: "SC", Points: []Point{
				{CacheFrac: 0.1, Gain: 0.12, AvgLatency: 0.3, NCLatency: 0.4},
				{CacheFrac: 0.2, Gain: 0.15, AvgLatency: 0.28, NCLatency: 0.4},
			}},
			{Label: "Hier-GD", Points: []Point{
				{CacheFrac: 0.1, Gain: 0.7, AvgLatency: 0.1, NCLatency: 0.4},
				{CacheFrac: 0.2, Gain: 0.72, AvgLatency: 0.09, NCLatency: 0.4},
			}},
		},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	f := exportFixture()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, f)
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestWriteDAT(t *testing.T) {
	f := exportFixture()
	var buf bytes.Buffer
	if err := WriteDAT(&buf, f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Figure 2a", `"SC"`, `"Hier-GD"`, "10\t12.0000\t70.0000", "20\t15.0000\t72.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("dat missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ci") {
		t.Error("CI columns present without replicated data")
	}
}

func TestWriteDATWithCI(t *testing.T) {
	f := exportFixture()
	f.Series[0].Points[0].GainCI = 0.02
	var buf bytes.Buffer
	if err := WriteDAT(&buf, f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"SC ci"`) {
		t.Errorf("missing CI header:\n%s", out)
	}
	if !strings.Contains(out, "12.0000\t2.0000") {
		t.Errorf("missing CI value:\n%s", out)
	}
}

func TestWriteDATRaggedSeries(t *testing.T) {
	f := exportFixture()
	f.Series[1].Points = f.Series[1].Points[:1]
	var buf bytes.Buffer
	if err := WriteDAT(&buf, f); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nan") {
		t.Error("ragged series should emit nan")
	}
}

func TestExportGnuplot(t *testing.T) {
	dir := t.TempDir()
	f := exportFixture()
	if err := ExportGnuplot(dir, f); err != nil {
		t.Fatal(err)
	}
	dat, err := os.ReadFile(filepath.Join(dir, "fig2a.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dat), "# Figure 2a") {
		t.Error("dat header missing")
	}
	gp, err := os.ReadFile(filepath.Join(dir, "fig2a.gp"))
	if err != nil {
		t.Fatal(err)
	}
	script := string(gp)
	for _, want := range []string{"set output", "fig2a.dat", `using 1:2`, `using 1:3`, `"SC"`, `"Hier-GD"`, "linespoints"} {
		if !strings.Contains(script, want) {
			t.Errorf("gp script missing %q:\n%s", want, script)
		}
	}
}

func TestExportGnuplotWithCI(t *testing.T) {
	dir := t.TempDir()
	f := exportFixture()
	f.Series[0].Points[0].GainCI = 0.02
	if err := ExportGnuplot(dir, f); err != nil {
		t.Fatal(err)
	}
	gp, err := os.ReadFile(filepath.Join(dir, "fig2a.gp"))
	if err != nil {
		t.Fatal(err)
	}
	script := string(gp)
	for _, want := range []string{"yerrorlines", "using 1:2:3", "using 1:4:5"} {
		if !strings.Contains(script, want) {
			t.Errorf("CI gp script missing %q:\n%s", want, script)
		}
	}
}
