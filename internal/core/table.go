package core

import (
	"fmt"
	"strings"
)

// FormatTable renders a figure as the aligned text table the CLI
// prints and EXPERIMENTS.md records: one row per cache size, one
// column per series, cells in percent latency gain.
func FormatTable(f *Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", f.ID, f.Title)
	// Collect the x values from the longest series.
	var xs []float64
	for _, s := range f.Series {
		if len(s.Points) > len(xs) {
			xs = xs[:0]
			for _, p := range s.Points {
				xs = append(xs, p.CacheFrac)
			}
		}
	}
	width := 12
	for _, s := range f.Series {
		if len(s.Label)+2 > width {
			width = len(s.Label) + 2
		}
	}
	fmt.Fprintf(&b, "%-10s", "cache%")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%*s", width, s.Label)
	}
	b.WriteByte('\n')
	for i, x := range xs {
		fmt.Fprintf(&b, "%-10.0f", x*100)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "%*.1f", width, s.Points[i].Gain*100)
			} else {
				fmt.Fprintf(&b, "%*s", width, "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatMarkdown renders a figure as a GitHub-flavoured markdown table
// for EXPERIMENTS.md.
func FormatMarkdown(f *Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| cache%% |")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %s |", s.Label)
	}
	b.WriteString("\n|---|")
	for range f.Series {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	var xs []float64
	for _, s := range f.Series {
		if len(s.Points) > len(xs) {
			xs = xs[:0]
			for _, p := range s.Points {
				xs = append(xs, p.CacheFrac)
			}
		}
	}
	for i, x := range xs {
		fmt.Fprintf(&b, "| %.0f |", x*100)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, " %.1f |", s.Points[i].Gain*100)
			} else {
				fmt.Fprintf(&b, " - |")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SeriesByLabel finds a series by its label.
func (f *Figure) SeriesByLabel(label string) (Series, bool) {
	for _, s := range f.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

// GainAt returns the series' gain at the given cache fraction.
func (s Series) GainAt(frac float64) (float64, bool) {
	for _, p := range s.Points {
		if p.CacheFrac == frac {
			return p.Gain, true
		}
	}
	return 0, false
}
