package core

import (
	"testing"

	"webcache/internal/prowgen"
	"webcache/internal/sim"
)

func TestSweepSchemes(t *testing.T) {
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests: 40_000, NumObjects: 1_500, NumClients: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fig, err := SweepSchemes(tr, sim.Config{Seed: 1}, []sim.Scheme{sim.SC, sim.HierGD}, []float64{0.1, 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %q points = %d", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Gain <= 0 {
				t.Errorf("series %q gain %.3f at %.0f%%", s.Label, p.Gain, 100*p.CacheFrac)
			}
		}
	}
	// Squirrel is sweepable too (not one of the paper's seven).
	fig, err = SweepSchemes(tr, sim.Config{Seed: 1}, []sim.Scheme{sim.Squirrel}, []float64{0.2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Series[0].Label != "Squirrel" {
		t.Errorf("label %q", fig.Series[0].Label)
	}
}

func TestSweepSchemesDefaultsAndValidation(t *testing.T) {
	if _, err := SweepSchemes(nil, sim.Config{}, []sim.Scheme{sim.SC}, nil, 0); err == nil {
		t.Error("nil trace accepted")
	}
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests: 30_000, NumObjects: 1_000, NumClients: 200, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SweepSchemes(tr, sim.Config{}, nil, nil, 0); err == nil {
		t.Error("no schemes accepted")
	}
	// Default fracs (10 points) and default workers.
	fig, err := SweepSchemes(tr, sim.Config{Seed: 1}, []sim.Scheme{sim.SC}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series[0].Points) != 10 {
		t.Errorf("default sweep points = %d", len(fig.Series[0].Points))
	}
}
