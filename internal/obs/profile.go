package obs

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns
// the function that stops profiling and closes the file.  Wire it to
// a -cpuprofile flag:
//
//	stop, err := obs.StartCPUProfile(*cpuprofile)
//	...
//	defer stop()
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: starting CPU profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects (so the profile reflects live
// objects) and writes an allocation profile to path, for -memprofile.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// ServePprof exposes net/http/pprof on addr in a background
// goroutine, for the long-running daemons' -pprof flag.  The error
// channel receives the listener failure, if any.
func ServePprof(addr string) <-chan error {
	errc := make(chan error, 1)
	go func() { errc <- http.ListenAndServe(addr, nil) }()
	return errc
}
