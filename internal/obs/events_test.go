package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestEventLogJSONLAndTail(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog("proxy-0", &buf)
	l.Emit("fleet.join", map[string]string{"peer": "127.0.0.1:9"})
	l.Emit("breaker.open", nil)
	if l.Total() != 2 {
		t.Fatalf("total = %d", l.Total())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Source != "proxy-0" || ev.Type != "fleet.join" || ev.Fields["peer"] != "127.0.0.1:9" || ev.Time.IsZero() {
		t.Fatalf("event = %+v", ev)
	}
	recent := l.Recent(10)
	if len(recent) != 2 || recent[0].Type != "fleet.join" || recent[1].Type != "breaker.open" {
		t.Fatalf("recent = %+v", recent)
	}
}

func TestEventLogRingRotation(t *testing.T) {
	l := NewEventLog("x", nil)
	for i := 0; i < eventTail+10; i++ {
		l.Emit("tick", nil)
	}
	l.Emit("last", nil)
	recent := l.Recent(5)
	if len(recent) != 5 || recent[4].Type != "last" {
		t.Fatalf("tail after rotation = %+v", recent)
	}
	if l.Total() != int64(eventTail)+11 {
		t.Fatalf("total = %d", l.Total())
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit("x", nil)
	if l.Recent(3) != nil || l.Total() != 0 {
		t.Fatal("nil event log did something")
	}
}
