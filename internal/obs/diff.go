package obs

import (
	"fmt"
	"math"
	"strings"
)

// Manifest diffing: make two BENCH_*.json (or any -manifest) documents
// mechanically comparable.  Two manifests are comparable only when
// their schema version and workload fingerprint agree — otherwise the
// metric deltas would compare different experiments — so DiffManifests
// refuses mismatches unless forced.

// MetricDelta is one metric's change between two manifests.
type MetricDelta struct {
	Name  string  `json:"name"`
	A     float64 `json:"a"`
	B     float64 `json:"b"`
	Delta float64 `json:"delta"` // B - A
	// Ratio is B/A (NaN when A is zero and B is not; 1 when both are
	// zero).
	Ratio float64 `json:"ratio"`
}

// ManifestDiff is the comparison of two run manifests.
type ManifestDiff struct {
	ToolA       string        `json:"tool_a,omitempty"`
	ToolB       string        `json:"tool_b,omitempty"`
	VersionA    string        `json:"version_a,omitempty"`
	VersionB    string        `json:"version_b,omitempty"`
	Fingerprint string        `json:"fingerprint,omitempty"`
	Changed     []MetricDelta `json:"changed,omitempty"`
	Unchanged   int           `json:"unchanged"`
	OnlyA       []string      `json:"only_a,omitempty"`
	OnlyB       []string      `json:"only_b,omitempty"`
	WallA       float64       `json:"wall_a,omitempty"`
	WallB       float64       `json:"wall_b,omitempty"`
}

// fingerprint pulls the workload content hash out of a manifest's
// trace block ("" when absent).
func fingerprint(m *Manifest) string {
	if m == nil || m.Trace == nil {
		return ""
	}
	fp, _ := m.Trace["fingerprint"].(string)
	return fp
}

// DiffManifests compares two manifests metric by metric.  It refuses
// mismatched schema versions or workload fingerprints (the runs are
// not comparable) unless force is set.
func DiffManifests(a, b *Manifest, force bool) (*ManifestDiff, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("obs: diff needs two manifests")
	}
	if a.Schema != b.Schema {
		return nil, fmt.Errorf("obs: manifest schemas differ (%d vs %d); not comparable", a.Schema, b.Schema)
	}
	fpA, fpB := fingerprint(a), fingerprint(b)
	if fpA != fpB && !force {
		return nil, fmt.Errorf("obs: workload fingerprints differ (%q vs %q); the runs replay different traces — pass force to diff anyway", fpA, fpB)
	}
	d := &ManifestDiff{
		ToolA: a.Tool, ToolB: b.Tool,
		VersionA: a.Version, VersionB: b.Version,
		Fingerprint: fpA,
		WallA:       a.WallSeconds, WallB: b.WallSeconds,
	}
	for _, name := range sortedNames(a.Metrics) {
		va := a.Metrics[name]
		vb, ok := b.Metrics[name]
		if !ok {
			d.OnlyA = append(d.OnlyA, name)
			continue
		}
		if va == vb {
			d.Unchanged++
			continue
		}
		ratio := math.NaN()
		switch {
		case va != 0:
			ratio = vb / va
		case vb == 0:
			ratio = 1
		}
		d.Changed = append(d.Changed, MetricDelta{Name: name, A: va, B: vb, Delta: vb - va, Ratio: ratio})
	}
	for _, name := range sortedNames(b.Metrics) {
		if _, ok := a.Metrics[name]; !ok {
			d.OnlyB = append(d.OnlyB, name)
		}
	}
	return d, nil
}

// String renders the diff as an aligned table: changed metrics with
// absolute and relative deltas, then the names present on one side
// only.
func (d *ManifestDiff) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "manifests: %s (%s) vs %s (%s)", d.ToolA, orDash(d.VersionA), d.ToolB, orDash(d.VersionB))
	if d.Fingerprint != "" {
		fmt.Fprintf(&b, "  workload %s", d.Fingerprint)
	}
	fmt.Fprintf(&b, "\nwall: %.3fs vs %.3fs\n", d.WallA, d.WallB)
	if len(d.Changed) == 0 {
		fmt.Fprintf(&b, "metrics: %d compared, none changed\n", d.Unchanged)
	} else {
		fmt.Fprintf(&b, "metrics: %d changed, %d unchanged\n", len(d.Changed), d.Unchanged)
		fmt.Fprintf(&b, "%-44s %16s %16s %14s %9s\n", "metric", "a", "b", "delta", "ratio")
		for _, c := range d.Changed {
			ratio := "-"
			if !math.IsNaN(c.Ratio) {
				ratio = fmt.Sprintf("%.4g", c.Ratio)
			}
			fmt.Fprintf(&b, "%-44s %16.6g %16.6g %+14.6g %9s\n", c.Name, c.A, c.B, c.Delta, ratio)
		}
	}
	// One-sided names are informational, never an error: a newer run
	// growing metric namespaces (slo.*, cluster.*) must still diff
	// cleanly against older baselines.
	for _, name := range d.OnlyA {
		fmt.Fprintf(&b, "removed in b: %s\n", name)
	}
	for _, name := range d.OnlyB {
		fmt.Fprintf(&b, "added in b: %s\n", name)
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
