package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// ManifestSchema is the version of the run-manifest JSON layout.
// Bump it whenever a field changes meaning; consumers diffing two
// manifests should refuse mismatched schemas.
const ManifestSchema = 1

// Manifest is one run's machine-readable record: what was run (tool,
// args, config echo, workload fingerprint), on what (version, Go,
// host), how long it took (wall and CPU time), and everything the
// metric registry observed.  One JSON document per simulation, sweep,
// or bench session — suitable for diffing runs mechanically and as
// the payload format for future BENCH_*.json entries.  METRICS.md
// documents the schema field by field.
type Manifest struct {
	Schema    int       `json:"schema"`
	Tool      string    `json:"tool"`
	Args      []string  `json:"args,omitempty"`
	Version   string    `json:"version,omitempty"` // VCS revision (git describe equivalent)
	GoVersion string    `json:"go_version"`
	Host      string    `json:"host,omitempty"`
	NumCPU    int       `json:"num_cpu"`
	Start     time.Time `json:"start"`

	WallSeconds float64 `json:"wall_seconds"`
	CPUSeconds  float64 `json:"cpu_seconds"`

	// Config echoes the resolved flag/option values of the run.
	Config map[string]any `json:"config,omitempty"`
	// Trace fingerprints the replayed workload (request/object/client
	// counts plus a content hash), so two manifests are comparable
	// only when their Trace blocks agree.
	Trace map[string]any `json:"trace,omitempty"`
	// Metrics is the flattened registry (Registry.Values).
	Metrics map[string]float64 `json:"metrics"`
	// Notes carries tool-specific extras (figure summaries, bench
	// results) that don't fit the flat metric namespace.
	Notes map[string]any `json:"notes,omitempty"`
}

// NewManifest starts a manifest for the named tool, stamping the
// start time, command line, build version, and host environment.
func NewManifest(tool string) *Manifest {
	host, _ := os.Hostname()
	return &Manifest{
		Schema:    ManifestSchema,
		Tool:      tool,
		Args:      append([]string(nil), os.Args...),
		Version:   buildVersion(),
		GoVersion: runtime.Version(),
		Host:      host,
		NumCPU:    runtime.NumCPU(),
		Start:     time.Now(),
		Config:    map[string]any{},
		Metrics:   map[string]float64{},
	}
}

// buildVersion extracts the VCS revision baked into the binary — the
// closest offline equivalent of git-describe.
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "-dirty"
			}
		}
	}
	if rev == "" {
		return bi.Main.Version
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + modified
}

// SetConfig echoes one resolved option value.
func (m *Manifest) SetConfig(key string, value any) {
	if m.Config == nil {
		m.Config = map[string]any{}
	}
	m.Config[key] = value
}

// SetNote attaches one tool-specific extra.
func (m *Manifest) SetNote(key string, value any) {
	if m.Notes == nil {
		m.Notes = map[string]any{}
	}
	m.Notes[key] = value
}

// Finish stamps the wall and CPU time and folds the registry's
// metrics in.  Call it once, immediately before writing.
func (m *Manifest) Finish(reg *Registry) {
	m.WallSeconds = time.Since(m.Start).Seconds()
	m.CPUSeconds = processCPUSeconds()
	if m.Metrics == nil {
		m.Metrics = map[string]float64{}
	}
	for k, v := range reg.Values() {
		m.Metrics[k] = v
	}
}

// Validate checks the invariants every consumer relies on.
func (m *Manifest) Validate() error {
	if m == nil {
		return fmt.Errorf("obs: nil manifest")
	}
	if m.Schema != ManifestSchema {
		return fmt.Errorf("obs: manifest schema %d, want %d", m.Schema, ManifestSchema)
	}
	if m.Tool == "" {
		return fmt.Errorf("obs: manifest missing tool name")
	}
	if m.Start.IsZero() {
		return fmt.Errorf("obs: manifest missing start time")
	}
	if m.WallSeconds < 0 || m.CPUSeconds < 0 {
		return fmt.Errorf("obs: negative time in manifest (wall=%g cpu=%g)", m.WallSeconds, m.CPUSeconds)
	}
	if m.Metrics == nil {
		return fmt.Errorf("obs: manifest missing metrics block")
	}
	return nil
}

// Write emits the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile validates and writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest parses and validates a manifest document.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("obs: reading manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// ReadManifestFile parses and validates the manifest at path.
func ReadManifestFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadManifest(f)
}
