// Package obs provides the simulator's run-scoped observability: cheap
// atomic counters, gauges, and timers collected into named Registry
// instances, plus run manifests (manifest.go), progress/ETA tracking
// (progress.go), and pprof wiring (profile.go).
//
// Instrumentation is opt-in and free when disabled: every method is a
// no-op on a nil receiver, so code holds plain *Counter / *Gauge /
// *Timer fields obtained from a possibly-nil *Registry and calls them
// unconditionally.  The disabled path performs no allocation and no
// atomic operation (asserted in obs_test.go), which is what lets the
// hot replay loop stay instrumented without a measurable tax.
//
// Metric naming convention: dot-separated lowercase paths, with the
// owning layer first — "sim.serves.local_proxy", "core.sweep.job",
// "p2p.lookups".  METRICS.md documents every name the system emits.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.  The zero
// value is ready to use; a nil *Counter ignores all operations.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n may be any sign; counters are conventionally
// monotonic but this is not enforced).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 value.  Set overwrites, Add accumulates,
// SetMax keeps the maximum.  A nil *Gauge ignores all operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add accumulates v into the gauge.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates durations: an observation count and total elapsed
// nanoseconds.  A nil *Timer ignores all operations.
type Timer struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t != nil {
		t.count.Add(1)
		t.nanos.Add(int64(d))
	}
}

// noopStop avoids allocating a closure on the disabled path.
func noopStop() {}

// Start begins one timed section and returns the function that ends
// it.  On a nil timer the returned function is a shared no-op.
func (t *Timer) Start() (stop func()) {
	if t == nil {
		return noopStop
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Count returns the number of observations.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.nanos.Load())
}

// Mean returns the average observation (0 with no observations).
func (t *Timer) Mean() time.Duration {
	n := t.Count()
	if n == 0 {
		return 0
	}
	return t.Total() / time.Duration(n)
}

// Registry is one run's named metric set.  Metrics are created on
// first use and live for the run; all accessors are safe for
// concurrent use.  A nil *Registry is the disabled registry: every
// accessor returns nil, and the nil metric handles ignore all
// operations, so callers never branch on enablement.
type Registry struct {
	name string

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// NewRegistry creates an enabled registry.  The name scopes the run
// ("webcachesim", "fig-2a", ...) and is echoed in manifests.
func NewRegistry(name string) *Registry {
	return &Registry{
		name:       name,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Name returns the registry's run scope ("" when disabled).
func (r *Registry) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Counter returns the named counter, creating it on first use.
// Returns nil (the no-op counter) on a disabled registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named latency histogram, creating it on first
// use.  Returns nil (the no-op histogram) on a disabled registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Metric is one named observation in a registry snapshot.
type Metric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "counter", "gauge", "timer", or "histogram"
	Value float64 `json:"value"`
	// Count is the observation count for timers and histograms (Value
	// is then the total in seconds); zero otherwise.
	Count int64 `json:"count,omitempty"`
}

// Snapshot returns every metric, sorted by name.  Timers and
// histograms report their total in seconds plus the observation count.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.timers)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, t := range r.timers {
		out = append(out, Metric{Name: name, Kind: "timer", Value: t.Total().Seconds(), Count: t.Count()})
	}
	for name, h := range r.histograms {
		out = append(out, Metric{Name: name, Kind: "histogram", Value: h.Sum().Seconds(), Count: h.Count()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// histSnapshot returns the histograms under the registry lock, for the
// flattening and exposition paths that need quantiles (which Snapshot's
// total/count pair cannot carry).
func (r *Registry) histSnapshot() map[string]*Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		out[name] = h
	}
	return out
}

// Values flattens the snapshot into a name -> value map for manifest
// embedding.  Timers contribute two entries: "<name>.seconds" and
// "<name>.count".  Histograms contribute their quantile summary in
// seconds: "<name>.count", "<name>.mean", "<name>.p50" ... "<name>.max".
func (r *Registry) Values() map[string]float64 {
	snap := r.Snapshot()
	if snap == nil {
		return nil
	}
	out := make(map[string]float64, len(snap))
	for _, m := range snap {
		if m.Kind == "timer" {
			out[m.Name+".seconds"] = m.Value
			out[m.Name+".count"] = float64(m.Count)
			continue
		}
		if m.Kind == "histogram" {
			continue // flattened below, with quantiles
		}
		out[m.Name] = m.Value
	}
	for name, h := range r.histSnapshot() {
		s := h.Summary()
		out[name+".count"] = float64(s.Count)
		out[name+".mean"] = s.Mean.Seconds()
		out[name+".p50"] = s.P50.Seconds()
		out[name+".p90"] = s.P90.Seconds()
		out[name+".p99"] = s.P99.Seconds()
		out[name+".p999"] = s.P999.Seconds()
		out[name+".max"] = s.Max.Seconds()
	}
	return out
}

// String renders the snapshot as one aligned line per metric, for
// -metrics style dumps.
func (r *Registry) String() string {
	snap := r.Snapshot()
	if len(snap) == 0 {
		return ""
	}
	var b strings.Builder
	for _, m := range snap {
		switch m.Kind {
		case "timer", "histogram":
			fmt.Fprintf(&b, "%-40s %12.6fs n=%d\n", m.Name, m.Value, m.Count)
		case "counter":
			fmt.Fprintf(&b, "%-40s %12d\n", m.Name, int64(m.Value))
		default:
			fmt.Fprintf(&b, "%-40s %12.4f\n", m.Name, m.Value)
		}
	}
	return b.String()
}
