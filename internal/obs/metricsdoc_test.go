package obs

import (
	"strings"
	"testing"
)

const docFixture = "# Metrics\n" +
	"### `sim.*` — simulator\n" +
	"| `sim.runs` | counter | runs |\n" +
	"| `sim.serves.{local_proxy,p2p}` | counter | serves |\n" +
	"| `check.violations.<layer>` | counter | by layer: `cache`, `ring` |\n" +
	"Not metrics: `webcache.Run`, `Registry.Values`, `-manifest`, `BENCH_live.json`,\n" +
	"`internal/obs/trace.go`, `figure.*`, `fnv1a:<16 hex>`, `<name>.seconds`.\n" +
	"```json\n" +
	"{\"fenced.metric\": 1}\n" +
	"```\n" +
	"### `loadgen.*` — loadgen\n" +
	"`loadgen.request` timer.\n"

func TestDocumentedMetrics(t *testing.T) {
	pats := DocumentedMetrics([]byte(docFixture))
	raws := make([]string, len(pats))
	for i, p := range pats {
		raws[i] = p.Raw
	}
	got := strings.Join(raws, " ")
	for _, want := range []string{
		"sim.runs", "sim.serves.local_proxy", "sim.serves.p2p",
		"check.violations.<layer>", "loadgen.request",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in %v", want, raws)
		}
	}
	for _, reject := range []string{
		"webcache.Run", "Registry.Values", "BENCH_live.json",
		"fenced.metric", "figure.*", "<name>.seconds", "name.seconds",
	} {
		if strings.Contains(got, reject) {
			t.Fatalf("extracted non-metric %q: %v", reject, raws)
		}
	}

	var layer DocPattern
	for _, p := range pats {
		if p.Raw == "check.violations.<layer>" {
			layer = p
		}
	}
	if !layer.Wildcard() || !layer.Matches("check.violations.cache") || layer.Matches("check.violations") ||
		layer.Matches("check.violations.a.b") {
		t.Fatalf("placeholder pattern misbehaves: %+v", layer)
	}
}

func TestMetricNamespaces(t *testing.T) {
	got := MetricNamespaces([]byte(docFixture))
	if len(got) != 2 || got[0] != "loadgen" || got[1] != "sim" {
		t.Fatalf("namespaces = %v", got)
	}
}

func TestCheckMetricsDoc(t *testing.T) {
	registered := []string{
		"sim.runs", "sim.serves.local_proxy", "sim.serves.p2p",
		"check.violations.cache", "loadgen.request",
		"figure.2a", // outside the namespaces under test: ignored
	}
	if err := CheckMetricsDoc([]byte(docFixture), registered, "sim", "check", "loadgen"); err != nil {
		t.Fatalf("clean doc flagged: %v", err)
	}

	// Direction 1: a registered metric nobody documented.
	withUndoc := append([]string{"sim.mystery"}, registered...)
	err := CheckMetricsDoc([]byte(docFixture), withUndoc, "sim", "check", "loadgen")
	if err == nil || !strings.Contains(err.Error(), "sim.mystery") {
		t.Fatalf("undocumented metric not flagged: %v", err)
	}

	// Direction 2: a documented metric the smoke never registered.
	missing := []string{"sim.runs", "sim.serves.local_proxy", "sim.serves.p2p", "check.violations.cache"}
	err = CheckMetricsDoc([]byte(docFixture), missing, "sim", "check", "loadgen")
	if err == nil || !strings.Contains(err.Error(), "loadgen.request") {
		t.Fatalf("unregistered documented metric not flagged: %v", err)
	}

	// Namespace restriction: figure.* problems invisible here.
	if err := CheckMetricsDoc([]byte(docFixture), registered, "loadgen"); err != nil {
		t.Fatalf("namespace filter leaked: %v", err)
	}

	// Exclusion namespaces: "-sim.serves" carves the nested subtree out
	// of "sim", so its names neither count as registered nor as
	// documented there — even undocumented ones.
	carved := []string{"sim.runs", "sim.serves.local_proxy", "sim.serves.p2p",
		"sim.serves.mystery", "check.violations.cache", "loadgen.request"}
	err = CheckMetricsDoc([]byte(docFixture), carved, "sim", "check", "loadgen")
	if err == nil || !strings.Contains(err.Error(), "sim.serves.mystery") {
		t.Fatalf("control run should flag sim.serves.mystery: %v", err)
	}
	if err := CheckMetricsDoc([]byte(docFixture), carved, "sim", "-sim.serves", "check", "loadgen"); err != nil {
		t.Fatalf("exclusion namespace leaked: %v", err)
	}
}
