package slo

import (
	"os"
	"testing"
	"time"

	"webcache/internal/obs"
)

// TestMetricsDocSLO holds the slo.* namespace in METRICS.md against
// the names one tracker registers, in both directions: an undocumented
// registration or a documented-but-dead name fails here instead of
// rotting quietly.
func TestMetricsDocSLO(t *testing.T) {
	md, err := os.ReadFile("../../../METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("doc-smoke")
	tr := NewTracker(reg, []Class{
		{Name: "interactive", Latency: 50 * time.Millisecond, Availability: 0.99, Window: time.Minute},
	}, DefaultThresholds)
	tr.Observe("interactive", 10*time.Millisecond, false)
	tr.Observe("interactive", 200*time.Millisecond, false)
	tr.Report()

	var names []string
	for _, m := range reg.Snapshot() {
		names = append(names, m.Name)
	}
	if err := obs.CheckMetricsDoc(md, names, "slo"); err != nil {
		t.Fatal(err)
	}
}
