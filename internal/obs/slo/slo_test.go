package slo

import (
	"testing"
	"time"

	"webcache/internal/obs"
)

// fakeClock steps a tracker's time by hand.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func testTracker(reg *obs.Registry) (*Tracker, *fakeClock) {
	tr := NewTracker(reg, []Class{
		{Name: "interactive", Latency: 50 * time.Millisecond, Availability: 0.99, Window: time.Minute},
		{Name: "batch", Latency: 500 * time.Millisecond, Availability: 0.9, Window: time.Minute},
	}, Thresholds{})
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	tr.SetNow(clk.now)
	return tr, clk
}

func TestParseClasses(t *testing.T) {
	cs, err := ParseClasses("interactive:50ms:0.999:1m, batch:500ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Latency != 50*time.Millisecond || cs[0].Availability != 0.999 ||
		cs[0].Window != time.Minute || cs[1].Name != "batch" || cs[1].Availability != 0.999 {
		t.Fatalf("parsed %+v", cs)
	}
	for _, bad := range []string{":50ms", "x:zzz", "x:50ms:1.5", "x:50ms:0.9:zz"} {
		if _, err := ParseClasses(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestBurnRate(t *testing.T) {
	if got := BurnRate(0, 0, 0.999); got != 0 {
		t.Fatalf("no traffic burns %v", got)
	}
	// 1% bad against a 0.1% budget = 10x burn.
	if got := BurnRate(1, 100, 0.999); got < 9.99 || got > 10.01 {
		t.Fatalf("burn = %v, want ~10", got)
	}
	// Burning exactly the budget = 1.0.
	if got := BurnRate(1, 1000, 0.999); got < 0.999 || got > 1.001 {
		t.Fatalf("burn = %v, want ~1", got)
	}
}

func TestTrackerWindowedBurn(t *testing.T) {
	tr, clk := testTracker(nil)
	// 1 minute window, 1s buckets, 5s fast window.  99 good + 1 bad at
	// 1% budget = burn 1.0 on both windows.
	for i := 0; i < 99; i++ {
		tr.Observe("interactive", time.Millisecond, false)
	}
	tr.Observe("interactive", time.Millisecond, true)
	r := tr.Report()[0]
	if r.FastBurn < 0.99 || r.FastBurn > 1.01 || r.SlowBurn < 0.99 || r.SlowBurn > 1.01 {
		t.Fatalf("burns = %v / %v, want ~1", r.FastBurn, r.SlowBurn)
	}
	if r.Requests != 100 || r.Bad != 1 || r.Failed != 1 {
		t.Fatalf("report %+v", r)
	}

	// Past the fast window the fast burn decays while the slow window
	// still remembers.
	clk.advance(10 * time.Second)
	for i := 0; i < 10; i++ {
		tr.Observe("interactive", time.Millisecond, false)
	}
	r = tr.Report()[0]
	if r.FastBurn != 0 {
		t.Fatalf("fast burn after decay = %v, want 0", r.FastBurn)
	}
	if r.SlowBurn == 0 {
		t.Fatal("slow burn forgot the bad minute")
	}

	// Past the slow window everything is forgiven.
	clk.advance(2 * time.Minute)
	tr.Observe("interactive", time.Millisecond, false)
	r = tr.Report()[0]
	if r.FastBurn != 0 || r.SlowBurn != 0 || r.BudgetRemaining != 1 {
		t.Fatalf("after slow window: %+v", r)
	}
}

func TestTrackerLatencyBreachSpendsBudget(t *testing.T) {
	tr, _ := testTracker(nil)
	// A slow success breaches the 50ms objective.
	tr.Observe("interactive", 200*time.Millisecond, false)
	r := tr.Report()[0]
	if r.Bad != 1 || r.Failed != 0 {
		t.Fatalf("latency breach not counted: %+v", r)
	}
	// The same latency is fine for batch (500ms objective).
	tr.Observe("batch", 200*time.Millisecond, false)
	if r := tr.Report()[1]; r.Bad != 0 {
		t.Fatalf("batch breached: %+v", r)
	}
}

func TestTrackerPageEvents(t *testing.T) {
	reg := obs.NewRegistry("slo-test")
	tr, clk := testTracker(reg)
	events := obs.NewEventLog("test", nil)
	tr.SetEvents(events)

	// All-bad traffic: burn 1/0.01 = 100x >= both thresholds.
	for i := 0; i < 20; i++ {
		tr.Observe("interactive", time.Millisecond, true)
	}
	tr.Report()
	types := map[string]int{}
	for _, ev := range events.Recent(10) {
		types[ev.Type]++
	}
	if types["slo.page"] != 1 || types["slo.ticket"] != 1 {
		t.Fatalf("events = %v", types)
	}
	if reg.Gauge("slo.interactive.paging").Value() != 1 {
		t.Fatal("paging gauge not set")
	}

	// Recovery clears the page (fast window empties first).
	clk.advance(10 * time.Second)
	for i := 0; i < 2000; i++ {
		tr.Observe("interactive", time.Millisecond, false)
	}
	tr.Report()
	types = map[string]int{}
	for _, ev := range events.Recent(10) {
		types[ev.Type]++
	}
	if types["slo.page.clear"] != 1 {
		t.Fatalf("no page clear: %v", types)
	}
}

func TestTrackerUnknownClassFolds(t *testing.T) {
	tr, _ := testTracker(nil)
	tr.Observe("no-such-class", time.Millisecond, false)
	tr.Observe("", time.Millisecond, false)
	if r := tr.Report()[0]; r.Requests != 2 {
		t.Fatalf("unknown class not folded into first: %+v", r)
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.Observe("x", time.Millisecond, false)
	tr.SetEvents(nil)
	if tr.Report() != nil || tr.Classes() != nil {
		t.Fatal("nil tracker reported something")
	}
	// A tracker without a registry still accounts.
	tr2 := NewTracker(nil, []Class{{Name: "only"}}, DefaultThresholds)
	tr2.Observe("only", time.Millisecond, false)
	if r := tr2.Report()[0]; r.Requests != 1 {
		t.Fatalf("registry-less tracker: %+v", r)
	}
	if Table(tr2.Report()) == "" {
		t.Fatal("empty table")
	}
}
