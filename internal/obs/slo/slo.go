// Package slo is the service-level-objective layer: declarative SLO
// classes, per-class error-budget accounting over sliding windows, and
// multi-window burn-rate alerting in the style of the SRE workbook.
//
// A Class states the objective: a per-request latency bound and an
// availability target over a window.  A request is "good" when it
// succeeds within the latency objective and "bad" otherwise, so the
// error budget unifies availability and latency into one SLI.  The
// Tracker counts good/bad per class in a bucketed sliding window and
// derives two burn rates:
//
//   - fast window (Window/12, e.g. 5m of a 1h window) — catches sudden
//     regressions; crossing Thresholds.Page emits an "slo.page" event;
//   - slow window (the full Window) — catches slow bleeds; crossing
//     Thresholds.Ticket emits an "slo.ticket" event.
//
// A burn rate of 1.0 means the class is consuming its error budget
// exactly as fast as the objective allows; 14.4 (the default page
// threshold) exhausts a 30-day budget in 2 days.
//
// The loadgen driver feeds a Tracker from its measured latencies, and
// the proxy daemon feeds one from the X-SLO-Class request header, so
// both the driver's manifest and the fleet's /metrics expose the same
// slo.* namespace (METRICS.md) for the cluster aggregator to merge.
package slo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"webcache/internal/obs"
)

// Class is one declarative SLO class.
type Class struct {
	// Name tags requests (the X-SLO-Class header value) and scopes the
	// slo.<name>.* metrics.
	Name string `json:"name"`
	// Latency is the per-request latency objective: a slower success
	// still spends error budget.
	Latency time.Duration `json:"latency_ns"`
	// Availability is the objective good-fraction over Window
	// (0 < Availability < 1, e.g. 0.999).
	Availability float64 `json:"availability"`
	// Window is the slow error-budget window; the fast window is
	// Window/12 (5m : 1h).
	Window time.Duration `json:"window_ns"`
}

// fillDefaults applies the bench-scale defaults: 100ms at three nines
// over a minute.
func (c *Class) fillDefaults() {
	if c.Latency <= 0 {
		c.Latency = 100 * time.Millisecond
	}
	if c.Availability <= 0 || c.Availability >= 1 {
		c.Availability = 0.999
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
}

// ParseClass parses the flag syntax "name:latency:availability[:window]"
// ("interactive:50ms:0.999:1m"); empty latency/availability/window
// fields take the defaults.
func ParseClass(spec string) (Class, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 1 || parts[0] == "" {
		return Class{}, fmt.Errorf("slo: class spec %q needs a name", spec)
	}
	c := Class{Name: parts[0]}
	if len(parts) > 1 && parts[1] != "" {
		d, err := time.ParseDuration(parts[1])
		if err != nil {
			return Class{}, fmt.Errorf("slo: class %q latency: %v", c.Name, err)
		}
		c.Latency = d
	}
	if len(parts) > 2 && parts[2] != "" {
		a, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || a <= 0 || a >= 1 {
			return Class{}, fmt.Errorf("slo: class %q availability %q must be in (0,1)", c.Name, parts[2])
		}
		c.Availability = a
	}
	if len(parts) > 3 && parts[3] != "" {
		w, err := time.ParseDuration(parts[3])
		if err != nil {
			return Class{}, fmt.Errorf("slo: class %q window: %v", c.Name, err)
		}
		c.Window = w
	}
	c.fillDefaults()
	return c, nil
}

// ParseClasses parses a comma-separated list of class specs.
func ParseClasses(specs string) ([]Class, error) {
	var out []Class
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		c, err := ParseClass(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Thresholds are the burn-rate alert levels: Page on the fast window,
// Ticket on the slow window.
type Thresholds struct {
	Page   float64 `json:"page"`
	Ticket float64 `json:"ticket"`
}

// DefaultThresholds are the SRE-workbook levels: 14.4x on the fast
// window pages, 3x on the slow window tickets.
var DefaultThresholds = Thresholds{Page: 14.4, Ticket: 3}

// windowBuckets is the sliding-window resolution: the slow window is
// covered by this many ring buckets, so the fast window (Window/12)
// spans windowBuckets/12 of them exactly.
const windowBuckets = 60

// fastDivisor relates the two windows (1h : 5m).
const fastDivisor = 12

// bucket is one time slice of a class's good/bad ledger.
type bucket struct {
	epoch     int64 // bucket sequence number; 0 = never used
	good, bad int64
}

// classState is one class's sliding ledger plus its published
// instruments.
type classState struct {
	cls Class

	mu      sync.Mutex
	ring    [windowBuckets]bucket
	good    int64 // lifetime totals
	bad     int64
	failed  int64 // bad subset: outright failures (vs latency breaches)
	paging  bool
	ticking bool

	lat *obs.Histogram

	gGood, gBad, gFast, gSlow, gBudget, gPaging *obs.Gauge
}

// Tracker accounts requests against a set of SLO classes.
type Tracker struct {
	classes map[string]*classState
	order   []string
	thr     Thresholds
	events  *obs.EventLog
	now     func() time.Time
}

// NewTracker builds a tracker for the given classes, registering each
// class's slo.<name>.* instruments in reg up front (nil reg disables
// publication but not accounting).  Requests observed under an
// undeclared class are folded into the first declared class, so a
// misconfigured client cannot open an unbounded namespace.
func NewTracker(reg *obs.Registry, classes []Class, thr Thresholds) *Tracker {
	if thr.Page <= 0 {
		thr.Page = DefaultThresholds.Page
	}
	if thr.Ticket <= 0 {
		thr.Ticket = DefaultThresholds.Ticket
	}
	t := &Tracker{classes: map[string]*classState{}, thr: thr, now: time.Now}
	for _, c := range classes {
		c.fillDefaults()
		if _, dup := t.classes[c.Name]; dup || c.Name == "" {
			continue
		}
		// The latency ledger exists even without a registry, so a
		// registry-less tracker (the load generator's per-class view)
		// still reports quantiles.
		st := &classState{cls: c, lat: &obs.Histogram{}}
		if reg != nil {
			p := "slo." + c.Name + "."
			st.lat = reg.Histogram(p + "latency")
			st.gGood = reg.Gauge(p + "good")
			st.gBad = reg.Gauge(p + "bad")
			st.gFast = reg.Gauge(p + "burn.fast")
			st.gSlow = reg.Gauge(p + "burn.slow")
			st.gBudget = reg.Gauge(p + "budget_remaining")
			st.gPaging = reg.Gauge(p + "paging")
			st.gBudget.Set(1)
		}
		t.classes[c.Name] = st
		t.order = append(t.order, c.Name)
	}
	return t
}

// SetEvents attaches the event log burn-rate threshold crossings are
// emitted to.
func (t *Tracker) SetEvents(l *obs.EventLog) {
	if t != nil {
		t.events = l
	}
}

// SetNow injects a clock (tests).
func (t *Tracker) SetNow(now func() time.Time) {
	if t != nil && now != nil {
		t.now = now
	}
}

// Classes returns the declared classes in declaration order.
func (t *Tracker) Classes() []Class {
	if t == nil {
		return nil
	}
	out := make([]Class, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, t.classes[name].cls)
	}
	return out
}

// resolve maps a request's class tag onto a declared class (first
// declared class when the tag is unknown or empty).
func (t *Tracker) resolve(class string) *classState {
	if st, ok := t.classes[class]; ok {
		return st
	}
	if len(t.order) == 0 {
		return nil
	}
	return t.classes[t.order[0]]
}

// Observe accounts one request: failed marks an outright failure; a
// success slower than the class's latency objective also spends error
// budget.  A nil tracker ignores the call.
func (t *Tracker) Observe(class string, latency time.Duration, failed bool) {
	if t == nil {
		return
	}
	st := t.resolve(class)
	if st == nil {
		return
	}
	st.lat.Observe(latency)
	bad := failed || latency > st.cls.Latency
	epoch := t.now().UnixNano() / int64(st.bucketDur())
	st.mu.Lock()
	b := &st.ring[int(epoch%windowBuckets)]
	if b.epoch != epoch {
		b.epoch, b.good, b.bad = epoch, 0, 0
	}
	if bad {
		b.bad++
		st.bad++
		if failed {
			st.failed++
		}
	} else {
		b.good++
		st.good++
	}
	st.mu.Unlock()
}

// bucketDur is one ring slice of the class's slow window.
func (st *classState) bucketDur() time.Duration {
	return st.cls.Window / windowBuckets
}

// windowCounts sums the ledger over the trailing n buckets ending at
// the current epoch.  Caller holds st.mu.
func (st *classState) windowCounts(nowEpoch int64, n int) (good, bad int64) {
	for i := range st.ring {
		b := &st.ring[i]
		if b.epoch > nowEpoch-int64(n) && b.epoch <= nowEpoch {
			good += b.good
			bad += b.bad
		}
	}
	return good, bad
}

// BurnRate is the error-budget burn: the observed bad fraction over
// the allowed bad fraction (1 - availability).  Zero traffic burns
// nothing.
func BurnRate(bad, total int64, availability float64) float64 {
	if total == 0 {
		return 0
	}
	budget := 1 - availability
	if budget <= 0 {
		budget = 1e-9
	}
	return (float64(bad) / float64(total)) / budget
}

// ClassReport is one class's accounting snapshot.
type ClassReport struct {
	Class    Class   `json:"class"`
	Requests int64   `json:"requests"`
	Bad      int64   `json:"bad"`
	Failed   int64   `json:"failed"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// BudgetRemaining is the slow window's unconsumed budget fraction
	// (clamped to [0,1]; 1 = untouched, 0 = exhausted or overdrawn).
	BudgetRemaining float64             `json:"budget_remaining"`
	Latency         obs.QuantileSummary `json:"latency"`
	Paging          bool                `json:"paging"`
	Ticketing       bool                `json:"ticketing"`
}

// Report snapshots every class, updates the published gauges, and
// emits threshold-crossing events, in declaration order.
func (t *Tracker) Report() []ClassReport {
	if t == nil {
		return nil
	}
	out := make([]ClassReport, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, t.reportClass(t.classes[name]))
	}
	return out
}

func (t *Tracker) reportClass(st *classState) ClassReport {
	nowEpoch := t.now().UnixNano() / int64(st.bucketDur())
	st.mu.Lock()
	slowGood, slowBad := st.windowCounts(nowEpoch, windowBuckets)
	fastGood, fastBad := st.windowCounts(nowEpoch, windowBuckets/fastDivisor)
	r := ClassReport{
		Class:    st.cls,
		Requests: st.good + st.bad,
		Bad:      st.bad,
		Failed:   st.failed,
		FastBurn: BurnRate(fastBad, fastGood+fastBad, st.cls.Availability),
		SlowBurn: BurnRate(slowBad, slowGood+slowBad, st.cls.Availability),
	}
	r.BudgetRemaining = 1 - r.SlowBurn
	if r.BudgetRemaining < 0 {
		r.BudgetRemaining = 0
	}
	paging := r.FastBurn >= t.thr.Page
	ticking := r.SlowBurn >= t.thr.Ticket
	pageFlip, tickFlip := paging != st.paging, ticking != st.ticking
	st.paging, st.ticking = paging, ticking
	st.mu.Unlock()
	r.Latency = st.lat.Summary()
	r.Paging, r.Ticketing = paging, ticking

	st.gGood.Set(float64(r.Requests - r.Bad))
	st.gBad.Set(float64(r.Bad))
	st.gFast.Set(r.FastBurn)
	st.gSlow.Set(r.SlowBurn)
	st.gBudget.Set(r.BudgetRemaining)
	if paging {
		st.gPaging.Set(1)
	} else {
		st.gPaging.Set(0)
	}

	if pageFlip {
		typ := "slo.page"
		if !paging {
			typ = "slo.page.clear"
		}
		t.events.Emit(typ, map[string]string{
			"class": st.cls.Name,
			"burn":  strconv.FormatFloat(r.FastBurn, 'f', 3, 64),
		})
	}
	if tickFlip {
		typ := "slo.ticket"
		if !ticking {
			typ = "slo.ticket.clear"
		}
		t.events.Emit(typ, map[string]string{
			"class": st.cls.Name,
			"burn":  strconv.FormatFloat(r.SlowBurn, 'f', 3, 64),
		})
	}
	return r
}

// Table renders the class reports as an aligned text table for bench
// output and the dashboard.
func Table(reports []ClassReport) string {
	if len(reports) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %8s %10s %10s %8s %9s %9s %7s\n",
		"class", "requests", "bad", "burn.fast", "burn.slow", "budget", "p50", "p99", "state")
	for _, r := range reports {
		state := "ok"
		switch {
		case r.Paging:
			state = "PAGE"
		case r.Ticketing:
			state = "ticket"
		}
		fmt.Fprintf(&b, "%-14s %10d %8d %10.2f %10.2f %7.0f%% %9s %9s %7s\n",
			r.Class.Name, r.Requests, r.Bad, r.FastBurn, r.SlowBurn,
			100*r.BudgetRemaining, r.Latency.P50.Round(time.Microsecond),
			r.Latency.P99.Round(time.Microsecond), state)
	}
	return b.String()
}

// SortedNames is a stable name list for map-keyed report consumers.
func SortedNames(reports []ClassReport) []string {
	names := make([]string, 0, len(reports))
	for _, r := range reports {
		names = append(names, r.Class.Name)
	}
	sort.Strings(names)
	return names
}
