package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: fixed log-scale buckets with growth factor
// 2^(1/8) (~9.05% per bucket) from 1µs up; everything past the last
// boundary lands in the final bucket (~268s with 224 buckets).
// Quantiles report the geometric midpoint of their bucket clamped to
// the observed min/max, so the worst-case relative error is
// 2^(1/16)-1 ≈ 4.4% (asserted in internal/loadgen/histogram_test.go,
// which exercises this type through its original home).
const (
	histBuckets = 224
	histMin     = time.Microsecond
)

// histGrowth is the per-bucket growth factor.
var histGrowth = math.Pow(2, 1.0/8)

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	if d <= histMin {
		return 0
	}
	i := int(math.Log(float64(d)/float64(histMin)) / math.Log(histGrowth))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketBounds returns bucket i's (lower, upper] boundaries in
// nanoseconds.
func bucketBounds(i int) (lo, hi float64) {
	lo = float64(histMin) * math.Pow(histGrowth, float64(i))
	return lo, lo * histGrowth
}

// Histogram is a fixed-bucket log-scale latency histogram and the
// registry's fourth metric kind (Registry.Histogram).  All operations
// are lock-free atomics, so concurrent workers record into one
// histogram without coordination; the zero value is ready to use, and
// — like every obs handle — a nil *Histogram ignores all operations.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	min    atomic.Int64 // nanoseconds; 0 = unset
	max    atomic.Int64 // nanoseconds
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		old := h.min.Load()
		if old != 0 && old <= int64(d) {
			break
		}
		v := int64(d)
		if v == 0 {
			v = 1 // keep 0 as the unset sentinel
		}
		if h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if old >= int64(d) {
			break
		}
		if h.max.CompareAndSwap(old, int64(d)) {
			break
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the accumulated duration across all samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest sample observed.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Min returns the smallest sample observed (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h == nil {
		return 0
	}
	v := h.min.Load()
	if v == 1 {
		v = 0
	}
	return time.Duration(v)
}

// Quantile estimates the q-quantile (q in [0,1]): the geometric
// midpoint of the bucket holding the q*count-th sample, clamped to the
// observed extremes.  Concurrent Observe calls may skew an in-flight
// snapshot by the racing samples; call it after recording settles.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			lo, hi := bucketBounds(i)
			mid := time.Duration(math.Sqrt(lo * hi))
			if mn := h.Min(); mid < mn {
				mid = mn
			}
			if mx := h.Max(); mx > 0 && mid > mx {
				mid = mx
			}
			return mid
		}
	}
	return h.Max()
}

// Merge folds o's samples into h (o keeps its contents).  Merging into
// or from a nil histogram is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := 0; i < histBuckets; i++ {
		if v := o.counts[i].Load(); v != 0 {
			h.counts[i].Add(v)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	if v := o.min.Load(); v != 0 {
		for {
			old := h.min.Load()
			if old != 0 && old <= v {
				break
			}
			if h.min.CompareAndSwap(old, v) {
				break
			}
		}
	}
	if v := o.max.Load(); v != 0 {
		for {
			old := h.max.Load()
			if old >= v {
				break
			}
			if h.max.CompareAndSwap(old, v) {
				break
			}
		}
	}
}

// QuantileSummary is the fixed quantile set reports carry.
type QuantileSummary struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Summary snapshots the standard quantile set.
func (h *Histogram) Summary() QuantileSummary {
	if h == nil {
		return QuantileSummary{}
	}
	return QuantileSummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// histQuantiles is the quantile set a registry histogram flattens to in
// manifests (Values) and exposes on /metrics (WritePrometheus).
var histQuantiles = []struct {
	q      float64
	suffix string
}{
	{0.50, "p50"},
	{0.90, "p90"},
	{0.99, "p99"},
	{0.999, "p999"},
}
