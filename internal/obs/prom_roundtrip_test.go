package obs

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

// restoreFromExposition scrapes one _seconds_hist family out of an
// exposition the way the cluster aggregator does: parse the samples,
// collect the family's cumulative buckets and sidecars, and rebuild.
func restoreFromExposition(t *testing.T, text, family string) *Histogram {
	t.Helper()
	samples, types, err := ParsePrometheusSamples(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if types[family] != "histogram" {
		t.Fatalf("family %s typed %q, want histogram", family, types[family])
	}
	buckets := map[float64]int64{}
	var sum, min, max float64
	for _, s := range samples {
		switch s.Name {
		case family + "_bucket":
			le := math.Inf(1)
			if v := s.Label("le"); v != "+Inf" {
				le, err = strconv.ParseFloat(v, 64)
				if err != nil {
					t.Fatalf("bad le %q: %v", v, err)
				}
			}
			buckets[le] = int64(s.Value)
		case family + "_sum":
			sum = s.Value
		case family + "_min":
			min = s.Value
		case family + "_max":
			max = s.Value
		}
	}
	return RestoreHistogram(buckets, sum, min, max)
}

// TestHistogramBucketRoundTrip drives samples spanning sub-bucket
// floor to past the last bucket bound through WritePrometheus and
// ParsePrometheusSamples and asserts the reconstruction is exact:
// every bucket count, the count/sum/min/max, and therefore every
// quantile.  The cluster aggregator's merge is only correct if this
// round trip is lossless.
func TestHistogramBucketRoundTrip(t *testing.T) {
	reg := NewRegistry("roundtrip")
	h := reg.Histogram("loadgen.latency")
	durations := []time.Duration{
		0,                      // below histMin -> bucket 0
		500 * time.Nanosecond,  // still bucket 0
		time.Microsecond,       // boundary
		17 * time.Microsecond,  //
		250 * time.Microsecond, //
		time.Millisecond,
		3 * time.Millisecond,
		42 * time.Millisecond,
		999 * time.Millisecond,
		2 * time.Second,
		30 * time.Second,
		500 * time.Second, // past the last bound -> catch-all bucket
	}
	for i, d := range durations {
		for j := 0; j <= i; j++ { // uneven per-bucket counts
			h.Observe(d)
		}
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	got := restoreFromExposition(t, buf.String(), "webcache_loadgen_latency_seconds_hist")

	if got.Count() != h.Count() {
		t.Fatalf("count: got %d want %d", got.Count(), h.Count())
	}
	if got.Sum() != h.Sum() {
		t.Fatalf("sum: got %v want %v", got.Sum(), h.Sum())
	}
	if got.Min() != h.Min() || got.Max() != h.Max() {
		t.Fatalf("min/max: got %v/%v want %v/%v", got.Min(), got.Max(), h.Min(), h.Max())
	}
	for i := 0; i < histBuckets; i++ {
		if g, w := got.counts[i].Load(), h.counts[i].Load(); g != w {
			t.Fatalf("bucket %d: got %d want %d", i, g, w)
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if g, w := got.Quantile(q), h.Quantile(q); g != w {
			t.Fatalf("q%g: got %v want %v", q, g, w)
		}
	}

	// A second scrape merged on top doubles every bucket — the merge
	// the aggregator performs across fleet members.
	got.Merge(restoreFromExposition(t, buf.String(), "webcache_loadgen_latency_seconds_hist"))
	if got.Count() != 2*h.Count() {
		t.Fatalf("merged count: got %d want %d", got.Count(), 2*h.Count())
	}
	for i := 0; i < histBuckets; i++ {
		if g, w := got.counts[i].Load(), 2*h.counts[i].Load(); g != w {
			t.Fatalf("merged bucket %d: got %d want %d", i, g, w)
		}
	}
}

// TestRestoreHistogramEmpty keeps the degenerate scrape (no samples
// yet) from fabricating observations.
func TestRestoreHistogramEmpty(t *testing.T) {
	h := RestoreHistogram(map[float64]int64{math.Inf(1): 0}, 0, 0, 0)
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty restore: count=%d sum=%v min=%v max=%v", h.Count(), h.Sum(), h.Min(), h.Max())
	}
}
