package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress tracks completion of a fixed number of jobs and estimates
// the remaining time from the observed rate.  Safe for concurrent
// Add calls from a worker pool.
type Progress struct {
	total int64
	done  atomic.Int64
	start time.Time
}

// NewProgress starts tracking total jobs.
func NewProgress(total int) *Progress {
	return &Progress{total: int64(total), start: time.Now()}
}

// Add records n completed jobs and returns the cumulative count.
func (p *Progress) Add(n int) int { return int(p.done.Add(int64(n))) }

// Done returns the completed-job count.
func (p *Progress) Done() int { return int(p.done.Load()) }

// Total returns the job count being tracked.
func (p *Progress) Total() int { return int(p.total) }

// Elapsed returns time since tracking started.
func (p *Progress) Elapsed() time.Duration { return time.Since(p.start) }

// ETA estimates the remaining time from the mean per-job rate so far.
// ok is false until at least one job has completed.
func (p *Progress) ETA() (eta time.Duration, ok bool) {
	done := p.done.Load()
	if done <= 0 || p.total <= 0 {
		return 0, false
	}
	remaining := p.total - done
	if remaining <= 0 {
		return 0, true
	}
	perJob := p.Elapsed() / time.Duration(done)
	return perJob * time.Duration(remaining), true
}

// String renders "done/total (pct%) elapsed Xs eta Ys".
func (p *Progress) String() string {
	done, total := p.Done(), p.Total()
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	s := fmt.Sprintf("%d/%d (%.0f%%) elapsed %s", done, total, pct,
		p.Elapsed().Round(time.Second))
	if eta, ok := p.ETA(); ok && done < total {
		s += fmt.Sprintf(" eta %s", eta.Round(time.Second))
	}
	return s
}

// ProgressPrinter renders live progress lines (carriage-return
// overwritten) to a terminal-ish writer, throttled so tight job
// streams don't flood the output.  Safe for concurrent Step calls.
type ProgressPrinter struct {
	mu       sync.Mutex
	w        io.Writer
	label    string
	progress *Progress
	last     time.Time
	period   time.Duration
	width    int
}

// NewProgressPrinter tracks total jobs under the given label,
// printing to w at most every 100ms (plus always on completion).
func NewProgressPrinter(w io.Writer, label string, total int) *ProgressPrinter {
	return &ProgressPrinter{
		w:        w,
		label:    label,
		progress: NewProgress(total),
		period:   100 * time.Millisecond,
	}
}

// Step records n completed jobs and repaints the line when due.
func (pp *ProgressPrinter) Step(n int) {
	done := pp.progress.Add(n)
	pp.mu.Lock()
	defer pp.mu.Unlock()
	now := time.Now()
	if done < pp.progress.Total() && now.Sub(pp.last) < pp.period {
		return
	}
	pp.last = now
	pp.paint()
}

// paint redraws the progress line (pp.mu held).
func (pp *ProgressPrinter) paint() {
	line := fmt.Sprintf("%s: %s", pp.label, pp.progress)
	pad := pp.width - len(line)
	if len(line) > pp.width {
		pp.width = len(line)
	}
	for i := 0; i < pad; i++ {
		line += " "
	}
	fmt.Fprintf(pp.w, "\r%s", line)
}

// Finish repaints one final line and terminates it with a newline.
func (pp *ProgressPrinter) Finish() {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	pp.paint()
	fmt.Fprintln(pp.w)
}
