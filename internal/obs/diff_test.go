package obs

import (
	"strings"
	"testing"
	"time"
)

func diffManifest(fp string, metrics map[string]float64) *Manifest {
	m := NewManifest("hiergdd-bench")
	m.Start = time.Now().Add(-time.Second)
	m.WallSeconds = 1
	m.Trace = map[string]any{"fingerprint": fp, "requests": 100.0}
	m.Metrics = metrics
	return m
}

func TestDiffManifests(t *testing.T) {
	a := diffManifest("fnv1a:aaaa", map[string]float64{
		"loadgen.issued": 100, "loadgen.latency.p50": 0.010, "only.a": 1, "same": 5,
	})
	b := diffManifest("fnv1a:aaaa", map[string]float64{
		"loadgen.issued": 100, "loadgen.latency.p50": 0.012, "only.b": 2, "same": 5,
	})
	d, err := DiffManifests(a, b, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Changed) != 1 || d.Changed[0].Name != "loadgen.latency.p50" {
		t.Fatalf("changed = %+v", d.Changed)
	}
	if delta := d.Changed[0].Delta; delta < 0.0019 || delta > 0.0021 {
		t.Fatalf("delta = %v", delta)
	}
	if d.Unchanged != 2 {
		t.Fatalf("unchanged = %d, want 2 (issued, same)", d.Unchanged)
	}
	if len(d.OnlyA) != 1 || d.OnlyA[0] != "only.a" || len(d.OnlyB) != 1 || d.OnlyB[0] != "only.b" {
		t.Fatalf("only = %v / %v", d.OnlyA, d.OnlyB)
	}
	out := d.String()
	for _, want := range []string{"loadgen.latency.p50", "removed in b: only.a", "added in b: only.b", "fnv1a:aaaa"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
}

// A newer run growing whole metric namespaces (slo.*, cluster.*) must
// diff cleanly against an older baseline that predates them: the new
// names are reported as additions, never as an error.
func TestDiffManifestsDisjointNamespaces(t *testing.T) {
	old := diffManifest("fnv1a:aaaa", map[string]float64{
		"loadgen.issued": 100, "httpcache.proxy.requests": 100,
	})
	cur := diffManifest("fnv1a:aaaa", map[string]float64{
		"loadgen.issued": 100, "httpcache.proxy.requests": 100,
		"slo.interactive.burn.fast": 0.4,
		"cluster.hit_ratio":         0.7,
		"cluster.members_up":        2,
	})
	d, err := DiffManifests(old, cur, false)
	if err != nil {
		t.Fatalf("disjoint namespaces failed the diff: %v", err)
	}
	if len(d.Changed) != 0 || d.Unchanged != 2 {
		t.Fatalf("changed=%v unchanged=%d", d.Changed, d.Unchanged)
	}
	if len(d.OnlyB) != 3 {
		t.Fatalf("OnlyB = %v, want the three new names", d.OnlyB)
	}
	out := d.String()
	for _, want := range []string{"added in b: slo.interactive.burn.fast", "added in b: cluster.hit_ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestDiffManifestsRefusesMismatch(t *testing.T) {
	a := diffManifest("fnv1a:aaaa", map[string]float64{"x": 1})
	b := diffManifest("fnv1a:bbbb", map[string]float64{"x": 2})
	if _, err := DiffManifests(a, b, false); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint mismatch not refused: %v", err)
	}
	if _, err := DiffManifests(a, b, true); err != nil {
		t.Fatalf("force did not override: %v", err)
	}

	b2 := diffManifest("fnv1a:aaaa", map[string]float64{"x": 2})
	b2.Schema = ManifestSchema + 1
	if _, err := DiffManifests(a, b2, true); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not refused even under force: %v", err)
	}
	if _, err := DiffManifests(nil, b, false); err == nil {
		t.Fatal("nil manifest accepted")
	}
}
