package obs

import (
	"strings"
	"testing"
	"time"
)

// Deep histogram behavior (quantile error bound, merge, min/max
// sentinels) is pinned in internal/loadgen/histogram_test.go, the
// type's original home; here we cover what the promotion added — the
// nil contract and registry integration.

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	h.Merge(&Histogram{})
	(&Histogram{}).Merge(h)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram returned non-zero")
	}
	if s := h.Summary(); s.Count != 0 {
		t.Fatalf("nil Summary = %+v", s)
	}
}

func TestDisabledHistogramZeroAlloc(t *testing.T) {
	var reg *Registry
	d := 3 * time.Millisecond
	allocs := testing.AllocsPerRun(1000, func() {
		h := reg.Histogram("loadgen.latency")
		h.Observe(d)
	})
	if allocs != 0 {
		t.Fatalf("disabled histogram allocated %v times per op", allocs)
	}
}

func TestRegistryHistogram(t *testing.T) {
	reg := NewRegistry("h")
	h := reg.Histogram("loadgen.latency")
	if h == nil || h != reg.Histogram("loadgen.latency") {
		t.Fatal("Histogram accessor not idempotent")
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}

	var snap Metric
	for _, m := range reg.Snapshot() {
		if m.Name == "loadgen.latency" {
			snap = m
		}
	}
	if snap.Kind != "histogram" || snap.Count != 1000 {
		t.Fatalf("snapshot = %+v", snap)
	}

	vals := reg.Values()
	if vals["loadgen.latency.count"] != 1000 {
		t.Fatalf("values = %v", vals)
	}
	p50 := vals["loadgen.latency.p50"]
	if p50 < 0.45 || p50 > 0.55 {
		t.Fatalf("p50 = %v s, want ~0.5", p50)
	}
	if vals["loadgen.latency.max"] < 0.95 || vals["loadgen.latency.mean"] <= 0 {
		t.Fatalf("values = %v", vals)
	}
	for _, suffix := range []string{".count", ".mean", ".p50", ".p90", ".p99", ".p999", ".max"} {
		if _, ok := vals["loadgen.latency"+suffix]; !ok {
			t.Fatalf("missing flattened key %s in %v", suffix, vals)
		}
	}
	if _, ok := vals["loadgen.latency"]; ok {
		t.Fatal("unflattened histogram name leaked into Values")
	}

	if s := reg.String(); !strings.Contains(s, "loadgen.latency") || !strings.Contains(s, "n=1000") {
		t.Fatalf("String() = %q", s)
	}
}
